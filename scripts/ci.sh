#!/usr/bin/env bash
# CI gate: build everything with -Werror plus ASan+UBSan and run the full
# ctest suite. Equivalent to `cmake --preset ci && cmake --build --preset
# ci && ctest --preset ci`, spelled out so it also works without preset
# support.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-ci}
JOBS=${JOBS:-$(nproc)}

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DRASQL_WERROR=ON \
  -DRASQL_ENABLE_ASAN=ON \
  -DRASQL_ENABLE_UBSAN=ON
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"
