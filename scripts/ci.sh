#!/usr/bin/env bash
# CI gate: build everything with -Werror plus ASan+UBSan and run the full
# ctest suite. Equivalent to `cmake --preset ci && cmake --build --preset
# ci && ctest --preset ci`, spelled out so it also works without preset
# support.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-ci}
JOBS=${JOBS:-$(nproc)}

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DRASQL_WERROR=ON \
  -DRASQL_ENABLE_ASAN=ON \
  -DRASQL_ENABLE_UBSAN=ON
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

# Stage-graph verification gate (DESIGN.md §11): the whole suite again
# with the static verifier forced on, so every live Cluster submission and
# every local fixpoint plan is contract-checked even though this is a
# release (NDEBUG) build where verification defaults off. A regression
# that mis-declares slices or ownership aborts the offending test here.
RASQL_VERIFY_STAGES=1 \
  ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

# Batch-mode gate under ASan (DESIGN.md §13, §15): the vectorized kernels
# index raw chunk arrays through selection vectors and fill preallocated
# probe scratch — exactly the code ASan must see clean. The chunk-layout
# property suite, the randomized VecProgram-vs-oracle property suite and
# the batch-vs-row equality matrix run explicitly so the gate survives
# suite reorganizations.
"${BUILD_DIR}/tests/columnar_test"
"${BUILD_DIR}/tests/vec_program_test"
"${BUILD_DIR}/tests/morsel_test" --gtest_filter='*MorselMatrix*'

# Parallel-runtime gate: TSan excludes ASan, so the work-stealing executor
# and the threaded fixpoint tests get their own build. Only the four test
# binaries that exercise real threads are built and run — a full TSan build
# of every bench would double CI time for no extra coverage.
TSAN_BUILD_DIR=${TSAN_BUILD_DIR:-build-tsan}
cmake -B "${TSAN_BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DRASQL_ENABLE_TSAN=ON
cmake --build "${TSAN_BUILD_DIR}" -j "${JOBS}" \
  --target runtime_test dist_test fixpoint_test morsel_test \
           columnar_test vec_program_test concurrency_test server_test \
           incremental_test
"${TSAN_BUILD_DIR}/tests/runtime_test"
"${TSAN_BUILD_DIR}/tests/dist_test"
"${TSAN_BUILD_DIR}/tests/fixpoint_test"
"${TSAN_BUILD_DIR}/tests/morsel_test"

# Async-shuffle matrix under TSan: the pipelined map/reduce path releases
# reduce tasks from the publish of individual map slices, so the
# release/acquire pairing in SliceReadiness and the graph scheduler's
# countdowns are exactly what TSan must see clean. The filtered re-run is
# cheap and makes the gate explicit even if the suites above reorganize.
"${TSAN_BUILD_DIR}/tests/runtime_test" \
  --gtest_filter='*Graph*:*Async*:*async*'
"${TSAN_BUILD_DIR}/tests/dist_test" \
  --gtest_filter='*Pipelined*:*Slice*:*ShuffleChannel*'

# Local-fixpoint thread matrix under TSan: the partitioned local path runs
# per-partition semi-naive terms and per-branch naive candidates on the
# pool, at threads {1,2,8} in both modes (LocalFixpointParallelTest runs
# the full matrix internally). Filtered re-run for the same reason as
# above: the gate stays explicit even if the suite reorganizes.
"${TSAN_BUILD_DIR}/tests/fixpoint_test" \
  --gtest_filter='*LocalFixpointParallel*'

# Morsel-split matrix under TSan: split sub-tasks write caller-owned slots
# concurrently with finalize tasks being released per partition, and the
# lazy per-partition hash build runs under call_once from several threads.
# The determinism matrix (threads {1,2,8} × morsel on/off × batch on/off,
# local and distributed) is exactly the schedule TSan must see clean.
"${TSAN_BUILD_DIR}/tests/morsel_test" \
  --gtest_filter='*MorselMatrix*:*MorselSplit*'

# Batch-mode matrix under TSan: one BoundPipeline is shared by concurrent
# morsel tasks whose RunBatch keeps selection vectors and VecProgram
# scratch on each task's own stack; the batch-vs-row suites re-run against
# the TSan build to pin that contract.
"${TSAN_BUILD_DIR}/tests/columnar_test" --gtest_filter='*BatchPipeline*'
"${TSAN_BUILD_DIR}/tests/vec_program_test"

# Shared-context matrix under TSan (DESIGN.md §12): session threads
# interleaving reads with exclusive writers on one RaSqlContext, at engine
# threads {1,2,8}, plus the server's shared compute pool. This is the
# concurrency contract the query server runs on; the reader/writer lock,
# the version counters and the caches must all be clean under TSan.
"${TSAN_BUILD_DIR}/tests/concurrency_test"
"${TSAN_BUILD_DIR}/tests/server_test"

# Warm-start matrix under TSan (DESIGN.md §14): the warm path absorbs the
# retained converged state into every partition concurrently (ParallelFor
# locally, a dedicated warm-absorb stage with kReadShared warm slices on
# the cluster) before the semi-naive loop resumes — at threads {1,2,8}
# this is precisely the schedule TSan must see clean, and the server's
# refresh outcome races lookup against insert on the result cache.
"${TSAN_BUILD_DIR}/tests/incremental_test"
"${TSAN_BUILD_DIR}/tests/server_test" --gtest_filter='*Refresh*:*Incremental*'

# Serving smoke test (DESIGN.md §12): boot rasql_serverd on an ephemeral
# port, run a scripted client session through the prepare/execute, query,
# cache-hit and typed-error paths, then shut down cleanly via SIGTERM and
# require exit code 0 (the sigwait path, not a crash). Repeated against
# the TSan build so the socket loops and executor handoffs run under the
# race detector too.
serving_smoke() {
  local build_dir=$1
  cmake --build "${build_dir}" -j "${JOBS}" \
    --target rasql_serverd rasql_client
  local port_file
  port_file=$(mktemp)
  "${build_dir}/src/rasql_serverd" --gen-rmat=edge:64 --engine-threads=2 \
    --port-file="${port_file}" &
  local server_pid=$!
  for _ in $(seq 1 100); do
    [[ -s "${port_file}" ]] && break
    sleep 0.1
  done
  local port
  port=$(cat "${port_file}")
  local tc="WITH recursive tc (Src, Dst) AS
      (SELECT Src, Dst FROM edge) UNION
      (SELECT tc.Src, edge.Dst FROM tc, edge WHERE tc.Dst = edge.Src)
    SELECT count(*) FROM tc"
  local out
  out=$("${build_dir}/src/rasql_client" --port="${port}" \
    "${tc}" "${tc}" \
    "prepare:SELECT Src, Dst FROM edge WHERE Src = 0" \
    "exec:1" "exec:1" \
    "SELEKT nonsense" \
    "exec:99")
  grep -q "RESULT cache_hit=0" <<<"${out}"
  grep -q "RESULT cache_hit=1" <<<"${out}"
  grep -q "PREPARED id=1" <<<"${out}"
  grep -q "ERROR PARSE" <<<"${out}"
  grep -q "ERROR UNKNOWN_STATEMENT" <<<"${out}"
  kill -TERM "${server_pid}"
  wait "${server_pid}"
  rm -f "${port_file}"
}
serving_smoke "${BUILD_DIR}"
serving_smoke "${TSAN_BUILD_DIR}"

# Incremental serving smoke test (DESIGN.md §14): boot one serverd with
# --incremental and one without over the same generated graph, apply the
# same INSERT to both, and require that the incremental server (a) does
# not serve the stale entry after the write (cache_hit=0: a refresh, the
# engine warm-starting internally), (b) memoizes the refreshed result
# (next run cache_hit=1), (c) reports refreshed=1 in its shutdown stats,
# and (d) produced byte-identical rows to the cold server's recompute.
incremental_smoke() {
  local build_dir=$1
  local tc="WITH recursive tc (Src, Dst) AS
      (SELECT Src, Dst FROM edge) UNION
      (SELECT tc.Src, edge.Dst FROM tc, edge WHERE tc.Dst = edge.Src)
    SELECT Src, Dst FROM tc"
  local insert="INSERT INTO edge VALUES (0, 9001, 1.5), (9001, 9002, 0.5)"

  local warm_port_file cold_port_file warm_log
  warm_port_file=$(mktemp); cold_port_file=$(mktemp); warm_log=$(mktemp)
  "${build_dir}/src/rasql_serverd" --gen-rmat=edge:64 --engine-threads=2 \
    --incremental --port-file="${warm_port_file}" 2>"${warm_log}" &
  local warm_pid=$!
  "${build_dir}/src/rasql_serverd" --gen-rmat=edge:64 --engine-threads=2 \
    --port-file="${cold_port_file}" &
  local cold_pid=$!
  for _ in $(seq 1 100); do
    [[ -s "${warm_port_file}" && -s "${cold_port_file}" ]] && break
    sleep 0.1
  done
  local warm_port cold_port
  warm_port=$(cat "${warm_port_file}")
  cold_port=$(cat "${cold_port_file}")
  local client="${build_dir}/src/rasql_client"

  local first_out warm_out hit_out cold_out
  first_out=$("${client}" --port="${warm_port}" "${tc}")
  grep -q "^RESULT cache_hit=0" <<<"${first_out}"
  "${client}" --port="${warm_port}" "${insert}" > /dev/null
  warm_out=$("${client}" --port="${warm_port}" "${tc}")
  grep -q "^RESULT cache_hit=0" <<<"${warm_out}"   # refresh, not stale
  hit_out=$("${client}" --port="${warm_port}" "${tc}")
  grep -q "^RESULT cache_hit=1" <<<"${hit_out}"

  "${client}" --port="${cold_port}" "${insert}" > /dev/null
  cold_out=$("${client}" --port="${cold_port}" "${tc}")
  # Row bytes (everything after the RESULT header) must be identical.
  diff <(tail -n +2 <<<"${warm_out}") <(tail -n +2 <<<"${cold_out}")

  kill -TERM "${warm_pid}" "${cold_pid}"
  wait "${warm_pid}" "${cold_pid}"
  grep -q "refreshed=1" "${warm_log}"
  rm -f "${warm_port_file}" "${cold_port_file}" "${warm_log}"
}
incremental_smoke "${BUILD_DIR}"
incremental_smoke "${TSAN_BUILD_DIR}"

# clang-tidy gate over src/ (.clang-tidy rule set). Skips with a notice
# when the container has no clang-tidy on PATH.
scripts/tidy.sh
