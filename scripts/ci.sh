#!/usr/bin/env bash
# CI gate: build everything with -Werror plus ASan+UBSan and run the full
# ctest suite. Equivalent to `cmake --preset ci && cmake --build --preset
# ci && ctest --preset ci`, spelled out so it also works without preset
# support.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-ci}
JOBS=${JOBS:-$(nproc)}

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DRASQL_WERROR=ON \
  -DRASQL_ENABLE_ASAN=ON \
  -DRASQL_ENABLE_UBSAN=ON
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

# Stage-graph verification gate (DESIGN.md §11): the whole suite again
# with the static verifier forced on, so every live Cluster submission and
# every local fixpoint plan is contract-checked even though this is a
# release (NDEBUG) build where verification defaults off. A regression
# that mis-declares slices or ownership aborts the offending test here.
RASQL_VERIFY_STAGES=1 \
  ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

# Parallel-runtime gate: TSan excludes ASan, so the work-stealing executor
# and the threaded fixpoint tests get their own build. Only the four test
# binaries that exercise real threads are built and run — a full TSan build
# of every bench would double CI time for no extra coverage.
TSAN_BUILD_DIR=${TSAN_BUILD_DIR:-build-tsan}
cmake -B "${TSAN_BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DRASQL_ENABLE_TSAN=ON
cmake --build "${TSAN_BUILD_DIR}" -j "${JOBS}" \
  --target runtime_test dist_test fixpoint_test morsel_test
"${TSAN_BUILD_DIR}/tests/runtime_test"
"${TSAN_BUILD_DIR}/tests/dist_test"
"${TSAN_BUILD_DIR}/tests/fixpoint_test"
"${TSAN_BUILD_DIR}/tests/morsel_test"

# Async-shuffle matrix under TSan: the pipelined map/reduce path releases
# reduce tasks from the publish of individual map slices, so the
# release/acquire pairing in SliceReadiness and the graph scheduler's
# countdowns are exactly what TSan must see clean. The filtered re-run is
# cheap and makes the gate explicit even if the suites above reorganize.
"${TSAN_BUILD_DIR}/tests/runtime_test" \
  --gtest_filter='*Graph*:*Async*:*async*'
"${TSAN_BUILD_DIR}/tests/dist_test" \
  --gtest_filter='*Pipelined*:*Slice*:*ShuffleChannel*'

# Local-fixpoint thread matrix under TSan: the partitioned local path runs
# per-partition semi-naive terms and per-branch naive candidates on the
# pool, at threads {1,2,8} in both modes (LocalFixpointParallelTest runs
# the full matrix internally). Filtered re-run for the same reason as
# above: the gate stays explicit even if the suite reorganizes.
"${TSAN_BUILD_DIR}/tests/fixpoint_test" \
  --gtest_filter='*LocalFixpointParallel*'

# Morsel-split matrix under TSan: split sub-tasks write caller-owned slots
# concurrently with finalize tasks being released per partition, and the
# lazy per-partition hash build runs under call_once from several threads.
# The determinism matrix (threads {1,2,8} × morsel on/off, local and
# distributed) is exactly the schedule TSan must see clean.
"${TSAN_BUILD_DIR}/tests/morsel_test" \
  --gtest_filter='*MorselMatrix*:*MorselSplit*'

# clang-tidy gate over src/ (.clang-tidy rule set). Skips with a notice
# when the container has no clang-tidy on PATH.
scripts/tidy.sh
