#!/usr/bin/env bash
# clang-tidy gate over src/ using the rule set in .clang-tidy. Run by
# scripts/ci.sh after the test gates; also available standalone:
#
#   scripts/tidy.sh [extra clang-tidy args...]
#
# The toolchain container ships gcc only; when no clang-tidy binary is on
# PATH the gate degrades to a skip (exit 0 with a notice) instead of
# failing CI on a missing tool. A compile database is generated into
# build-tidy/ so the checks see exactly the flags the real build uses.
set -euo pipefail
cd "$(dirname "$0")/.."

# Columnar-API gates (DESIGN.md §13) — plain greps, so they run even when
# clang-tidy is unavailable. The storage API is column-major; row-oriented
# call sites must go through the Relation row-view compatibility layer.
#
# 1. `mutable_rows()` was deleted with the columnar redesign; nothing
#    outside src/storage/ may reference it (nothing inside does either).
if grep -rn 'mutable_rows' src tests bench examples --include='*.cc' \
    --include='*.h' --include='*.cpp' | grep -v '^src/storage/'; then
  echo "tidy.sh: FAIL — mutable_rows() no longer exists; use the" \
       "Relation row-view API (AppendRow/TakeRows/ForEachRow)" >&2
  exit 1
fi
# 2. Direct includes of storage/row.h are confined to the layers that own
#    row semantics (storage), evaluate expressions over rows (expr, sql)
#    or run the row-view hot path (physical). Everyone else receives Row
#    transitively through storage/relation.h.
if grep -rn '#include "storage/row\.h"' src --include='*.cc' \
    --include='*.h' \
    | grep -v -E '^src/(storage|physical|expr|sql)/'; then
  echo "tidy.sh: FAIL — include storage/relation.h instead of" \
       "storage/row.h outside storage/, physical/, expr/ and sql/" >&2
  exit 1
fi
# 3. The ad-hoc VecCompare/AnalyzeVecCompare batch filter was replaced by
#    the expr::VecProgram layer (DESIGN.md §15); nothing may reintroduce
#    it. Batch predicate kernels live in src/expr/ only.
if grep -rn 'VecCompare\|AnalyzeVecCompare' src tests bench examples \
    --include='*.cc' --include='*.h' --include='*.cpp'; then
  echo "tidy.sh: FAIL — VecCompare was superseded by expr::VecProgram;" \
       "compile batch predicates through expr/vec_program.h" >&2
  exit 1
fi
echo "tidy.sh: columnar-API grep gates passed"

TIDY_BIN=${TIDY_BIN:-clang-tidy}
if ! command -v "${TIDY_BIN}" >/dev/null 2>&1; then
  echo "tidy.sh: ${TIDY_BIN} not found on PATH; skipping the clang-tidy gate"
  exit 0
fi

BUILD_DIR=${TIDY_BUILD_DIR:-build-tidy}
JOBS=${JOBS:-$(nproc)}

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null

mapfile -t sources < <(find src -name '*.cc' | sort)
echo "tidy.sh: checking ${#sources[@]} files with $(${TIDY_BIN} --version | head -n 1)"

if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -clang-tidy-binary "${TIDY_BIN}" -p "${BUILD_DIR}" \
    -quiet -j "${JOBS}" "$@" "${sources[@]}"
else
  "${TIDY_BIN}" -p "${BUILD_DIR}" --quiet "$@" "${sources[@]}"
fi
