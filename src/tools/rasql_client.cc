// rasql_client — scripted client for the RaSQL wire protocol, used by the
// ci.sh serving smoke test and for poking a running rasql_serverd.
//
//   rasql_client --port=N [--format=csv|json|text] <statement>...
//
// Each positional argument is one protocol action, by prefix:
//   explain:<sql>   EXPLAIN round trip, prints the rendering
//   prepare:<sql>   PREPARE, prints "PREPARED id=<id> plan_hit=<0|1>"
//   exec:<id>       EXECUTE a statement id printed by an earlier prepare
//   <sql>           QUERY round trip
// Results print as "RESULT cache_hit=<0|1>" followed by the body; typed
// server errors print as "ERROR <CODE>: <message>" and the session
// continues (error paths are part of the smoke test). Transport failures
// abort with exit code 1; server-side errors exit 0 unless --expect-ok.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "server/client.h"
#include "storage/result_format.h"

namespace rasql::tools {
namespace {

int Main(int argc, char** argv) {
  uint16_t port = 0;
  storage::ResultFormat format = storage::ResultFormat::kCsv;
  bool expect_ok = false;
  std::vector<std::string> actions;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--port=", 0) == 0) {
      port = static_cast<uint16_t>(std::atoi(arg.c_str() + 7));
    } else if (arg.rfind("--format=", 0) == 0) {
      auto parsed = storage::ParseResultFormat(arg.substr(9));
      if (!parsed.ok()) {
        std::fprintf(stderr, "unknown --format\n");
        return 1;
      }
      format = *parsed;
    } else if (arg == "--expect-ok") {
      expect_ok = true;
    } else {
      actions.push_back(arg);
    }
  }
  if (port == 0 || actions.empty()) {
    std::fprintf(stderr,
                 "usage: rasql_client --port=N [--format=csv|json|text] "
                 "[--expect-ok] <statement>...\n");
    return 1;
  }

  server::Client client;
  auto status = client.Connect(port);
  if (!status.ok()) {
    std::fprintf(stderr, "connect: %s\n", status.ToString().c_str());
    return 1;
  }

  int server_errors = 0;
  auto report_error = [&](const common::Status& error) {
    ++server_errors;
    std::printf("ERROR %s\n", error.message().c_str());
  };
  for (const std::string& action : actions) {
    if (action.rfind("explain:", 0) == 0) {
      auto rendering = client.Explain(action.substr(8));
      if (!rendering.ok()) {
        report_error(rendering.status());
        continue;
      }
      std::printf("%s", rendering->c_str());
    } else if (action.rfind("prepare:", 0) == 0) {
      bool plan_hit = false;
      auto stmt_id = client.Prepare(action.substr(8), &plan_hit);
      if (!stmt_id.ok()) {
        report_error(stmt_id.status());
        continue;
      }
      std::printf("PREPARED id=%u plan_hit=%d\n", *stmt_id, plan_hit ? 1 : 0);
    } else if (action.rfind("exec:", 0) == 0) {
      auto result = client.Execute(
          static_cast<uint32_t>(std::atoi(action.c_str() + 5)), format);
      if (!result.ok()) {
        report_error(result.status());
        continue;
      }
      std::printf("RESULT cache_hit=%d\n%s", result->cache_hit ? 1 : 0,
                  result->body.c_str());
    } else {
      auto result = client.Query(action, format);
      if (!result.ok()) {
        report_error(result.status());
        continue;
      }
      std::printf("RESULT cache_hit=%d\n%s", result->cache_hit ? 1 : 0,
                  result->body.c_str());
    }
    if (!client.connected()) break;
  }
  return expect_ok && server_errors > 0 ? 2 : 0;
}

}  // namespace
}  // namespace rasql::tools

int main(int argc, char** argv) { return rasql::tools::Main(argc, argv); }
