// The `rasql` interactive shell: load CSV tables, run RaSQL queries, show
// plans and statistics. The tool-level counterpart of the paper's
// spark-shell integration.
//
// Usage:
//   rasql [--distributed] [--workers N] [--threads N] [--async-shuffle]
//         [--morsel-rows=N] [--batch-rows=N] [--lint] [--werror-lint]
//         [--verify-stages] [--incremental] [script.sql]
//
// --threads=N runs the task closures of every distributed stage AND the
// local fixpoint path's partitioned semi-naive/naive evaluation on a
// work-stealing pool of N real threads (0 = one per hardware thread);
// query results and fixpoint stats are identical for any thread count.
// --async-shuffle pipelines each map→reduce stage pair: reduce tasks are
// released per published shuffle slice instead of waiting for a stage
// barrier. Results and simulated metrics are unchanged; wall time drops.
// --morsel-rows=N splits each partition's delta into N-row morsels that
// run as independent tasks (0 = whole-partition); results, fixpoint stats
// and modeled metrics are identical for any value.
// --batch-rows=N runs fused pipelines and the aggregate loop in vectorized
// sub-batches of at most N rows over the columnar chunks (0 = the
// row-at-a-time interpreter); results, fixpoint stats and modeled metrics
// are bit-identical for any value.
// --lint runs the static PreM/monotonicity analyzer before every query
// and refuses error-level queries; --werror-lint also refuses
// warning-level ones.
// --incremental retains each converged recursive clique's state and
// warm-starts the fixpoint from the appended rows after INSERTs into its
// base tables (lint-proven queries only; everything else recomputes cold).
// Warm results are bit-identical to cold ones (DESIGN.md §14).
//
// Dot-commands inside the shell:
//   .load <table> <file.csv>   register a CSV/TSV file as a table
//   .gen rmat <table> <n>      register an RMAT edge table (n vertices)
//   .tables                    list registered tables
//   .schema <table>            show a table's schema
//   .explain <query>           print the compiled plan
//   .stats                     fixpoint/cluster stats of the last query
//   .quit
// --verify-stages forces the static stage-graph verifier on (DESIGN.md
// §11) even in release builds; debug builds always verify.
//
// `EXPLAIN LINT <query>;` prints the static-analysis report without
// executing; `EXPLAIN STAGES <query>;` prints the verified stage graph
// the query's cliques would submit, also without executing. Anything
// else is executed as RaSQL (statements end with ';').

#include <csignal>

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "datagen/graph_gen.h"
#include "engine/rasql_context.h"
#include "server/server.h"
#include "storage/csv.h"
#include "storage/result_format.h"

namespace rasql::tools {
namespace {

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  .load <table> <file>   load a CSV file as a table\n"
      "  .gen rmat <table> <n>  generate a weighted RMAT edge table\n"
      "  .tables                list tables\n"
      "  .schema <table>        show a table's schema\n"
      "  .explain <query>;      show the compiled plan\n"
      "  .stats                 stats of the last query\n"
      "  .help                  this text\n"
      "  .quit                  exit\n"
      "  EXPLAIN LINT <query>;  static PreM/monotonicity report\n"
      "  EXPLAIN STAGES <query>;  verified stage graph, no execution\n"
      "anything else runs as RaSQL (end statements with ';').\n");
}

class Shell {
 public:
  explicit Shell(engine::EngineConfig config,
                 storage::ResultFormat format = storage::ResultFormat::kText)
      : ctx_(std::move(config)), format_(format) {}

  /// The shell's engine context — `--serve` hands it to server::Server
  /// after the setup script ran.
  engine::RaSqlContext* context() { return &ctx_; }

  /// Processes one complete input (a dot-command or a SQL statement).
  /// Returns false when the shell should exit.
  bool Handle(const std::string& input) {
    if (input.empty()) return true;
    if (input[0] == '.') return HandleCommand(input);
    if (std::string rest; StripExplainPrefix(input, "LINT", &rest)) {
      auto report = ctx_.Lint(rest);
      if (!report.ok()) {
        ++num_errors_;
        std::printf("error: %s\n", report.status().ToString().c_str());
      } else {
        std::printf("%s", report->ToString().c_str());
      }
      return true;
    }
    if (std::string rest; StripExplainPrefix(input, "STAGES", &rest)) {
      auto stages = ctx_.ExplainStages(rest);
      if (!stages.ok()) {
        ++num_errors_;
        std::printf("error: %s\n", stages.status().ToString().c_str());
      } else {
        std::printf("%s", stages->c_str());
      }
      return true;
    }
    auto result = ctx_.Execute(input);
    if (!result.ok()) {
      ++num_errors_;
      std::printf("error: %s\n", result.status().ToString().c_str());
      return true;
    }
    // Non-blocking lint findings (warnings under --lint without
    // --werror-lint) still deserve eyeballs; surface them on stderr so
    // they don't corrupt piped query output.
    if (ctx_.config().lint_before_execute &&
        result->lint_report.engine.HasWarnings()) {
      std::fprintf(stderr, "%s", result->lint_report.ToString().c_str());
    }
    if (format_ == storage::ResultFormat::kText) {
      // Interactive default: a 40-row preview, not a data export.
      std::printf("%s", result->relation.ToString(40).c_str());
      std::printf("(%zu rows)\n", result->relation.size());
    } else {
      // --format=csv|json: machine-readable, every row, same writer the
      // server uses for RESULT frames (storage::FormatRelation).
      std::printf("%s",
                  storage::FormatRelation(result->relation, format_).c_str());
    }
    last_ = std::move(*result);
    return true;
  }

 private:
  /// Recognizes the `EXPLAIN <mode> <query>` prefix (case-insensitive,
  /// `mode` = LINT or STAGES); fills `rest` with the query that follows.
  static bool StripExplainPrefix(const std::string& input, const char* mode,
                                 std::string* rest) {
    const char* const kWords[] = {"EXPLAIN", mode};
    size_t pos = input.find_first_not_of(" \t\n");
    for (const char* word : kWords) {
      if (pos == std::string::npos) return false;
      const size_t len = std::strlen(word);
      if (input.size() - pos < len) return false;
      for (size_t i = 0; i < len; ++i) {
        if (std::toupper(static_cast<unsigned char>(input[pos + i])) !=
            word[i]) {
          return false;
        }
      }
      pos = input.find_first_not_of(" \t\n", pos + len);
    }
    *rest = pos == std::string::npos ? "" : input.substr(pos);
    return true;
  }

  bool HandleCommand(const std::string& input) {
    std::istringstream in(input);
    std::string cmd;
    in >> cmd;
    if (cmd == ".quit" || cmd == ".exit") return false;
    if (cmd == ".help") {
      PrintHelp();
    } else if (cmd == ".tables") {
      for (const std::string& name : tables_) std::printf("%s\n", name.c_str());
    } else if (cmd == ".load") {
      std::string table, file;
      in >> table >> file;
      if (table.empty() || file.empty()) {
        std::printf("usage: .load <table> <file>\n");
        return true;
      }
      storage::CsvOptions options;
      if (file.size() > 4 && file.substr(file.size() - 4) == ".tsv") {
        options.delimiter = '\t';
      }
      auto rel = storage::LoadCsv(file, options);
      if (!rel.ok()) {
        std::printf("error: %s\n", rel.status().ToString().c_str());
        return true;
      }
      std::printf("loaded %zu rows [%s]\n", rel->size(),
                  rel->schema().ToString().c_str());
      Register(table, std::move(*rel));
    } else if (cmd == ".gen") {
      std::string kind, table;
      int64_t n = 0;
      in >> kind >> table >> n;
      if (kind != "rmat" || table.empty() || n <= 1) {
        std::printf("usage: .gen rmat <table> <num_vertices>\n");
        return true;
      }
      datagen::RmatOptions opt;
      opt.num_vertices = n;
      opt.weighted = true;
      auto rel = datagen::ToEdgeRelation(datagen::GenerateRmat(opt));
      std::printf("generated %zu weighted edges\n", rel.size());
      Register(table, std::move(rel));
    } else if (cmd == ".schema") {
      std::string table;
      in >> table;
      const storage::Relation* rel = ctx_.FindTable(table);
      if (rel == nullptr) {
        std::printf("no table named '%s'\n", table.c_str());
      } else {
        std::printf("%s (%zu rows)\n", rel->schema().ToString().c_str(),
                    rel->size());
      }
    } else if (cmd == ".explain") {
      std::string rest;
      std::getline(in, rest);
      auto plan = ctx_.Explain(rest);
      if (!plan.ok()) {
        std::printf("error: %s\n", plan.status().ToString().c_str());
      } else {
        std::printf("%s", plan->c_str());
      }
    } else if (cmd == ".stats") {
      const auto& stats = last_.fixpoint_stats;
      std::printf(
          "iterations=%d delta_rows=%zu plans=%zu semi_naive=%d "
          "decomposed=%d capped=%d\n",
          stats.iterations, stats.total_delta_rows, stats.plan_executions,
          stats.used_semi_naive, stats.used_decomposed,
          stats.hit_iteration_limit);
      if (ctx_.config().incremental) {
        std::printf("warm_starts=%d seed_delta_rows=%zu iterations_saved=%d\n",
                    stats.warm_starts, stats.seed_delta_rows,
                    stats.iterations_saved);
      }
      if (ctx_.config().distributed) {
        std::printf("%s\n", last_.job_metrics.Summary().c_str());
      }
    } else {
      std::printf("unknown command %s (try .help)\n", cmd.c_str());
    }
    return true;
  }

  void Register(const std::string& table, storage::Relation rel) {
    (void)ctx_.DropTable(table);  // replace silently if present
    auto status = ctx_.RegisterTable(table, std::move(rel));
    if (!status.ok()) {
      std::printf("error: %s\n", status.ToString().c_str());
      return;
    }
    tables_.push_back(table);
  }

 public:
  /// Statements that failed (parse, analysis, lint refusal, execution).
  /// Script mode turns this into the process exit code so CI can gate on
  /// `rasql --werror-lint script.sql`.
  int num_errors() const { return num_errors_; }

 private:
  engine::RaSqlContext ctx_;
  const storage::ResultFormat format_;
  std::vector<std::string> tables_;
  /// The most recent successful execution, backing `.stats`.
  engine::ExecutionResult last_;
  int num_errors_ = 0;
};

sigset_t ShutdownSignalSet() {
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  return set;
}

/// Blocks SIGINT/SIGTERM process-wide for `--serve`. Must run before
/// Server::Start so every pool thread inherits the mask — an unblocked
/// thread receiving SIGINT would kill the process instead of letting
/// sigwait drive the clean shutdown.
void BlockShutdownSignals() {
  sigset_t set = ShutdownSignalSet();
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
}

int WaitForShutdownSignal() {
  sigset_t set = ShutdownSignalSet();
  int sig = 0;
  sigwait(&set, &sig);
  return sig;
}

int Main(int argc, char** argv) {
  engine::EngineConfig config;
  std::string script_path;
  storage::ResultFormat format = storage::ResultFormat::kText;
  bool serve = false;
  server::ServerOptions server_options;
  std::string port_file;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--distributed") == 0) {
      config.distributed = true;
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      config.cluster.num_workers = std::atoi(argv[++i]);
      config.cluster.num_partitions = config.cluster.num_workers * 2;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      config.runtime.num_threads = std::atoi(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      config.runtime.num_threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--async-shuffle") == 0) {
      config.runtime.async_shuffle = true;
    } else if (std::strncmp(argv[i], "--morsel-rows=", 14) == 0) {
      config.runtime.morsel_rows =
          static_cast<size_t>(std::atoll(argv[i] + 14));
    } else if (std::strncmp(argv[i], "--batch-rows=", 13) == 0) {
      config.runtime.batch_rows =
          static_cast<size_t>(std::atoll(argv[i] + 13));
    } else if (std::strcmp(argv[i], "--lint") == 0) {
      config.lint_before_execute = true;
    } else if (std::strcmp(argv[i], "--werror-lint") == 0) {
      config.lint_before_execute = true;
      config.lint.werror = true;
    } else if (std::strcmp(argv[i], "--verify-stages") == 0) {
      config.runtime.verify_stages = true;
    } else if (std::strcmp(argv[i], "--incremental") == 0) {
      config.incremental = true;
    } else if (std::strncmp(argv[i], "--format=", 9) == 0) {
      auto parsed = storage::ParseResultFormat(argv[i] + 9);
      if (!parsed.ok()) {
        std::fprintf(stderr, "unknown --format '%s' (csv, json, text)\n",
                     argv[i] + 9);
        return 1;
      }
      format = *parsed;
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      serve = true;
    } else if (std::strncmp(argv[i], "--port=", 7) == 0) {
      server_options.port = static_cast<uint16_t>(std::atoi(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--port-file=", 12) == 0) {
      port_file = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: rasql [--distributed] [--workers N] [--threads N] "
          "[--async-shuffle] [--morsel-rows=N] [--batch-rows=N] [--lint] "
          "[--werror-lint] [--verify-stages] [--incremental] "
          "[--format=csv|json|text] "
          "[--serve [--port=N] [--port-file=PATH]] [script]\n");
      PrintHelp();
      return 0;
    } else {
      script_path = argv[i];
    }
  }

  Shell shell(config, format);
  std::istream* in = &std::cin;
  std::ifstream file;
  const bool interactive = script_path.empty() && !serve;
  if (!script_path.empty()) {
    file.open(script_path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", script_path.c_str());
      return 1;
    }
    in = &file;
  }

  if (interactive) {
    std::printf("RaSQL shell — .help for commands\n");
  }
  if (!serve || !script_path.empty()) {
    std::string pending;
    std::string line;
    while (true) {
      if (interactive) std::printf(pending.empty() ? "rasql> " : "   ...> ");
      if (!std::getline(*in, line)) break;
      // Dot-commands are line-oriented; SQL accumulates until ';'.
      if (pending.empty() && !line.empty() && line[0] == '.') {
        if (!shell.Handle(line)) break;
        continue;
      }
      pending += line;
      pending += "\n";
      const auto semi = pending.find_last_not_of(" \t\n");
      if (semi != std::string::npos && pending[semi] == ';') {
        const bool keep_going = shell.Handle(pending);
        pending.clear();
        if (!keep_going) break;
      }
    }
    if (!pending.empty()) shell.Handle(pending);
  }

  if (serve) {
    // `--serve [--port=N]`: the script above seeded the catalog; serve it.
    if (shell.num_errors() > 0) {
      std::fprintf(stderr, "refusing to serve: setup script had errors\n");
      return 1;
    }
    BlockShutdownSignals();
    server::Server server(shell.context(), server_options);
    const auto status = server.Start();
    if (!status.ok()) {
      std::fprintf(stderr, "cannot serve: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("RASQL_SERVER_PORT=%u\n", server.port());
    std::fflush(stdout);
    if (!port_file.empty()) {
      std::ofstream out(port_file);
      out << server.port() << "\n";
    }
    WaitForShutdownSignal();
    server.Stop();
    return 0;
  }
  // Interactive users saw the errors already; scripts gate on the code.
  return interactive ? 0 : (shell.num_errors() > 0 ? 1 : 0);
}

}  // namespace
}  // namespace rasql::tools

int main(int argc, char** argv) { return rasql::tools::Main(argc, argv); }
