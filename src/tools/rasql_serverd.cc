// rasql_serverd — the standalone RaSQL query server (DESIGN.md §12).
//
// Seeds a catalog (from a SQL setup script and/or generated graphs), then
// serves the wire protocol until SIGINT/SIGTERM:
//
//   rasql_serverd [--port=N] [--port-file=PATH]
//                 [--io-slots=N] [--exec-slots=N] [--max-queue=N]
//                 [--engine-threads=N] [--plan-cache=N] [--result-cache=N]
//                 [--no-result-cache] [--incremental]
//                 [--gen-rmat=<table>:<vertices>] [--load=<table>:<file>]
//                 [--setup=<script.sql>] [--distributed] [--workers=N]
//
// Prints `RASQL_SERVER_PORT=<port>` on stdout once listening (port 0
// picks an ephemeral port) so scripts can connect without racing, and a
// serving-stats summary on stderr at shutdown.

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "datagen/graph_gen.h"
#include "engine/rasql_context.h"
#include "server/server.h"
#include "storage/csv.h"

namespace rasql::tools {
namespace {

int Fail(const char* what, const common::Status& status) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  return 1;
}

int Main(int argc, char** argv) {
  engine::EngineConfig config;
  server::ServerOptions options;
  std::string port_file;
  std::string setup_path;
  std::vector<std::pair<std::string, int64_t>> gen_rmat;
  std::vector<std::pair<std::string, std::string>> loads;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto int_flag = [&](const char* name, int* out) {
      const size_t len = std::strlen(name);
      if (arg.compare(0, len, name) != 0) return false;
      *out = std::atoi(arg.c_str() + len);
      return true;
    };
    int port = 0;
    int size = 0;
    if (int_flag("--port=", &port)) {
      options.port = static_cast<uint16_t>(port);
    } else if (arg.rfind("--port-file=", 0) == 0) {
      port_file = arg.substr(12);
    } else if (int_flag("--io-slots=", &options.io_slots) ||
               int_flag("--exec-slots=", &options.exec_slots) ||
               int_flag("--max-queue=", &options.max_queue_depth) ||
               int_flag("--engine-threads=", &options.engine_threads) ||
               int_flag("--workers=", &config.cluster.num_workers)) {
      if (config.cluster.num_workers > 0) {
        config.cluster.num_partitions = config.cluster.num_workers * 2;
      }
    } else if (int_flag("--plan-cache=", &size)) {
      options.plan_cache_entries = static_cast<size_t>(size);
    } else if (int_flag("--result-cache=", &size)) {
      options.result_cache_entries = static_cast<size_t>(size);
    } else if (arg == "--no-result-cache") {
      options.enable_result_cache = false;
    } else if (arg == "--distributed") {
      config.distributed = true;
    } else if (arg == "--incremental") {
      config.incremental = true;
    } else if (arg.rfind("--setup=", 0) == 0) {
      setup_path = arg.substr(8);
    } else if (arg.rfind("--gen-rmat=", 0) == 0) {
      const std::string spec = arg.substr(11);
      const size_t colon = spec.find(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "--gen-rmat wants <table>:<vertices>\n");
        return 1;
      }
      gen_rmat.emplace_back(spec.substr(0, colon),
                            std::atoll(spec.c_str() + colon + 1));
    } else if (arg.rfind("--load=", 0) == 0) {
      const std::string spec = arg.substr(7);
      const size_t colon = spec.find(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "--load wants <table>:<file.csv>\n");
        return 1;
      }
      loads.emplace_back(spec.substr(0, colon), spec.substr(colon + 1));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 1;
    }
  }

  engine::RaSqlContext ctx(config);
  for (const auto& [table, vertices] : gen_rmat) {
    datagen::RmatOptions opt;
    opt.num_vertices = vertices;
    opt.weighted = true;
    auto status = ctx.RegisterTable(
        table, datagen::ToEdgeRelation(datagen::GenerateRmat(opt)));
    if (!status.ok()) return Fail("--gen-rmat", status);
  }
  for (const auto& [table, file] : loads) {
    auto relation = storage::LoadCsv(file, {});
    if (!relation.ok()) return Fail("--load", relation.status());
    auto status = ctx.RegisterTable(table, std::move(*relation));
    if (!status.ok()) return Fail("--load", status);
  }
  if (!setup_path.empty()) {
    std::ifstream in(setup_path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", setup_path.c_str());
      return 1;
    }
    std::ostringstream script;
    script << in.rdbuf();
    auto result = ctx.Execute(script.str());
    if (!result.ok()) return Fail("--setup", result.status());
  }

  // Block shutdown signals before Start so server threads inherit the mask
  // and sigwait below is the only consumer.
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);

  server::Server server(&ctx, options);
  auto status = server.Start();
  if (!status.ok()) return Fail("start", status);
  std::printf("RASQL_SERVER_PORT=%u\n", server.port());
  std::fflush(stdout);
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << server.port() << "\n";
  }

  int sig = 0;
  sigwait(&set, &sig);
  server.Stop();

  const server::ServerStats stats = server.stats();
  std::fprintf(stderr,
               "sessions=%llu queries=%llu prepares=%llu executes=%llu "
               "errors=%llu rejected=%llu plan_cache{hit=%llu miss=%llu} "
               "result_cache{hit=%llu miss=%llu invalidated=%llu "
               "refreshed=%llu}\n",
               static_cast<unsigned long long>(stats.sessions_opened),
               static_cast<unsigned long long>(stats.queries),
               static_cast<unsigned long long>(stats.prepares),
               static_cast<unsigned long long>(stats.executes),
               static_cast<unsigned long long>(stats.errors),
               static_cast<unsigned long long>(stats.admission_rejects),
               static_cast<unsigned long long>(stats.plan_cache.hits),
               static_cast<unsigned long long>(stats.plan_cache.misses),
               static_cast<unsigned long long>(stats.result_cache.hits),
               static_cast<unsigned long long>(stats.result_cache.misses),
               static_cast<unsigned long long>(
                   stats.result_cache.invalidations),
               static_cast<unsigned long long>(stats.result_cache.refreshes));
  return 0;
}

}  // namespace
}  // namespace rasql::tools

int main(int argc, char** argv) { return rasql::tools::Main(argc, argv); }
