#include "server/client.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace rasql::server {

using common::Result;
using common::Status;

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      read_buffer_(std::move(other.read_buffer_)),
      last_error_code_(other.last_error_code_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    read_buffer_ = std::move(other.read_buffer_);
    last_error_code_ = other.last_error_code_;
    other.fd_ = -1;
  }
  return *this;
}

Status Client::Connect(uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::ExecutionError(std::string("socket: ") +
                                  std::strerror(errno));
  }
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const Status status =
        Status::ExecutionError(std::string("connect: ") +
                               std::strerror(errno));
    Close();
    return status;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  read_buffer_.clear();
  return Status::OK();
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  read_buffer_.clear();
}

Result<Frame> Client::RoundTrip(const Frame& request) {
  if (fd_ < 0) return Status::InvalidArgument("client is not connected");
  Status sent = SendFrame(fd_, request);
  if (!sent.ok()) return sent;
  Result<Frame> response = RecvFrame(fd_, &read_buffer_);
  if (!response.ok()) return response;
  if (response->type == FrameType::kError) {
    auto decoded = DecodeErrorPayload(response->payload);
    if (!decoded.ok()) return decoded.status();
    last_error_code_ = decoded->first;
    return Status::ExecutionError(std::string(ErrorCodeName(decoded->first)) +
                                  ": " + decoded->second);
  }
  return response;
}

Result<ClientResult> Client::ExpectResult(const Frame& request) {
  Result<Frame> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  if (response->type != FrameType::kResult) {
    return Status::ExecutionError("unexpected frame type from server");
  }
  Result<ResultPayload> payload = DecodeResultPayload(response->payload);
  if (!payload.ok()) return payload.status();
  ClientResult result;
  result.format = payload->format;
  result.cache_hit = payload->cache_hit;
  result.iterations = payload->iterations;
  result.total_delta_rows = payload->total_delta_rows;
  result.plan_executions = payload->plan_executions;
  result.used_semi_naive = payload->used_semi_naive;
  result.body = std::move(payload->body);
  return result;
}

Result<ClientResult> Client::Query(const std::string& sql,
                                   storage::ResultFormat format) {
  Frame request;
  request.type = FrameType::kQuery;
  request.payload.push_back(static_cast<char>(format));
  request.payload += sql;
  return ExpectResult(request);
}

Result<uint32_t> Client::Prepare(const std::string& sql,
                                 bool* plan_cache_hit) {
  Frame request;
  request.type = FrameType::kPrepare;
  request.payload = sql;
  Result<Frame> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  if (response->type != FrameType::kPrepared) {
    return Status::ExecutionError("unexpected frame type from server");
  }
  size_t pos = 0;
  uint32_t stmt_id = 0;
  if (!ReadU32(response->payload, &pos, &stmt_id) ||
      pos >= response->payload.size()) {
    return Status::ExecutionError("truncated PREPARED payload");
  }
  if (plan_cache_hit != nullptr) {
    *plan_cache_hit = response->payload[pos] != 0;
  }
  return stmt_id;
}

Result<ClientResult> Client::Execute(uint32_t stmt_id,
                                     storage::ResultFormat format) {
  Frame request;
  request.type = FrameType::kExecute;
  AppendU32(&request.payload, stmt_id);
  request.payload.push_back(static_cast<char>(format));
  return ExpectResult(request);
}

Result<std::string> Client::Explain(const std::string& sql) {
  Frame request;
  request.type = FrameType::kExplain;
  request.payload = sql;
  Result<ClientResult> result = ExpectResult(request);
  if (!result.ok()) return result.status();
  return std::move(result->body);
}

}  // namespace rasql::server
