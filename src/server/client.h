#ifndef RASQL_SERVER_CLIENT_H_
#define RASQL_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "server/frame.h"
#include "storage/result_format.h"

namespace rasql::server {

/// One response to Query/Execute: the serialized result body plus the
/// cache provenance and fixpoint statistics the server reported — enough
/// for a client to cross-validate a cache hit against a cold run.
struct ClientResult {
  storage::ResultFormat format = storage::ResultFormat::kCsv;
  bool cache_hit = false;
  int32_t iterations = 0;
  uint64_t total_delta_rows = 0;
  uint64_t plan_executions = 0;
  bool used_semi_naive = false;
  std::string body;
};

/// Blocking client for the RaSQL wire protocol (DESIGN.md §12). One
/// connection per Client; NOT thread-safe — each session thread owns its
/// own Client. Server-reported errors surface as a Status carrying the
/// message, with the typed wire code retained in last_error_code().
class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects to a server on localhost.
  common::Status Connect(uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Runs a SQL script, waiting for the RESULT frame.
  common::Result<ClientResult> Query(
      const std::string& sql,
      storage::ResultFormat format = storage::ResultFormat::kCsv);

  /// Prepares a single-query statement; returns the statement id.
  /// `plan_cache_hit` (optional) reports whether the server already had
  /// the normalized plan interned.
  common::Result<uint32_t> Prepare(const std::string& sql,
                                   bool* plan_cache_hit = nullptr);

  /// Runs a previously prepared statement.
  common::Result<ClientResult> Execute(
      uint32_t stmt_id,
      storage::ResultFormat format = storage::ResultFormat::kCsv);

  /// Returns the server's EXPLAIN rendering (no execution).
  common::Result<std::string> Explain(const std::string& sql);

  /// The typed code of the last ERROR frame received (e.g. retry on
  /// kAdmissionRejected); meaningless unless the last call failed with a
  /// server-reported error.
  ErrorCode last_error_code() const { return last_error_code_; }

 private:
  /// Sends `request` and reads frames until RESULT/PREPARED/ERROR.
  common::Result<Frame> RoundTrip(const Frame& request);
  common::Result<ClientResult> ExpectResult(const Frame& request);

  int fd_ = -1;
  std::string read_buffer_;
  ErrorCode last_error_code_ = ErrorCode::kInternal;
};

}  // namespace rasql::server

#endif  // RASQL_SERVER_CLIENT_H_
