#include "server/frame.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/check.h"

namespace rasql::server {

using common::Result;
using common::Status;

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kParse: return "PARSE";
    case ErrorCode::kAnalysis: return "ANALYSIS";
    case ErrorCode::kExecution: return "EXECUTION";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kAdmissionRejected: return "ADMISSION_REJECTED";
    case ErrorCode::kUnknownStatement: return "UNKNOWN_STATEMENT";
    case ErrorCode::kProtocol: return "PROTOCOL";
    case ErrorCode::kShuttingDown: return "SHUTTING_DOWN";
    case ErrorCode::kInternal: return "INTERNAL";
  }
  return "?";
}

void AppendU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v >> 8));
  out->push_back(static_cast<char>(v & 0xff));
}

void AppendU32(std::string* out, uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

namespace {

template <typename T>
bool ReadBigEndian(const std::string& in, size_t* pos, T* v) {
  if (in.size() - *pos < sizeof(T)) return false;
  T out = 0;
  for (size_t i = 0; i < sizeof(T); ++i) {
    out = static_cast<T>(out << 8) |
          static_cast<T>(static_cast<unsigned char>(in[*pos + i]));
  }
  *pos += sizeof(T);
  *v = out;
  return true;
}

}  // namespace

bool ReadU16(const std::string& in, size_t* pos, uint16_t* v) {
  return ReadBigEndian(in, pos, v);
}
bool ReadU32(const std::string& in, size_t* pos, uint32_t* v) {
  return ReadBigEndian(in, pos, v);
}
bool ReadU64(const std::string& in, size_t* pos, uint64_t* v) {
  return ReadBigEndian(in, pos, v);
}

std::string EncodeFrame(const Frame& frame) {
  RASQL_CHECK(frame.payload.size() + 1 <= kMaxFrameBytes);
  std::string out;
  out.reserve(5 + frame.payload.size());
  AppendU32(&out, static_cast<uint32_t>(frame.payload.size() + 1));
  out.push_back(static_cast<char>(frame.type));
  out += frame.payload;
  return out;
}

int TryDecodeFrame(std::string* buffer, Frame* frame) {
  if (buffer->size() < 5) return 0;
  size_t pos = 0;
  uint32_t length = 0;
  ReadU32(*buffer, &pos, &length);
  if (length == 0 || length > kMaxFrameBytes) return -1;
  if (buffer->size() < 4 + static_cast<size_t>(length)) return 0;
  frame->type = static_cast<FrameType>((*buffer)[4]);
  frame->payload.assign(*buffer, 5, length - 1);
  buffer->erase(0, 4 + static_cast<size_t>(length));
  return 1;
}

std::string EncodeResultPayload(const ResultPayload& result) {
  std::string out;
  out.reserve(24 + result.body.size());
  out.push_back(static_cast<char>(result.format));
  out.push_back(result.cache_hit ? 1 : 0);
  AppendU32(&out, static_cast<uint32_t>(result.iterations));
  AppendU64(&out, result.total_delta_rows);
  AppendU64(&out, result.plan_executions);
  out.push_back(result.used_semi_naive ? 1 : 0);
  out += result.body;
  return out;
}

Result<ResultPayload> DecodeResultPayload(const std::string& payload) {
  if (payload.size() < 23) {
    return Status::ExecutionError("truncated RESULT payload");
  }
  ResultPayload result;
  result.format = static_cast<storage::ResultFormat>(payload[0]);
  result.cache_hit = payload[1] != 0;
  size_t pos = 2;
  uint32_t iterations = 0;
  ReadU32(payload, &pos, &iterations);
  result.iterations = static_cast<int32_t>(iterations);
  ReadU64(payload, &pos, &result.total_delta_rows);
  ReadU64(payload, &pos, &result.plan_executions);
  result.used_semi_naive = payload[pos++] != 0;
  result.body.assign(payload, pos, payload.size() - pos);
  return result;
}

std::string EncodeErrorPayload(ErrorCode code, const std::string& message) {
  std::string out;
  AppendU16(&out, static_cast<uint16_t>(code));
  out += message;
  return out;
}

Result<std::pair<ErrorCode, std::string>> DecodeErrorPayload(
    const std::string& payload) {
  size_t pos = 0;
  uint16_t code = 0;
  if (!ReadU16(payload, &pos, &code)) {
    return Status::ExecutionError("truncated ERROR payload");
  }
  return std::make_pair(static_cast<ErrorCode>(code),
                        payload.substr(pos));
}

Status SendFrame(int fd, const Frame& frame) {
  const std::string bytes = EncodeFrame(frame);
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::ExecutionError(std::string("send: ") +
                                    std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<Frame> RecvFrame(int fd, std::string* buffer) {
  Frame frame;
  char chunk[4096];
  while (true) {
    const int state = TryDecodeFrame(buffer, &frame);
    if (state == 1) return frame;
    if (state == -1) return Status::ExecutionError("malformed frame length");
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::ExecutionError(std::string("recv: ") +
                                    std::strerror(errno));
    }
    if (n == 0) {
      if (buffer->empty()) return Status::NotFound("connection closed");
      return Status::ExecutionError("connection closed mid-frame");
    }
    buffer->append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace rasql::server
