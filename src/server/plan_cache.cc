#include "server/plan_cache.h"

namespace rasql::server {

std::shared_ptr<const PlanEntry> PlanCache::LookupSql(const std::string& sql) {
  std::lock_guard<std::mutex> lock(mu_);
  auto memo = sql_to_key_.find(sql);
  if (memo == sql_to_key_.end()) {
    ++misses_;
    return nullptr;
  }
  auto it = by_key_.find(memo->second);
  if (it == by_key_.end()) {
    // The plan this memo pointed at was evicted; drop the stale memo.
    sql_to_key_.erase(memo);
    ++misses_;
    return nullptr;
  }
  ++hits_;
  TouchLocked(it->first);
  return it->second.entry;
}

std::shared_ptr<const PlanEntry> PlanCache::Intern(PlanEntry entry,
                                                   bool* existed) {
  std::lock_guard<std::mutex> lock(mu_);
  if (existed != nullptr) *existed = by_key_.count(entry.plan_key) > 0;
  // The memo maps raw SQL text, of which an adversarial client can send
  // unboundedly many variants; dropping it wholesale at 4x capacity keeps
  // it bounded without per-entry LRU bookkeeping (memos rebuild on use).
  if (sql_to_key_.size() >= capacity_ * 4) sql_to_key_.clear();
  sql_to_key_[entry.sql] = entry.plan_key;
  auto it = by_key_.find(entry.plan_key);
  if (it != by_key_.end()) {
    ++hits_;
    TouchLocked(it->first);
    return it->second.entry;
  }
  lru_.push_front(entry.plan_key);
  auto shared = std::make_shared<const PlanEntry>(std::move(entry));
  by_key_.emplace(shared->plan_key, Slot{shared, lru_.begin()});
  EvictLocked();
  return shared;
}

void PlanCache::TouchLocked(const std::string& key) {
  auto it = by_key_.find(key);
  lru_.erase(it->second.lru_pos);
  lru_.push_front(key);
  it->second.lru_pos = lru_.begin();
}

void PlanCache::EvictLocked() {
  while (by_key_.size() > capacity_ && !lru_.empty()) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    by_key_.erase(victim);
    // Stale sql_to_key_ memos pointing at the victim are lazily pruned in
    // LookupSql; scanning the whole memo map here would be O(n) per evict.
  }
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.entries = by_key_.size();
  return stats;
}

}  // namespace rasql::server
