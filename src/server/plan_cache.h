#ifndef RASQL_SERVER_PLAN_CACHE_H_
#define RASQL_SERVER_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace rasql::server {

/// One normalized prepared plan, shared server-wide across sessions. The
/// key is the engine's NormalizedPlanKey rendering — the optimized
/// recursive-clique plans plus body plan — so two textually different
/// queries that compile identically intern to one entry. Immutable after
/// interning; sessions hold shared_ptrs from their statement tables.
struct PlanEntry {
  std::string sql;       ///< the SQL that first interned the plan
  std::string plan_key;  ///< normalized clique/body plan rendering
  /// Lowercased base tables the query reads (sql::ReferencedTables) — the
  /// result cache keys on these tables' versions.
  std::vector<std::string> tables;
};

/// Server-wide prepared-plan cache: interns PlanEntry by normalized plan
/// key and memoizes SQL text → entry so a repeated QUERY frame skips
/// re-analysis entirely. Both maps evict LRU at `capacity`. Thread-safe.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the entry whose exact SQL text was interned before, or null.
  std::shared_ptr<const PlanEntry> LookupSql(const std::string& sql);

  /// Interns a computed plan under its normalized key. If another session
  /// interned the same plan key first, that entry wins (and this call
  /// counts as a hit); the SQL-text memo is updated either way.
  /// `existed` (optional) reports whether the plan was already interned —
  /// the PREPARED frame's plan_cache_hit flag.
  std::shared_ptr<const PlanEntry> Intern(PlanEntry entry,
                                          bool* existed = nullptr);

  struct Stats {
    uint64_t hits = 0;    ///< LookupSql or Intern found an existing plan
    uint64_t misses = 0;  ///< LookupSql found nothing
    uint64_t entries = 0;
  };
  Stats stats() const;

 private:
  void TouchLocked(const std::string& key);
  void EvictLocked();

  const size_t capacity_;
  mutable std::mutex mu_;
  /// LRU order, most-recent first; elements are plan keys.
  std::list<std::string> lru_;
  struct Slot {
    std::shared_ptr<const PlanEntry> entry;
    std::list<std::string>::iterator lru_pos;
  };
  std::unordered_map<std::string, Slot> by_key_;
  /// SQL-text memo into by_key_ entries (not separately LRU'd: pruned when
  /// its target is evicted).
  std::unordered_map<std::string, std::string> sql_to_key_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace rasql::server

#endif  // RASQL_SERVER_PLAN_CACHE_H_
