#include "server/server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "sql/parser.h"
#include "storage/result_format.h"
#include "storage/schema.h"

namespace rasql::server {

using common::Result;
using common::Status;
using common::StatusCode;

namespace {

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

ErrorCode MapStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kParseError: return ErrorCode::kParse;
    case StatusCode::kAnalysisError: return ErrorCode::kAnalysis;
    case StatusCode::kExecutionError: return ErrorCode::kExecution;
    case StatusCode::kNotFound: return ErrorCode::kNotFound;
    case StatusCode::kInvalidArgument:
    case StatusCode::kAlreadyExists: return ErrorCode::kInvalidArgument;
    default: return ErrorCode::kInternal;
  }
}

bool ParseFormatByte(uint8_t byte, storage::ResultFormat* format) {
  if (byte > static_cast<uint8_t>(storage::ResultFormat::kText)) return false;
  *format = static_cast<storage::ResultFormat>(byte);
  return true;
}

/// Writes one frame to a nonblocking session socket, parking on POLLOUT
/// when the kernel buffer fills. False on a dead or pathologically slow
/// peer (5 s of no writability) — the caller marks the session dead.
bool SendFrameNonblocking(int fd, const Frame& frame) {
  const std::string bytes = EncodeFrame(frame);
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n >= 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      struct pollfd pfd = {fd, POLLOUT, 0};
      if (::poll(&pfd, 1, 5000) <= 0) return false;
      continue;
    }
    return false;
  }
  return true;
}

void FillStats(const fixpoint::FixpointStats& stats, ResultPayload* payload) {
  payload->iterations = stats.iterations;
  payload->total_delta_rows = stats.total_delta_rows;
  payload->plan_executions = stats.plan_executions;
  payload->used_semi_naive = stats.used_semi_naive;
}

}  // namespace

Server::Session::~Session() {
  if (fd >= 0) ::close(fd);
}

Server::Server(engine::RaSqlContext* ctx, ServerOptions options)
    : ctx_(ctx),
      options_(std::move(options)),
      plan_cache_(options_.plan_cache_entries),
      result_cache_(options_.result_cache_entries) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.load()) return Status::InvalidArgument("server already running");
  if (options_.io_slots < 1 || options_.exec_slots < 1) {
    return Status::InvalidArgument("io_slots and exec_slots must be >= 1");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::ExecutionError(std::string("socket: ") +
                                  std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const Status status = Status::ExecutionError(
        std::string("bind/listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
  SetNonBlocking(listen_fd_);

  shards_.clear();
  for (int i = 0; i < options_.io_slots; ++i) {
    auto shard = std::make_unique<Shard>();
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      shards_.clear();
      return Status::ExecutionError("pipe failed for IO shard wakeup");
    }
    SetNonBlocking(pipe_fds[0]);
    SetNonBlocking(pipe_fds[1]);
    shard->wake_read = pipe_fds[0];
    shard->wake_write = pipe_fds[1];
    shards_.push_back(std::move(shard));
  }

  if (options_.engine_threads > 0) {
    compute_pool_ =
        std::make_unique<runtime::ThreadPool>(options_.engine_threads);
    saved_shared_pool_ = ctx_->mutable_config()->runtime.shared_pool;
    ctx_->mutable_config()->runtime.shared_pool = compute_pool_.get();
  }

  stopping_.store(false);
  running_.store(true, std::memory_order_release);
  const int io = options_.io_slots;
  const int total = io + options_.exec_slots;
  pool_ = std::make_unique<runtime::ThreadPool>(total);
  // One long-lived ParallelFor partitions the pool: with exactly as many
  // tasks as workers, the round-robin deal pins one loop per worker, so IO
  // shards and executors run concurrently until Stop(). The serve thread
  // participates as worker 0 (ThreadPool's contract) and is the join point.
  serve_thread_ = std::thread([this, io, total] {
    pool_->ParallelFor(total, [this, io](int slot) {
      if (slot < io) {
        IoLoop(slot);
      } else {
        ExecLoop();
      }
    });
  });
  return Status::OK();
}

void Server::Stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
  }
  queue_cv_.notify_all();
  for (size_t i = 0; i < shards_.size(); ++i) WakeShard(static_cast<int>(i));
  if (serve_thread_.joinable()) serve_thread_.join();
  pool_.reset();

  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Any request still queued at this point lost its executor; dropping the
  // queue releases the session references so the sockets close below.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.clear();
  }
  for (auto& shard : shards_) {
    shard->inbox.clear();
    shard->sessions.clear();
    if (shard->wake_read >= 0) ::close(shard->wake_read);
    if (shard->wake_write >= 0) ::close(shard->wake_write);
  }
  shards_.clear();

  if (compute_pool_ != nullptr) {
    ctx_->mutable_config()->runtime.shared_pool = saved_shared_pool_;
    saved_shared_pool_ = nullptr;
    compute_pool_.reset();
  }
}

void Server::WakeShard(int shard_index) {
  const char byte = 1;
  if (shards_[shard_index]->wake_write >= 0) {
    [[maybe_unused]] const ssize_t n =
        ::write(shards_[shard_index]->wake_write, &byte, 1);
  }
}

void Server::IoLoop(int shard_index) {
  Shard& shard = *shards_[shard_index];
  const bool acceptor = shard_index == 0;
  std::vector<struct pollfd> pollfds;
  std::vector<int> close_fds;
  while (!stopping_.load(std::memory_order_acquire)) {
    {
      std::lock_guard<std::mutex> lock(shard.inbox_mu);
      for (auto& session : shard.inbox) {
        shard.sessions[session->fd] = std::move(session);
      }
      shard.inbox.clear();
    }

    pollfds.clear();
    pollfds.push_back({shard.wake_read, POLLIN, 0});
    if (acceptor) pollfds.push_back({listen_fd_, POLLIN, 0});
    const size_t session_base = pollfds.size();
    for (const auto& [fd, session] : shard.sessions) {
      pollfds.push_back({fd, POLLIN, 0});
    }

    // 100 ms cap so the loop reaps sessions an exec slot marked dead (its
    // write failed) even when no socket becomes readable.
    if (::poll(pollfds.data(), pollfds.size(), 100) < 0 && errno != EINTR) {
      break;
    }
    if (stopping_.load(std::memory_order_acquire)) break;

    if (pollfds[0].revents & POLLIN) {
      char drain[64];
      while (::read(shard.wake_read, drain, sizeof(drain)) > 0) {
      }
    }

    if (acceptor && pollfds.size() > 1 && (pollfds[1].revents & POLLIN)) {
      while (true) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        SetNonBlocking(fd);
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        auto session = std::make_shared<Session>();
        session->fd = fd;
        session->id = next_session_id_.fetch_add(1);
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.sessions_opened;
        }
        const int target = next_shard_.fetch_add(1) %
                           static_cast<int>(shards_.size());
        if (target == shard_index) {
          shard.sessions[fd] = std::move(session);
        } else {
          {
            std::lock_guard<std::mutex> lock(shards_[target]->inbox_mu);
            shards_[target]->inbox.push_back(std::move(session));
          }
          WakeShard(target);
        }
      }
    }

    close_fds.clear();
    for (size_t i = session_base; i < pollfds.size(); ++i) {
      const int fd = pollfds[i].fd;
      auto it = shard.sessions.find(fd);
      if (it == shard.sessions.end()) continue;
      const std::shared_ptr<Session>& session = it->second;
      if (pollfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        close_fds.push_back(fd);
        continue;
      }
      if ((pollfds[i].revents & POLLIN) == 0) continue;
      bool closed = false;
      char chunk[16384];
      while (true) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n > 0) {
          session->read_buffer.append(chunk, static_cast<size_t>(n));
          continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        closed = true;  // clean EOF or socket error
        break;
      }
      if (!DispatchFrames(session)) closed = true;
      if (closed) close_fds.push_back(fd);
    }
    for (const auto& [fd, session] : shard.sessions) {
      if (session->dead.load(std::memory_order_acquire)) {
        close_fds.push_back(fd);
      }
    }
    for (int fd : close_fds) {
      if (shard.sessions.erase(fd) > 0) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.sessions_closed;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.sessions_closed += shard.sessions.size();
  }
  shard.sessions.clear();
}

bool Server::DispatchFrames(const std::shared_ptr<Session>& session) {
  Frame frame;
  while (true) {
    const int state = TryDecodeFrame(&session->read_buffer, &frame);
    if (state == 0) return true;
    if (state == -1) {
      SendError(session, ErrorCode::kProtocol, "malformed frame length");
      return false;
    }
    switch (frame.type) {
      case FrameType::kQuery:
      case FrameType::kPrepare:
      case FrameType::kExecute:
      case FrameType::kExplain:
        break;
      default:
        SendError(session, ErrorCode::kProtocol, "unexpected frame type");
        return false;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      SendError(session, ErrorCode::kShuttingDown, "server shutting down");
      continue;
    }
    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (static_cast<int>(queue_.size()) < options_.max_queue_depth) {
        queue_.push_back(Request{session, std::move(frame)});
        admitted = true;
      }
    }
    if (admitted) {
      queue_cv_.notify_one();
    } else {
      // Admission control: reject from the IO thread without blocking so a
      // saturated executor pool cannot stall frame reassembly for other
      // sessions on this shard.
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.admission_rejects;
      }
      SendError(session, ErrorCode::kAdmissionRejected,
                "request queue full; back off and retry");
    }
  }
}

void Server::ExecLoop() {
  while (true) {
    Request request;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) || !queue_.empty();
      });
      if (queue_.empty()) return;  // only reachable when stopping
      request = std::move(queue_.front());
      queue_.pop_front();
    }
    HandleRequest(std::move(request));
  }
}

void Server::HandleRequest(Request request) {
  const std::shared_ptr<Session>& session = request.session;
  const Frame& frame = request.frame;
  switch (frame.type) {
    case FrameType::kQuery: {
      storage::ResultFormat format = storage::ResultFormat::kCsv;
      if (frame.payload.empty() ||
          !ParseFormatByte(static_cast<uint8_t>(frame.payload[0]), &format)) {
        SendError(session, ErrorCode::kProtocol, "bad QUERY payload");
        return;
      }
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.queries;
      }
      HandleQuery(session, format, frame.payload.substr(1));
      return;
    }
    case FrameType::kPrepare: {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.prepares;
      }
      HandlePrepare(session, frame.payload);
      return;
    }
    case FrameType::kExecute: {
      size_t pos = 0;
      uint32_t stmt_id = 0;
      storage::ResultFormat format = storage::ResultFormat::kCsv;
      if (!ReadU32(frame.payload, &pos, &stmt_id) ||
          pos >= frame.payload.size() ||
          !ParseFormatByte(static_cast<uint8_t>(frame.payload[pos]),
                           &format)) {
        SendError(session, ErrorCode::kProtocol, "bad EXECUTE payload");
        return;
      }
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.executes;
      }
      HandleExecute(session, format, stmt_id);
      return;
    }
    case FrameType::kExplain: {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.explains;
      }
      HandleExplain(session, frame.payload);
      return;
    }
    default:
      SendError(session, ErrorCode::kProtocol, "unexpected frame type");
      return;
  }
}

std::shared_ptr<const PlanEntry> Server::ResolvePlan(
    const std::shared_ptr<Session>& session, const std::string& sql,
    bool* plan_hit) {
  if (auto entry = plan_cache_.LookupSql(sql)) {
    if (plan_hit != nullptr) *plan_hit = true;
    return entry;
  }
  Result<std::string> key = ctx_->NormalizedPlanKey(sql);
  if (!key.ok()) {
    SendError(session, MapStatus(key.status()), key.status().message());
    return nullptr;
  }
  // NormalizedPlanKey already proved `sql` is a single query statement, so
  // this re-parse (only on a plan-cache miss) cannot fail.
  auto statements = sql::Parser::ParseScript(sql);
  PlanEntry entry;
  entry.sql = sql;
  entry.plan_key = std::move(key).value();
  entry.tables = sql::ReferencedTables(*statements->at(0).query);
  bool existed = false;
  auto interned = plan_cache_.Intern(std::move(entry), &existed);
  if (plan_hit != nullptr) *plan_hit = existed;
  return interned;
}

void Server::RunCached(const std::shared_ptr<Session>& session,
                       storage::ResultFormat format,
                       const std::shared_ptr<const PlanEntry>& entry) {
  std::vector<std::pair<std::string, uint64_t>> versions;
  versions.reserve(entry->tables.size());
  for (const std::string& table : entry->tables) {
    versions.emplace_back(table, ctx_->TableVersion(table));
  }
  const std::string key = ResultCache::MakeKey(entry->plan_key, versions);

  std::shared_ptr<const CachedResult> cached;
  bool hit = false;
  if (options_.enable_result_cache) {
    // The outcome-aware lookup classifies version-vector misses: kRefresh
    // means a stale same-plan entry exists, i.e. the base tables moved
    // since that run converged. The recompute below is then incremental
    // whenever the engine runs with `incremental` set and the clique is
    // warm-eligible — the engine's own warm-state store carries the
    // converged rows; the cache only re-memoizes under the new versions.
    ResultCache::Outcome outcome = ResultCache::Outcome::kMiss;
    cached = result_cache_.Lookup(key, entry->plan_key, &outcome);
    hit = cached != nullptr;
  }
  if (cached == nullptr) {
    const auto start = std::chrono::steady_clock::now();
    Result<engine::ExecutionResult> result = ctx_->Execute(entry->sql);
    if (!result.ok()) {
      SendError(session, MapStatus(result.status()),
                result.status().message());
      return;
    }
    CachedResult cold;
    cold.execution = std::move(result).value();
    cold.cold_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    // Only memoize if no write landed between the version snapshot and now:
    // Execute holds the context's shared lock, so versions cannot move
    // *during* evaluation, but a write in the snapshot→Execute gap would
    // leave these rows keyed under versions they do not correspond to.
    bool versions_stable = true;
    for (const auto& [table, version] : versions) {
      if (ctx_->TableVersion(table) != version) {
        versions_stable = false;
        break;
      }
    }
    if (options_.enable_result_cache && versions_stable) {
      cached = result_cache_.Insert(key, entry->plan_key, std::move(cold),
                                    entry->tables);
    } else {
      cached = std::make_shared<const CachedResult>(std::move(cold));
    }
  }

  ResultPayload payload;
  payload.format = format;
  payload.cache_hit = hit;
  FillStats(cached->execution.fixpoint_stats, &payload);
  payload.body = storage::FormatRelation(cached->execution.relation, format);
  SendResult(session, payload);
}

void Server::HandleQuery(const std::shared_ptr<Session>& session,
                         storage::ResultFormat format,
                         const std::string& sql) {
  Result<std::vector<sql::Statement>> statements =
      sql::Parser::ParseScript(sql);
  if (!statements.ok()) {
    SendError(session, MapStatus(statements.status()),
              statements.status().message());
    return;
  }
  if (statements->size() == 1 &&
      statements->front().kind == sql::Statement::Kind::kQuery) {
    const std::shared_ptr<const PlanEntry> entry =
        ResolvePlan(session, sql, nullptr);
    if (entry != nullptr) RunCached(session, format, entry);
    return;
  }

  // Multi-statement or writing script: run it whole (the context serializes
  // writers exclusively), then purge result-cache entries depending on any
  // written table. The version-suffixed keys are already unreachable; the
  // purge frees the memory eagerly. Exception: under `--incremental`,
  // entries stale only through INSERTs are kept — the next same-plan query
  // classifies them as a *refresh*, recomputes (warm-started by the engine
  // when eligible) and replaces them. CREATE VIEW rewrites the relation
  // wholesale, so those entries are purged either way.
  Result<engine::ExecutionResult> result = ctx_->Execute(sql);
  if (!result.ok()) {
    SendError(session, MapStatus(result.status()), result.status().message());
    return;
  }
  for (const sql::Statement& statement : *statements) {
    if (statement.kind == sql::Statement::Kind::kCreateView) {
      result_cache_.InvalidateTable(
          storage::ToLower(statement.create_view->name));
    } else if (statement.kind == sql::Statement::Kind::kInsert &&
               !ctx_->config().incremental) {
      result_cache_.InvalidateTable(storage::ToLower(statement.insert->table));
    }
  }
  ResultPayload payload;
  payload.format = format;
  payload.cache_hit = false;
  FillStats(result->fixpoint_stats, &payload);
  payload.body = storage::FormatRelation(result->relation, format);
  SendResult(session, payload);
}

void Server::HandlePrepare(const std::shared_ptr<Session>& session,
                           const std::string& sql) {
  bool plan_hit = false;
  const std::shared_ptr<const PlanEntry> entry =
      ResolvePlan(session, sql, &plan_hit);
  if (entry == nullptr) return;
  uint32_t stmt_id = 0;
  {
    std::lock_guard<std::mutex> lock(session->stmt_mu);
    stmt_id = session->next_stmt_id++;
    session->statements[stmt_id] = entry;
  }
  Frame frame;
  frame.type = FrameType::kPrepared;
  AppendU32(&frame.payload, stmt_id);
  frame.payload.push_back(plan_hit ? 1 : 0);
  SendToSession(session, frame);
}

void Server::HandleExecute(const std::shared_ptr<Session>& session,
                           storage::ResultFormat format, uint32_t stmt_id) {
  std::shared_ptr<const PlanEntry> entry;
  {
    std::lock_guard<std::mutex> lock(session->stmt_mu);
    auto it = session->statements.find(stmt_id);
    if (it != session->statements.end()) entry = it->second;
  }
  if (entry == nullptr) {
    SendError(session, ErrorCode::kUnknownStatement,
              "statement " + std::to_string(stmt_id) +
                  " was not prepared on this session");
    return;
  }
  RunCached(session, format, entry);
}

void Server::HandleExplain(const std::shared_ptr<Session>& session,
                           const std::string& sql) {
  Result<std::string> rendering = ctx_->Explain(sql);
  if (!rendering.ok()) {
    SendError(session, MapStatus(rendering.status()),
              rendering.status().message());
    return;
  }
  ResultPayload payload;
  payload.format = storage::ResultFormat::kText;
  payload.cache_hit = false;
  payload.body = std::move(rendering).value();
  SendResult(session, payload);
}

void Server::SendResult(const std::shared_ptr<Session>& session,
                        const ResultPayload& payload) {
  Frame frame;
  frame.type = FrameType::kResult;
  frame.payload = EncodeResultPayload(payload);
  SendToSession(session, frame);
}

void Server::SendError(const std::shared_ptr<Session>& session,
                       ErrorCode code, const std::string& message) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.errors;
  }
  Frame frame;
  frame.type = FrameType::kError;
  frame.payload = EncodeErrorPayload(code, message);
  SendToSession(session, frame);
}

void Server::SendToSession(const std::shared_ptr<Session>& session,
                           const Frame& frame) {
  if (session->dead.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(session->write_mu);
  if (!SendFrameNonblocking(session->fd, frame)) {
    session->dead.store(true, std::memory_order_release);
  }
}

ServerStats Server::stats() const {
  ServerStats out;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out = stats_;
  }
  out.plan_cache = plan_cache_.stats();
  out.result_cache = result_cache_.stats();
  return out;
}

}  // namespace rasql::server
