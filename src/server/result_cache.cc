#include "server/result_cache.h"

#include <algorithm>

namespace rasql::server {

std::string ResultCache::MakeKey(
    const std::string& plan_key,
    const std::vector<std::pair<std::string, uint64_t>>& table_versions) {
  std::string key = plan_key;
  key += '\n';
  for (const auto& [table, version] : table_versions) {
    key += table;
    key += '=';
    key += std::to_string(version);
    key += ';';
  }
  return key;
}

std::shared_ptr<const CachedResult> ResultCache::Lookup(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.erase(it->second.lru_pos);
  lru_.push_front(key);
  it->second.lru_pos = lru_.begin();
  return it->second.result;
}

std::shared_ptr<const CachedResult> ResultCache::Insert(
    std::string key, CachedResult result,
    const std::vector<std::string>& tables) {
  auto shared = std::make_shared<const CachedResult>(std::move(result));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Two sessions raced the same cold query; either result is correct
    // (identical plan + versions ⇒ identical rows). Keep the first, it is
    // already being served.
    return it->second.result;
  }
  lru_.push_front(key);
  entries_.emplace(std::move(key), Slot{shared, tables, lru_.begin()});
  EvictLocked();
  return shared;
}

size_t ResultCache::InvalidateTable(const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const std::vector<std::string>& tables = it->second.tables;
    if (std::find(tables.begin(), tables.end(), table) != tables.end()) {
      lru_.erase(it->second.lru_pos);
      it = entries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  invalidations_ += dropped;
  return dropped;
}

void ResultCache::EvictLocked() {
  while (entries_.size() > capacity_ && !lru_.empty()) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.invalidations = invalidations_;
  stats.entries = entries_.size();
  return stats;
}

}  // namespace rasql::server
