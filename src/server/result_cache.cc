#include "server/result_cache.h"

#include <algorithm>
#include <iterator>

namespace rasql::server {

std::string ResultCache::MakeKey(
    const std::string& plan_key,
    const std::vector<std::pair<std::string, uint64_t>>& table_versions) {
  std::string key = plan_key;
  key += '\n';
  for (const auto& [table, version] : table_versions) {
    key += table;
    key += '=';
    key += std::to_string(version);
    key += ';';
  }
  return key;
}

std::shared_ptr<const CachedResult> ResultCache::Lookup(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.erase(it->second.lru_pos);
  lru_.push_front(key);
  it->second.lru_pos = lru_.begin();
  return it->second.result;
}

std::shared_ptr<const CachedResult> ResultCache::Lookup(
    const std::string& key, const std::string& plan_key, Outcome* outcome) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    *outcome = Outcome::kHit;
    lru_.erase(it->second.lru_pos);
    lru_.push_front(key);
    it->second.lru_pos = lru_.begin();
    return it->second.result;
  }
  ++misses_;
  auto plan_it = by_plan_.find(plan_key);
  if (plan_it != by_plan_.end() && plan_it->second != key) {
    // Same plan, different (older) version vector: the caller should
    // recompute — warm-started by the engine when eligible — and
    // re-memoize; Insert will purge the stale predecessor.
    ++refreshes_;
    *outcome = Outcome::kRefresh;
  } else {
    *outcome = Outcome::kMiss;
  }
  return nullptr;
}

std::shared_ptr<const CachedResult> ResultCache::Insert(
    std::string key, const std::string& plan_key, CachedResult result,
    const std::vector<std::string>& tables) {
  auto shared = std::make_shared<const CachedResult>(std::move(result));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Two sessions raced the same cold query; either result is correct
    // (identical plan + versions ⇒ identical rows). Keep the first, it is
    // already being served.
    return it->second.result;
  }
  auto plan_it = by_plan_.find(plan_key);
  if (plan_it != by_plan_.end()) {
    // A stale entry for this plan under an older version vector: versions
    // are monotone, so it can never hit again. Replace it.
    auto stale = entries_.find(plan_it->second);
    if (stale != entries_.end()) EraseLocked(stale);
  }
  lru_.push_front(key);
  by_plan_[plan_key] = key;
  entries_.emplace(std::move(key),
                   Slot{shared, plan_key, tables, lru_.begin()});
  EvictLocked();
  return shared;
}

size_t ResultCache::InvalidateTable(const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const std::vector<std::string>& tables = it->second.tables;
    if (std::find(tables.begin(), tables.end(), table) != tables.end()) {
      auto next = std::next(it);
      EraseLocked(it);
      it = next;
      ++dropped;
    } else {
      ++it;
    }
  }
  invalidations_ += dropped;
  return dropped;
}

void ResultCache::EvictLocked() {
  while (entries_.size() > capacity_ && !lru_.empty()) {
    auto it = entries_.find(lru_.back());
    if (it != entries_.end()) EraseLocked(it);
    ++evictions_;
  }
}

void ResultCache::EraseLocked(
    std::unordered_map<std::string, Slot>::iterator it) {
  lru_.erase(it->second.lru_pos);
  auto plan_it = by_plan_.find(it->second.plan_key);
  if (plan_it != by_plan_.end() && plan_it->second == it->first) {
    by_plan_.erase(plan_it);
  }
  entries_.erase(it);
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.invalidations = invalidations_;
  stats.refreshes = refreshes_;
  stats.entries = entries_.size();
  return stats;
}

}  // namespace rasql::server
