#ifndef RASQL_SERVER_RESULT_CACHE_H_
#define RASQL_SERVER_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/rasql_context.h"

namespace rasql::server {

/// One memoized converged execution: the cold run's ExecutionResult moved
/// in whole (rows, FixpointStats, JobMetrics), shared read-only by every
/// session that hits. Sound for this engine's PreM min/max/monotone-count
/// fixpoints: a converged state is a pure function of the base relations,
/// so identical plan + identical table versions ⇒ identical result
/// (Zaniolo et al., fixpoint semantics — PAPERS.md).
struct CachedResult {
  engine::ExecutionResult execution;
  /// Wall seconds the memoized cold run took — reported next to hit
  /// latency by `bench_serving` and the server stats.
  double cold_seconds = 0;
};

/// Server-wide shared fixpoint/result cache. Keys are
///
///   <normalized plan key> '\n' <table>=<version> ';' ...
///
/// over the versions of every base table the query references, so any
/// base-relation write (INSERT / re-register / drop) makes dependent
/// entries unreachable immediately. InvalidateTable additionally purges
/// stale entries eagerly so a write-heavy workload cannot pin dead
/// relations in memory until LRU eviction finds them. Thread-safe; LRU
/// bounded by entry count. DESIGN.md §12.
class ResultCache {
 public:
  /// What a keyed lookup found. Besides hit and miss there is a third
  /// outcome, *refresh*: no entry matches the full version-suffixed key,
  /// but an entry for the same normalized plan exists under an older
  /// version vector. The caller then recomputes (the engine warm-starts
  /// internally when eligible) and re-memoizes under the new vector;
  /// Insert purges the stale predecessor. DESIGN.md §14.
  enum class Outcome { kHit, kMiss, kRefresh };

  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  /// Builds the composite cache key.
  static std::string MakeKey(
      const std::string& plan_key,
      const std::vector<std::pair<std::string, uint64_t>>& table_versions);

  std::shared_ptr<const CachedResult> Lookup(const std::string& key);

  /// Lookup that also classifies the miss: when `key` is absent but some
  /// entry was inserted under the same `plan_key` (necessarily with a
  /// different — older — version vector, since versions are monotone),
  /// reports Outcome::kRefresh and counts it. Returns the cached result
  /// only on kHit; the stale entry's rows are never served.
  std::shared_ptr<const CachedResult> Lookup(const std::string& key,
                                             const std::string& plan_key,
                                             Outcome* outcome);

  /// Inserts (or refreshes) an entry; `tables` are the lowercased base
  /// tables the entry depends on, for eager purging. Any entry previously
  /// inserted under the same `plan_key` with a different full key is
  /// purged — monotone table versions make it unreachable forever.
  std::shared_ptr<const CachedResult> Insert(
      std::string key, const std::string& plan_key, CachedResult result,
      const std::vector<std::string>& tables);

  /// Eagerly drops every entry depending on `table` (lowercased). The
  /// version-suffixed keys already make them unreachable; this frees the
  /// memory. Returns the number of entries dropped.
  size_t InvalidateTable(const std::string& table);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;  ///< entries purged by InvalidateTable
    uint64_t refreshes = 0;      ///< misses classified as Outcome::kRefresh
    uint64_t entries = 0;
  };
  Stats stats() const;

 private:
  struct Slot {
    std::shared_ptr<const CachedResult> result;
    std::string plan_key;  ///< normalized plan component of the full key
    std::vector<std::string> tables;
    std::list<std::string>::iterator lru_pos;
  };

  void EvictLocked();
  /// Drops one entry by iterator, keeping lru_/by_plan_ consistent.
  void EraseLocked(std::unordered_map<std::string, Slot>::iterator it);

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<std::string> lru_;  ///< most-recent first
  std::unordered_map<std::string, Slot> entries_;
  /// plan_key → full key of the (unique) entry holding it. Insert purges
  /// same-plan predecessors, so one plan never holds two entries.
  std::unordered_map<std::string, std::string> by_plan_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t invalidations_ = 0;
  uint64_t refreshes_ = 0;
};

}  // namespace rasql::server

#endif  // RASQL_SERVER_RESULT_CACHE_H_
