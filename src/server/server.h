#ifndef RASQL_SERVER_SERVER_H_
#define RASQL_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "engine/rasql_context.h"
#include "runtime/thread_pool.h"
#include "server/frame.h"
#include "server/plan_cache.h"
#include "server/result_cache.h"

namespace rasql::server {

/// Server sizing and cache policy. The server runs one
/// runtime::ThreadPool of `io_slots + exec_slots` threads and partitions
/// it with a single long-lived ParallelFor: slots [0, io_slots) run
/// poll-based IO shard loops (accept, frame reassembly, admission), slots
/// [io_slots, io_slots + exec_slots) run executor loops popping the
/// bounded request queue. `exec_slots` is therefore the hard bound on
/// in-flight queries; `max_queue_depth` bounds queued-but-unstarted
/// requests, beyond which the IO thread rejects with a typed
/// ADMISSION_REJECTED error instead of blocking (DESIGN.md §12).
struct ServerOptions {
  uint16_t port = 0;  ///< 0: pick an ephemeral port, read it via port()
  int io_slots = 1;
  int exec_slots = 3;
  int max_queue_depth = 16;
  /// When > 0, Start() builds a dedicated compute ThreadPool of this many
  /// threads and installs it as the engine's runtime.shared_pool, so
  /// fixpoint stages from concurrent sessions share one pool instead of
  /// spawning per-query pools. Cross-pool nesting (an exec slot waiting on
  /// the compute pool) is deadlock-free; same-pool nesting never happens
  /// because exec slots submit no work to the server pool.
  int engine_threads = 0;
  size_t plan_cache_entries = 256;
  size_t result_cache_entries = 64;
  bool enable_result_cache = true;
};

/// Aggregate serving counters, readable while the server runs.
struct ServerStats {
  uint64_t sessions_opened = 0;
  uint64_t sessions_closed = 0;
  uint64_t queries = 0;
  uint64_t prepares = 0;
  uint64_t executes = 0;
  uint64_t explains = 0;
  uint64_t errors = 0;
  uint64_t admission_rejects = 0;
  PlanCache::Stats plan_cache;
  ResultCache::Stats result_cache;
};

/// The RaSQL query server: a TCP front end multiplexing many client
/// sessions onto the runtime ThreadPool over one shared RaSqlContext.
/// Sessions are independent (own prepared-statement table, own socket)
/// but share the catalog, the prepared-plan cache and the fixpoint/result
/// cache. Queries that only read run concurrently under the context's
/// shared lock; scripts that write (CREATE VIEW / INSERT) serialize
/// exclusively and invalidate dependent cache entries. Wire protocol and
/// architecture: DESIGN.md §12.
///
/// The context must outlive the server; configure it (including
/// mutable_config()) before Start(). Start() returns once the socket is
/// listening; Stop() (or the destructor) drains in-flight work and joins.
class Server {
 public:
  Server(engine::RaSqlContext* ctx, ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  common::Status Start();
  void Stop();

  /// The bound TCP port (resolves option port 0). Valid after Start().
  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }
  ServerStats stats() const;

 private:
  /// One client connection. The owning IO shard is the only reader of the
  /// socket; RESULT/ERROR frames are written by exec slots (and rejections
  /// by the IO slot) under write_mu so concurrent responses to a
  /// pipelining client never interleave bytes.
  struct Session {
    int fd = -1;
    uint64_t id = 0;
    std::string read_buffer;
    std::mutex write_mu;
    std::mutex stmt_mu;  ///< guards statements/next_stmt_id
    std::unordered_map<uint32_t, std::shared_ptr<const PlanEntry>> statements;
    uint32_t next_stmt_id = 1;
    /// Set by an exec slot on a dead socket; the owning IO shard reaps the
    /// session on its next poll round.
    std::atomic<bool> dead{false};
    ~Session();
  };

  /// One decoded client frame awaiting an executor slot.
  struct Request {
    std::shared_ptr<Session> session;
    Frame frame;
  };

  /// Per-IO-slot state. `sessions` is owned by the shard's loop thread;
  /// `inbox` hands freshly accepted sessions over from the acceptor under
  /// its mutex; the wake pipe interrupts poll() for shutdown/handoff.
  struct Shard {
    int wake_read = -1;
    int wake_write = -1;
    std::mutex inbox_mu;
    std::vector<std::shared_ptr<Session>> inbox;
    std::unordered_map<int, std::shared_ptr<Session>> sessions;
  };

  void IoLoop(int shard_index);
  void ExecLoop();
  /// Drains every complete frame in the session's buffer into the request
  /// queue (or rejects). False when the session hit a protocol error and
  /// must be closed.
  bool DispatchFrames(const std::shared_ptr<Session>& session);
  void HandleRequest(Request request);

  void HandleQuery(const std::shared_ptr<Session>& session,
                   storage::ResultFormat format, const std::string& sql);
  void HandlePrepare(const std::shared_ptr<Session>& session,
                     const std::string& sql);
  void HandleExecute(const std::shared_ptr<Session>& session,
                     storage::ResultFormat format, uint32_t stmt_id);
  void HandleExplain(const std::shared_ptr<Session>& session,
                     const std::string& sql);
  /// Runs a cacheable single-query plan entry: result-cache lookup keyed
  /// on the referenced tables' current versions, cold Execute + insert on
  /// miss, RESULT frame either way.
  void RunCached(const std::shared_ptr<Session>& session,
                 storage::ResultFormat format,
                 const std::shared_ptr<const PlanEntry>& entry);
  /// Resolves (or analyzes and interns) the plan entry for a single-query
  /// SQL text; null after sending a typed error.
  std::shared_ptr<const PlanEntry> ResolvePlan(
      const std::shared_ptr<Session>& session, const std::string& sql,
      bool* plan_hit);

  void SendResult(const std::shared_ptr<Session>& session,
                  const ResultPayload& payload);
  void SendError(const std::shared_ptr<Session>& session, ErrorCode code,
                 const std::string& message);
  void SendToSession(const std::shared_ptr<Session>& session,
                     const Frame& frame);
  void WakeShard(int shard_index);

  engine::RaSqlContext* const ctx_;
  const ServerOptions options_;
  PlanCache plan_cache_;
  ResultCache result_cache_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> next_session_id_{1};
  std::atomic<int> next_shard_{0};  ///< round-robin accept target

  std::vector<std::unique_ptr<Shard>> shards_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Request> queue_;

  /// The partitioned serving pool and the thread that submits its one
  /// long-lived ParallelFor (the submitter participates as worker 0).
  std::unique_ptr<runtime::ThreadPool> pool_;
  std::thread serve_thread_;
  /// Dedicated engine compute pool when options_.engine_threads > 0;
  /// installed into ctx_->mutable_config()->runtime.shared_pool for the
  /// server's lifetime and restored on Stop().
  std::unique_ptr<runtime::ThreadPool> compute_pool_;
  runtime::ThreadPool* saved_shared_pool_ = nullptr;

  mutable std::mutex stats_mu_;
  ServerStats stats_;
};

}  // namespace rasql::server

#endif  // RASQL_SERVER_SERVER_H_
