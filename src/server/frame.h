#ifndef RASQL_SERVER_FRAME_H_
#define RASQL_SERVER_FRAME_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "storage/result_format.h"

namespace rasql::server {

/// The RaSQL wire protocol (DESIGN.md §12): every message is one frame,
///
///   u32 length (big-endian, of type byte + payload) | u8 type | payload
///
/// Requests a client may send: QUERY, PREPARE, EXECUTE, EXPLAIN.
/// Responses the server sends: RESULT, PREPARED, ERROR.
/// Payload integers are big-endian; text is UTF-8 with no terminator.
enum class FrameType : uint8_t {
  kQuery = 1,     ///< u8 format | sql text — parse, execute, respond RESULT
  kPrepare = 2,   ///< sql text — normalize + intern plan, respond PREPARED
  kExecute = 3,   ///< u32 stmt_id | u8 format — run a prepared statement
  kExplain = 4,   ///< sql text — respond RESULT (format=text, no execution)
  kResult = 5,    ///< see ResultPayload
  kError = 6,     ///< u16 ErrorCode | message text
  kPrepared = 7,  ///< u32 stmt_id | u8 plan_cache_hit
};

/// Typed error categories carried by ERROR frames, so clients can react to
/// admission rejection (back off / retry) differently from a SQL typo.
enum class ErrorCode : uint16_t {
  kParse = 1,
  kAnalysis = 2,
  kExecution = 3,
  kNotFound = 4,
  kInvalidArgument = 5,
  /// Admission control: the server's request queue is at max_queue_depth;
  /// the query was never started. Clients should back off and retry.
  kAdmissionRejected = 6,
  /// EXECUTE named a statement id this session never prepared.
  kUnknownStatement = 7,
  /// Malformed frame (bad type, truncated payload, oversized length).
  kProtocol = 8,
  kShuttingDown = 9,
  kInternal = 10,
};

const char* ErrorCodeName(ErrorCode code);

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// Frames larger than this are a protocol error on both sides — keeps a
/// corrupt length prefix from allocating gigabytes.
inline constexpr uint32_t kMaxFrameBytes = 256u * 1024 * 1024;

/// RESULT frame payload: serialization format + cache provenance + the
/// execution's fixpoint statistics (so clients can cross-validate cached
/// hits against cold runs) + the serialized result body.
struct ResultPayload {
  storage::ResultFormat format = storage::ResultFormat::kCsv;
  bool cache_hit = false;
  int32_t iterations = 0;
  uint64_t total_delta_rows = 0;
  uint64_t plan_executions = 0;
  bool used_semi_naive = false;
  std::string body;
};

// ---- Payload encoding helpers (big-endian) ----

void AppendU16(std::string* out, uint16_t v);
void AppendU32(std::string* out, uint32_t v);
void AppendU64(std::string* out, uint64_t v);

/// Bounds-checked big-endian reads advancing `*pos`; false on short input.
bool ReadU16(const std::string& in, size_t* pos, uint16_t* v);
bool ReadU32(const std::string& in, size_t* pos, uint32_t* v);
bool ReadU64(const std::string& in, size_t* pos, uint64_t* v);

/// Frame <-> bytes. EncodeFrame always succeeds (payload size is checked
/// with RASQL_CHECK); DecodeFrame errors on truncation/oversize.
std::string EncodeFrame(const Frame& frame);

/// Attempts to strip one complete frame off the front of `buffer`.
/// Returns 1 and fills `frame` (consuming the bytes) when complete, 0 when
/// more bytes are needed, -1 on a malformed prefix (oversized length).
int TryDecodeFrame(std::string* buffer, Frame* frame);

std::string EncodeResultPayload(const ResultPayload& result);
common::Result<ResultPayload> DecodeResultPayload(const std::string& payload);

std::string EncodeErrorPayload(ErrorCode code, const std::string& message);
common::Result<std::pair<ErrorCode, std::string>> DecodeErrorPayload(
    const std::string& payload);

// ---- Blocking socket I/O (client, smoke tools, tests) ----

/// Writes the whole frame to a blocking socket; EPIPE-safe (MSG_NOSIGNAL).
common::Status SendFrame(int fd, const Frame& frame);

/// Reads exactly one frame from a blocking socket. `buffer` is the
/// caller's connection read buffer: leftover bytes of a following frame
/// stay in it across calls (TCP coalesces frames). NotFound on clean EOF
/// at a frame boundary, ExecutionError on mid-frame EOF or socket errors.
common::Result<Frame> RecvFrame(int fd, std::string* buffer);

}  // namespace rasql::server

#endif  // RASQL_SERVER_FRAME_H_
