#ifndef RASQL_STORAGE_RESULT_FORMAT_H_
#define RASQL_STORAGE_RESULT_FORMAT_H_

#include <string>

#include "common/status.h"
#include "storage/relation.h"

namespace rasql::storage {

/// Machine-readable result renderings shared by the shell's `--format=`
/// flag and the server's RESULT frames (one serializer, one wire format —
/// DESIGN.md §12).
enum class ResultFormat : uint8_t {
  kCsv = 0,   ///< RFC 4180, header row first (storage::ToCsv).
  kJson = 1,  ///< array of {"col": value, ...} objects, one per row.
  kText = 2,  ///< Relation::ToString table — human output, EXPLAIN text.
};

/// Parses "csv"/"json"/"text" (case-insensitive).
common::Result<ResultFormat> ParseResultFormat(const std::string& name);

/// "csv"/"json"/"text".
const char* ResultFormatName(ResultFormat format);

/// Renders `relation` in `format`. CSV delegates to ToCsv (RFC 4180
/// quoting, empty string quoted vs NULL unquoted); JSON renders
/// `[{"col": v, ...}, ...]` with int64 as numbers, doubles via
/// round-trippable %.17g (trimmed), NULL as null, strings escaped per
/// RFC 8259. Column names are escaped the same way.
std::string FormatRelation(const Relation& relation, ResultFormat format);

/// Escapes one string as a JSON string literal including the quotes.
std::string JsonQuote(const std::string& s);

}  // namespace rasql::storage

#endif  // RASQL_STORAGE_RESULT_FORMAT_H_
