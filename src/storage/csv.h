#ifndef RASQL_STORAGE_CSV_H_
#define RASQL_STORAGE_CSV_H_

#include <string>

#include "common/status.h"
#include "storage/relation.h"

namespace rasql::storage {

/// CSV/TSV loading options.
struct CsvOptions {
  char delimiter = ',';
  /// When true, the first line provides column names; otherwise columns
  /// are named _c0, _c1, ...
  bool has_header = true;
  /// Lines starting with this character are skipped ('\0' disables).
  char comment = '#';
};

/// Loads a delimited text file into a relation. Cells follow RFC 4180
/// quoting: a cell starting with '"' may contain the delimiter, quotes
/// (escaped as '""'), and line breaks. Column types are inferred from the
/// data: a column is INT if every non-empty cell parses as an integer,
/// DOUBLE if every cell parses as a number, STRING otherwise; quoted
/// cells are always strings. Unquoted empty cells load as NULL, quoted
/// empty cells ("") as empty strings. Ragged rows and unterminated
/// quotes are errors.
common::Result<Relation> LoadCsv(const std::string& path,
                                 const CsvOptions& options = {});

/// Parses CSV from an in-memory string (used by LoadCsv and tests).
common::Result<Relation> ParseCsv(const std::string& text,
                                  const CsvOptions& options = {});

/// Writes a relation as CSV (header + rows). Cells containing the
/// delimiter, quotes, or line breaks are quoted with '""' escaping, and
/// empty strings are always quoted (an unquoted empty cell is NULL), so
/// the output round-trips through ParseCsv.
common::Status WriteCsv(const Relation& relation, const std::string& path,
                        const CsvOptions& options = {});

/// Renders a relation as CSV text.
std::string ToCsv(const Relation& relation, const CsvOptions& options = {});

}  // namespace rasql::storage

#endif  // RASQL_STORAGE_CSV_H_
