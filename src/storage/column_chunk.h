#ifndef RASQL_STORAGE_COLUMN_CHUNK_H_
#define RASQL_STORAGE_COLUMN_CHUNK_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "storage/row.h"
#include "storage/value.h"

namespace rasql::storage {

/// Rows per chunk before Relation seals it and opens the next one. 1024
/// int64 cells fit comfortably in L1/L2 per column, the usual vectorized
/// batch size ballpark.
inline constexpr size_t kChunkRows = 1024;

/// A column-major slice of a relation: one typed contiguous array per
/// column plus a null bitmap — the Tungsten-style layout the paper's
/// performance story rides on (Sec. 7.3). The storage type of each column
/// is decided by the first non-null value appended to it:
///
///   kInt64  -> std::vector<int64_t>
///   kDouble -> std::vector<double>
///   kString -> std::vector<int32_t> codes into a per-chunk dictionary
///
/// A column that later sees a value of a different type migrates to a
/// boxed `std::vector<Value>` fallback (`variant`), preserving the exact
/// Value round-trip — an int64 is never silently widened to double, so
/// hashing, comparison and rendering are bit-identical to the row layout.
/// Null cells set a bit in the bitmap and push a placeholder into the
/// payload so every array stays row-aligned.
class ColumnChunk {
 public:
  /// Physical storage of one column. Public so vectorized kernels (batch
  /// filters, typed aggregate loops, writers) can loop over the arrays
  /// directly; Append invariants are maintained by the chunk.
  struct ColumnData {
    /// Storage tag: kNull until the first non-null value decides it.
    ValueType tag = ValueType::kNull;
    /// True when mixed types forced the boxed fallback; `boxed` is then
    /// the only payload.
    bool variant = false;
    std::vector<int64_t> i64;
    std::vector<double> f64;
    std::vector<int32_t> codes;  ///< dictionary codes; -1 for null cells
    std::vector<std::string> dict;
    std::vector<Value> boxed;
    /// Null bitmap, one bit per row (set = NULL). Allocated lazily on the
    /// first null; empty means "no nulls in this column".
    std::vector<uint64_t> nulls;
    size_t null_count = 0;

    bool IsNull(size_t row) const {
      return null_count > 0 && (row >> 6) < nulls.size() &&
             (nulls[row >> 6] >> (row & 63)) & 1;
    }
  };

  ColumnChunk() = default;
  explicit ColumnChunk(size_t num_columns) : columns_(num_columns) {}

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }
  bool full() const { return num_rows_ >= kChunkRows; }

  const ColumnData& column(size_t c) const { return columns_[c]; }

  /// Appends one row; `row.size()` must equal `num_columns()`.
  void AppendRow(const Row& row);

  bool IsNull(size_t row, size_t col) const {
    return columns_[col].IsNull(row);
  }

  /// The cell as a Value — exact round-trip of what was appended.
  Value ValueAt(size_t row, size_t col) const;

  /// Overwrites `*out` with row `row` (resizing as needed).
  void MaterializeRow(size_t row, Row* out) const;

  /// Copies the row's cells into `(*dest)[offset ...]`; `dest` must
  /// already span `offset + num_columns()` cells. Lets join probes fill a
  /// preallocated combined row without constructing a temporary.
  void CopyRowTo(size_t row, Row* dest, size_t offset) const;

  /// Hash of one cell — identical to `ValueAt(row, col).Hash()` without
  /// materializing the Value.
  uint64_t HashCell(size_t row, size_t col) const;

  /// Hash of the key columns — identical to HashRowKey on the
  /// materialized row.
  uint64_t HashKey(size_t row, const std::vector<int>& key_cols) const {
    uint64_t h = 0x84222325cbf29ce4ULL;
    for (int c : key_cols) h = common::HashCombine(h, HashCell(row, c));
    return h;
  }

  /// Equality of one cell against a Value, consistent with
  /// `ValueAt(row, col) == v`.
  bool CellEquals(size_t row, size_t col, const Value& v) const;

  /// Equality of two stored cells without materializing either (dictionary
  /// strings compare by reference). Consistent with Value::operator== on
  /// the materialized cells.
  static bool CellsEqual(const ColumnChunk& a, size_t a_row, size_t a_col,
                         const ColumnChunk& b, size_t b_row, size_t b_col);

  /// Columnar memory footprint: typed arrays + null bitmaps + dictionary.
  size_t ByteSize() const;

  /// Dictionary code of `s` in string column `col`, or -1 when the value
  /// (or the dictionary itself) is absent. Lets equality filters on
  /// dictionary-encoded strings compare codes instead of materialized
  /// strings (vectorized kernels, DESIGN.md §15).
  int32_t FindDictCode(size_t col, const std::string& s) const;

  /// Selection-vector gathers into caller-provided dense arrays: `out`
  /// receives the payload of rows `sel[0..n)` of column `col`. The column
  /// must carry the matching typed payload (null placeholders come along
  /// as stored: 0 / 0.0 / -1).
  void GatherI64(size_t col, const uint32_t* sel, size_t n,
                 int64_t* out) const;
  void GatherF64(size_t col, const uint32_t* sel, size_t n,
                 double* out) const;
  void GatherCodes(size_t col, const uint32_t* sel, size_t n,
                   int32_t* out) const;

  /// Gathers the null bits of rows `sel[0..n)` (1 = NULL) into `out`;
  /// returns true when any selected row is null.
  bool GatherNulls(size_t col, const uint32_t* sel, size_t n,
                   uint8_t* out) const;

 private:
  void AppendCell(ColumnData* col, const Value& v);
  void MigrateToBoxed(ColumnData* col);

  std::vector<ColumnData> columns_;
  size_t num_rows_ = 0;
  /// Dictionary lookup index per string column, keyed by column ordinal —
  /// only paid for by columns that actually hold strings.
  std::unordered_map<size_t, std::unordered_map<std::string, int32_t>>
      dict_index_;
};

}  // namespace rasql::storage

#endif  // RASQL_STORAGE_COLUMN_CHUNK_H_
