#include "storage/csv.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace rasql::storage {

using common::Result;
using common::Status;

namespace {

std::vector<std::string> SplitLine(const std::string& line, char delimiter) {
  std::vector<std::string> cells;
  std::string cell;
  for (char c : line) {
    if (c == delimiter) {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (c != '\r') {
      cell += c;
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}

bool ParseInt(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace

Result<Relation> ParseCsv(const std::string& text,
                          const CsvOptions& options) {
  std::istringstream in(text);
  std::string line;
  std::vector<std::string> names;
  std::vector<std::vector<std::string>> cells;
  size_t width = 0;
  int line_number = 0;
  bool header_pending = options.has_header;

  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    if (options.comment != '\0' && line[0] == options.comment) continue;
    std::vector<std::string> row = SplitLine(line, options.delimiter);
    if (header_pending) {
      names = std::move(row);
      width = names.size();
      header_pending = false;
      continue;
    }
    if (width == 0) width = row.size();
    if (row.size() != width) {
      return Status::InvalidArgument(
          "CSV line " + std::to_string(line_number) + " has " +
          std::to_string(row.size()) + " cells, expected " +
          std::to_string(width));
    }
    cells.push_back(std::move(row));
  }
  if (width == 0) {
    return Status::InvalidArgument("CSV input contains no data");
  }
  if (names.empty()) {
    for (size_t c = 0; c < width; ++c) {
      names.push_back("_c" + std::to_string(c));
    }
  }

  // Type inference: INT ⊂ DOUBLE ⊂ STRING per column; empty cells (NULL)
  // don't constrain the type.
  std::vector<ValueType> types(width, ValueType::kInt64);
  for (const auto& row : cells) {
    for (size_t c = 0; c < width; ++c) {
      const std::string& cell = row[c];
      if (cell.empty() || types[c] == ValueType::kString) continue;
      int64_t iv;
      double dv;
      if (types[c] == ValueType::kInt64 && !ParseInt(cell, &iv)) {
        types[c] = ValueType::kDouble;
      }
      if (types[c] == ValueType::kDouble && !ParseDouble(cell, &dv)) {
        types[c] = ValueType::kString;
      }
    }
  }

  std::vector<Column> columns;
  columns.reserve(width);
  for (size_t c = 0; c < width; ++c) {
    columns.push_back(Column{names[c], types[c]});
  }
  Relation rel{Schema(std::move(columns))};
  rel.Reserve(cells.size());
  for (auto& row_cells : cells) {
    Row row;
    row.reserve(width);
    for (size_t c = 0; c < width; ++c) {
      const std::string& cell = row_cells[c];
      if (cell.empty()) {
        row.push_back(Value::Null());
        continue;
      }
      switch (types[c]) {
        case ValueType::kInt64: {
          int64_t v = 0;
          ParseInt(cell, &v);
          row.push_back(Value::Int(v));
          break;
        }
        case ValueType::kDouble: {
          double v = 0;
          ParseDouble(cell, &v);
          row.push_back(Value::Double(v));
          break;
        }
        default:
          row.push_back(Value::String(cell));
          break;
      }
    }
    rel.Add(std::move(row));
  }
  return rel;
}

Result<Relation> LoadCsv(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str(), options);
}

std::string ToCsv(const Relation& relation, const CsvOptions& options) {
  std::string out;
  const Schema& schema = relation.schema();
  if (options.has_header) {
    for (int c = 0; c < schema.num_columns(); ++c) {
      if (c > 0) out += options.delimiter;
      out += schema.column(c).name;
    }
    out += "\n";
  }
  for (const Row& row : relation.rows()) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += options.delimiter;
      switch (row[c].type()) {
        case ValueType::kNull:
          break;  // empty cell
        case ValueType::kString:
          out += row[c].AsString();
          break;
        default:
          out += row[c].ToString();
          break;
      }
    }
    out += "\n";
  }
  return out;
}

Status WriteCsv(const Relation& relation, const std::string& path,
                const CsvOptions& options) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot write '" + path + "'");
  }
  out << ToCsv(relation, options);
  return out.good() ? Status::OK()
                    : Status::Internal("short write to '" + path + "'");
}

}  // namespace rasql::storage
