#include "storage/csv.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "storage/result_writer.h"

namespace rasql::storage {

using common::Result;
using common::Status;

namespace {

/// One parsed cell: its unescaped text plus whether it was quoted in the
/// source. Quoting matters twice downstream: a quoted cell is always a
/// string (never re-inferred as a number), and a quoted empty cell is the
/// empty string while an unquoted empty cell is NULL.
struct Cell {
  std::string text;
  bool quoted = false;
};

/// Splits `text` into records of cells, honoring RFC 4180 quoting: a cell
/// starting with '"' runs to the matching closing quote, with embedded
/// delimiters and newlines taken literally and '""' unescaping to '"'.
/// Blank lines and comment lines are skipped, but only at record start —
/// a '#' inside a quoted cell is data. Works character-by-character
/// because line-based splitting would break cells with embedded newlines.
Result<std::vector<std::vector<Cell>>> SplitRecords(
    const std::string& text, const CsvOptions& options,
    std::vector<int>* record_lines) {
  std::vector<std::vector<Cell>> records;
  const size_t n = text.size();
  size_t i = 0;
  int line = 1;
  while (i < n) {
    // Between records: skip blank lines (and stray CRs).
    if (text[i] == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (text[i] == '\r') {
      ++i;
      continue;
    }
    if (options.comment != '\0' && text[i] == options.comment) {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }

    std::vector<Cell> record;
    Cell cell;
    bool in_quotes = false;
    bool closed_quote = false;  // cell ended with a closing quote
    const int record_line = line;
    while (true) {
      if (i == n) {
        if (in_quotes) {
          return Status::InvalidArgument(
              "CSV line " + std::to_string(record_line) +
              ": unterminated quoted cell");
        }
        record.push_back(std::move(cell));
        break;
      }
      const char c = text[i];
      if (in_quotes) {
        if (c == '"') {
          if (i + 1 < n && text[i + 1] == '"') {
            cell.text += '"';
            i += 2;
          } else {
            in_quotes = false;
            closed_quote = true;
            ++i;
          }
        } else {
          if (c == '\n') ++line;
          cell.text += c;
          ++i;
        }
        continue;
      }
      if (c == options.delimiter) {
        record.push_back(std::move(cell));
        cell = Cell{};
        closed_quote = false;
        ++i;
        continue;
      }
      if (c == '\n') {
        ++line;
        ++i;
        record.push_back(std::move(cell));
        break;
      }
      if (c == '\r') {  // stripped outside quotes (CRLF line endings)
        ++i;
        continue;
      }
      if (c == '"' && cell.text.empty() && !cell.quoted) {
        cell.quoted = true;
        in_quotes = true;
        ++i;
        continue;
      }
      if (closed_quote) {
        return Status::InvalidArgument(
            "CSV line " + std::to_string(record_line) +
            ": unexpected character after closing quote");
      }
      cell.text += c;  // a quote mid-cell is taken literally
      ++i;
    }
    records.push_back(std::move(record));
    if (record_lines != nullptr) record_lines->push_back(record_line);
  }
  return records;
}

bool ParseInt(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace

Result<Relation> ParseCsv(const std::string& text,
                          const CsvOptions& options) {
  std::vector<int> record_lines;
  RASQL_ASSIGN_OR_RETURN(std::vector<std::vector<Cell>> records,
                         SplitRecords(text, options, &record_lines));

  std::vector<std::string> names;
  size_t width = 0;
  size_t first_data = 0;
  if (options.has_header && !records.empty()) {
    for (Cell& cell : records[0]) names.push_back(std::move(cell.text));
    width = names.size();
    first_data = 1;
  }

  std::vector<std::vector<Cell>> cells(
      std::make_move_iterator(records.begin() + first_data),
      std::make_move_iterator(records.end()));
  for (size_t r = 0; r < cells.size(); ++r) {
    if (width == 0) width = cells[r].size();
    if (cells[r].size() != width) {
      return Status::InvalidArgument(
          "CSV line " + std::to_string(record_lines[first_data + r]) +
          " has " + std::to_string(cells[r].size()) + " cells, expected " +
          std::to_string(width));
    }
  }
  if (width == 0) {
    return Status::InvalidArgument("CSV input contains no data");
  }
  if (names.empty()) {
    for (size_t c = 0; c < width; ++c) {
      names.push_back("_c" + std::to_string(c));
    }
  }

  // Type inference: INT ⊂ DOUBLE ⊂ STRING per column; unquoted empty cells
  // (NULL) don't constrain the type, quoted cells are always strings.
  std::vector<ValueType> types(width, ValueType::kInt64);
  for (const auto& row : cells) {
    for (size_t c = 0; c < width; ++c) {
      const Cell& cell = row[c];
      if (types[c] == ValueType::kString) continue;
      if (cell.quoted) {
        types[c] = ValueType::kString;
        continue;
      }
      if (cell.text.empty()) continue;
      int64_t iv;
      double dv;
      if (types[c] == ValueType::kInt64 && !ParseInt(cell.text, &iv)) {
        types[c] = ValueType::kDouble;
      }
      if (types[c] == ValueType::kDouble && !ParseDouble(cell.text, &dv)) {
        types[c] = ValueType::kString;
      }
    }
  }

  std::vector<Column> columns;
  columns.reserve(width);
  for (size_t c = 0; c < width; ++c) {
    columns.push_back(Column{names[c], types[c]});
  }
  Relation rel{Schema(std::move(columns))};
  rel.Reserve(cells.size());
  for (auto& row_cells : cells) {
    Row row;
    row.reserve(width);
    for (size_t c = 0; c < width; ++c) {
      Cell& cell = row_cells[c];
      if (cell.text.empty() && !cell.quoted) {
        row.push_back(Value::Null());
        continue;
      }
      switch (types[c]) {
        case ValueType::kInt64: {
          int64_t v = 0;
          ParseInt(cell.text, &v);
          row.push_back(Value::Int(v));
          break;
        }
        case ValueType::kDouble: {
          double v = 0;
          ParseDouble(cell.text, &v);
          row.push_back(Value::Double(v));
          break;
        }
        default:
          row.push_back(Value::String(std::move(cell.text)));
          break;
      }
    }
    rel.Add(std::move(row));
  }
  return rel;
}

Result<Relation> LoadCsv(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str(), options);
}

std::string ToCsv(const Relation& relation, const CsvOptions& options) {
  // One serializer for every output path: the chunk-consuming writer
  // renders straight from the typed column arrays.
  std::string out;
  CsvResultWriter writer(&out, options);
  WriteRelation(relation, &writer);
  return out;
}

Status WriteCsv(const Relation& relation, const std::string& path,
                const CsvOptions& options) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot write '" + path + "'");
  }
  out << ToCsv(relation, options);
  return out.good() ? Status::OK()
                    : Status::Internal("short write to '" + path + "'");
}

}  // namespace rasql::storage
