#ifndef RASQL_STORAGE_SCHEMA_H_
#define RASQL_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "storage/value.h"

namespace rasql::storage {

/// One column of a relation schema.
struct Column {
  std::string name;
  ValueType type = ValueType::kNull;
};

/// Ordered list of named, typed columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns)
      : columns_(std::move(columns)) {}

  /// Convenience factory: Schema::Of({{"Src", kInt64}, {"Dst", kInt64}}).
  static Schema Of(std::initializer_list<Column> columns) {
    return Schema(std::vector<Column>(columns));
  }

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const Column& column(int i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column whose name matches case-insensitively, or -1.
  int FindColumn(const std::string& name) const;

  /// "name:TYPE, name:TYPE, ..." rendering for EXPLAIN and errors.
  std::string ToString() const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<Column> columns_;
};

/// Case-insensitive ASCII string equality — SQL identifiers are
/// case-insensitive in RaSQL, matching the paper's examples which mix
/// `Part`/`part` freely.
bool EqualsIgnoreCase(const std::string& a, const std::string& b);

/// Lowercases ASCII; used to canonicalize identifiers in the catalog.
std::string ToLower(const std::string& s);

}  // namespace rasql::storage

#endif  // RASQL_STORAGE_SCHEMA_H_
