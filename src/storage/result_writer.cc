#include "storage/result_writer.h"

#include <cstdio>

#include "storage/relation.h"
#include "storage/result_format.h"

namespace rasql::storage {

namespace {

/// Appends `cell` to `out`, quoting it when it contains the delimiter, a
/// quote, or a line break — and always when it is empty, so an empty
/// string survives a round trip as distinct from NULL (written as a bare
/// empty cell).
void AppendCsvCell(const std::string& cell, char delimiter,
                   std::string* out) {
  const bool needs_quotes =
      cell.empty() ||
      cell.find_first_of(std::string("\"\n\r") + delimiter) !=
          std::string::npos;
  if (!needs_quotes) {
    *out += cell;
    return;
  }
  *out += '"';
  for (char c : cell) {
    if (c == '"') *out += '"';
    *out += c;
  }
  *out += '"';
}

/// "%g" rendering — matches Value::ToString for doubles, including the
/// pinned non-finite tokens "inf"/"-inf"/"nan" (never the platform's own
/// spelling, e.g. "-nan"): ParseCsv's strtod accepts exactly these, so
/// CSV and text cells round-trip for every double. JSON is the documented
/// exception — it has no non-finite literals, so those render as null.
void AppendDouble(double v, std::string* out) {
  if (v != v) {
    *out += "nan";
    return;
  }
  if (v == __builtin_huge_val()) {
    *out += "inf";
    return;
  }
  if (v == -__builtin_huge_val()) {
    *out += "-inf";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  *out += buf;
}

/// Shortest %.17g rendering that still round-trips; JSON has no infinities
/// or NaNs, so those render as null.
void AppendJsonNumber(double v, std::string* out) {
  if (!(v == v) || v == __builtin_huge_val() || v == -__builtin_huge_val()) {
    *out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double back = 0;
  std::sscanf(buf, "%lf", &back);
  if (back == v) {
    // Try to shorten: %g often suffices and reads much better.
    char short_buf[40];
    std::snprintf(short_buf, sizeof(short_buf), "%g", v);
    std::sscanf(short_buf, "%lf", &back);
    if (back == v) {
      *out += short_buf;
      return;
    }
  }
  *out += buf;
}

}  // namespace

void CsvResultWriter::Begin(const Schema& schema) {
  if (!options_.has_header) return;
  for (int c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) *out_ += options_.delimiter;
    AppendCsvCell(schema.column(c).name, options_.delimiter, out_);
  }
  *out_ += "\n";
}

void CsvResultWriter::WriteChunk(const ColumnChunk& chunk) {
  for (size_t r = 0; r < chunk.num_rows(); ++r) {
    for (size_t c = 0; c < chunk.num_columns(); ++c) {
      if (c > 0) *out_ += options_.delimiter;
      const ColumnChunk::ColumnData& col = chunk.column(c);
      if (col.IsNull(r)) continue;  // bare empty cell
      if (col.variant) {
        const Value& v = col.boxed[r];
        if (v.type() == ValueType::kString) {
          AppendCsvCell(v.AsString(), options_.delimiter, out_);
        } else if (v.type() == ValueType::kDouble) {
          // Through AppendDouble, not ToString, so the canonical
          // non-finite tokens are guaranteed on the boxed path too.
          std::string cell;
          AppendDouble(v.AsDouble(), &cell);
          AppendCsvCell(cell, options_.delimiter, out_);
        } else {
          AppendCsvCell(v.ToString(), options_.delimiter, out_);
        }
        continue;
      }
      switch (col.tag) {
        case ValueType::kInt64:
          *out_ += std::to_string(col.i64[r]);
          break;
        case ValueType::kDouble: {
          // Delegate quoting: %g output never needs it, but keep the
          // behaviour identical to the row writer for exotic locales.
          std::string cell;
          AppendDouble(col.f64[r], &cell);
          AppendCsvCell(cell, options_.delimiter, out_);
          break;
        }
        case ValueType::kString:
          AppendCsvCell(col.dict[col.codes[r]], options_.delimiter, out_);
          break;
        case ValueType::kNull:
          break;
      }
    }
    *out_ += "\n";
  }
}

void JsonResultWriter::Begin(const Schema& schema) {
  keys_.clear();
  keys_.reserve(schema.num_columns());
  for (const Column& col : schema.columns()) {
    keys_.push_back(JsonQuote(col.name));
  }
  *out_ += "[";
  first_row_ = true;
}

void JsonResultWriter::WriteChunk(const ColumnChunk& chunk) {
  for (size_t r = 0; r < chunk.num_rows(); ++r) {
    if (!first_row_) *out_ += ",";
    first_row_ = false;
    *out_ += "\n  {";
    for (size_t c = 0; c < chunk.num_columns(); ++c) {
      if (c > 0) *out_ += ", ";
      *out_ += keys_[c];
      *out_ += ": ";
      const ColumnChunk::ColumnData& col = chunk.column(c);
      if (col.IsNull(r)) {
        *out_ += "null";
        continue;
      }
      const ValueType tag = col.variant ? col.boxed[r].type() : col.tag;
      switch (tag) {
        case ValueType::kNull:
          *out_ += "null";
          break;
        case ValueType::kInt64:
          *out_ += std::to_string(col.variant ? col.boxed[r].AsInt()
                                              : col.i64[r]);
          break;
        case ValueType::kDouble:
          AppendJsonNumber(
              col.variant ? col.boxed[r].AsDouble() : col.f64[r], out_);
          break;
        case ValueType::kString:
          *out_ += JsonQuote(col.variant ? col.boxed[r].AsString()
                                         : col.dict[col.codes[r]]);
          break;
      }
    }
    *out_ += "}";
  }
}

void JsonResultWriter::End(size_t num_rows) {
  (void)num_rows;
  *out_ += first_row_ ? "]\n" : "\n]\n";
}

void TextResultWriter::Begin(const Schema& schema) {
  *out_ += schema.ToString() + "\n";
}

void TextResultWriter::WriteChunk(const ColumnChunk& chunk) {
  for (size_t r = 0; r < chunk.num_rows(); ++r) {
    for (size_t c = 0; c < chunk.num_columns(); ++c) {
      if (c > 0) *out_ += "|";
      const ColumnChunk::ColumnData& col = chunk.column(c);
      if (col.IsNull(r)) {
        *out_ += "NULL";
        continue;
      }
      const ValueType tag = col.variant ? col.boxed[r].type() : col.tag;
      switch (tag) {
        case ValueType::kNull:
          *out_ += "NULL";
          break;
        case ValueType::kInt64:
          *out_ += std::to_string(col.variant ? col.boxed[r].AsInt()
                                              : col.i64[r]);
          break;
        case ValueType::kDouble:
          AppendDouble(col.variant ? col.boxed[r].AsDouble() : col.f64[r],
                       out_);
          break;
        case ValueType::kString:
          *out_ += "'";
          *out_ += col.variant ? col.boxed[r].AsString()
                               : col.dict[col.codes[r]];
          *out_ += "'";
          break;
      }
    }
    *out_ += "\n";
  }
}

void TextResultWriter::End(size_t num_rows) {
  *out_ += "(" + std::to_string(num_rows) + " rows)\n";
}

void WriteRelation(const Relation& rel, ResultWriter* writer) {
  writer->Begin(rel.schema());
  for (size_t c = 0; c < rel.num_chunks(); ++c) {
    writer->WriteChunk(rel.chunk(c));
  }
  writer->End(rel.size());
}

}  // namespace rasql::storage
