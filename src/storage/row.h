#ifndef RASQL_STORAGE_ROW_H_
#define RASQL_STORAGE_ROW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.h"
#include "storage/value.h"

namespace rasql::storage {

/// A tuple: a fixed-arity vector of values. Rows are passed by value inside
/// operators (they are cheap to move) and stored contiguously in Relations.
using Row = std::vector<Value>;

/// Hash of the whole row (all columns).
inline uint64_t HashRow(const Row& row) {
  uint64_t h = 0x84222325cbf29ce4ULL;
  for (const Value& v : row) h = common::HashCombine(h, v.Hash());
  return h;
}

/// Hash of a subset of columns (the join/group-by key).
inline uint64_t HashRowKey(const Row& row, const std::vector<int>& key_cols) {
  uint64_t h = 0x84222325cbf29ce4ULL;
  for (int c : key_cols) h = common::HashCombine(h, row[c].Hash());
  return h;
}

/// Extracts the named key columns into a new row.
inline Row ProjectKey(const Row& row, const std::vector<int>& key_cols) {
  Row key;
  key.reserve(key_cols.size());
  for (int c : key_cols) key.push_back(row[c]);
  return key;
}

/// True when the two rows agree on every listed column pair.
inline bool RowKeysEqual(const Row& a, const std::vector<int>& a_cols,
                         const Row& b, const std::vector<int>& b_cols) {
  if (a_cols.size() != b_cols.size()) return false;
  for (size_t i = 0; i < a_cols.size(); ++i) {
    if (a[a_cols[i]] != b[b_cols[i]]) return false;
  }
  return true;
}

/// Approximate serialized size of a row; feeds the shuffle cost model.
inline size_t RowByteSize(const Row& row) {
  size_t n = 0;
  for (const Value& v : row) n += v.ByteSize();
  return n;
}

/// "(v1, v2, ...)" rendering for tests and debugging.
std::string RowToString(const Row& row);

/// Functors for using Row in hash containers.
struct RowHash {
  size_t operator()(const Row& row) const {
    return static_cast<size_t>(HashRow(row));
  }
};
struct RowEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }
};

/// Lexicographic row comparison (used by sort-merge join and ORDER BY).
struct RowLess {
  bool operator()(const Row& a, const Row& b) const {
    const size_t n = a.size() < b.size() ? a.size() : b.size();
    for (size_t i = 0; i < n; ++i) {
      const int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

}  // namespace rasql::storage

#endif  // RASQL_STORAGE_ROW_H_
