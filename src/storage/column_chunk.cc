#include "storage/column_chunk.h"

#include <cmath>

#include "common/check.h"

namespace rasql::storage {

namespace {

/// Interns `s` into the column dictionary, returning its code.
int32_t DictCode(ColumnChunk::ColumnData* col, const std::string& s,
                 std::unordered_map<std::string, int32_t>* index) {
  auto it = index->find(s);
  if (it != index->end()) return it->second;
  const int32_t code = static_cast<int32_t>(col->dict.size());
  col->dict.push_back(s);
  index->emplace(s, code);
  return code;
}

}  // namespace

void ColumnChunk::AppendRow(const Row& row) {
  RASQL_CHECK(row.size() == columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    AppendCell(&columns_[c], row[c]);
  }
  ++num_rows_;
}

void ColumnChunk::MigrateToBoxed(ColumnData* col) {
  std::vector<Value> boxed;
  boxed.reserve(num_rows_ + 1);
  for (size_t r = 0; r < num_rows_; ++r) {
    if (col->IsNull(r)) {
      boxed.push_back(Value::Null());
      continue;
    }
    switch (col->tag) {
      case ValueType::kInt64:
        boxed.push_back(Value::Int(col->i64[r]));
        break;
      case ValueType::kDouble:
        boxed.push_back(Value::Double(col->f64[r]));
        break;
      case ValueType::kString:
        boxed.push_back(Value::String(col->dict[col->codes[r]]));
        break;
      case ValueType::kNull:
        boxed.push_back(Value::Null());
        break;
    }
  }
  col->i64.clear();
  col->f64.clear();
  col->codes.clear();
  col->dict.clear();
  col->boxed = std::move(boxed);
  col->variant = true;
  dict_index_.erase(static_cast<size_t>(col - columns_.data()));
}

void ColumnChunk::AppendCell(ColumnData* col, const Value& v) {
  if (v.is_null()) {
    if (col->nulls.empty() && num_rows_ > 0) {
      col->nulls.assign((num_rows_ >> 6) + 1, 0);
    }
    if (col->nulls.size() <= (num_rows_ >> 6)) col->nulls.push_back(0);
    col->nulls[num_rows_ >> 6] |= uint64_t{1} << (num_rows_ & 63);
    ++col->null_count;
    // Keep the payload row-aligned with a placeholder.
    if (col->variant) {
      col->boxed.push_back(Value::Null());
    } else {
      switch (col->tag) {
        case ValueType::kNull:
          break;  // no payload decided yet
        case ValueType::kInt64:
          col->i64.push_back(0);
          break;
        case ValueType::kDouble:
          col->f64.push_back(0.0);
          break;
        case ValueType::kString:
          col->codes.push_back(-1);
          break;
      }
    }
    return;
  }
  // Null bitmap stays aligned lazily: absent bits read as not-null.
  if (!col->nulls.empty() && col->nulls.size() <= (num_rows_ >> 6)) {
    col->nulls.push_back(0);
  }
  if (!col->variant && col->tag == ValueType::kNull) {
    // First non-null value decides the storage type; backfill placeholders
    // for the all-null prefix.
    col->tag = v.type();
    switch (v.type()) {
      case ValueType::kInt64:
        col->i64.assign(num_rows_, 0);
        break;
      case ValueType::kDouble:
        col->f64.assign(num_rows_, 0.0);
        break;
      case ValueType::kString:
        col->codes.assign(num_rows_, -1);
        break;
      case ValueType::kNull:
        break;
    }
  } else if (!col->variant && col->tag != v.type()) {
    MigrateToBoxed(col);
  }
  if (col->variant) {
    col->boxed.push_back(v);
    return;
  }
  switch (col->tag) {
    case ValueType::kInt64:
      col->i64.push_back(v.AsInt());
      break;
    case ValueType::kDouble:
      col->f64.push_back(v.AsDouble());
      break;
    case ValueType::kString: {
      std::unordered_map<std::string, int32_t>& index =
          dict_index_[static_cast<size_t>(col - columns_.data())];
      col->codes.push_back(DictCode(col, v.AsString(), &index));
      break;
    }
    case ValueType::kNull:
      break;  // unreachable: tag was decided above
  }
}

Value ColumnChunk::ValueAt(size_t row, size_t col) const {
  const ColumnData& c = columns_[col];
  if (c.IsNull(row)) return Value::Null();
  if (c.variant) return c.boxed[row];
  switch (c.tag) {
    case ValueType::kInt64:
      return Value::Int(c.i64[row]);
    case ValueType::kDouble:
      return Value::Double(c.f64[row]);
    case ValueType::kString:
      return Value::String(c.dict[c.codes[row]]);
    case ValueType::kNull:
      return Value::Null();
  }
  return Value::Null();
}

void ColumnChunk::MaterializeRow(size_t row, Row* out) const {
  out->resize(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    (*out)[c] = ValueAt(row, c);
  }
}

void ColumnChunk::CopyRowTo(size_t row, Row* dest, size_t offset) const {
  for (size_t c = 0; c < columns_.size(); ++c) {
    (*dest)[offset + c] = ValueAt(row, c);
  }
}

uint64_t ColumnChunk::HashCell(size_t row, size_t col) const {
  const ColumnData& c = columns_[col];
  if (c.IsNull(row)) return 0x9ae16a3b2f90404fULL;  // Value::Hash() of NULL
  if (c.variant) return c.boxed[row].Hash();
  switch (c.tag) {
    case ValueType::kInt64:
      return common::MixHash64(static_cast<uint64_t>(c.i64[row]));
    case ValueType::kDouble: {
      // Mirror Value::Hash(): integral doubles hash like the equal int64.
      const double v = c.f64[row];
      double intpart;
      if (std::modf(v, &intpart) == 0.0 && intpart >= -9.2233720368547758e18 &&
          intpart <= 9.2233720368547758e18) {
        return common::MixHash64(
            static_cast<uint64_t>(static_cast<int64_t>(intpart)));
      }
      uint64_t bits;
      __builtin_memcpy(&bits, &v, sizeof(bits));
      return common::MixHash64(bits);
    }
    case ValueType::kString:
      return common::HashBytes(c.dict[c.codes[row]]);
    case ValueType::kNull:
      return 0x9ae16a3b2f90404fULL;
  }
  return 0;
}

bool ColumnChunk::CellEquals(size_t row, size_t col, const Value& v) const {
  const ColumnData& c = columns_[col];
  if (c.IsNull(row)) return v.is_null();
  if (c.variant) return c.boxed[row] == v;
  switch (c.tag) {
    case ValueType::kInt64:
      if (v.type() == ValueType::kInt64) return c.i64[row] == v.AsInt();
      if (v.type() == ValueType::kDouble) {
        return static_cast<double>(c.i64[row]) == v.AsDouble();
      }
      return false;
    case ValueType::kDouble:
      if (v.type() == ValueType::kDouble) return c.f64[row] == v.AsDouble();
      if (v.type() == ValueType::kInt64) {
        return c.f64[row] == static_cast<double>(v.AsInt());
      }
      return false;
    case ValueType::kString:
      return v.type() == ValueType::kString &&
             c.dict[c.codes[row]] == v.AsString();
    case ValueType::kNull:
      return v.is_null();
  }
  return false;
}

bool ColumnChunk::CellsEqual(const ColumnChunk& a, size_t a_row, size_t a_col,
                             const ColumnChunk& b, size_t b_row,
                             size_t b_col) {
  const ColumnData& ca = a.columns_[a_col];
  if (ca.IsNull(a_row)) return b.IsNull(b_row, b_col);
  if (ca.variant) return b.CellEquals(b_row, b_col, ca.boxed[a_row]);
  switch (ca.tag) {
    case ValueType::kInt64:
      return b.CellEquals(b_row, b_col, Value::Int(ca.i64[a_row]));
    case ValueType::kDouble:
      return b.CellEquals(b_row, b_col, Value::Double(ca.f64[a_row]));
    case ValueType::kString: {
      const std::string& s = ca.dict[ca.codes[a_row]];
      const ColumnData& cb = b.columns_[b_col];
      if (cb.IsNull(b_row)) return false;
      if (cb.variant) {
        const Value& v = cb.boxed[b_row];
        return v.type() == ValueType::kString && v.AsString() == s;
      }
      return cb.tag == ValueType::kString && cb.dict[cb.codes[b_row]] == s;
    }
    case ValueType::kNull:
      return b.IsNull(b_row, b_col);
  }
  return false;
}

int32_t ColumnChunk::FindDictCode(size_t col, const std::string& s) const {
  const ColumnData& c = columns_[col];
  if (c.variant || c.tag != ValueType::kString) return -1;
  const auto index_it = dict_index_.find(col);
  if (index_it != dict_index_.end()) {
    const auto it = index_it->second.find(s);
    return it != index_it->second.end() ? it->second : -1;
  }
  // No interning index (e.g. a column whose dictionary arrived by copy):
  // fall back to a scan — callers do this once per chunk, not per row.
  for (size_t i = 0; i < c.dict.size(); ++i) {
    if (c.dict[i] == s) return static_cast<int32_t>(i);
  }
  return -1;
}

void ColumnChunk::GatherI64(size_t col, const uint32_t* sel, size_t n,
                            int64_t* out) const {
  const int64_t* data = columns_[col].i64.data();
  for (size_t i = 0; i < n; ++i) out[i] = data[sel[i]];
}

void ColumnChunk::GatherF64(size_t col, const uint32_t* sel, size_t n,
                            double* out) const {
  const double* data = columns_[col].f64.data();
  for (size_t i = 0; i < n; ++i) out[i] = data[sel[i]];
}

void ColumnChunk::GatherCodes(size_t col, const uint32_t* sel, size_t n,
                              int32_t* out) const {
  const int32_t* data = columns_[col].codes.data();
  for (size_t i = 0; i < n; ++i) out[i] = data[sel[i]];
}

bool ColumnChunk::GatherNulls(size_t col, const uint32_t* sel, size_t n,
                              uint8_t* out) const {
  const ColumnData& c = columns_[col];
  bool any = false;
  for (size_t i = 0; i < n; ++i) {
    const bool null = c.IsNull(sel[i]);
    out[i] = null ? 1 : 0;
    any |= null;
  }
  return any;
}

size_t ColumnChunk::ByteSize() const {
  size_t n = 0;
  for (const ColumnData& c : columns_) {
    n += c.i64.size() * sizeof(int64_t);
    n += c.f64.size() * sizeof(double);
    n += c.codes.size() * sizeof(int32_t);
    for (const std::string& s : c.dict) n += s.size() + sizeof(int32_t);
    n += c.nulls.size() * sizeof(uint64_t);
    for (const Value& v : c.boxed) n += v.ByteSize();
  }
  return n;
}

}  // namespace rasql::storage
