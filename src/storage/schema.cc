#include "storage/schema.h"

#include <cctype>

namespace rasql::storage {

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = std::tolower(static_cast<unsigned char>(c));
  return out;
}

int Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ":";
    out += ValueTypeName(columns_[i].type);
  }
  return out;
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (!EqualsIgnoreCase(columns_[i].name, other.columns_[i].name) ||
        columns_[i].type != other.columns_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace rasql::storage
