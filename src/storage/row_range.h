#ifndef RASQL_STORAGE_ROW_RANGE_H_
#define RASQL_STORAGE_ROW_RANGE_H_

#include <algorithm>
#include <cstddef>
#include <vector>

namespace rasql::storage {

/// A half-open `[begin, end)` span of row indices over a driving relation —
/// the unit of work of the fused execution path (DESIGN.md §10). A morsel
/// task evaluates one RowRange of its pipeline's driver; the union of a
/// relation's morsels covers every row exactly once, in order, so
/// concatenating per-morsel sinks in morsel order reproduces the
/// whole-relation evaluation byte for byte.
struct RowRange {
  size_t begin = 0;
  size_t end = 0;

  size_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }

  friend bool operator==(const RowRange& a, const RowRange& b) {
    return a.begin == b.begin && a.end == b.end;
  }
};

/// Splits `[0, num_rows)` into consecutive spans of at most `morsel_rows`
/// rows. `morsel_rows == 0` means "whole relation": one span covering
/// everything. `num_rows == 0` yields no spans — there is no work to
/// schedule. The split depends only on the two sizes, never on thread
/// count, so the task decomposition (and therefore the merged output) is
/// identical for every runtime configuration.
inline std::vector<RowRange> SplitIntoMorsels(size_t num_rows,
                                              size_t morsel_rows) {
  std::vector<RowRange> out;
  if (num_rows == 0) return out;
  if (morsel_rows == 0) {
    out.push_back(RowRange{0, num_rows});
    return out;
  }
  out.reserve((num_rows + morsel_rows - 1) / morsel_rows);
  for (size_t b = 0; b < num_rows; b += morsel_rows) {
    out.push_back(RowRange{b, std::min(b + morsel_rows, num_rows)});
  }
  return out;
}

}  // namespace rasql::storage

#endif  // RASQL_STORAGE_ROW_RANGE_H_
