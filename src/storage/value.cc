#include "storage/value.h"

#include <cmath>
#include <cstdio>

namespace rasql::storage {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

int Value::Compare(const Value& other) const {
  // Numeric cross-type comparison: int64 vs double compares by value.
  const bool lhs_num =
      type_ == ValueType::kInt64 || type_ == ValueType::kDouble;
  const bool rhs_num =
      other.type_ == ValueType::kInt64 || other.type_ == ValueType::kDouble;
  if (lhs_num && rhs_num) {
    if (type_ == ValueType::kInt64 && other.type_ == ValueType::kInt64) {
      if (i64_ < other.i64_) return -1;
      if (i64_ > other.i64_) return 1;
      return 0;
    }
    const double a = AsNumeric();
    const double b = other.AsNumeric();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (type_ != other.type_) {
    return static_cast<int>(type_) < static_cast<int>(other.type_) ? -1 : 1;
  }
  switch (type_) {
    case ValueType::kNull:
      return 0;
    case ValueType::kString:
      return str_.compare(other.str_) < 0   ? -1
             : str_.compare(other.str_) > 0 ? 1
                                            : 0;
    default:
      return 0;  // Unreachable: numeric handled above.
  }
}

uint64_t Value::Hash() const {
  switch (type_) {
    case ValueType::kNull:
      return 0x9ae16a3b2f90404fULL;
    case ValueType::kInt64:
      return common::MixHash64(static_cast<uint64_t>(i64_));
    case ValueType::kDouble: {
      // Hash integral doubles like the equal int64 so mixed numeric keys
      // that compare equal also hash equal.
      double intpart;
      if (std::modf(f64_, &intpart) == 0.0 &&
          intpart >= -9.2233720368547758e18 &&
          intpart <= 9.2233720368547758e18) {
        return common::MixHash64(static_cast<uint64_t>(
            static_cast<int64_t>(intpart)));
      }
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(f64_));
      __builtin_memcpy(&bits, &f64_, sizeof(bits));
      return common::MixHash64(bits);
    }
    case ValueType::kString:
      return common::HashBytes(str_);
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(i64_);
    case ValueType::kDouble: {
      // Non-finite doubles render as the canonical tokens "inf"/"-inf"/
      // "nan" — never the platform's %g spelling ("-nan", "1.#INF", ...)
      // — so every writer that delegates here emits cells strtod can
      // parse back (result_writer.h pins the same contract).
      if (f64_ != f64_) return "nan";
      if (f64_ == __builtin_huge_val()) return "inf";
      if (f64_ == -__builtin_huge_val()) return "-inf";
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", f64_);
      return buf;
    }
    case ValueType::kString:
      return "'" + str_ + "'";
  }
  return "?";
}

}  // namespace rasql::storage
