#ifndef RASQL_STORAGE_RESULT_WRITER_H_
#define RASQL_STORAGE_RESULT_WRITER_H_

#include <string>
#include <vector>

#include "storage/column_chunk.h"
#include "storage/csv.h"
#include "storage/schema.h"

namespace rasql::storage {

class Relation;

/// Streaming renderer of query results that consumes column chunks
/// directly — the one serializer behind the shell's `--format=` output,
/// `ToCsv`, and the server's RESULT frames. Cells render straight from the
/// typed arrays (dictionary strings by reference), so no intermediate Row
/// is ever materialized.
class ResultWriter {
 public:
  explicit ResultWriter(std::string* out) : out_(out) {}
  virtual ~ResultWriter() = default;

  ResultWriter(const ResultWriter&) = delete;
  ResultWriter& operator=(const ResultWriter&) = delete;

  virtual void Begin(const Schema& schema) {}
  virtual void WriteChunk(const ColumnChunk& chunk) = 0;
  virtual void End(size_t num_rows) {}

 protected:
  std::string* out_;
};

/// RFC 4180: NULL renders as a bare empty cell, an empty string is always
/// quoted, numerics use Value::ToString formatting (%g for doubles).
/// Non-finite doubles are pinned to "inf"/"-inf"/"nan" — the tokens
/// ParseCsv's strtod reads back — across CSV and text alike; JSON, which
/// has no non-finite literals, renders them as null (the one documented
/// divergence between the three formats).
class CsvResultWriter final : public ResultWriter {
 public:
  CsvResultWriter(std::string* out, CsvOptions options = {})
      : ResultWriter(out), options_(options) {}

  void Begin(const Schema& schema) override;
  void WriteChunk(const ColumnChunk& chunk) override;

 private:
  CsvOptions options_;
};

/// `[{"col": v, ...}, ...]` — int64 as numbers, doubles via round-trippable
/// %.17g (trimmed to %g when that round-trips), NULL as null, strings
/// escaped per RFC 8259.
class JsonResultWriter final : public ResultWriter {
 public:
  explicit JsonResultWriter(std::string* out) : ResultWriter(out) {}

  void Begin(const Schema& schema) override;
  void WriteChunk(const ColumnChunk& chunk) override;
  void End(size_t num_rows) override;

 private:
  std::vector<std::string> keys_;  ///< pre-quoted column names
  bool first_row_ = true;
};

/// Relation::ToString-style table: schema line, "v1|v2|..." rows, then a
/// "(N rows)" footer.
class TextResultWriter final : public ResultWriter {
 public:
  explicit TextResultWriter(std::string* out) : ResultWriter(out) {}

  void Begin(const Schema& schema) override;
  void WriteChunk(const ColumnChunk& chunk) override;
  void End(size_t num_rows) override;
};

/// Drives `writer` over every chunk of `rel`: Begin, WriteChunk per chunk,
/// End.
void WriteRelation(const Relation& rel, ResultWriter* writer);

}  // namespace rasql::storage

#endif  // RASQL_STORAGE_RESULT_WRITER_H_
