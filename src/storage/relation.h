#ifndef RASQL_STORAGE_RELATION_H_
#define RASQL_STORAGE_RELATION_H_

#include <string>
#include <vector>

#include "storage/row.h"
#include "storage/schema.h"

namespace rasql::storage {

/// A materialized bag of rows with a schema. This is the unit of data flow
/// between physical operators and the payload of one partition of a
/// distributed dataset.
class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}
  Relation(Schema schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const Schema& schema() const { return schema_; }
  Schema* mutable_schema() { return &schema_; }

  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& mutable_rows() { return rows_; }

  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  void Add(Row row) { rows_.push_back(std::move(row)); }
  void Reserve(size_t n) { rows_.reserve(n); }
  void Clear() { rows_.clear(); }

  /// Approximate serialized size; feeds the shuffle/broadcast cost model.
  size_t ByteSize() const;

  /// Sorts rows lexicographically — canonical form for test comparisons.
  void SortRows();

  /// Removes duplicate rows (set semantics); sorts as a side effect.
  void Dedup();

  /// Multi-line "v1|v2|..." table rendering (rows in current order).
  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

/// Builds a relation of int64 columns from a literal list, e.g.
/// MakeIntRelation({"Src","Dst"}, {{1,2},{2,3}}). Test/bench convenience.
Relation MakeIntRelation(const std::vector<std::string>& names,
                         const std::vector<std::vector<int64_t>>& rows);

/// True when the two relations contain the same bag of rows (order-
/// insensitive); used heavily by tests and the PreM validator.
bool SameBag(const Relation& a, const Relation& b);

}  // namespace rasql::storage

#endif  // RASQL_STORAGE_RELATION_H_
