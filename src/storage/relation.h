#ifndef RASQL_STORAGE_RELATION_H_
#define RASQL_STORAGE_RELATION_H_

#include <algorithm>
#include <string>
#include <vector>

#include "storage/column_chunk.h"
#include "storage/row.h"
#include "storage/row_range.h"
#include "storage/schema.h"

namespace rasql::storage {

/// Cheap cursor over one stored row: a chunk pointer plus the row's offset
/// inside it. The row-view compatibility layer for call sites that want
/// cell access without materializing a whole Row.
class RowAccessor {
 public:
  RowAccessor(const ColumnChunk* chunk, size_t row)
      : chunk_(chunk), row_(row) {}

  size_t width() const { return chunk_->num_columns(); }
  bool is_null(int col) const {
    return chunk_->IsNull(row_, static_cast<size_t>(col));
  }
  Value value(int col) const {
    return chunk_->ValueAt(row_, static_cast<size_t>(col));
  }
  Value operator[](int col) const { return value(col); }

  Row ToRow() const {
    Row out;
    chunk_->MaterializeRow(row_, &out);
    return out;
  }

  /// Physical position — for cell-vs-cell comparisons and batch kernels.
  const ColumnChunk& chunk() const { return *chunk_; }
  size_t chunk_row() const { return row_; }

 private:
  const ColumnChunk* chunk_;
  size_t row_;
};

/// A materialized bag of rows with a schema — the unit of data flow between
/// physical operators and the payload of one partition of a distributed
/// dataset. Stored column-major as an ordered sequence of ColumnChunks
/// (typed contiguous arrays + null bitmaps, the Tungsten-style layout);
/// row-oriented call sites go through the compatibility layer
/// (AppendRow / row(i) / ForEachRow / GetRow), vectorized kernels loop over
/// `chunk(c).column(col)` arrays directly.
class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}
  Relation(Schema schema, const std::vector<Row>& rows)
      : schema_(std::move(schema)) {
    for (const Row& row : rows) AppendRow(row);
  }

  const Schema& schema() const { return schema_; }
  Schema* mutable_schema() { return &schema_; }

  size_t size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  /// Appends one row, cell by cell, to the open tail chunk. Rows of a new
  /// width seal the current chunk and open a fresh one.
  void AppendRow(const Row& row);
  /// Historical alias of AppendRow.
  void Add(const Row& row) { AppendRow(row); }

  /// Capacity hint — chunk growth is amortized; kept for call-site compat.
  void Reserve(size_t n) { (void)n; }
  void Clear() {
    chunks_.clear();
    chunk_begins_.clear();
    num_rows_ = 0;
    uniform_ = true;
  }

  /// Row views -----------------------------------------------------------

  RowAccessor row(size_t i) const {
    size_t c;
    size_t r;
    LocateRow(i, &c, &r);
    return RowAccessor(&chunks_[c], r);
  }

  Value ValueAt(size_t i, int col) const {
    size_t c;
    size_t r;
    LocateRow(i, &c, &r);
    return chunks_[c].ValueAt(r, static_cast<size_t>(col));
  }

  /// Materialized copy of row `i`.
  Row GetRow(size_t i) const {
    Row out;
    MaterializeRowInto(i, &out);
    return out;
  }

  void MaterializeRowInto(size_t i, Row* out) const {
    size_t c;
    size_t r;
    LocateRow(i, &c, &r);
    chunks_[c].MaterializeRow(r, out);
  }

  /// Copies row `i` into `(*dest)[offset ...]` without a temporary.
  void CopyRowTo(size_t i, Row* dest, size_t offset) const {
    size_t c;
    size_t r;
    LocateRow(i, &c, &r);
    chunks_[c].CopyRowTo(r, dest, offset);
  }

  /// Calls `fn(const Row&)` for every row in `[range.begin, range.end)`
  /// (clamped), in order, reusing one scratch Row. The reference is only
  /// valid during the call.
  template <class Fn>
  void ForEachRow(RowRange range, Fn&& fn) const {
    const size_t end = std::min(range.end, num_rows_);
    if (range.begin >= end) return;
    Row scratch;
    size_t i = range.begin;
    while (i < end) {
      size_t c;
      size_t r;
      LocateRow(i, &c, &r);
      const ColumnChunk& chunk = chunks_[c];
      const size_t stop = std::min(end - i + r, chunk.num_rows());
      for (; r < stop; ++r, ++i) {
        chunk.MaterializeRow(r, &scratch);
        fn(static_cast<const Row&>(scratch));
      }
    }
  }

  template <class Fn>
  void ForEachRow(Fn&& fn) const {
    ForEachRow(RowRange{0, num_rows_}, std::forward<Fn>(fn));
  }

  /// Materializes every row — for sort/canonicalization paths and tests.
  std::vector<Row> MaterializeRows() const;

  /// Materializes every row and clears the relation; the columnar
  /// replacement for the old `std::move(rel.mutable_rows())` idiom.
  std::vector<Row> TakeRows();

  /// Chunk views ---------------------------------------------------------

  size_t num_chunks() const { return chunks_.size(); }
  const ColumnChunk& chunk(size_t c) const { return chunks_[c]; }
  /// Global index of chunk `c`'s first row.
  size_t chunk_begin(size_t c) const { return chunk_begins_[c]; }
  /// Chunk containing global row `i` and `i`'s offset within it.
  void Locate(size_t i, size_t* c, size_t* r) const { LocateRow(i, c, r); }

  /// Key hashing/equality against stored cells, consistent with
  /// HashRowKey / Value::operator== on the materialized row.
  uint64_t HashKeyAt(size_t i, const std::vector<int>& key_cols) const {
    size_t c;
    size_t r;
    LocateRow(i, &c, &r);
    return chunks_[c].HashKey(r, key_cols);
  }
  bool CellEquals(size_t i, int col, const Value& v) const {
    size_t c;
    size_t r;
    LocateRow(i, &c, &r);
    return chunks_[c].CellEquals(r, static_cast<size_t>(col), v);
  }

  /// Real columnar footprint (typed arrays + null bitmaps + dictionaries);
  /// feeds the shuffle/broadcast cost model.
  size_t ByteSize() const;

  /// Sorts rows lexicographically — canonical form for test comparisons.
  void SortRows();

  /// Removes duplicate rows (set semantics); sorts as a side effect.
  void Dedup();

  /// Multi-line "v1|v2|..." table rendering (rows in current order).
  std::string ToString(size_t max_rows = 20) const;

 private:
  void LocateRow(size_t i, size_t* c, size_t* r) const {
    if (uniform_) {
      *c = i / kChunkRows;
      *r = i % kChunkRows;
      return;
    }
    // Rare: a width change sealed a short chunk; binary-search the starts.
    const auto it = std::upper_bound(chunk_begins_.begin(),
                                     chunk_begins_.end(), i);
    *c = static_cast<size_t>(it - chunk_begins_.begin()) - 1;
    *r = i - chunk_begins_[*c];
  }

  Schema schema_;
  std::vector<ColumnChunk> chunks_;
  std::vector<size_t> chunk_begins_;
  size_t num_rows_ = 0;
  /// True while every sealed chunk holds exactly kChunkRows rows, enabling
  /// O(1) row location.
  bool uniform_ = true;
};

/// Builds a relation of int64 columns from a literal list, e.g.
/// MakeIntRelation({"Src","Dst"}, {{1,2},{2,3}}). Test/bench convenience.
Relation MakeIntRelation(const std::vector<std::string>& names,
                         const std::vector<std::vector<int64_t>>& rows);

/// True when the two relations contain the same bag of rows (order-
/// insensitive); used heavily by tests and the PreM validator.
bool SameBag(const Relation& a, const Relation& b);

/// True when the two relations contain the same rows in the same order.
bool SameRows(const Relation& a, const Relation& b);

}  // namespace rasql::storage

#endif  // RASQL_STORAGE_RELATION_H_
