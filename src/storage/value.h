#ifndef RASQL_STORAGE_VALUE_H_
#define RASQL_STORAGE_VALUE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

#include "common/check.h"
#include "common/hash.h"

namespace rasql::storage {

/// Column data types supported by the engine. The RaSQL workloads in the
/// paper use integers (vertex ids, counts), doubles (costs, bonuses) and
/// strings (company/member names).
enum class ValueType : uint8_t {
  kNull = 0,
  kInt64,
  kDouble,
  kString,
};

/// Returns "NULL" / "INT" / "DOUBLE" / "STRING".
const char* ValueTypeName(ValueType type);

/// A single SQL value: a small tagged union. Numeric payloads live inline;
/// string payloads use std::string (SSO covers typical identifiers).
class Value {
 public:
  Value() : type_(ValueType::kNull), i64_(0) {}
  explicit Value(int64_t v) : type_(ValueType::kInt64), i64_(v) {}
  explicit Value(double v) : type_(ValueType::kDouble), f64_(v) {}
  explicit Value(std::string v)
      : type_(ValueType::kString), i64_(0), str_(std::move(v)) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(v); }
  static Value Double(double v) { return Value(v); }
  static Value String(std::string v) { return Value(std::move(v)); }

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }

  int64_t AsInt() const {
    RASQL_DCHECK(type_ == ValueType::kInt64);
    return i64_;
  }
  double AsDouble() const {
    RASQL_DCHECK(type_ == ValueType::kDouble);
    return f64_;
  }
  const std::string& AsString() const {
    RASQL_DCHECK(type_ == ValueType::kString);
    return str_;
  }

  /// Numeric value widened to double; valid for kInt64 and kDouble.
  double AsNumeric() const {
    RASQL_DCHECK(type_ == ValueType::kInt64 || type_ == ValueType::kDouble);
    return type_ == ValueType::kInt64 ? static_cast<double>(i64_) : f64_;
  }

  /// Total ordering used for joins/aggregates/sorting. Values of different
  /// types compare by type tag first (nulls lowest), except int64/double
  /// which compare numerically.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Hash consistent with operator== (int64 and the equal double hash alike
  /// only when they are bit-identical integers; mixed-type keys do not occur
  /// in well-typed plans).
  uint64_t Hash() const;

  /// SQL-literal-ish rendering used by EXPLAIN and result printing.
  std::string ToString() const;

  /// Approximate in-memory/serialized footprint in bytes; feeds the shuffle
  /// and broadcast cost model.
  size_t ByteSize() const {
    return type_ == ValueType::kString ? 8 + str_.size() : 8;
  }

 private:
  ValueType type_;
  union {
    int64_t i64_;
    double f64_;
  };
  std::string str_;
};

inline std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace rasql::storage

#endif  // RASQL_STORAGE_VALUE_H_
