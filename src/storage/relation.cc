#include "storage/relation.h"

#include <algorithm>

namespace rasql::storage {

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

size_t Relation::ByteSize() const {
  size_t n = 0;
  for (const Row& row : rows_) n += RowByteSize(row);
  return n;
}

void Relation::SortRows() { std::sort(rows_.begin(), rows_.end(), RowLess()); }

void Relation::Dedup() {
  SortRows();
  rows_.erase(std::unique(rows_.begin(), rows_.end(),
                          [](const Row& a, const Row& b) {
                            return RowEq()(a, b);
                          }),
              rows_.end());
}

std::string Relation::ToString(size_t max_rows) const {
  std::string out = schema_.ToString() + "\n";
  size_t shown = 0;
  for (const Row& row : rows_) {
    if (shown++ >= max_rows) {
      out += "... (" + std::to_string(rows_.size()) + " rows total)\n";
      break;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += "|";
      out += row[i].ToString();
    }
    out += "\n";
  }
  return out;
}

Relation MakeIntRelation(const std::vector<std::string>& names,
                         const std::vector<std::vector<int64_t>>& rows) {
  std::vector<Column> cols;
  cols.reserve(names.size());
  for (const std::string& name : names) {
    cols.push_back(Column{name, ValueType::kInt64});
  }
  Relation rel{Schema(std::move(cols))};
  rel.Reserve(rows.size());
  for (const auto& r : rows) {
    Row row;
    row.reserve(r.size());
    for (int64_t v : r) row.push_back(Value::Int(v));
    rel.Add(std::move(row));
  }
  return rel;
}

bool SameBag(const Relation& a, const Relation& b) {
  if (a.size() != b.size()) return false;
  std::vector<Row> ra = a.rows();
  std::vector<Row> rb = b.rows();
  std::sort(ra.begin(), ra.end(), RowLess());
  std::sort(rb.begin(), rb.end(), RowLess());
  RowEq eq;
  for (size_t i = 0; i < ra.size(); ++i) {
    if (!eq(ra[i], rb[i])) return false;
  }
  return true;
}

}  // namespace rasql::storage
