#include "storage/relation.h"

#include <algorithm>

namespace rasql::storage {

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

void Relation::AppendRow(const Row& row) {
  if (chunks_.empty() || chunks_.back().full() ||
      chunks_.back().num_columns() != row.size()) {
    // A width change seals a short chunk and breaks the uniform O(1)
    // row-location invariant; row location falls back to binary search.
    if (!chunks_.empty() && !chunks_.back().full()) uniform_ = false;
    chunk_begins_.push_back(num_rows_);
    chunks_.emplace_back(row.size());
  }
  chunks_.back().AppendRow(row);
  ++num_rows_;
}

std::vector<Row> Relation::MaterializeRows() const {
  std::vector<Row> rows;
  rows.reserve(num_rows_);
  ForEachRow([&rows](const Row& row) { rows.push_back(row); });
  return rows;
}

std::vector<Row> Relation::TakeRows() {
  std::vector<Row> rows = MaterializeRows();
  Clear();
  return rows;
}

size_t Relation::ByteSize() const {
  size_t n = 0;
  for (const ColumnChunk& chunk : chunks_) n += chunk.ByteSize();
  return n;
}

void Relation::SortRows() {
  std::vector<Row> rows = MaterializeRows();
  std::sort(rows.begin(), rows.end(), RowLess());
  Clear();
  for (Row& row : rows) AppendRow(row);
}

void Relation::Dedup() {
  std::vector<Row> rows = MaterializeRows();
  std::sort(rows.begin(), rows.end(), RowLess());
  rows.erase(std::unique(rows.begin(), rows.end(),
                         [](const Row& a, const Row& b) {
                           return RowEq()(a, b);
                         }),
             rows.end());
  Clear();
  for (Row& row : rows) AppendRow(row);
}

std::string Relation::ToString(size_t max_rows) const {
  std::string out = schema_.ToString() + "\n";
  Row scratch;
  for (size_t i = 0; i < num_rows_; ++i) {
    if (i >= max_rows) {
      out += "... (" + std::to_string(num_rows_) + " rows total)\n";
      break;
    }
    MaterializeRowInto(i, &scratch);
    for (size_t c = 0; c < scratch.size(); ++c) {
      if (c > 0) out += "|";
      out += scratch[c].ToString();
    }
    out += "\n";
  }
  return out;
}

Relation MakeIntRelation(const std::vector<std::string>& names,
                         const std::vector<std::vector<int64_t>>& rows) {
  std::vector<Column> cols;
  cols.reserve(names.size());
  for (const std::string& name : names) {
    cols.push_back(Column{name, ValueType::kInt64});
  }
  Relation rel{Schema(std::move(cols))};
  Row row;
  for (const auto& r : rows) {
    row.clear();
    row.reserve(r.size());
    for (int64_t v : r) row.push_back(Value::Int(v));
    rel.AppendRow(row);
  }
  return rel;
}

bool SameBag(const Relation& a, const Relation& b) {
  if (a.size() != b.size()) return false;
  std::vector<Row> ra = a.MaterializeRows();
  std::vector<Row> rb = b.MaterializeRows();
  std::sort(ra.begin(), ra.end(), RowLess());
  std::sort(rb.begin(), rb.end(), RowLess());
  RowEq eq;
  for (size_t i = 0; i < ra.size(); ++i) {
    if (!eq(ra[i], rb[i])) return false;
  }
  return true;
}

bool SameRows(const Relation& a, const Relation& b) {
  if (a.size() != b.size()) return false;
  Row ra;
  Row rb;
  RowEq eq;
  for (size_t i = 0; i < a.size(); ++i) {
    a.MaterializeRowInto(i, &ra);
    b.MaterializeRowInto(i, &rb);
    if (!eq(ra, rb)) return false;
  }
  return true;
}

}  // namespace rasql::storage
