#include "storage/result_format.h"

#include <cctype>
#include <cstdio>
#include <cstring>

#include "storage/csv.h"

namespace rasql::storage {

using common::Result;
using common::Status;

Result<ResultFormat> ParseResultFormat(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "csv") return ResultFormat::kCsv;
  if (lower == "json") return ResultFormat::kJson;
  if (lower == "text") return ResultFormat::kText;
  return Status::InvalidArgument("unknown result format '" + name +
                                 "' (expected csv, json or text)");
}

const char* ResultFormatName(ResultFormat format) {
  switch (format) {
    case ResultFormat::kCsv: return "csv";
    case ResultFormat::kJson: return "json";
    case ResultFormat::kText: return "text";
  }
  return "?";
}

std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += "\"";
  return out;
}

namespace {

/// Shortest %.17g rendering that still round-trips; JSON has no infinities
/// or NaNs, so those render as null.
std::string JsonNumber(double v) {
  if (!(v == v) || v == __builtin_huge_val() || v == -__builtin_huge_val()) {
    return "null";
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double back = 0;
  std::sscanf(buf, "%lf", &back);
  if (back == v) {
    // Try to shorten: %g often suffices and reads much better.
    char short_buf[40];
    std::snprintf(short_buf, sizeof(short_buf), "%g", v);
    std::sscanf(short_buf, "%lf", &back);
    if (back == v) return short_buf;
  }
  return buf;
}

std::string JsonValue(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull: return "null";
    case ValueType::kInt64: return std::to_string(v.AsInt());
    case ValueType::kDouble: return JsonNumber(v.AsDouble());
    case ValueType::kString: return JsonQuote(v.AsString());
  }
  return "null";
}

std::string ToJson(const Relation& relation) {
  // Pre-quote the column names once; every row reuses them.
  std::vector<std::string> keys;
  keys.reserve(relation.schema().num_columns());
  for (const Column& col : relation.schema().columns()) {
    keys.push_back(JsonQuote(col.name));
  }
  std::string out = "[";
  bool first_row = true;
  for (const Row& row : relation.rows()) {
    if (!first_row) out += ",";
    first_row = false;
    out += "\n  {";
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ", ";
      out += keys[i];
      out += ": ";
      out += JsonValue(row[i]);
    }
    out += "}";
  }
  out += first_row ? "]\n" : "\n]\n";
  return out;
}

}  // namespace

std::string FormatRelation(const Relation& relation, ResultFormat format) {
  switch (format) {
    case ResultFormat::kCsv: return ToCsv(relation);
    case ResultFormat::kJson: return ToJson(relation);
    case ResultFormat::kText:
      return relation.ToString(relation.size()) + "(" +
             std::to_string(relation.size()) + " rows)\n";
  }
  return "";
}

}  // namespace rasql::storage
