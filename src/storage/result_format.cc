#include "storage/result_format.h"

#include <cctype>
#include <cstdio>
#include <cstring>

#include "storage/result_writer.h"

namespace rasql::storage {

using common::Result;
using common::Status;

Result<ResultFormat> ParseResultFormat(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "csv") return ResultFormat::kCsv;
  if (lower == "json") return ResultFormat::kJson;
  if (lower == "text") return ResultFormat::kText;
  return Status::InvalidArgument("unknown result format '" + name +
                                 "' (expected csv, json or text)");
}

const char* ResultFormatName(ResultFormat format) {
  switch (format) {
    case ResultFormat::kCsv: return "csv";
    case ResultFormat::kJson: return "json";
    case ResultFormat::kText: return "text";
  }
  return "?";
}

std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += "\"";
  return out;
}

std::string FormatRelation(const Relation& relation, ResultFormat format) {
  // All three formats render through the chunk-consuming ResultWriter —
  // one serializer for the shell, ToCsv, and the server's RESULT frames.
  std::string out;
  switch (format) {
    case ResultFormat::kCsv: {
      CsvResultWriter writer(&out);
      WriteRelation(relation, &writer);
      break;
    }
    case ResultFormat::kJson: {
      JsonResultWriter writer(&out);
      WriteRelation(relation, &writer);
      break;
    }
    case ResultFormat::kText: {
      TextResultWriter writer(&out);
      WriteRelation(relation, &writer);
      break;
    }
  }
  return out;
}

}  // namespace rasql::storage
