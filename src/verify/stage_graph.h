#ifndef RASQL_VERIFY_STAGE_GRAPH_H_
#define RASQL_VERIFY_STAGE_GRAPH_H_

#include <string>
#include <vector>

namespace rasql::verify {

/// How a stage's concurrently-running tasks are allowed to touch one
/// shared resource (a vector of per-partition slots, a SetRDD, a table).
/// These are the concurrency contracts DESIGN.md §7/§10 state in prose;
/// declaring them on the StageSpec is what lets the verifier reject a
/// submission whose task closures could race — before any task runs.
enum class AccessMode {
  /// Every task may read; nothing writes while the stage is in flight.
  kReadShared,
  /// Task p writes only slot p of a partition-indexed container.
  kPartitionOwned,
  /// Split sub-task (p, j) writes only its own (partition, split) slot;
  /// partition p's finalize task then consumes p's slots. Requires the
  /// stage to actually declare split tasks.
  kSplitSlotOwned,
  /// Exactly one designated task writes the whole object (the driver-like
  /// single-writer stages of the SQL-loop baseline).
  kSingleTask,
};

/// "read-shared", "partition-owned", "split-slot-owned", "single-task".
const char* AccessModeName(AccessMode mode);

/// True for the modes that write (everything except kReadShared).
bool IsWriteMode(AccessMode mode);

/// Stage kinds, mirroring dist::StageSpec::Kind. Duplicated here so the
/// verifier depends only on lint/ and common/ — dist/cluster.cc calls into
/// the verifier, not the other way around.
enum class StageKind { kLocal, kShuffleMap, kShuffleReduce, kCombined };

const char* StageKindName(StageKind kind);

/// True when the kind consumes the previous map output.
bool KindConsumesShuffle(StageKind kind);
/// True when the kind produces map output.
bool KindProducesShuffle(StageKind kind);

/// One declared access to a shared resource by a stage's tasks.
struct ClaimDecl {
  int resource = -1;  ///< index into StageGraph::resources
  AccessMode mode = AccessMode::kReadShared;
};

/// One declared stage. Channels, accumulators and resources are indices
/// into the owning StageGraph's registries; -1 = not used.
struct StageNode {
  std::string name;
  StageKind kind = StageKind::kLocal;
  /// Channel this stage Gathers routed rows from (-1 = none; the stage may
  /// still *model* consumption via its kind).
  int input_channel = -1;
  /// Channel this stage publishes slices into (-1 = none).
  int output_channel = -1;
  /// Shared accumulators the tasks may update (-1 = none).
  int counter = -1;
  int status = -1;
  /// True when the stage declares split sub-tasks (morsel DAG, §10).
  bool split = false;
  /// Channels whose exchange is cleared (ShuffleChannel::Reset) by the
  /// driver immediately before this stage is submitted.
  std::vector<int> resets;
  /// Declared resource accesses of this stage's task closures.
  std::vector<ClaimDecl> claims;
  /// Concurrency group: nodes sharing a non-negative group id are
  /// submitted as ONE dependency DAG (Cluster::RunStagePair) and may run
  /// interleaved; -1 = barriered single-stage submission.
  int group = -1;
};

/// The abstract, pointer-free model of a job's stage submissions that the
/// StageGraphVerifier reasons about. Built incrementally by the live
/// Cluster hook (one node per RunStage, two per RunStagePair) or in one
/// shot by the offline planners behind EXPLAIN STAGES.
struct StageGraph {
  /// Registry names, for diagnostics and rendering. Indices are the ids
  /// StageNode fields refer to.
  std::vector<std::string> channels;
  std::vector<std::string> resources;
  std::vector<std::string> counters;
  std::vector<std::string> statuses;
  /// Stages in submission order.
  std::vector<StageNode> nodes;
  /// Partitions per stage (= slices per channel).
  int num_partitions = 0;
  /// Free-form annotation appended to the rendering (e.g. the offline
  /// planners' "iteration body repeats until fixpoint" note).
  std::string note;

  int AddChannel(std::string name);
  int AddResource(std::string name);
  int AddCounter(std::string name);
  int AddStatus(std::string name);
  /// Appends a stage and returns it for field assignment.
  StageNode& AddStage(std::string name, StageKind kind);

  /// Convenience for builders: appends a claim to the last added stage.
  void Claim(int resource, AccessMode mode);

  /// Human-readable rendering of the declared DAG — the body of the
  /// shell's EXPLAIN STAGES output.
  std::string ToString() const;
};

}  // namespace rasql::verify

#endif  // RASQL_VERIFY_STAGE_GRAPH_H_
