#include "verify/verifier.h"

#include <map>
#include <sstream>
#include <utility>

#include "common/check.h"

namespace rasql::verify {
namespace {

using lint::DiagnosticEngine;
using lint::Severity;

std::string Quote(const std::string& s) { return "'" + s + "'"; }

}  // namespace

void StageGraphVerifier::EnsureChannelStates() {
  if (channel_states_.size() < graph_->channels.size()) {
    channel_states_.resize(graph_->channels.size());
  }
}

void StageGraphVerifier::SetLivePublished(int channel, int published) {
  EnsureChannelStates();
  RASQL_CHECK(channel >= 0 &&
              channel < static_cast<int>(channel_states_.size()));
  channel_states_[channel].published = published;
}

void StageGraphVerifier::VerifyNodeLocal(const StageNode& node,
                                         DiagnosticEngine* diag) {
  const StageGraph& g = *graph_;
  // RASQL-G006: the declared channels must be coherent with the stage
  // kind — the runtime derives scheduling and cost-model behaviour from
  // the kind, so a contradiction means one of the two lies.
  if (node.input_channel >= 0 && !KindConsumesShuffle(node.kind)) {
    diag->Report(Severity::kError, "RASQL-G006",
                 "stage kind '" + std::string(StageKindName(node.kind)) +
                     "' does not consume a shuffle but declares input "
                     "channel " +
                     Quote(g.channels[node.input_channel]),
                 node.name);
  }
  if (node.output_channel >= 0 && !KindProducesShuffle(node.kind)) {
    diag->Report(Severity::kError, "RASQL-G006",
                 "stage kind '" + std::string(StageKindName(node.kind)) +
                     "' does not produce a shuffle but declares output "
                     "channel " +
                     Quote(g.channels[node.output_channel]),
                 node.name);
  }
  // RASQL-G004 (self form): consuming the channel the stage itself
  // publishes can never be scheduled — every consumer slice would wait on
  // the stage's own completion.
  if (node.input_channel >= 0 && node.input_channel == node.output_channel) {
    diag->Report(Severity::kError, "RASQL-G004",
                 "stage consumes its own output channel " +
                     Quote(g.channels[node.input_channel]),
                 node.name);
  }
  // RASQL-G007: claim-set consistency within the stage.
  std::map<int, AccessMode> first_mode;
  for (const ClaimDecl& claim : node.claims) {
    RASQL_CHECK(claim.resource >= 0 &&
                claim.resource < static_cast<int>(g.resources.size()));
    if (claim.mode == AccessMode::kSplitSlotOwned && !node.split) {
      diag->Report(Severity::kError, "RASQL-G007",
                   "split-slot claim on resource " +
                       Quote(g.resources[claim.resource]) +
                       " but the stage declares no split tasks",
                   node.name);
    }
    auto [it, inserted] = first_mode.emplace(claim.resource, claim.mode);
    if (!inserted && it->second != claim.mode) {
      diag->Report(Severity::kError, "RASQL-G007",
                   "conflicting claims on resource " +
                       Quote(g.resources[claim.resource]) + ": " +
                       AccessModeName(it->second) + " vs " +
                       AccessModeName(claim.mode),
                   node.name);
    }
  }
}

void StageGraphVerifier::VerifyGroup(size_t begin, size_t end,
                                     DiagnosticEngine* diag) {
  const StageGraph& g = *graph_;
  const int P = g.num_partitions;
  const size_t n = end - begin;

  for (size_t i = begin; i < end; ++i) VerifyNodeLocal(g.nodes[i], diag);

  // Driver-side Reset() calls precede the submission of the whole group.
  for (size_t i = begin; i < end; ++i) {
    for (int ch : g.nodes[i].resets) {
      RASQL_CHECK(ch >= 0 && ch < static_cast<int>(channel_states_.size()));
      channel_states_[ch].published = 0;
    }
  }

  // In-group slice dependencies: producer -> consumer through a shared
  // channel. These are the edges Cluster::RunStagePair turns into real
  // task dependencies under async shuffle.
  std::vector<std::vector<size_t>> edges(n);
  std::vector<bool> input_satisfied(n, false);
  for (size_t c = begin; c < end; ++c) {
    const int in = g.nodes[c].input_channel;
    if (in < 0) continue;
    for (size_t p = begin; p < end; ++p) {
      if (p != c && g.nodes[p].output_channel == in) {
        edges[p - begin].push_back(c - begin);
        input_satisfied[c - begin] = true;
      }
    }
  }

  // RASQL-G004 (cycle form): a dependency cycle among the group's stages
  // can never release any consumer task.
  if (n > 1) {
    std::vector<int> color(n, 0);  // 0 white, 1 on stack, 2 done
    bool cyclic = false;
    // Iterative DFS; group sizes are tiny but avoid recursion anyway.
    for (size_t root = 0; root < n && !cyclic; ++root) {
      if (color[root] != 0) continue;
      std::vector<std::pair<size_t, size_t>> stack{{root, 0}};
      color[root] = 1;
      while (!stack.empty() && !cyclic) {
        auto& [v, next] = stack.back();
        if (next < edges[v].size()) {
          const size_t w = edges[v][next++];
          if (color[w] == 1) {
            cyclic = true;
          } else if (color[w] == 0) {
            color[w] = 1;
            stack.push_back({w, 0});
          }
        } else {
          color[v] = 2;
          stack.pop_back();
        }
      }
    }
    if (cyclic) {
      diag->Report(Severity::kError, "RASQL-G004",
                   "cyclic slice dependency between concurrent stages " +
                       Quote(g.nodes[begin].name) + " and " +
                       Quote(g.nodes[begin + 1].name),
                   g.nodes[begin].name);
    }
  }

  // Input lifecycle: a consumer without an in-group producer must find its
  // exchange armed and fully published at submission time.
  for (size_t i = begin; i < end; ++i) {
    const StageNode& node = g.nodes[i];
    const int in = node.input_channel;
    if (in < 0 || input_satisfied[i - begin]) continue;
    RASQL_CHECK(in < static_cast<int>(channel_states_.size()));
    const ChannelState& state = channel_states_[in];
    if (!state.armed) {
      diag->Report(Severity::kError, "RASQL-G001",
                   "stage consumes channel " + Quote(g.channels[in]) +
                       " but no stage publishes into it",
                   node.name);
    } else if (state.published < P) {
      std::ostringstream msg;
      msg << "stage consumes channel " << Quote(g.channels[in])
          << " before its exchange is fully published (" << state.published
          << " of " << P << " slices at submission)";
      diag->Report(Severity::kError, "RASQL-G003", msg.str(), node.name);
    }
  }

  // Output lifecycle: publishing over a still-published exchange corrupts
  // the previous iteration's slices; two in-flight stages publishing the
  // same channel race on its ShuffleWrite slots.
  for (size_t i = begin; i < end; ++i) {
    const StageNode& node = g.nodes[i];
    const int out = node.output_channel;
    if (out < 0) continue;
    RASQL_CHECK(out < static_cast<int>(channel_states_.size()));
    if (channel_states_[out].published > 0) {
      diag->Report(Severity::kError, "RASQL-G002",
                   "stage publishes into channel " + Quote(g.channels[out]) +
                       " whose previous exchange was never cleared; Reset() "
                       "the channel before resubmitting",
                   node.name);
    }
    for (size_t j = i + 1; j < end; ++j) {
      if (g.nodes[j].output_channel == out) {
        diag->Report(Severity::kError, "RASQL-G002",
                     "stages " + Quote(node.name) + " and " +
                         Quote(g.nodes[j].name) +
                         " both publish into channel " +
                         Quote(g.channels[out]) + " while in flight together",
                     node.name);
      }
    }
  }

  if (n > 1) {
    // RASQL-G005: per-task accumulator slots are indexed by partition
    // within one stage; two concurrent stages sharing an accumulator
    // collide on those slots.
    for (size_t i = begin; i < end; ++i) {
      for (size_t j = i + 1; j < end; ++j) {
        const StageNode& a = g.nodes[i];
        const StageNode& b = g.nodes[j];
        if (a.counter >= 0 && a.counter == b.counter) {
          diag->Report(Severity::kError, "RASQL-G005",
                       "concurrent stages " + Quote(a.name) + " and " +
                           Quote(b.name) + " share StageCounter " +
                           Quote(g.counters[a.counter]) +
                           "; per-task slots would collide",
                       a.name);
        }
        if (a.status >= 0 && a.status == b.status) {
          diag->Report(Severity::kError, "RASQL-G005",
                       "concurrent stages " + Quote(a.name) + " and " +
                           Quote(b.name) + " share StageStatus " +
                           Quote(g.statuses[a.status]) +
                           "; per-task slots would collide",
                       a.name);
        }
      }
    }

    // RASQL-G008: resources touched by two stages of the group, at least
    // one writing, need a slice dependency between the stages — otherwise
    // tasks of both may be in flight on the same slots at once. (The
    // legal plain map→reduce delta hand-off is exactly the case where the
    // dependency exists.)
    auto ordered = [&](size_t x, size_t y) {
      for (size_t w : edges[x - begin]) {
        if (w == y - begin) return true;
      }
      for (size_t w : edges[y - begin]) {
        if (w == x - begin) return true;
      }
      return false;
    };
    for (size_t i = begin; i < end; ++i) {
      for (size_t j = i + 1; j < end; ++j) {
        if (ordered(i, j)) continue;
        for (const ClaimDecl& ca : g.nodes[i].claims) {
          for (const ClaimDecl& cb : g.nodes[j].claims) {
            if (ca.resource != cb.resource) continue;
            if (!IsWriteMode(ca.mode) && !IsWriteMode(cb.mode)) continue;
            const bool both = IsWriteMode(ca.mode) && IsWriteMode(cb.mode);
            const std::string& r = g.resources[ca.resource];
            diag->Report(
                Severity::kError, "RASQL-G008",
                both ? "concurrent stages " + Quote(g.nodes[i].name) +
                           " and " + Quote(g.nodes[j].name) +
                           " both write resource " + Quote(r) +
                           " with no slice dependency ordering them"
                     : "concurrent stage " +
                           Quote(IsWriteMode(ca.mode) ? g.nodes[i].name
                                                      : g.nodes[j].name) +
                           " writes resource " + Quote(r) + " while " +
                           Quote(IsWriteMode(ca.mode) ? g.nodes[j].name
                                                      : g.nodes[i].name) +
                           " reads it, with no slice dependency ordering "
                           "them",
                g.nodes[i].name);
          }
        }
      }
    }
  }

  // Advance the simulated lifecycle: after the group completes (it is
  // barriered as a unit from the driver's perspective), every output
  // exchange is armed and fully published.
  for (size_t i = begin; i < end; ++i) {
    const int out = g.nodes[i].output_channel;
    if (out < 0) continue;
    channel_states_[out].armed = true;
    channel_states_[out].published = P;
  }
}

void StageGraphVerifier::VerifyPending(DiagnosticEngine* diag) {
  EnsureChannelStates();
  const auto& nodes = graph_->nodes;
  while (next_node_ < nodes.size()) {
    size_t end = next_node_ + 1;
    if (nodes[next_node_].group >= 0) {
      while (end < nodes.size() &&
             nodes[end].group == nodes[next_node_].group) {
        ++end;
      }
    }
    VerifyGroup(next_node_, end, diag);
    next_node_ = end;
  }
}

void VerifyStageGraph(const StageGraph& graph, DiagnosticEngine* diag) {
  StageGraphVerifier verifier(&graph);
  verifier.VerifyPending(diag);
  if (!diag->HasErrors()) {
    std::ostringstream msg;
    msg << "stage graph verified: " << graph.nodes.size()
        << (graph.nodes.size() == 1 ? " stage, " : " stages, ")
        << graph.channels.size()
        << (graph.channels.size() == 1 ? " channel, " : " channels, ")
        << "contracts hold";
    diag->Report(Severity::kNote, "RASQL-G000", msg.str());
  }
}

}  // namespace rasql::verify
