#ifndef RASQL_VERIFY_VERIFIER_H_
#define RASQL_VERIFY_VERIFIER_H_

#include <vector>

#include "lint/diagnostic.h"
#include "verify/stage_graph.h"

namespace rasql::verify {

/// Static checker of declared stage graphs: walks the StageNodes in
/// submission order, simulates the slice lifecycle of every channel
/// (unarmed → published → cleared-by-reset) and checks the concurrency
/// contracts the runtime relies on, *before any task runs*. Findings go
/// through lint::DiagnosticEngine under the RASQL-G rule family
/// (DESIGN.md §11):
///
///   RASQL-G001  dangling input: stage consumes a channel no stage ever
///               published into
///   RASQL-G002  double-publish: stage publishes into a channel whose
///               previous exchange was never cleared (missing Reset), or
///               two concurrent stages publish the same channel
///   RASQL-G003  consume-before-publish: the input exchange was armed but
///               is not fully published at submission time (cleared by a
///               premature Reset, or a live pair missing its dependency)
///   RASQL-G004  cycle in the map→reduce DAG (a stage consuming its own
///               output, or a cyclic concurrent pair)
///   RASQL-G005  StageCounter/StageStatus aliasing: two concurrent stages
///               share an accumulator, so per-task slots collide
///   RASQL-G006  kind/channel mismatch: declared channels contradict the
///               stage kind (e.g. a kLocal stage with an output channel)
///   RASQL-G007  ownership conflict inside one stage: contradictory claims
///               on one resource, or split-slot claims on an unsplit stage
///   RASQL-G008  unordered concurrent writes: two stages of one pair
///               write-claim the same resource with no slice dependency
///               ordering them (the partition-ownership violation where
///               two in-flight tasks may hit the same slot)
///
/// Two modes share this class. *Offline* (EXPLAIN STAGES, unit tests): the
/// whole graph is built first and Verify() simulates every lifecycle.
/// *Live* (Cluster::RunStage hooks): nodes are appended per submission and
/// VerifyPending() checks just the new ones; the caller overrides the
/// simulated publish counts with the real SliceReadiness observations,
/// which reflect driver-side Reset() calls the simulation cannot see.
class StageGraphVerifier {
 public:
  /// `graph` must outlive the verifier; nodes may be appended between
  /// VerifyPending() calls, registries must only grow.
  explicit StageGraphVerifier(const StageGraph* graph) : graph_(graph) {}

  /// Overrides the simulated published-slice count of `channel` with a
  /// live observation. Takes effect for the next VerifyPending() call.
  void SetLivePublished(int channel, int published);

  /// Verifies every node not yet verified, advancing the simulated
  /// lifecycle state. Reports findings through `diag`.
  void VerifyPending(lint::DiagnosticEngine* diag);

  /// Index of the first unverified node.
  size_t next_node() const { return next_node_; }

 private:
  struct ChannelState {
    /// True once any verified stage declared this channel as its output.
    bool armed = false;
    /// Simulated count of published slices (0 or num_partitions; live
    /// observations may land in between).
    int published = 0;
  };

  void EnsureChannelStates();
  /// Checks one submission group [begin, end) jointly and advances state.
  void VerifyGroup(size_t begin, size_t end, lint::DiagnosticEngine* diag);
  /// Per-node checks that need no cross-node context (kind/channel
  /// coherence, self-cycles, claim consistency).
  void VerifyNodeLocal(const StageNode& node, lint::DiagnosticEngine* diag);

  const StageGraph* graph_;
  size_t next_node_ = 0;
  std::vector<ChannelState> channel_states_;
};

/// One-shot whole-graph verification (offline planners, tests). Emits an
/// all-clear RASQL-G000 note when no errors were found.
void VerifyStageGraph(const StageGraph& graph, lint::DiagnosticEngine* diag);

}  // namespace rasql::verify

#endif  // RASQL_VERIFY_VERIFIER_H_
