#include "verify/stage_graph.h"

#include <sstream>

#include "common/check.h"

namespace rasql::verify {

const char* AccessModeName(AccessMode mode) {
  switch (mode) {
    case AccessMode::kReadShared:
      return "read-shared";
    case AccessMode::kPartitionOwned:
      return "partition-owned";
    case AccessMode::kSplitSlotOwned:
      return "split-slot-owned";
    case AccessMode::kSingleTask:
      return "single-task";
  }
  return "?";
}

bool IsWriteMode(AccessMode mode) { return mode != AccessMode::kReadShared; }

const char* StageKindName(StageKind kind) {
  switch (kind) {
    case StageKind::kLocal:
      return "local";
    case StageKind::kShuffleMap:
      return "map";
    case StageKind::kShuffleReduce:
      return "reduce";
    case StageKind::kCombined:
      return "combined";
  }
  return "?";
}

bool KindConsumesShuffle(StageKind kind) {
  return kind == StageKind::kShuffleReduce || kind == StageKind::kCombined;
}

bool KindProducesShuffle(StageKind kind) {
  return kind == StageKind::kShuffleMap || kind == StageKind::kCombined;
}

int StageGraph::AddChannel(std::string name) {
  channels.push_back(std::move(name));
  return static_cast<int>(channels.size()) - 1;
}

int StageGraph::AddResource(std::string name) {
  resources.push_back(std::move(name));
  return static_cast<int>(resources.size()) - 1;
}

int StageGraph::AddCounter(std::string name) {
  counters.push_back(std::move(name));
  return static_cast<int>(counters.size()) - 1;
}

int StageGraph::AddStatus(std::string name) {
  statuses.push_back(std::move(name));
  return static_cast<int>(statuses.size()) - 1;
}

StageNode& StageGraph::AddStage(std::string name, StageKind kind) {
  StageNode node;
  node.name = std::move(name);
  node.kind = kind;
  nodes.push_back(std::move(node));
  return nodes.back();
}

void StageGraph::Claim(int resource, AccessMode mode) {
  RASQL_CHECK(!nodes.empty());  // Claim() requires a prior AddStage()
  nodes.back().claims.push_back({resource, mode});
}

std::string StageGraph::ToString() const {
  std::ostringstream out;
  out << "stage graph: " << nodes.size() << " stage"
      << (nodes.size() == 1 ? "" : "s") << ", " << channels.size()
      << " channel" << (channels.size() == 1 ? "" : "s") << ", "
      << num_partitions << " partitions\n";
  for (size_t i = 0; i < nodes.size(); ++i) {
    const StageNode& n = nodes[i];
    out << "  [" << i << "] " << n.name << "  (" << StageKindName(n.kind);
    if (n.split) out << ", split";
    out << ")";
    if (n.input_channel >= 0) out << "  in: " << channels[n.input_channel];
    if (n.output_channel >= 0) out << "  out: " << channels[n.output_channel];
    if (n.counter >= 0) out << "  counter: " << counters[n.counter];
    if (n.status >= 0) out << "  status: " << statuses[n.status];
    if (n.group >= 0) out << "  [pair " << n.group << "]";
    if (!n.resets.empty()) {
      out << "  resets:";
      for (int c : n.resets) out << " " << channels[c];
    }
    out << "\n";
    if (!n.claims.empty()) {
      out << "        claims:";
      for (const ClaimDecl& c : n.claims) {
        out << " " << resources[c.resource] << "(" << AccessModeName(c.mode)
            << ")";
      }
      out << "\n";
    }
  }
  if (!note.empty()) out << "  note: " << note << "\n";
  return out.str();
}

}  // namespace rasql::verify
