#include "runtime/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace rasql::runtime {

int ThreadPool::HardwareThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  queues_.reserve(num_threads_);
  for (int i = 0; i < num_threads_; ++i) {
    queues_.push_back(std::make_unique<TaskQueue>());
  }
  workers_.reserve(num_threads_ - 1);
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::FinishTask() {
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last task of the job: wake the submitter. Locking mu_ orders the
    // notify after the submitter's wait registration.
    std::lock_guard<std::mutex> lock(mu_);
    done_cv_.notify_all();
  }
}

bool ThreadPool::RunOneTask(int self) {
  Task task;
  if (queues_[self]->PopBottom(&task)) {
    task();
    FinishTask();
    return true;
  }
  for (int i = 1; i < num_threads_; ++i) {
    const int victim = (self + i) % num_threads_;
    std::vector<Task> stolen;
    if (queues_[victim]->StealHalf(&stolen) > 0) {
      // Run the oldest stolen task now; repatriate the rest to our own
      // deque, where further thieves can find them.
      task = std::move(stolen.front());
      for (size_t j = 1; j < stolen.size(); ++j) {
        queues_[self]->PushBottom(std::move(stolen[j]));
      }
      task();
      FinishTask();
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(int self) {
  uint64_t seen_job = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || job_id_ != seen_job; });
      if (stop_) return;
      seen_job = job_id_;
    }
    // Drain: own deque first, then steal. Tasks never spawn tasks, so once
    // nothing is runnable anywhere this worker's share of the job is done
    // (stragglers still queued elsewhere are drained by their holders).
    while (RunOneTask(self)) {
    }
  }
}

void ThreadPool::ParallelFor(int num_tasks,
                             const std::function<void(int)>& body) {
  if (num_tasks <= 0) return;
  if (num_threads_ == 1 || num_tasks == 1) {
    for (int i = 0; i < num_tasks; ++i) body(i);
    return;
  }
  std::lock_guard<std::mutex> submit(submit_mu_);
  RASQL_CHECK(pending_.load(std::memory_order_relaxed) == 0);
  pending_.store(num_tasks, std::memory_order_release);
  for (int i = 0; i < num_tasks; ++i) {
    queues_[i % num_threads_]->PushBottom([&body, i] { body(i); });
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++job_id_;
  }
  work_cv_.notify_all();
  // The submitter is worker 0: drain, then wait out the stragglers.
  while (RunOneTask(0)) {
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace rasql::runtime
