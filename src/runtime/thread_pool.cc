#include "runtime/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace rasql::runtime {

namespace {
/// Which pool worker the current thread is acting as. Tasks released
/// mid-job (ParallelForGraph) are pushed onto the releasing worker's own
/// deque, where it pops them LIFO-hot or thieves find them.
thread_local int tl_worker = 0;
}  // namespace

int ThreadPool::HardwareThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  queues_.reserve(num_threads_);
  for (int i = 0; i < num_threads_; ++i) {
    queues_.push_back(std::make_unique<TaskQueue>());
  }
  workers_.reserve(num_threads_ - 1);
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::FinishTask() {
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last task of the job: wake the submitter. Locking mu_ orders the
    // notify after the submitter's wait registration.
    std::lock_guard<std::mutex> lock(mu_);
    done_cv_.notify_all();
  }
}

void ThreadPool::NotifyMoreWork() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++signal_;
  }
  work_cv_.notify_all();
  done_cv_.notify_all();
}

bool ThreadPool::RunOneTask(int self) {
  Task task;
  if (queues_[self]->PopBottom(&task)) {
    task();
    FinishTask();
    return true;
  }
  for (int i = 1; i < num_threads_; ++i) {
    const int victim = (self + i) % num_threads_;
    std::vector<Task> stolen;
    if (queues_[victim]->StealHalf(&stolen) > 0) {
      // Run the oldest stolen task now; repatriate the rest to our own
      // deque, where further thieves can find them.
      task = std::move(stolen.front());
      for (size_t j = 1; j < stolen.size(); ++j) {
        queues_[self]->PushBottom(std::move(stolen[j]));
      }
      task();
      FinishTask();
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(int self) {
  tl_worker = self;
  uint64_t seen_signal = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || signal_ != seen_signal; });
      if (stop_) return;
      seen_signal = signal_;
    }
    // Drain: own deque first, then steal. A task that releases dependents
    // bumps the signal, so a worker that goes back to sleep between the
    // release and the next drain attempt is re-woken — no release is ever
    // missed.
    while (RunOneTask(self)) {
    }
  }
}

void ThreadPool::RunJobAsWorkerZero() {
  uint64_t seen;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seen = ++signal_;
  }
  work_cv_.notify_all();
  tl_worker = 0;
  // The submitter is worker 0: drain, park until the job completes or new
  // work is released, drain again.
  while (true) {
    while (RunOneTask(0)) {
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (pending_.load(std::memory_order_acquire) == 0) return;
    done_cv_.wait(lock, [&] {
      return pending_.load(std::memory_order_acquire) == 0 ||
             signal_ != seen;
    });
    if (pending_.load(std::memory_order_acquire) == 0) return;
    seen = signal_;
  }
}

void ThreadPool::ParallelFor(int num_tasks,
                             const std::function<void(int)>& body) {
  if (num_tasks <= 0) return;
  if (num_threads_ == 1 || num_tasks == 1) {
    for (int i = 0; i < num_tasks; ++i) body(i);
    return;
  }
  std::lock_guard<std::mutex> submit(submit_mu_);
  RASQL_CHECK(pending_.load(std::memory_order_relaxed) == 0);
  pending_.store(num_tasks, std::memory_order_release);
  for (int i = 0; i < num_tasks; ++i) {
    queues_[i % num_threads_]->PushBottom([&body, i] { body(i); });
  }
  RunJobAsWorkerZero();
}

void ThreadPool::ParallelForGraph(
    int num_tasks, const std::function<void(int)>& body,
    const std::vector<int>& deps,
    const std::vector<std::vector<int>>& dependents) {
  if (num_tasks <= 0) return;
  RASQL_CHECK(static_cast<int>(deps.size()) == num_tasks);
  RASQL_CHECK(static_cast<int>(dependents.size()) == num_tasks);
  if (num_threads_ == 1) {
    // Topological index order satisfies every dependency inline.
    for (int i = 0; i < num_tasks; ++i) body(i);
    return;
  }
  std::lock_guard<std::mutex> submit(submit_mu_);
  RASQL_CHECK(pending_.load(std::memory_order_relaxed) == 0);
  pending_.store(num_tasks, std::memory_order_release);

  // Outstanding prerequisites per task. Lives on the submitter's stack:
  // every access happens before the job's last FinishTask, which the
  // submitter waits out before returning.
  std::vector<std::atomic<int>> remaining(num_tasks);
  for (int i = 0; i < num_tasks; ++i) {
    remaining[i].store(deps[i], std::memory_order_relaxed);
  }

  // Run the body, then release any dependent whose last prerequisite this
  // was. The acq_rel RMW chain on remaining[d] makes every producer's
  // writes visible to the released task (which the releasing worker pushes
  // onto its own deque under that deque's lock).
  std::function<void(int)> run_task;
  run_task = [&](int i) {
    body(i);
    bool released = false;
    for (int d : dependents[i]) {
      if (remaining[d].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        queues_[tl_worker]->PushBottom([&run_task, d] { run_task(d); });
        released = true;
      }
    }
    if (released) NotifyMoreWork();
  };

  int roots = 0;
  for (int i = 0; i < num_tasks; ++i) {
    if (deps[i] == 0) {
      queues_[roots++ % num_threads_]->PushBottom(
          [&run_task, i] { run_task(i); });
    }
  }
  RASQL_CHECK(roots > 0);
  RunJobAsWorkerZero();
}

}  // namespace rasql::runtime
