#ifndef RASQL_RUNTIME_THREAD_POOL_H_
#define RASQL_RUNTIME_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/task_queue.h"

namespace rasql::runtime {

/// A work-stealing thread pool for stage execution. `num_threads` is the
/// number of threads that execute tasks: the calling thread participates as
/// worker 0, so the pool spawns `num_threads - 1` background workers. With
/// one thread, ParallelFor degenerates to an inline sequential loop — no
/// threads, no locks, exactly the pre-runtime behaviour.
///
/// Scheduling: ParallelFor deals task indices round-robin across the
/// per-worker deques, wakes every worker, and lets the pool self-balance —
/// a worker that drains its own deque steals the oldest half of a victim's
/// (TaskQueue::StealHalf), repatriating the surplus to its own deque where
/// other thieves can find it. Stolen work therefore diffuses instead of
/// ping-ponging one task at a time.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs body(i) for every i in [0, num_tasks), returning after all calls
  /// complete. The calling thread executes tasks too. Concurrent calls from
  /// different threads are serialized; nested calls from inside a task
  /// would self-deadlock and must not be made.
  void ParallelFor(int num_tasks, const std::function<void(int)>& body);

  /// Number of hardware threads, always >= 1.
  static int HardwareThreads();

 private:
  void WorkerLoop(int self);
  /// Pops one task from `self`'s deque or steals from a victim; runs it.
  /// False when no runnable task was found anywhere.
  bool RunOneTask(int self);
  void FinishTask();

  int num_threads_;
  std::vector<std::unique_ptr<TaskQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers wait here between jobs
  std::condition_variable done_cv_;  ///< the submitter waits here
  uint64_t job_id_ = 0;
  bool stop_ = false;
  std::atomic<int> pending_{0};

  std::mutex submit_mu_;  ///< serializes concurrent ParallelFor calls
};

}  // namespace rasql::runtime

#endif  // RASQL_RUNTIME_THREAD_POOL_H_
