#ifndef RASQL_RUNTIME_THREAD_POOL_H_
#define RASQL_RUNTIME_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/task_queue.h"

namespace rasql::runtime {

/// A work-stealing thread pool for stage execution. `num_threads` is the
/// number of threads that execute tasks: the calling thread participates as
/// worker 0, so the pool spawns `num_threads - 1` background workers. With
/// one thread, ParallelFor degenerates to an inline sequential loop — no
/// threads, no locks, exactly the pre-runtime behaviour.
///
/// Scheduling: ParallelFor deals task indices round-robin across the
/// per-worker deques, wakes every worker, and lets the pool self-balance —
/// a worker that drains its own deque steals the oldest half of a victim's
/// (TaskQueue::StealHalf), repatriating the surplus to its own deque where
/// other thieves can find it. Stolen work therefore diffuses instead of
/// ping-ponging one task at a time.
///
/// ParallelForGraph generalizes this to a task DAG: tasks may declare
/// dependencies and are released into the deques incrementally as their
/// prerequisites complete, so downstream tasks overlap with still-running
/// upstream ones (the async-shuffle pipeline, DESIGN.md §8). Workers park
/// on a signal epoch that is bumped both at submission and whenever a
/// completing task releases new work, so a sleeping worker never misses a
/// mid-job release.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs body(i) for every i in [0, num_tasks), returning after all calls
  /// complete. The calling thread executes tasks too. Concurrent calls from
  /// different threads are serialized; nested calls from inside a task
  /// would self-deadlock and must not be made.
  void ParallelFor(int num_tasks, const std::function<void(int)>& body);

  /// Runs body(i) for every i in [0, num_tasks) respecting a dependency
  /// DAG: task i starts only after deps[i] prerequisite tasks finished,
  /// and finishing task i decrements the wait count of every task in
  /// dependents[i] (releasing those that reach zero). Tasks must be
  /// topologically ordered by index — i's prerequisites all have smaller
  /// indices — so the one-thread path can run 0..n-1 inline. At least one
  /// task must have deps == 0. The same nesting/serialization rules as
  /// ParallelFor apply.
  void ParallelForGraph(int num_tasks, const std::function<void(int)>& body,
                        const std::vector<int>& deps,
                        const std::vector<std::vector<int>>& dependents);

  /// Number of hardware threads, always >= 1.
  static int HardwareThreads();

 private:
  void WorkerLoop(int self);
  /// Pops one task from `self`'s deque or steals from a victim; runs it.
  /// False when no runnable task was found anywhere.
  bool RunOneTask(int self);
  void FinishTask();
  /// Bumps the signal epoch and wakes everyone: parked workers re-drain,
  /// and a waiting submitter re-enters its drain loop. Called at submission
  /// and whenever a completing task releases dependent tasks.
  void NotifyMoreWork();
  /// The submitter's half of a job: announce it, participate as worker 0
  /// until the deques are dry, park until either the job completes or a
  /// release signal arrives, repeat.
  void RunJobAsWorkerZero();

  int num_threads_;
  std::vector<std::unique_ptr<TaskQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers wait here between signals
  std::condition_variable done_cv_;  ///< the submitter waits here
  /// Epoch bumped on submission and on every mid-job release of dependent
  /// tasks. A worker whose last observed epoch differs has work to look for.
  uint64_t signal_ = 0;
  bool stop_ = false;
  std::atomic<int> pending_{0};

  std::mutex submit_mu_;  ///< serializes concurrent ParallelFor calls
};

}  // namespace rasql::runtime

#endif  // RASQL_RUNTIME_THREAD_POOL_H_
