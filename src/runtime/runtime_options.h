#ifndef RASQL_RUNTIME_RUNTIME_OPTIONS_H_
#define RASQL_RUNTIME_RUNTIME_OPTIONS_H_

#include <cstddef>

namespace rasql::runtime {

class ThreadPool;

/// Configuration of the real task-execution runtime that sits *under* the
/// simulated cluster: the simulated placement/network model decides what a
/// stage costs on the modeled 15-node testbed, while this runtime decides
/// how many OS threads actually execute the stage's task closures on the
/// local machine. The two are independent by design — see DESIGN.md §7.
struct RuntimeOptions {
  /// Threads executing stage tasks — and, since the local path runs on the
  /// same pool (fixpoint::FixpointOptions::runtime, DESIGN.md §9), the
  /// local fixpoint's per-partition work too. 1 = run every task inline on
  /// the driver thread (the original sequential behaviour); 0 = one thread
  /// per hardware thread.
  int num_threads = 1;

  /// When true (default), shared per-stage accumulators (delta-row counts,
  /// failure statuses) are collected into per-task slots and reduced after
  /// the stage barrier in ascending partition order, so every driver-side
  /// value is bit-identical for any thread count. When false, accumulators
  /// are relaxed atomics updated in task-completion order — same totals,
  /// no post-pass. Query *results* are identical either way: relation
  /// state is always partition-owned and merged in partition order.
  bool deterministic_reduce = true;

  /// Pipeline shuffles: when a map stage and its consuming reduce stage are
  /// submitted together (Cluster::RunStagePair), enqueue the reduce tasks
  /// with per-slice dependencies on the map tasks and release each one as
  /// soon as all of its input slices are published — instead of barriering
  /// the whole map stage first. Simulated metrics are unaffected (the cost
  /// model still runs post-barrier in partition order, DESIGN.md §8); only
  /// wall-clock changes. No effect with one thread.
  bool async_shuffle = false;

  /// Morsel size for splittable pipeline work (DESIGN.md §10): both
  /// fixpoint paths cut each partition's delta into `[begin, end)` row
  /// ranges of at most this many rows and evaluate them as independent
  /// tasks, so one giant partition no longer serializes an iteration.
  /// 0 (default) = whole-partition morsels, the pre-morsel task shape.
  /// Results, FixpointStats and modeled JobMetrics are bit-identical for
  /// every value: per-morsel sinks are merged in morsel order and the cost
  /// model keeps consuming one partition-ordered report per partition.
  size_t morsel_rows = 0;

  /// Vectorized batch execution (DESIGN.md §13): fused pipelines and the
  /// physical executor's aggregate loop process driver chunks in
  /// sub-batches of at most this many rows — filters become selection
  /// vectors over the chunks' typed arrays, hash-join keys are extracted
  /// column-wise, and min/max/sum/count accumulate over typed columns.
  /// 0 (default) = the row-at-a-time interpreter, which is the row-for-row
  /// oracle: results, FixpointStats and modeled JobMetrics are
  /// bit-identical for every value (shell `--batch-rows=N`).
  size_t batch_rows = 0;

  /// Verify declared stage graphs at submission time (DESIGN.md §11): the
  /// Cluster rejects a RunStage/RunStagePair whose StageSpec violates the
  /// slice-lifecycle or ownership contracts, before any task runs, and the
  /// local fixpoint checks its phase plan up front. Opt-in here (shell
  /// `--verify-stages`); also forced on by the RASQL_VERIFY_STAGES
  /// environment variable and in debug (!NDEBUG) builds — see
  /// VerifyStagesEnabled().
  bool verify_stages = false;

  /// Optional externally-owned pool that stage execution and the local
  /// fixpoint run on instead of constructing per-query pools. The query
  /// server sets this so every session's fixpoint stages share one compute
  /// pool (its worker slots are partitioned away from the network
  /// handlers' slots — DESIGN.md §12). The pool must outlive every
  /// execution configured with it; when set, the pool's own thread count
  /// wins over `num_threads`. Results are unaffected either way — they
  /// are bit-identical at any thread count (DESIGN.md §7/§9).
  ThreadPool* shared_pool = nullptr;

  /// `num_threads` with the auto-detect value resolved; always >= 1.
  int ResolvedThreads() const;

  /// Whether stage-graph verification is active: `verify_stages`, or the
  /// RASQL_VERIFY_STAGES env var (any value but "0"), or a debug build.
  bool VerifyStagesEnabled() const;
};

}  // namespace rasql::runtime

#endif  // RASQL_RUNTIME_RUNTIME_OPTIONS_H_
