#include "runtime/stage_executor.h"

namespace rasql::runtime {

int RuntimeOptions::ResolvedThreads() const {
  if (num_threads <= 0) return ThreadPool::HardwareThreads();
  return num_threads;
}

StageExecutor::StageExecutor(RuntimeOptions options)
    : options_(options), num_threads_(options.ResolvedThreads()) {
  if (num_threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(num_threads_);
  }
}

}  // namespace rasql::runtime
