#include "runtime/stage_executor.h"

#include <cstdlib>

namespace rasql::runtime {

int RuntimeOptions::ResolvedThreads() const {
  if (num_threads <= 0) return ThreadPool::HardwareThreads();
  return num_threads;
}

bool RuntimeOptions::VerifyStagesEnabled() const {
  if (verify_stages) return true;
  if (const char* env = std::getenv("RASQL_VERIFY_STAGES");
      env != nullptr && *env != '\0' && !(env[0] == '0' && env[1] == '\0')) {
    return true;
  }
#ifndef NDEBUG
  return true;
#else
  return false;
#endif
}

StageExecutor::StageExecutor(RuntimeOptions options)
    : options_(options), num_threads_(options.ResolvedThreads()) {
  if (options.shared_pool != nullptr) {
    // Externally-owned pool (the query server's shared compute pool): its
    // width wins, and this executor must not destroy it.
    pool_ = options.shared_pool;
    num_threads_ = pool_->num_threads();
  } else if (num_threads_ > 1) {
    owned_pool_ = std::make_unique<ThreadPool>(num_threads_);
    pool_ = owned_pool_.get();
  }
}

}  // namespace rasql::runtime
