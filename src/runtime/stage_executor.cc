#include "runtime/stage_executor.h"

#include <cstdlib>

namespace rasql::runtime {

int RuntimeOptions::ResolvedThreads() const {
  if (num_threads <= 0) return ThreadPool::HardwareThreads();
  return num_threads;
}

bool RuntimeOptions::VerifyStagesEnabled() const {
  if (verify_stages) return true;
  if (const char* env = std::getenv("RASQL_VERIFY_STAGES");
      env != nullptr && *env != '\0' && !(env[0] == '0' && env[1] == '\0')) {
    return true;
  }
#ifndef NDEBUG
  return true;
#else
  return false;
#endif
}

StageExecutor::StageExecutor(RuntimeOptions options)
    : options_(options), num_threads_(options.ResolvedThreads()) {
  if (num_threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(num_threads_);
  }
}

}  // namespace rasql::runtime
