#include "runtime/task_queue.h"

namespace rasql::runtime {

void TaskQueue::PushBottom(Task task) {
  std::lock_guard<std::mutex> lock(mu_);
  tasks_.push_back(std::move(task));
}

bool TaskQueue::PopBottom(Task* task) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tasks_.empty()) return false;
  *task = std::move(tasks_.back());
  tasks_.pop_back();
  return true;
}

size_t TaskQueue::StealHalf(std::vector<Task>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tasks_.empty()) return 0;
  const size_t take = (tasks_.size() + 1) / 2;
  for (size_t i = 0; i < take; ++i) {
    out->push_back(std::move(tasks_.front()));
    tasks_.pop_front();
  }
  return take;
}

size_t TaskQueue::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_.size();
}

}  // namespace rasql::runtime
