#ifndef RASQL_RUNTIME_STAGE_ACCUMULATORS_H_
#define RASQL_RUNTIME_STAGE_ACCUMULATORS_H_

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/status.h"

namespace rasql::runtime {

// ---- Stage-shared accumulators. Task closures may run concurrently on
// the work-stealing runtime, so anything shared across partitions goes
// through one of these instead of a bare captured variable. ----

/// Counter updated from concurrent tasks. With deterministic_reduce (the
/// default) each task owns a slot and the driver sums the slots after the
/// stage barrier in ascending partition order; otherwise a relaxed atomic
/// accumulates in task-completion order. The total is identical either way
/// — the knob trades an O(P) post-pass for lock-free accumulation.
class StageCounter {
 public:
  StageCounter(int num_tasks, bool deterministic)
      : slots_(deterministic ? num_tasks : 0, 0) {}

  void Add(int p, size_t n) {
    if (slots_.empty()) {
      atomic_.fetch_add(n, std::memory_order_relaxed);
    } else {
      slots_[p] += n;
    }
  }

  /// Post-barrier total; call only after the stage completes.
  size_t Total() const {
    size_t total = atomic_.load(std::memory_order_relaxed);
    for (size_t s : slots_) total += s;
    return total;
  }

 private:
  std::vector<size_t> slots_;
  std::atomic<size_t> atomic_{0};
};

/// Per-task failure slots plus a shared abort flag. Each task records its
/// own failure; long-running tasks poll `aborted()` to stop early once any
/// sibling failed. The driver reports the lowest-partition failure, so the
/// surfaced error is deterministic regardless of completion order.
class StageStatus {
 public:
  explicit StageStatus(int num_tasks) : statuses_(num_tasks) {}

  void Fail(int p, common::Status s) {
    statuses_[p] = std::move(s);
    aborted_.store(true, std::memory_order_release);
  }
  bool aborted() const {
    return aborted_.load(std::memory_order_acquire);
  }
  /// Post-barrier: the first (lowest-partition) failure, or OK.
  common::Status First() const {
    for (const common::Status& s : statuses_) {
      if (!s.ok()) return s;
    }
    return common::Status::OK();
  }

 private:
  std::vector<common::Status> statuses_;
  std::atomic<bool> aborted_{false};
};

}  // namespace rasql::runtime

#endif  // RASQL_RUNTIME_STAGE_ACCUMULATORS_H_
