#ifndef RASQL_RUNTIME_STAGE_EXECUTOR_H_
#define RASQL_RUNTIME_STAGE_EXECUTOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/timer.h"
#include "runtime/runtime_options.h"
#include "runtime/thread_pool.h"

namespace rasql::runtime {

/// Executes the task closures of one simulated-cluster stage for real —
/// concurrently on the work-stealing pool when more than one thread is
/// configured — while keeping everything the cost model consumes in
/// deterministic partition order. Each task is individually wall-clock
/// timed; `results[p]` and `task_seconds[p]` land in slot p regardless of
/// which thread ran the task or when it finished, so the simulated
/// placement/network accounting downstream is thread-count-independent.
class StageExecutor {
 public:
  explicit StageExecutor(RuntimeOptions options);

  const RuntimeOptions& options() const { return options_; }
  /// Actual number of task-executing threads (>= 1, auto resolved).
  int num_threads() const { return num_threads_; }

  /// Runs task(p) for every p in [0, num_tasks), filling `results` and
  /// `task_seconds` in partition order. R must be default-constructible
  /// and move-assignable. Task closures may be invoked concurrently: they
  /// must only touch partition-owned state (see DESIGN.md §7).
  template <typename R>
  void Map(int num_tasks, const std::function<R(int)>& task,
           std::vector<R>* results, std::vector<double>* task_seconds) {
    results->clear();
    results->resize(num_tasks);
    task_seconds->assign(num_tasks, 0.0);
    auto timed = [&](int p) {
      common::Timer timer;
      (*results)[p] = task(p);
      (*task_seconds)[p] = timer.ElapsedSeconds();
    };
    if (pool_ == nullptr) {
      for (int p = 0; p < num_tasks; ++p) timed(p);
      return;
    }
    pool_->ParallelFor(num_tasks, timed);
  }

  /// Like Map, but the tasks form a dependency DAG (see
  /// ThreadPool::ParallelForGraph): task i starts once its deps[i]
  /// prerequisites finished and releases the tasks listed in dependents[i].
  /// Indices must be topologically ordered. Used by the async-shuffle
  /// pipeline to run a reduce task as soon as its input slices are
  /// published (DESIGN.md §8). Results and timings still land in slot
  /// order, so the cost model downstream is unaffected.
  template <typename R>
  void MapGraph(int num_tasks, const std::function<R(int)>& task,
                const std::vector<int>& deps,
                const std::vector<std::vector<int>>& dependents,
                std::vector<R>* results, std::vector<double>* task_seconds) {
    results->clear();
    results->resize(num_tasks);
    task_seconds->assign(num_tasks, 0.0);
    auto timed = [&](int i) {
      common::Timer timer;
      (*results)[i] = task(i);
      (*task_seconds)[i] = timer.ElapsedSeconds();
    };
    if (pool_ == nullptr) {
      for (int i = 0; i < num_tasks; ++i) timed(i);
      return;
    }
    pool_->ParallelForGraph(num_tasks, timed, deps, dependents);
  }

 private:
  RuntimeOptions options_;
  int num_threads_;
  /// Null when num_threads == 1 and no shared pool is configured: the
  /// sequential path allocates nothing and takes no locks, matching the
  /// pre-runtime executor exactly. Points at `owned_pool_` or at the
  /// externally-owned RuntimeOptions::shared_pool.
  ThreadPool* pool_ = nullptr;
  std::unique_ptr<ThreadPool> owned_pool_;
};

}  // namespace rasql::runtime

#endif  // RASQL_RUNTIME_STAGE_EXECUTOR_H_
