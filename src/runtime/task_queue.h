#ifndef RASQL_RUNTIME_TASK_QUEUE_H_
#define RASQL_RUNTIME_TASK_QUEUE_H_

#include <deque>
#include <functional>
#include <mutex>
#include <vector>

namespace rasql::runtime {

/// A unit of work owned by the thread pool.
using Task = std::function<void()>;

/// One worker's task deque. The owner pushes and pops at the bottom (LIFO:
/// the freshest task first, which keeps its working set warm); thieves take
/// from the top (the oldest tasks) and grab half the queue per steal, so a
/// loaded victim is drained in O(log n) steals instead of n one-task trips.
///
/// Mutex-based rather than lock-free: stage tasks are coarse (one
/// relational operator tree over a whole partition), so queue traffic is a
/// few dozen operations per stage and contention is negligible. A Chase-Lev
/// deque would buy nothing here and cost a memory-model audit.
class TaskQueue {
 public:
  TaskQueue() = default;
  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;

  /// Owner-side push.
  void PushBottom(Task task);

  /// Owner-side pop, LIFO. Returns false when the queue is empty.
  bool PopBottom(Task* task);

  /// Thief-side: moves the oldest half of the queue (rounded up, at least
  /// one task when non-empty) into `*out`. Returns the number stolen.
  size_t StealHalf(std::vector<Task>* out);

  size_t Size() const;
  bool Empty() const { return Size() == 0; }

 private:
  mutable std::mutex mu_;
  std::deque<Task> tasks_;
};

}  // namespace rasql::runtime

#endif  // RASQL_RUNTIME_TASK_QUEUE_H_
