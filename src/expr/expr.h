#ifndef RASQL_EXPR_EXPR_H_
#define RASQL_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/row.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace rasql::expr {

/// Binary operators supported in RaSQL scalar expressions.
enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

/// "+", "<=", "AND", ...
const char* BinaryOpName(BinaryOp op);

/// Aggregate functions usable both in normal GROUP BY queries and — the
/// paper's contribution — inside recursive CTE heads.
enum class AggregateFunction {
  kNone = 0,
  kMin,
  kMax,
  kSum,
  kCount,
};

/// "min", "max", "sum", "count".
const char* AggregateFunctionName(AggregateFunction fn);

/// A bound (column indices resolved, output type known) scalar expression.
/// Evaluation is the classic interpreted tree walk; see CompiledExpr for the
/// whole-stage-codegen analogue.
class Expr {
 public:
  enum class Kind {
    kColumnRef,
    kLiteral,
    kBinary,
    kNot,
    kNegate,
  };

  virtual ~Expr() = default;

  Kind kind() const { return kind_; }
  storage::ValueType output_type() const { return output_type_; }

  /// Evaluates against one input row.
  virtual storage::Value Eval(const storage::Row& row) const = 0;

  /// Expression rendering for EXPLAIN output.
  virtual std::string ToString() const = 0;

  /// Deep copy (plans are rewritten non-destructively by optimizer rules).
  virtual std::unique_ptr<Expr> Clone() const = 0;

 protected:
  Expr(Kind kind, storage::ValueType output_type)
      : kind_(kind), output_type_(output_type) {}

 private:
  Kind kind_;
  storage::ValueType output_type_;
};

using ExprPtr = std::unique_ptr<Expr>;

/// Reference to an input column by position.
class ColumnRefExpr final : public Expr {
 public:
  ColumnRefExpr(int index, storage::ValueType type, std::string name)
      : Expr(Kind::kColumnRef, type), index_(index), name_(std::move(name)) {}

  int index() const { return index_; }
  const std::string& name() const { return name_; }

  storage::Value Eval(const storage::Row& row) const override {
    return row[index_];
  }
  std::string ToString() const override;
  ExprPtr Clone() const override {
    return std::make_unique<ColumnRefExpr>(index_, output_type(), name_);
  }

 private:
  int index_;
  std::string name_;
};

/// A constant.
class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(storage::Value value)
      : Expr(Kind::kLiteral, value.type()), value_(std::move(value)) {}

  const storage::Value& value() const { return value_; }

  storage::Value Eval(const storage::Row& row) const override {
    return value_;
  }
  std::string ToString() const override { return value_.ToString(); }
  ExprPtr Clone() const override {
    return std::make_unique<LiteralExpr>(value_);
  }

 private:
  storage::Value value_;
};

/// lhs OP rhs. Comparison/boolean results are int64 0/1.
class BinaryExpr final : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr lhs, ExprPtr rhs,
             storage::ValueType output_type)
      : Expr(Kind::kBinary, output_type),
        op_(op),
        lhs_(std::move(lhs)),
        rhs_(std::move(rhs)) {}

  BinaryOp op() const { return op_; }
  const Expr& lhs() const { return *lhs_; }
  const Expr& rhs() const { return *rhs_; }

  storage::Value Eval(const storage::Row& row) const override;
  std::string ToString() const override;
  ExprPtr Clone() const override {
    return std::make_unique<BinaryExpr>(op_, lhs_->Clone(), rhs_->Clone(),
                                        output_type());
  }

 private:
  BinaryOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

/// NOT e (boolean) — int64 0/1.
class NotExpr final : public Expr {
 public:
  explicit NotExpr(ExprPtr input)
      : Expr(Kind::kNot, storage::ValueType::kInt64),
        input_(std::move(input)) {}

  const Expr& input() const { return *input_; }

  storage::Value Eval(const storage::Row& row) const override;
  std::string ToString() const override {
    return "NOT (" + input_->ToString() + ")";
  }
  ExprPtr Clone() const override {
    return std::make_unique<NotExpr>(input_->Clone());
  }

 private:
  ExprPtr input_;
};

/// -e (numeric).
class NegateExpr final : public Expr {
 public:
  explicit NegateExpr(ExprPtr input)
      : Expr(Kind::kNegate, input->output_type()), input_(std::move(input)) {}

  const Expr& input() const { return *input_; }

  storage::Value Eval(const storage::Row& row) const override;
  std::string ToString() const override {
    return "-(" + input_->ToString() + ")";
  }
  ExprPtr Clone() const override {
    return std::make_unique<NegateExpr>(input_->Clone());
  }

 private:
  ExprPtr input_;
};

/// True when the value is a non-zero/non-null truthy predicate result.
inline bool IsTruthy(const storage::Value& v) {
  switch (v.type()) {
    case storage::ValueType::kInt64:
      return v.AsInt() != 0;
    case storage::ValueType::kDouble:
      return v.AsDouble() != 0.0;
    default:
      return false;
  }
}

/// Convenience constructors used by the analyzer, tests and benches.
ExprPtr MakeColumnRef(int index, storage::ValueType type,
                      std::string name = "");
ExprPtr MakeLiteral(storage::Value value);
ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);

/// Result type of `lhs op rhs` per SQL numeric-promotion rules; kNull when
/// the operand types are incompatible with the operator.
storage::ValueType BinaryResultType(BinaryOp op, storage::ValueType lhs,
                                    storage::ValueType rhs);

}  // namespace rasql::expr

#endif  // RASQL_EXPR_EXPR_H_
