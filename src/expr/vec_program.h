#ifndef RASQL_EXPR_VEC_PROGRAM_H_
#define RASQL_EXPR_VEC_PROGRAM_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "storage/column_chunk.h"
#include "storage/value.h"

namespace rasql::expr {

/// Which row-at-a-time engine a VecProgram must agree with bit for bit.
/// Batch mode never changes results — it only changes the engine — so every
/// kernel mirrors whichever scalar evaluator the row path would have used
/// under the same ExecContext (DESIGN.md §15).
enum class VecSemantics : uint8_t {
  /// Mirrors CompiledExpr::EvalNumeric: every operand lives in double,
  /// null/string cells load as 0.0, AND/OR are eager, comparisons compare
  /// doubles. Selected when the row path would run the compiled program
  /// (use_codegen and the expression is CompiledExpr-compilable).
  kCompiledMirror,
  /// Mirrors the interpreted Expr::Eval tree: exact int64 arithmetic and
  /// comparisons, SQL null propagation, dictionary-aware string equality.
  /// Selected when the row path would interpret (codegen off, or the
  /// expression uses strings/nulls CompiledExpr rejects).
  kInterpreterMirror,
};

/// One evaluated expression over a chunk batch: a typed output column plus
/// a null mask, parallel to the selection vector it was evaluated under.
struct VecBatch {
  storage::ValueType tag = storage::ValueType::kNull;
  std::vector<int64_t> i64;
  std::vector<double> f64;
  std::vector<uint8_t> nulls;  ///< 1 = NULL; empty when none
  bool any_null = false;
  size_t size = 0;

  bool IsNull(size_t i) const { return any_null && nulls[i] != 0; }
  storage::Value ValueAt(size_t i) const {
    if (tag == storage::ValueType::kNull || IsNull(i)) {
      return storage::Value::Null();
    }
    return tag == storage::ValueType::kInt64 ? storage::Value::Int(i64[i])
                                             : storage::Value::Double(f64[i]);
  }
};

/// The vectorized compilation layer: the same postfix programs CompiledExpr
/// emits, executed column-at-a-time over ColumnChunk batches through a
/// selection vector (paper Sec. 7.3's whole-stage codegen, turned sideways).
/// Operand slots are dense gathered arrays, so the per-instruction loops are
/// tight contiguous sweeps (gcc vector extensions on the clean double
/// kernels); a chunk whose layout a kernel cannot mirror exactly (boxed
/// variant columns, dynamic tag drift from the static types) makes execution
/// return false and the caller falls back to the interpreted tree for that
/// chunk — same rows, different engine.
class VecProgram {
 public:
  /// Compiles `expr` for the given semantics; nullopt when the expression
  /// shape is outside what the kernels can mirror (the caller then keeps
  /// the row evaluator for every chunk).
  static std::optional<VecProgram> Compile(const Expr& expr,
                                           VecSemantics semantics);

  /// Picks the semantics the row path would use under `use_codegen` and
  /// compiles for it: compiled-mirror when codegen is on and CompiledExpr
  /// accepts the expression, interpreter-mirror otherwise.
  static std::optional<VecProgram> CompileForFilter(const Expr& expr,
                                                    bool use_codegen);

  VecSemantics semantics() const { return semantics_; }
  storage::ValueType output_type() const { return output_type_; }
  size_t program_size() const { return program_.size(); }

  /// One operand slot of the vector stack machine: a dense column of
  /// `size` values (gathered through the selection vector at load time).
  struct Slot {
    storage::ValueType tag = storage::ValueType::kNull;
    std::vector<int64_t> i64;
    std::vector<double> f64;
    std::vector<int32_t> codes;  ///< dictionary codes (string columns)
    const std::vector<std::string>* dict = nullptr;
    const std::string* literal = nullptr;  ///< string literal operand
    int src_col = -1;  ///< chunk column this slot was loaded from, or -1
    std::vector<uint8_t> nulls;  ///< 1 = NULL; valid when any_null
    bool any_null = false;
  };

  /// Reusable per-thread working state (slot arrays keep their capacity
  /// across chunks). Stack-allocated by callers, like ProbeScratch.
  struct Scratch {
    std::vector<Slot> stack;
    Slot tmp;  ///< binary-op result slot, swapped into the stack
  };

  /// Evaluates the program as a filter over `chunk` rows `(*sel)[...]`,
  /// compacting `*sel` in place to the surviving rows. Returns false —
  /// leaving `*sel` untouched — when this chunk needs the row fallback.
  bool FilterChunk(const storage::ColumnChunk& chunk,
                   std::vector<uint32_t>* sel, Scratch* scratch) const;

  /// Evaluates the program over `chunk` rows `sel[0..n)` into `*out`
  /// (typed column + null mask, parallel to `sel`). Returns false when
  /// this chunk needs the row fallback; `*out` is then unspecified.
  bool EvalChunk(const storage::ColumnChunk& chunk, const uint32_t* sel,
                 size_t n, Scratch* scratch, VecBatch* out) const;

 private:
  /// Superset of CompiledExpr::OpCode: the same postfix shape, plus typed
  /// interpreter-mirror execution driven by per-instruction static types.
  enum class OpCode : uint8_t {
    kLoadColumn,
    kLoadConst,
    kAdd,
    kSub,
    kMul,
    kDiv,
    kEq,
    kNe,
    kLt,
    kLe,
    kGt,
    kGe,
    kAnd,
    kOr,
    kNot,
    kNeg,
  };

  struct Instruction {
    OpCode op;
    int column = 0;              ///< kLoadColumn
    storage::Value constant;     ///< kLoadConst
    /// Static result type of the node (arithmetic picks int64 vs double
    /// lanes from this, exactly like EvalArithmetic's `out` parameter).
    storage::ValueType node_type = storage::ValueType::kDouble;
  };

  VecProgram() = default;

  bool Emit(const Expr& expr);

  /// Runs the program; on success the root slot is scratch->stack[0].
  bool Execute(const storage::ColumnChunk& chunk, const uint32_t* sel,
               size_t n, Scratch* scratch) const;

  void LoadColumnCompiled(const storage::ColumnChunk& chunk,
                          const uint32_t* sel, size_t n, int col,
                          Slot* out) const;
  bool LoadColumnInterp(const storage::ColumnChunk& chunk,
                        const uint32_t* sel, size_t n, int col,
                        Slot* out) const;

  std::vector<Instruction> program_;
  VecSemantics semantics_ = VecSemantics::kCompiledMirror;
  storage::ValueType output_type_ = storage::ValueType::kDouble;
  int max_stack_ = 0;
};

}  // namespace rasql::expr

#endif  // RASQL_EXPR_VEC_PROGRAM_H_
