#include "expr/expr.h"

#include "common/check.h"

namespace rasql::expr {

using storage::Value;
using storage::ValueType;

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

const char* AggregateFunctionName(AggregateFunction fn) {
  switch (fn) {
    case AggregateFunction::kNone:
      return "none";
    case AggregateFunction::kMin:
      return "min";
    case AggregateFunction::kMax:
      return "max";
    case AggregateFunction::kSum:
      return "sum";
    case AggregateFunction::kCount:
      return "count";
  }
  return "?";
}

std::string ColumnRefExpr::ToString() const {
  if (!name_.empty()) return name_ + "#" + std::to_string(index_);
  return "col#" + std::to_string(index_);
}

namespace {

Value EvalArithmetic(BinaryOp op, const Value& a, const Value& b,
                     ValueType out) {
  if (out == ValueType::kInt64) {
    const int64_t x = a.AsInt();
    const int64_t y = b.AsInt();
    switch (op) {
      case BinaryOp::kAdd:
        return Value::Int(x + y);
      case BinaryOp::kSub:
        return Value::Int(x - y);
      case BinaryOp::kMul:
        return Value::Int(x * y);
      case BinaryOp::kDiv:
        return y == 0 ? Value::Null() : Value::Int(x / y);
      default:
        break;
    }
  }
  const double x = a.AsNumeric();
  const double y = b.AsNumeric();
  switch (op) {
    case BinaryOp::kAdd:
      return Value::Double(x + y);
    case BinaryOp::kSub:
      return Value::Double(x - y);
    case BinaryOp::kMul:
      return Value::Double(x * y);
    case BinaryOp::kDiv:
      return Value::Double(x / y);
    default:
      break;
  }
  RASQL_CHECK(false);
}

}  // namespace

Value BinaryExpr::Eval(const storage::Row& row) const {
  // Short-circuit boolean operators.
  if (op_ == BinaryOp::kAnd) {
    if (!IsTruthy(lhs_->Eval(row))) return Value::Int(0);
    return Value::Int(IsTruthy(rhs_->Eval(row)) ? 1 : 0);
  }
  if (op_ == BinaryOp::kOr) {
    if (IsTruthy(lhs_->Eval(row))) return Value::Int(1);
    return Value::Int(IsTruthy(rhs_->Eval(row)) ? 1 : 0);
  }

  const Value a = lhs_->Eval(row);
  const Value b = rhs_->Eval(row);
  if (a.is_null() || b.is_null()) return Value::Null();

  switch (op_) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
      return EvalArithmetic(op_, a, b, output_type());
    case BinaryOp::kEq:
      return Value::Int(a.Compare(b) == 0 ? 1 : 0);
    case BinaryOp::kNe:
      return Value::Int(a.Compare(b) != 0 ? 1 : 0);
    case BinaryOp::kLt:
      return Value::Int(a.Compare(b) < 0 ? 1 : 0);
    case BinaryOp::kLe:
      return Value::Int(a.Compare(b) <= 0 ? 1 : 0);
    case BinaryOp::kGt:
      return Value::Int(a.Compare(b) > 0 ? 1 : 0);
    case BinaryOp::kGe:
      return Value::Int(a.Compare(b) >= 0 ? 1 : 0);
    default:
      RASQL_CHECK(false);
  }
}

std::string BinaryExpr::ToString() const {
  return "(" + lhs_->ToString() + " " + BinaryOpName(op_) + " " +
         rhs_->ToString() + ")";
}

Value NotExpr::Eval(const storage::Row& row) const {
  return Value::Int(IsTruthy(input_->Eval(row)) ? 0 : 1);
}

Value NegateExpr::Eval(const storage::Row& row) const {
  const Value v = input_->Eval(row);
  if (v.is_null()) return Value::Null();
  if (v.type() == ValueType::kInt64) return Value::Int(-v.AsInt());
  return Value::Double(-v.AsNumeric());
}

ExprPtr MakeColumnRef(int index, ValueType type, std::string name) {
  return std::make_unique<ColumnRefExpr>(index, type, std::move(name));
}

ExprPtr MakeLiteral(Value value) {
  return std::make_unique<LiteralExpr>(std::move(value));
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  const ValueType out =
      BinaryResultType(op, lhs->output_type(), rhs->output_type());
  return std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs), out);
}

ValueType BinaryResultType(BinaryOp op, ValueType lhs, ValueType rhs) {
  const bool lhs_num = lhs == ValueType::kInt64 || lhs == ValueType::kDouble;
  const bool rhs_num = rhs == ValueType::kInt64 || rhs == ValueType::kDouble;
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
      if (!lhs_num || !rhs_num) return ValueType::kNull;
      return (lhs == ValueType::kDouble || rhs == ValueType::kDouble)
                 ? ValueType::kDouble
                 : ValueType::kInt64;
    case BinaryOp::kDiv:
      if (!lhs_num || !rhs_num) return ValueType::kNull;
      return (lhs == ValueType::kDouble || rhs == ValueType::kDouble)
                 ? ValueType::kDouble
                 : ValueType::kInt64;
    case BinaryOp::kEq:
    case BinaryOp::kNe:
      // Equality allowed between same-kind values (both numeric or both
      // strings).
      if ((lhs_num && rhs_num) ||
          (lhs == ValueType::kString && rhs == ValueType::kString)) {
        return ValueType::kInt64;
      }
      return ValueType::kNull;
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      if ((lhs_num && rhs_num) ||
          (lhs == ValueType::kString && rhs == ValueType::kString)) {
        return ValueType::kInt64;
      }
      return ValueType::kNull;
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
      return (lhs_num && rhs_num) ? ValueType::kInt64 : ValueType::kNull;
  }
  return ValueType::kNull;
}

}  // namespace rasql::expr
