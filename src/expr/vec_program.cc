#include "expr/vec_program.h"

#include <utility>

#include "common/check.h"

namespace rasql::expr {

using storage::ColumnChunk;
using storage::Value;
using storage::ValueType;

std::optional<VecProgram> VecProgram::Compile(const Expr& expr,
                                              VecSemantics semantics) {
  VecProgram program;
  program.semantics_ = semantics;
  if (!program.Emit(expr)) return std::nullopt;
  program.output_type_ = expr.output_type();
  // Postfix stack depth bound, exactly like CompiledExpr::Compile.
  int depth = 0;
  int max_depth = 0;
  for (const Instruction& in : program.program_) {
    switch (in.op) {
      case OpCode::kLoadColumn:
      case OpCode::kLoadConst:
        ++depth;
        break;
      case OpCode::kNot:
      case OpCode::kNeg:
        break;  // pop 1, push 1
      default:
        --depth;  // pop 2, push 1
        break;
    }
    if (depth > max_depth) max_depth = depth;
  }
  program.max_stack_ = max_depth;
  return program;
}

std::optional<VecProgram> VecProgram::CompileForFilter(const Expr& expr,
                                                       bool use_codegen) {
  // Mirror PredicateEvaluator's engine choice: with codegen on, the row
  // path runs the compiled double program whenever CompiledExpr accepts the
  // expression (the compiled-mirror acceptance below is identical), and
  // interprets otherwise; with codegen off it always interprets.
  if (use_codegen) {
    std::optional<VecProgram> compiled =
        Compile(expr, VecSemantics::kCompiledMirror);
    if (compiled) return compiled;
  }
  return Compile(expr, VecSemantics::kInterpreterMirror);
}

bool VecProgram::Emit(const Expr& expr) {
  const bool compiled = semantics_ == VecSemantics::kCompiledMirror;
  switch (expr.kind()) {
    case Expr::Kind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(expr);
      // Compiled-mirror acceptance must match CompiledExpr::Emit exactly so
      // the engine choice (CompileForFilter) is the row path's.
      if (compiled && ref.output_type() != ValueType::kInt64 &&
          ref.output_type() != ValueType::kDouble) {
        return false;
      }
      Instruction in;
      in.op = OpCode::kLoadColumn;
      in.column = ref.index();
      in.node_type = ref.output_type();
      program_.push_back(std::move(in));
      return true;
    }
    case Expr::Kind::kLiteral: {
      const auto& lit = static_cast<const LiteralExpr&>(expr);
      if (compiled && lit.value().type() != ValueType::kInt64 &&
          lit.value().type() != ValueType::kDouble) {
        return false;
      }
      Instruction in;
      in.op = OpCode::kLoadConst;
      in.constant = lit.value();
      in.node_type = lit.value().type();
      program_.push_back(std::move(in));
      return true;
    }
    case Expr::Kind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(expr);
      if (!Emit(bin.lhs()) || !Emit(bin.rhs())) return false;
      OpCode op;
      switch (bin.op()) {
        case BinaryOp::kAdd:
          op = OpCode::kAdd;
          break;
        case BinaryOp::kSub:
          op = OpCode::kSub;
          break;
        case BinaryOp::kMul:
          op = OpCode::kMul;
          break;
        case BinaryOp::kDiv:
          op = OpCode::kDiv;
          break;
        case BinaryOp::kEq:
          op = OpCode::kEq;
          break;
        case BinaryOp::kNe:
          op = OpCode::kNe;
          break;
        case BinaryOp::kLt:
          op = OpCode::kLt;
          break;
        case BinaryOp::kLe:
          op = OpCode::kLe;
          break;
        case BinaryOp::kGt:
          op = OpCode::kGt;
          break;
        case BinaryOp::kGe:
          op = OpCode::kGe;
          break;
        case BinaryOp::kAnd:
          op = OpCode::kAnd;
          break;
        case BinaryOp::kOr:
          op = OpCode::kOr;
          break;
        default:
          return false;
      }
      // Interpreter arithmetic dispatches int64-vs-double lanes on the
      // node's static type; a non-numeric static type means the analyzer
      // never produced this shape — leave it to the row path.
      if (!compiled &&
          (op == OpCode::kAdd || op == OpCode::kSub || op == OpCode::kMul ||
           op == OpCode::kDiv) &&
          expr.output_type() != ValueType::kInt64 &&
          expr.output_type() != ValueType::kDouble) {
        return false;
      }
      Instruction in;
      in.op = op;
      in.node_type = expr.output_type();
      program_.push_back(std::move(in));
      return true;
    }
    case Expr::Kind::kNot: {
      const auto& un = static_cast<const NotExpr&>(expr);
      if (!Emit(un.input())) return false;
      Instruction in;
      in.op = OpCode::kNot;
      in.node_type = ValueType::kInt64;
      program_.push_back(std::move(in));
      return true;
    }
    case Expr::Kind::kNegate: {
      const auto& un = static_cast<const NegateExpr&>(expr);
      if (!Emit(un.input())) return false;
      if (!compiled && expr.output_type() == ValueType::kString) return false;
      Instruction in;
      in.op = OpCode::kNeg;
      in.node_type = expr.output_type();
      program_.push_back(std::move(in));
      return true;
    }
  }
  return false;
}

namespace {

using Slot = VecProgram::Slot;

// ---------------------------------------------------------------------------
// SIMD primitives (gcc vector extensions). The dense kernels sweep 4 doubles
// per step; comparisons produce lane masks converted to 0.0/1.0 — the same
// values CompiledExpr's scalar program computes.
// ---------------------------------------------------------------------------

typedef double Vd4 __attribute__((vector_size(32)));
typedef long long Vi4 __attribute__((vector_size(32)));

// The vector types only cross the boundaries of these anonymous-namespace
// inline helpers, never a translation unit, so the psABI calling-convention
// caveat for 32-byte values without AVX enabled does not apply.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpsabi"

inline Vd4 LoadVd4(const double* p) {
  Vd4 v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

inline void StoreVd4(double* p, Vd4 v) { __builtin_memcpy(p, &v, sizeof(v)); }

inline void ResetPointers(Slot* s) {
  s->dict = nullptr;
  s->literal = nullptr;
  s->src_col = -1;
}

inline void ResetF64(Slot* s, size_t n) {
  s->tag = ValueType::kDouble;
  s->f64.resize(n);
  s->any_null = false;
  s->nulls.clear();
  ResetPointers(s);
}

inline void ResetInt(Slot* s, size_t n) {
  s->tag = ValueType::kInt64;
  s->i64.resize(n);
  s->any_null = false;
  s->nulls.clear();
  ResetPointers(s);
}

inline void ResetNull(Slot* s) {
  s->tag = ValueType::kNull;
  s->any_null = false;
  s->nulls.clear();
  ResetPointers(s);
}

/// NULL lane test; slots whose tag is kNull are handled before lane loops.
inline bool LaneNull(const Slot& s, size_t i) {
  return s.any_null && s.nulls[i] != 0;
}

/// IsTruthy over a lane: NULLs and strings are never truthy.
inline bool SlotTruthy(const Slot& s, size_t i) {
  switch (s.tag) {
    case ValueType::kInt64:
      return !LaneNull(s, i) && s.i64[i] != 0;
    case ValueType::kDouble:
      return !LaneNull(s, i) && s.f64[i] != 0.0;
    default:
      return false;
  }
}

/// Numeric lane widened to double — Value::AsNumeric on the dynamic tag.
inline double SlotNum(const Slot& s, size_t i) {
  return s.tag == ValueType::kInt64 ? static_cast<double>(s.i64[i])
                                    : s.f64[i];
}

/// ORs the operand null masks into `out` and zeroes the null lanes of the
/// freshly computed payload, keeping the "null lanes hold 0" invariant that
/// bounds the values downstream lanes compute on.
void CombineNulls(const Slot& a, const Slot& b, size_t n, Slot* out) {
  if (!a.any_null && !b.any_null) {
    out->any_null = false;
    out->nulls.clear();
    return;
  }
  out->nulls.resize(n);
  bool any = false;
  for (size_t i = 0; i < n; ++i) {
    const uint8_t nl = LaneNull(a, i) || LaneNull(b, i) ? 1 : 0;
    out->nulls[i] = nl;
    any |= nl != 0;
    if (nl) {
      if (out->tag == ValueType::kInt64) {
        out->i64[i] = 0;
      } else {
        out->f64[i] = 0.0;
      }
    }
  }
  out->any_null = any;
}

void CopyNulls(const Slot& a, Slot* out) {
  if (!a.any_null) {
    out->any_null = false;
    out->nulls.clear();
    return;
  }
  out->nulls = a.nulls;
  out->any_null = true;
}

// ---------------------------------------------------------------------------
// Compiled-mirror kernels: every slot is a dense double column, no null
// masks (null and string cells load as 0.0 exactly like the row program's
// union read), eager AND/OR, double comparisons.
// ---------------------------------------------------------------------------

#define RASQL_VEC_ARITH_CASE(OPNAME, OPER)                               \
  case VecOpCode::OPNAME: {                                              \
    size_t k = 0;                                                        \
    for (; k + 4 <= n; k += 4) {                                         \
      StoreVd4(o + k, LoadVd4(x + k) OPER LoadVd4(y + k));               \
    }                                                                    \
    for (; k < n; ++k) o[k] = x[k] OPER y[k];                            \
    break;                                                               \
  }

#define RASQL_VEC_CMP_CASE(OPNAME, OPER)                                 \
  case VecOpCode::OPNAME: {                                              \
    size_t k = 0;                                                        \
    for (; k + 4 <= n; k += 4) {                                         \
      const Vi4 m = LoadVd4(x + k) OPER LoadVd4(y + k);                  \
      StoreVd4(o + k, __builtin_convertvector(m & 1, Vd4));              \
    }                                                                    \
    for (; k < n; ++k) o[k] = x[k] OPER y[k] ? 1.0 : 0.0;                \
    break;                                                               \
  }

// Local mirror of VecProgram's private opcode values, so the internal
// kernels can stay free functions; the orderings are identical and the
// member dispatch casts between them.
enum class VecOpCode : uint8_t {
  kLoadColumn,
  kLoadConst,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kNot,
  kNeg,
};

void CompiledBinary(VecOpCode op, const Slot& a, const Slot& b, size_t n,
                    Slot* out) {
  ResetF64(out, n);
  const double* x = a.f64.data();
  const double* y = b.f64.data();
  double* o = out->f64.data();
  switch (op) {
    RASQL_VEC_ARITH_CASE(kAdd, +)
    RASQL_VEC_ARITH_CASE(kSub, -)
    RASQL_VEC_ARITH_CASE(kMul, *)
    RASQL_VEC_ARITH_CASE(kDiv, /)
    RASQL_VEC_CMP_CASE(kEq, ==)
    RASQL_VEC_CMP_CASE(kNe, !=)
    RASQL_VEC_CMP_CASE(kLt, <)
    RASQL_VEC_CMP_CASE(kLe, <=)
    RASQL_VEC_CMP_CASE(kGt, >)
    RASQL_VEC_CMP_CASE(kGe, >=)
    case VecOpCode::kAnd: {
      size_t k = 0;
      for (; k + 4 <= n; k += 4) {
        const Vi4 m = (LoadVd4(x + k) != 0.0) & (LoadVd4(y + k) != 0.0);
        StoreVd4(o + k, __builtin_convertvector(m & 1, Vd4));
      }
      for (; k < n; ++k) o[k] = (x[k] != 0.0 && y[k] != 0.0) ? 1.0 : 0.0;
      break;
    }
    case VecOpCode::kOr: {
      size_t k = 0;
      for (; k + 4 <= n; k += 4) {
        const Vi4 m = (LoadVd4(x + k) != 0.0) | (LoadVd4(y + k) != 0.0);
        StoreVd4(o + k, __builtin_convertvector(m & 1, Vd4));
      }
      for (; k < n; ++k) o[k] = (x[k] != 0.0 || y[k] != 0.0) ? 1.0 : 0.0;
      break;
    }
    default:
      break;  // unary ops never reach the binary kernel
  }
}

#undef RASQL_VEC_ARITH_CASE
#undef RASQL_VEC_CMP_CASE

void CompiledNot(Slot* s, size_t n) {
  double* o = s->f64.data();
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const Vi4 m = LoadVd4(o + k) == 0.0;
    StoreVd4(o + k, __builtin_convertvector(m & 1, Vd4));
  }
  for (; k < n; ++k) o[k] = o[k] == 0.0 ? 1.0 : 0.0;
}

void CompiledNeg(Slot* s, size_t n) {
  double* o = s->f64.data();
  size_t k = 0;
  for (; k + 4 <= n; k += 4) StoreVd4(o + k, -LoadVd4(o + k));
  for (; k < n; ++k) o[k] = -o[k];
}

// ---------------------------------------------------------------------------
// Interpreter-mirror kernels: typed lanes, SQL null propagation, exact
// int64 comparisons, dictionary-aware string equality. Any shape the lanes
// cannot mirror exactly (boxed columns, dynamic tag drift from the static
// types) returns false and the caller interprets the chunk row by row.
// ---------------------------------------------------------------------------

/// Applies a three-way comparison result exactly like BinaryExpr::Eval's
/// Compare dispatch (NaN operands yield c == 0, so Eq/Le/Ge hold).
inline int64_t ApplyCmp(VecOpCode op, int c) {
  switch (op) {
    case VecOpCode::kEq:
      return c == 0 ? 1 : 0;
    case VecOpCode::kNe:
      return c != 0 ? 1 : 0;
    case VecOpCode::kLt:
      return c < 0 ? 1 : 0;
    case VecOpCode::kLe:
      return c <= 0 ? 1 : 0;
    case VecOpCode::kGt:
      return c > 0 ? 1 : 0;
    default:
      return c >= 0 ? 1 : 0;  // kGe
  }
}

/// The lane string of a string slot: a dictionary entry or the literal.
inline const std::string& LaneString(const Slot& s, size_t i) {
  return s.literal != nullptr ? *s.literal : (*s.dict)[s.codes[i]];
}

bool InterpCompareStrings(VecOpCode op, const ColumnChunk& chunk,
                          const Slot& a, const Slot& b, size_t n, Slot* out) {
  ResetInt(out, n);
  int64_t* o = out->i64.data();
  const bool has_nulls = a.any_null || b.any_null;
  if (has_nulls) out->nulls.assign(n, 0);
  bool any = false;
  auto mark_null = [&](size_t i) {
    o[i] = 0;
    out->nulls[i] = 1;
    any = true;
  };

  const bool equality = op == VecOpCode::kEq || op == VecOpCode::kNe;
  const Slot* col = nullptr;
  const Slot* lit = nullptr;
  if (a.literal != nullptr && b.literal == nullptr) {
    col = &b;
    lit = &a;
  } else if (b.literal != nullptr && a.literal == nullptr) {
    col = &a;
    lit = &b;
  }

  if (equality && col != nullptr) {
    // Dictionary-aware equality: resolve the literal to a code once and
    // compare codes — materialized strings never enter the loop. A literal
    // absent from the dictionary gets code -1, which no non-null lane
    // carries.
    const int32_t code = chunk.FindDictCode(
        static_cast<size_t>(col->src_col), *lit->literal);
    const int32_t* codes = col->codes.data();
    const bool want_eq = op == VecOpCode::kEq;
    for (size_t i = 0; i < n; ++i) {
      if (has_nulls && (LaneNull(a, i) || LaneNull(b, i))) {
        mark_null(i);
        continue;
      }
      o[i] = (codes[i] == code) == want_eq ? 1 : 0;
    }
    out->any_null = any;
    return true;
  }
  if (equality && a.literal == nullptr && b.literal == nullptr &&
      a.dict == b.dict) {
    // Same column on both sides: codes are directly comparable.
    const bool want_eq = op == VecOpCode::kEq;
    for (size_t i = 0; i < n; ++i) {
      if (has_nulls && (LaneNull(a, i) || LaneNull(b, i))) {
        mark_null(i);
        continue;
      }
      o[i] = (a.codes[i] == b.codes[i]) == want_eq ? 1 : 0;
    }
    out->any_null = any;
    return true;
  }
  // General case (ordering comparisons, cross-dictionary equality):
  // per-lane string comparison with the same sign convention as
  // Value::Compare.
  for (size_t i = 0; i < n; ++i) {
    if (has_nulls && (LaneNull(a, i) || LaneNull(b, i))) {
      mark_null(i);
      continue;
    }
    const int raw = LaneString(a, i).compare(LaneString(b, i));
    o[i] = ApplyCmp(op, raw < 0 ? -1 : raw > 0 ? 1 : 0);
  }
  out->any_null = any;
  return true;
}

bool InterpBinary(VecOpCode op, ValueType node_type, const ColumnChunk& chunk,
                  const Slot& a, const Slot& b, size_t n, Slot* out) {
  // Boolean connectives first: eager truthiness over already-evaluated
  // operand slots equals the interpreter's short-circuit result because
  // expressions are side-effect free; the result is never NULL.
  if (op == VecOpCode::kAnd || op == VecOpCode::kOr) {
    ResetInt(out, n);
    int64_t* o = out->i64.data();
    if (op == VecOpCode::kAnd) {
      for (size_t i = 0; i < n; ++i) {
        o[i] = SlotTruthy(a, i) && SlotTruthy(b, i) ? 1 : 0;
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        o[i] = SlotTruthy(a, i) || SlotTruthy(b, i) ? 1 : 0;
      }
    }
    return true;
  }
  // A NULL operand makes every lane NULL (arithmetic and comparisons).
  if (a.tag == ValueType::kNull || b.tag == ValueType::kNull) {
    ResetNull(out);
    return true;
  }

  const bool a_num =
      a.tag == ValueType::kInt64 || a.tag == ValueType::kDouble;
  const bool b_num =
      b.tag == ValueType::kInt64 || b.tag == ValueType::kDouble;

  switch (op) {
    case VecOpCode::kAdd:
    case VecOpCode::kSub:
    case VecOpCode::kMul:
    case VecOpCode::kDiv: {
      if (!a_num || !b_num) return false;  // dynamic drift into strings
      if (node_type == ValueType::kInt64) {
        // EvalArithmetic's int64 lane; a double slot here means the chunk's
        // dynamic types drifted from the static plan — row fallback.
        if (a.tag != ValueType::kInt64 || b.tag != ValueType::kInt64) {
          return false;
        }
        ResetInt(out, n);
        const int64_t* x = a.i64.data();
        const int64_t* y = b.i64.data();
        int64_t* o = out->i64.data();
        if (op == VecOpCode::kDiv) {
          // y == 0 yields NULL (SQL), which also guards the hardware trap.
          out->nulls.assign(n, 0);
          bool any = false;
          for (size_t i = 0; i < n; ++i) {
            if (LaneNull(a, i) || LaneNull(b, i) || y[i] == 0) {
              o[i] = 0;
              out->nulls[i] = 1;
              any = true;
            } else {
              o[i] = x[i] / y[i];
            }
          }
          out->any_null = any;
          if (!any) out->nulls.clear();
          return true;
        }
        switch (op) {
          case VecOpCode::kAdd:
            for (size_t i = 0; i < n; ++i) o[i] = x[i] + y[i];
            break;
          case VecOpCode::kSub:
            for (size_t i = 0; i < n; ++i) o[i] = x[i] - y[i];
            break;
          default:
            for (size_t i = 0; i < n; ++i) o[i] = x[i] * y[i];
            break;
        }
        CombineNulls(a, b, n, out);
        return true;
      }
      ResetF64(out, n);
      double* o = out->f64.data();
      switch (op) {
        case VecOpCode::kAdd:
          for (size_t i = 0; i < n; ++i) o[i] = SlotNum(a, i) + SlotNum(b, i);
          break;
        case VecOpCode::kSub:
          for (size_t i = 0; i < n; ++i) o[i] = SlotNum(a, i) - SlotNum(b, i);
          break;
        case VecOpCode::kMul:
          for (size_t i = 0; i < n; ++i) o[i] = SlotNum(a, i) * SlotNum(b, i);
          break;
        default:
          for (size_t i = 0; i < n; ++i) o[i] = SlotNum(a, i) / SlotNum(b, i);
          break;
      }
      CombineNulls(a, b, n, out);
      return true;
    }
    case VecOpCode::kEq:
    case VecOpCode::kNe:
    case VecOpCode::kLt:
    case VecOpCode::kLe:
    case VecOpCode::kGt:
    case VecOpCode::kGe: {
      if (a_num && b_num) {
        ResetInt(out, n);
        int64_t* o = out->i64.data();
        if (a.tag == ValueType::kInt64 && b.tag == ValueType::kInt64) {
          const int64_t* x = a.i64.data();
          const int64_t* y = b.i64.data();
          for (size_t i = 0; i < n; ++i) {
            o[i] = ApplyCmp(op, x[i] < y[i] ? -1 : x[i] > y[i] ? 1 : 0);
          }
        } else {
          for (size_t i = 0; i < n; ++i) {
            const double x = SlotNum(a, i);
            const double y = SlotNum(b, i);
            o[i] = ApplyCmp(op, x < y ? -1 : x > y ? 1 : 0);
          }
        }
        CombineNulls(a, b, n, out);
        return true;
      }
      if (a.tag == ValueType::kString && b.tag == ValueType::kString) {
        return InterpCompareStrings(op, chunk, a, b, n, out);
      }
      return false;  // mixed string/numeric lanes: Compare's type-tag order
    }
    default:
      return false;
  }
}

void InterpNot(const Slot& a, size_t n, Slot* out) {
  ResetInt(out, n);
  int64_t* o = out->i64.data();
  for (size_t i = 0; i < n; ++i) o[i] = SlotTruthy(a, i) ? 0 : 1;
}

bool InterpNeg(const Slot& a, size_t n, Slot* out) {
  switch (a.tag) {
    case ValueType::kNull:
      ResetNull(out);
      return true;
    case ValueType::kInt64: {
      ResetInt(out, n);
      const int64_t* x = a.i64.data();
      int64_t* o = out->i64.data();
      for (size_t i = 0; i < n; ++i) o[i] = -x[i];
      CopyNulls(a, out);
      return true;
    }
    case ValueType::kDouble: {
      ResetF64(out, n);
      const double* x = a.f64.data();
      double* o = out->f64.data();
      for (size_t i = 0; i < n; ++i) o[i] = -x[i];
      CopyNulls(a, out);
      // Keep the "null lanes hold 0" invariant (-0.0 would survive).
      if (out->any_null) {
        for (size_t i = 0; i < n; ++i) {
          if (out->nulls[i]) o[i] = 0.0;
        }
      }
      return true;
    }
    default:
      return false;
  }
}

#pragma GCC diagnostic pop

}  // namespace

void VecProgram::LoadColumnCompiled(const ColumnChunk& chunk,
                                    const uint32_t* sel, size_t n, int col,
                                    Slot* out) const {
  ResetF64(out, n);
  double* o = out->f64.data();
  const ColumnChunk::ColumnData& cd = chunk.column(static_cast<size_t>(col));
  if (cd.variant) {
    // Boxed column: branch per value exactly like OpCode::kLoadColumn does
    // on the materialized row (a non-numeric cell's union payload is 0.0).
    for (size_t i = 0; i < n; ++i) {
      const Value& v = cd.boxed[sel[i]];
      switch (v.type()) {
        case ValueType::kInt64:
          o[i] = static_cast<double>(v.AsInt());
          break;
        case ValueType::kDouble:
          o[i] = v.AsDouble();
          break;
        default:
          o[i] = 0.0;
          break;
      }
    }
    return;
  }
  switch (cd.tag) {
    case ValueType::kInt64: {
      // Null placeholders in the typed array are 0 — the same 0.0 the row
      // program reads out of a null Value's union, so no mask is needed.
      const int64_t* data = cd.i64.data();
      for (size_t i = 0; i < n; ++i) o[i] = static_cast<double>(data[sel[i]]);
      return;
    }
    case ValueType::kDouble: {
      const double* data = cd.f64.data();
      for (size_t i = 0; i < n; ++i) o[i] = data[sel[i]];
      return;
    }
    default:
      // String and all-null columns load as 0.0 (union payload of a string
      // or null Value), mirroring the row program bit for bit.
      for (size_t i = 0; i < n; ++i) o[i] = 0.0;
      return;
  }
}

bool VecProgram::LoadColumnInterp(const ColumnChunk& chunk,
                                  const uint32_t* sel, size_t n, int col,
                                  Slot* out) const {
  const ColumnChunk::ColumnData& cd = chunk.column(static_cast<size_t>(col));
  if (cd.variant) return false;  // mixed types: row-at-a-time territory
  switch (cd.tag) {
    case ValueType::kNull:
      ResetNull(out);
      return true;
    case ValueType::kInt64:
      ResetInt(out, n);
      chunk.GatherI64(static_cast<size_t>(col), sel, n, out->i64.data());
      break;
    case ValueType::kDouble:
      ResetF64(out, n);
      chunk.GatherF64(static_cast<size_t>(col), sel, n, out->f64.data());
      break;
    case ValueType::kString:
      out->tag = ValueType::kString;
      out->codes.resize(n);
      out->f64.clear();
      out->i64.clear();
      chunk.GatherCodes(static_cast<size_t>(col), sel, n, out->codes.data());
      out->dict = &cd.dict;
      out->literal = nullptr;
      break;
  }
  out->src_col = col;
  if (cd.null_count == 0) {
    out->any_null = false;
    out->nulls.clear();
  } else {
    out->nulls.resize(n);
    out->any_null =
        chunk.GatherNulls(static_cast<size_t>(col), sel, n, out->nulls.data());
    if (!out->any_null) out->nulls.clear();
  }
  return true;
}

bool VecProgram::Execute(const ColumnChunk& chunk, const uint32_t* sel,
                         size_t n, Scratch* scratch) const {
  std::vector<Slot>& stack = scratch->stack;
  if (stack.size() < static_cast<size_t>(max_stack_)) {
    stack.resize(static_cast<size_t>(max_stack_));
  }
  const bool compiled = semantics_ == VecSemantics::kCompiledMirror;
  int sp = 0;
  for (const Instruction& in : program_) {
    const VecOpCode op = static_cast<VecOpCode>(in.op);
    switch (op) {
      case VecOpCode::kLoadColumn:
        if (compiled) {
          LoadColumnCompiled(chunk, sel, n, in.column, &stack[sp]);
        } else if (!LoadColumnInterp(chunk, sel, n, in.column, &stack[sp])) {
          return false;
        }
        ++sp;
        break;
      case VecOpCode::kLoadConst: {
        Slot& s = stack[sp];
        ++sp;
        if (compiled) {
          ResetF64(&s, n);
          const double c = in.constant.AsNumeric();
          for (size_t i = 0; i < n; ++i) s.f64[i] = c;
          break;
        }
        switch (in.constant.type()) {
          case ValueType::kNull:
            ResetNull(&s);
            break;
          case ValueType::kInt64:
            ResetInt(&s, n);
            for (size_t i = 0; i < n; ++i) s.i64[i] = in.constant.AsInt();
            break;
          case ValueType::kDouble:
            ResetF64(&s, n);
            for (size_t i = 0; i < n; ++i) s.f64[i] = in.constant.AsDouble();
            break;
          case ValueType::kString:
            s.tag = ValueType::kString;
            s.codes.clear();
            s.dict = nullptr;
            s.literal = &in.constant.AsString();
            s.src_col = -1;
            s.any_null = false;
            s.nulls.clear();
            break;
        }
        break;
      }
      case VecOpCode::kNot:
        if (compiled) {
          CompiledNot(&stack[sp - 1], n);
        } else {
          InterpNot(stack[sp - 1], n, &scratch->tmp);
          std::swap(stack[sp - 1], scratch->tmp);
        }
        break;
      case VecOpCode::kNeg:
        if (compiled) {
          CompiledNeg(&stack[sp - 1], n);
        } else {
          if (!InterpNeg(stack[sp - 1], n, &scratch->tmp)) return false;
          std::swap(stack[sp - 1], scratch->tmp);
        }
        break;
      default: {
        Slot& a = stack[sp - 2];
        Slot& b = stack[sp - 1];
        --sp;
        if (compiled) {
          CompiledBinary(op, a, b, n, &scratch->tmp);
        } else if (!InterpBinary(op, in.node_type, chunk, a, b, n,
                                 &scratch->tmp)) {
          return false;
        }
        std::swap(a, scratch->tmp);
        break;
      }
    }
  }
  RASQL_DCHECK(sp == 1);
  return true;
}

bool VecProgram::FilterChunk(const ColumnChunk& chunk,
                             std::vector<uint32_t>* sel,
                             Scratch* scratch) const {
  const size_t n = sel->size();
  if (n == 0) return true;
  if (!Execute(chunk, sel->data(), n, scratch)) return false;
  const Slot& root = scratch->stack[0];
  uint32_t* s = sel->data();
  size_t kept = 0;
  if (semantics_ == VecSemantics::kCompiledMirror) {
    const double* o = root.f64.data();
    for (size_t i = 0; i < n; ++i) {
      if (o[i] != 0.0) s[kept++] = s[i];
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      if (SlotTruthy(root, i)) s[kept++] = s[i];
    }
  }
  sel->resize(kept);
  return true;
}

bool VecProgram::EvalChunk(const ColumnChunk& chunk, const uint32_t* sel,
                           size_t n, Scratch* scratch, VecBatch* out) const {
  if (!Execute(chunk, sel, n, scratch)) return false;
  Slot& root = scratch->stack[0];
  out->size = n;
  if (semantics_ == VecSemantics::kCompiledMirror) {
    out->nulls.clear();
    out->any_null = false;
    if (output_type_ == ValueType::kInt64) {
      // Mirror CompiledExpr::EvalValue's double -> int64 narrowing.
      out->tag = ValueType::kInt64;
      out->i64.resize(n);
      for (size_t i = 0; i < n; ++i) {
        out->i64[i] = static_cast<int64_t>(root.f64[i]);
      }
    } else {
      out->tag = ValueType::kDouble;
      out->f64.swap(root.f64);
    }
    return true;
  }
  switch (root.tag) {
    case ValueType::kNull:
      out->tag = ValueType::kNull;
      out->nulls.clear();
      out->any_null = false;
      return true;
    case ValueType::kInt64:
      out->tag = ValueType::kInt64;
      out->i64.swap(root.i64);
      break;
    case ValueType::kDouble:
      out->tag = ValueType::kDouble;
      out->f64.swap(root.f64);
      break;
    case ValueType::kString:
      return false;  // string-valued expressions stay on the row path
  }
  out->any_null = root.any_null;
  if (root.any_null) {
    out->nulls.swap(root.nulls);
  } else {
    out->nulls.clear();
  }
  return true;
}

}  // namespace rasql::expr
