#include "expr/compiled_expr.h"

#include "common/check.h"

namespace rasql::expr {

using storage::Value;
using storage::ValueType;

std::optional<CompiledExpr> CompiledExpr::Compile(const Expr& expr) {
  CompiledExpr compiled;
  if (!compiled.Emit(expr)) return std::nullopt;
  compiled.output_type_ = expr.output_type();
  // Postfix stack depth bound: every instruction pushes at most one value,
  // binary ops pop two. A simple simulation gives the exact bound.
  int depth = 0;
  int max_depth = 0;
  for (const Instruction& in : compiled.program_) {
    switch (in.op) {
      case OpCode::kLoadColumn:
      case OpCode::kLoadConst:
        ++depth;
        break;
      case OpCode::kNot:
      case OpCode::kNeg:
        break;  // pop 1, push 1
      default:
        --depth;  // pop 2, push 1
        break;
    }
    if (depth > max_depth) max_depth = depth;
  }
  compiled.max_stack_ = max_depth;
  return compiled;
}

bool CompiledExpr::Emit(const Expr& expr) {
  switch (expr.kind()) {
    case Expr::Kind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(expr);
      if (ref.output_type() != ValueType::kInt64 &&
          ref.output_type() != ValueType::kDouble) {
        return false;
      }
      program_.push_back({OpCode::kLoadColumn, ref.index(), 0.0});
      return true;
    }
    case Expr::Kind::kLiteral: {
      const auto& lit = static_cast<const LiteralExpr&>(expr);
      if (lit.value().type() != ValueType::kInt64 &&
          lit.value().type() != ValueType::kDouble) {
        return false;
      }
      program_.push_back({OpCode::kLoadConst, 0, lit.value().AsNumeric()});
      return true;
    }
    case Expr::Kind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(expr);
      if (!Emit(bin.lhs()) || !Emit(bin.rhs())) return false;
      OpCode op;
      switch (bin.op()) {
        case BinaryOp::kAdd:
          op = OpCode::kAdd;
          break;
        case BinaryOp::kSub:
          op = OpCode::kSub;
          break;
        case BinaryOp::kMul:
          op = OpCode::kMul;
          break;
        case BinaryOp::kDiv:
          op = OpCode::kDiv;
          break;
        case BinaryOp::kEq:
          op = OpCode::kEq;
          break;
        case BinaryOp::kNe:
          op = OpCode::kNe;
          break;
        case BinaryOp::kLt:
          op = OpCode::kLt;
          break;
        case BinaryOp::kLe:
          op = OpCode::kLe;
          break;
        case BinaryOp::kGt:
          op = OpCode::kGt;
          break;
        case BinaryOp::kGe:
          op = OpCode::kGe;
          break;
        case BinaryOp::kAnd:
          op = OpCode::kAnd;
          break;
        case BinaryOp::kOr:
          op = OpCode::kOr;
          break;
        default:
          return false;
      }
      program_.push_back({op, 0, 0.0});
      return true;
    }
    case Expr::Kind::kNot: {
      const auto& un = static_cast<const NotExpr&>(expr);
      if (!Emit(un.input())) return false;
      program_.push_back({OpCode::kNot, 0, 0.0});
      return true;
    }
    case Expr::Kind::kNegate: {
      const auto& un = static_cast<const NegateExpr&>(expr);
      if (!Emit(un.input())) return false;
      program_.push_back({OpCode::kNeg, 0, 0.0});
      return true;
    }
  }
  return false;
}

double CompiledExpr::EvalNumeric(const storage::Row& row) const {
  // The stack lives on the C++ stack; programs are tiny (< 64 slots in any
  // realistic query) and max_stack_ is an exact bound.
  double stack[64];
  RASQL_DCHECK(max_stack_ <= 64);
  int sp = 0;
  for (const Instruction& in : program_) {
    switch (in.op) {
      case OpCode::kLoadColumn: {
        const Value& v = row[in.column];
        stack[sp++] = v.type() == ValueType::kInt64
                          ? static_cast<double>(v.AsInt())
                          : v.AsDouble();
        break;
      }
      case OpCode::kLoadConst:
        stack[sp++] = in.constant;
        break;
      case OpCode::kAdd:
        --sp;
        stack[sp - 1] += stack[sp];
        break;
      case OpCode::kSub:
        --sp;
        stack[sp - 1] -= stack[sp];
        break;
      case OpCode::kMul:
        --sp;
        stack[sp - 1] *= stack[sp];
        break;
      case OpCode::kDiv:
        --sp;
        stack[sp - 1] /= stack[sp];
        break;
      case OpCode::kEq:
        --sp;
        stack[sp - 1] = stack[sp - 1] == stack[sp] ? 1.0 : 0.0;
        break;
      case OpCode::kNe:
        --sp;
        stack[sp - 1] = stack[sp - 1] != stack[sp] ? 1.0 : 0.0;
        break;
      case OpCode::kLt:
        --sp;
        stack[sp - 1] = stack[sp - 1] < stack[sp] ? 1.0 : 0.0;
        break;
      case OpCode::kLe:
        --sp;
        stack[sp - 1] = stack[sp - 1] <= stack[sp] ? 1.0 : 0.0;
        break;
      case OpCode::kGt:
        --sp;
        stack[sp - 1] = stack[sp - 1] > stack[sp] ? 1.0 : 0.0;
        break;
      case OpCode::kGe:
        --sp;
        stack[sp - 1] = stack[sp - 1] >= stack[sp] ? 1.0 : 0.0;
        break;
      case OpCode::kAnd:
        --sp;
        stack[sp - 1] =
            (stack[sp - 1] != 0.0 && stack[sp] != 0.0) ? 1.0 : 0.0;
        break;
      case OpCode::kOr:
        --sp;
        stack[sp - 1] =
            (stack[sp - 1] != 0.0 || stack[sp] != 0.0) ? 1.0 : 0.0;
        break;
      case OpCode::kNot:
        stack[sp - 1] = stack[sp - 1] == 0.0 ? 1.0 : 0.0;
        break;
      case OpCode::kNeg:
        stack[sp - 1] = -stack[sp - 1];
        break;
    }
  }
  RASQL_DCHECK(sp == 1);
  return stack[0];
}

}  // namespace rasql::expr
