#ifndef RASQL_EXPR_COMPILED_EXPR_H_
#define RASQL_EXPR_COMPILED_EXPR_H_

#include <optional>
#include <vector>

#include "expr/expr.h"
#include "storage/row.h"

namespace rasql::expr {

/// The single-core analogue of Spark's whole-stage code generation (paper
/// Sec. 7.3): expression trees are flattened to a postfix numeric program
/// executed on a small value stack, removing per-node virtual dispatch and
/// Value temporaries. Fused physical kernels run these programs in tight
/// loops; `bench_fig07_codegen` measures the effect.
///
/// Only numeric expressions compile; string expressions fall back to the
/// interpreted tree (mirroring Spark operators without codegen support).
class CompiledExpr {
 public:
  /// Attempts to compile `expr`. Returns nullopt when the expression uses
  /// non-numeric inputs.
  static std::optional<CompiledExpr> Compile(const Expr& expr);

  /// Evaluates to a double (comparisons/booleans yield 0.0 or 1.0).
  double EvalNumeric(const storage::Row& row) const;

  /// Evaluates as a predicate.
  bool EvalBool(const storage::Row& row) const {
    return EvalNumeric(row) != 0.0;
  }

  /// Evaluates to a typed Value matching the original expression type.
  storage::Value EvalValue(const storage::Row& row) const {
    const double v = EvalNumeric(row);
    return output_type_ == storage::ValueType::kInt64
               ? storage::Value::Int(static_cast<int64_t>(v))
               : storage::Value::Double(v);
  }

  storage::ValueType output_type() const { return output_type_; }

  /// Number of instructions — exposed for tests.
  size_t program_size() const { return program_.size(); }

 private:
  enum class OpCode : uint8_t {
    kLoadColumn,   // push row[operand] as numeric
    kLoadConst,    // push constant
    kAdd,
    kSub,
    kMul,
    kDiv,
    kEq,
    kNe,
    kLt,
    kLe,
    kGt,
    kGe,
    kAnd,
    kOr,
    kNot,
    kNeg,
  };

  struct Instruction {
    OpCode op;
    int column = 0;
    double constant = 0.0;
  };

  CompiledExpr() = default;

  /// Emits postfix instructions for `expr`; false when not compilable.
  bool Emit(const Expr& expr);

  std::vector<Instruction> program_;
  storage::ValueType output_type_ = storage::ValueType::kDouble;
  // Stack depth bound computed at compile time so Eval can use a fixed
  // stack without bounds checks.
  int max_stack_ = 0;
};

}  // namespace rasql::expr

#endif  // RASQL_EXPR_COMPILED_EXPR_H_
