#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace rasql::common {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kAnalysisError:
      return "AnalysisError";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void DieOnBadResultAccess(const Status& status) {
  std::fprintf(stderr, "Result<T> accessed with error status: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace rasql::common
