#ifndef RASQL_COMMON_CHECK_H_
#define RASQL_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace rasql::common::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "%s:%d: RASQL_CHECK failed: %s\n", file, line, expr);
  std::abort();
}

}  // namespace rasql::common::internal

/// Aborts the process when an internal invariant is violated. Used only for
/// programmer errors; user-input errors flow through Status instead.
#define RASQL_CHECK(cond)                                               \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::rasql::common::internal::CheckFailed(__FILE__, __LINE__, #cond); \
    }                                                                   \
  } while (false)

#ifndef NDEBUG
#define RASQL_DCHECK(cond) RASQL_CHECK(cond)
#else
#define RASQL_DCHECK(cond) \
  do {                     \
  } while (false)
#endif

#endif  // RASQL_COMMON_CHECK_H_
