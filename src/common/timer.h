#ifndef RASQL_COMMON_TIMER_H_
#define RASQL_COMMON_TIMER_H_

#include <chrono>

namespace rasql::common {

/// Monotonic stopwatch used both for wall-clock reporting and for measuring
/// per-task compute time that feeds the distributed cost model.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rasql::common

#endif  // RASQL_COMMON_TIMER_H_
