#ifndef RASQL_COMMON_STATUS_H_
#define RASQL_COMMON_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace rasql::common {

/// Error categories used across the whole system. Mirrors the usual
/// database-engine convention (RocksDB/absl): a Status is cheap to pass by
/// value and OK statuses carry no allocation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kAnalysisError,
  kExecutionError,
  kUnimplemented,
  kInternal,
};

/// Returns a stable human-readable name for `code` ("OK", "ParseError", ...).
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail. We do not use C++ exceptions;
/// every fallible public API returns `Status` or `Result<T>`.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status AnalysisError(std::string msg) {
    return Status(StatusCode::kAnalysisError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or an error Status. Modeled after
/// absl::StatusOr<T>; access to the value of a non-OK result aborts.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or from an error status keeps call
  /// sites terse: `return some_value;` / `return Status::ParseError(...)`.
  Result(T value) : value_(std::move(value)) {}          // NOLINT
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T& value() & {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal {
/// Prints the status and aborts. Out-of-line so Result<T> stays light.
[[noreturn]] void DieOnBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!status_.ok()) internal::DieOnBadResultAccess(status_);
}

}  // namespace rasql::common

/// Propagates a non-OK Status to the caller.
#define RASQL_RETURN_IF_ERROR(expr)                         \
  do {                                                      \
    ::rasql::common::Status _rasql_status = (expr);         \
    if (!_rasql_status.ok()) return _rasql_status;          \
  } while (false)

#define RASQL_STATUS_MACROS_CONCAT_INNER_(x, y) x##y
#define RASQL_STATUS_MACROS_CONCAT_(x, y) \
  RASQL_STATUS_MACROS_CONCAT_INNER_(x, y)

/// Evaluates `rexpr` (a Result<T>); on error returns the Status, otherwise
/// move-assigns the value into `lhs` (which may be a declaration).
#define RASQL_ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  RASQL_ASSIGN_OR_RETURN_IMPL_(                                             \
      RASQL_STATUS_MACROS_CONCAT_(_rasql_result, __LINE__), lhs, rexpr)

#define RASQL_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                                 \
  if (!result.ok()) return result.status();              \
  lhs = std::move(result).value()

#endif  // RASQL_COMMON_STATUS_H_
