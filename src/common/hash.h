#ifndef RASQL_COMMON_HASH_H_
#define RASQL_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace rasql::common {

/// 64-bit finalizer from SplitMix64; a strong cheap integer mixer used for
/// hash partitioning and hash-table bucketing of integer keys.
inline uint64_t MixHash64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines an existing hash with a new 64-bit value (boost-style).
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return seed ^ (MixHash64(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                 (seed >> 2));
}

/// FNV-1a over bytes; used for string values.
inline uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace rasql::common

#endif  // RASQL_COMMON_HASH_H_
