#include "baselines/pregel/pregel.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "common/check.h"
#include "common/hash.h"

namespace rasql::baselines {

using dist::Cluster;
using dist::StageSpec;
using dist::TaskContext;

namespace {

/// Shorthand for the stage claim declarations below.
constexpr verify::AccessMode kReadShared = verify::AccessMode::kReadShared;
constexpr verify::AccessMode kPartitionOwned =
    verify::AccessMode::kPartitionOwned;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// CSR adjacency for one partition: the out-edges of the vertices owned by
/// the partition.
struct PartitionCsr {
  std::vector<int64_t> vertices;            // owned vertex ids
  std::vector<int> offsets;                 // per owned vertex
  std::vector<int64_t> targets;
  std::vector<double> weights;              // empty when unweighted
  std::unordered_map<int64_t, int> local;   // vertex id -> local index
  size_t byte_size = 0;
};

int PartitionOf(int64_t vertex, int num_partitions) {
  return static_cast<int>(common::MixHash64(static_cast<uint64_t>(vertex)) %
                          static_cast<uint64_t>(num_partitions));
}

std::vector<PartitionCsr> BuildCsr(const datagen::Graph& graph,
                                   int num_partitions) {
  std::vector<PartitionCsr> parts(num_partitions);
  for (int64_t v = 0; v < graph.num_vertices; ++v) {
    PartitionCsr& part = parts[PartitionOf(v, num_partitions)];
    part.local.emplace(v, static_cast<int>(part.vertices.size()));
    part.vertices.push_back(v);
  }
  // Count, then fill.
  std::vector<std::vector<int>> counts(num_partitions);
  for (int p = 0; p < num_partitions; ++p) {
    counts[p].assign(parts[p].vertices.size() + 1, 0);
  }
  for (const auto& [src, dst] : graph.edges) {
    PartitionCsr& part = parts[PartitionOf(src, num_partitions)];
    ++counts[PartitionOf(src, num_partitions)][part.local.at(src) + 1];
  }
  for (int p = 0; p < num_partitions; ++p) {
    for (size_t i = 1; i < counts[p].size(); ++i) {
      counts[p][i] += counts[p][i - 1];
    }
    parts[p].offsets = counts[p];
    parts[p].targets.resize(counts[p].back());
    if (graph.weighted()) parts[p].weights.resize(counts[p].back());
  }
  std::vector<std::vector<int>> fill(num_partitions);
  for (int p = 0; p < num_partitions; ++p) fill[p] = parts[p].offsets;
  for (size_t e = 0; e < graph.edges.size(); ++e) {
    const auto& [src, dst] = graph.edges[e];
    const int p = PartitionOf(src, num_partitions);
    PartitionCsr& part = parts[p];
    const int at = fill[p][part.local.at(src)]++;
    part.targets[at] = dst;
    if (graph.weighted()) part.weights[at] = graph.weights[e];
  }
  for (int p = 0; p < num_partitions; ++p) {
    parts[p].byte_size = parts[p].vertices.size() * 16 +
                         parts[p].targets.size() *
                             (graph.weighted() ? 16 : 8);
  }
  return parts;
}

}  // namespace

size_t PregelResult::NumReached() const {
  size_t n = 0;
  for (double v : values) n += v != kInf;
  return n;
}

size_t PregelResult::NumDistinctValues() const {
  std::set<double> distinct;
  for (double v : values) {
    if (v != kInf) distinct.insert(v);
  }
  return distinct.size();
}

PregelResult RunPregel(const datagen::Graph& graph,
                       PregelAlgorithm algorithm,
                       const PregelOptions& options, Cluster* cluster) {
  const int P = cluster->config().num_partitions;
  std::vector<PartitionCsr> csr = BuildCsr(graph, P);

  PregelResult result;
  result.values.assign(graph.num_vertices, kInf);
  // uint8_t, not bool: tasks write their owned vertices' flags
  // concurrently and vector<bool> packs bits.
  std::vector<uint8_t> active(graph.num_vertices, 0);

  // Superstep 0: initialize.
  switch (algorithm) {
    case PregelAlgorithm::kReach:
    case PregelAlgorithm::kSssp:
      if (options.source < graph.num_vertices) {
        result.values[options.source] = 0;
        active[options.source] = 1;
      }
      break;
    case PregelAlgorithm::kConnectedComponents:
      for (int64_t v = 0; v < graph.num_vertices; ++v) {
        result.values[v] = static_cast<double>(v);
        active[v] = 1;
      }
      break;
  }

  // Outgoing messages buffered between supersteps: per destination
  // partition, (vertex, value) pairs pre-combined by min.
  std::vector<std::vector<std::pair<int64_t, double>>> inbox(P);
  bool any_active = true;

  const bool graphx = options.profile == SystemProfile::kGraphX;

  while (any_active && result.supersteps < options.max_supersteps) {
    ++result.supersteps;
    // Partition-owned outboxes — outbox[p][dest] is written only by task p
    // — so supersteps run race-free at any thread count.
    std::vector<std::vector<std::unordered_map<int64_t, double>>> outbox(
        P, std::vector<std::unordered_map<int64_t, double>>(P));

    StageSpec superstep_stage;
    superstep_stage.name =
        (graphx ? "graphx-superstep-" : "giraph-superstep-") +
        std::to_string(result.supersteps);
    // A superstep consumes the previous one's messages and emits the next
    // one's: the fused reduce+map shape. All vertex-indexed state is
    // written only through vertices owned by the task's partition, so it
    // is partition-owned at vertex-hash granularity.
    superstep_stage.kind = StageSpec::Kind::kCombined;
    superstep_stage.Claim(&csr, kReadShared, "csr")
        .Claim(&result.values, kPartitionOwned, "vertex-values")
        .Claim(&active, kPartitionOwned, "active-flags")
        .Claim(&inbox, kPartitionOwned, "inbox")
        .Claim(&outbox, kPartitionOwned, "outbox");
    cluster->RunStage(superstep_stage, [&](TaskContext& ctx) {
      const int p = ctx.partition();
      ctx.ReportCachedState(csr[p].byte_size);
      std::vector<size_t> bytes_out(P, 0);
      auto& out = outbox[p];

      // Deliver incoming messages (min-combine into vertex values). Every
      // vertex in inbox[p] is owned by p, so values/active writes stay
      // partition-owned.
      for (const auto& [v, value] : inbox[p]) {
        if (value < result.values[v]) {
          result.values[v] = value;
          active[v] = 1;
        }
      }
      inbox[p].clear();

      // Compute: every active vertex sends along its out-edges.
      const PartitionCsr& part = csr[p];
      for (size_t i = 0; i < part.vertices.size(); ++i) {
        const int64_t v = part.vertices[i];
        if (!active[v]) continue;
        active[v] = 0;
        const double value = result.values[v];
        for (int e = part.offsets[i]; e < part.offsets[i + 1]; ++e) {
          const int64_t target = part.targets[e];
          double message = 0;
          switch (algorithm) {
            case PregelAlgorithm::kReach:
              message = value + 1;  // BFS depth
              break;
            case PregelAlgorithm::kSssp:
              message =
                  value + (part.weights.empty() ? 1.0 : part.weights[e]);
              break;
            case PregelAlgorithm::kConnectedComponents:
              message = value;  // label propagation
              break;
          }
          const int dest = PartitionOf(target, P);
          // Suppress against the target's current value only when this
          // task owns the target; a remote vertex's value belongs to
          // another task and may not be read mid-stage. Cross-partition
          // suppression falls to the outbox min-combine below.
          if (dest == p && message >= result.values[target]) continue;
          auto [it, inserted] = out[dest].emplace(target, message);
          if (!inserted) {
            it->second = std::min(it->second, message);
          } else {
            bytes_out[dest] += 16;
          }
        }
      }
      ctx.ReportShuffleBytes(std::move(bytes_out));
    });

    // GraphX profile: three more bookkeeping stages per superstep — the
    // vertex/edge RDD joins and re-creations its Pregel implementation
    // performs. The copies are real work; the shuffles move the vertex
    // state around.
    if (graphx) {
      for (int extra = 0; extra < 3; ++extra) {
        StageSpec bookkeeping;
        bookkeeping.name = "graphx-bookkeeping-" +
                           std::to_string(result.supersteps) + "-" +
                           std::to_string(extra);
        // The first bookkeeping stage consumes the superstep's shuffle and
        // shuffles again; the rest only produce.
        bookkeeping.kind = extra == 0 ? StageSpec::Kind::kCombined
                                      : StageSpec::Kind::kShuffleMap;
        bookkeeping.Claim(&csr, kReadShared, "csr")
            .Claim(&result.values, kReadShared, "vertex-values");
        cluster->RunStage(bookkeeping, [&](TaskContext& ctx) {
          const int p = ctx.partition();
          // Re-create the vertex-attribute RDD: copy owned values.
          std::vector<double> copy;
          copy.reserve(csr[p].vertices.size());
          for (int64_t v : csr[p].vertices) {
            copy.push_back(result.values[v]);
          }
          // Keep the copy alive long enough to be "the new RDD".
          ctx.ReportCachedState(copy.size() * 8);
          ctx.ReportShuffleBytes(
              std::vector<size_t>(P, copy.size() * 8 / P));
        });
      }
    }

    // Route messages, ascending producer order for each destination.
    any_active = false;
    for (int dest = 0; dest < P; ++dest) {
      for (int src = 0; src < P; ++src) {
        for (const auto& [v, value] : outbox[src][dest]) {
          inbox[dest].emplace_back(v, value);
        }
      }
      if (!inbox[dest].empty()) any_active = true;
    }
  }
  return result;
}

PregelResult RunTreeAggregate(const datagen::Graph& graph,
                              const std::vector<double>& initial,
                              const TreeAggregateOptions& options,
                              dist::Cluster* cluster) {
  RASQL_CHECK(static_cast<int64_t>(initial.size()) == graph.num_vertices);
  const int P = cluster->config().num_partitions;
  std::vector<PartitionCsr> csr = BuildCsr(graph, P);
  const bool graphx = options.profile == SystemProfile::kGraphX;

  PregelResult result;
  result.values = initial;
  // A vertex may fire (report to its parent) once all children reported.
  std::vector<int> pending(graph.num_vertices, 0);
  std::vector<int64_t> parent(graph.num_vertices, -1);
  for (const auto& [p, c] : graph.edges) {
    ++pending[p];
    parent[c] = p;
  }
  std::vector<std::vector<std::pair<int64_t, double>>> inbox(P);
  // uint8_t, not bool: tasks write their owned vertices' flags
  // concurrently and vector<bool> packs bits.
  std::vector<uint8_t> fired(graph.num_vertices, 0);

  bool done = false;
  while (!done && result.supersteps < options.max_supersteps) {
    ++result.supersteps;
    // Partition-owned outboxes and fired flags — task p writes only
    // outbox[p] and fired_flags[p] — so the stage is race-free at any
    // thread count.
    std::vector<std::vector<std::vector<std::pair<int64_t, double>>>> outbox(
        P, std::vector<std::vector<std::pair<int64_t, double>>>(P));
    std::vector<uint8_t> fired_flags(P, 0);

    StageSpec tree_stage;
    tree_stage.name = (graphx ? "graphx-tree-" : "giraph-tree-") +
                      std::to_string(result.supersteps);
    tree_stage.kind = StageSpec::Kind::kCombined;
    tree_stage.Claim(&csr, kReadShared, "csr")
        .Claim(&result.values, kPartitionOwned, "vertex-values")
        .Claim(&pending, kPartitionOwned, "pending-counts")
        .Claim(&parent, kReadShared, "parent")
        .Claim(&fired, kPartitionOwned, "fired")
        .Claim(&fired_flags, kPartitionOwned, "fired-flags")
        .Claim(&inbox, kPartitionOwned, "inbox")
        .Claim(&outbox, kPartitionOwned, "outbox");
    cluster->RunStage(tree_stage, [&](TaskContext& ctx) {
      const int p = ctx.partition();
      ctx.ReportCachedState(csr[p].byte_size);
      std::vector<size_t> bytes_out(P, 0);
      auto& out = outbox[p];
      // Deliver child reports; every vertex in inbox[p] is owned by p.
      for (const auto& [v, value] : inbox[p]) {
        if (options.combine == TreeCombine::kSum) {
          result.values[v] += value;
        } else {
          result.values[v] = std::max(result.values[v], value);
        }
        --pending[v];
      }
      inbox[p].clear();
      // Fire ready vertices.
      for (int64_t v : csr[p].vertices) {
        if (fired[v] || pending[v] != 0) continue;
        fired[v] = 1;
        fired_flags[p] = 1;
        if (parent[v] >= 0) {
          const int dest = PartitionOf(parent[v], P);
          out[dest].emplace_back(parent[v],
                                 options.edge_factor * result.values[v]);
          bytes_out[dest] += 16;
        }
      }
      ctx.ReportShuffleBytes(std::move(bytes_out));
    });
    bool fired_any = false;
    for (uint8_t f : fired_flags) fired_any |= f != 0;

    if (graphx) {
      for (int extra = 0; extra < 3; ++extra) {
        StageSpec bookkeeping;
        bookkeeping.name = "graphx-tree-bookkeeping-" +
                           std::to_string(result.supersteps) + "-" +
                           std::to_string(extra);
        bookkeeping.kind = extra == 0 ? StageSpec::Kind::kCombined
                                      : StageSpec::Kind::kShuffleMap;
        bookkeeping.Claim(&csr, kReadShared, "csr")
            .Claim(&result.values, kReadShared, "vertex-values");
        cluster->RunStage(bookkeeping, [&](TaskContext& ctx) {
          const int p = ctx.partition();
          std::vector<double> copy;
          copy.reserve(csr[p].vertices.size());
          for (int64_t v : csr[p].vertices) {
            copy.push_back(result.values[v]);
          }
          ctx.ReportCachedState(copy.size() * 8);
          ctx.ReportShuffleBytes(
              std::vector<size_t>(P, copy.size() * 8 / P));
        });
      }
    }

    // Route child reports, ascending producer order for each destination
    // so floating-point sums accumulate in a fixed order.
    done = true;
    for (int dest = 0; dest < P; ++dest) {
      for (int src = 0; src < P; ++src) {
        for (const auto& [v, value] : outbox[src][dest]) {
          inbox[dest].emplace_back(v, value);
        }
      }
      if (!inbox[dest].empty()) done = false;
    }
    if (!fired_any && done) break;
  }
  return result;
}

}  // namespace rasql::baselines
