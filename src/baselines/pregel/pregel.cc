#include "baselines/pregel/pregel.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "common/check.h"
#include "common/hash.h"

namespace rasql::baselines {

using dist::Cluster;
using dist::TaskIo;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// CSR adjacency for one partition: the out-edges of the vertices owned by
/// the partition.
struct PartitionCsr {
  std::vector<int64_t> vertices;            // owned vertex ids
  std::vector<int> offsets;                 // per owned vertex
  std::vector<int64_t> targets;
  std::vector<double> weights;              // empty when unweighted
  std::unordered_map<int64_t, int> local;   // vertex id -> local index
  size_t byte_size = 0;
};

int PartitionOf(int64_t vertex, int num_partitions) {
  return static_cast<int>(common::MixHash64(static_cast<uint64_t>(vertex)) %
                          static_cast<uint64_t>(num_partitions));
}

std::vector<PartitionCsr> BuildCsr(const datagen::Graph& graph,
                                   int num_partitions) {
  std::vector<PartitionCsr> parts(num_partitions);
  for (int64_t v = 0; v < graph.num_vertices; ++v) {
    PartitionCsr& part = parts[PartitionOf(v, num_partitions)];
    part.local.emplace(v, static_cast<int>(part.vertices.size()));
    part.vertices.push_back(v);
  }
  // Count, then fill.
  std::vector<std::vector<int>> counts(num_partitions);
  for (int p = 0; p < num_partitions; ++p) {
    counts[p].assign(parts[p].vertices.size() + 1, 0);
  }
  for (const auto& [src, dst] : graph.edges) {
    PartitionCsr& part = parts[PartitionOf(src, num_partitions)];
    ++counts[PartitionOf(src, num_partitions)][part.local.at(src) + 1];
  }
  for (int p = 0; p < num_partitions; ++p) {
    for (size_t i = 1; i < counts[p].size(); ++i) {
      counts[p][i] += counts[p][i - 1];
    }
    parts[p].offsets = counts[p];
    parts[p].targets.resize(counts[p].back());
    if (graph.weighted()) parts[p].weights.resize(counts[p].back());
  }
  std::vector<std::vector<int>> fill(num_partitions);
  for (int p = 0; p < num_partitions; ++p) fill[p] = parts[p].offsets;
  for (size_t e = 0; e < graph.edges.size(); ++e) {
    const auto& [src, dst] = graph.edges[e];
    const int p = PartitionOf(src, num_partitions);
    PartitionCsr& part = parts[p];
    const int at = fill[p][part.local.at(src)]++;
    part.targets[at] = dst;
    if (graph.weighted()) part.weights[at] = graph.weights[e];
  }
  for (int p = 0; p < num_partitions; ++p) {
    parts[p].byte_size = parts[p].vertices.size() * 16 +
                         parts[p].targets.size() *
                             (graph.weighted() ? 16 : 8);
  }
  return parts;
}

}  // namespace

size_t PregelResult::NumReached() const {
  size_t n = 0;
  for (double v : values) n += v != kInf;
  return n;
}

size_t PregelResult::NumDistinctValues() const {
  std::set<double> distinct;
  for (double v : values) {
    if (v != kInf) distinct.insert(v);
  }
  return distinct.size();
}

PregelResult RunPregel(const datagen::Graph& graph,
                       PregelAlgorithm algorithm,
                       const PregelOptions& options, Cluster* cluster) {
  const int P = cluster->config().num_partitions;
  std::vector<PartitionCsr> csr = BuildCsr(graph, P);

  PregelResult result;
  result.values.assign(graph.num_vertices, kInf);
  std::vector<bool> active(graph.num_vertices, false);

  // Superstep 0: initialize.
  switch (algorithm) {
    case PregelAlgorithm::kReach:
    case PregelAlgorithm::kSssp:
      if (options.source < graph.num_vertices) {
        result.values[options.source] = 0;
        active[options.source] = true;
      }
      break;
    case PregelAlgorithm::kConnectedComponents:
      for (int64_t v = 0; v < graph.num_vertices; ++v) {
        result.values[v] = static_cast<double>(v);
        active[v] = true;
      }
      break;
  }

  // Outgoing messages buffered between supersteps: per destination
  // partition, (vertex, value) pairs pre-combined by min.
  std::vector<std::vector<std::pair<int64_t, double>>> inbox(P);
  bool any_active = true;

  const bool graphx = options.profile == SystemProfile::kGraphX;

  while (any_active && result.supersteps < options.max_supersteps) {
    ++result.supersteps;
    std::vector<std::unordered_map<int64_t, double>> outbox(P);

    cluster->RunStage(
        (graphx ? "graphx-superstep-" : "giraph-superstep-") +
            std::to_string(result.supersteps),
        [&](int p) {
          TaskIo io;
          io.consumes_shuffle = true;
          io.cached_state_bytes = csr[p].byte_size;
          std::vector<size_t> bytes_out(P, 0);

          // Deliver incoming messages (min-combine into vertex values).
          for (const auto& [v, value] : inbox[p]) {
            if (value < result.values[v]) {
              result.values[v] = value;
              active[v] = true;
            }
          }
          inbox[p].clear();

          // Compute: every active vertex sends along its out-edges.
          const PartitionCsr& part = csr[p];
          for (size_t i = 0; i < part.vertices.size(); ++i) {
            const int64_t v = part.vertices[i];
            if (!active[v]) continue;
            active[v] = false;
            const double value = result.values[v];
            for (int e = part.offsets[i]; e < part.offsets[i + 1]; ++e) {
              const int64_t target = part.targets[e];
              double message;
              switch (algorithm) {
                case PregelAlgorithm::kReach:
                  message = value + 1;  // BFS depth
                  break;
                case PregelAlgorithm::kSssp:
                  message =
                      value + (part.weights.empty() ? 1.0 : part.weights[e]);
                  break;
                case PregelAlgorithm::kConnectedComponents:
                  message = value;  // label propagation
                  break;
              }
              if (message >= result.values[target]) continue;  // combiner
              const int dest = PartitionOf(target, P);
              auto [it, inserted] = outbox[dest].emplace(target, message);
              if (!inserted) {
                it->second = std::min(it->second, message);
              } else {
                bytes_out[dest] += 16;
              }
            }
          }
          io.shuffle_out_bytes = std::move(bytes_out);
          return io;
        });

    // GraphX profile: three more bookkeeping stages per superstep — the
    // vertex/edge RDD joins and re-creations its Pregel implementation
    // performs. The copies are real work; the shuffles move the vertex
    // state around.
    if (graphx) {
      for (int extra = 0; extra < 3; ++extra) {
        cluster->RunStage(
            "graphx-bookkeeping-" + std::to_string(result.supersteps) + "-" +
                std::to_string(extra),
            [&](int p) {
              TaskIo io;
              io.consumes_shuffle = extra == 0;
              // Re-create the vertex-attribute RDD: copy owned values.
              std::vector<double> copy;
              copy.reserve(csr[p].vertices.size());
              for (int64_t v : csr[p].vertices) {
                copy.push_back(result.values[v]);
              }
              // Keep the copy alive long enough to be "the new RDD".
              io.cached_state_bytes = copy.size() * 8;
              io.shuffle_out_bytes.assign(P, copy.size() * 8 / P);
              return io;
            });
      }
    }

    // Route messages.
    any_active = false;
    for (int p = 0; p < P; ++p) {
      for (const auto& [v, value] : outbox[p]) {
        inbox[p].emplace_back(v, value);
      }
      if (!inbox[p].empty()) any_active = true;
    }
  }
  return result;
}

PregelResult RunTreeAggregate(const datagen::Graph& graph,
                              const std::vector<double>& initial,
                              const TreeAggregateOptions& options,
                              dist::Cluster* cluster) {
  RASQL_CHECK(static_cast<int64_t>(initial.size()) == graph.num_vertices);
  const int P = cluster->config().num_partitions;
  std::vector<PartitionCsr> csr = BuildCsr(graph, P);
  const bool graphx = options.profile == SystemProfile::kGraphX;

  PregelResult result;
  result.values = initial;
  // A vertex may fire (report to its parent) once all children reported.
  std::vector<int> pending(graph.num_vertices, 0);
  std::vector<int64_t> parent(graph.num_vertices, -1);
  for (const auto& [p, c] : graph.edges) {
    ++pending[p];
    parent[c] = p;
  }
  std::vector<std::vector<std::pair<int64_t, double>>> inbox(P);
  std::vector<bool> fired(graph.num_vertices, false);

  bool done = false;
  while (!done && result.supersteps < options.max_supersteps) {
    ++result.supersteps;
    std::vector<std::vector<std::pair<int64_t, double>>> outbox(P);
    bool fired_any = false;

    cluster->RunStage(
        (graphx ? "graphx-tree-" : "giraph-tree-") +
            std::to_string(result.supersteps),
        [&](int p) {
          TaskIo io;
          io.consumes_shuffle = true;
          io.cached_state_bytes = csr[p].byte_size;
          std::vector<size_t> bytes_out(P, 0);
          // Deliver child reports.
          for (const auto& [v, value] : inbox[p]) {
            if (options.combine == TreeCombine::kSum) {
              result.values[v] += value;
            } else {
              result.values[v] = std::max(result.values[v], value);
            }
            --pending[v];
          }
          inbox[p].clear();
          // Fire ready vertices.
          for (int64_t v : csr[p].vertices) {
            if (fired[v] || pending[v] != 0) continue;
            fired[v] = true;
            fired_any = true;
            if (parent[v] >= 0) {
              const int dest = PartitionOf(parent[v], P);
              outbox[dest].emplace_back(parent[v],
                                        options.edge_factor *
                                            result.values[v]);
              bytes_out[dest] += 16;
            }
          }
          io.shuffle_out_bytes = std::move(bytes_out);
          return io;
        });

    if (graphx) {
      for (int extra = 0; extra < 3; ++extra) {
        cluster->RunStage("graphx-tree-bookkeeping-" +
                              std::to_string(result.supersteps) + "-" +
                              std::to_string(extra),
                          [&](int p) {
                            TaskIo io;
                            io.consumes_shuffle = extra == 0;
                            std::vector<double> copy;
                            copy.reserve(csr[p].vertices.size());
                            for (int64_t v : csr[p].vertices) {
                              copy.push_back(result.values[v]);
                            }
                            io.cached_state_bytes = copy.size() * 8;
                            io.shuffle_out_bytes.assign(P,
                                                        copy.size() * 8 / P);
                            return io;
                          });
      }
    }

    done = true;
    for (int p = 0; p < P; ++p) {
      for (const auto& [v, value] : outbox[p]) {
        inbox[p].emplace_back(v, value);
      }
      if (!inbox[p].empty()) done = false;
    }
    if (!fired_any && done) break;
  }
  return result;
}

}  // namespace rasql::baselines
