#ifndef RASQL_BASELINES_PREGEL_PREGEL_H_
#define RASQL_BASELINES_PREGEL_PREGEL_H_

#include <limits>
#include <vector>

#include "datagen/graph_gen.h"
#include "dist/cluster.h"

namespace rasql::baselines {

/// The three library algorithms every compared system ships (paper
/// Sec. 8.1): BFS reachability, label-propagation connected components,
/// and single-source shortest paths. All three are min-combining
/// vertex-centric programs.
enum class PregelAlgorithm {
  kReach,
  kConnectedComponents,
  kSssp,
};

/// Which system's execution profile to model. Both run the same real
/// per-vertex computation; they differ in how many stages a superstep
/// costs and whether per-superstep state is rebuilt:
///  - kGiraph: one combined stage per superstep, in-place vertex state
///    (plus Giraph's tuned compute path).
///  - kGraphX: four ShuffleMap stages per superstep and vertex/edge RDD
///    re-creation (state copied) — the inefficiencies the paper observed
///    when digging into GraphX's plans (Sec. 8.1).
enum class SystemProfile {
  kGiraph,
  kGraphX,
};

struct PregelOptions {
  SystemProfile profile = SystemProfile::kGiraph;
  int max_supersteps = 10000;
  /// Source vertex for kReach / kSssp.
  int64_t source = 0;
};

struct PregelResult {
  /// Final vertex values: distance (kSssp), component label (kCC), or
  /// 0/1 reached flag... kReach stores the BFS depth, unreached =
  /// +infinity.
  std::vector<double> values;
  int supersteps = 0;

  /// Number of vertices with a finite value (reached / labeled).
  size_t NumReached() const;
  /// Number of distinct finite values (for CC: component count).
  size_t NumDistinctValues() const;
};

/// Runs a vertex-centric computation over the simulated cluster. Vertex
/// compute is real and measured; message placement and stage scheduling
/// follow the system profile. Metrics accumulate into `cluster->metrics()`.
PregelResult RunPregel(const datagen::Graph& graph, PregelAlgorithm algorithm,
                       const PregelOptions& options, dist::Cluster* cluster);

/// Bottom-up tree aggregation — the vertex-centric implementation of the
/// paper's complex-analytics queries (Sec. 8.2): Delivery (max of children),
/// Management (sum of children), MLM (weighted sum). A vertex fires once
/// all of its children have reported; messages carry
/// `edge_factor * child_value`.
enum class TreeCombine { kSum, kMax };

struct TreeAggregateOptions {
  SystemProfile profile = SystemProfile::kGiraph;
  TreeCombine combine = TreeCombine::kSum;
  /// Multiplier applied to a child's value as it flows to the parent
  /// (MLM's 0.5; 1.0 otherwise).
  double edge_factor = 1.0;
  int max_supersteps = 10000;
};

/// `initial[v]` is vertex v's own contribution (leaf days, own sales bonus,
/// or 1 per employee). `graph` holds parent->child edges. Returns the final
/// per-vertex aggregate and superstep count.
PregelResult RunTreeAggregate(const datagen::Graph& graph,
                              const std::vector<double>& initial,
                              const TreeAggregateOptions& options,
                              dist::Cluster* cluster);

}  // namespace rasql::baselines

#endif  // RASQL_BASELINES_PREGEL_PREGEL_H_
