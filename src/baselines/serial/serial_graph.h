#ifndef RASQL_BASELINES_SERIAL_SERIAL_GRAPH_H_
#define RASQL_BASELINES_SERIAL_SERIAL_GRAPH_H_

#include <cstdint>
#include <vector>

#include "datagen/graph_gen.h"

namespace rasql::baselines {

/// Compressed-sparse-row adjacency, the format the GAP benchmark suite and
/// COST-style single-threaded baselines operate on (paper Fig. 9 /
/// Table 3). Building it corresponds to GAP's graph-loading step.
struct Csr {
  int64_t num_vertices = 0;
  std::vector<int64_t> offsets;  // size num_vertices + 1
  std::vector<int64_t> targets;
  std::vector<double> weights;   // empty when unweighted

  static Csr Build(const datagen::Graph& graph);
};

/// Single-threaded BFS from `source`; returns per-vertex depth (-1 =
/// unreachable). The REACH baseline.
std::vector<int64_t> SerialBfs(const Csr& graph, int64_t source);

/// Single-threaded label-propagation connected components (the algorithm
/// the paper attributes to GAP-Serial/COST in Table 3). Treats edges as
/// undirected by iterating until no label changes. Returns per-vertex
/// component labels.
std::vector<int64_t> SerialCcLabelProp(const Csr& graph);

/// Single-threaded SSSP via Bellman-Ford-style rounds over active
/// vertices (delta-stepping degenerate form). Returns per-vertex distance
/// (+inf = unreachable).
std::vector<double> SerialSssp(const Csr& graph, int64_t source);

}  // namespace rasql::baselines

#endif  // RASQL_BASELINES_SERIAL_SERIAL_GRAPH_H_
