#include "baselines/serial/serial_graph.h"

#include <deque>
#include <limits>

namespace rasql::baselines {

Csr Csr::Build(const datagen::Graph& graph) {
  Csr csr;
  csr.num_vertices = graph.num_vertices;
  csr.offsets.assign(graph.num_vertices + 1, 0);
  for (const auto& [src, dst] : graph.edges) ++csr.offsets[src + 1];
  for (int64_t v = 0; v < graph.num_vertices; ++v) {
    csr.offsets[v + 1] += csr.offsets[v];
  }
  csr.targets.resize(graph.edges.size());
  if (graph.weighted()) csr.weights.resize(graph.edges.size());
  std::vector<int64_t> cursor = csr.offsets;
  for (size_t e = 0; e < graph.edges.size(); ++e) {
    const auto& [src, dst] = graph.edges[e];
    const int64_t at = cursor[src]++;
    csr.targets[at] = dst;
    if (graph.weighted()) csr.weights[at] = graph.weights[e];
  }
  return csr;
}

std::vector<int64_t> SerialBfs(const Csr& graph, int64_t source) {
  std::vector<int64_t> depth(graph.num_vertices, -1);
  if (source < 0 || source >= graph.num_vertices) return depth;
  std::deque<int64_t> queue = {source};
  depth[source] = 0;
  while (!queue.empty()) {
    const int64_t v = queue.front();
    queue.pop_front();
    for (int64_t e = graph.offsets[v]; e < graph.offsets[v + 1]; ++e) {
      const int64_t w = graph.targets[e];
      if (depth[w] < 0) {
        depth[w] = depth[v] + 1;
        queue.push_back(w);
      }
    }
  }
  return depth;
}

std::vector<int64_t> SerialCcLabelProp(const Csr& graph) {
  std::vector<int64_t> label(graph.num_vertices);
  for (int64_t v = 0; v < graph.num_vertices; ++v) label[v] = v;
  bool changed = true;
  while (changed) {
    changed = false;
    for (int64_t v = 0; v < graph.num_vertices; ++v) {
      for (int64_t e = graph.offsets[v]; e < graph.offsets[v + 1]; ++e) {
        const int64_t w = graph.targets[e];
        // Undirected treatment: labels flow both ways across an edge.
        if (label[v] < label[w]) {
          label[w] = label[v];
          changed = true;
        } else if (label[w] < label[v]) {
          label[v] = label[w];
          changed = true;
        }
      }
    }
  }
  return label;
}

std::vector<double> SerialSssp(const Csr& graph, int64_t source) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(graph.num_vertices, kInf);
  if (source < 0 || source >= graph.num_vertices) return dist;
  dist[source] = 0;
  std::deque<int64_t> active = {source};
  std::vector<bool> queued(graph.num_vertices, false);
  queued[source] = true;
  while (!active.empty()) {
    const int64_t v = active.front();
    active.pop_front();
    queued[v] = false;
    const double dv = dist[v];
    for (int64_t e = graph.offsets[v]; e < graph.offsets[v + 1]; ++e) {
      const int64_t w = graph.targets[e];
      const double cand =
          dv + (graph.weights.empty() ? 1.0 : graph.weights[e]);
      if (cand < dist[w]) {
        dist[w] = cand;
        if (!queued[w]) {
          queued[w] = true;
          active.push_back(w);
        }
      }
    }
  }
  return dist;
}

}  // namespace rasql::baselines
