#ifndef RASQL_BASELINES_SQLLOOP_SQL_LOOP_H_
#define RASQL_BASELINES_SQLLOOP_SQL_LOOP_H_

#include <map>
#include <string>

#include "analysis/analyzed_query.h"
#include "common/status.h"
#include "dist/cluster.h"
#include "storage/relation.h"

namespace rasql::baselines {

/// How the hand-written loop evaluates the recursion (paper Sec. 8.2:
/// Spark-SQL-Naive and Spark-SQL-SN — "optimized Spark programs to
/// simulate the Semi-Naive and naive recursive evaluation using a mix of
/// Scala loops and Spark SQLs").
enum class SqlLoopMode {
  /// Re-join the full accumulated relation every iteration and re-aggregate
  /// everything from scratch.
  kNaive,
  /// Delta-driven, but without the fixpoint operator's machinery: the
  /// `all` relation is an immutable dataset copied every iteration, the
  /// diff re-shuffles `all`, join hash tables are rebuilt per statement,
  /// and no stage combination or partition-aware scheduling applies.
  kSemiNaive,
};

struct SqlLoopStats {
  int iterations = 0;
  /// Simulated time spent producing the delta (join + aggregate stages) —
  /// the solid bars of paper Fig. 10.
  double delta_time_sec = 0;
  /// Simulated time of the whole loop (delta + diff + union/copy stages).
  double total_time_sec = 0;
  bool hit_iteration_limit = false;
};

/// Runs the recursion of a single-view clique as an iterative sequence of
/// SQL statements over the simulated cluster. Results are identical to the
/// fixpoint operator; the cost structure is what differs.
common::Result<storage::Relation> RunSqlLoop(
    const analysis::RecursiveClique& clique,
    const std::map<std::string, const storage::Relation*>& tables,
    SqlLoopMode mode, dist::Cluster* cluster, SqlLoopStats* stats,
    int64_t max_iterations = 1'000'000);

}  // namespace rasql::baselines

#endif  // RASQL_BASELINES_SQLLOOP_SQL_LOOP_H_
