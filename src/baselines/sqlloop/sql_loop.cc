#include "baselines/sqlloop/sql_loop.h"

#include <unordered_map>

#include "common/check.h"
#include "dist/aggregates.h"
#include "dist/set_rdd.h"
#include "fixpoint/local_fixpoint.h"
#include "physical/executor.h"
#include "runtime/stage_accumulators.h"

namespace rasql::baselines {

using analysis::RecursiveView;
using common::Result;
using common::Status;
using dist::AggSpec;
using dist::StageSpec;
using dist::TaskContext;
using storage::Relation;
using storage::Row;

namespace {

/// Shorthand for the stage claim declarations below.
constexpr verify::AccessMode kReadShared = verify::AccessMode::kReadShared;
constexpr verify::AccessMode kPartitionOwned =
    verify::AccessMode::kPartitionOwned;
constexpr verify::AccessMode kSingleTask = verify::AccessMode::kSingleTask;

/// Evaluates all recursive plans with the reference bound to `bound`,
/// splitting the work into P slices executed as one cluster stage. The
/// base tables are re-read in full by every statement (vanilla Spark SQL
/// re-shuffles them every iteration — no cached co-partitioning).
Result<std::vector<Row>> JoinStage(
    const RecursiveView& view,
    const std::map<std::string, const Relation*>& tables,
    const Relation& bound, size_t base_bytes, dist::Cluster* cluster,
    const std::string& stage_name) {
  const int P = cluster->config().num_partitions;
  // Per-task candidate slots, merged after the barrier in partition order
  // so the result is identical at any thread count.
  std::vector<std::vector<Row>> cand(P);
  runtime::StageStatus failure(P);
  StageSpec stage;
  stage.name = stage_name;
  stage.kind = StageSpec::Kind::kShuffleMap;
  stage.status = &failure;
  stage.Claim(&cand, kPartitionOwned, "join-candidates")
      .Claim(&bound, kReadShared, "bound-relation");
  cluster->RunStage(stage, [&](TaskContext& task) {
    const int p = task.partition();
    // Slice the bound relation round-robin across tasks.
    Relation slice(bound.schema());
    Row scratch;
    for (size_t i = p; i < bound.size(); i += P) {
      bound.MaterializeRowInto(i, &scratch);
      slice.Add(scratch);
    }
    physical::ExecContext ctx;
    ctx.tables = tables;
    ctx.recursive_resolver =
        [&](const plan::RecursiveRefNode&) -> const Relation* {
      return &slice;
    };
    size_t bytes = 0;
    for (const plan::PlanPtr& plan : view.recursive_plans) {
      auto result = physical::Execute(*plan, ctx);
      if (!result.ok()) {
        task.Fail(result.status());
        break;
      }
      bytes += result->ByteSize();
      for (Row& row : result->TakeRows()) {
        cand[p].push_back(std::move(row));
      }
    }
    // Candidates are shuffled by key, and the base relation is re-shuffled
    // for the join (no cached partitioning across statements).
    task.ReportShuffleBytes(
        std::vector<size_t>(P, (bytes + base_bytes / P) / P));
  });
  RASQL_RETURN_IF_ERROR(failure.First());
  std::vector<Row> candidates;
  for (int p = 0; p < P; ++p) {
    for (Row& row : cand[p]) candidates.push_back(std::move(row));
  }
  return candidates;
}

}  // namespace

Result<Relation> RunSqlLoop(
    const analysis::RecursiveClique& clique,
    const std::map<std::string, const Relation*>& tables, SqlLoopMode mode,
    dist::Cluster* cluster, SqlLoopStats* stats, int64_t max_iterations) {
  SqlLoopStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  if (clique.views.size() != 1) {
    return Status::InvalidArgument(
        "SQL-loop baselines support single-view recursions");
  }
  const RecursiveView& view = clique.views[0];
  const AggSpec spec = AggSpec::For(view.schema.num_columns(),
                                    view.agg_column, view.aggregate);
  const int P = cluster->config().num_partitions;

  size_t base_bytes = 0;
  for (const auto& [name, rel] : tables) base_bytes += rel->ByteSize();

  // Base case (one SQL statement).
  physical::ExecContext base_ctx;
  base_ctx.tables = tables;
  std::vector<Row> base_rows;
  for (const plan::PlanPtr& plan : view.base_plans) {
    RASQL_ASSIGN_OR_RETURN(Relation rel,
                           physical::Execute(*plan, base_ctx));
    for (Row& row : rel.TakeRows()) base_rows.push_back(std::move(row));
  }
  base_rows = dist::PartialAggregate(std::move(base_rows), spec);

  // Mutable state held like the fixpoint's, but every union below also
  // pays the immutable-RDD copy of the full relation.
  dist::SetRddPartition state(view.schema, spec);
  std::vector<Row> delta;
  state.MergeDelta(base_rows, &delta);

  const double time_before = cluster->metrics().TotalSimTime();

  if (mode == SqlLoopMode::kNaive) {
    // all_{i+1} = γ(base ∪ T(all_i)); compare with all_i.
    Relation all(view.schema, std::move(base_rows));
    all.SortRows();
    while (true) {
      if (stats->iterations >= max_iterations) {
        stats->hit_iteration_limit = true;
        break;
      }
      ++stats->iterations;
      const double t0 = cluster->metrics().TotalSimTime();
      RASQL_ASSIGN_OR_RETURN(
          std::vector<Row> candidates,
          JoinStage(view, tables, all, base_bytes, cluster,
                    "sqlnaive-join-" + std::to_string(stats->iterations)));

      // Full re-aggregation of base ∪ candidates, as the user's GROUP BY
      // statement would do (shuffles everything).
      Relation next(view.schema);
      runtime::StageStatus failure(P);
      StageSpec agg_stage;
      agg_stage.name = "sqlnaive-agg-" + std::to_string(stats->iterations);
      agg_stage.kind = StageSpec::Kind::kShuffleReduce;
      agg_stage.status = &failure;
      agg_stage.Claim(&next, kSingleTask, "next-relation")
          .Claim(&candidates, kSingleTask, "candidates");
      cluster->RunStage(agg_stage, [&](TaskContext& task) {
        // Single-writer body: only task 0 touches `next`/`candidates`.
        if (task.partition() != 0) return;
        // X_{n+1} = γ(base ∪ T(X_n)) — everything re-derived and
        // re-aggregated from scratch (do NOT fold X_n in: that would
        // double-count sum/count groups).
        std::vector<Row> rows = std::move(candidates);
        physical::ExecContext ctx;
        ctx.tables = tables;
        for (const plan::PlanPtr& plan : view.base_plans) {
          auto result = physical::Execute(*plan, ctx);
          if (!result.ok()) {
            task.Fail(result.status());
            return;
          }
          for (Row& row : result->TakeRows()) {
            rows.push_back(std::move(row));
          }
        }
        next = Relation(view.schema,
                        dist::PartialAggregate(std::move(rows), spec));
        next.SortRows();
      });
      RASQL_RETURN_IF_ERROR(failure.First());
      stats->delta_time_sec += cluster->metrics().TotalSimTime() - t0;

      // Compare stage (the user's count()/except check).
      bool unchanged = false;
      StageSpec compare_stage;
      compare_stage.name =
          "sqlnaive-compare-" + std::to_string(stats->iterations);
      compare_stage.Claim(&unchanged, kSingleTask, "unchanged-flag")
          .Claim(&next, kReadShared, "next-relation")
          .Claim(&all, kReadShared, "all-relation");
      cluster->RunStage(compare_stage, [&](TaskContext& task) {
        if (task.partition() == 0) unchanged = storage::SameBag(next, all);
        task.ReportCachedState(all.ByteSize() / P);
      });
      all = std::move(next);
      if (unchanged) break;
    }
    stats->total_time_sec =
        cluster->metrics().TotalSimTime() - time_before;
    return all;
  }

  // ---- Semi-naive loop ----
  while (!delta.empty()) {
    if (stats->iterations >= max_iterations) {
      stats->hit_iteration_limit = true;
      break;
    }
    ++stats->iterations;
    const double t0 = cluster->metrics().TotalSimTime();

    Relation delta_rel(view.schema, std::move(delta));
    delta.clear();
    RASQL_ASSIGN_OR_RETURN(
        std::vector<Row> candidates,
        JoinStage(view, tables, delta_rel, base_bytes, cluster,
                  "sqlsn-join-" + std::to_string(stats->iterations)));

    // Aggregate the candidates (a GROUP BY statement).
    StageSpec agg_stage;
    agg_stage.name = "sqlsn-agg-" + std::to_string(stats->iterations);
    agg_stage.kind = StageSpec::Kind::kShuffleReduce;
    agg_stage.Claim(&candidates, kSingleTask, "candidates");
    cluster->RunStage(agg_stage, [&](TaskContext& task) {
      if (task.partition() != 0) return;
      candidates = dist::PartialAggregate(std::move(candidates), spec);
    });
    stats->delta_time_sec += cluster->metrics().TotalSimTime() - t0;

    // Diff against `all` (EXCEPT / anti-join): the full `all` relation is
    // re-shuffled and its lookup structure rebuilt — there is no SetRDD.
    const size_t all_bytes = state.byte_size();
    StageSpec diff_stage;
    diff_stage.name = "sqlsn-diff-" + std::to_string(stats->iterations);
    diff_stage.kind = StageSpec::Kind::kCombined;
    diff_stage.Claim(&state, kSingleTask, "state")
        .Claim(&delta, kSingleTask, "delta")
        .Claim(&candidates, kReadShared, "candidates");
    cluster->RunStage(diff_stage, [&](TaskContext& task) {
      if (task.partition() == 0) state.MergeDelta(candidates, &delta);
      task.ReportShuffleBytes(
          std::vector<size_t>(P, all_bytes / (P * P)));
    });

    // Union stage: `all ∪ delta` materializes a brand-new dataset, copying
    // the accumulated rows (the immutable-RDD tax SetRDD avoids).
    StageSpec union_stage;
    union_stage.name = "sqlsn-union-" + std::to_string(stats->iterations);
    union_stage.Claim(&state, kReadShared, "state");
    cluster->RunStage(union_stage, [&](TaskContext& task) {
      if (task.partition() != 0) return;
      Relation copy = state.ToRelation();  // real copy
      task.ReportCachedState(copy.ByteSize());
    });
  }
  stats->total_time_sec = cluster->metrics().TotalSimTime() - time_before;
  return state.ToRelation();
}

}  // namespace rasql::baselines
