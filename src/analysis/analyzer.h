#ifndef RASQL_ANALYSIS_ANALYZER_H_
#define RASQL_ANALYSIS_ANALYZER_H_

#include <map>
#include <string>
#include <vector>

#include "analysis/analyzed_query.h"
#include "analysis/catalog.h"
#include "common/status.h"
#include "sql/ast.h"

namespace rasql::lint {
class DiagnosticEngine;
}  // namespace rasql::lint

namespace rasql::analysis {

/// Semantic analysis: name resolution, typing, implicit group-by, and the
/// paper's two-step recursive compilation (Sec. 5):
///
///  1. Recursive table references are recognized and become
///     RecursiveRefNode "mark points"; CTEs are grouped into recursive
///     cliques (SCCs of the dependency graph) in topological order.
///  2. Each branch is compiled to a logical plan (cross products + filters
///     + projections, or full aggregation for plain SQL selects); view
///     schemas are inferred iteratively across the clique.
class Analyzer {
 public:
  explicit Analyzer(const Catalog* catalog) : catalog_(catalog) {}

  /// Attaches a diagnostic sink. When set, Analyze() reports non-fatal
  /// findings (e.g. the semi-naive safety verdicts, RASQL-N001/N002)
  /// through it; hard errors still surface as Status.
  void set_diagnostics(lint::DiagnosticEngine* engine) {
    diagnostics_ = engine;
  }

  /// Analyzes a full RaSQL query (WITH views + body).
  common::Result<AnalyzedQuery> Analyze(const sql::Query& query);

  /// Analyzes a standalone SELECT (CREATE VIEW definitions). The statement
  /// may reference only catalog tables.
  common::Result<plan::PlanPtr> AnalyzeSelect(const sql::SelectStmt& select);

 private:
  /// Resolution scope: binding name -> (offset of its first column in the
  /// concatenated input row, schema, is_recursive_ref flag).
  struct Binding {
    std::string name;
    int offset = 0;
    const storage::Schema* schema = nullptr;
    bool is_recursive = false;
  };
  struct Scope {
    std::vector<Binding> bindings;
    int total_columns = 0;
    int next_recursive_ordinal = 0;
  };

  /// View schemas visible while analyzing (earlier cliques + the clique
  /// under inference).
  common::Result<plan::PlanPtr> AnalyzeSelectImpl(
      const sql::SelectStmt& select,
      const std::map<std::string, storage::Schema>& clique_views,
      bool* references_clique);

  common::Result<plan::PlanPtr> BuildFromClause(
      const sql::SelectStmt& select,
      const std::map<std::string, storage::Schema>& clique_views,
      Scope* scope, bool* references_clique);

  common::Result<expr::ExprPtr> ResolveExpr(const sql::AstExpr& ast,
                                            const Scope& scope);
  common::Result<expr::ExprPtr> ResolveColumn(const sql::AstExpr& ast,
                                              const Scope& scope);

  /// Aggregate-path resolution of a post-GROUP BY expression: group
  /// expressions and aggregate calls are replaced by references into the
  /// AggregateNode's output.
  common::Result<expr::ExprPtr> ResolveAfterAggregate(
      const sql::AstExpr& ast, const Scope& input_scope,
      const std::vector<const sql::AstExpr*>& group_asts,
      const std::vector<const sql::AstExpr*>& agg_asts,
      const storage::Schema& agg_schema);

  const Catalog* catalog_;
  /// Optional sink for non-fatal analysis findings; not owned.
  lint::DiagnosticEngine* diagnostics_ = nullptr;
  /// Schemas of views materialized earlier in this query (previous cliques).
  std::map<std::string, storage::Schema> view_schemas_;
};

/// Structural equality of AST expressions (case-insensitive identifiers);
/// used to match GROUP BY expressions and aggregate calls.
bool AstEqual(const sql::AstExpr& a, const sql::AstExpr& b);

/// True when the AST contains an aggregate call.
bool ContainsAggCall(const sql::AstExpr& ast);

}  // namespace rasql::analysis

#endif  // RASQL_ANALYSIS_ANALYZER_H_
