#include "analysis/analyzed_query.h"

#include "plan/optimizer.h"

namespace rasql::analysis {

void AnalyzedQuery::Optimize(const plan::OptimizerOptions& options) {
  for (RecursiveClique& clique : cliques) {
    for (RecursiveView& view : clique.views) {
      for (plan::PlanPtr& p : view.base_plans) {
        p = plan::Optimize(std::move(p), options);
      }
      for (plan::PlanPtr& p : view.recursive_plans) {
        p = plan::Optimize(std::move(p), options);
      }
    }
  }
  if (body) body = plan::Optimize(std::move(body), options);
}


std::string AnalyzedQuery::ToString() const {
  std::string out;
  for (size_t i = 0; i < cliques.size(); ++i) {
    const RecursiveClique& clique = cliques[i];
    out += "=== Clique " + std::to_string(i) +
           (clique.IsRecursive() ? " (recursive)" : "") + " ===\n";
    for (const RecursiveView& view : clique.views) {
      out += "View " + view.name + " [" + view.schema.ToString() + "]";
      if (view.aggregate != expr::AggregateFunction::kNone) {
        out += " agg=" +
               std::string(expr::AggregateFunctionName(view.aggregate)) +
               "(col#" + std::to_string(view.agg_column) + ")";
      }
      if (!view.semi_naive_safe) out += " [naive-only]";
      out += "\n";
      for (const plan::PlanPtr& p : view.base_plans) {
        out += " Base:\n" + p->ToString(2);
      }
      for (const plan::PlanPtr& p : view.recursive_plans) {
        out += " Recursive:\n" + p->ToString(2);
      }
    }
  }
  out += "=== Body ===\n";
  out += body->ToString(0);
  return out;
}

}  // namespace rasql::analysis
