#include "analysis/analyzer.h"

#include <algorithm>
#include <functional>
#include <set>

#include "common/check.h"
#include "lint/diagnostic.h"
#include "lint/monotonicity.h"
#include "sql/parser.h"

namespace rasql::analysis {

using common::Result;
using common::Status;
using expr::AggregateFunction;
using expr::BinaryOp;
using expr::ExprPtr;
using plan::PlanPtr;
using sql::AstExpr;
using storage::EqualsIgnoreCase;
using storage::Schema;
using storage::ToLower;
using storage::ValueType;

namespace {

/// Output column name for a select item.
std::string ItemName(const sql::SelectItem& item, int index) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->kind == AstExpr::Kind::kColumn) return item.expr->name;
  if (item.expr->kind == AstExpr::Kind::kAggCall) {
    return expr::AggregateFunctionName(item.expr->agg_fn);
  }
  return "_c" + std::to_string(index);
}

/// Unifies a known column type with a newly observed one. kNull acts as
/// "unknown". Returns nullopt on a hard conflict (string vs numeric).
std::optional<ValueType> UnifyTypes(ValueType a, ValueType b) {
  if (a == b) return a;
  if (a == ValueType::kNull) return b;
  if (b == ValueType::kNull) return a;
  const bool a_num = a == ValueType::kInt64 || a == ValueType::kDouble;
  const bool b_num = b == ValueType::kInt64 || b == ValueType::kDouble;
  if (a_num && b_num) return ValueType::kDouble;
  return std::nullopt;
}

/// Collects (deduplicated, in discovery order) aggregate calls in an AST.
void CollectAggCalls(const AstExpr& ast,
                     std::vector<const AstExpr*>* out) {
  if (ast.kind == AstExpr::Kind::kAggCall) {
    for (const AstExpr* existing : *out) {
      if (AstEqual(*existing, ast)) return;
    }
    out->push_back(&ast);
    return;  // nested aggregates are rejected during resolution
  }
  if (ast.lhs) CollectAggCalls(*ast.lhs, out);
  if (ast.rhs) CollectAggCalls(*ast.rhs, out);
}

/// Walks an expression tree checking that every node has a known type.
Status VerifyExprTyped(const expr::Expr& e, const std::string& context) {
  if (e.output_type() == ValueType::kNull &&
      e.kind() != expr::Expr::Kind::kLiteral) {
    return Status::AnalysisError("type error in " + context + ": '" +
                                 e.ToString() +
                                 "' has incompatible operand types");
  }
  switch (e.kind()) {
    case expr::Expr::Kind::kBinary: {
      const auto& bin = static_cast<const expr::BinaryExpr&>(e);
      RASQL_RETURN_IF_ERROR(VerifyExprTyped(bin.lhs(), context));
      return VerifyExprTyped(bin.rhs(), context);
    }
    case expr::Expr::Kind::kNot:
      return VerifyExprTyped(
          static_cast<const expr::NotExpr&>(e).input(), context);
    case expr::Expr::Kind::kNegate:
      return VerifyExprTyped(
          static_cast<const expr::NegateExpr&>(e).input(), context);
    default:
      return Status::OK();
  }
}

/// Recursively verifies that all expressions in a plan are fully typed.
Status VerifyPlanTyped(const plan::LogicalPlan& p) {
  switch (p.kind()) {
    case plan::PlanKind::kFilter:
      RASQL_RETURN_IF_ERROR(VerifyExprTyped(
          static_cast<const plan::FilterNode&>(p).predicate(), "WHERE"));
      break;
    case plan::PlanKind::kProject:
      for (const ExprPtr& e :
           static_cast<const plan::ProjectNode&>(p).exprs()) {
        RASQL_RETURN_IF_ERROR(VerifyExprTyped(*e, "SELECT"));
      }
      break;
    case plan::PlanKind::kAggregate: {
      const auto& agg = static_cast<const plan::AggregateNode&>(p);
      for (const ExprPtr& e : agg.group_exprs()) {
        RASQL_RETURN_IF_ERROR(VerifyExprTyped(*e, "GROUP BY"));
      }
      for (const plan::AggregateItem& item : agg.items()) {
        if (item.argument) {
          RASQL_RETURN_IF_ERROR(VerifyExprTyped(*item.argument, "aggregate"));
        }
      }
      break;
    }
    default:
      break;
  }
  for (const PlanPtr& child : p.children()) {
    RASQL_RETURN_IF_ERROR(VerifyPlanTyped(*child));
  }
  return Status::OK();
}

}  // namespace

bool AstEqual(const AstExpr& a, const AstExpr& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case AstExpr::Kind::kColumn:
      return EqualsIgnoreCase(a.qualifier, b.qualifier) &&
             EqualsIgnoreCase(a.name, b.name);
    case AstExpr::Kind::kLiteral:
      return a.literal == b.literal && a.literal.type() == b.literal.type();
    case AstExpr::Kind::kBinary:
      return a.op == b.op && AstEqual(*a.lhs, *b.lhs) &&
             AstEqual(*a.rhs, *b.rhs);
    case AstExpr::Kind::kNot:
    case AstExpr::Kind::kNegate:
      return AstEqual(*a.lhs, *b.lhs);
    case AstExpr::Kind::kAggCall:
      if (a.agg_fn != b.agg_fn || a.distinct != b.distinct) return false;
      if ((a.lhs == nullptr) != (b.lhs == nullptr)) return false;
      return a.lhs == nullptr || AstEqual(*a.lhs, *b.lhs);
    case AstExpr::Kind::kStar:
      return true;
  }
  return false;
}

bool ContainsAggCall(const AstExpr& ast) {
  if (ast.kind == AstExpr::Kind::kAggCall) return true;
  if (ast.lhs && ContainsAggCall(*ast.lhs)) return true;
  if (ast.rhs && ContainsAggCall(*ast.rhs)) return true;
  return false;
}

Result<ExprPtr> Analyzer::ResolveColumn(const AstExpr& ast,
                                        const Scope& scope) {
  const Binding* found_binding = nullptr;
  int found_index = -1;
  for (const Binding& binding : scope.bindings) {
    if (!ast.qualifier.empty() &&
        !EqualsIgnoreCase(ast.qualifier, binding.name)) {
      continue;
    }
    const int idx = binding.schema->FindColumn(ast.name);
    if (idx < 0) continue;
    if (found_binding != nullptr) {
      return Status::AnalysisError("ambiguous column reference '" +
                                   ast.ToString() + "'");
    }
    found_binding = &binding;
    found_index = idx;
  }
  if (found_binding == nullptr) {
    return Status::AnalysisError("unknown column '" + ast.ToString() + "'");
  }
  const storage::Column& col = found_binding->schema->column(found_index);
  return expr::MakeColumnRef(found_binding->offset + found_index, col.type,
                             col.name);
}

Result<ExprPtr> Analyzer::ResolveExpr(const AstExpr& ast, const Scope& scope) {
  switch (ast.kind) {
    case AstExpr::Kind::kColumn:
      return ResolveColumn(ast, scope);
    case AstExpr::Kind::kLiteral:
      return expr::MakeLiteral(ast.literal);
    case AstExpr::Kind::kBinary: {
      RASQL_ASSIGN_OR_RETURN(ExprPtr lhs, ResolveExpr(*ast.lhs, scope));
      RASQL_ASSIGN_OR_RETURN(ExprPtr rhs, ResolveExpr(*ast.rhs, scope));
      return expr::MakeBinary(ast.op, std::move(lhs), std::move(rhs));
    }
    case AstExpr::Kind::kNot: {
      RASQL_ASSIGN_OR_RETURN(ExprPtr input, ResolveExpr(*ast.lhs, scope));
      return ExprPtr(std::make_unique<expr::NotExpr>(std::move(input)));
    }
    case AstExpr::Kind::kNegate: {
      RASQL_ASSIGN_OR_RETURN(ExprPtr input, ResolveExpr(*ast.lhs, scope));
      return ExprPtr(std::make_unique<expr::NegateExpr>(std::move(input)));
    }
    case AstExpr::Kind::kAggCall:
      return Status::AnalysisError(
          "aggregate '" + ast.ToString() +
          "' is not allowed here (only in SELECT items and HAVING)");
    case AstExpr::Kind::kStar:
      return Status::AnalysisError("'*' is only allowed inside count(*)");
  }
  return Status::Internal("unhandled AST node");
}

Result<PlanPtr> Analyzer::BuildFromClause(
    const sql::SelectStmt& select,
    const std::map<std::string, Schema>& clique_views, Scope* scope,
    bool* references_clique) {
  if (select.from.empty()) {
    // FROM-less select: a single empty row to project literals from.
    return PlanPtr(std::make_unique<plan::ValuesNode>(
        Schema(), std::vector<storage::Row>{storage::Row{}}));
  }

  PlanPtr plan;
  for (const sql::TableRef& ref : select.from) {
    const std::string binding_name = ref.BindingName();
    for (const Binding& existing : scope->bindings) {
      if (EqualsIgnoreCase(existing.name, binding_name)) {
        return Status::AnalysisError("duplicate table binding '" +
                                     binding_name + "' in FROM");
      }
    }

    const std::string key = ToLower(ref.table_name);
    PlanPtr scan;
    const Schema* schema = nullptr;
    bool is_recursive = false;
    if (auto it = clique_views.find(key); it != clique_views.end()) {
      schema = &it->second;
      is_recursive = true;
      *references_clique = true;
      scan = std::make_unique<plan::RecursiveRefNode>(
          key, *schema, scope->next_recursive_ordinal++);
    } else if (auto vit = view_schemas_.find(key);
               vit != view_schemas_.end()) {
      schema = &vit->second;
      scan = std::make_unique<plan::TableScanNode>(key, *schema);
    } else if (const Schema* table = catalog_->FindTable(ref.table_name)) {
      schema = table;
      scan = std::make_unique<plan::TableScanNode>(key, *schema);
    } else {
      return Status::AnalysisError("unknown table or view '" +
                                   ref.table_name + "'");
    }

    Binding binding;
    binding.name = binding_name;
    binding.offset = scope->total_columns;
    binding.schema = schema;
    binding.is_recursive = is_recursive;
    scope->bindings.push_back(binding);
    scope->total_columns += schema->num_columns();

    if (!plan) {
      plan = std::move(scan);
    } else {
      // Cross product; the optimizer extracts equi-join keys from WHERE.
      plan = std::make_unique<plan::JoinNode>(std::move(plan),
                                              std::move(scan),
                                              std::vector<int>{},
                                              std::vector<int>{});
    }
  }
  // Scope bindings reference schemas owned by the catalog / clique map /
  // view_schemas_, all of which outlive this call.
  return plan;
}

Result<ExprPtr> Analyzer::ResolveAfterAggregate(
    const AstExpr& ast, const Scope& input_scope,
    const std::vector<const AstExpr*>& group_asts,
    const std::vector<const AstExpr*>& agg_asts,
    const Schema& agg_schema) {
  // Exact structural match against a GROUP BY expression.
  for (size_t i = 0; i < group_asts.size(); ++i) {
    if (AstEqual(ast, *group_asts[i])) {
      return expr::MakeColumnRef(static_cast<int>(i),
                                 agg_schema.column(i).type,
                                 agg_schema.column(i).name);
    }
  }
  // Aggregate call match.
  if (ast.kind == AstExpr::Kind::kAggCall) {
    for (size_t j = 0; j < agg_asts.size(); ++j) {
      if (AstEqual(ast, *agg_asts[j])) {
        const int idx = static_cast<int>(group_asts.size() + j);
        return expr::MakeColumnRef(idx, agg_schema.column(idx).type,
                                   agg_schema.column(idx).name);
      }
    }
    return Status::Internal("aggregate call was not collected");
  }
  // A column reference may match a group expression up to qualification
  // (GROUP BY Part vs SELECT waitfor.Part): compare resolved positions.
  if (ast.kind == AstExpr::Kind::kColumn) {
    Result<ExprPtr> self = ResolveColumn(ast, input_scope);
    if (self.ok()) {
      const int self_index =
          static_cast<const expr::ColumnRefExpr&>(**self).index();
      for (size_t i = 0; i < group_asts.size(); ++i) {
        if (group_asts[i]->kind != AstExpr::Kind::kColumn) continue;
        Result<ExprPtr> group = ResolveColumn(*group_asts[i], input_scope);
        if (group.ok() &&
            static_cast<const expr::ColumnRefExpr&>(**group).index() ==
                self_index) {
          return expr::MakeColumnRef(static_cast<int>(i),
                                     agg_schema.column(i).type,
                                     agg_schema.column(i).name);
        }
      }
    }
    return Status::AnalysisError("column '" + ast.ToString() +
                                 "' must appear in GROUP BY or inside an "
                                 "aggregate");
  }
  switch (ast.kind) {
    case AstExpr::Kind::kLiteral:
      return expr::MakeLiteral(ast.literal);
    case AstExpr::Kind::kBinary: {
      RASQL_ASSIGN_OR_RETURN(
          ExprPtr lhs, ResolveAfterAggregate(*ast.lhs, input_scope,
                                             group_asts, agg_asts,
                                             agg_schema));
      RASQL_ASSIGN_OR_RETURN(
          ExprPtr rhs, ResolveAfterAggregate(*ast.rhs, input_scope,
                                             group_asts, agg_asts,
                                             agg_schema));
      return expr::MakeBinary(ast.op, std::move(lhs), std::move(rhs));
    }
    case AstExpr::Kind::kNot: {
      RASQL_ASSIGN_OR_RETURN(
          ExprPtr input, ResolveAfterAggregate(*ast.lhs, input_scope,
                                               group_asts, agg_asts,
                                               agg_schema));
      return ExprPtr(std::make_unique<expr::NotExpr>(std::move(input)));
    }
    case AstExpr::Kind::kNegate: {
      RASQL_ASSIGN_OR_RETURN(
          ExprPtr input, ResolveAfterAggregate(*ast.lhs, input_scope,
                                               group_asts, agg_asts,
                                               agg_schema));
      return ExprPtr(std::make_unique<expr::NegateExpr>(std::move(input)));
    }
    default:
      return Status::AnalysisError("unsupported expression after GROUP BY");
  }
}

Result<PlanPtr> Analyzer::AnalyzeSelectImpl(
    const sql::SelectStmt& select,
    const std::map<std::string, Schema>& clique_views,
    bool* references_clique) {
  Scope scope;
  RASQL_ASSIGN_OR_RETURN(
      PlanPtr plan,
      BuildFromClause(select, clique_views, &scope, references_clique));

  if (select.where) {
    if (ContainsAggCall(*select.where)) {
      return Status::AnalysisError(
          "aggregates are not allowed in WHERE (use HAVING)");
    }
    RASQL_ASSIGN_OR_RETURN(ExprPtr predicate,
                           ResolveExpr(*select.where, scope));
    plan = std::make_unique<plan::FilterNode>(std::move(plan),
                                              std::move(predicate));
  }

  bool has_agg = false;
  for (const sql::SelectItem& item : select.items) {
    has_agg |= ContainsAggCall(*item.expr);
  }
  if (select.having) has_agg |= ContainsAggCall(*select.having);

  if (!select.group_by.empty() || has_agg) {
    // ---- Aggregate path ----
    std::vector<const AstExpr*> group_asts;
    for (const sql::AstExprPtr& g : select.group_by) {
      group_asts.push_back(g.get());
    }
    std::vector<const AstExpr*> agg_asts;
    for (const sql::SelectItem& item : select.items) {
      CollectAggCalls(*item.expr, &agg_asts);
    }
    if (select.having) CollectAggCalls(*select.having, &agg_asts);

    std::vector<ExprPtr> group_exprs;
    std::vector<storage::Column> agg_cols;
    for (size_t i = 0; i < group_asts.size(); ++i) {
      RASQL_ASSIGN_OR_RETURN(ExprPtr g, ResolveExpr(*group_asts[i], scope));
      std::string name = group_asts[i]->kind == AstExpr::Kind::kColumn
                             ? group_asts[i]->name
                             : "_g" + std::to_string(i);
      agg_cols.push_back(storage::Column{std::move(name), g->output_type()});
      group_exprs.push_back(std::move(g));
    }
    std::vector<plan::AggregateItem> agg_items;
    for (size_t j = 0; j < agg_asts.size(); ++j) {
      const AstExpr& call = *agg_asts[j];
      plan::AggregateItem item;
      item.function = call.agg_fn;
      item.distinct = call.distinct;
      item.output_name = "_a" + std::to_string(j);
      ValueType out_type = ValueType::kInt64;
      if (call.lhs && call.lhs->kind != AstExpr::Kind::kStar) {
        if (ContainsAggCall(*call.lhs)) {
          return Status::AnalysisError("nested aggregate calls");
        }
        RASQL_ASSIGN_OR_RETURN(item.argument, ResolveExpr(*call.lhs, scope));
        out_type = call.agg_fn == AggregateFunction::kCount
                       ? ValueType::kInt64
                       : item.argument->output_type();
      } else if (call.agg_fn != AggregateFunction::kCount) {
        return Status::AnalysisError(
            std::string(expr::AggregateFunctionName(call.agg_fn)) +
            "() needs an argument outside a recursive view head");
      }
      agg_cols.push_back(storage::Column{item.output_name, out_type});
      agg_items.push_back(std::move(item));
    }
    Schema agg_schema{agg_cols};
    plan = std::make_unique<plan::AggregateNode>(
        std::move(plan), std::move(group_exprs), std::move(agg_items),
        agg_schema);

    if (select.having) {
      RASQL_ASSIGN_OR_RETURN(
          ExprPtr predicate,
          ResolveAfterAggregate(*select.having, scope, group_asts, agg_asts,
                                agg_schema));
      plan = std::make_unique<plan::FilterNode>(std::move(plan),
                                                std::move(predicate));
    }

    std::vector<ExprPtr> item_exprs;
    std::vector<storage::Column> out_cols;
    for (size_t i = 0; i < select.items.size(); ++i) {
      RASQL_ASSIGN_OR_RETURN(
          ExprPtr e,
          ResolveAfterAggregate(*select.items[i].expr, scope, group_asts,
                                agg_asts, agg_schema));
      out_cols.push_back(storage::Column{
          ItemName(select.items[i], static_cast<int>(i)), e->output_type()});
      item_exprs.push_back(std::move(e));
    }
    plan = std::make_unique<plan::ProjectNode>(
        std::move(plan), std::move(item_exprs), Schema(std::move(out_cols)));
  } else {
    // ---- Plain projection path ----
    if (select.having) {
      return Status::AnalysisError("HAVING requires GROUP BY or aggregates");
    }
    std::vector<ExprPtr> item_exprs;
    std::vector<storage::Column> out_cols;
    for (size_t i = 0; i < select.items.size(); ++i) {
      RASQL_ASSIGN_OR_RETURN(ExprPtr e,
                             ResolveExpr(*select.items[i].expr, scope));
      out_cols.push_back(storage::Column{
          ItemName(select.items[i], static_cast<int>(i)), e->output_type()});
      item_exprs.push_back(std::move(e));
    }
    plan = std::make_unique<plan::ProjectNode>(
        std::move(plan), std::move(item_exprs), Schema(std::move(out_cols)));
  }

  if (!select.order_by.empty()) {
    // ORDER BY resolves against the projected output columns.
    Scope out_scope;
    Binding binding;
    binding.name = "";
    binding.offset = 0;
    binding.schema = &plan->schema();
    out_scope.bindings.push_back(binding);
    out_scope.total_columns = plan->schema().num_columns();
    std::vector<plan::SortNode::SortKey> keys;
    for (const sql::OrderItem& item : select.order_by) {
      plan::SortNode::SortKey key;
      Result<ExprPtr> resolved = ResolveExpr(*item.expr, out_scope);
      if (!resolved.ok() && item.expr->kind == AstExpr::Kind::kColumn &&
          !item.expr->qualifier.empty()) {
        // The projection strips table qualifiers; `ORDER BY t.col` refers
        // to the output column `col`.
        AstExpr bare;
        bare.kind = AstExpr::Kind::kColumn;
        bare.name = item.expr->name;
        resolved = ResolveExpr(bare, out_scope);
      }
      if (!resolved.ok()) return resolved.status();
      key.expr = std::move(*resolved);
      key.ascending = item.ascending;
      keys.push_back(std::move(key));
    }
    plan = std::make_unique<plan::SortNode>(std::move(plan), std::move(keys));
  }
  if (select.limit >= 0) {
    plan = std::make_unique<plan::LimitNode>(std::move(plan), select.limit);
  }
  return plan;
}

Result<PlanPtr> Analyzer::AnalyzeSelect(const sql::SelectStmt& select) {
  bool references_clique = false;
  RASQL_ASSIGN_OR_RETURN(PlanPtr plan,
                         AnalyzeSelectImpl(select, {}, &references_clique));
  RASQL_RETURN_IF_ERROR(VerifyPlanTyped(*plan));
  return plan;
}

Result<AnalyzedQuery> Analyzer::Analyze(const sql::Query& query) {
  const int n = static_cast<int>(query.ctes.size());

  // -- Step 1 (paper Sec. 5): recognize recursive references and group the
  // views into cliques (SCCs of the dependency graph).
  std::vector<std::string> names(n);
  for (int i = 0; i < n; ++i) {
    names[i] = ToLower(query.ctes[i].name);
    if (catalog_->Contains(names[i])) {
      return Status::AnalysisError("view '" + query.ctes[i].name +
                                   "' shadows a base table");
    }
    for (int j = 0; j < i; ++j) {
      if (names[i] == names[j]) {
        return Status::AnalysisError("duplicate view name '" +
                                     query.ctes[i].name + "'");
      }
    }
  }
  std::vector<std::set<int>> deps(n);
  for (int i = 0; i < n; ++i) {
    for (const sql::SelectStmtPtr& branch : query.ctes[i].branches) {
      for (const sql::TableRef& ref : branch->from) {
        for (int j = 0; j < n; ++j) {
          if (EqualsIgnoreCase(ref.table_name, names[j])) deps[i].insert(j);
        }
      }
    }
  }

  // Tarjan SCC; completion order = valid evaluation order (a component
  // finishes only after everything it depends on).
  std::vector<int> index(n, -1), lowlink(n, 0), on_stack(n, 0);
  std::vector<int> stack;
  std::vector<std::vector<int>> components;
  int next_index = 0;
  std::function<void(int)> strongconnect = [&](int v) {
    index[v] = lowlink[v] = next_index++;
    stack.push_back(v);
    on_stack[v] = 1;
    for (int w : deps[v]) {
      if (index[w] < 0) {
        strongconnect(w);
        lowlink[v] = std::min(lowlink[v], lowlink[w]);
      } else if (on_stack[w]) {
        lowlink[v] = std::min(lowlink[v], index[w]);
      }
    }
    if (lowlink[v] == index[v]) {
      std::vector<int> component;
      while (true) {
        const int w = stack.back();
        stack.pop_back();
        on_stack[w] = 0;
        component.push_back(w);
        if (w == v) break;
      }
      std::sort(component.begin(), component.end());  // declaration order
      components.push_back(std::move(component));
    }
  };
  for (int v = 0; v < n; ++v) {
    if (index[v] < 0) strongconnect(v);
  }

  AnalyzedQuery result;

  // -- Step 2: per clique, infer schemas then compile branches.
  for (const std::vector<int>& component : components) {
    // Initialize head schemas with unknown types.
    std::map<std::string, Schema> clique_schemas;
    for (int vi : component) {
      const sql::CteDef& cte = query.ctes[vi];
      std::vector<storage::Column> cols;
      int agg_count = 0;
      for (const sql::ViewColumn& c : cte.columns) {
        cols.push_back(storage::Column{c.name, ValueType::kNull});
        agg_count += c.aggregate != AggregateFunction::kNone;
      }
      if (agg_count > 1) {
        return Status::AnalysisError(
            "view '" + cte.name +
            "' declares more than one aggregate column (unsupported)");
      }
      clique_schemas.emplace(names[vi], Schema(std::move(cols)));
    }

    // Iterative type inference: analyzing a branch with partially known
    // schemas yields partially typed outputs; repeat until stable. The
    // bound n_views + 2 rounds suffices since each round resolves at least
    // one more view in a dependency chain.
    const int max_rounds = static_cast<int>(component.size()) + 2;
    for (int round = 0; round < max_rounds; ++round) {
      bool changed = false;
      for (int vi : component) {
        const sql::CteDef& cte = query.ctes[vi];
        Schema& schema = clique_schemas[names[vi]];
        for (const sql::SelectStmtPtr& branch : cte.branches) {
          bool references_clique = false;
          Result<PlanPtr> branch_plan =
              AnalyzeSelectImpl(*branch, clique_schemas, &references_clique);
          if (!branch_plan.ok()) continue;  // may resolve in a later round
          const Schema& out = (*branch_plan)->schema();
          if (out.num_columns() != schema.num_columns()) {
            return Status::AnalysisError(
                "view '" + cte.name + "' declares " +
                std::to_string(schema.num_columns()) +
                " columns but a branch produces " +
                std::to_string(out.num_columns()));
          }
          std::vector<storage::Column> cols = schema.columns();
          for (int c = 0; c < out.num_columns(); ++c) {
            std::optional<ValueType> unified =
                UnifyTypes(cols[c].type, out.column(c).type);
            if (!unified.has_value()) {
              return Status::AnalysisError(
                  "view '" + cte.name + "' column '" + cols[c].name +
                  "' has conflicting types across branches");
            }
            if (*unified != cols[c].type) {
              cols[c].type = *unified;
              changed = true;
            }
          }
          schema = Schema(std::move(cols));
        }
      }
      if (!changed) break;
    }
    for (int vi : component) {
      const Schema& schema = clique_schemas[names[vi]];
      for (const storage::Column& col : schema.columns()) {
        if (col.type == ValueType::kNull) {
          return Status::AnalysisError("could not infer type of column '" +
                                       col.name + "' of view '" +
                                       query.ctes[vi].name + "'");
        }
      }
    }

    // Final compile of every branch with complete schemas.
    RecursiveClique clique;
    for (int vi : component) {
      const sql::CteDef& cte = query.ctes[vi];
      RecursiveView view;
      view.name = names[vi];
      view.schema = clique_schemas[names[vi]];
      for (size_t c = 0; c < cte.columns.size(); ++c) {
        if (cte.columns[c].aggregate != AggregateFunction::kNone) {
          view.agg_column = static_cast<int>(c);
          view.aggregate = cte.columns[c].aggregate;
        }
      }
      for (const sql::SelectStmtPtr& branch : cte.branches) {
        bool references_clique = false;
        RASQL_ASSIGN_OR_RETURN(
            PlanPtr branch_plan,
            AnalyzeSelectImpl(*branch, clique_schemas, &references_clique));
        RASQL_RETURN_IF_ERROR(VerifyPlanTyped(*branch_plan));
        if (references_clique) {
          if (!branch->group_by.empty()) {
            return Status::AnalysisError(
                "explicit GROUP BY in a recursive branch of '" + cte.name +
                "' (aggregation is implicit via the view head)");
          }
          for (const sql::SelectItem& item : branch->items) {
            if (ContainsAggCall(*item.expr)) {
              return Status::AnalysisError(
                  "aggregate call in a recursive branch of '" + cte.name +
                  "' (declare the aggregate in the view head instead)");
            }
          }
          view.recursive_plans.push_back(std::move(branch_plan));
        } else {
          view.base_plans.push_back(std::move(branch_plan));
        }
      }

      // Semi-naive safety (DESIGN.md §4): mutual recursion and non-linear
      // use of a sum/count aggregate column require the naive fixpoint.
      // The decision procedure lives in src/lint so the lint rule
      // RASQL-N001/N002 and this verdict can never disagree.
      const std::string agg_name =
          view.agg_column >= 0 ? view.schema.column(view.agg_column).name
                               : "";
      const lint::SemiNaiveSafety verdict = lint::AnalyzeSemiNaiveSafety(
          cte, view.name, view.agg_column, agg_name, view.aggregate,
          component.size());
      view.semi_naive_safe = verdict.safe();
      if (!verdict.safe() && diagnostics_ != nullptr &&
          !view.recursive_plans.empty()) {
        const bool mutual =
            verdict.kind == lint::SemiNaiveSafety::Kind::kMutualRecursion;
        diagnostics_->Report(lint::Severity::kWarning,
                             mutual ? "RASQL-N002" : "RASQL-N001",
                             verdict.reason, view.name, verdict.snippet);
      }
      clique.views.push_back(std::move(view));
    }

    // A clique containing recursive branches needs at least one base case.
    bool has_recursive = false;
    bool has_base = false;
    for (const RecursiveView& v : clique.views) {
      has_recursive |= !v.recursive_plans.empty();
      has_base |= !v.base_plans.empty();
    }
    if (has_recursive && !has_base) {
      return Status::AnalysisError(
          "recursive clique containing '" + clique.views[0].name +
          "' has no base case");
    }

    // Views become visible (as materialized tables) to later cliques and
    // the body.
    for (const RecursiveView& v : clique.views) {
      view_schemas_[v.name] = v.schema;
    }
    result.cliques.push_back(std::move(clique));
  }

  // -- Body.
  bool references_clique = false;
  RASQL_ASSIGN_OR_RETURN(result.body,
                         AnalyzeSelectImpl(*query.body, {},
                                           &references_clique));
  RASQL_RETURN_IF_ERROR(VerifyPlanTyped(*result.body));
  return result;
}

}  // namespace rasql::analysis
