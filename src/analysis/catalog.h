#ifndef RASQL_ANALYSIS_CATALOG_H_
#define RASQL_ANALYSIS_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/schema.h"

namespace rasql::analysis {

/// Name -> schema registry for base tables and materialized views. Names
/// are case-insensitive (canonicalized to lowercase internally).
class Catalog {
 public:
  /// Registers a table schema; fails if the name is taken.
  common::Status RegisterTable(const std::string& name,
                               storage::Schema schema);

  /// Replaces or adds a table schema (used for materialized views).
  void PutTable(const std::string& name, storage::Schema schema);

  /// nullptr when not registered.
  const storage::Schema* FindTable(const std::string& name) const;

  bool Contains(const std::string& name) const {
    return FindTable(name) != nullptr;
  }

  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, storage::Schema> tables_;
};

}  // namespace rasql::analysis

#endif  // RASQL_ANALYSIS_CATALOG_H_
