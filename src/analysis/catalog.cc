#include "analysis/catalog.h"

namespace rasql::analysis {

common::Status Catalog::RegisterTable(const std::string& name,
                                      storage::Schema schema) {
  const std::string key = storage::ToLower(name);
  if (tables_.count(key) > 0) {
    return common::Status::AlreadyExists("table '" + name +
                                         "' already registered");
  }
  tables_.emplace(key, std::move(schema));
  return common::Status::OK();
}

void Catalog::PutTable(const std::string& name, storage::Schema schema) {
  tables_[storage::ToLower(name)] = std::move(schema);
}

const storage::Schema* Catalog::FindTable(const std::string& name) const {
  auto it = tables_.find(storage::ToLower(name));
  return it == tables_.end() ? nullptr : &it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, schema] : tables_) names.push_back(name);
  return names;
}

}  // namespace rasql::analysis
