#ifndef RASQL_ANALYSIS_ANALYZED_QUERY_H_
#define RASQL_ANALYSIS_ANALYZED_QUERY_H_

#include <memory>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "plan/logical_plan.h"
#include "plan/optimizer.h"
#include "storage/schema.h"

namespace rasql::analysis {

/// One analyzed recursive view: its typed schema, the head aggregate (the
/// paper's `min() AS Cost` syntax, with implicit group-by over the other
/// columns), and its compiled base / recursive branch plans.
struct RecursiveView {
  std::string name;  ///< canonical (lowercase) view name
  storage::Schema schema;
  /// Position of the aggregate head column, -1 when the head has none.
  int agg_column = -1;
  expr::AggregateFunction aggregate = expr::AggregateFunction::kNone;
  /// Branches whose FROM references no same-clique view.
  std::vector<plan::PlanPtr> base_plans;
  /// Branches with at least one RecursiveRefNode (same-clique reference).
  std::vector<plan::PlanPtr> recursive_plans;
  /// False when only the naive fixpoint is guaranteed correct for this view
  /// (e.g. a sum view whose recursive branch uses the aggregate column
  /// non-linearly) — see DESIGN.md §4.
  bool semi_naive_safe = true;
};

/// A strongly connected component of the CTE dependency graph — the
/// paper's Recursive Clique (Fig. 2a). Non-recursive views appear as
/// single-view cliques with no recursive plans and evaluate in one shot.
struct RecursiveClique {
  std::vector<RecursiveView> views;

  bool IsRecursive() const {
    for (const RecursiveView& v : views) {
      if (!v.recursive_plans.empty()) return true;
    }
    return false;
  }
  const RecursiveView* FindView(const std::string& name) const {
    for (const RecursiveView& v : views) {
      if (v.name == name) return &v;
    }
    return nullptr;
  }
};

/// A fully analyzed query: cliques in topological evaluation order followed
/// by the final SELECT body (which references views via TableScan nodes —
/// they are materialized by the time the body runs).
struct AnalyzedQuery {
  std::vector<RecursiveClique> cliques;
  plan::PlanPtr body;

  /// Runs the optimizer over every compiled plan (clique branches and the
  /// body). Callers that execute plans directly (fixpoint evaluators,
  /// baselines) must call this — unoptimized branch plans still contain
  /// cross products.
  void Optimize(const plan::OptimizerOptions& options);

  /// EXPLAIN rendering: clique plans then the body plan.
  std::string ToString() const;
};

}  // namespace rasql::analysis

#endif  // RASQL_ANALYSIS_ANALYZED_QUERY_H_
