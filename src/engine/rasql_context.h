#ifndef RASQL_ENGINE_RASQL_CONTEXT_H_
#define RASQL_ENGINE_RASQL_CONTEXT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <type_traits>

#include "analysis/catalog.h"
#include "common/status.h"
#include "dist/cluster.h"
#include "fixpoint/distributed_fixpoint.h"
#include "fixpoint/local_fixpoint.h"
#include "fixpoint/warm_state.h"
#include "lint/linter.h"
#include "plan/optimizer.h"
#include "runtime/runtime_options.h"
#include "sql/ast.h"
#include "storage/relation.h"

namespace rasql::engine {

/// Engine configuration: every optimization the paper evaluates is a knob
/// here so the benches can ablate them.
struct EngineConfig {
  /// Local fixpoint options (mode, iteration cap, codegen, join algorithm).
  fixpoint::FixpointOptions fixpoint;
  plan::OptimizerOptions optimizer;

  /// Run eligible recursive cliques on the simulated cluster with
  /// distributed semi-naive evaluation. Ineligible cliques (mutual
  /// recursion etc.) fall back to local evaluation.
  bool distributed = false;
  dist::ClusterConfig cluster;
  fixpoint::DistFixpointOptions dist_fixpoint;

  /// Real task-execution runtime under the simulated cluster: how many OS
  /// threads run each stage's tasks, and how shared per-stage accumulators
  /// reduce (see DESIGN.md §7). Defaults to one thread (sequential).
  runtime::RuntimeOptions runtime;

  /// Run the static PreM/monotonicity linter before executing each query
  /// and refuse error-level queries (`--lint`). `lint.werror` also
  /// refuses warning-level queries (`--werror-lint`).
  bool lint_before_execute = false;
  lint::LintOptions lint;

  /// Warm-start fixpoint maintenance (`--incremental`, DESIGN.md §14):
  /// retain each converged recursive clique's state and, when every write
  /// since that run was an append (INSERT) and the lint layer statically
  /// proved the view's head safe (PreM min/max, monotone count, or
  /// aggregate-free monotone RA — float sums are excluded because their
  /// accumulation order is not replayable), resume the fixpoint with the
  /// new tuples as the seed delta instead of recomputing from scratch.
  /// Everything else falls back to a cold recompute; warm results are
  /// bit-identical to cold ones.
  bool incremental = false;
};

/// Everything one Execute() produces, returned as a unit: the result
/// relation plus the execution's fixpoint statistics, cluster metrics and
/// lint report. Callers that only want rows read `.relation`; benches and
/// tests read the rest directly — the context keeps no per-execution
/// state behind the caller's back.
struct ExecutionResult {
  storage::Relation relation;
  /// Fixpoint statistics (iterations, delta sizes, evaluation mode).
  fixpoint::FixpointStats fixpoint_stats;
  /// Simulated-cluster metrics; empty when running locally.
  dist::JobMetrics job_metrics;
  /// Lint report when `lint_before_execute` is set; empty otherwise.
  lint::LintReport lint_report;
};

/// ExecutionResult travels by value from the engine through the server's
/// result cache to the wire serializer; moving it must never copy the
/// result relation. Enforced here so a grown member cannot silently turn
/// every query's hot path into a deep copy.
static_assert(std::is_move_constructible_v<ExecutionResult> &&
                  std::is_move_assignable_v<ExecutionResult>,
              "ExecutionResult must be movable");
static_assert(std::is_nothrow_move_constructible_v<storage::Relation>,
              "Relation moves must not copy rows");

/// The RaSQL system entry point — the analogue of the paper's extended
/// SparkSession:
///
///   RaSqlContext ctx;
///   ctx.RegisterTable("edge", edges);
///   auto result = ctx.Execute(
///       "WITH recursive path(Dst, min() AS Cost) AS (...) ...");
///   if (result.ok()) Print(result->relation);
///
/// Concurrency contract (DESIGN.md §12): one context may be shared by many
/// threads. Read-only calls — Execute/Explain/ExplainStages of scripts
/// without CREATE VIEW or INSERT, Lint, FindTable, NormalizedPlanKey,
/// TableVersion — run concurrently under a shared lock; writes
/// (RegisterTable, DropTable, and scripts containing CREATE VIEW or
/// INSERT) are exclusive and bump the affected tables' versions. Each
/// execution's scratch state (Cluster, thread pools, views) is stack-owned
/// per call, so parallel queries never alias mutable engine state; when
/// `config().runtime.shared_pool` is set, concurrent stage submissions to
/// the one pool serialize per job (ThreadPool's contract) but interleave
/// across stages. `mutable_config()` is NOT thread-safe — configure before
/// sharing the context.
class RaSqlContext {
 public:
  explicit RaSqlContext(EngineConfig config = {});

  /// Registers a base relation under `name` (case-insensitive).
  common::Status RegisterTable(const std::string& name,
                               storage::Relation relation);

  /// Drops a table or materialized view.
  common::Status DropTable(const std::string& name);

  /// Returns the named table/materialized view, or nullptr. The pointer
  /// stays valid until the next write (RegisterTable/DropTable/INSERT);
  /// concurrent readers must not hold it across their own writes.
  const storage::Relation* FindTable(const std::string& name) const;

  /// Monotone per-table write counter: 0 while unregistered, bumped by
  /// RegisterTable, DropTable and INSERT. The server's result cache keys
  /// converged fixpoints on the versions of every referenced base table,
  /// so a base-relation write makes all dependent entries unreachable.
  uint64_t TableVersion(const std::string& name) const;

  /// Bumped on every catalog write of any kind — a cheap "anything
  /// changed?" fence for whole-catalog consumers.
  uint64_t CatalogVersion() const;

  /// Canonical cache key for a prepared statement: parses and analyzes
  /// `sql` (which must be a single query statement), optimizes its clique
  /// and body plans, and returns the normalized plan rendering. Two
  /// textually different queries that compile to the same recursive-clique
  /// plans share a key — the prepared-plan cache and the result cache both
  /// key on this, never on raw SQL text (DESIGN.md §12).
  common::Result<std::string> NormalizedPlanKey(const std::string& sql) const;

  /// Parses and runs a `;`-separated RaSQL script. CREATE VIEW statements
  /// materialize views into the session; the ExecutionResult carries the
  /// value of the last query statement together with its stats, metrics
  /// and lint report.
  common::Result<ExecutionResult> Execute(const std::string& sql);

  /// Returns the EXPLAIN rendering (clique plans + body physical plan)
  /// without executing.
  common::Result<std::string> Explain(const std::string& sql);

  /// Returns the `EXPLAIN STAGES` rendering without executing: per clique,
  /// the declared stage graph the dispatched evaluator would submit
  /// (distributed when the engine is configured distributed and the clique
  /// is eligible, local otherwise), verified by the static stage-graph
  /// checker with its RASQL-G report appended (DESIGN.md §11).
  common::Result<std::string> ExplainStages(const std::string& sql);

  /// Statically analyzes `sql` (the shell's `EXPLAIN LINT`) without
  /// executing: PreM provability for min/max heads, the monotonic-count
  /// argument for sum/count, semi-naive safety, and the structural rules.
  /// Fails only on parse errors — analysis failures surface as
  /// RASQL-E000 diagnostics inside the report.
  common::Result<lint::LintReport> Lint(const std::string& sql) const;

  const EngineConfig& config() const { return config_; }
  EngineConfig* mutable_config() { return &config_; }

  /// Retained warm-start clique states (observability for tests/tools).
  size_t WarmStateEntries() const { return warm_store_.size(); }
  /// Drops every retained clique state; subsequent queries run cold.
  void ClearWarmState() { warm_store_.Clear(); }

  /// Monotone per-table rewrite counter: bumped by RegisterTable and
  /// DropTable but NOT by INSERT. Warm-start eligibility compares it
  /// against the retained marks — a version bump with an unchanged rewrite
  /// count proves every intervening write was an append.
  uint64_t TableRewrites(const std::string& name) const;

 private:
  /// Runs one query statement, filling `stats`/`metrics` with the
  /// execution's fixpoint statistics and cluster metrics (reset first).
  common::Result<storage::Relation> ExecuteQuery(
      const sql::Query& query, fixpoint::FixpointStats* stats,
      dist::JobMetrics* metrics);

  /// RegisterTable body without the exclusive lock — for callers already
  /// holding `mu_` (the CREATE VIEW path inside Execute).
  common::Status RegisterTableLocked(const std::string& name,
                                     storage::Relation relation);

  /// Appends the INSERT's literal rows to a registered base table after
  /// validating every row (arity + types, int→double promotion); all rows
  /// land or none do. Returns a one-row `rows_inserted` relation. Caller
  /// holds `mu_` exclusively.
  common::Result<storage::Relation> ExecuteInsertLocked(
      const sql::InsertStmt& insert);

  /// Bumps the named table's version and the catalog version. Caller holds
  /// `mu_` exclusively; `key` is already lowercased.
  void BumpVersionLocked(const std::string& key);

  EngineConfig config_;

  /// Guards catalog_/tables_/versions_: shared for query execution and all
  /// analysis entry points, exclusive for writes. See the class comment.
  mutable std::shared_mutex mu_;
  analysis::Catalog catalog_;
  std::map<std::string, storage::Relation> tables_;
  std::map<std::string, uint64_t> versions_;
  /// Rewrite counters (see TableRewrites); keys are lowercased.
  std::map<std::string, uint64_t> rewrites_;
  uint64_t catalog_version_ = 0;

  /// Retained converged clique states for warm starts. Internally locked —
  /// pure queries run under the shared lock yet capture state after an
  /// eligible run; shared_ptr values keep in-flight snapshots alive across
  /// concurrent replacement.
  mutable fixpoint::WarmStateStore warm_store_;
};

}  // namespace rasql::engine

#endif  // RASQL_ENGINE_RASQL_CONTEXT_H_
