#include "engine/rasql_context.h"

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <utility>

#include "analysis/analyzer.h"
#include "common/check.h"
#include "fixpoint/stage_plan.h"
#include "sql/parser.h"
#include "verify/verifier.h"

namespace rasql::engine {

using common::Result;
using common::Status;
using storage::Relation;
using storage::ToLower;

RaSqlContext::RaSqlContext(EngineConfig config)
    : config_(std::move(config)) {}

Status RaSqlContext::RegisterTable(const std::string& name,
                                   Relation relation) {
  std::unique_lock lock(mu_);
  return RegisterTableLocked(name, std::move(relation));
}

Status RaSqlContext::RegisterTableLocked(const std::string& name,
                                         Relation relation) {
  RASQL_RETURN_IF_ERROR(catalog_.RegisterTable(name, relation.schema()));
  const std::string key = ToLower(name);
  tables_.insert_or_assign(key, std::move(relation));
  // A (re)registration replaces the table's contents wholesale: bump the
  // rewrite counter so warm-start marks taken before it can never treat
  // the new contents as an append delta.
  ++rewrites_[key];
  BumpVersionLocked(key);
  return Status::OK();
}

Status RaSqlContext::DropTable(const std::string& name) {
  std::unique_lock lock(mu_);
  const std::string key = ToLower(name);
  if (tables_.erase(key) == 0) {
    return Status::NotFound("no table named '" + name + "'");
  }
  // Rebuild the catalog without the dropped entry.
  analysis::Catalog fresh;
  for (const auto& [table_name, rel] : tables_) {
    fresh.PutTable(table_name, rel.schema());
  }
  catalog_ = std::move(fresh);
  ++rewrites_[key];
  BumpVersionLocked(key);
  return Status::OK();
}

uint64_t RaSqlContext::TableRewrites(const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = rewrites_.find(ToLower(name));
  return it == rewrites_.end() ? 0 : it->second;
}

const Relation* RaSqlContext::FindTable(const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? nullptr : &it->second;
}

uint64_t RaSqlContext::TableVersion(const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = versions_.find(ToLower(name));
  return it == versions_.end() ? 0 : it->second;
}

uint64_t RaSqlContext::CatalogVersion() const {
  std::shared_lock lock(mu_);
  return catalog_version_;
}

void RaSqlContext::BumpVersionLocked(const std::string& key) {
  ++versions_[key];
  ++catalog_version_;
}

Result<Relation> RaSqlContext::ExecuteInsertLocked(
    const sql::InsertStmt& insert) {
  const std::string key = ToLower(insert.table);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + insert.table + "'");
  }
  Relation& table = it->second;
  const storage::Schema& schema = table.schema();
  // Validate (and coerce) every row before appending any: an INSERT either
  // lands completely or not at all, so cache invalidation never observes a
  // half-applied write.
  std::vector<storage::Row> coerced;
  coerced.reserve(insert.rows.size());
  for (const storage::Row& row : insert.rows) {
    if (static_cast<int>(row.size()) != schema.num_columns()) {
      return Status::InvalidArgument(
          "INSERT row has " + std::to_string(row.size()) +
          " values but table '" + insert.table + "' has " +
          std::to_string(schema.num_columns()) + " columns");
    }
    storage::Row out = row;
    for (int c = 0; c < schema.num_columns(); ++c) {
      const storage::ValueType want = schema.column(c).type;
      const storage::ValueType got = out[c].type();
      if (got == storage::ValueType::kNull || got == want) continue;
      if (got == storage::ValueType::kInt64 &&
          want == storage::ValueType::kDouble) {
        out[c] = storage::Value::Double(static_cast<double>(out[c].AsInt()));
        continue;
      }
      return Status::InvalidArgument(
          std::string("INSERT value type ") + storage::ValueTypeName(got) +
          " does not fit column '" + schema.column(c).name + "' (" +
          storage::ValueTypeName(want) + ") of table '" + insert.table + "'");
    }
    coerced.push_back(std::move(out));
  }
  table.Reserve(table.size() + coerced.size());
  for (storage::Row& row : coerced) table.Add(std::move(row));
  BumpVersionLocked(key);

  Relation result(storage::Schema::Of(
      {{"rows_inserted", storage::ValueType::kInt64}}));
  result.Add({storage::Value::Int(static_cast<int64_t>(insert.rows.size()))});
  return result;
}

Result<ExecutionResult> RaSqlContext::Execute(const std::string& sql) {
  RASQL_ASSIGN_OR_RETURN(std::vector<sql::Statement> statements,
                         sql::Parser::ParseScript(sql));
  if (statements.empty()) {
    return Status::InvalidArgument("empty statement");
  }
  // Lock discipline: a script that writes the shared catalog (CREATE VIEW
  // materialization, INSERT) is exclusive; pure query scripts share. The
  // lock covers the whole script so multi-statement scripts are atomic
  // with respect to other sessions.
  bool writes = false;
  for (const sql::Statement& stmt : statements) {
    writes |= stmt.kind != sql::Statement::Kind::kQuery;
  }
  std::shared_lock<std::shared_mutex> shared(mu_, std::defer_lock);
  std::unique_lock<std::shared_mutex> exclusive(mu_, std::defer_lock);
  if (writes) {
    exclusive.lock();
  } else {
    shared.lock();
  }
  ExecutionResult execution;
  if (config_.lint_before_execute) {
    lint::Linter linter(&catalog_);
    RASQL_ASSIGN_OR_RETURN(execution.lint_report, linter.LintSql(sql));
    if (execution.lint_report.BlocksExecution(config_.lint)) {
      return Status::AnalysisError(
          "query refused by lint" +
          std::string(config_.lint.werror ? " (werror)" : "") + ":\n" +
          execution.lint_report.ToString());
    }
  }
  bool produced_result = false;
  for (const sql::Statement& stmt : statements) {
    if (stmt.kind == sql::Statement::Kind::kInsert) {
      RASQL_ASSIGN_OR_RETURN(execution.relation,
                             ExecuteInsertLocked(*stmt.insert));
      produced_result = true;
      continue;
    }
    if (stmt.kind == sql::Statement::Kind::kCreateView) {
      const sql::CreateViewStmt& view = *stmt.create_view;
      analysis::Analyzer analyzer(&catalog_);
      RASQL_ASSIGN_OR_RETURN(plan::PlanPtr view_plan,
                             analyzer.AnalyzeSelect(*view.definition));
      view_plan = plan::Optimize(std::move(view_plan), config_.optimizer);
      if (view_plan->schema().num_columns() !=
          static_cast<int>(view.columns.size())) {
        return Status::AnalysisError(
            "view '" + view.name + "' declares " +
            std::to_string(view.columns.size()) +
            " columns but its query produces " +
            std::to_string(view_plan->schema().num_columns()));
      }
      physical::ExecContext ctx;
      for (const auto& [name, rel] : tables_) ctx.tables[name] = &rel;
      ctx.use_codegen = config_.fixpoint.use_codegen;
      ctx.batch_rows = config_.runtime.batch_rows;
      ctx.join_algorithm = config_.fixpoint.join_algorithm;
      RASQL_ASSIGN_OR_RETURN(Relation rel,
                             physical::Execute(*view_plan, ctx));
      // Rename output columns to the declared view columns.
      std::vector<storage::Column> cols = rel.schema().columns();
      for (size_t i = 0; i < cols.size(); ++i) {
        cols[i].name = view.columns[i];
      }
      *rel.mutable_schema() = storage::Schema(std::move(cols));
      RASQL_RETURN_IF_ERROR(RegisterTableLocked(view.name, std::move(rel)));
      continue;
    }
    RASQL_ASSIGN_OR_RETURN(execution.relation,
                           ExecuteQuery(*stmt.query, &execution.fixpoint_stats,
                                        &execution.job_metrics));
    produced_result = true;
  }
  if (!produced_result) {
    return Status::InvalidArgument(
        "script contains no query statement (only CREATE VIEW)");
  }
  return execution;
}

Result<std::string> RaSqlContext::NormalizedPlanKey(
    const std::string& sql) const {
  RASQL_ASSIGN_OR_RETURN(std::vector<sql::Statement> statements,
                         sql::Parser::ParseScript(sql));
  if (statements.size() != 1 ||
      statements[0].kind != sql::Statement::Kind::kQuery) {
    return Status::InvalidArgument(
        "prepared statements must be a single query statement");
  }
  std::shared_lock lock(mu_);
  analysis::Analyzer analyzer(&catalog_);
  RASQL_ASSIGN_OR_RETURN(analysis::AnalyzedQuery analyzed,
                         analyzer.Analyze(*statements[0].query));
  analyzed.Optimize(config_.optimizer);
  return analyzed.ToString();
}

Result<Relation> RaSqlContext::ExecuteQuery(const sql::Query& query,
                                            fixpoint::FixpointStats* stats,
                                            dist::JobMetrics* metrics) {
  *stats = fixpoint::FixpointStats();
  *metrics = dist::JobMetrics();

  analysis::Analyzer analyzer(&catalog_);
  RASQL_ASSIGN_OR_RETURN(analysis::AnalyzedQuery analyzed,
                         analyzer.Analyze(query));

  analyzed.Optimize(config_.optimizer);

  // Warm-start bookkeeping (DESIGN.md §14). The plan key is the normalized
  // plan rendering — the same identity the server's caches key on; the
  // lint pass runs once per query and only when incremental mode is on.
  std::string warm_plan_key;
  lint::LintReport warm_lint;
  bool warm_lint_ran = false;
  auto view_proven = [&](const std::string& name) {
    if (!warm_lint_ran) {
      lint::Linter linter(&catalog_);
      warm_lint = linter.LintQuery(query);
      warm_lint_ran = true;
    }
    const auto& proven = warm_lint.proven_views;
    return std::find(proven.begin(), proven.end(), name) != proven.end();
  };
  if (config_.incremental) warm_plan_key = analyzed.ToString();

  // Evaluate cliques in topological order, materializing views.
  std::map<std::string, Relation> views;
  dist::Cluster cluster(config_.cluster, config_.runtime);
  int clique_index = -1;
  for (const analysis::RecursiveClique& clique : analyzed.cliques) {
    ++clique_index;
    std::map<std::string, const Relation*> bindings;
    for (const auto& [name, rel] : tables_) bindings[name] = &rel;
    for (const auto& [name, rel] : views) bindings[name] = &rel;

    // ---- Warm-start gate. `capturable` = this clique's converged state
    // is worth retaining (statically proven safe, semi-naive, every scan
    // hits a versioned base table). `warm_input` is armed only when a
    // retained state exists whose marks show append-only drift the plan
    // structure can seed exactly; everything else runs cold.
    bool warm_capturable = false;
    bool warm_armed = false;
    std::string warm_key;
    std::map<std::string, int> warm_scans;
    std::shared_ptr<const fixpoint::CliqueWarmState> warm_prior;
    std::map<std::string, Relation> warm_deltas;
    fixpoint::WarmStartInput warm_input;
    if (config_.incremental && clique.IsRecursive() &&
        clique.views.size() == 1 && clique.views[0].semi_naive_safe &&
        config_.fixpoint.mode != fixpoint::FixpointMode::kNaive) {
      const analysis::RecursiveView& view = clique.views[0];
      // Accumulation over floats is not replayable bit-identically (the
      // addition order of a warm run differs), so sum heads always run
      // cold; count increments are exact integers.
      const bool agg_ok =
          view.aggregate == expr::AggregateFunction::kNone ||
          view.aggregate == expr::AggregateFunction::kMin ||
          view.aggregate == expr::AggregateFunction::kMax ||
          view.aggregate == expr::AggregateFunction::kCount;
      if (agg_ok && view_proven(view.name)) {
        warm_scans = fixpoint::CollectViewTableScans(view);
        warm_capturable = true;
        for (const auto& [table, count] : warm_scans) {
          // Every scan must hit a versioned base table — a reference to a
          // same-query clique view has no version to mark.
          if (tables_.find(table) == tables_.end()) {
            warm_capturable = false;
            break;
          }
        }
      }
      if (warm_capturable) {
        warm_key =
            warm_plan_key + "#clique" + std::to_string(clique_index);
        warm_prior = warm_store_.Lookup(warm_key);
      }
      if (warm_prior != nullptr) {
        bool marks_ok = warm_prior->marks.size() == warm_scans.size();
        std::set<std::string> changed;
        for (const auto& [table, mark] : warm_prior->marks) {
          auto tit = tables_.find(table);
          auto vit = versions_.find(table);
          auto rit = rewrites_.find(table);
          if (tit == tables_.end() || vit == versions_.end() ||
              rit == rewrites_.end() || rit->second != mark.rewrites ||
              tit->second.size() < mark.rows ||
              warm_scans.find(table) == warm_scans.end()) {
            marks_ok = false;
            break;
          }
          if (vit->second != mark.version) changed.insert(table);
        }
        if (marks_ok && fixpoint::WarmSeedCompatible(clique.views[0],
                                                     changed)) {
          for (const std::string& table : changed) {
            const Relation& full = tables_.at(table);
            const size_t from = warm_prior->marks.at(table).rows;
            Relation delta(full.schema());
            full.ForEachRow(storage::RowRange{from, full.size()},
                            [&](const storage::Row& row) {
                              delta.AppendRow(row);
                            });
            warm_deltas.emplace(table, std::move(delta));
          }
          warm_input.converged = &warm_prior->converged;
          warm_input.deltas = &warm_deltas;
          warm_input.prior_iterations = warm_prior->cold_iterations;
          warm_armed = true;
        }
      }
    }

    std::map<std::string, Relation> results;
    fixpoint::FixpointStats clique_stats;
    if (config_.distributed && clique.IsRecursive() &&
        fixpoint::EligibleForDistributed(clique)) {
      fixpoint::DistFixpointOptions dist_options = config_.dist_fixpoint;
      // The iteration-cap/codegen/join knobs are configured once on the
      // local options; copy the shared slice so both paths honor them.
      static_cast<fixpoint::CommonFixpointOptions&>(dist_options) =
          config_.fixpoint;
      if (warm_armed) dist_options.warm_start = &warm_input;
      RASQL_ASSIGN_OR_RETURN(
          results,
          fixpoint::EvaluateCliqueDistributed(clique, bindings, &cluster,
                                              dist_options, &clique_stats));
    } else {
      fixpoint::FixpointOptions local_options = config_.fixpoint;
      // --threads applies to the local path too: the local evaluator runs
      // its per-partition work on the same runtime configuration.
      local_options.runtime = config_.runtime;
      if (warm_armed) local_options.warm_start = &warm_input;
      RASQL_ASSIGN_OR_RETURN(
          results, fixpoint::EvaluateCliqueLocal(clique, bindings,
                                                 local_options,
                                                 &clique_stats));
    }
    stats->MergeFrom(clique_stats);

    // ---- Retain the converged state for the next INSERT. After a warm
    // run the original cold iteration count is kept so iterations_saved
    // stays an honest before/after comparison.
    if (warm_capturable) {
      auto snapshot = std::make_shared<fixpoint::CliqueWarmState>();
      snapshot->converged = results.at(clique.views[0].name);
      for (const auto& [table, count] : warm_scans) {
        fixpoint::TableMark mark;
        auto vit = versions_.find(table);
        mark.version = vit == versions_.end() ? 0 : vit->second;
        auto rit = rewrites_.find(table);
        mark.rewrites = rit == rewrites_.end() ? 0 : rit->second;
        mark.rows = tables_.at(table).size();
        snapshot->marks.emplace(table, mark);
      }
      snapshot->cold_iterations = warm_armed
                                      ? warm_input.prior_iterations
                                      : clique_stats.iterations;
      warm_store_.Put(warm_key, std::move(snapshot));
    }

    for (auto& [name, rel] : results) views[name] = std::move(rel);
  }
  *metrics = cluster.metrics();

  // Execute the body against base tables + materialized views.
  physical::ExecContext ctx;
  for (const auto& [name, rel] : tables_) ctx.tables[name] = &rel;
  for (const auto& [name, rel] : views) ctx.tables[name] = &rel;
  ctx.use_codegen = config_.fixpoint.use_codegen;
  ctx.batch_rows = config_.runtime.batch_rows;
  ctx.join_algorithm = config_.fixpoint.join_algorithm;
  return physical::Execute(*analyzed.body, ctx);
}

namespace {

/// EXPLAIN variants register CREATE VIEW schemas into the shared catalog so
/// later statements analyze; that makes them writers for locking purposes.
bool ScriptWritesCatalog(const std::vector<sql::Statement>& statements) {
  for (const sql::Statement& stmt : statements) {
    if (stmt.kind != sql::Statement::Kind::kQuery) return true;
  }
  return false;
}

}  // namespace

Result<std::string> RaSqlContext::ExplainStages(const std::string& sql) {
  RASQL_ASSIGN_OR_RETURN(std::vector<sql::Statement> statements,
                         sql::Parser::ParseScript(sql));
  std::shared_lock<std::shared_mutex> shared(mu_, std::defer_lock);
  std::unique_lock<std::shared_mutex> exclusive(mu_, std::defer_lock);
  if (ScriptWritesCatalog(statements)) {
    exclusive.lock();
  } else {
    shared.lock();
  }
  std::string out;
  for (const sql::Statement& stmt : statements) {
    if (stmt.kind == sql::Statement::Kind::kInsert) {
      out += "=== INSERT INTO " + stmt.insert->table + " ===\n(" +
             std::to_string(stmt.insert->rows.size()) +
             " literal rows; no stages)\n";
      continue;
    }
    if (stmt.kind == sql::Statement::Kind::kCreateView) {
      // Views evaluate as one physical plan on the driver — no stage
      // submissions to render. Register the schema so later statements
      // referencing the view still analyze.
      analysis::Analyzer analyzer(&catalog_);
      RASQL_ASSIGN_OR_RETURN(
          plan::PlanPtr view_plan,
          analyzer.AnalyzeSelect(*stmt.create_view->definition));
      std::vector<storage::Column> cols = view_plan->schema().columns();
      for (size_t i = 0; i < cols.size(); ++i) {
        cols[i].name = stmt.create_view->columns[i];
      }
      catalog_.PutTable(stmt.create_view->name,
                        storage::Schema(std::move(cols)));
      continue;
    }
    analysis::Analyzer analyzer(&catalog_);
    RASQL_ASSIGN_OR_RETURN(analysis::AnalyzedQuery analyzed,
                           analyzer.Analyze(*stmt.query));
    analyzed.Optimize(config_.optimizer);
    for (const analysis::RecursiveClique& clique : analyzed.cliques) {
      // Same dispatch as ExecuteQuery, same orchestration analysis as the
      // evaluators — the rendered template cannot drift from a real run.
      verify::StageGraph graph;
      if (config_.distributed && clique.IsRecursive() &&
          fixpoint::EligibleForDistributed(clique)) {
        fixpoint::DistFixpointOptions dist_options = config_.dist_fixpoint;
        static_cast<fixpoint::CommonFixpointOptions&>(dist_options) =
            config_.fixpoint;
        RASQL_ASSIGN_OR_RETURN(
            graph, fixpoint::PlanDistributedStages(
                       clique, dist_options, config_.runtime,
                       config_.cluster.num_partitions));
        out += "=== STAGES (distributed) ===\n";
      } else {
        fixpoint::FixpointOptions local_options = config_.fixpoint;
        local_options.runtime = config_.runtime;
        RASQL_ASSIGN_OR_RETURN(
            graph, fixpoint::PlanLocalStages(clique, local_options));
        out += "=== STAGES (local) ===\n";
      }
      out += graph.ToString();
      lint::DiagnosticEngine diag;
      verify::VerifyStageGraph(graph, &diag);
      out += diag.ToString();
    }
  }
  if (out.empty()) {
    return Status::InvalidArgument(
        "script contains no query statement (only CREATE VIEW)");
  }
  return out;
}

Result<lint::LintReport> RaSqlContext::Lint(const std::string& sql) const {
  std::shared_lock lock(mu_);
  lint::Linter linter(&catalog_);
  return linter.LintSql(sql);
}

Result<std::string> RaSqlContext::Explain(const std::string& sql) {
  RASQL_ASSIGN_OR_RETURN(std::vector<sql::Statement> statements,
                         sql::Parser::ParseScript(sql));
  std::shared_lock<std::shared_mutex> shared(mu_, std::defer_lock);
  std::unique_lock<std::shared_mutex> exclusive(mu_, std::defer_lock);
  if (ScriptWritesCatalog(statements)) {
    exclusive.lock();
  } else {
    shared.lock();
  }
  std::string out;
  for (const sql::Statement& stmt : statements) {
    if (stmt.kind == sql::Statement::Kind::kInsert) {
      out += "=== INSERT INTO " + stmt.insert->table + " ===\n";
      continue;
    }
    if (stmt.kind == sql::Statement::Kind::kCreateView) {
      analysis::Analyzer analyzer(&catalog_);
      RASQL_ASSIGN_OR_RETURN(
          plan::PlanPtr view_plan,
          analyzer.AnalyzeSelect(*stmt.create_view->definition));
      view_plan = plan::Optimize(std::move(view_plan), config_.optimizer);
      out += "=== CREATE VIEW " + stmt.create_view->name + " ===\n";
      out += view_plan->ToString(0);
      // Later statements may reference the view; register its schema only.
      std::vector<storage::Column> cols = view_plan->schema().columns();
      for (size_t i = 0; i < cols.size(); ++i) {
        cols[i].name = stmt.create_view->columns[i];
      }
      catalog_.PutTable(stmt.create_view->name,
                        storage::Schema(std::move(cols)));
      continue;
    }
    analysis::Analyzer analyzer(&catalog_);
    RASQL_ASSIGN_OR_RETURN(analysis::AnalyzedQuery analyzed,
                           analyzer.Analyze(*stmt.query));
    analyzed.Optimize(config_.optimizer);
    out += analyzed.ToString();
  }
  return out;
}

}  // namespace rasql::engine
