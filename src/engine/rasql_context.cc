#include "engine/rasql_context.h"

#include "analysis/analyzer.h"
#include "common/check.h"
#include "fixpoint/stage_plan.h"
#include "sql/parser.h"
#include "verify/verifier.h"

namespace rasql::engine {

using common::Result;
using common::Status;
using storage::Relation;
using storage::ToLower;

RaSqlContext::RaSqlContext(EngineConfig config)
    : config_(std::move(config)) {}

Status RaSqlContext::RegisterTable(const std::string& name,
                                   Relation relation) {
  RASQL_RETURN_IF_ERROR(catalog_.RegisterTable(name, relation.schema()));
  tables_.emplace(ToLower(name), std::move(relation));
  return Status::OK();
}

Status RaSqlContext::DropTable(const std::string& name) {
  const std::string key = ToLower(name);
  if (tables_.erase(key) == 0) {
    return Status::NotFound("no table named '" + name + "'");
  }
  // Rebuild the catalog without the dropped entry.
  analysis::Catalog fresh;
  for (const auto& [table_name, rel] : tables_) {
    fresh.PutTable(table_name, rel.schema());
  }
  catalog_ = std::move(fresh);
  return Status::OK();
}

const Relation* RaSqlContext::FindTable(const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? nullptr : &it->second;
}

Result<ExecutionResult> RaSqlContext::Execute(const std::string& sql) {
  RASQL_ASSIGN_OR_RETURN(std::vector<sql::Statement> statements,
                         sql::Parser::ParseScript(sql));
  if (statements.empty()) {
    return Status::InvalidArgument("empty statement");
  }
  ExecutionResult execution;
  if (config_.lint_before_execute) {
    RASQL_ASSIGN_OR_RETURN(execution.lint_report, Lint(sql));
    if (execution.lint_report.BlocksExecution(config_.lint)) {
      return Status::AnalysisError(
          "query refused by lint" +
          std::string(config_.lint.werror ? " (werror)" : "") + ":\n" +
          execution.lint_report.ToString());
    }
  }
  bool produced_result = false;
  for (const sql::Statement& stmt : statements) {
    if (stmt.kind == sql::Statement::Kind::kCreateView) {
      const sql::CreateViewStmt& view = *stmt.create_view;
      analysis::Analyzer analyzer(&catalog_);
      RASQL_ASSIGN_OR_RETURN(plan::PlanPtr view_plan,
                             analyzer.AnalyzeSelect(*view.definition));
      view_plan = plan::Optimize(std::move(view_plan), config_.optimizer);
      if (view_plan->schema().num_columns() !=
          static_cast<int>(view.columns.size())) {
        return Status::AnalysisError(
            "view '" + view.name + "' declares " +
            std::to_string(view.columns.size()) +
            " columns but its query produces " +
            std::to_string(view_plan->schema().num_columns()));
      }
      physical::ExecContext ctx;
      for (const auto& [name, rel] : tables_) ctx.tables[name] = &rel;
      ctx.use_codegen = config_.fixpoint.use_codegen;
      ctx.join_algorithm = config_.fixpoint.join_algorithm;
      RASQL_ASSIGN_OR_RETURN(Relation rel,
                             physical::Execute(*view_plan, ctx));
      // Rename output columns to the declared view columns.
      std::vector<storage::Column> cols = rel.schema().columns();
      for (size_t i = 0; i < cols.size(); ++i) {
        cols[i].name = view.columns[i];
      }
      *rel.mutable_schema() = storage::Schema(std::move(cols));
      RASQL_RETURN_IF_ERROR(RegisterTable(view.name, std::move(rel)));
      continue;
    }
    RASQL_ASSIGN_OR_RETURN(execution.relation,
                           ExecuteQuery(*stmt.query, &execution.fixpoint_stats,
                                        &execution.job_metrics));
    produced_result = true;
  }
  if (!produced_result) {
    return Status::InvalidArgument(
        "script contains no query statement (only CREATE VIEW)");
  }
  return execution;
}

Result<Relation> RaSqlContext::ExecuteQuery(const sql::Query& query,
                                            fixpoint::FixpointStats* stats,
                                            dist::JobMetrics* metrics) {
  *stats = fixpoint::FixpointStats();
  *metrics = dist::JobMetrics();

  analysis::Analyzer analyzer(&catalog_);
  RASQL_ASSIGN_OR_RETURN(analysis::AnalyzedQuery analyzed,
                         analyzer.Analyze(query));

  analyzed.Optimize(config_.optimizer);

  // Evaluate cliques in topological order, materializing views.
  std::map<std::string, Relation> views;
  dist::Cluster cluster(config_.cluster, config_.runtime);
  for (const analysis::RecursiveClique& clique : analyzed.cliques) {
    std::map<std::string, const Relation*> bindings;
    for (const auto& [name, rel] : tables_) bindings[name] = &rel;
    for (const auto& [name, rel] : views) bindings[name] = &rel;

    std::map<std::string, Relation> results;
    fixpoint::FixpointStats clique_stats;
    if (config_.distributed && clique.IsRecursive() &&
        fixpoint::EligibleForDistributed(clique)) {
      fixpoint::DistFixpointOptions dist_options = config_.dist_fixpoint;
      // The iteration-cap/codegen/join knobs are configured once on the
      // local options; copy the shared slice so both paths honor them.
      static_cast<fixpoint::CommonFixpointOptions&>(dist_options) =
          config_.fixpoint;
      RASQL_ASSIGN_OR_RETURN(
          results,
          fixpoint::EvaluateCliqueDistributed(clique, bindings, &cluster,
                                              dist_options, &clique_stats));
    } else {
      fixpoint::FixpointOptions local_options = config_.fixpoint;
      // --threads applies to the local path too: the local evaluator runs
      // its per-partition work on the same runtime configuration.
      local_options.runtime = config_.runtime;
      RASQL_ASSIGN_OR_RETURN(
          results, fixpoint::EvaluateCliqueLocal(clique, bindings,
                                                 local_options,
                                                 &clique_stats));
    }
    stats->MergeFrom(clique_stats);
    for (auto& [name, rel] : results) views[name] = std::move(rel);
  }
  *metrics = cluster.metrics();

  // Execute the body against base tables + materialized views.
  physical::ExecContext ctx;
  for (const auto& [name, rel] : tables_) ctx.tables[name] = &rel;
  for (const auto& [name, rel] : views) ctx.tables[name] = &rel;
  ctx.use_codegen = config_.fixpoint.use_codegen;
  ctx.join_algorithm = config_.fixpoint.join_algorithm;
  return physical::Execute(*analyzed.body, ctx);
}

Result<std::string> RaSqlContext::ExplainStages(const std::string& sql) {
  RASQL_ASSIGN_OR_RETURN(std::vector<sql::Statement> statements,
                         sql::Parser::ParseScript(sql));
  std::string out;
  for (const sql::Statement& stmt : statements) {
    if (stmt.kind == sql::Statement::Kind::kCreateView) {
      // Views evaluate as one physical plan on the driver — no stage
      // submissions to render. Register the schema so later statements
      // referencing the view still analyze.
      analysis::Analyzer analyzer(&catalog_);
      RASQL_ASSIGN_OR_RETURN(
          plan::PlanPtr view_plan,
          analyzer.AnalyzeSelect(*stmt.create_view->definition));
      std::vector<storage::Column> cols = view_plan->schema().columns();
      for (size_t i = 0; i < cols.size(); ++i) {
        cols[i].name = stmt.create_view->columns[i];
      }
      catalog_.PutTable(stmt.create_view->name,
                        storage::Schema(std::move(cols)));
      continue;
    }
    analysis::Analyzer analyzer(&catalog_);
    RASQL_ASSIGN_OR_RETURN(analysis::AnalyzedQuery analyzed,
                           analyzer.Analyze(*stmt.query));
    analyzed.Optimize(config_.optimizer);
    for (const analysis::RecursiveClique& clique : analyzed.cliques) {
      // Same dispatch as ExecuteQuery, same orchestration analysis as the
      // evaluators — the rendered template cannot drift from a real run.
      verify::StageGraph graph;
      if (config_.distributed && clique.IsRecursive() &&
          fixpoint::EligibleForDistributed(clique)) {
        fixpoint::DistFixpointOptions dist_options = config_.dist_fixpoint;
        static_cast<fixpoint::CommonFixpointOptions&>(dist_options) =
            config_.fixpoint;
        RASQL_ASSIGN_OR_RETURN(
            graph, fixpoint::PlanDistributedStages(
                       clique, dist_options, config_.runtime,
                       config_.cluster.num_partitions));
        out += "=== STAGES (distributed) ===\n";
      } else {
        fixpoint::FixpointOptions local_options = config_.fixpoint;
        local_options.runtime = config_.runtime;
        RASQL_ASSIGN_OR_RETURN(
            graph, fixpoint::PlanLocalStages(clique, local_options));
        out += "=== STAGES (local) ===\n";
      }
      out += graph.ToString();
      lint::DiagnosticEngine diag;
      verify::VerifyStageGraph(graph, &diag);
      out += diag.ToString();
    }
  }
  if (out.empty()) {
    return Status::InvalidArgument(
        "script contains no query statement (only CREATE VIEW)");
  }
  return out;
}

Result<lint::LintReport> RaSqlContext::Lint(const std::string& sql) const {
  lint::Linter linter(&catalog_);
  return linter.LintSql(sql);
}

Result<std::string> RaSqlContext::Explain(const std::string& sql) {
  RASQL_ASSIGN_OR_RETURN(std::vector<sql::Statement> statements,
                         sql::Parser::ParseScript(sql));
  std::string out;
  for (const sql::Statement& stmt : statements) {
    if (stmt.kind == sql::Statement::Kind::kCreateView) {
      analysis::Analyzer analyzer(&catalog_);
      RASQL_ASSIGN_OR_RETURN(
          plan::PlanPtr view_plan,
          analyzer.AnalyzeSelect(*stmt.create_view->definition));
      view_plan = plan::Optimize(std::move(view_plan), config_.optimizer);
      out += "=== CREATE VIEW " + stmt.create_view->name + " ===\n";
      out += view_plan->ToString(0);
      // Later statements may reference the view; register its schema only.
      std::vector<storage::Column> cols = view_plan->schema().columns();
      for (size_t i = 0; i < cols.size(); ++i) {
        cols[i].name = stmt.create_view->columns[i];
      }
      catalog_.PutTable(stmt.create_view->name,
                        storage::Schema(std::move(cols)));
      continue;
    }
    analysis::Analyzer analyzer(&catalog_);
    RASQL_ASSIGN_OR_RETURN(analysis::AnalyzedQuery analyzed,
                           analyzer.Analyze(*stmt.query));
    analyzed.Optimize(config_.optimizer);
    out += analyzed.ToString();
  }
  return out;
}

}  // namespace rasql::engine
