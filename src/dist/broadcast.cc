#include "dist/broadcast.h"

#include <cstring>

#include "common/check.h"

namespace rasql::dist {

using common::Result;
using common::Status;
using storage::Relation;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

namespace {

void PutVarint(uint64_t v, std::vector<uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/// Cursor over the encoded payload; all reads are bounds-checked so corrupt
/// inputs produce a Status instead of UB.
class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}

  Result<uint64_t> Varint() {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= bytes_.size()) {
        return Status::Internal("broadcast payload truncated (varint)");
      }
      const uint8_t b = bytes_[pos_++];
      if (shift >= 64) {
        return Status::Internal("broadcast payload corrupt (varint width)");
      }
      v |= static_cast<uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }

  Result<double> Double() {
    if (pos_ + 8 > bytes_.size()) {
      return Status::Internal("broadcast payload truncated (double)");
    }
    double d;
    std::memcpy(&d, bytes_.data() + pos_, 8);
    pos_ += 8;
    return d;
  }

  Result<std::string> String(size_t len) {
    if (pos_ + len > bytes_.size()) {
      return Status::Internal("broadcast payload truncated (string)");
    }
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return s;
  }

 private:
  const std::vector<uint8_t>& bytes_;
  size_t pos_ = 0;
};

}  // namespace

std::vector<uint8_t> EncodeRelation(const Relation& input) {
  std::vector<uint8_t> out;
  out.reserve(input.size() * 4 + 64);

  const Schema& schema = input.schema();
  PutVarint(static_cast<uint64_t>(schema.num_columns()), &out);
  for (const storage::Column& col : schema.columns()) {
    out.push_back(static_cast<uint8_t>(col.type));
    PutVarint(col.name.size(), &out);
    out.insert(out.end(), col.name.begin(), col.name.end());
  }
  PutVarint(input.size(), &out);

  // Column-major delta encoding for integers: consecutive rows of graph
  // relations have correlated ids, so deltas are small and varints shrink
  // them. Doubles and strings are stored plainly. The storage layout is
  // already column-major, so each column streams straight out of the
  // chunks' typed arrays; boxed/mixed chunks fall back to ValueAt.
  for (int c = 0; c < schema.num_columns(); ++c) {
    const size_t col = static_cast<size_t>(c);
    switch (schema.column(c).type) {
      case ValueType::kInt64: {
        int64_t prev = 0;
        for (size_t ch = 0; ch < input.num_chunks(); ++ch) {
          const storage::ColumnChunk& chunk = input.chunk(ch);
          const storage::ColumnChunk::ColumnData& cd = chunk.column(col);
          const bool typed = !cd.variant && cd.tag == ValueType::kInt64 &&
                             cd.null_count == 0;
          for (size_t r = 0; r < chunk.num_rows(); ++r) {
            const int64_t v =
                typed ? cd.i64[r] : chunk.ValueAt(r, col).AsInt();
            PutVarint(ZigZag(v - prev), &out);
            prev = v;
          }
        }
        break;
      }
      case ValueType::kDouble: {
        for (size_t ch = 0; ch < input.num_chunks(); ++ch) {
          const storage::ColumnChunk& chunk = input.chunk(ch);
          const storage::ColumnChunk::ColumnData& cd = chunk.column(col);
          const bool typed = !cd.variant && cd.tag == ValueType::kDouble &&
                             cd.null_count == 0;
          for (size_t r = 0; r < chunk.num_rows(); ++r) {
            const double d =
                typed ? cd.f64[r] : chunk.ValueAt(r, col).AsDouble();
            const size_t at = out.size();
            out.resize(at + 8);
            std::memcpy(out.data() + at, &d, 8);
          }
        }
        break;
      }
      case ValueType::kString: {
        for (size_t ch = 0; ch < input.num_chunks(); ++ch) {
          const storage::ColumnChunk& chunk = input.chunk(ch);
          const storage::ColumnChunk::ColumnData& cd = chunk.column(col);
          const bool typed = !cd.variant && cd.tag == ValueType::kString &&
                             cd.null_count == 0;
          for (size_t r = 0; r < chunk.num_rows(); ++r) {
            if (typed) {
              const std::string& s = cd.dict[cd.codes[r]];
              PutVarint(s.size(), &out);
              out.insert(out.end(), s.begin(), s.end());
            } else {
              const Value v = chunk.ValueAt(r, col);
              const std::string& s = v.AsString();
              PutVarint(s.size(), &out);
              out.insert(out.end(), s.begin(), s.end());
            }
          }
        }
        break;
      }
      case ValueType::kNull:
        break;  // nothing to store
    }
  }
  return out;
}

Result<Relation> DecodeRelation(const std::vector<uint8_t>& bytes) {
  Reader reader(bytes);
  RASQL_ASSIGN_OR_RETURN(const uint64_t num_columns, reader.Varint());
  if (num_columns > 1024) {
    return Status::Internal("broadcast payload corrupt (column count)");
  }
  std::vector<storage::Column> cols;
  cols.reserve(num_columns);
  for (uint64_t c = 0; c < num_columns; ++c) {
    RASQL_ASSIGN_OR_RETURN(const uint64_t type_byte, reader.Varint());
    if (type_byte > static_cast<uint64_t>(ValueType::kString)) {
      return Status::Internal("broadcast payload corrupt (column type)");
    }
    RASQL_ASSIGN_OR_RETURN(const uint64_t name_len, reader.Varint());
    RASQL_ASSIGN_OR_RETURN(std::string name, reader.String(name_len));
    cols.push_back(
        storage::Column{std::move(name), static_cast<ValueType>(type_byte)});
  }
  RASQL_ASSIGN_OR_RETURN(const uint64_t num_rows, reader.Varint());

  Relation rel{Schema(cols)};
  std::vector<Row> rows(num_rows, Row(num_columns));
  for (uint64_t c = 0; c < num_columns; ++c) {
    switch (cols[c].type) {
      case ValueType::kInt64: {
        int64_t prev = 0;
        for (uint64_t r = 0; r < num_rows; ++r) {
          RASQL_ASSIGN_OR_RETURN(const uint64_t zz, reader.Varint());
          prev += UnZigZag(zz);
          rows[r][c] = Value::Int(prev);
        }
        break;
      }
      case ValueType::kDouble: {
        for (uint64_t r = 0; r < num_rows; ++r) {
          RASQL_ASSIGN_OR_RETURN(const double d, reader.Double());
          rows[r][c] = Value::Double(d);
        }
        break;
      }
      case ValueType::kString: {
        for (uint64_t r = 0; r < num_rows; ++r) {
          RASQL_ASSIGN_OR_RETURN(const uint64_t len, reader.Varint());
          RASQL_ASSIGN_OR_RETURN(std::string s, reader.String(len));
          rows[r][c] = Value::String(std::move(s));
        }
        break;
      }
      case ValueType::kNull:
        break;
    }
  }
  for (const Row& row : rows) rel.AppendRow(row);
  return rel;
}

size_t UncompressedWireSize(const Relation& input) {
  return input.ByteSize();
}

size_t HashedRelationSize(const Relation& input) {
  // Bucket array + per-entry pointer/hash overhead on top of the payload;
  // a factor in the 2-3x range for small rows, matching the paper's
  // observation.
  constexpr size_t kPerEntryOverhead = 32;
  return input.ByteSize() + input.size() * kPerEntryOverhead;
}

}  // namespace rasql::dist
