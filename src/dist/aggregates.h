#ifndef RASQL_DIST_AGGREGATES_H_
#define RASQL_DIST_AGGREGATES_H_

#include <vector>

#include "expr/expr.h"
#include "storage/relation.h"

namespace rasql::dist {

/// Describes the aggregate structure of a recursive relation (paper Sec. 2:
/// implicit group-by — every column except the aggregate is a key).
/// `agg_column == -1` means plain set semantics (no aggregate in the head).
struct AggSpec {
  std::vector<int> key_columns;
  int agg_column = -1;
  expr::AggregateFunction function = expr::AggregateFunction::kNone;

  bool has_aggregate() const {
    return function != expr::AggregateFunction::kNone;
  }

  /// AggSpec for a relation with `num_columns` columns whose aggregate (if
  /// any) sits at `agg_column`.
  static AggSpec For(int num_columns, int agg_column,
                     expr::AggregateFunction function);
};

/// Combines two aggregate contributions: min/max keep the better value;
/// sum/count add. Used by map-side partial aggregation and SetRDD merges.
storage::Value CombineAgg(expr::AggregateFunction function,
                          const storage::Value& a, const storage::Value& b);

/// True when `candidate` improves on `current` for min/max (strictly
/// better). For sum/count this is never used — contributions always
/// accumulate.
bool ImprovesAgg(expr::AggregateFunction function,
                 const storage::Value& current,
                 const storage::Value& candidate);

/// Map-side partial aggregation (paper Alg. 5 line 5): collapses `rows` by
/// key, combining aggregate values; reduces shuffle volume. For set
/// semantics this deduplicates.
std::vector<storage::Row> PartialAggregate(std::vector<storage::Row> rows,
                                           const AggSpec& spec);

/// PartialAggregate over a chunked relation (frozen deltas, morsel slots):
/// key and aggregate cells stream straight from the column arrays — no
/// full-row materialization. Rows are visited in relation order, so the
/// output is identical to the vector overload on the materialized rows.
std::vector<storage::Row> PartialAggregate(const storage::Relation& rel,
                                           const AggSpec& spec);

}  // namespace rasql::dist

#endif  // RASQL_DIST_AGGREGATES_H_
