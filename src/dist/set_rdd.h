#ifndef RASQL_DIST_SET_RDD_H_
#define RASQL_DIST_SET_RDD_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dist/aggregates.h"
#include "dist/partition.h"
#include "storage/relation.h"

namespace rasql::dist {

/// One partition of the `all` relation held as mutable hash state — the
/// paper's SetRDD (Sec. 6.1). Union is O(new tuples) instead of copying the
/// whole RDD; with an aggregate, the state is a key -> best/accumulated
/// value map implementing Alg. 5's extended set-difference/union.
class SetRddPartition {
 public:
  SetRddPartition(storage::Schema schema, AggSpec spec)
      : schema_(std::move(schema)), spec_(std::move(spec)) {}

  /// Merges candidate rows into the state. Rows that change the state (new
  /// key, improved min/max, or a sum/count increment) are appended to
  /// `*delta` in the form that must drive the next iteration:
  ///   - set semantics / min / max: the stored row;
  ///   - sum / count: the *increment* (new paths discovered this round).
  void MergeDelta(const std::vector<storage::Row>& candidates,
                  std::vector<storage::Row>* delta);

  /// Same merge over a chunked candidate slice (shuffle payloads); rows are
  /// visited in slice order, so the delta order matches the row overload.
  void MergeDelta(const storage::Relation& candidates,
                  std::vector<storage::Row>* delta);

  /// Loads already-converged rows into the state without emitting a delta —
  /// the warm-start prologue (DESIGN.md §14). Aggregate rows overwrite any
  /// existing key outright: the input is a prior fixpoint, not a candidate
  /// stream, so its value for a key IS the converged value.
  void Absorb(const storage::Relation& converged);

  size_t size() const {
    return spec_.has_aggregate() ? agg_state_.size() : set_state_.size();
  }
  /// Approximate bytes of cached state — feeds TaskIo::cached_state_bytes.
  size_t byte_size() const { return byte_size_; }

  /// Materializes the state as a relation (final fixpoint output).
  storage::Relation ToRelation() const;

 private:
  void MergeOne(const storage::Row& row, bool accumulates,
                std::vector<storage::Row>* delta);

  storage::Schema schema_;
  AggSpec spec_;
  std::unordered_set<storage::Row, storage::RowHash, storage::RowEq>
      set_state_;
  std::unordered_map<storage::Row, storage::Value, storage::RowHash,
                     storage::RowEq>
      agg_state_;
  size_t byte_size_ = 0;
};

/// The partitioned `all` relation: one SetRddPartition per partition,
/// co-partitioned with the delta on the recursive relation's key columns.
class SetRdd {
 public:
  SetRdd(storage::Schema schema, AggSpec spec, Partitioning partitioning);

  const Partitioning& partitioning() const { return partitioning_; }
  int num_partitions() const { return partitioning_.num_partitions; }

  SetRddPartition* partition(int p) { return &partitions_[p]; }
  const SetRddPartition& partition(int p) const { return partitions_[p]; }

  size_t TotalRows() const;
  size_t TotalBytes() const;

  /// Gathers the fixpoint result across partitions.
  storage::Relation Collect() const;

 private:
  Partitioning partitioning_;
  std::vector<SetRddPartition> partitions_;
};

}  // namespace rasql::dist

#endif  // RASQL_DIST_SET_RDD_H_
