#include "dist/aggregates.h"

#include <unordered_map>

#include "common/check.h"

namespace rasql::dist {

using expr::AggregateFunction;
using storage::Row;
using storage::Value;

AggSpec AggSpec::For(int num_columns, int agg_column,
                     AggregateFunction function) {
  AggSpec spec;
  spec.agg_column = agg_column;
  spec.function = function;
  for (int c = 0; c < num_columns; ++c) {
    if (c != agg_column || function == AggregateFunction::kNone) {
      spec.key_columns.push_back(c);
    }
  }
  if (function == AggregateFunction::kNone) spec.agg_column = -1;
  return spec;
}

Value CombineAgg(AggregateFunction function, const Value& a, const Value& b) {
  switch (function) {
    case AggregateFunction::kMin:
      return a.Compare(b) <= 0 ? a : b;
    case AggregateFunction::kMax:
      return a.Compare(b) >= 0 ? a : b;
    case AggregateFunction::kSum:
    case AggregateFunction::kCount:
      // count is the continuous monotonic count (paper Sec. 3): like sum,
      // contributions accumulate; int-typed inputs stay int.
      if (a.type() == storage::ValueType::kInt64 &&
          b.type() == storage::ValueType::kInt64) {
        return Value::Int(a.AsInt() + b.AsInt());
      }
      return Value::Double(a.AsNumeric() + b.AsNumeric());
    case AggregateFunction::kNone:
      break;
  }
  RASQL_CHECK(false);
}

bool ImprovesAgg(AggregateFunction function, const Value& current,
                 const Value& candidate) {
  switch (function) {
    case AggregateFunction::kMin:
      return candidate.Compare(current) < 0;
    case AggregateFunction::kMax:
      return candidate.Compare(current) > 0;
    default:
      return false;
  }
}

std::vector<Row> PartialAggregate(std::vector<Row> rows,
                                  const AggSpec& spec) {
  if (!spec.has_aggregate()) {
    // Set semantics: deduplicate.
    std::unordered_map<Row, bool, storage::RowHash, storage::RowEq> seen;
    std::vector<Row> out;
    out.reserve(rows.size());
    for (Row& row : rows) {
      if (seen.emplace(row, true).second) out.push_back(std::move(row));
    }
    return out;
  }

  // Group by key columns; combine the aggregate column.
  std::unordered_map<Row, Value, storage::RowHash, storage::RowEq> groups;
  groups.reserve(rows.size());
  for (const Row& row : rows) {
    Row key = storage::ProjectKey(row, spec.key_columns);
    const Value& v = row[spec.agg_column];
    auto [it, inserted] = groups.emplace(std::move(key), v);
    if (!inserted) it->second = CombineAgg(spec.function, it->second, v);
  }

  std::vector<Row> out;
  out.reserve(groups.size());
  const int num_columns =
      static_cast<int>(spec.key_columns.size()) + 1;
  for (auto& [key, value] : groups) {
    Row row(num_columns);
    for (size_t i = 0; i < spec.key_columns.size(); ++i) {
      row[spec.key_columns[i]] = key[i];
    }
    row[spec.agg_column] = value;
    out.push_back(std::move(row));
  }
  return out;
}

std::vector<Row> PartialAggregate(const storage::Relation& rel,
                                  const AggSpec& spec) {
  if (!spec.has_aggregate()) {
    std::unordered_map<Row, bool, storage::RowHash, storage::RowEq> seen;
    std::vector<Row> out;
    out.reserve(rel.size());
    rel.ForEachRow([&](const Row& row) {
      if (seen.emplace(row, true).second) out.push_back(row);
    });
    return out;
  }

  std::unordered_map<Row, Value, storage::RowHash, storage::RowEq> groups;
  groups.reserve(rel.size());
  Row key(spec.key_columns.size());
  for (size_t ch = 0; ch < rel.num_chunks(); ++ch) {
    const storage::ColumnChunk& chunk = rel.chunk(ch);
    for (size_t r = 0; r < chunk.num_rows(); ++r) {
      for (size_t i = 0; i < spec.key_columns.size(); ++i) {
        key[i] = chunk.ValueAt(r, static_cast<size_t>(spec.key_columns[i]));
      }
      const Value v = chunk.ValueAt(r, static_cast<size_t>(spec.agg_column));
      auto [it, inserted] = groups.emplace(key, v);
      if (!inserted) it->second = CombineAgg(spec.function, it->second, v);
    }
  }

  std::vector<Row> out;
  out.reserve(groups.size());
  const int num_columns = static_cast<int>(spec.key_columns.size()) + 1;
  for (auto& [key_row, value] : groups) {
    Row row(num_columns);
    for (size_t i = 0; i < spec.key_columns.size(); ++i) {
      row[spec.key_columns[i]] = key_row[i];
    }
    row[spec.agg_column] = value;
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace rasql::dist
