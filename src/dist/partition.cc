#include "dist/partition.h"

#include "common/check.h"

namespace rasql::dist {

using storage::Relation;
using storage::Row;

PartitionedRelation::PartitionedRelation(storage::Schema schema,
                                         Partitioning partitioning)
    : schema_(std::move(schema)), partitioning_(std::move(partitioning)) {
  RASQL_CHECK(partitioning_.num_partitions > 0);
  partitions_.resize(partitioning_.num_partitions, Relation(schema_));
}

void PartitionedRelation::Add(Row row) {
  const int p = partitioning_.PartitionOf(row);
  partitions_[p].Add(std::move(row));
}

size_t PartitionedRelation::TotalRows() const {
  size_t n = 0;
  for (const Relation& p : partitions_) n += p.size();
  return n;
}

size_t PartitionedRelation::TotalBytes() const {
  size_t n = 0;
  for (const Relation& p : partitions_) n += p.ByteSize();
  return n;
}

Relation PartitionedRelation::Collect() const {
  Relation out(schema_);
  out.Reserve(TotalRows());
  for (const Relation& p : partitions_) {
    p.ForEachRow([&](const Row& row) { out.Add(row); });
  }
  return out;
}

PartitionedRelation Partition(const Relation& input,
                              std::vector<int> key_columns,
                              int num_partitions) {
  Partitioning spec{std::move(key_columns), num_partitions};
  PartitionedRelation out(input.schema(), spec);
  input.ForEachRow([&](const Row& row) { out.Add(row); });
  return out;
}

std::vector<Row> GatherShuffle(const std::vector<ShuffleWrite>& writes,
                               int dest) {
  std::vector<Row> out;
  size_t total = 0;
  for (const ShuffleWrite& w : writes) total += w.slice_per_dest[dest].size();
  out.reserve(total);
  for (const ShuffleWrite& w : writes) {
    w.slice_per_dest[dest].ForEachRow(
        [&](const Row& row) { out.push_back(row); });
  }
  return out;
}

}  // namespace rasql::dist
