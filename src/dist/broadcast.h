#ifndef RASQL_DIST_BROADCAST_H_
#define RASQL_DIST_BROADCAST_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/relation.h"

namespace rasql::dist {

/// Relation wire format used for broadcasts: zigzag-varint integers,
/// raw little-endian doubles, length-prefixed strings. This is the
/// "compressed relation" of paper Sec. 7.2 — instead of shipping the
/// 2-3x-larger prebuilt hash table from the master, workers receive the
/// compact encoding and build their hash tables locally.
std::vector<uint8_t> EncodeRelation(const storage::Relation& input);

/// Decodes a relation produced by EncodeRelation. The schema is carried in
/// the encoding; decode failures surface as Status (corrupt payloads).
common::Result<storage::Relation> DecodeRelation(
    const std::vector<uint8_t>& bytes);

/// Size of the naive uncompressed wire format (8 bytes/numeric, raw
/// strings); the baseline the compression is measured against.
size_t UncompressedWireSize(const storage::Relation& input);

/// Approximate in-memory size of a built hash table over the relation —
/// what Spark's default broadcast-hash join ships (paper: "the hashed
/// relation is often 2X to 3X larger than the original one").
size_t HashedRelationSize(const storage::Relation& input);

}  // namespace rasql::dist

#endif  // RASQL_DIST_BROADCAST_H_
