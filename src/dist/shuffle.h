#ifndef RASQL_DIST_SHUFFLE_H_
#define RASQL_DIST_SHUFFLE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "dist/partition.h"

namespace rasql::dist {

/// Lifecycle tracker for the slices of one map→reduce shuffle exchange.
/// Producer partition p's ShuffleWrite holds one slice per consumer; the
/// whole write is *published* atomically when p's map task completes, and
/// a consumer marks itself *consumed* once it has gathered its slices.
/// Publication is a release store and observation an acquire load, so a
/// consumer that sees a slice as published also sees its rows — the
/// happens-before edge the async-shuffle pipeline rides on (DESIGN.md §8).
class SliceReadiness {
 public:
  SliceReadiness() = default;
  explicit SliceReadiness(int num_partitions) { Reset(num_partitions); }

  /// Re-arms the tracker for `num_partitions` producers/consumers, all
  /// unpublished and unconsumed. Not thread-safe; call between stages.
  void Reset(int num_partitions) {
    published_ = std::vector<std::atomic<uint8_t>>(num_partitions);
    consumed_ = std::vector<std::atomic<uint8_t>>(num_partitions);
  }

  int num_partitions() const { return static_cast<int>(published_.size()); }

  void Publish(int producer) {
    published_[producer].store(1, std::memory_order_release);
  }
  bool Published(int producer) const {
    return published_[producer].load(std::memory_order_acquire) != 0;
  }
  int NumPublished() const {
    int n = 0;
    for (const auto& f : published_) {
      n += f.load(std::memory_order_acquire) != 0;
    }
    return n;
  }
  bool AllPublished() const {
    return NumPublished() == num_partitions();
  }

  void MarkConsumed(int consumer) {
    consumed_[consumer].store(1, std::memory_order_release);
  }
  bool Consumed(int consumer) const {
    return consumed_[consumer].load(std::memory_order_acquire) != 0;
  }

 private:
  std::vector<std::atomic<uint8_t>> published_;
  std::vector<std::atomic<uint8_t>> consumed_;
};

/// One shuffle exchange: the per-producer ShuffleWrite slots plus their
/// readiness lifecycle. Producer tasks deposit with Put(); the stage
/// runtime publishes a producer's slices when its task completes; consumer
/// tasks Gather() the slices addressed to them. A StageSpec names the
/// channel a stage reads and/or writes, which is what lets the runtime
/// schedule consumers against producers instead of against a stage barrier.
class ShuffleChannel {
 public:
  explicit ShuffleChannel(int num_partitions)
      : num_partitions_(num_partitions),
        writes_(num_partitions, ShuffleWrite(num_partitions)),
        readiness_(num_partitions) {}

  /// Clears rows, byte counts and readiness so the channel can carry the
  /// next iteration's exchange. Not thread-safe; call between stages.
  void Reset() {
    writes_.assign(num_partitions_, ShuffleWrite(num_partitions_));
    readiness_.Reset(num_partitions_);
  }

  int num_partitions() const { return num_partitions_; }

  /// Deposits producer p's map output. The slices stay invisible to
  /// consumers until Publish(p).
  void Put(int producer, ShuffleWrite write) {
    writes_[producer] = std::move(write);
  }
  void Publish(int producer) { readiness_.Publish(producer); }

  const ShuffleWrite& write(int producer) const { return writes_[producer]; }

  /// Collects the rows addressed to `consumer` from every *published*
  /// producer, in ascending producer order, and marks the consumer done.
  /// Under the all-slices dependency the pipeline declares, every producer
  /// is published by the time a consumer runs, so this gathers the full
  /// exchange — the partial-visibility behaviour exists so tests can pin
  /// down that unpublished slices are never observed.
  std::vector<storage::Row> Gather(int consumer) {
    std::vector<storage::Row> rows;
    for (int src = 0; src < num_partitions_; ++src) {
      if (!readiness_.Published(src)) continue;
      writes_[src].slice_per_dest[consumer].ForEachRow(
          [&rows](const storage::Row& row) { rows.push_back(row); });
    }
    readiness_.MarkConsumed(consumer);
    return rows;
  }

  /// Rows currently buffered across all slices. Driver-side, post-barrier:
  /// the fixpoint's "anything new this iteration?" check.
  size_t TotalRows() const {
    size_t n = 0;
    for (const ShuffleWrite& w : writes_) {
      for (const auto& slice : w.slice_per_dest) n += slice.size();
    }
    return n;
  }

  SliceReadiness& readiness() { return readiness_; }
  const SliceReadiness& readiness() const { return readiness_; }

 private:
  int num_partitions_;
  std::vector<ShuffleWrite> writes_;
  SliceReadiness readiness_;
};

}  // namespace rasql::dist

#endif  // RASQL_DIST_SHUFFLE_H_
