#include "dist/cluster.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace rasql::dist {

// StageSpec::Kind maps onto verify::StageKind by value; keep the two enums
// in lockstep.
static_assert(static_cast<int>(StageSpec::Kind::kLocal) ==
              static_cast<int>(verify::StageKind::kLocal));
static_assert(static_cast<int>(StageSpec::Kind::kShuffleMap) ==
              static_cast<int>(verify::StageKind::kShuffleMap));
static_assert(static_cast<int>(StageSpec::Kind::kShuffleReduce) ==
              static_cast<int>(verify::StageKind::kShuffleReduce));
static_assert(static_cast<int>(StageSpec::Kind::kCombined) ==
              static_cast<int>(verify::StageKind::kCombined));

double JobMetrics::TotalSimTime() const {
  double t = broadcast_time_sec;
  for (const StageMetrics& s : stages) t += s.sim_time_sec;
  return t;
}

double JobMetrics::TotalComputeTime() const {
  double t = 0;
  for (const StageMetrics& s : stages) t += s.total_compute_sec;
  return t;
}

size_t JobMetrics::TotalShuffleBytes() const {
  size_t n = 0;
  for (const StageMetrics& s : stages) n += s.shuffle_bytes;
  return n;
}

size_t JobMetrics::TotalRemoteBytes() const {
  size_t n = 0;
  for (const StageMetrics& s : stages) n += s.remote_bytes;
  return n;
}

std::string JobMetrics::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "stages=%d sim_time=%.3fs compute=%.3fs shuffle=%.1fMB "
                "remote=%.1fMB broadcast=%.1fMB",
                num_stages(), TotalSimTime(), TotalComputeTime(),
                TotalShuffleBytes() / 1e6, TotalRemoteBytes() / 1e6,
                broadcast_bytes / 1e6);
  return buf;
}

std::vector<storage::Row> TaskContext::ReadShuffle() {
  RASQL_CHECK(!is_split_task());
  RASQL_CHECK(spec_->input_slices != nullptr);
  return spec_->input_slices->Gather(partition_);
}

void TaskContext::WriteShuffle(ShuffleWrite write) {
  RASQL_CHECK(!is_split_task());
  RASQL_CHECK(spec_->output_slices != nullptr);
  io_.shuffle_out_bytes = write.bytes_per_dest;
  spec_->output_slices->Put(partition_, std::move(write));
}

void TaskContext::ReportShuffleBytes(std::vector<size_t> bytes_per_dest) {
  RASQL_CHECK(!is_split_task());
  io_.shuffle_out_bytes = std::move(bytes_per_dest);
}

void TaskContext::ReportCachedState(size_t bytes) {
  RASQL_CHECK(!is_split_task());
  io_.cached_state_bytes += bytes;
}

void TaskContext::Count(size_t n) {
  RASQL_CHECK(!is_split_task());
  RASQL_CHECK(spec_->counter != nullptr);
  spec_->counter->Add(partition_, n);
}

void TaskContext::Fail(common::Status status) {
  RASQL_CHECK(!is_split_task());
  RASQL_CHECK(spec_->status != nullptr);
  spec_->status->Fail(partition_, std::move(status));
}

bool TaskContext::aborted() const {
  return spec_->status != nullptr && spec_->status->aborted();
}

int Cluster::PlaceTask(int partition, int stage_index) const {
  if (config_.partition_aware_scheduling) {
    return config_.OwnerOf(partition);
  }
  // Hybrid policy: the driver balances load over workers without regard to
  // cached-state locality; the deterministic stage-dependent rotation
  // reproduces Spark's behaviour of re-placing tasks differently in each
  // stage (paper Sec. 6.1, "unnecessary remote data fetches").
  return (partition + stage_index) % config_.num_workers;
}

StageMetrics& Cluster::AccountStage(
    const std::string& name, std::vector<TaskIo>* ios,
    const std::vector<double>& task_seconds) {
  const int stage_index = stage_counter_++;
  StageMetrics stage;
  stage.name = name;
  stage.num_tasks = config_.num_partitions;
  stage.num_exec_tasks = config_.num_partitions;

  // Cost-model pass, after the barrier, in ascending partition order: the
  // simulated placement and network charges depend only on the per-task
  // reports, never on execution order, so the modeled stage is identical
  // for every thread count — and for the async pipeline on or off.
  std::vector<double> worker_busy(config_.num_workers, 0.0);
  std::vector<int> producer_worker(config_.num_partitions, 0);
  std::vector<std::vector<size_t>> shuffle_bytes(config_.num_partitions);
  bool stage_shuffles = false;

  for (int p = 0; p < config_.num_partitions; ++p) {
    const int worker = PlaceTask(p, stage_index);
    producer_worker[p] = worker;

    TaskIo& io = (*ios)[p];
    const double compute = task_seconds[p] * config_.compute_scale;

    // Remote bytes this task must pull before/while computing.
    size_t remote = 0;
    if (worker != config_.OwnerOf(p)) remote += io.cached_state_bytes;
    if (io.consumes_shuffle && !last_shuffle_bytes_.empty()) {
      // Pull this partition's slice of every producer's map output; slices
      // produced on another worker cross the network.
      for (size_t src = 0; src < last_shuffle_bytes_.size(); ++src) {
        const auto& out = last_shuffle_bytes_[src];
        if (p < static_cast<int>(out.size()) &&
            last_shuffle_producer_worker_[src] != worker) {
          remote += out[p];
        }
      }
    }
    if (!io.shuffle_out_bytes.empty()) {
      stage_shuffles = true;
      size_t out_total = 0;
      for (size_t b : io.shuffle_out_bytes) out_total += b;
      stage.shuffle_bytes += out_total;
      shuffle_bytes[p] = std::move(io.shuffle_out_bytes);
    }

    const double task_time = compute + config_.per_task_overhead_sec +
                             static_cast<double>(remote) /
                                 config_.network_bytes_per_sec;
    worker_busy[worker] += task_time;
    stage.total_compute_sec += compute;
    stage.remote_bytes += remote;
  }

  stage.max_worker_compute_sec =
      *std::max_element(worker_busy.begin(), worker_busy.end());
  stage.sim_time_sec =
      config_.per_stage_overhead_sec + stage.max_worker_compute_sec;

  if (stage_shuffles) {
    last_shuffle_producer_worker_ = std::move(producer_worker);
    last_shuffle_bytes_ = std::move(shuffle_bytes);
  } else {
    last_shuffle_producer_worker_.clear();
    last_shuffle_bytes_.clear();
  }

  metrics_.stages.push_back(std::move(stage));
  return metrics_.stages.back();
}

int Cluster::VerifyChannelId(const ShuffleChannel* channel,
                             const std::string& hint) {
  auto [it, inserted] = verify_channel_ids_.emplace(
      channel, static_cast<int>(verify_graph_.channels.size()));
  if (inserted) verify_graph_.AddChannel(hint);
  return it->second;
}

void Cluster::VerifySubmission(
    std::initializer_list<const StageSpec*> specs) {
  const int group =
      specs.size() > 1 ? verify_next_group_++ : -1;
  for (const StageSpec* spec : specs) {
    verify::StageNode& node = verify_graph_.AddStage(
        spec->name, static_cast<verify::StageKind>(spec->kind));
    node.group = group;
    node.split = static_cast<bool>(spec->split_tasks);
    if (spec->input_slices != nullptr) {
      node.input_channel =
          VerifyChannelId(spec->input_slices, spec->name + ".in");
    }
    if (spec->output_slices != nullptr) {
      node.output_channel =
          VerifyChannelId(spec->output_slices, spec->name + ".out");
    }
    if (spec->counter != nullptr) {
      auto [it, inserted] = verify_counter_ids_.emplace(
          spec->counter, static_cast<int>(verify_graph_.counters.size()));
      if (inserted) verify_graph_.AddCounter(spec->name + ".counter");
      node.counter = it->second;
    }
    if (spec->status != nullptr) {
      auto [it, inserted] = verify_status_ids_.emplace(
          spec->status, static_cast<int>(verify_graph_.statuses.size()));
      if (inserted) verify_graph_.AddStatus(spec->name + ".status");
      node.status = it->second;
    }
    for (const StageSpec::ResourceClaim& claim : spec->claims) {
      auto [it, inserted] = verify_resource_ids_.emplace(
          claim.resource, static_cast<int>(verify_graph_.resources.size()));
      if (inserted) verify_graph_.AddResource(claim.name);
      node.claims.push_back({it->second, claim.mode});
    }
    // The simulation cannot see driver-side ShuffleChannel::Reset() calls
    // (or channels recycled across jobs); the real readiness flags can.
    // Snapshot them so the lifecycle checks run against reality.
    if (spec->input_slices != nullptr) {
      verifier_->SetLivePublished(
          node.input_channel, spec->input_slices->readiness().NumPublished());
    }
    if (spec->output_slices != nullptr) {
      verifier_->SetLivePublished(
          node.output_channel,
          spec->output_slices->readiness().NumPublished());
    }
  }
  const size_t before = verify_diagnostics_.diagnostics().size();
  verifier_->VerifyPending(&verify_diagnostics_);
  bool stage_graph_contracts_hold = true;
  for (size_t i = before; i < verify_diagnostics_.diagnostics().size(); ++i) {
    const lint::Diagnostic& d = verify_diagnostics_.diagnostics()[i];
    if (d.severity == lint::Severity::kError) {
      stage_graph_contracts_hold = false;
      std::fprintf(stderr, "%s\n", d.ToString().c_str());
    }
  }
  // Malformed orchestration is a programmer error, caught before any task
  // of the submission has run.
  RASQL_CHECK(stage_graph_contracts_hold);
}

const StageMetrics& Cluster::RunStage(const StageSpec& spec,
                                      const StageTask& task) {
  if (verify_enabled_) VerifySubmission({&spec});
  return RunStageUnverified(spec, task);
}

const StageMetrics& Cluster::RunStageUnverified(const StageSpec& spec,
                                                const StageTask& task) {
  std::vector<TaskIo> ios;
  std::vector<double> task_seconds;
  const std::function<TaskIo(int)> run = [&](int p) {
    TaskContext ctx(&spec, p, config_.num_partitions);
    task(ctx);
    // Publish after the body so a consumer that sees the slice also sees
    // its rows (release/acquire pair in SliceReadiness).
    if (spec.output_slices != nullptr) spec.output_slices->Publish(p);
    return std::move(ctx.io_);
  };
  executor_.Map<TaskIo>(config_.num_partitions, run, &ios, &task_seconds);
  return AccountStage(spec.name, &ios, task_seconds);
}

const StageMetrics& Cluster::RunStage(const StageSpec& spec,
                                      const StageTask& split_task,
                                      const StageTask& main_task) {
  const int P = config_.num_partitions;
  // Flatten the requested sub-tasks: partition p owns the contiguous id
  // range [split_begin[p], split_begin[p + 1]) of split tasks.
  std::vector<int> nsplits(P, 0);
  std::vector<int> split_begin(P + 1, 0);
  int total_splits = 0;
  int max_splits = 1;
  for (int p = 0; p < P; ++p) {
    split_begin[p] = total_splits;
    if (spec.split_tasks) nsplits[p] = std::max(0, spec.split_tasks(p));
    total_splits += nsplits[p];
    max_splits = std::max(max_splits, nsplits[p]);
  }
  split_begin[P] = total_splits;
  if (total_splits == 0) return RunStage(spec, main_task);
  if (verify_enabled_) VerifySubmission({&spec});

  // One DAG, topologically ordered: sub-tasks [0, S) then finalize tasks
  // [S, S + P). Finalize task S + p depends on exactly its partition's
  // sub-tasks, so it is released the moment the last of its own morsels
  // lands — independent of sibling partitions' stragglers.
  const int S = total_splits;
  std::vector<int> deps(S + P, 0);
  std::vector<std::vector<int>> dependents(S + P);
  std::vector<int> split_partition(S, 0);
  for (int p = 0; p < P; ++p) {
    deps[S + p] = nsplits[p];
    for (int i = split_begin[p]; i < split_begin[p + 1]; ++i) {
      split_partition[i] = p;
      dependents[i].push_back(S + p);
    }
  }

  std::vector<TaskIo> ios;
  std::vector<double> task_seconds;
  const std::function<TaskIo(int)> run = [&](int i) {
    if (i < S) {
      const int p = split_partition[i];
      TaskContext ctx(&spec, p, P, /*split_index=*/i - split_begin[p],
                      /*num_splits=*/nsplits[p]);
      split_task(ctx);
      return std::move(ctx.io_);
    }
    TaskContext ctx(&spec, i - S, P);
    main_task(ctx);
    if (spec.output_slices != nullptr) spec.output_slices->Publish(i - S);
    return std::move(ctx.io_);
  };
  executor_.MapGraph<TaskIo>(S + P, run, deps, dependents, &ios,
                             &task_seconds);

  // One partition-ordered report per partition: the finalize task's I/O
  // (sub-tasks are barred from reporting) with the partition's sub-task
  // seconds folded into its measured time. The cost model therefore sees
  // exactly what an unsplit stage would report, modulo measured seconds —
  // modeled byte counts and task counts are split-invariant.
  std::vector<TaskIo> main_ios(std::make_move_iterator(ios.begin() + S),
                               std::make_move_iterator(ios.end()));
  std::vector<double> merged_seconds(task_seconds.begin() + S,
                                     task_seconds.end());
  for (int i = 0; i < S; ++i) {
    merged_seconds[split_partition[i]] += task_seconds[i];
  }
  StageMetrics& stage = AccountStage(spec.name, &main_ios, merged_seconds);
  stage.num_exec_tasks = S + P;
  stage.max_partition_splits = max_splits;
  return stage;
}

void Cluster::RunStagePair(const StageSpec& map_spec,
                           const StageTask& map_task,
                           const StageSpec& reduce_spec,
                           const StageTask& reduce_task) {
  // Verified as one concurrency group either way: the contract of a pair
  // (reduce consumes what map publishes, accumulators distinct, shared
  // resources ordered by the slice dependency) is the same whether the
  // runtime interleaves the 2P tasks or barriers between the stages.
  if (verify_enabled_) VerifySubmission({&map_spec, &reduce_spec});

  const bool pipelined = executor_.options().async_shuffle &&
                         executor_.num_threads() > 1 &&
                         map_spec.output_slices != nullptr &&
                         reduce_spec.input_slices == map_spec.output_slices;
  if (!pipelined) {
    RunStageUnverified(map_spec, map_task);
    RunStageUnverified(reduce_spec, reduce_task);
    return;
  }

  // One DAG of 2P tasks, topologically ordered: producers [0, P), then
  // consumers [P, 2P). Consumer P+c needs one slice from every producer,
  // so it depends on all P of them and is released the moment the last
  // slice it needs is published — while sibling consumers may still be
  // waiting on stragglers.
  const int P = config_.num_partitions;
  std::vector<int> deps(2 * P, 0);
  std::vector<std::vector<int>> dependents(2 * P);
  for (int c = 0; c < P; ++c) deps[P + c] = P;
  for (int p = 0; p < P; ++p) {
    dependents[p].reserve(P);
    for (int c = 0; c < P; ++c) dependents[p].push_back(P + c);
  }

  std::vector<TaskIo> ios;
  std::vector<double> task_seconds;
  const std::function<TaskIo(int)> run = [&](int i) {
    if (i < P) {
      TaskContext ctx(&map_spec, i, P);
      map_task(ctx);
      map_spec.output_slices->Publish(i);
      return std::move(ctx.io_);
    }
    TaskContext ctx(&reduce_spec, i - P, P);
    reduce_task(ctx);
    return std::move(ctx.io_);
  };
  executor_.MapGraph<TaskIo>(2 * P, run, deps, dependents, &ios,
                             &task_seconds);

  // Account the map stage, then the reduce stage, each from its
  // partition-ordered reports — the exact sequence the barriered path
  // produces, so the modeled job is bit-identical.
  std::vector<TaskIo> map_ios(std::make_move_iterator(ios.begin()),
                              std::make_move_iterator(ios.begin() + P));
  std::vector<double> map_seconds(task_seconds.begin(),
                                  task_seconds.begin() + P);
  AccountStage(map_spec.name, &map_ios, map_seconds);

  std::vector<TaskIo> reduce_ios(std::make_move_iterator(ios.begin() + P),
                                 std::make_move_iterator(ios.end()));
  std::vector<double> reduce_seconds(task_seconds.begin() + P,
                                     task_seconds.end());
  AccountStage(reduce_spec.name, &reduce_ios, reduce_seconds);
}

void Cluster::Broadcast(size_t bytes) {
  metrics_.broadcast_bytes += bytes;
  // The driver streams the payload to every worker (Spark's torrent
  // broadcast amortizes this; we charge the simple star topology, which is
  // what the paper's "broadcasting a large relation takes time" refers to).
  metrics_.broadcast_time_sec += static_cast<double>(bytes) *
                                 config_.num_workers /
                                 config_.network_bytes_per_sec;
}

void Cluster::ChargeDriverCompute(double seconds) {
  metrics_.broadcast_time_sec += seconds;
}

}  // namespace rasql::dist
