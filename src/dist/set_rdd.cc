#include "dist/set_rdd.h"

#include "common/check.h"

namespace rasql::dist {

using storage::Relation;
using storage::Row;
using storage::Value;

void SetRddPartition::MergeOne(const Row& row, bool accumulates,
                               std::vector<Row>* delta) {
  if (!spec_.has_aggregate()) {
    // Plain semi-naive set difference + union (paper Alg. 4 ReduceStage).
    auto [it, inserted] = set_state_.insert(row);
    if (inserted) {
      byte_size_ += storage::RowByteSize(row);
      delta->push_back(row);
    }
    return;
  }

  // Aggregate semantics (paper Alg. 5 ReduceStage, extended to sum/count).
  Row key = storage::ProjectKey(row, spec_.key_columns);
  const Value& v = row[spec_.agg_column];
  auto [it, inserted] = agg_state_.emplace(std::move(key), v);
  if (inserted) {
    byte_size_ += storage::RowByteSize(row);
    delta->push_back(row);
    return;
  }
  if (accumulates) {
    // The delta carries the *increment*: downstream joins propagate only
    // the newly discovered contribution, never re-counting old ones.
    it->second = CombineAgg(spec_.function, it->second, v);
    delta->push_back(row);
  } else if (ImprovesAgg(spec_.function, it->second, v)) {
    it->second = v;
    delta->push_back(row);
  }
  // Otherwise: dominated tuple, discarded (paper Sec. 6.2: "(b, 3) will
  // be ignored and discarded due to the property of monotonic
  // aggregates").
}

void SetRddPartition::MergeDelta(const std::vector<Row>& candidates,
                                 std::vector<Row>* delta) {
  const bool accumulates =
      spec_.function == expr::AggregateFunction::kSum ||
      spec_.function == expr::AggregateFunction::kCount;
  for (const Row& row : candidates) MergeOne(row, accumulates, delta);
}

void SetRddPartition::MergeDelta(const Relation& candidates,
                                 std::vector<Row>* delta) {
  const bool accumulates =
      spec_.function == expr::AggregateFunction::kSum ||
      spec_.function == expr::AggregateFunction::kCount;
  candidates.ForEachRow(
      [&](const Row& row) { MergeOne(row, accumulates, delta); });
}

void SetRddPartition::Absorb(const Relation& converged) {
  converged.ForEachRow([&](const Row& row) {
    if (!spec_.has_aggregate()) {
      auto [it, inserted] = set_state_.insert(row);
      if (inserted) byte_size_ += storage::RowByteSize(row);
      return;
    }
    Row key = storage::ProjectKey(row, spec_.key_columns);
    const Value& v = row[spec_.agg_column];
    auto [it, inserted] = agg_state_.emplace(std::move(key), v);
    if (inserted) {
      byte_size_ += storage::RowByteSize(row);
    } else {
      it->second = v;
    }
  });
}

Relation SetRddPartition::ToRelation() const {
  Relation out(schema_);
  if (!spec_.has_aggregate()) {
    out.Reserve(set_state_.size());
    for (const Row& row : set_state_) out.Add(row);
    return out;
  }
  out.Reserve(agg_state_.size());
  const int num_columns = schema_.num_columns();
  for (const auto& [key, value] : agg_state_) {
    Row row(num_columns);
    for (size_t i = 0; i < spec_.key_columns.size(); ++i) {
      row[spec_.key_columns[i]] = key[i];
    }
    row[spec_.agg_column] = value;
    out.Add(std::move(row));
  }
  return out;
}

SetRdd::SetRdd(storage::Schema schema, AggSpec spec, Partitioning partitioning)
    : partitioning_(std::move(partitioning)) {
  RASQL_CHECK(partitioning_.num_partitions > 0);
  partitions_.reserve(partitioning_.num_partitions);
  for (int p = 0; p < partitioning_.num_partitions; ++p) {
    partitions_.emplace_back(schema, spec);
  }
}

size_t SetRdd::TotalRows() const {
  size_t n = 0;
  for (const SetRddPartition& p : partitions_) n += p.size();
  return n;
}

size_t SetRdd::TotalBytes() const {
  size_t n = 0;
  for (const SetRddPartition& p : partitions_) n += p.byte_size();
  return n;
}

Relation SetRdd::Collect() const {
  Relation out;
  bool first = true;
  for (const SetRddPartition& p : partitions_) {
    Relation part = p.ToRelation();
    if (first) {
      out = std::move(part);
      first = false;
    } else {
      part.ForEachRow([&](const Row& row) { out.Add(row); });
    }
  }
  return out;
}

}  // namespace rasql::dist
