#ifndef RASQL_DIST_PARTITION_H_
#define RASQL_DIST_PARTITION_H_

#include <string>
#include <vector>

#include "storage/relation.h"

namespace rasql::dist {

/// Hash partitioning spec: which columns form the key and how many
/// partitions exist (paper Appendix A).
struct Partitioning {
  std::vector<int> key_columns;
  int num_partitions = 0;

  bool valid() const { return num_partitions > 0; }
  /// Partition id of a row under this spec.
  int PartitionOf(const storage::Row& row) const {
    return static_cast<int>(storage::HashRowKey(row, key_columns) %
                            static_cast<uint64_t>(num_partitions));
  }
  bool operator==(const Partitioning& other) const {
    return key_columns == other.key_columns &&
           num_partitions == other.num_partitions;
  }
};

/// A relation hash-partitioned across the cluster — the RDD analogue. The
/// `partitioning` records how rows were placed so downstream operators can
/// tell whether a shuffle is needed (co-partitioning checks in Alg. 4-6).
class PartitionedRelation {
 public:
  PartitionedRelation() = default;
  PartitionedRelation(storage::Schema schema, Partitioning partitioning);

  const storage::Schema& schema() const { return schema_; }
  const Partitioning& partitioning() const { return partitioning_; }
  int num_partitions() const { return partitioning_.num_partitions; }

  const storage::Relation& partition(int p) const { return partitions_[p]; }
  storage::Relation* mutable_partition(int p) { return &partitions_[p]; }

  /// Adds a row to the partition selected by the partitioning spec.
  void Add(storage::Row row);

  size_t TotalRows() const;
  size_t TotalBytes() const;
  bool Empty() const { return TotalRows() == 0; }

  /// Gathers all partitions into one local relation (driver collect()).
  storage::Relation Collect() const;

 private:
  storage::Schema schema_;
  Partitioning partitioning_;
  std::vector<storage::Relation> partitions_;
};

/// Hash-partitions `input` on `key_columns` into `num_partitions` pieces.
PartitionedRelation Partition(const storage::Relation& input,
                              std::vector<int> key_columns,
                              int num_partitions);

/// Map-side shuffle output: rows bucketed by destination partition as
/// column-chunked slices, plus the byte counts the cost model needs.
/// `bytes_per_dest` keeps the row-encoding estimate (RowByteSize) so the
/// modeled shuffle volumes are unchanged by the columnar layout.
struct ShuffleWrite {
  std::vector<storage::Relation> slice_per_dest;
  std::vector<size_t> bytes_per_dest;

  explicit ShuffleWrite(int num_partitions)
      : slice_per_dest(num_partitions), bytes_per_dest(num_partitions, 0) {}

  void Add(const storage::Row& row, const Partitioning& partitioning) {
    const int dest = partitioning.PartitionOf(row);
    bytes_per_dest[dest] += storage::RowByteSize(row);
    slice_per_dest[dest].AppendRow(row);
  }
};

/// Collects the slices addressed to partition `dest` from every map task's
/// ShuffleWrite — the reduce-side read.
std::vector<storage::Row> GatherShuffle(
    const std::vector<ShuffleWrite>& writes, int dest);

}  // namespace rasql::dist

#endif  // RASQL_DIST_PARTITION_H_
