#ifndef RASQL_DIST_CLUSTER_H_
#define RASQL_DIST_CLUSTER_H_

#include <functional>
#include <string>
#include <vector>

#include "runtime/stage_executor.h"

namespace rasql::dist {

/// Configuration of the simulated cluster. Defaults approximate the paper's
/// testbed shape (Sec. 8): 15 workers, 8 cores each (120 partitions),
/// 1 Gbit network — scaled to partition counts that make sense for the
/// scaled-down datasets.
struct ClusterConfig {
  /// Number of worker nodes. Partition p lives on worker p % num_workers.
  int num_workers = 4;
  /// Number of partitions = number of tasks per stage.
  int num_partitions = 8;
  /// Simulated network bandwidth for shuffles/broadcasts/remote reads.
  /// 1 Gbit/s = 125 MB/s, as in the paper's cluster.
  double network_bytes_per_sec = 125.0e6;
  /// Driver-side cost of scheduling one stage (DAG bookkeeping, task
  /// serialization, launch round-trips). Stage combination (Sec. 7.1) wins
  /// by paying this once instead of twice per iteration.
  double per_stage_overhead_sec = 0.010;
  /// Per-task launch/teardown cost.
  double per_task_overhead_sec = 0.001;
  /// When true, tasks are pinned to the worker that owns their partition's
  /// cached state (the paper's partition-aware scheduling, Sec. 6.1). When
  /// false, the default "hybrid" policy spreads tasks by load and pays
  /// remote fetches for cached state.
  bool partition_aware_scheduling = true;
  /// Scales measured single-core compute into simulated time. 1.0 = the
  /// local machine's speed is taken at face value.
  double compute_scale = 1.0;

  /// Home worker of a partition.
  int OwnerOf(int partition) const { return partition % num_workers; }
};

/// What one task tells the cost model about its I/O.
struct TaskIo {
  /// Bytes of cached state (base-relation hash table, SetRDD partition)
  /// the task must read. Free when the task runs on the owner worker;
  /// fetched over the network otherwise.
  size_t cached_state_bytes = 0;
  /// Map-side shuffle output: bytes destined for each of the
  /// `num_partitions` reduce partitions. Empty when the stage does not
  /// shuffle.
  std::vector<size_t> shuffle_out_bytes;
  /// True when the task consumes the shuffle output addressed to its
  /// partition by the previous shuffling stage.
  bool consumes_shuffle = false;
};

/// Per-stage accounting produced by the cost model.
struct StageMetrics {
  std::string name;
  int num_tasks = 0;
  double max_worker_compute_sec = 0;  ///< critical-path compute
  double total_compute_sec = 0;       ///< sum over tasks (measured)
  size_t shuffle_bytes = 0;            ///< total map output
  size_t remote_bytes = 0;             ///< bytes that crossed the network
  double sim_time_sec = 0;             ///< modeled stage duration
};

/// Whole-job accounting.
struct JobMetrics {
  std::vector<StageMetrics> stages;
  size_t broadcast_bytes = 0;
  double broadcast_time_sec = 0;

  int num_stages() const { return static_cast<int>(stages.size()); }
  double TotalSimTime() const;
  double TotalComputeTime() const;
  size_t TotalShuffleBytes() const;
  size_t TotalRemoteBytes() const;
  std::string Summary() const;
};

/// The simulated cluster: a driver that schedules stages of tasks over
/// `num_workers` workers and charges network/scheduling costs according to
/// the config. Task *compute* is real (the task closures do the actual
/// relational work and are timed); placement, fetches and stage overheads
/// are modeled — see DESIGN.md §1.
///
/// Underneath the simulation sits a real work-stealing runtime: with
/// `runtime.num_threads > 1` the task closures of a stage execute
/// concurrently (DESIGN.md §7). Closures handed to RunStage must then only
/// touch partition-owned state. The simulated placement/network accounting
/// is derived from partition-ordered results after the stage barrier, so it
/// is deterministic and thread-count-independent.
class Cluster {
 public:
  explicit Cluster(ClusterConfig config,
                   runtime::RuntimeOptions runtime_options = {})
      : config_(config), executor_(runtime_options) {}

  const ClusterConfig& config() const { return config_; }
  const runtime::RuntimeOptions& runtime_options() const {
    return executor_.options();
  }
  /// Actual number of task-executing threads (>= 1).
  int num_threads() const { return executor_.num_threads(); }

  /// Runs one stage: `task(p)` executes for every partition p in
  /// [0, num_partitions) — concurrently when the runtime has more than one
  /// thread — is timed, and reports its I/O. Returns the stage metrics
  /// (also appended to job metrics).
  const StageMetrics& RunStage(const std::string& name,
                               const std::function<TaskIo(int)>& task);

  /// Charges a broadcast of `bytes` from the driver to every worker.
  void Broadcast(size_t bytes);

  /// Charges driver-side work of `seconds` (e.g. building a hash table on
  /// the master before broadcast, which the paper's optimization avoids).
  void ChargeDriverCompute(double seconds);

  const JobMetrics& metrics() const { return metrics_; }
  JobMetrics* mutable_metrics() { return &metrics_; }
  /// Returns the cluster to its initial state: metrics, the stage counter
  /// driving the hybrid-policy placement rotation, and pending shuffle
  /// bookkeeping. A reused cluster then schedules exactly like a fresh one.
  void ResetMetrics() {
    metrics_ = JobMetrics();
    stage_counter_ = 0;
    last_shuffle_producer_worker_.clear();
    last_shuffle_bytes_.clear();
  }

 private:
  /// Worker a task is placed on under the active scheduling policy.
  int PlaceTask(int partition, int stage_index) const;

  ClusterConfig config_;
  runtime::StageExecutor executor_;
  JobMetrics metrics_;
  int stage_counter_ = 0;
  /// Placement of the map tasks of the most recent shuffling stage:
  /// producer partition -> worker, plus its per-destination byte counts.
  /// Used to decide which shuffle bytes cross the network.
  std::vector<int> last_shuffle_producer_worker_;
  std::vector<std::vector<size_t>> last_shuffle_bytes_;
};

}  // namespace rasql::dist

#endif  // RASQL_DIST_CLUSTER_H_
