#ifndef RASQL_DIST_CLUSTER_H_
#define RASQL_DIST_CLUSTER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "dist/shuffle.h"
#include "lint/diagnostic.h"
#include "runtime/stage_accumulators.h"
#include "runtime/stage_executor.h"
#include "verify/stage_graph.h"
#include "verify/verifier.h"

namespace rasql::dist {

/// Configuration of the simulated cluster. Defaults approximate the paper's
/// testbed shape (Sec. 8): 15 workers, 8 cores each (120 partitions),
/// 1 Gbit network — scaled to partition counts that make sense for the
/// scaled-down datasets.
struct ClusterConfig {
  /// Number of worker nodes. Partition p lives on worker p % num_workers.
  int num_workers = 4;
  /// Number of partitions = number of tasks per stage.
  int num_partitions = 8;
  /// Simulated network bandwidth for shuffles/broadcasts/remote reads.
  /// 1 Gbit/s = 125 MB/s, as in the paper's cluster.
  double network_bytes_per_sec = 125.0e6;
  /// Driver-side cost of scheduling one stage (DAG bookkeeping, task
  /// serialization, launch round-trips). Stage combination (Sec. 7.1) wins
  /// by paying this once instead of twice per iteration.
  double per_stage_overhead_sec = 0.010;
  /// Per-task launch/teardown cost.
  double per_task_overhead_sec = 0.001;
  /// When true, tasks are pinned to the worker that owns their partition's
  /// cached state (the paper's partition-aware scheduling, Sec. 6.1). When
  /// false, the default "hybrid" policy spreads tasks by load and pays
  /// remote fetches for cached state.
  bool partition_aware_scheduling = true;
  /// Scales measured single-core compute into simulated time. 1.0 = the
  /// local machine's speed is taken at face value.
  double compute_scale = 1.0;

  /// Home worker of a partition.
  int OwnerOf(int partition) const { return partition % num_workers; }
};

/// What one task tells the cost model about its I/O. Assembled by
/// TaskContext as a side effect of the task's shuffle/report calls.
struct TaskIo {
  /// Bytes of cached state (base-relation hash table, SetRDD partition)
  /// the task must read. Free when the task runs on the owner worker;
  /// fetched over the network otherwise.
  size_t cached_state_bytes = 0;
  /// Map-side shuffle output: bytes destined for each of the
  /// `num_partitions` reduce partitions. Empty when the stage does not
  /// shuffle.
  std::vector<size_t> shuffle_out_bytes;
  /// True when the task consumes the shuffle output addressed to its
  /// partition by the previous shuffling stage.
  bool consumes_shuffle = false;
};

/// Per-stage accounting produced by the cost model.
struct StageMetrics {
  std::string name;
  int num_tasks = 0;
  double max_worker_compute_sec = 0;  ///< critical-path compute
  double total_compute_sec = 0;       ///< sum over tasks (measured)
  size_t shuffle_bytes = 0;            ///< total map output
  size_t remote_bytes = 0;             ///< bytes that crossed the network
  double sim_time_sec = 0;             ///< modeled stage duration
  /// Execution-observability fields: how many real task closures ran
  /// (split sub-tasks + per-partition finalize tasks) and the largest
  /// per-partition split factor. Purely observational — like the measured
  /// seconds above they are NOT part of the modeled-metric identity set
  /// (name/num_tasks/byte counts), which stays bit-identical whether or
  /// not a stage was split (DESIGN.md §10).
  int num_exec_tasks = 0;
  int max_partition_splits = 1;
};

/// Whole-job accounting.
struct JobMetrics {
  std::vector<StageMetrics> stages;
  size_t broadcast_bytes = 0;
  double broadcast_time_sec = 0;

  int num_stages() const { return static_cast<int>(stages.size()); }
  double TotalSimTime() const;
  double TotalComputeTime() const;
  size_t TotalShuffleBytes() const;
  size_t TotalRemoteBytes() const;
  std::string Summary() const;
};

/// Declares a stage before submission: its name, how it participates in
/// the shuffle, which slice channels its tasks read/write, and which
/// cross-partition accumulators they may update. Shuffle dependencies are
/// carried here — not hidden inside task closures — which is what lets the
/// runtime schedule consumer tasks against producer slices (async shuffle)
/// and lets the cost model derive `consumes_shuffle` from the declared
/// kind instead of trusting each closure.
struct StageSpec {
  /// How the stage relates to the shuffle exchange around it.
  enum class Kind {
    kLocal,          ///< no shuffle on either side
    kShuffleMap,     ///< produces map output
    kShuffleReduce,  ///< consumes the previous stage's map output
    kCombined,       ///< fused reduce(i)+map(i+1): consumes and produces
  };

  std::string name;
  Kind kind = Kind::kLocal;
  /// Channel this stage's tasks Gather from; null when the stage reads no
  /// routed rows (it may still *model* consumption via its kind).
  ShuffleChannel* input_slices = nullptr;
  /// Channel this stage's tasks deposit into; the runtime publishes a
  /// task's slices the moment that task completes. Null when the stage
  /// routes no rows (modeled-only shuffles report bytes instead).
  ShuffleChannel* output_slices = nullptr;
  /// Optional accumulators TaskContext::Count / Fail write through.
  runtime::StageCounter* counter = nullptr;
  runtime::StageStatus* status = nullptr;
  /// Optional per-task split hint: `split_tasks(p)` returns how many
  /// sub-tasks partition p's work should be cut into (<= 0 or absent =
  /// don't split). Honored by the RunStage(spec, split_task, main_task)
  /// overload — a giant partition becomes several real tasks inside one
  /// modeled stage, while the cost model keeps seeing one partition-ordered
  /// report per partition (the sub-tasks' measured seconds are summed into
  /// their partition's report), so modeled metrics are split-invariant.
  std::function<int(int)> split_tasks;

  /// Declared access of this stage's task closures to one shared resource
  /// (a per-partition slot vector, a SetRDD, a broadcast table). Purely
  /// metadata: the StageGraphVerifier checks the claim set for
  /// contradictory ownership and unordered concurrent writes (DESIGN.md
  /// §11); the runtime does not enforce it. `resource` is any stable
  /// address identifying the object; `name` labels it in diagnostics.
  struct ResourceClaim {
    const void* resource = nullptr;
    verify::AccessMode mode = verify::AccessMode::kReadShared;
    std::string name;
  };
  std::vector<ResourceClaim> claims;

  /// Builder-style helper: declares `resource` accessed under `mode`.
  StageSpec& Claim(const void* resource, verify::AccessMode mode,
                   std::string claim_name) {
    claims.push_back({resource, mode, std::move(claim_name)});
    return *this;
  }

  /// True when tasks of this kind consume the previous map output.
  bool ConsumesShuffle() const {
    return kind == Kind::kShuffleReduce || kind == Kind::kCombined;
  }
};

/// Handed to every task of a stage: the partition identity, shuffle
/// read/write handles, and the stage's shared accumulators. The TaskIo
/// report the cost model consumes is assembled from the calls made here,
/// so a task cannot route rows without the bytes being accounted.
class TaskContext {
 public:
  int partition() const { return partition_; }
  int num_partitions() const { return num_partitions_; }

  /// Split sub-task identity (DESIGN.md §10): when the stage was submitted
  /// through the split overload, each of partition p's sub-tasks sees
  /// split_index() in [0, num_splits()); the per-partition finalize task
  /// and every task of an unsplit stage see -1/0. Split sub-tasks are pure
  /// compute into caller-owned slots: the reporting calls below
  /// (Read/WriteShuffle, ReportShuffleBytes/CachedState, Count, Fail) are
  /// finalize-only — two sub-tasks of one partition would race on the
  /// partition-indexed accumulators otherwise.
  int split_index() const { return split_index_; }
  int num_splits() const { return num_splits_; }
  bool is_split_task() const { return split_index_ >= 0; }

  /// Gathers the rows addressed to this partition from the stage's input
  /// channel (all published slices; under the pipeline's dependencies that
  /// is every slice).
  std::vector<storage::Row> ReadShuffle();

  /// Deposits this task's map output into the stage's output channel and
  /// records its per-destination bytes for the cost model. The slices
  /// become visible to consumers when this task completes.
  void WriteShuffle(ShuffleWrite write);

  /// Models a shuffle write without routing rows (synthetic stages and the
  /// baselines): records the per-destination byte counts only.
  void ReportShuffleBytes(std::vector<size_t> bytes_per_dest);

  /// Charges reading `bytes` of partition-cached state (free on the owner
  /// worker, remote otherwise). Accumulates across calls.
  void ReportCachedState(size_t bytes);

  /// Adds to the stage's StageCounter (requires spec.counter).
  void Count(size_t n);
  /// Records this task's failure in the stage's StageStatus (requires
  /// spec.status) and raises the shared abort flag siblings may poll.
  void Fail(common::Status status);
  /// True once any task of the stage failed; false when no StageStatus.
  bool aborted() const;

 private:
  friend class Cluster;
  TaskContext(const StageSpec* spec, int partition, int num_partitions,
              int split_index = -1, int num_splits = 0)
      : spec_(spec),
        partition_(partition),
        num_partitions_(num_partitions),
        split_index_(split_index),
        num_splits_(num_splits) {
    io_.consumes_shuffle = spec->ConsumesShuffle();
  }

  const StageSpec* spec_;
  int partition_;
  int num_partitions_;
  int split_index_;
  int num_splits_;
  TaskIo io_;
};

/// A stage's task body. Invoked once per partition, possibly concurrently;
/// closures must only touch partition-owned state (DESIGN.md §7) and go
/// through the TaskContext for everything cross-partition.
using StageTask = std::function<void(TaskContext&)>;

/// The simulated cluster: a driver that schedules stages of tasks over
/// `num_workers` workers and charges network/scheduling costs according to
/// the config. Task *compute* is real (the task closures do the actual
/// relational work and are timed); placement, fetches and stage overheads
/// are modeled — see DESIGN.md §1.
///
/// Underneath the simulation sits a real work-stealing runtime: with
/// `runtime.num_threads > 1` the task closures of a stage execute
/// concurrently (DESIGN.md §7), and with `runtime.async_shuffle` a
/// RunStagePair pipelines the reduce tasks into the map stage (§8). The
/// simulated placement/network accounting is always derived from
/// partition-ordered results after the barrier, so it is deterministic,
/// thread-count-independent, and identical with the pipeline on or off.
class Cluster {
 public:
  explicit Cluster(ClusterConfig config,
                   runtime::RuntimeOptions runtime_options = {})
      : config_(config), executor_(runtime_options) {
    verify_enabled_ = executor_.options().VerifyStagesEnabled();
    verify_graph_.num_partitions = config_.num_partitions;
    verifier_ =
        std::make_unique<verify::StageGraphVerifier>(&verify_graph_);
  }

  const ClusterConfig& config() const { return config_; }
  const runtime::RuntimeOptions& runtime_options() const {
    return executor_.options();
  }
  /// Actual number of task-executing threads (>= 1).
  int num_threads() const { return executor_.num_threads(); }

  /// Runs one stage: `task` executes with a TaskContext for every
  /// partition in [0, num_partitions) — concurrently when the runtime has
  /// more than one thread — is timed, and its I/O report feeds the cost
  /// model. Slices written to `spec.output_slices` are published as each
  /// task completes. Returns the stage metrics (also appended to job
  /// metrics).
  const StageMetrics& RunStage(const StageSpec& spec, const StageTask& task);

  /// Split form of RunStage (DESIGN.md §10): when `spec.split_tasks` asks
  /// for sub-tasks, partition p's work runs as split_tasks(p) `split_task`
  /// closures (split_index() in [0, num_splits())) followed by one
  /// `main_task` finalize closure per partition that depends on all of its
  /// partition's sub-tasks — one dependency DAG, so a giant partition's
  /// morsels run as independently stealable tasks inside one modeled stage.
  /// Split closures are pure compute into caller-owned slots; only the
  /// finalize closure may use the TaskContext reporting calls. The cost
  /// model still sees one partition-ordered report per partition with that
  /// partition's sub-task seconds folded in, so modeled metrics are
  /// identical to the unsplit stage; num_exec_tasks/max_partition_splits
  /// record the real task count. With no splits requested this degrades to
  /// plain RunStage(spec, main_task).
  const StageMetrics& RunStage(const StageSpec& spec,
                               const StageTask& split_task,
                               const StageTask& main_task);

  /// Submits a map stage and the reduce stage that consumes its output as
  /// one unit. Barriered by default (exactly two RunStage calls). With
  /// `runtime.async_shuffle` and >1 thread, the 2P tasks are enqueued as
  /// one dependency DAG instead: each reduce task waits on the publication
  /// of its input slices (one per producer) and is released the moment the
  /// last one lands, overlapping reduce compute with remaining map tasks.
  /// The cost model still accounts the map stage then the reduce stage
  /// post-barrier in partition order, so metrics are bit-identical to the
  /// barriered path. Requires reduce_spec.input_slices ==
  /// map_spec.output_slices (non-null) to pipeline.
  void RunStagePair(const StageSpec& map_spec, const StageTask& map_task,
                    const StageSpec& reduce_spec,
                    const StageTask& reduce_task);

  /// Charges a broadcast of `bytes` from the driver to every worker.
  void Broadcast(size_t bytes);

  /// Charges driver-side work of `seconds` (e.g. building a hash table on
  /// the master before broadcast, which the paper's optimization avoids).
  void ChargeDriverCompute(double seconds);

  const JobMetrics& metrics() const { return metrics_; }
  JobMetrics* mutable_metrics() { return &metrics_; }

  /// True when stage submissions are verified against the declared
  /// contracts before any task runs (DESIGN.md §11).
  bool verify_enabled() const { return verify_enabled_; }
  /// Diagnostics of every verified submission so far (empty entries mean
  /// all contracts held — violations abort the process instead).
  const lint::DiagnosticEngine& verify_report() const {
    return verify_diagnostics_;
  }
  /// The append-only submission log the verifier reasons about.
  const verify::StageGraph& verify_graph() const { return verify_graph_; }
  /// Returns the cluster to its initial state: metrics, the stage counter
  /// driving the hybrid-policy placement rotation, and pending shuffle
  /// bookkeeping. A reused cluster then schedules exactly like a fresh one.
  void ResetMetrics() {
    metrics_ = JobMetrics();
    stage_counter_ = 0;
    last_shuffle_producer_worker_.clear();
    last_shuffle_bytes_.clear();
  }

 private:
  /// RunStage minus the submission-time verification; the verified entry
  /// points (RunStage, RunStagePair) land here.
  const StageMetrics& RunStageUnverified(const StageSpec& spec,
                                         const StageTask& task);

  /// Maps a submission (one spec, or the two specs of a pair) into the
  /// abstract verify graph, snapshots the live published counts of every
  /// referenced channel, and runs the pending checks. Prints the
  /// diagnostics and aborts when a contract is violated — before any task
  /// of the submission runs.
  void VerifySubmission(std::initializer_list<const StageSpec*> specs);
  /// Registry interning for the pointer-free verify graph.
  int VerifyChannelId(const ShuffleChannel* channel, const std::string& hint);

  /// Worker a task is placed on under the active scheduling policy.
  int PlaceTask(int partition, int stage_index) const;

  /// The post-barrier cost-model pass over one stage's partition-ordered
  /// task reports: placement, network charges, makespan. Consumes `ios`.
  /// Non-const so the split path can stamp observability fields after
  /// accounting.
  StageMetrics& AccountStage(const std::string& name,
                             std::vector<TaskIo>* ios,
                             const std::vector<double>& task_seconds);

  ClusterConfig config_;
  runtime::StageExecutor executor_;
  JobMetrics metrics_;
  int stage_counter_ = 0;
  /// Placement of the map tasks of the most recent shuffling stage:
  /// producer partition -> worker, plus its per-destination byte counts.
  /// Used to decide which shuffle bytes cross the network.
  std::vector<int> last_shuffle_producer_worker_;
  std::vector<std::vector<size_t>> last_shuffle_bytes_;

  /// Submission-time verification state (DESIGN.md §11). The graph is an
  /// append-only log of every submitted spec; the interning maps translate
  /// the pointers a StageSpec carries into its abstract ids. Kept across
  /// ResetMetrics(): the log describes history, not pending cost state.
  bool verify_enabled_ = false;
  verify::StageGraph verify_graph_;
  std::unique_ptr<verify::StageGraphVerifier> verifier_;
  lint::DiagnosticEngine verify_diagnostics_;
  std::map<const void*, int> verify_channel_ids_;
  std::map<const void*, int> verify_resource_ids_;
  std::map<const void*, int> verify_counter_ids_;
  std::map<const void*, int> verify_status_ids_;
  int verify_next_group_ = 0;
};

}  // namespace rasql::dist

#endif  // RASQL_DIST_CLUSTER_H_
