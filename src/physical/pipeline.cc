#include "physical/pipeline.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "expr/expr.h"
#include "storage/column_chunk.h"

namespace rasql::physical {

using common::Result;
using common::Status;
using plan::LogicalPlan;
using plan::PlanKind;
using storage::Relation;
using storage::Row;
using storage::RowRange;

std::optional<PipelineProgram> PipelineProgram::Compile(
    const LogicalPlan& plan) {
  PipelineProgram program;
  // Walk the left spine root-to-leaf, collecting steps in reverse.
  std::vector<Step> reversed;
  const LogicalPlan* node = &plan;
  while (true) {
    switch (node->kind()) {
      case PlanKind::kProject: {
        Step step;
        step.kind = Step::Kind::kProject;
        step.project = static_cast<const plan::ProjectNode*>(node);
        reversed.push_back(step);
        node = &node->child(0);
        break;
      }
      case PlanKind::kFilter: {
        Step step;
        step.kind = Step::Kind::kFilter;
        step.filter = static_cast<const plan::FilterNode*>(node);
        reversed.push_back(step);
        node = &node->child(0);
        break;
      }
      case PlanKind::kJoin: {
        const auto& join = static_cast<const plan::JoinNode&>(*node);
        if (join.is_cross()) return std::nullopt;
        Step step;
        step.kind = Step::Kind::kHashProbe;
        step.join = &join;
        reversed.push_back(step);
        ++program.num_probe_steps_;
        node = &node->child(0);
        break;
      }
      case PlanKind::kTableScan:
      case PlanKind::kRecursiveRef:
      case PlanKind::kValues:
        // A bare leaf has nothing to fuse; let the tree walk resolve it.
        if (reversed.empty()) return std::nullopt;
        program.driver_ = node;
        std::reverse(reversed.begin(), reversed.end());
        program.steps_ = std::move(reversed);
        return program;
      default:
        // Aggregate / Sort / Limit are pipeline breakers.
        return std::nullopt;
    }
  }
}

Result<BoundPipeline> PipelineProgram::Bind(const ExecContext& ctx) const {
  RASQL_CHECK(driver_ != nullptr);
  BoundPipeline bound;
  bound.batch_rows_ = ctx.batch_rows;

  // Resolve the driver. VALUES drivers own a materialized copy; scans and
  // recursive refs borrow from the context.
  if (driver_->kind() == PlanKind::kValues) {
    const auto& values = static_cast<const plan::ValuesNode&>(*driver_);
    bound.driver_.owned =
        std::make_unique<Relation>(values.schema(), values.rows());
    bound.driver_.rel = bound.driver_.owned.get();
  } else {
    RASQL_ASSIGN_OR_RETURN(bound.driver_, ExecuteBorrowed(*driver_, ctx));
  }

  bound.steps_.reserve(steps_.size());
  for (const Step& step : steps_) {
    BoundPipeline::BoundStep bs;
    bs.kind = step.kind;
    switch (step.kind) {
      case Step::Kind::kFilter:
        bs.predicate.emplace(step.filter->predicate(), ctx.use_codegen);
        // Compile the whole predicate for the batch path, mirroring
        // whichever scalar engine the row evaluator above will use so both
        // modes agree bit for bit (expr/vec_program.h).
        if (ctx.batch_rows > 0) {
          bs.vec_filter = expr::VecProgram::CompileForFilter(
              step.filter->predicate(), ctx.use_codegen);
        }
        break;
      case Step::Kind::kProject:
        bs.projector.emplace(step.project->exprs(), ctx.use_codegen);
        break;
      case Step::Kind::kHashProbe: {
        RASQL_ASSIGN_OR_RETURN(bs.build,
                               ExecuteBorrowed(step.join->child(1), ctx));
        bs.table.emplace(*bs.build.rel, step.join->right_keys());
        bs.probe_keys = step.join->left_keys();
        bs.left_width = step.join->child(0).schema().num_columns();
        bs.right_width = step.join->child(1).schema().num_columns();
        break;
      }
    }
    bound.steps_.push_back(std::move(bs));
  }
  return bound;
}

void BoundPipeline::PushRow(const Row& row, size_t step,
                            std::vector<ProbeScratch>* scratch,
                            std::vector<Row>* sink) const {
  if (step == steps_.size()) {
    sink->push_back(row);
    return;
  }
  const BoundStep& bs = steps_[step];
  switch (bs.kind) {
    case PipelineProgram::Step::Kind::kFilter:
      if (bs.predicate->Eval(row)) PushRow(row, step + 1, scratch, sink);
      return;
    case PipelineProgram::Step::Kind::kProject: {
      Row projected = bs.projector->Eval(row);
      if (step + 1 == steps_.size()) {
        sink->push_back(std::move(projected));
      } else {
        PushRow(projected, step + 1, scratch, sink);
      }
      return;
    }
    case PipelineProgram::Step::Kind::kHashProbe: {
      ProbeScratch& ps = (*scratch)[step];
      ps.matches.clear();
      bs.table->Probe(row, bs.probe_keys, &ps.matches);
      if (ps.matches.empty()) return;
      // Fill the left half once per input row, the right half per match.
      // Deeper steps never retain a reference to the scratch row, so it is
      // safe to reuse it across matches.
      std::copy(row.begin(), row.end(), ps.combined.begin());
      for (int m : ps.matches) {
        bs.build.rel->CopyRowTo(static_cast<size_t>(m), &ps.combined,
                                bs.left_width);
        PushRow(ps.combined, step + 1, scratch, sink);
      }
      return;
    }
  }
}

Status BoundPipeline::Run(RowRange range, std::vector<Row>* sink) const {
  if (batch_rows_ > 0) return RunBatch(range, sink);
  const size_t end = std::min(range.end, driver_.rel->size());

  std::vector<ProbeScratch> scratch(steps_.size());
  for (size_t s = 0; s < steps_.size(); ++s) {
    if (steps_[s].kind == PipelineProgram::Step::Kind::kHashProbe) {
      scratch[s].combined.resize(steps_[s].left_width +
                                 steps_[s].right_width);
    }
  }
  driver_.rel->ForEachRow(
      RowRange{range.begin, end},
      [&](const Row& row) { PushRow(row, 0, &scratch, sink); });
  return Status::OK();
}

Status BoundPipeline::RunBatch(RowRange range, std::vector<Row>* sink) const {
  const Relation& driver = *driver_.rel;
  const size_t end = std::min(range.end, driver.size());
  if (range.begin >= end) return Status::OK();

  std::vector<ProbeScratch> scratch(steps_.size());
  for (size_t s = 0; s < steps_.size(); ++s) {
    if (steps_[s].kind == PipelineProgram::Step::Kind::kHashProbe) {
      scratch[s].combined.resize(steps_[s].left_width +
                                 steps_[s].right_width);
    }
  }

  Row row_scratch;
  std::vector<uint32_t> sel;
  sel.reserve(batch_rows_);
  expr::VecProgram::Scratch vec_scratch;

  size_t i = range.begin;
  size_t c;
  size_t local;
  driver.Locate(i, &c, &local);
  for (; i < end; ++c, local = 0) {
    const storage::ColumnChunk& chunk = driver.chunk(c);
    const size_t chunk_begin = driver.chunk_begin(c);
    const size_t local_end = std::min(end - chunk_begin, chunk.num_rows());
    while (local < local_end) {
      const size_t batch_end = std::min(local_end, local + batch_rows_);
      sel.clear();
      for (size_t r = local; r < batch_end; ++r) {
        sel.push_back(static_cast<uint32_t>(r));
      }
      i += batch_end - local;
      local = batch_end;

      // Leading filters run as compiled selection-vector kernels over the
      // chunk's typed arrays — any predicate shape, through the vectorized
      // expression layer. A chunk the kernels cannot mirror exactly drops
      // to the row interpreter for the remaining steps — same result,
      // different engine.
      size_t s = 0;
      for (; s < steps_.size() && !sel.empty(); ++s) {
        const BoundStep& bs = steps_[s];
        if (bs.kind != PipelineProgram::Step::Kind::kFilter ||
            !bs.vec_filter) {
          break;
        }
        if (!bs.vec_filter->FilterChunk(chunk, &sel, &vec_scratch)) break;
      }
      if (sel.empty()) continue;

      if (s < steps_.size() &&
          steps_[s].kind == PipelineProgram::Step::Kind::kHashProbe) {
        // Column-wise probe: hash the key cells straight out of the chunk;
        // materialize the combined row only for surviving matches.
        const BoundStep& bs = steps_[s];
        ProbeScratch& ps = scratch[s];
        for (const uint32_t r : sel) {
          ps.matches.clear();
          bs.table->ProbeChunk(chunk, r, bs.probe_keys, &ps.matches);
          if (ps.matches.empty()) continue;
          chunk.CopyRowTo(r, &ps.combined, 0);
          for (int m : ps.matches) {
            bs.build.rel->CopyRowTo(static_cast<size_t>(m), &ps.combined,
                                    bs.left_width);
            PushRow(ps.combined, s + 1, &scratch, sink);
          }
        }
      } else if (s == steps_.size()) {
        for (const uint32_t r : sel) {
          chunk.MaterializeRow(r, &row_scratch);
          sink->push_back(row_scratch);
        }
      } else {
        for (const uint32_t r : sel) {
          chunk.MaterializeRow(r, &row_scratch);
          PushRow(row_scratch, s, &scratch, sink);
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace rasql::physical
