#ifndef RASQL_PHYSICAL_EXECUTOR_H_
#define RASQL_PHYSICAL_EXECUTOR_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include <optional>

#include "common/status.h"
#include "expr/compiled_expr.h"
#include "plan/logical_plan.h"
#include "storage/relation.h"

namespace rasql::physical {

/// Local join algorithm used for keyed joins (paper Appendix D compares
/// shuffle-hash vs sort-merge; the local probe/merge is what differs).
enum class JoinAlgorithm {
  kHash,
  kSortMerge,
};

/// Binds plan leaves to data and selects execution options. The executor
/// evaluates one plan against one set of bindings — the fixpoint layer
/// calls it once per partition per iteration.
struct ExecContext {
  /// TableScan resolution: canonical table/view name -> relation.
  std::map<std::string, const storage::Relation*> tables;

  /// RecursiveRef resolution. The fixpoint evaluator supplies a resolver
  /// that returns the delta or the `all` relation depending on the
  /// reference's ordinal (semi-naive term binding).
  std::function<const storage::Relation*(const plan::RecursiveRefNode&)>
      recursive_resolver;

  /// Whole-stage-codegen analogue: fuse join+filter+project pipelines and
  /// run compiled expression programs instead of the interpreted tree
  /// (paper Sec. 7.3; ablated by bench_fig07).
  bool use_codegen = true;

  /// Vectorized batch execution (DESIGN.md §13): when > 0, fused pipelines
  /// evaluate filters as selection vectors over the chunks' typed arrays
  /// (in sub-batches of at most this many rows), extract hash-join keys
  /// column-wise, and aggregates run typed per-column loops. 0 = the
  /// row-at-a-time interpreter, which stays the row-for-row oracle: both
  /// modes produce bit-identical output.
  size_t batch_rows = 0;

  JoinAlgorithm join_algorithm = JoinAlgorithm::kHash;
};

/// Executes a logical plan against the context bindings and returns the
/// materialized result.
common::Result<storage::Relation> Execute(const plan::LogicalPlan& plan,
                                          const ExecContext& context);

/// Either a borrowed pointer into the context (scans, recursive refs) or an
/// owned materialized intermediate. `rel` always points at the result;
/// `owned` is set only when this evaluation materialized it. The pointer is
/// stable under moves of the struct.
struct BorrowedRelation {
  const storage::Relation* rel = nullptr;
  std::unique_ptr<storage::Relation> owned;
};

/// Like Execute, but leaf plans resolve to a borrowed pointer instead of a
/// copy. Used by the pipeline compiler for build sides and drivers; the
/// context-owned relations must outlive the result.
common::Result<BorrowedRelation> ExecuteBorrowed(const plan::LogicalPlan& plan,
                                                 const ExecContext& context);

/// Evaluates a projection list row-by-row, using compiled expression
/// programs where possible (the codegen fast path).
class ProjectionEvaluator {
 public:
  ProjectionEvaluator(const std::vector<expr::ExprPtr>& exprs,
                      bool use_codegen);

  storage::Row Eval(const storage::Row& input) const;

 private:
  struct Entry {
    const expr::Expr* expr;
    std::optional<expr::CompiledExpr> compiled;
  };
  std::vector<Entry> exprs_;
};

/// Predicate evaluator with an optional compiled fast path.
class PredicateEvaluator {
 public:
  PredicateEvaluator(const expr::Expr& predicate, bool use_codegen);

  bool Eval(const storage::Row& row) const {
    if (compiled_) return compiled_->EvalBool(row);
    return expr::IsTruthy(expr_->Eval(row));
  }

 private:
  const expr::Expr* expr_;
  std::optional<expr::CompiledExpr> compiled_;
};

/// A reusable build-side hash table for a keyed join: maps key hash ->
/// row indices. The fixpoint evaluator builds these once per base relation
/// and reuses them across iterations (paper Appendix D: "the hash table
/// [is] only created once and then cached/reused across iterations").
class JoinHashTable {
 public:
  JoinHashTable() = default;
  /// Builds over `build` using `key_columns`.
  JoinHashTable(const storage::Relation& build,
                std::vector<int> key_columns);

  /// Appends to `*out` the indices of build rows whose key equals the probe
  /// row's `probe_key_columns`.
  void Probe(const storage::Row& probe, const std::vector<int>& probe_keys,
             std::vector<int>* out) const;

  /// Column-wise probe: hashes and compares the key cells of `chunk` row
  /// `row` directly against the build side's stored cells — no probe Row is
  /// materialized (the batch path's key extraction).
  void ProbeChunk(const storage::ColumnChunk& chunk, size_t row,
                  const std::vector<int>& probe_keys,
                  std::vector<int>* out) const;

  /// ProbeChunk addressed by a relation-global row index.
  void ProbeAt(const storage::Relation& probe, size_t row,
               const std::vector<int>& probe_keys,
               std::vector<int>* out) const;

  const storage::Relation* build_side() const { return build_; }
  const std::vector<int>& key_columns() const { return key_columns_; }
  size_t num_buckets() const { return buckets_; }

 private:
  const storage::Relation* build_ = nullptr;
  std::vector<int> key_columns_;
  // Open chaining: bucket head per hash slot, next-index links.
  std::vector<int> heads_;
  std::vector<int> next_;
  size_t buckets_ = 0;
  uint64_t mask_ = 0;
};

}  // namespace rasql::physical

#endif  // RASQL_PHYSICAL_EXECUTOR_H_
