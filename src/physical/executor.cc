#include "physical/executor.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "expr/compiled_expr.h"
#include "physical/pipeline.h"

namespace rasql::physical {

using common::Result;
using common::Status;
using expr::AggregateFunction;
using plan::LogicalPlan;
using plan::PlanKind;
using storage::Relation;
using storage::Row;
using storage::Value;
using storage::ValueType;

JoinHashTable::JoinHashTable(const Relation& build,
                             std::vector<int> key_columns)
    : build_(&build), key_columns_(std::move(key_columns)) {
  size_t capacity = 16;
  while (capacity < build.size() * 2) capacity <<= 1;
  buckets_ = capacity;
  mask_ = capacity - 1;
  heads_.assign(capacity, -1);
  next_.assign(build.size(), -1);
  for (size_t i = 0; i < build.size(); ++i) {
    const uint64_t h = storage::HashRowKey(build.rows()[i], key_columns_);
    const size_t slot = h & mask_;
    next_[i] = heads_[slot];
    heads_[slot] = static_cast<int>(i);
  }
}

void JoinHashTable::Probe(const Row& probe,
                          const std::vector<int>& probe_keys,
                          std::vector<int>* out) const {
  const uint64_t h = storage::HashRowKey(probe, probe_keys);
  for (int i = heads_[h & mask_]; i >= 0; i = next_[i]) {
    if (storage::RowKeysEqual(probe, probe_keys, build_->rows()[i],
                              key_columns_)) {
      out->push_back(i);
    }
  }
}

ProjectionEvaluator::ProjectionEvaluator(
    const std::vector<expr::ExprPtr>& exprs, bool use_codegen) {
  exprs_.reserve(exprs.size());
  for (const expr::ExprPtr& e : exprs) {
    Entry entry;
    entry.expr = e.get();
    // Compile only genuinely computational expressions: a bare column
    // reference or literal is already a single copy, and routing it
    // through the numeric program would only add conversions.
    if (use_codegen && e->kind() != expr::Expr::Kind::kColumnRef &&
        e->kind() != expr::Expr::Kind::kLiteral) {
      entry.compiled = expr::CompiledExpr::Compile(*e);
    }
    exprs_.push_back(std::move(entry));
  }
}

Row ProjectionEvaluator::Eval(const Row& input) const {
  Row out;
  out.reserve(exprs_.size());
  for (const Entry& entry : exprs_) {
    out.push_back(entry.compiled ? entry.compiled->EvalValue(input)
                                 : entry.expr->Eval(input));
  }
  return out;
}

PredicateEvaluator::PredicateEvaluator(const expr::Expr& predicate,
                                       bool use_codegen)
    : expr_(&predicate) {
  if (use_codegen) compiled_ = expr::CompiledExpr::Compile(predicate);
}

namespace {

Result<BorrowedRelation> Exec(const LogicalPlan& node, const ExecContext& ctx);

BorrowedRelation Own(Relation rel) {
  BorrowedRelation r;
  r.owned = std::make_unique<Relation>(std::move(rel));
  r.rel = r.owned.get();
  return r;
}

Row ConcatRows(const Row& left, const Row& right) {
  Row out;
  out.reserve(left.size() + right.size());
  out.insert(out.end(), left.begin(), left.end());
  out.insert(out.end(), right.begin(), right.end());
  return out;
}

Result<BorrowedRelation> ExecTableScan(const plan::TableScanNode& node,
                                 const ExecContext& ctx) {
  auto it = ctx.tables.find(node.table_name());
  if (it == ctx.tables.end() || it->second == nullptr) {
    return Status::ExecutionError("no data bound for table '" +
                                  node.table_name() + "'");
  }
  BorrowedRelation r;
  r.rel = it->second;
  return r;
}

Result<BorrowedRelation> ExecRecursiveRef(const plan::RecursiveRefNode& node,
                                    const ExecContext& ctx) {
  if (!ctx.recursive_resolver) {
    return Status::ExecutionError(
        "recursive reference '" + node.view_name() +
        "' reached the executor without a fixpoint binding");
  }
  const Relation* rel = ctx.recursive_resolver(node);
  if (rel == nullptr) {
    return Status::ExecutionError("recursive resolver returned null for '" +
                                  node.view_name() + "'");
  }
  BorrowedRelation r;
  r.rel = rel;
  return r;
}

Result<BorrowedRelation> ExecJoinGeneric(const plan::JoinNode& node,
                                   const ExecContext& ctx) {
  RASQL_ASSIGN_OR_RETURN(BorrowedRelation left, Exec(node.child(0), ctx));
  RASQL_ASSIGN_OR_RETURN(BorrowedRelation right, Exec(node.child(1), ctx));

  Relation out(node.schema());
  if (node.is_cross()) {
    out.Reserve(left.rel->size() * right.rel->size());
    for (const Row& l : left.rel->rows()) {
      for (const Row& r : right.rel->rows()) {
        out.Add(ConcatRows(l, r));
      }
    }
    return Own(std::move(out));
  }

  if (ctx.join_algorithm == JoinAlgorithm::kSortMerge) {
    // Sort both inputs by their key columns, then merge matching runs.
    std::vector<const Row*> ls;
    ls.reserve(left.rel->size());
    for (const Row& r : left.rel->rows()) ls.push_back(&r);
    std::vector<const Row*> rs;
    rs.reserve(right.rel->size());
    for (const Row& r : right.rel->rows()) rs.push_back(&r);
    const std::vector<int>& lk = node.left_keys();
    const std::vector<int>& rk = node.right_keys();
    auto key_less = [](const Row& a, const std::vector<int>& ak,
                       const Row& b, const std::vector<int>& bk) {
      for (size_t i = 0; i < ak.size(); ++i) {
        const int c = a[ak[i]].Compare(b[bk[i]]);
        if (c != 0) return c < 0;
      }
      return false;
    };
    std::sort(ls.begin(), ls.end(), [&](const Row* a, const Row* b) {
      return key_less(*a, lk, *b, lk);
    });
    std::sort(rs.begin(), rs.end(), [&](const Row* a, const Row* b) {
      return key_less(*a, rk, *b, rk);
    });
    size_t i = 0;
    size_t j = 0;
    while (i < ls.size() && j < rs.size()) {
      if (key_less(*ls[i], lk, *rs[j], rk)) {
        ++i;
      } else if (key_less(*rs[j], rk, *ls[i], lk)) {
        ++j;
      } else {
        // Equal keys: emit the cartesian product of the two runs.
        size_t j_end = j;
        while (j_end < rs.size() &&
               !key_less(*rs[j], rk, *rs[j_end], rk) &&
               !key_less(*rs[j_end], rk, *rs[j], rk)) {
          ++j_end;
        }
        size_t i_end = i;
        while (i_end < ls.size() &&
               !key_less(*ls[i], lk, *ls[i_end], lk) &&
               !key_less(*ls[i_end], lk, *ls[i], lk)) {
          ++i_end;
        }
        for (size_t a = i; a < i_end; ++a) {
          for (size_t b = j; b < j_end; ++b) {
            out.Add(ConcatRows(*ls[a], *rs[b]));
          }
        }
        i = i_end;
        j = j_end;
      }
    }
    return Own(std::move(out));
  }

  // Hash join: build on the right side (base relations sit right of the
  // recursive delta in the common FROM order), probe with the left.
  JoinHashTable table(*right.rel, node.right_keys());
  std::vector<int> matches;
  for (const Row& l : left.rel->rows()) {
    matches.clear();
    table.Probe(l, node.left_keys(), &matches);
    for (int m : matches) {
      out.Add(ConcatRows(l, right.rel->rows()[m]));
    }
  }
  return Own(std::move(out));
}

Result<BorrowedRelation> ExecFilter(const plan::FilterNode& node,
                              const ExecContext& ctx) {
  RASQL_ASSIGN_OR_RETURN(BorrowedRelation child, Exec(node.child(0), ctx));
  PredicateEvaluator predicate(node.predicate(), ctx.use_codegen);
  Relation out(node.schema());
  for (const Row& row : child.rel->rows()) {
    if (predicate.Eval(row)) out.Add(row);
  }
  return Own(std::move(out));
}

/// Interpreted projection over a materialized child. Fused chains never
/// reach here on the codegen path — Exec() routes them through the
/// PipelineProgram compiler (which subsumed the old ad-hoc
/// Project(Filter(X)) / Project(Join(X, Y)) special cases).
Result<BorrowedRelation> ExecProject(const plan::ProjectNode& node,
                               const ExecContext& ctx) {
  ProjectionEvaluator projector(node.exprs(), ctx.use_codegen);
  Relation out(node.schema());
  RASQL_ASSIGN_OR_RETURN(BorrowedRelation input, Exec(node.child(0), ctx));
  out.Reserve(input.rel->size());
  for (const Row& row : input.rel->rows()) {
    out.Add(projector.Eval(row));
  }
  return Own(std::move(out));
}

Result<BorrowedRelation> ExecAggregate(const plan::AggregateNode& node,
                                 const ExecContext& ctx) {
  RASQL_ASSIGN_OR_RETURN(BorrowedRelation input, Exec(node.child(0), ctx));

  const std::vector<expr::ExprPtr>& group_exprs = node.group_exprs();
  const std::vector<plan::AggregateItem>& items = node.items();

  struct GroupState {
    std::vector<Value> accumulators;
    std::vector<std::unique_ptr<
        std::unordered_set<Row, storage::RowHash, storage::RowEq>>>
        distinct;
  };
  std::unordered_map<Row, GroupState, storage::RowHash, storage::RowEq>
      groups;

  for (const Row& row : input.rel->rows()) {
    Row key;
    key.reserve(group_exprs.size());
    for (const expr::ExprPtr& g : group_exprs) key.push_back(g->Eval(row));
    auto [it, inserted] = groups.try_emplace(std::move(key));
    GroupState& state = it->second;
    if (inserted) {
      state.accumulators.resize(items.size());
      state.distinct.resize(items.size());
      for (size_t j = 0; j < items.size(); ++j) {
        if (items[j].distinct) {
          state.distinct[j] = std::make_unique<std::unordered_set<
              Row, storage::RowHash, storage::RowEq>>();
        }
        if (items[j].function == AggregateFunction::kCount) {
          state.accumulators[j] = Value::Int(0);
        }
      }
    }
    for (size_t j = 0; j < items.size(); ++j) {
      const plan::AggregateItem& item = items[j];
      Value arg =
          item.argument ? item.argument->Eval(row) : Value::Int(1);
      if (item.argument && arg.is_null()) continue;  // SQL: nulls ignored
      if (item.distinct) {
        if (!state.distinct[j]->insert(Row{arg}).second) continue;
      }
      Value& acc = state.accumulators[j];
      switch (item.function) {
        case AggregateFunction::kCount:
          acc = Value::Int(acc.AsInt() + 1);
          break;
        case AggregateFunction::kMin:
          if (acc.is_null() || arg.Compare(acc) < 0) acc = arg;
          break;
        case AggregateFunction::kMax:
          if (acc.is_null() || arg.Compare(acc) > 0) acc = arg;
          break;
        case AggregateFunction::kSum:
          if (acc.is_null()) {
            acc = arg;
          } else if (acc.type() == ValueType::kInt64 &&
                     arg.type() == ValueType::kInt64) {
            acc = Value::Int(acc.AsInt() + arg.AsInt());
          } else {
            acc = Value::Double(acc.AsNumeric() + arg.AsNumeric());
          }
          break;
        case AggregateFunction::kNone:
          return Status::Internal("aggregate item without function");
      }
    }
  }

  Relation out(node.schema());
  // SQL semantics: a global aggregate (no GROUP BY) over an empty input
  // still produces one row (count = 0, min/max/sum = NULL).
  if (groups.empty() && group_exprs.empty()) {
    Row row;
    for (const plan::AggregateItem& item : items) {
      row.push_back(item.function == AggregateFunction::kCount
                        ? Value::Int(0)
                        : Value::Null());
    }
    out.Add(std::move(row));
    return Own(std::move(out));
  }
  out.Reserve(groups.size());
  for (auto& [key, state] : groups) {
    Row row = key;
    for (Value& acc : state.accumulators) row.push_back(std::move(acc));
    out.Add(std::move(row));
  }
  return Own(std::move(out));
}

Result<BorrowedRelation> ExecSort(const plan::SortNode& node,
                            const ExecContext& ctx) {
  RASQL_ASSIGN_OR_RETURN(BorrowedRelation input, Exec(node.child(0), ctx));
  Relation out = *input.rel;  // copy, then sort in place
  std::stable_sort(
      out.mutable_rows().begin(), out.mutable_rows().end(),
      [&](const Row& a, const Row& b) {
        for (const plan::SortNode::SortKey& key : node.keys()) {
          const int c = key.expr->Eval(a).Compare(key.expr->Eval(b));
          if (c != 0) return key.ascending ? c < 0 : c > 0;
        }
        return false;
      });
  return Own(std::move(out));
}

Result<BorrowedRelation> Exec(const LogicalPlan& node, const ExecContext& ctx) {
  // Whole-stage fusion (codegen path): compile the filter/probe/project
  // chain rooted here into one pipeline and run it over the full driver —
  // no per-node intermediates. Probe steps reproduce the *hash* join's
  // row order, so a sort-merge context only fuses probe-free chains; the
  // interpreted tree walk below stays the oracle either way.
  if (ctx.use_codegen &&
      (node.kind() == PlanKind::kProject || node.kind() == PlanKind::kFilter ||
       node.kind() == PlanKind::kJoin)) {
    std::optional<PipelineProgram> program = PipelineProgram::Compile(node);
    if (program.has_value() &&
        (!program->has_probe_steps() ||
         ctx.join_algorithm == JoinAlgorithm::kHash)) {
      RASQL_ASSIGN_OR_RETURN(BoundPipeline pipeline, program->Bind(ctx));
      Relation out(node.schema());
      RASQL_RETURN_IF_ERROR(pipeline.RunAll(&out.mutable_rows()));
      return Own(std::move(out));
    }
  }
  switch (node.kind()) {
    case PlanKind::kTableScan:
      return ExecTableScan(static_cast<const plan::TableScanNode&>(node),
                           ctx);
    case PlanKind::kRecursiveRef:
      return ExecRecursiveRef(
          static_cast<const plan::RecursiveRefNode&>(node), ctx);
    case PlanKind::kValues: {
      const auto& values = static_cast<const plan::ValuesNode&>(node);
      return Own(Relation(values.schema(), values.rows()));
    }
    case PlanKind::kFilter:
      return ExecFilter(static_cast<const plan::FilterNode&>(node), ctx);
    case PlanKind::kProject:
      return ExecProject(static_cast<const plan::ProjectNode&>(node), ctx);
    case PlanKind::kJoin:
      return ExecJoinGeneric(static_cast<const plan::JoinNode&>(node), ctx);
    case PlanKind::kAggregate:
      return ExecAggregate(static_cast<const plan::AggregateNode&>(node),
                           ctx);
    case PlanKind::kSort:
      return ExecSort(static_cast<const plan::SortNode&>(node), ctx);
    case PlanKind::kLimit: {
      const auto& limit = static_cast<const plan::LimitNode&>(node);
      RASQL_ASSIGN_OR_RETURN(BorrowedRelation input, Exec(node.child(0), ctx));
      Relation out(node.schema());
      const size_t n = std::min<size_t>(input.rel->size(),
                                        static_cast<size_t>(limit.limit()));
      out.Reserve(n);
      for (size_t i = 0; i < n; ++i) out.Add(input.rel->rows()[i]);
      return Own(std::move(out));
    }
  }
  return Status::Internal("unhandled plan node");
}

}  // namespace

Result<Relation> Execute(const LogicalPlan& plan, const ExecContext& ctx) {
  RASQL_ASSIGN_OR_RETURN(BorrowedRelation result, Exec(plan, ctx));
  if (result.owned) return std::move(*result.owned);
  return *result.rel;  // borrowed: copy out
}

Result<BorrowedRelation> ExecuteBorrowed(const LogicalPlan& plan,
                                         const ExecContext& ctx) {
  return Exec(plan, ctx);
}

}  // namespace rasql::physical
