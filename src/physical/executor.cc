#include "physical/executor.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "common/hash.h"
#include "expr/compiled_expr.h"
#include "expr/vec_program.h"
#include "physical/pipeline.h"

namespace rasql::physical {

using common::Result;
using common::Status;
using expr::AggregateFunction;
using plan::LogicalPlan;
using plan::PlanKind;
using storage::Relation;
using storage::Row;
using storage::Value;
using storage::ValueType;

JoinHashTable::JoinHashTable(const Relation& build,
                             std::vector<int> key_columns)
    : build_(&build), key_columns_(std::move(key_columns)) {
  size_t capacity = 16;
  while (capacity < build.size() * 2) capacity <<= 1;
  buckets_ = capacity;
  mask_ = capacity - 1;
  heads_.assign(capacity, -1);
  next_.assign(build.size(), -1);
  for (size_t i = 0; i < build.size(); ++i) {
    const uint64_t h = build.HashKeyAt(i, key_columns_);
    const size_t slot = h & mask_;
    next_[i] = heads_[slot];
    heads_[slot] = static_cast<int>(i);
  }
}

void JoinHashTable::Probe(const Row& probe,
                          const std::vector<int>& probe_keys,
                          std::vector<int>* out) const {
  const uint64_t h = storage::HashRowKey(probe, probe_keys);
  for (int i = heads_[h & mask_]; i >= 0; i = next_[i]) {
    const storage::RowAccessor build_row = build_->row(i);
    bool eq = true;
    for (size_t k = 0; k < key_columns_.size() && eq; ++k) {
      eq = build_row.chunk().CellEquals(build_row.chunk_row(),
                                        static_cast<size_t>(key_columns_[k]),
                                        probe[probe_keys[k]]);
    }
    if (eq) out->push_back(i);
  }
}

void JoinHashTable::ProbeChunk(const storage::ColumnChunk& chunk, size_t row,
                               const std::vector<int>& probe_keys,
                               std::vector<int>* out) const {
  const uint64_t h = chunk.HashKey(row, probe_keys);
  for (int i = heads_[h & mask_]; i >= 0; i = next_[i]) {
    const storage::RowAccessor build_row = build_->row(i);
    bool eq = true;
    for (size_t k = 0; k < key_columns_.size() && eq; ++k) {
      eq = storage::ColumnChunk::CellsEqual(
          chunk, row, static_cast<size_t>(probe_keys[k]), build_row.chunk(),
          build_row.chunk_row(), static_cast<size_t>(key_columns_[k]));
    }
    if (eq) out->push_back(i);
  }
}

void JoinHashTable::ProbeAt(const Relation& probe, size_t row,
                            const std::vector<int>& probe_keys,
                            std::vector<int>* out) const {
  const storage::RowAccessor acc = probe.row(row);
  ProbeChunk(acc.chunk(), acc.chunk_row(), probe_keys, out);
}

ProjectionEvaluator::ProjectionEvaluator(
    const std::vector<expr::ExprPtr>& exprs, bool use_codegen) {
  exprs_.reserve(exprs.size());
  for (const expr::ExprPtr& e : exprs) {
    Entry entry;
    entry.expr = e.get();
    // Compile only genuinely computational expressions: a bare column
    // reference or literal is already a single copy, and routing it
    // through the numeric program would only add conversions.
    if (use_codegen && e->kind() != expr::Expr::Kind::kColumnRef &&
        e->kind() != expr::Expr::Kind::kLiteral) {
      entry.compiled = expr::CompiledExpr::Compile(*e);
    }
    exprs_.push_back(std::move(entry));
  }
}

Row ProjectionEvaluator::Eval(const Row& input) const {
  Row out;
  out.reserve(exprs_.size());
  for (const Entry& entry : exprs_) {
    out.push_back(entry.compiled ? entry.compiled->EvalValue(input)
                                 : entry.expr->Eval(input));
  }
  return out;
}

PredicateEvaluator::PredicateEvaluator(const expr::Expr& predicate,
                                       bool use_codegen)
    : expr_(&predicate) {
  if (use_codegen) compiled_ = expr::CompiledExpr::Compile(predicate);
}

namespace {

Result<BorrowedRelation> Exec(const LogicalPlan& node, const ExecContext& ctx);

BorrowedRelation Own(Relation rel) {
  BorrowedRelation r;
  r.owned = std::make_unique<Relation>(std::move(rel));
  r.rel = r.owned.get();
  return r;
}

Row ConcatRows(const Row& left, const Row& right) {
  Row out;
  out.reserve(left.size() + right.size());
  out.insert(out.end(), left.begin(), left.end());
  out.insert(out.end(), right.begin(), right.end());
  return out;
}

Result<BorrowedRelation> ExecTableScan(const plan::TableScanNode& node,
                                 const ExecContext& ctx) {
  auto it = ctx.tables.find(node.table_name());
  if (it == ctx.tables.end() || it->second == nullptr) {
    return Status::ExecutionError("no data bound for table '" +
                                  node.table_name() + "'");
  }
  BorrowedRelation r;
  r.rel = it->second;
  return r;
}

Result<BorrowedRelation> ExecRecursiveRef(const plan::RecursiveRefNode& node,
                                    const ExecContext& ctx) {
  if (!ctx.recursive_resolver) {
    return Status::ExecutionError(
        "recursive reference '" + node.view_name() +
        "' reached the executor without a fixpoint binding");
  }
  const Relation* rel = ctx.recursive_resolver(node);
  if (rel == nullptr) {
    return Status::ExecutionError("recursive resolver returned null for '" +
                                  node.view_name() + "'");
  }
  BorrowedRelation r;
  r.rel = rel;
  return r;
}

Result<BorrowedRelation> ExecJoinGeneric(const plan::JoinNode& node,
                                   const ExecContext& ctx) {
  RASQL_ASSIGN_OR_RETURN(BorrowedRelation left, Exec(node.child(0), ctx));
  RASQL_ASSIGN_OR_RETURN(BorrowedRelation right, Exec(node.child(1), ctx));

  Relation out(node.schema());
  if (node.is_cross()) {
    const std::vector<Row> right_rows = right.rel->MaterializeRows();
    left.rel->ForEachRow([&](const Row& l) {
      for (const Row& r : right_rows) {
        out.Add(ConcatRows(l, r));
      }
    });
    return Own(std::move(out));
  }

  if (ctx.join_algorithm == JoinAlgorithm::kSortMerge) {
    // Sort both inputs by their key columns, then merge matching runs.
    const std::vector<Row> left_rows = left.rel->MaterializeRows();
    const std::vector<Row> right_rows = right.rel->MaterializeRows();
    std::vector<const Row*> ls;
    ls.reserve(left_rows.size());
    for (const Row& r : left_rows) ls.push_back(&r);
    std::vector<const Row*> rs;
    rs.reserve(right_rows.size());
    for (const Row& r : right_rows) rs.push_back(&r);
    const std::vector<int>& lk = node.left_keys();
    const std::vector<int>& rk = node.right_keys();
    auto key_less = [](const Row& a, const std::vector<int>& ak,
                       const Row& b, const std::vector<int>& bk) {
      for (size_t i = 0; i < ak.size(); ++i) {
        const int c = a[ak[i]].Compare(b[bk[i]]);
        if (c != 0) return c < 0;
      }
      return false;
    };
    std::sort(ls.begin(), ls.end(), [&](const Row* a, const Row* b) {
      return key_less(*a, lk, *b, lk);
    });
    std::sort(rs.begin(), rs.end(), [&](const Row* a, const Row* b) {
      return key_less(*a, rk, *b, rk);
    });
    size_t i = 0;
    size_t j = 0;
    while (i < ls.size() && j < rs.size()) {
      if (key_less(*ls[i], lk, *rs[j], rk)) {
        ++i;
      } else if (key_less(*rs[j], rk, *ls[i], lk)) {
        ++j;
      } else {
        // Equal keys: emit the cartesian product of the two runs.
        size_t j_end = j;
        while (j_end < rs.size() &&
               !key_less(*rs[j], rk, *rs[j_end], rk) &&
               !key_less(*rs[j_end], rk, *rs[j], rk)) {
          ++j_end;
        }
        size_t i_end = i;
        while (i_end < ls.size() &&
               !key_less(*ls[i], lk, *ls[i_end], lk) &&
               !key_less(*ls[i_end], lk, *ls[i], lk)) {
          ++i_end;
        }
        for (size_t a = i; a < i_end; ++a) {
          for (size_t b = j; b < j_end; ++b) {
            out.Add(ConcatRows(*ls[a], *rs[b]));
          }
        }
        i = i_end;
        j = j_end;
      }
    }
    return Own(std::move(out));
  }

  // Hash join: build on the right side (base relations sit right of the
  // recursive delta in the common FROM order), probe with the left.
  JoinHashTable table(*right.rel, node.right_keys());
  std::vector<int> matches;
  const size_t right_width =
      static_cast<size_t>(node.child(1).schema().num_columns());
  Row combined;
  left.rel->ForEachRow([&](const Row& l) {
    matches.clear();
    table.Probe(l, node.left_keys(), &matches);
    if (matches.empty()) return;
    combined.resize(l.size() + right_width);
    std::copy(l.begin(), l.end(), combined.begin());
    for (int m : matches) {
      right.rel->CopyRowTo(static_cast<size_t>(m), &combined, l.size());
      out.Add(combined);
    }
  });
  return Own(std::move(out));
}

Result<BorrowedRelation> ExecFilter(const plan::FilterNode& node,
                              const ExecContext& ctx) {
  RASQL_ASSIGN_OR_RETURN(BorrowedRelation child, Exec(node.child(0), ctx));
  PredicateEvaluator predicate(node.predicate(), ctx.use_codegen);
  Relation out(node.schema());
  child.rel->ForEachRow([&](const Row& row) {
    if (predicate.Eval(row)) out.Add(row);
  });
  return Own(std::move(out));
}

/// Interpreted projection over a materialized child. Fused chains never
/// reach here on the codegen path — Exec() routes them through the
/// PipelineProgram compiler (which subsumed the old ad-hoc
/// Project(Filter(X)) / Project(Join(X, Y)) special cases).
Result<BorrowedRelation> ExecProject(const plan::ProjectNode& node,
                               const ExecContext& ctx) {
  ProjectionEvaluator projector(node.exprs(), ctx.use_codegen);
  Relation out(node.schema());
  RASQL_ASSIGN_OR_RETURN(BorrowedRelation input, Exec(node.child(0), ctx));
  out.Reserve(input.rel->size());
  input.rel->ForEachRow([&](const Row& row) {
    out.Add(projector.Eval(row));
  });
  return Own(std::move(out));
}

Result<BorrowedRelation> ExecAggregate(const plan::AggregateNode& node,
                                 const ExecContext& ctx) {
  RASQL_ASSIGN_OR_RETURN(BorrowedRelation input, Exec(node.child(0), ctx));

  const std::vector<expr::ExprPtr>& group_exprs = node.group_exprs();
  const std::vector<plan::AggregateItem>& items = node.items();
  for (const plan::AggregateItem& item : items) {
    if (item.function == AggregateFunction::kNone) {
      return Status::Internal("aggregate item without function");
    }
  }

  struct GroupState {
    std::vector<Value> accumulators;
    std::vector<std::unique_ptr<
        std::unordered_set<Row, storage::RowHash, storage::RowEq>>>
        distinct;
  };
  std::unordered_map<Row, GroupState, storage::RowHash, storage::RowEq>
      groups;

  auto init_state = [&](GroupState* state) {
    state->accumulators.resize(items.size());
    state->distinct.resize(items.size());
    for (size_t j = 0; j < items.size(); ++j) {
      if (items[j].distinct) {
        state->distinct[j] = std::make_unique<std::unordered_set<
            Row, storage::RowHash, storage::RowEq>>();
      }
      if (items[j].function == AggregateFunction::kCount) {
        state->accumulators[j] = Value::Int(0);
      }
    }
  };
  // One aggregate step; shared verbatim by both execution modes so the
  // batch path can never drift from the row-at-a-time oracle.
  auto accumulate = [&](GroupState* state, size_t j, Value arg,
                        bool has_argument) {
    const plan::AggregateItem& item = items[j];
    if (has_argument && arg.is_null()) return;  // SQL: nulls ignored
    if (item.distinct) {
      if (!state->distinct[j]->insert(Row{arg}).second) return;
    }
    Value& acc = state->accumulators[j];
    switch (item.function) {
      case AggregateFunction::kCount:
        acc = Value::Int(acc.AsInt() + 1);
        break;
      case AggregateFunction::kMin:
        if (acc.is_null() || arg.Compare(acc) < 0) acc = std::move(arg);
        break;
      case AggregateFunction::kMax:
        if (acc.is_null() || arg.Compare(acc) > 0) acc = std::move(arg);
        break;
      case AggregateFunction::kSum:
        if (acc.is_null()) {
          acc = std::move(arg);
        } else if (acc.type() == ValueType::kInt64 &&
                   arg.type() == ValueType::kInt64) {
          acc = Value::Int(acc.AsInt() + arg.AsInt());
        } else {
          acc = Value::Double(acc.AsNumeric() + arg.AsNumeric());
        }
        break;
      case AggregateFunction::kNone:
        break;  // rejected above
    }
  };

  // Vectorized fast path (DESIGN.md §13, §15): when batch mode is on and
  // no aggregate is DISTINCT, group keys and aggregate arguments evaluate
  // column-at-a-time — plain column references read straight from the
  // chunk arrays, computed expressions run through expr::VecProgram under
  // interpreter-mirror semantics (this path always interprets its inputs,
  // never the compiled double program) — and min/max/sum/count over
  // non-null int64/double lanes run as typed loops. Group insertion order
  // (and therefore output order) is identical to the row path; a chunk the
  // kernels cannot mirror exactly drops to interpreted rows, chunk by
  // chunk.
  bool vectorized = ctx.batch_rows > 0;
  bool groups_plain = true;
  std::vector<int> group_cols(group_exprs.size(), -1);
  std::vector<std::optional<expr::VecProgram>> group_progs(
      group_exprs.size());
  for (size_t i = 0; vectorized && i < group_exprs.size(); ++i) {
    const expr::Expr& g = *group_exprs[i];
    if (g.kind() == expr::Expr::Kind::kColumnRef) {
      group_cols[i] = static_cast<const expr::ColumnRefExpr&>(g).index();
    } else {
      groups_plain = false;
      group_progs[i] = expr::VecProgram::Compile(
          g, expr::VecSemantics::kInterpreterMirror);
      if (!group_progs[i]) vectorized = false;
    }
  }
  std::vector<int> item_cols(items.size(), -1);
  std::vector<std::optional<expr::VecProgram>> item_progs(items.size());
  for (size_t j = 0; vectorized && j < items.size(); ++j) {
    if (items[j].distinct) vectorized = false;
    if (items[j].argument == nullptr) continue;  // count(*)
    if (items[j].argument->kind() == expr::Expr::Kind::kColumnRef) {
      item_cols[j] =
          static_cast<const expr::ColumnRefExpr&>(*items[j].argument)
              .index();
    } else {
      item_progs[j] = expr::VecProgram::Compile(
          *items[j].argument, expr::VecSemantics::kInterpreterMirror);
      if (!item_progs[j]) vectorized = false;
    }
  }

  if (vectorized) {
    // Per-chunk typed dispatch per aggregate item.
    enum class Mode { kGeneric, kCount, kSumI64, kMinI64, kMaxI64,
                      kSumF64, kMinF64, kMaxF64 };
    std::vector<Mode> modes(items.size());
    const Relation& rel = *input.rel;
    expr::VecProgram::Scratch vec_scratch;
    std::vector<expr::VecBatch> group_batches(group_exprs.size());
    std::vector<expr::VecBatch> item_batches(items.size());
    std::vector<uint32_t> identity;

    // Evaluates every computed group/argument expression over the whole
    // chunk (identity selection, so batch index r == chunk row r). False
    // means this chunk takes the interpreted row oracle instead.
    auto eval_programs = [&](const storage::ColumnChunk& chunk) {
      const size_t n = chunk.num_rows();
      for (size_t i = identity.size(); i < n; ++i) {
        identity.push_back(static_cast<uint32_t>(i));
      }
      for (size_t i = 0; i < group_exprs.size(); ++i) {
        if (group_progs[i] &&
            !group_progs[i]->EvalChunk(chunk, identity.data(), n,
                                       &vec_scratch, &group_batches[i])) {
          return false;
        }
      }
      for (size_t j = 0; j < items.size(); ++j) {
        if (item_progs[j] &&
            !item_progs[j]->EvalChunk(chunk, identity.data(), n,
                                      &vec_scratch, &item_batches[j])) {
          return false;
        }
      }
      return true;
    };
    auto compute_modes = [&](const storage::ColumnChunk& chunk) {
      for (size_t j = 0; j < items.size(); ++j) {
        Mode mode = Mode::kGeneric;
        if (items[j].argument == nullptr) {
          mode = Mode::kCount;  // count(*): argument Int(1), never null
        } else if (item_progs[j]) {
          // Computed argument: the evaluated batch is the typed lane.
          const expr::VecBatch& vb = item_batches[j];
          if (!vb.any_null && (vb.tag == ValueType::kInt64 ||
                               vb.tag == ValueType::kDouble)) {
            const bool is_int = vb.tag == ValueType::kInt64;
            switch (items[j].function) {
              case AggregateFunction::kCount: mode = Mode::kCount; break;
              case AggregateFunction::kSum:
                mode = is_int ? Mode::kSumI64 : Mode::kSumF64;
                break;
              case AggregateFunction::kMin:
                mode = is_int ? Mode::kMinI64 : Mode::kMinF64;
                break;
              case AggregateFunction::kMax:
                mode = is_int ? Mode::kMaxI64 : Mode::kMaxF64;
                break;
              default: break;
            }
          }
        } else {
          const storage::ColumnChunk::ColumnData& cd =
              chunk.column(static_cast<size_t>(item_cols[j]));
          if (!cd.variant && cd.null_count == 0) {
            if (cd.tag == ValueType::kInt64) {
              switch (items[j].function) {
                case AggregateFunction::kCount: mode = Mode::kCount; break;
                case AggregateFunction::kSum: mode = Mode::kSumI64; break;
                case AggregateFunction::kMin: mode = Mode::kMinI64; break;
                case AggregateFunction::kMax: mode = Mode::kMaxI64; break;
                default: break;
              }
            } else if (cd.tag == ValueType::kDouble) {
              switch (items[j].function) {
                case AggregateFunction::kCount: mode = Mode::kCount; break;
                case AggregateFunction::kSum: mode = Mode::kSumF64; break;
                case AggregateFunction::kMin: mode = Mode::kMinF64; break;
                case AggregateFunction::kMax: mode = Mode::kMaxF64; break;
                default: break;
              }
            }
          }
        }
        modes[j] = mode;
      }
    };
    // Raw typed lanes and the generic Value view of aggregate argument j at
    // chunk row r — from the chunk array (plain refs) or the evaluated
    // batch (computed expressions).
    auto arg_i64 = [&](const storage::ColumnChunk& chunk, size_t j,
                       size_t r) {
      return item_progs[j]
                 ? item_batches[j].i64[r]
                 : chunk.column(static_cast<size_t>(item_cols[j])).i64[r];
    };
    auto arg_f64 = [&](const storage::ColumnChunk& chunk, size_t j,
                       size_t r) {
      return item_progs[j]
                 ? item_batches[j].f64[r]
                 : chunk.column(static_cast<size_t>(item_cols[j])).f64[r];
    };
    auto arg_value = [&](const storage::ColumnChunk& chunk, size_t j,
                         size_t r) {
      if (items[j].argument == nullptr) return Value::Int(1);
      return item_progs[j]
                 ? item_batches[j].ValueAt(r)
                 : chunk.ValueAt(r, static_cast<size_t>(item_cols[j]));
    };
    auto accumulate_typed = [&](const storage::ColumnChunk& chunk, size_t r,
                                GroupState* state) {
      for (size_t j = 0; j < items.size(); ++j) {
        Value& acc = state->accumulators[j];
        // Modes are chosen per chunk, but the accumulator carries state
        // across chunks: when a column's tag flips mid-relation (int64
        // chunks followed by double chunks, say), acc no longer matches
        // the typed arm's assumption. Those rows take the shared oracle
        // step, which promotes exactly like the row-at-a-time path.
        const bool acc_typed_as = acc.is_null() ||
                                  ((modes[j] == Mode::kSumI64 ||
                                    modes[j] == Mode::kMinI64 ||
                                    modes[j] == Mode::kMaxI64)
                                       ? acc.type() == ValueType::kInt64
                                       : acc.type() == ValueType::kDouble);
        if (modes[j] != Mode::kCount && modes[j] != Mode::kGeneric &&
            !acc_typed_as) {
          accumulate(state, j, arg_value(chunk, j, r), true);
          continue;
        }
        switch (modes[j]) {
          case Mode::kCount:
            acc = Value::Int(acc.AsInt() + 1);
            break;
          case Mode::kSumI64: {
            const int64_t raw = arg_i64(chunk, j, r);
            acc = acc.is_null() ? Value::Int(raw)
                                : Value::Int(acc.AsInt() + raw);
            break;
          }
          case Mode::kMinI64: {
            const int64_t raw = arg_i64(chunk, j, r);
            if (acc.is_null() || raw < acc.AsInt()) acc = Value::Int(raw);
            break;
          }
          case Mode::kMaxI64: {
            const int64_t raw = arg_i64(chunk, j, r);
            if (acc.is_null() || raw > acc.AsInt()) acc = Value::Int(raw);
            break;
          }
          case Mode::kSumF64: {
            const double raw = arg_f64(chunk, j, r);
            acc = acc.is_null() ? Value::Double(raw)
                                : Value::Double(acc.AsDouble() + raw);
            break;
          }
          case Mode::kMinF64: {
            const double raw = arg_f64(chunk, j, r);
            if (acc.is_null() || raw < acc.AsDouble()) {
              acc = Value::Double(raw);
            }
            break;
          }
          case Mode::kMaxF64: {
            const double raw = arg_f64(chunk, j, r);
            if (acc.is_null() || raw > acc.AsDouble()) {
              acc = Value::Double(raw);
            }
            break;
          }
          case Mode::kGeneric:
            accumulate(state, j, arg_value(chunk, j, r),
                       items[j].argument != nullptr);
            break;
        }
      }
    };
    // The interpreted oracle step for one materialized row — what a chunk
    // takes when eval_programs can't mirror it.
    Row row_scratch;
    auto accumulate_row = [&](const Row& row, GroupState* state) {
      for (size_t j = 0; j < items.size(); ++j) {
        accumulate(state, j,
                   items[j].argument ? items[j].argument->Eval(row)
                                     : Value::Int(1),
                   items[j].argument != nullptr);
      }
    };

    // Dense fast paths: when the group columns are plain references over
    // clean int64 arrays in every chunk, group lookup runs on the raw
    // integers (one key, or two packed into 128 bits) — no per-row Row
    // key, no Value hashing. States accumulate in a dense vector; the keys
    // are then inserted into `groups` in first-seen order, which is
    // exactly the row path's insertion sequence, so the final hash-map
    // iteration (and the output row order) is bit-identical.
    auto clean_int64_group = [&](int gc) {
      for (size_t ci = 0; ci < rel.num_chunks(); ++ci) {
        const storage::ColumnChunk::ColumnData& cd =
            rel.chunk(ci).column(static_cast<size_t>(gc));
        if (cd.variant || cd.null_count != 0 ||
            (rel.chunk(ci).num_rows() > 0 && cd.tag != ValueType::kInt64)) {
          return false;
        }
      }
      return true;
    };
    const bool int64_key = groups_plain && group_cols.size() == 1 &&
                           clean_int64_group(group_cols[0]);
    const bool int64_key2 = groups_plain && group_cols.size() == 2 &&
                            clean_int64_group(group_cols[0]) &&
                            clean_int64_group(group_cols[1]);
    if (int64_key) {
      std::unordered_map<int64_t, uint32_t> index;
      std::vector<GroupState> states;
      std::vector<int64_t> first_seen;
      for (size_t ci = 0; ci < rel.num_chunks(); ++ci) {
        const storage::ColumnChunk& chunk = rel.chunk(ci);
        const bool vec_ok = eval_programs(chunk);
        if (vec_ok) compute_modes(chunk);
        const std::vector<int64_t>& keys =
            chunk.column(static_cast<size_t>(group_cols[0])).i64;
        for (size_t r = 0; r < chunk.num_rows(); ++r) {
          auto [it, inserted] =
              index.try_emplace(keys[r],
                                static_cast<uint32_t>(states.size()));
          if (inserted) {
            states.emplace_back();
            init_state(&states.back());
            first_seen.push_back(keys[r]);
          }
          if (vec_ok) {
            accumulate_typed(chunk, r, &states[it->second]);
          } else {
            chunk.MaterializeRow(r, &row_scratch);
            accumulate_row(row_scratch, &states[it->second]);
          }
        }
      }
      for (size_t g = 0; g < states.size(); ++g) {
        groups.emplace(Row{Value::Int(first_seen[g])},
                       std::move(states[g]));
      }
    } else if (int64_key2) {
      // Two-int64 composite keys pack into one 128-bit integer; hashing
      // mixes both halves. Everything else matches the single-key path.
      struct PackedHash {
        size_t operator()(unsigned __int128 k) const {
          return static_cast<size_t>(common::HashCombine(
              common::MixHash64(static_cast<uint64_t>(k >> 64)),
              common::MixHash64(static_cast<uint64_t>(k))));
        }
      };
      std::unordered_map<unsigned __int128, uint32_t, PackedHash> index;
      std::vector<GroupState> states;
      std::vector<std::pair<int64_t, int64_t>> first_seen;
      for (size_t ci = 0; ci < rel.num_chunks(); ++ci) {
        const storage::ColumnChunk& chunk = rel.chunk(ci);
        const bool vec_ok = eval_programs(chunk);
        if (vec_ok) compute_modes(chunk);
        const std::vector<int64_t>& keys0 =
            chunk.column(static_cast<size_t>(group_cols[0])).i64;
        const std::vector<int64_t>& keys1 =
            chunk.column(static_cast<size_t>(group_cols[1])).i64;
        for (size_t r = 0; r < chunk.num_rows(); ++r) {
          const unsigned __int128 packed =
              (static_cast<unsigned __int128>(
                   static_cast<uint64_t>(keys0[r]))
               << 64) |
              static_cast<uint64_t>(keys1[r]);
          auto [it, inserted] =
              index.try_emplace(packed,
                                static_cast<uint32_t>(states.size()));
          if (inserted) {
            states.emplace_back();
            init_state(&states.back());
            first_seen.emplace_back(keys0[r], keys1[r]);
          }
          if (vec_ok) {
            accumulate_typed(chunk, r, &states[it->second]);
          } else {
            chunk.MaterializeRow(r, &row_scratch);
            accumulate_row(row_scratch, &states[it->second]);
          }
        }
      }
      for (size_t g = 0; g < states.size(); ++g) {
        groups.emplace(Row{Value::Int(first_seen[g].first),
                           Value::Int(first_seen[g].second)},
                       std::move(states[g]));
      }
    } else {
      Row key;
      for (size_t ci = 0; ci < rel.num_chunks(); ++ci) {
        const storage::ColumnChunk& chunk = rel.chunk(ci);
        const bool vec_ok = eval_programs(chunk);
        if (vec_ok) compute_modes(chunk);
        for (size_t r = 0; r < chunk.num_rows(); ++r) {
          key.clear();
          if (vec_ok) {
            for (size_t gi = 0; gi < group_exprs.size(); ++gi) {
              key.push_back(group_progs[gi]
                                ? group_batches[gi].ValueAt(r)
                                : chunk.ValueAt(
                                      r, static_cast<size_t>(group_cols[gi])));
            }
          } else {
            chunk.MaterializeRow(r, &row_scratch);
            for (const expr::ExprPtr& g : group_exprs) {
              key.push_back(g->Eval(row_scratch));
            }
          }
          auto [it, inserted] = groups.try_emplace(key);
          GroupState& state = it->second;
          if (inserted) init_state(&state);
          if (vec_ok) {
            accumulate_typed(chunk, r, &state);
          } else {
            accumulate_row(row_scratch, &state);
          }
        }
      }
    }
  } else {
    Row key;
    input.rel->ForEachRow([&](const Row& row) {
      key.clear();
      key.reserve(group_exprs.size());
      for (const expr::ExprPtr& g : group_exprs) key.push_back(g->Eval(row));
      auto [it, inserted] = groups.try_emplace(key);
      GroupState& state = it->second;
      if (inserted) init_state(&state);
      for (size_t j = 0; j < items.size(); ++j) {
        accumulate(&state, j,
                   items[j].argument ? items[j].argument->Eval(row)
                                     : Value::Int(1),
                   items[j].argument != nullptr);
      }
    });
  }

  Relation out(node.schema());
  // SQL semantics: a global aggregate (no GROUP BY) over an empty input
  // still produces one row (count = 0, min/max/sum = NULL).
  if (groups.empty() && group_exprs.empty()) {
    Row row;
    for (const plan::AggregateItem& item : items) {
      row.push_back(item.function == AggregateFunction::kCount
                        ? Value::Int(0)
                        : Value::Null());
    }
    out.Add(std::move(row));
    return Own(std::move(out));
  }
  out.Reserve(groups.size());
  for (auto& [key, state] : groups) {
    Row row = key;
    for (Value& acc : state.accumulators) row.push_back(std::move(acc));
    out.Add(std::move(row));
  }
  return Own(std::move(out));
}

Result<BorrowedRelation> ExecSort(const plan::SortNode& node,
                            const ExecContext& ctx) {
  RASQL_ASSIGN_OR_RETURN(BorrowedRelation input, Exec(node.child(0), ctx));
  std::vector<Row> rows = input.rel->MaterializeRows();
  std::stable_sort(
      rows.begin(), rows.end(), [&](const Row& a, const Row& b) {
        for (const plan::SortNode::SortKey& key : node.keys()) {
          const int c = key.expr->Eval(a).Compare(key.expr->Eval(b));
          if (c != 0) return key.ascending ? c < 0 : c > 0;
        }
        return false;
      });
  return Own(Relation(input.rel->schema(), rows));
}

Result<BorrowedRelation> Exec(const LogicalPlan& node, const ExecContext& ctx) {
  // Whole-stage fusion (codegen path): compile the filter/probe/project
  // chain rooted here into one pipeline and run it over the full driver —
  // no per-node intermediates. Probe steps reproduce the *hash* join's
  // row order, so a sort-merge context only fuses probe-free chains; the
  // interpreted tree walk below stays the oracle either way.
  if (ctx.use_codegen &&
      (node.kind() == PlanKind::kProject || node.kind() == PlanKind::kFilter ||
       node.kind() == PlanKind::kJoin)) {
    std::optional<PipelineProgram> program = PipelineProgram::Compile(node);
    if (program.has_value() &&
        (!program->has_probe_steps() ||
         ctx.join_algorithm == JoinAlgorithm::kHash)) {
      RASQL_ASSIGN_OR_RETURN(BoundPipeline pipeline, program->Bind(ctx));
      std::vector<Row> rows;
      RASQL_RETURN_IF_ERROR(pipeline.RunAll(&rows));
      return Own(Relation(node.schema(), rows));
    }
  }
  switch (node.kind()) {
    case PlanKind::kTableScan:
      return ExecTableScan(static_cast<const plan::TableScanNode&>(node),
                           ctx);
    case PlanKind::kRecursiveRef:
      return ExecRecursiveRef(
          static_cast<const plan::RecursiveRefNode&>(node), ctx);
    case PlanKind::kValues: {
      const auto& values = static_cast<const plan::ValuesNode&>(node);
      return Own(Relation(values.schema(), values.rows()));
    }
    case PlanKind::kFilter:
      return ExecFilter(static_cast<const plan::FilterNode&>(node), ctx);
    case PlanKind::kProject:
      return ExecProject(static_cast<const plan::ProjectNode&>(node), ctx);
    case PlanKind::kJoin:
      return ExecJoinGeneric(static_cast<const plan::JoinNode&>(node), ctx);
    case PlanKind::kAggregate:
      return ExecAggregate(static_cast<const plan::AggregateNode&>(node),
                           ctx);
    case PlanKind::kSort:
      return ExecSort(static_cast<const plan::SortNode&>(node), ctx);
    case PlanKind::kLimit: {
      const auto& limit = static_cast<const plan::LimitNode&>(node);
      RASQL_ASSIGN_OR_RETURN(BorrowedRelation input, Exec(node.child(0), ctx));
      Relation out(node.schema());
      const size_t n = std::min<size_t>(input.rel->size(),
                                        static_cast<size_t>(limit.limit()));
      input.rel->ForEachRow(storage::RowRange{0, n},
                            [&](const Row& row) { out.Add(row); });
      return Own(std::move(out));
    }
  }
  return Status::Internal("unhandled plan node");
}

}  // namespace

Result<Relation> Execute(const LogicalPlan& plan, const ExecContext& ctx) {
  RASQL_ASSIGN_OR_RETURN(BorrowedRelation result, Exec(plan, ctx));
  if (result.owned) return std::move(*result.owned);
  return *result.rel;  // borrowed: copy out
}

Result<BorrowedRelation> ExecuteBorrowed(const LogicalPlan& plan,
                                         const ExecContext& ctx) {
  return Exec(plan, ctx);
}

}  // namespace rasql::physical
