#ifndef RASQL_PHYSICAL_PIPELINE_H_
#define RASQL_PHYSICAL_PIPELINE_H_

#include <optional>
#include <vector>

#include "common/status.h"
#include "expr/vec_program.h"
#include "physical/executor.h"
#include "plan/logical_plan.h"
#include "storage/relation.h"
#include "storage/row_range.h"

namespace rasql::physical {

class BoundPipeline;

/// A fused operator pipeline compiled from the left spine of a logical
/// plan: a driving leaf (table scan / recursive ref / VALUES) followed by
/// filter, hash-join-probe and project steps that push each driver row
/// through to a sink — the whole-stage-codegen analogue (paper Sec. 7.3),
/// generalized from the executor's old ad-hoc Project(Filter(X)) /
/// Project(Join(X, Y)) special cases. Join nodes contribute their *right*
/// child as a materialized build side; the left child stays on the spine,
/// so the driver is the leftmost leaf and the pipeline is linear in it.
///
/// Compilation is context-free (plan shape only) and cheap; do it once per
/// plan and Bind() per evaluation context. The interpreted tree walk in
/// executor.cc remains the oracle: for any plan the pipeline produces the
/// same rows in the same order (probe-major driver order, build matches in
/// JoinHashTable::Probe order — exactly the tree walk's hash-join order).
class PipelineProgram {
 public:
  /// Returns the compiled pipeline, or nullopt when the plan is not a
  /// fusable chain (cross joins, aggregates/sorts/limits on the spine, or
  /// a bare leaf with no steps to fuse).
  static std::optional<PipelineProgram> Compile(const plan::LogicalPlan& plan);

  /// Resolves the driver and build sides against `ctx`, builds the join
  /// hash tables and expression evaluators. The returned pipeline borrows
  /// relations owned by `ctx` (and the plan), so both must outlive it; it
  /// does not retain `ctx` itself.
  common::Result<BoundPipeline> Bind(const ExecContext& ctx) const;

  /// True when the pipeline contains at least one join probe. Probe steps
  /// replicate the tree walk's *hash* join order; callers running under
  /// sort-merge must fall back to the tree walk when this is set.
  bool has_probe_steps() const { return num_probe_steps_ > 0; }
  const plan::LogicalPlan& driver() const { return *driver_; }
  size_t num_steps() const { return steps_.size(); }

 private:
  friend class BoundPipeline;
  struct Step {
    enum class Kind { kFilter, kProject, kHashProbe };
    Kind kind;
    const plan::FilterNode* filter = nullptr;
    const plan::ProjectNode* project = nullptr;
    const plan::JoinNode* join = nullptr;  ///< probe; build = right child
  };
  const plan::LogicalPlan* driver_ = nullptr;
  std::vector<Step> steps_;  ///< driver-to-root order
  int num_probe_steps_ = 0;
};

/// A PipelineProgram bound to one evaluation context: driver and build
/// relations resolved, hash tables built, expressions compiled. Run() is
/// const and carries its working state on the caller's stack, so one
/// BoundPipeline may be shared by concurrent morsel tasks evaluating
/// disjoint RowRanges of the same driver.
///
/// Two execution modes share the Run() entry point (DESIGN.md §13, §15).
/// The interpreted mode materializes each driver row and pushes it through
/// the steps. Batch mode (ExecContext::batch_rows > 0) walks the driver's
/// column chunks directly: leading filters run arbitrary predicates —
/// conjunctions, col-vs-col, arithmetic subexpressions, dictionary-aware
/// string equality — as expr::VecProgram selection-vector kernels (a chunk
/// the kernels cannot mirror exactly falls back to the row interpreter
/// mid-pipeline), and a leading hash-probe extracts its key column-wise,
/// materializing a row only when the build side matches. Both modes emit
/// identical rows in identical order — the interpreter is the row-for-row
/// oracle.
class BoundPipeline {
 public:
  BoundPipeline() = default;
  BoundPipeline(BoundPipeline&&) = default;
  BoundPipeline& operator=(BoundPipeline&&) = default;

  size_t driver_rows() const { return driver_.rel->size(); }

  /// Pushes driver rows [range.begin, min(range.end, driver_rows())) through
  /// every step, appending produced rows to `*sink`. Output order is the
  /// driver order restricted to the range: concatenating the sinks of a
  /// morsel split in morsel order equals one whole-driver Run.
  common::Status Run(storage::RowRange range,
                     std::vector<storage::Row>* sink) const;

  /// Whole-driver evaluation.
  common::Status RunAll(std::vector<storage::Row>* sink) const {
    return Run(storage::RowRange{0, driver_rows()}, sink);
  }

 private:
  friend class PipelineProgram;
  struct BoundStep {
    PipelineProgram::Step::Kind kind;
    std::optional<PredicateEvaluator> predicate;  // kFilter
    /// kFilter batch kernel: the predicate compiled for whichever scalar
    /// engine the row path uses, so batch and row mode agree bit for bit.
    std::optional<expr::VecProgram> vec_filter;
    std::optional<ProjectionEvaluator> projector;  // kProject
    // kHashProbe: materialized build side + its hash table. The table
    // points into `build.rel`, which is stable under moves (borrowed
    // context relation or heap-owned intermediate).
    BorrowedRelation build;
    std::optional<JoinHashTable> table;
    std::vector<int> probe_keys;
    size_t left_width = 0;
    size_t right_width = 0;
  };
  /// Per-Run scratch, allocated on the caller's stack (thread safety).
  struct ProbeScratch {
    storage::Row combined;
    std::vector<int> matches;
  };

  void PushRow(const storage::Row& row, size_t step,
               std::vector<ProbeScratch>* scratch,
               std::vector<storage::Row>* sink) const;

  common::Status RunBatch(storage::RowRange range,
                          std::vector<storage::Row>* sink) const;

  BorrowedRelation driver_;
  std::vector<BoundStep> steps_;
  size_t batch_rows_ = 0;
};

}  // namespace rasql::physical

#endif  // RASQL_PHYSICAL_PIPELINE_H_
