#include "fixpoint/stage_plan.h"

#include <algorithm>
#include <string>
#include <utility>

#include "fixpoint/local_fixpoint.h"

namespace rasql::fixpoint {

using common::Result;
using common::Status;
using verify::AccessMode;
using verify::StageGraph;
using verify::StageKind;
using verify::StageNode;

namespace {

constexpr AccessMode kReadShared = AccessMode::kReadShared;
constexpr AccessMode kPartitionOwned = AccessMode::kPartitionOwned;
constexpr AccessMode kSplitSlotOwned = AccessMode::kSplitSlotOwned;

/// Joins the clique's view names for the graph note.
std::string ViewNames(const analysis::RecursiveClique& clique) {
  std::string out;
  for (const analysis::RecursiveView& view : clique.views) {
    if (!out.empty()) out += ", ";
    out += view.name;
  }
  return out;
}

}  // namespace

Result<StageGraph> PlanDistributedStages(
    const analysis::RecursiveClique& clique,
    const DistFixpointOptions& options,
    const runtime::RuntimeOptions& runtime, int num_partitions) {
  if (!EligibleForDistributed(clique)) {
    return Status::InvalidArgument(
        "clique is not eligible for distributed evaluation; EXPLAIN STAGES "
        "would dispatch it to the local evaluator");
  }
  RASQL_ASSIGN_OR_RETURN(DistOrchestration orch,
                         AnalyzeOrchestration(clique, options));

  StageGraph g;
  g.num_partitions = num_partitions;

  // Shared driver-side state the task closures touch — the same objects
  // the evaluator Claim()s on its live StageSpecs, by the same names.
  const int r_all = g.AddResource("all");
  const int r_delta = g.AddResource("delta");
  const int r_steps = g.AddResource("step-caches");
  const int r_copart =
      orch.copartitioned.empty() ? -1 : g.AddResource("coparted-base");
  const int c_delta_rows = g.AddCounter("delta-rows");
  const int s_failure = g.AddStatus("failure");

  // ---- Prologue: distribute base relations per the orchestration. ----
  for (const std::string& name : orch.copartitioned) {
    g.AddStage("partition-base:" + name, StageKind::kShuffleMap);
  }

  // ---- Warm start (DESIGN.md §14): the retained converged state is
  // absorbed into the partitions before the seed merge runs against it;
  // the seed stages then carry the appended-rows delta, not the base case.
  if (options.warm_start != nullptr) {
    const int r_warm = g.AddResource("warm-state");
    g.AddStage("warm-absorb", StageKind::kLocal);
    g.Claim(r_all, kPartitionOwned);
    g.Claim(r_warm, kReadShared);
  }

  // ---- Seed: scatter the driver-evaluated base case, merge per
  // partition. Submitted as one pipelined pair. ----
  const int ch_seed = g.AddChannel("seed-exchange");
  int group = 0;
  {
    const int r_splits = g.AddResource("seed-splits");
    StageNode& seed = g.AddStage("seed-base-case", StageKind::kShuffleMap);
    seed.output_channel = ch_seed;
    seed.group = group;
    g.Claim(r_splits, kPartitionOwned);
    StageNode& merge =
        g.AddStage("merge-base-case", StageKind::kShuffleReduce);
    merge.input_channel = ch_seed;
    merge.group = group;
    g.Claim(r_all, kPartitionOwned);
    g.Claim(r_delta, kPartitionOwned);
    ++group;
  }

  std::string note = "clique: " + ViewNames(clique);
  if (!orch.broadcast.empty()) {
    note += "\nbroadcast (no stage): ";
    for (size_t i = 0; i < orch.broadcast.size(); ++i) {
      if (i > 0) note += ", ";
      note += orch.broadcast[i];
    }
  }

  if (orch.decomposed) {
    // ---- Decomposed evaluation (Sec. 7.2): one stage, each partition
    // iterates to its own fixpoint with no cross-partition exchange. ----
    StageNode& node = g.AddStage("decomposed-fixpoint", StageKind::kLocal);
    node.counter = c_delta_rows;
    node.status = s_failure;
    g.Claim(r_all, kPartitionOwned);
    g.Claim(r_delta, kPartitionOwned);
    g.Claim(r_steps, kPartitionOwned);
    if (r_copart >= 0) g.Claim(r_copart, kReadShared);
    note += "\nmode: decomposed (Sec. 7.2) — single stage, no iteration";
  } else if (orch.combine_stages) {
    // ---- Combined reduce+map stages (Alg. 6): iteration i consumes the
    // channel iteration i-1 published and publishes the other one; the
    // driver Reset()s the about-to-be-written channel each round. Unrolled
    // three iterations so the template shows the ping-pong including the
    // first Reset-then-republish. ----
    const int ch_ping = g.AddChannel("iter-exchange[0]");
    const int ch_pong = g.AddChannel("iter-exchange[1]");
    {
      StageNode& first = g.AddStage("iter-1", StageKind::kShuffleMap);
      first.output_channel = ch_ping;
      first.status = s_failure;
      g.Claim(r_all, kReadShared);
      g.Claim(r_delta, kPartitionOwned);
      g.Claim(r_steps, kPartitionOwned);
      if (r_copart >= 0) g.Claim(r_copart, kReadShared);
    }
    const struct {
      const char* name;
      int in, out;
      bool reset_out;
    } iters[] = {{"iter-2", ch_ping, ch_pong, false},
                 {"iter-3", ch_pong, ch_ping, true}};
    for (const auto& it : iters) {
      StageNode& node = g.AddStage(it.name, StageKind::kCombined);
      node.input_channel = it.in;
      node.output_channel = it.out;
      node.counter = c_delta_rows;
      node.status = s_failure;
      if (it.reset_out) node.resets.push_back(it.out);
      g.Claim(r_all, kPartitionOwned);
      g.Claim(r_delta, kPartitionOwned);
      g.Claim(r_steps, kPartitionOwned);
      if (r_copart >= 0) g.Claim(r_copart, kReadShared);
    }
    note +=
        "\nmode: combined reduce+map (Alg. 6) — iter-2/iter-3 template "
        "repeats, alternating exchanges, until the delta is empty";
  } else {
    // ---- Plain DSN (Alg. 4/5): map-i/reduce-i per iteration over one
    // exchange, Reset() before every map after the first. Splittable maps
    // run as a morsel DAG (separate submissions); otherwise the pair is
    // pipelined. Unrolled twice to show the Reset-then-republish. ----
    const bool split = runtime.morsel_rows > 0 && orch.delta_splittable;
    const int ch_exchange = g.AddChannel("delta-exchange");
    int r_frozen = -1, r_sub = -1, r_slots = -1, r_sub_status = -1;
    if (split) {
      r_frozen = g.AddResource("frozen-delta");
      r_sub = g.AddResource("sub-plan");
      r_slots = g.AddResource("morsel-slots");
      r_sub_status = g.AddResource("morsel-status");
    }
    for (int i = 1; i <= 2; ++i) {
      const std::string suffix = "-" + std::to_string(i);
      StageNode& map = g.AddStage("map" + suffix, StageKind::kShuffleMap);
      map.output_channel = ch_exchange;
      map.status = s_failure;
      map.split = split;
      if (!split) map.group = group;
      if (i > 1) map.resets.push_back(ch_exchange);
      if (split) {
        g.Claim(r_frozen, kReadShared);
        g.Claim(r_sub, kReadShared);
        g.Claim(r_slots, kSplitSlotOwned);
        g.Claim(r_sub_status, kSplitSlotOwned);
      } else {
        g.Claim(r_delta, kPartitionOwned);
      }
      g.Claim(r_steps, kPartitionOwned);
      if (r_copart >= 0) g.Claim(r_copart, kReadShared);
      StageNode& reduce =
          g.AddStage("reduce" + suffix, StageKind::kShuffleReduce);
      reduce.input_channel = ch_exchange;
      reduce.counter = c_delta_rows;
      if (!split) reduce.group = group;
      g.Claim(r_all, kPartitionOwned);
      g.Claim(r_delta, kPartitionOwned);
      ++group;
    }
    note += split ? "\nmode: plain DSN (Alg. 4/5), morsel-split map DAG — "
                    "map/reduce template repeats until the delta is empty"
                  : "\nmode: plain DSN (Alg. 4/5), pipelined pairs — "
                    "map/reduce template repeats until the delta is empty";
  }
  g.note = std::move(note);
  return g;
}

Result<StageGraph> PlanLocalStages(const analysis::RecursiveClique& clique,
                                   const FixpointOptions& options) {
  StageGraph g;
  // The local evaluator's "partitions" are its hash slices; every phase
  // below runs one task per slice (or per view/branch) on the pool.
  g.num_partitions = std::max(1, options.local_partitions);
  std::string note = "clique: " + ViewNames(clique);

  if (!clique.IsRecursive()) {
    // One-shot evaluation, views in parallel; each task owns its slot.
    const int r_results = g.AddResource("result-slots");
    const int s_failure = g.AddStatus("failure");
    StageNode& node = g.AddStage("eval-views", StageKind::kLocal);
    node.status = s_failure;
    g.Claim(r_results, kPartitionOwned);
    g.note = std::move(note) + "\nmode: non-recursive, single evaluation";
    return g;
  }

  RASQL_ASSIGN_OR_RETURN(const FixpointMode mode,
                         ResolveLocalMode(clique, options));
  if (mode == FixpointMode::kSemiNaive) {
    // Phases of one EvaluateSemiNaive iteration (local_fixpoint.cc): the
    // frozen inputs are read-shared, morsel slots are split-slot-owned,
    // and every merge target is a partition-indexed slot.
    const int r_state = g.AddResource("state");
    const int r_delta = g.AddResource("delta");
    const int r_frozen = g.AddResource("frozen-inputs");
    const int r_slots = g.AddResource("morsel-slots");
    const int r_writes = g.AddResource("shuffle-writes");
    if (options.warm_start != nullptr) {
      // Warm start: load the retained converged state into the partition
      // slices before the seed delta merges against it (DESIGN.md §14).
      const int r_warm = g.AddResource("warm-state");
      g.AddStage("warm-absorb", StageKind::kLocal);
      g.Claim(r_state, kPartitionOwned);
      g.Claim(r_warm, kReadShared);
    }
    {
      g.AddStage("seed-merge", StageKind::kLocal);
      g.Claim(r_state, kPartitionOwned);
      g.Claim(r_delta, kPartitionOwned);
    }
    {
      StageNode& map = g.AddStage("iter-map", StageKind::kLocal);
      map.split = true;
      g.Claim(r_frozen, kReadShared);
      g.Claim(r_slots, kSplitSlotOwned);
    }
    {
      g.AddStage("iter-merge", StageKind::kLocal);
      g.Claim(r_slots, kReadShared);
      g.Claim(r_writes, kPartitionOwned);
    }
    {
      g.AddStage("iter-reduce", StageKind::kLocal);
      g.Claim(r_writes, kReadShared);
      g.Claim(r_state, kPartitionOwned);
      g.Claim(r_delta, kPartitionOwned);
    }
    g.note = std::move(note) +
             "\nmode: local semi-naive (Alg. 3/5) — iter-* template "
             "repeats until the delta is empty";
    return g;
  }

  // Naive (Alg. 2): every branch reads the frozen X_n and fills its own
  // morsel slots; canonicalization writes one slot per view.
  const int r_state = g.AddResource("state");
  const int r_slots = g.AddResource("branch-slots");
  const int r_next = g.AddResource("next-state");
  {
    StageNode& branches = g.AddStage("naive-branches", StageKind::kLocal);
    branches.split = true;
    g.Claim(r_state, kReadShared);
    g.Claim(r_slots, kSplitSlotOwned);
  }
  {
    g.AddStage("naive-canonicalize", StageKind::kLocal);
    g.Claim(r_slots, kReadShared);
    g.Claim(r_next, kPartitionOwned);
  }
  g.note = std::move(note) +
           "\nmode: local naive (Alg. 2) — template repeats until the "
           "state stabilizes";
  return g;
}

}  // namespace rasql::fixpoint
