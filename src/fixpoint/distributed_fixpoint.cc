#include "fixpoint/distributed_fixpoint.h"

#include <algorithm>
#include <mutex>
#include <set>

#include "common/check.h"
#include "common/timer.h"
#include "dist/aggregates.h"
#include "dist/broadcast.h"
#include "dist/partition.h"
#include "dist/set_rdd.h"
#include "dist/shuffle.h"
#include "fixpoint/warm_state.h"
#include "runtime/stage_accumulators.h"
#include "storage/row_range.h"

namespace rasql::fixpoint {

using analysis::RecursiveClique;
using analysis::RecursiveView;
using common::Result;
using common::Status;
using dist::AggSpec;
using dist::Cluster;
using dist::Partitioning;
using dist::ShuffleChannel;
using dist::ShuffleWrite;
using dist::StageSpec;
using dist::TaskContext;
using runtime::StageCounter;
using runtime::StageStatus;
using plan::LogicalPlan;
using plan::PlanKind;
using plan::RecursiveRefNode;
using storage::Relation;
using storage::Row;

namespace {

/// Structural analysis of one recursive branch plan (see DESIGN.md §4).
struct StepShape {
  const RecursiveRefNode* ref = nullptr;
  /// Join keys on the delta side (positions in the view schema); empty
  /// when the reference does not sit directly under a keyed join.
  std::vector<int> delta_keys;
  /// Direct join partner when it is a plain table scan (co-partitionable).
  const plan::TableScanNode* copart_table = nullptr;
  std::vector<int> copart_keys;
  bool ref_is_left = true;
  /// Simple pipeline Project(Filter?(Join(ref, scan))) — eligible for the
  /// fused cached-hash step evaluator.
  bool simple = false;
  const plan::ProjectNode* project = nullptr;
  const plan::FilterNode* filter = nullptr;
  const plan::JoinNode* join = nullptr;
  /// Column offset of the reference inside the pipeline's concatenated row.
  int ref_offset = 0;
  /// Output positions copied verbatim from the same position of the ref —
  /// the partition-preserving columns enabling decomposed evaluation.
  std::vector<int> passthrough;
};

/// Computes the column offset of `target` in the left-to-right leaf
/// concatenation under `node`. Returns true when found.
bool FindRefOffset(const LogicalPlan& node, const RecursiveRefNode* target,
                   int* offset) {
  switch (node.kind()) {
    case PlanKind::kRecursiveRef:
      if (&node == target) return true;
      *offset += node.schema().num_columns();
      return false;
    case PlanKind::kJoin:
      if (FindRefOffset(node.child(0), target, offset)) return true;
      return FindRefOffset(node.child(1), target, offset);
    case PlanKind::kFilter:
      return FindRefOffset(node.child(0), target, offset);
    default:
      *offset += node.schema().num_columns();
      return false;
  }
}

StepShape AnalyzeStep(const LogicalPlan& plan) {
  StepShape shape;
  std::vector<const RecursiveRefNode*> refs = CollectRecursiveRefs(plan);
  RASQL_CHECK(refs.size() == 1);
  shape.ref = refs[0];

  // Walk the pipeline: Project [Filter] <join tree>.
  const LogicalPlan* node = &plan;
  if (node->kind() == PlanKind::kProject) {
    shape.project = static_cast<const plan::ProjectNode*>(node);
    node = &node->child(0);
  }
  if (node->kind() == PlanKind::kFilter) {
    shape.filter = static_cast<const plan::FilterNode*>(node);
    node = &node->child(0);
  }
  const LogicalPlan* tree = node;

  // Find the join whose direct child is the recursive ref.
  std::function<const plan::JoinNode*(const LogicalPlan&)> find_parent_join =
      [&](const LogicalPlan& n) -> const plan::JoinNode* {
    if (n.kind() != PlanKind::kJoin) return nullptr;
    const auto& join = static_cast<const plan::JoinNode&>(n);
    if (&join.child(0) == shape.ref || &join.child(1) == shape.ref) {
      return &join;
    }
    for (const plan::PlanPtr& child : n.children()) {
      if (const plan::JoinNode* found = find_parent_join(*child)) {
        return found;
      }
    }
    return nullptr;
  };
  const plan::JoinNode* parent = find_parent_join(*tree);
  if (parent != nullptr && !parent->is_cross()) {
    shape.join = parent;
    shape.ref_is_left = &parent->child(0) == shape.ref;
    shape.delta_keys =
        shape.ref_is_left ? parent->left_keys() : parent->right_keys();
    const LogicalPlan& other =
        shape.ref_is_left ? parent->child(1) : parent->child(0);
    if (other.kind() == PlanKind::kTableScan) {
      shape.copart_table = static_cast<const plan::TableScanNode*>(&other);
      shape.copart_keys =
          shape.ref_is_left ? parent->right_keys() : parent->left_keys();
    }
  }

  // Simple fused shape: the join with the ref is the whole tree.
  shape.simple = shape.project != nullptr && shape.join == tree &&
                 shape.copart_table != nullptr;

  int offset = 0;
  if (FindRefOffset(*tree, shape.ref, &offset)) shape.ref_offset = offset;

  if (shape.project != nullptr) {
    const auto& exprs = shape.project->exprs();
    for (size_t i = 0; i < exprs.size(); ++i) {
      if (exprs[i]->kind() == expr::Expr::Kind::kColumnRef) {
        const int g =
            static_cast<const expr::ColumnRefExpr&>(*exprs[i]).index();
        if (g == shape.ref_offset + static_cast<int>(i) &&
            static_cast<int>(i) < shape.ref->schema().num_columns()) {
          shape.passthrough.push_back(static_cast<int>(i));
        }
      }
    }
  }
  return shape;
}

/// Evaluates one recursive branch against a delta partition, reusing
/// per-partition cached join structures across iterations (paper App. D).
class StepEvaluator {
 public:
  StepEvaluator(const LogicalPlan& plan, StepShape shape,
                const std::map<std::string, const Relation*>& tables,
                const DistFixpointOptions& options, int num_partitions,
                size_t batch_rows)
      : plan_(&plan),
        shape_(std::move(shape)),
        tables_(&tables),
        options_(options),
        batch_rows_(batch_rows) {
    hash_cache_.resize(num_partitions);
    hash_once_.reserve(num_partitions);
    for (int p = 0; p < num_partitions; ++p) {
      hash_once_.push_back(std::make_unique<std::once_flag>());
    }
    sorted_cache_.resize(num_partitions);
    base_rows_cache_.resize(num_partitions);
    if (shape_.simple) {
      projector_ = std::make_unique<physical::ProjectionEvaluator>(
          shape_.project->exprs(), options_.use_codegen);
      if (shape_.filter != nullptr) {
        predicate_ = std::make_unique<physical::PredicateEvaluator>(
            shape_.filter->predicate(), options_.use_codegen);
      }
    }
  }

  /// `base_binding(table_name, partition)` returns the relation a table
  /// scan should read in this partition (a co-partitioned slice or the
  /// broadcast whole).
  using BaseBinding =
      std::function<const Relation*(const std::string&, int)>;

  Result<std::vector<Row>> Eval(const Relation& delta, int partition,
                                const BaseBinding& base_binding) {
    if (shape_.simple && options_.join_algorithm ==
                             physical::JoinAlgorithm::kHash) {
      return EvalFusedHash(delta, {0, delta.size()}, partition,
                           base_binding);
    }
    if (shape_.simple &&
        options_.join_algorithm == physical::JoinAlgorithm::kSortMerge) {
      return EvalSortMerge(delta, partition, base_binding);
    }
    return EvalGeneric(delta, partition, base_binding);
  }

  /// True when this step may be evaluated over delta sub-ranges whose
  /// concatenation (in range order) equals the whole-delta output: the
  /// fused hash path iterates the delta in row order against a per-
  /// partition cached build side. Sort-merge re-sorts the delta and the
  /// generic path hands the whole delta to the executor — neither is
  /// range-decomposable, so they run as one whole-range sub-task.
  bool DeltaSplittable() const {
    return shape_.simple &&
           options_.join_algorithm == physical::JoinAlgorithm::kHash;
  }

  /// Range form for morsel sub-tasks. Concurrent sub-tasks of the same
  /// partition may call this; the per-partition hash-table build is
  /// guarded by a once_flag and everything else is call-local.
  Result<std::vector<Row>> Eval(const Relation& delta,
                                storage::RowRange range, int partition,
                                const BaseBinding& base_binding) {
    RASQL_CHECK(DeltaSplittable());
    return EvalFusedHash(delta, range, partition, base_binding);
  }

 private:
  Result<std::vector<Row>> EvalFusedHash(const Relation& delta,
                                         storage::RowRange range,
                                         int partition,
                                         const BaseBinding& base_binding) {
    const Relation* base =
        base_binding(shape_.copart_table->table_name(), partition);
    if (base == nullptr) {
      return Status::ExecutionError("missing base binding for '" +
                                    shape_.copart_table->table_name() + "'");
    }
    // Build the base-side hash table once per partition and reuse it in
    // every iteration (the cached shuffle-hash join of App. D). call_once
    // because same-partition morsel sub-tasks may race to build it.
    std::call_once(*hash_once_[partition], [&] {
      hash_cache_[partition] = std::make_unique<physical::JoinHashTable>(
          *base, shape_.copart_keys);
    });
    const physical::JoinHashTable& table = *hash_cache_[partition];

    std::vector<Row> out;
    std::vector<int> matches;
    const int ref_width = shape_.ref->schema().num_columns();
    const int base_width = base->schema().num_columns();
    Row combined(ref_width + base_width);
    const int ref_at = shape_.ref_is_left ? 0 : base_width;
    const int base_at = shape_.ref_is_left ? ref_width : 0;
    const size_t end = std::min(range.end, delta.size());
    for (size_t i = range.begin; i < end; ++i) {
      matches.clear();
      // Column-wise probe: the key cells hash straight out of the delta's
      // chunks; the delta row is copied into `combined` only on a match.
      table.ProbeAt(delta, i, shape_.delta_keys, &matches);
      if (matches.empty()) continue;
      delta.CopyRowTo(i, &combined, static_cast<size_t>(ref_at));
      for (int m : matches) {
        base->CopyRowTo(static_cast<size_t>(m), &combined,
                        static_cast<size_t>(base_at));
        if (predicate_ != nullptr && !predicate_->Eval(combined)) continue;
        out.push_back(projector_->Eval(combined));
      }
    }
    return out;
  }

  Result<std::vector<Row>> EvalSortMerge(const Relation& delta,
                                         int partition,
                                         const BaseBinding& base_binding) {
    const Relation* base =
        base_binding(shape_.copart_table->table_name(), partition);
    if (base == nullptr) {
      return Status::ExecutionError("missing base binding for '" +
                                    shape_.copart_table->table_name() + "'");
    }
    // Sort (and materialize) the base side once per partition; sort the
    // delta every iteration (this is why sort-merge loses to cached
    // shuffle-hash in Fig. 11 while using less memory).
    if (sorted_cache_[partition].empty() && !base->empty()) {
      base_rows_cache_[partition] = base->MaterializeRows();
      const std::vector<Row>& brows = base_rows_cache_[partition];
      auto& order = sorted_cache_[partition];
      order.resize(base->size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return KeyLess(brows[a], shape_.copart_keys, brows[b],
                       shape_.copart_keys);
      });
    }
    const std::vector<Row>& base_rows = base_rows_cache_[partition];
    std::vector<Row> delta_rows = delta.MaterializeRows();
    std::vector<const Row*> deltas;
    deltas.reserve(delta_rows.size());
    for (const Row& d : delta_rows) deltas.push_back(&d);
    std::sort(deltas.begin(), deltas.end(), [&](const Row* a, const Row* b) {
      return KeyLess(*a, shape_.delta_keys, *b, shape_.delta_keys);
    });

    std::vector<Row> out;
    const int ref_width = shape_.ref->schema().num_columns();
    const int base_width = base->schema().num_columns();
    Row combined(ref_width + base_width);
    const int ref_at = shape_.ref_is_left ? 0 : base_width;
    const int base_at = shape_.ref_is_left ? ref_width : 0;
    const auto& order = sorted_cache_[partition];
    size_t i = 0;
    size_t j = 0;
    while (i < deltas.size() && j < order.size()) {
      const Row& d = *deltas[i];
      const Row& b = base_rows[order[j]];
      if (KeyLess(d, shape_.delta_keys, b, shape_.copart_keys)) {
        ++i;
      } else if (KeyLess(b, shape_.copart_keys, d, shape_.delta_keys)) {
        ++j;
      } else {
        size_t j_end = j;
        while (j_end < order.size() &&
               !KeyLess(b, shape_.copart_keys, base_rows[order[j_end]],
                        shape_.copart_keys) &&
               !KeyLess(base_rows[order[j_end]], shape_.copart_keys, b,
                        shape_.copart_keys)) {
          ++j_end;
        }
        size_t i_end = i;
        while (i_end < deltas.size() &&
               !KeyLess(d, shape_.delta_keys, *deltas[i_end],
                        shape_.delta_keys) &&
               !KeyLess(*deltas[i_end], shape_.delta_keys, d,
                        shape_.delta_keys)) {
          ++i_end;
        }
        for (size_t a = i; a < i_end; ++a) {
          std::copy(deltas[a]->begin(), deltas[a]->end(),
                    combined.begin() + ref_at);
          for (size_t bb = j; bb < j_end; ++bb) {
            const Row& br = base_rows[order[bb]];
            std::copy(br.begin(), br.end(), combined.begin() + base_at);
            if (predicate_ != nullptr && !predicate_->Eval(combined)) {
              continue;
            }
            out.push_back(projector_->Eval(combined));
          }
        }
        i = i_end;
        j = j_end;
      }
    }
    return out;
  }

  Result<std::vector<Row>> EvalGeneric(const Relation& delta, int partition,
                                       const BaseBinding& base_binding) {
    physical::ExecContext ctx;
    ctx.use_codegen = options_.use_codegen;
    ctx.batch_rows = batch_rows_;
    ctx.join_algorithm = options_.join_algorithm;
    for (const auto& [name, rel] : *tables_) {
      const Relation* bound = base_binding(name, partition);
      ctx.tables[name] = bound != nullptr ? bound : rel;
    }
    ctx.recursive_resolver =
        [&](const RecursiveRefNode&) -> const Relation* { return &delta; };
    RASQL_ASSIGN_OR_RETURN(Relation rel, physical::Execute(*plan_, ctx));
    return rel.TakeRows();
  }

  static bool KeyLess(const Row& a, const std::vector<int>& ak, const Row& b,
                      const std::vector<int>& bk) {
    for (size_t i = 0; i < ak.size(); ++i) {
      const int c = a[ak[i]].Compare(b[bk[i]]);
      if (c != 0) return c < 0;
    }
    return false;
  }

  const LogicalPlan* plan_;
  StepShape shape_;
  const std::map<std::string, const Relation*>* tables_;
  DistFixpointOptions options_;
  size_t batch_rows_ = 0;
  std::unique_ptr<physical::ProjectionEvaluator> projector_;
  std::unique_ptr<physical::PredicateEvaluator> predicate_;
  std::vector<std::unique_ptr<physical::JoinHashTable>> hash_cache_;
  std::vector<std::unique_ptr<std::once_flag>> hash_once_;
  std::vector<std::vector<size_t>> sorted_cache_;
  /// Materialized base rows per partition, built alongside sorted_cache_.
  std::vector<std::vector<Row>> base_rows_cache_;
};

bool IsSubset(const std::vector<int>& sub, const std::vector<int>& super) {
  for (int x : sub) {
    if (std::find(super.begin(), super.end(), x) == super.end()) {
      return false;
    }
  }
  return true;
}

/// Shorthand for the stage claim declarations below.
constexpr verify::AccessMode kReadShared = verify::AccessMode::kReadShared;
constexpr verify::AccessMode kPartitionOwned =
    verify::AccessMode::kPartitionOwned;
constexpr verify::AccessMode kSplitSlotOwned =
    verify::AccessMode::kSplitSlotOwned;

/// The public DistOrchestration plus the per-branch shapes the evaluator
/// needs to build its step evaluators.
struct Orchestration {
  DistOrchestration pub;
  std::vector<StepShape> shapes;
  /// Tables shuffled into co-partitioned slices (set form of
  /// pub.copartitioned, for membership tests).
  std::set<std::string> copart_names;
  /// Scan counts across the recursive plans.
  std::map<std::string, int> scanned;
};

/// The compile section of the distributed evaluator: branch shapes, the
/// partition key, decomposed-plan eligibility and the base-relation
/// distribution. Shared verbatim with AnalyzeOrchestration so EXPLAIN
/// STAGES renders the orchestration the evaluator actually submits.
Result<Orchestration> Analyze(const RecursiveClique& clique,
                              const DistFixpointOptions& options) {
  const RecursiveView& view = clique.views[0];
  const AggSpec spec = AggSpec::For(view.schema.num_columns(),
                                    view.agg_column, view.aggregate);
  Orchestration orch;
  orch.shapes.reserve(view.recursive_plans.size());
  for (const plan::PlanPtr& p : view.recursive_plans) {
    orch.shapes.push_back(AnalyzeStep(*p));
  }
  const std::vector<StepShape>& shapes = orch.shapes;

  // Partition key: the common delta-side join key, constrained to lie
  // within the group-by columns for aggregate views (Alg. 4: "K: partition
  // key for δR, δR′, B, R, also the join key").
  std::vector<int> key;
  bool have_common_key = !shapes.empty();
  for (size_t i = 0; i < shapes.size(); ++i) {
    if (shapes[i].delta_keys.empty() ||
        (i > 0 && shapes[i].delta_keys != shapes[0].delta_keys)) {
      have_common_key = false;
      break;
    }
  }
  bool copartition_base = false;
  if (have_common_key &&
      (!spec.has_aggregate() ||
       IsSubset(shapes[0].delta_keys, spec.key_columns))) {
    key = shapes[0].delta_keys;
    copartition_base = true;
  } else if (spec.has_aggregate()) {
    key = spec.key_columns;
  } else {
    key.resize(view.schema.num_columns());
    for (size_t i = 0; i < key.size(); ++i) key[i] = static_cast<int>(i);
  }

  // Decomposed-plan eligibility (Sec. 7.2): every branch must preserve a
  // common set of delta columns through its projection.
  std::vector<int> passthrough;
  if (!shapes.empty()) {
    passthrough = shapes[0].passthrough;
    for (size_t i = 1; i < shapes.size(); ++i) {
      std::vector<int> merged;
      for (int c : passthrough) {
        if (std::find(shapes[i].passthrough.begin(),
                      shapes[i].passthrough.end(),
                      c) != shapes[i].passthrough.end()) {
          merged.push_back(c);
        }
      }
      passthrough = std::move(merged);
    }
  }
  bool decomposed =
      options.decomposed != DistFixpointOptions::Decomposed::kOff &&
      !passthrough.empty() &&
      (!spec.has_aggregate() || IsSubset(passthrough, spec.key_columns));
  if (options.decomposed == DistFixpointOptions::Decomposed::kOn &&
      !decomposed) {
    return Status::ExecutionError(
        "decomposed evaluation forced but the plan does not preserve the "
        "delta partitioning");
  }
  if (decomposed) {
    key = passthrough;
    copartition_base = false;  // base joined on a non-partition key
  }
  orch.pub.decomposed = decomposed;
  orch.pub.combine_stages = !decomposed && options.combine_stages;
  orch.pub.partition_key = key;

  // Base-relation distribution: co-partition the direct join partner,
  // broadcast everything else (Sec. 7.2).
  for (const plan::PlanPtr& p : view.recursive_plans) {
    CollectTableScans(*p, &orch.scanned);
  }
  if (copartition_base) {
    for (const StepShape& shape : shapes) {
      if (shape.copart_table == nullptr) continue;
      const std::string& name = shape.copart_table->table_name();
      // A table scanned more than once across the recursive plans plays
      // two roles (e.g. SG's `rel a` and `rel b`); only a single-role scan
      // may read a co-partitioned slice — otherwise broadcast it whole.
      if (orch.scanned[name] == 1) orch.copart_names.insert(name);
    }
  }
  for (const std::string& name : orch.copart_names) {
    orch.pub.copartitioned.push_back(name);
  }
  for (const auto& [name, scan_count] : orch.scanned) {
    if (!orch.copart_names.count(name)) orch.pub.broadcast.push_back(name);
  }
  for (const StepShape& shape : shapes) {
    // Mirrors StepEvaluator::DeltaSplittable(): the fused hash path is the
    // one that may evaluate delta sub-ranges independently.
    if (shape.simple &&
        options.join_algorithm == physical::JoinAlgorithm::kHash) {
      orch.pub.delta_splittable = true;
    }
  }
  return orch;
}

}  // namespace

bool EligibleForDistributed(const RecursiveClique& clique) {
  if (clique.views.size() != 1) return false;
  const RecursiveView& view = clique.views[0];
  if (view.recursive_plans.empty()) return false;
  if (!view.semi_naive_safe) return false;
  for (const plan::PlanPtr& p : view.recursive_plans) {
    if (CollectRecursiveRefs(*p).size() != 1) return false;
  }
  return true;
}

Result<DistOrchestration> AnalyzeOrchestration(
    const RecursiveClique& clique, const DistFixpointOptions& options) {
  if (!EligibleForDistributed(clique)) {
    return Status::ExecutionError(
        "clique is not eligible for distributed evaluation");
  }
  RASQL_ASSIGN_OR_RETURN(Orchestration orch, Analyze(clique, options));
  return std::move(orch.pub);
}

Result<std::map<std::string, Relation>> EvaluateCliqueDistributed(
    const RecursiveClique& clique,
    const std::map<std::string, const Relation*>& tables, Cluster* cluster,
    const DistFixpointOptions& options, FixpointStats* stats) {
  FixpointStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  if (!EligibleForDistributed(clique)) {
    return Status::ExecutionError(
        "clique is not eligible for distributed evaluation");
  }
  const RecursiveView& view = clique.views[0];
  const int P = cluster->config().num_partitions;
  const AggSpec spec = AggSpec::For(view.schema.num_columns(),
                                    view.agg_column, view.aggregate);

  // ---- Compile: analyze every recursive branch and settle the
  // orchestration (partition key, evaluation mode, base distribution). ----
  RASQL_ASSIGN_OR_RETURN(Orchestration orch, Analyze(clique, options));
  const std::vector<StepShape>& shapes = orch.shapes;
  const std::set<std::string>& copart_names = orch.copart_names;
  const std::map<std::string, int>& scanned = orch.scanned;
  const std::vector<int>& key = orch.pub.partition_key;
  const bool decomposed = orch.pub.decomposed;
  // The distributed evaluator is semi-naive by construction (eligibility
  // requires semi_naive_safe); record it so the shared stats report the
  // evaluation mode consistently with the local path.
  stats->used_semi_naive = true;
  stats->used_decomposed = decomposed;
  stats->partition_key = key;

  const Partitioning partitioning{key, P};

  // ---- Distribute base relations per the orchestration. ----
  std::map<std::string, dist::PartitionedRelation> coparted;
  for (const StepShape& shape : shapes) {
    if (shape.copart_table == nullptr) continue;
    const std::string& name = shape.copart_table->table_name();
    if (!copart_names.count(name) || coparted.count(name)) continue;
    auto it = tables.find(name);
    if (it == tables.end()) {
      return Status::ExecutionError("table '" + name + "' not bound");
    }
    // Partitioning the base costs one shuffle of its full size. The rows
    // are placed driver-side above; the stage models the byte movement.
    coparted.emplace(name,
                     dist::Partition(*it->second, shape.copart_keys, P));
    const size_t bytes = it->second->ByteSize();
    StageSpec partition_stage;
    partition_stage.name = "partition-base:" + name;
    partition_stage.kind = StageSpec::Kind::kShuffleMap;
    cluster->RunStage(partition_stage, [&](TaskContext& ctx) {
      ctx.ReportShuffleBytes(std::vector<size_t>(P, bytes / (P * P)));
    });
  }
  for (const auto& [name, scan_count] : scanned) {
    if (copart_names.count(name)) continue;
    auto it = tables.find(name);
    if (it == tables.end()) {
      return Status::ExecutionError("table '" + name + "' not bound");
    }
    if (options.compress_broadcast) {
      // Ship the compact encoding; workers rebuild hash tables locally.
      cluster->Broadcast(dist::EncodeRelation(*it->second).size());
    } else {
      // Spark default: master builds the hash table and ships it.
      common::Timer timer;
      physical::JoinHashTable master_build(*it->second, {0});
      cluster->ChargeDriverCompute(timer.ElapsedSeconds());
      cluster->Broadcast(dist::HashedRelationSize(*it->second));
    }
  }

  auto base_binding = [&](const std::string& name,
                          int partition) -> const Relation* {
    auto cit = coparted.find(name);
    if (cit != coparted.end()) return &cit->second.partition(partition);
    auto it = tables.find(name);
    return it == tables.end() ? nullptr : it->second;
  };

  // ---- Step evaluators (cached hash tables / sort orders). ----
  std::vector<StepEvaluator> steps;
  steps.reserve(view.recursive_plans.size());
  for (size_t i = 0; i < view.recursive_plans.size(); ++i) {
    steps.emplace_back(*view.recursive_plans[i], shapes[i], tables, options,
                       P, cluster->runtime_options().batch_rows);
  }

  // ---- Base case: evaluate on the driver, then scatter by K. ----
  physical::ExecContext base_ctx;
  base_ctx.tables = tables;
  base_ctx.use_codegen = options.use_codegen;
  base_ctx.batch_rows = cluster->runtime_options().batch_rows;
  base_ctx.join_algorithm = options.join_algorithm;
  // A warm start (DESIGN.md §14) replaces the base case with the seed
  // delta over the appended rows; the prior converged state is absorbed
  // into the partitions below, before the seed merge runs against it.
  const WarmStartInput* warm = options.warm_start;
  std::vector<Row> base_rows;
  if (warm == nullptr) {
    for (const plan::PlanPtr& p : view.base_plans) {
      RASQL_ASSIGN_OR_RETURN(Relation rel, physical::Execute(*p, base_ctx));
      ++stats->plan_executions;
      for (Row& row : rel.TakeRows()) base_rows.push_back(std::move(row));
    }
  } else {
    RASQL_ASSIGN_OR_RETURN(base_rows,
                           EvaluateWarmSeed(view, *warm, base_ctx, stats));
    stats->warm_starts = 1;
  }
  base_rows = dist::PartialAggregate(std::move(base_rows), spec);

  dist::SetRdd all(view.schema, spec, partitioning);
  std::vector<std::vector<Row>> delta(P);

  if (warm != nullptr) {
    // Absorb the converged state, co-partitioned on the run's key so it
    // lands in the same slices a cold run would have built it in. Loading
    // state is not a delta: nothing is emitted, so the loop below starts
    // from the seed alone — in every mode, including decomposed (state and
    // seed share the partitioning, and partitions stay independent).
    dist::PartitionedRelation warm_slices =
        dist::Partition(*warm->converged, key, P);
    StageSpec warm_stage;
    warm_stage.name = "warm-absorb";
    warm_stage.kind = StageSpec::Kind::kLocal;
    warm_stage.Claim(&all, verify::AccessMode::kPartitionOwned, "all")
        .Claim(&warm_slices, verify::AccessMode::kReadShared, "warm-state");
    cluster->RunStage(warm_stage, [&](TaskContext& ctx) {
      const int p = ctx.partition();
      all.partition(p)->Absorb(warm_slices.partition(p));
      ctx.ReportCachedState(all.partition(p)->byte_size());
    });
  }

  // Every task closure below may execute concurrently (runtime threads):
  // shared mutable state is limited to partition-owned slots (delta[p],
  // all.partition(p), writes[p], per-partition evaluator caches) plus the
  // StageCounter/StageStatus accumulators above.
  const bool det_reduce = cluster->runtime_options().deterministic_reduce;

  // Seed stages: input splits shuffle the base case to its partitions.
  // Submitted as a pair so the async pipeline can start merging a
  // partition's slice while other seed tasks still run.
  {
    std::vector<std::vector<Row>> splits(P);
    for (size_t i = 0; i < base_rows.size(); ++i) {
      splits[i % P].push_back(std::move(base_rows[i]));
    }
    ShuffleChannel seed_channel(P);
    StageSpec seed_stage;
    seed_stage.name = "seed-base-case";
    seed_stage.kind = StageSpec::Kind::kShuffleMap;
    seed_stage.output_slices = &seed_channel;
    seed_stage.Claim(&splits, kPartitionOwned, "seed-splits");
    StageSpec merge_stage;
    merge_stage.name = "merge-base-case";
    merge_stage.kind = StageSpec::Kind::kShuffleReduce;
    merge_stage.input_slices = &seed_channel;
    merge_stage.Claim(&all, kPartitionOwned, "all")
        .Claim(&delta, kPartitionOwned, "delta");
    cluster->RunStagePair(
        seed_stage,
        [&](TaskContext& ctx) {
          const int p = ctx.partition();
          ShuffleWrite write(P);
          for (Row& row : splits[p]) write.Add(std::move(row), partitioning);
          ctx.WriteShuffle(std::move(write));
        },
        merge_stage, [&](TaskContext& ctx) {
          const int p = ctx.partition();
          std::vector<Row> rows = ctx.ReadShuffle();
          rows = dist::PartialAggregate(std::move(rows), spec);
          all.partition(p)->MergeDelta(rows, &delta[p]);
        });
  }
  for (const auto& d : delta) stats->total_delta_rows += d.size();
  if (warm != nullptr) {
    for (const auto& d : delta) stats->seed_delta_rows += d.size();
  }

  auto deltas_empty = [&]() {
    for (const auto& d : delta) {
      if (!d.empty()) return false;
    }
    return true;
  };

  auto eval_step_for_partition =
      [&](int p, std::vector<Row>* out) -> Status {
    Relation delta_rel(view.schema, std::move(delta[p]));
    delta[p].clear();
    for (StepEvaluator& step : steps) {
      RASQL_ASSIGN_OR_RETURN(std::vector<Row> rows,
                             step.Eval(delta_rel, p, base_binding));
      for (Row& row : rows) out->push_back(std::move(row));
    }
    return Status::OK();
  };

  auto copart_state_bytes = [&](int p) {
    size_t bytes = 0;
    for (const auto& [name, rel] : coparted) {
      bytes += rel.partition(p).ByteSize();
    }
    return bytes;
  };

  if (decomposed) {
    // ---- Decomposed evaluation (Sec. 7.2): each partition runs its own
    // fixpoint with no cross-partition shuffles or synchronization. One
    // modeled stage covers the whole run; its makespan is the slowest
    // partition's total time. This is also the embarrassingly parallel
    // case for the real runtime: partitions never exchange rows.
    StageStatus failure(P);
    StageCounter delta_rows(P, det_reduce);
    std::vector<int> task_iterations(P, 0);
    std::vector<uint8_t> task_hit_limit(P, 0);
    StageSpec decomposed_stage;
    decomposed_stage.name = "decomposed-fixpoint";
    decomposed_stage.kind = StageSpec::Kind::kLocal;
    decomposed_stage.counter = &delta_rows;
    decomposed_stage.status = &failure;
    decomposed_stage.Claim(&all, kPartitionOwned, "all")
        .Claim(&delta, kPartitionOwned, "delta")
        .Claim(&steps, kPartitionOwned, "step-caches")
        .Claim(&coparted, kReadShared, "coparted-base");
    cluster->RunStage(decomposed_stage, [&](TaskContext& ctx) {
      const int p = ctx.partition();
      ctx.ReportCachedState(all.partition(p)->byte_size());
      int iterations = 0;
      while (!delta[p].empty() && !ctx.aborted()) {
        if (iterations >= options.max_iterations) {
          task_hit_limit[p] = 1;
          break;
        }
        ++iterations;
        std::vector<Row> candidates;
        Status s = eval_step_for_partition(p, &candidates);
        if (!s.ok()) {
          ctx.Fail(std::move(s));
          break;
        }
        candidates = dist::PartialAggregate(std::move(candidates), spec);
        all.partition(p)->MergeDelta(candidates, &delta[p]);
        ctx.Count(delta[p].size());
      }
      task_iterations[p] = iterations;
    });
    RASQL_RETURN_IF_ERROR(failure.First());
    for (int p = 0; p < P; ++p) {
      stats->iterations = std::max(stats->iterations, task_iterations[p]);
      stats->hit_iteration_limit |= task_hit_limit[p] != 0;
    }
    stats->total_delta_rows += delta_rows.Total();
  } else if (orch.pub.combine_stages) {
    // ---- Optimized DSN (Alg. 6): one ShuffleMap stage per iteration.
    // Map output of iteration i is merged and re-joined by iteration i+1
    // on the same partition/worker. Two channels ping-pong between
    // iterations: stage i consumes channels[cur] and fills channels[1-cur].
    // Each combined stage both consumes and produces, so the driver must
    // see iteration i's output before submitting i+1 — the pipeline has
    // nothing to overlap here and the stages stay barriered (DESIGN.md §8).
    ShuffleChannel channels[2] = {ShuffleChannel(P), ShuffleChannel(P)};
    int cur = 0;
    {
      // The first combined stage has no incoming shuffle (the seed stages
      // above produced the initial delta); emit iteration 1's map output.
      StageStatus failure(P);
      StageSpec first_stage;
      first_stage.name = "iter-1";
      first_stage.kind = StageSpec::Kind::kShuffleMap;
      first_stage.output_slices = &channels[cur];
      first_stage.status = &failure;
      first_stage.Claim(&all, kReadShared, "all")
          .Claim(&delta, kPartitionOwned, "delta")
          .Claim(&steps, kPartitionOwned, "step-caches")
          .Claim(&coparted, kReadShared, "coparted-base");
      cluster->RunStage(first_stage, [&](TaskContext& ctx) {
        const int p = ctx.partition();
        ctx.ReportCachedState(all.partition(p)->byte_size() +
                              copart_state_bytes(p));
        ShuffleWrite write(P);
        std::vector<Row> candidates;
        Status s = eval_step_for_partition(p, &candidates);
        if (!s.ok()) {
          ctx.Fail(std::move(s));
        } else {
          candidates = dist::PartialAggregate(std::move(candidates), spec);
          for (Row& row : candidates) write.Add(std::move(row), partitioning);
        }
        ctx.WriteShuffle(std::move(write));
      });
      RASQL_RETURN_IF_ERROR(failure.First());
      stats->iterations = 1;
    }
    while (true) {
      if (stats->iterations >= options.max_iterations) {
        stats->hit_iteration_limit = true;
        break;
      }
      // Stop when the previous iteration emitted nothing anywhere.
      if (channels[cur].TotalRows() == 0) break;
      ++stats->iterations;

      const int next = 1 - cur;
      channels[next].Reset();
      StageStatus failure(P);
      StageCounter delta_rows(P, det_reduce);
      StageSpec iter_stage;
      iter_stage.name = "iter-" + std::to_string(stats->iterations);
      iter_stage.kind = StageSpec::Kind::kCombined;
      iter_stage.input_slices = &channels[cur];
      iter_stage.output_slices = &channels[next];
      iter_stage.counter = &delta_rows;
      iter_stage.status = &failure;
      iter_stage.Claim(&all, kPartitionOwned, "all")
          .Claim(&delta, kPartitionOwned, "delta")
          .Claim(&steps, kPartitionOwned, "step-caches")
          .Claim(&coparted, kReadShared, "coparted-base");
      cluster->RunStage(iter_stage, [&](TaskContext& ctx) {
        const int p = ctx.partition();
        ctx.ReportCachedState(all.partition(p)->byte_size() +
                              copart_state_bytes(p));
        std::vector<Row> incoming = ctx.ReadShuffle();
        incoming = dist::PartialAggregate(std::move(incoming), spec);
        all.partition(p)->MergeDelta(incoming, &delta[p]);
        ctx.Count(delta[p].size());
        ShuffleWrite write(P);
        if (!delta[p].empty()) {
          std::vector<Row> candidates;
          Status s = eval_step_for_partition(p, &candidates);
          if (!s.ok()) {
            ctx.Fail(std::move(s));
          } else {
            candidates =
                dist::PartialAggregate(std::move(candidates), spec);
            for (Row& row : candidates) {
              write.Add(std::move(row), partitioning);
            }
          }
        }
        ctx.WriteShuffle(std::move(write));
      });
      RASQL_RETURN_IF_ERROR(failure.First());
      stats->total_delta_rows += delta_rows.Total();
      cur = next;
    }
  } else {
    // ---- Plain DSN (Alg. 4/5): separate Map and Reduce stages per
    // iteration, submitted as a pair — the async-shuffle pipeline's main
    // target. Map task p moves delta[p] out before any reduce task may
    // refill it (reduce p depends on all P map slices), so the pair is
    // safe to overlap. One channel is reused across iterations.
    //
    // With `runtime.morsel_rows > 0` the map stage instead goes through
    // the split RunStage overload (DESIGN.md §10): each partition's delta
    // is frozen driver-side, cut into (step, morsel) sub-tasks that
    // evaluate into partition×sub-task-owned slots, and the per-partition
    // finalize task concatenates the slots in (step, morsel) order — the
    // exact row order of the unsplit evaluation — before aggregating and
    // routing. A giant partition thus becomes several independently
    // stealable tasks inside one stage, and modeled metrics stay
    // split-invariant.
    ShuffleChannel exchange(P);
    const size_t morsel_rows = cluster->runtime_options().morsel_rows;
    bool first_iteration = true;
    while (!deltas_empty()) {
      if (stats->iterations >= options.max_iterations) {
        stats->hit_iteration_limit = true;
        break;
      }
      ++stats->iterations;
      if (!first_iteration) exchange.Reset();
      first_iteration = false;

      StageStatus failure(P);
      StageCounter delta_rows(P, det_reduce);
      StageSpec map_stage;
      map_stage.name = "map-" + std::to_string(stats->iterations);
      map_stage.kind = StageSpec::Kind::kShuffleMap;
      map_stage.output_slices = &exchange;
      map_stage.status = &failure;
      StageSpec reduce_stage;
      reduce_stage.name = "reduce-" + std::to_string(stats->iterations);
      reduce_stage.kind = StageSpec::Kind::kShuffleReduce;
      reduce_stage.input_slices = &exchange;
      reduce_stage.counter = &delta_rows;
      // The pair's shared `delta` hand-off is legal because the exchange
      // channel orders reduce p after every map task; the verifier exempts
      // write/write claims that carry such a slice dependency (RASQL-G008).
      reduce_stage.Claim(&all, kPartitionOwned, "all")
          .Claim(&delta, kPartitionOwned, "delta");
      const dist::StageTask reduce_task = [&](TaskContext& ctx) {
        const int p = ctx.partition();
        ctx.ReportCachedState(all.partition(p)->byte_size());
        std::vector<Row> incoming = ctx.ReadShuffle();
        incoming = dist::PartialAggregate(std::move(incoming), spec);
        all.partition(p)->MergeDelta(incoming, &delta[p]);
        ctx.Count(delta[p].size());
      };

      if (morsel_rows == 0) {
        map_stage.Claim(&delta, kPartitionOwned, "delta")
            .Claim(&steps, kPartitionOwned, "step-caches")
            .Claim(&coparted, kReadShared, "coparted-base");
        cluster->RunStagePair(
            map_stage,
            [&](TaskContext& ctx) {
              const int p = ctx.partition();
              ctx.ReportCachedState(copart_state_bytes(p));
              ShuffleWrite write(P);
              std::vector<Row> candidates;
              Status s = eval_step_for_partition(p, &candidates);
              if (!s.ok()) {
                ctx.Fail(std::move(s));
              } else {
                candidates =
                    dist::PartialAggregate(std::move(candidates), spec);
                for (Row& row : candidates) {
                  write.Add(std::move(row), partitioning);
                }
              }
              ctx.WriteShuffle(std::move(write));
            },
            reduce_stage, reduce_task);
      } else {
        // Freeze the iteration's delta driver-side so sub-task ranges
        // refer to stable storage; reduce refills delta[p] afterwards.
        struct SubTask {
          size_t step;
          storage::RowRange range;
        };
        std::vector<Relation> frozen;
        frozen.reserve(P);
        for (int p = 0; p < P; ++p) {
          frozen.emplace_back(view.schema, std::move(delta[p]));
          delta[p].clear();
        }
        std::vector<std::vector<SubTask>> sub(P);
        std::vector<std::vector<std::vector<Row>>> slots(P);
        std::vector<std::vector<Status>> sub_status(P);
        for (int p = 0; p < P; ++p) {
          if (frozen[p].empty()) continue;
          for (size_t s = 0; s < steps.size(); ++s) {
            if (steps[s].DeltaSplittable()) {
              for (storage::RowRange r :
                   storage::SplitIntoMorsels(frozen[p].size(), morsel_rows)) {
                sub[p].push_back({s, r});
              }
            } else {
              // Not range-decomposable: one whole-delta sub-task.
              sub[p].push_back({s, {0, frozen[p].size()}});
            }
          }
          slots[p].resize(sub[p].size());
          sub_status[p].resize(sub[p].size());
        }
        map_stage.split_tasks = [&sub](int p) {
          return static_cast<int>(sub[p].size());
        };
        // Sub-tasks evaluate frozen deltas into their own (partition,
        // sub-task) slots; the per-partition step caches are shared by a
        // partition's sub-tasks but internally synchronized (once_flag
        // builds), so they count as partition-owned.
        map_stage.Claim(&frozen, kReadShared, "frozen-delta")
            .Claim(&sub, kReadShared, "sub-plan")
            .Claim(&slots, kSplitSlotOwned, "morsel-slots")
            .Claim(&sub_status, kSplitSlotOwned, "morsel-status")
            .Claim(&steps, kPartitionOwned, "step-caches")
            .Claim(&coparted, kReadShared, "coparted-base");
        cluster->RunStage(
            map_stage,
            // Split sub-task: pure compute into its owned slot. It must
            // not touch the TaskContext reporting calls (enforced by
            // RASQL_CHECKs in TaskContext); errors land in its status
            // slot for the finalize task to surface.
            [&](TaskContext& ctx) {
              const int p = ctx.partition();
              const int j = ctx.split_index();
              const SubTask& t = sub[p][j];
              StepEvaluator& step = steps[t.step];
              Result<std::vector<Row>> rows =
                  step.DeltaSplittable()
                      ? step.Eval(frozen[p], t.range, p, base_binding)
                      : step.Eval(frozen[p], p, base_binding);
              if (!rows.ok()) {
                sub_status[p][j] = rows.status();
              } else {
                slots[p][j] = std::move(rows.value());
              }
            },
            // Finalize: the only reporting task of the partition.
            [&](TaskContext& ctx) {
              const int p = ctx.partition();
              ctx.ReportCachedState(copart_state_bytes(p));
              ShuffleWrite write(P);
              Status bad;
              for (const Status& s : sub_status[p]) {
                if (!s.ok()) {
                  bad = s;
                  break;
                }
              }
              if (!bad.ok()) {
                ctx.Fail(std::move(bad));
              } else {
                std::vector<Row> candidates;
                for (std::vector<Row>& slot : slots[p]) {
                  for (Row& row : slot) candidates.push_back(std::move(row));
                }
                candidates =
                    dist::PartialAggregate(std::move(candidates), spec);
                for (Row& row : candidates) {
                  write.Add(std::move(row), partitioning);
                }
              }
              ctx.WriteShuffle(std::move(write));
            });
        cluster->RunStage(reduce_stage, reduce_task);
      }
      RASQL_RETURN_IF_ERROR(failure.First());
      stats->total_delta_rows += delta_rows.Total();
    }
  }

  if (warm != nullptr) {
    stats->iterations_saved =
        std::max(0, warm->prior_iterations - stats->iterations);
  }

  // Canonical (sorted) output, matching the local evaluator: hash-state
  // iteration order depends on insertion history, which a warm start
  // legitimately changes; sorting pins warm results to the cold bytes.
  Relation result = all.Collect();
  result.SortRows();
  std::map<std::string, Relation> out;
  out.emplace(view.name, std::move(result));
  return out;
}

}  // namespace rasql::fixpoint
