#ifndef RASQL_FIXPOINT_FIXPOINT_OPTIONS_H_
#define RASQL_FIXPOINT_FIXPOINT_OPTIONS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "physical/executor.h"
#include "runtime/runtime_options.h"
#include "storage/relation.h"

namespace rasql::fixpoint {

/// Fixpoint evaluation strategy.
enum class FixpointMode {
  /// Semi-naive when safe, naive otherwise (mutual recursion, non-linear
  /// sum/count use — see DESIGN.md §4).
  kAuto,
  /// Naive evaluation (paper Alg. 2): X_{n+1} = γ(base ∪ T(X_n)), state
  /// recomputed and re-aggregated each round. Always correct; slow.
  kNaive,
  /// Semi-naive delta evaluation (paper Alg. 3/5 specialized to one node).
  kSemiNaive,
};

/// Input to a warm-start (incremental) fixpoint run: the converged state of
/// a previous evaluation of the same clique plus the rows appended to base
/// tables since that run. The evaluator absorbs `converged` into its
/// partitioned state without emitting a delta, evaluates every plan that
/// scans a changed table with that table bound to its delta rows (and all
/// recursive refs bound to the converged state) to form the seed delta,
/// then runs the ordinary semi-naive loop. Sound only for queries the lint
/// layer proved PreM-safe or monotone (engine/rasql_context.cc gates this);
/// callers never hand an evaluator a warm handle for an unproven clique.
struct WarmStartInput {
  /// Converged relation of the clique's single view from the prior run.
  const storage::Relation* converged = nullptr;
  /// Rows appended since the prior run, keyed by canonical (lowercase)
  /// table name. Only append deltas — rewrites force a cold run upstream.
  const std::map<std::string, storage::Relation>* deltas = nullptr;
  /// Iterations the prior cold run took; used for the iterations_saved
  /// counter in FixpointStats.
  int prior_iterations = 0;
};

/// Knobs shared verbatim by the local and distributed evaluators. Both
/// option structs inherit from this so each shared field exists exactly
/// once (they had forked and drifted) and the engine copies the whole
/// slice in a single assignment (engine/rasql_context.cc).
struct CommonFixpointOptions {
  /// Safety valve for non-terminating recursions (the paper's
  /// stratified-SSSP on cyclic graphs, Fig. 1 footnote).
  int64_t max_iterations = 1'000'000;
  bool use_codegen = true;
  physical::JoinAlgorithm join_algorithm = physical::JoinAlgorithm::kHash;

  /// Non-null = warm-start this evaluation from a prior converged state
  /// (see WarmStartInput). The pointer is borrowed for the duration of the
  /// call; the engine sets it on its per-execution option copies only.
  const WarmStartInput* warm_start = nullptr;
};

/// Options of the local evaluator.
struct FixpointOptions : CommonFixpointOptions {
  FixpointMode mode = FixpointMode::kAuto;

  /// Number of slices the local evaluator hash-partitions its state into.
  /// Fixed independently of the thread count — the partitioned algorithm
  /// runs identically at every `runtime.num_threads`, which is what makes
  /// results and stats bit-identical across --threads (DESIGN.md §9).
  int local_partitions = 8;

  /// Real-thread execution of the local path: per-partition semi-naive
  /// terms and per-plan naive candidates run on a work-stealing ThreadPool
  /// of `runtime.num_threads` threads. RaSqlContext overwrites this from
  /// EngineConfig::runtime so --threads=N applies to local mode too;
  /// direct EvaluateCliqueLocal callers set it themselves (default: 1).
  runtime::RuntimeOptions runtime;
};

/// Per-run fixpoint statistics, shared by the local and distributed paths
/// so both report the same fields consistently.
struct FixpointStats {
  int iterations = 0;
  /// Total rows that entered a delta across all iterations; non-recursive
  /// cliques account their single evaluation's output rows here.
  size_t total_delta_rows = 0;
  /// Physical plan executions through physical::Execute. Local naive:
  /// base plans once plus every recursive plan per iteration; local
  /// semi-naive: base plans plus one execution per (non-empty delta
  /// partition × semi-naive term) per iteration; distributed: driver-side
  /// base/seed executions (per-partition step evaluation goes through
  /// cached StepEvaluators, not the executor).
  size_t plan_executions = 0;
  bool hit_iteration_limit = false;
  bool used_semi_naive = false;
  /// Distributed decomposed-plan evaluation ran (paper Sec. 7.2).
  bool used_decomposed = false;
  /// Column positions (view schema) the evaluator partitioned state on;
  /// empty when the run kept a single unpartitioned state.
  std::vector<int> partition_key;
  /// Cliques in this run that resumed from a retained converged state
  /// instead of recomputing from scratch.
  int warm_starts = 0;
  /// Rows the warm seed delta contributed (after aggregation/merge into
  /// the partitioned state); 0 on cold runs.
  size_t seed_delta_rows = 0;
  /// prior cold iterations minus warm iterations, clamped at 0 — an honest
  /// measure of the work a warm start skipped.
  int iterations_saved = 0;

  /// Folds another clique's stats into this one — a query evaluates its
  /// cliques in topological order and the engine reports the union.
  void MergeFrom(const FixpointStats& other) {
    iterations = std::max(iterations, other.iterations);
    total_delta_rows += other.total_delta_rows;
    plan_executions += other.plan_executions;
    hit_iteration_limit |= other.hit_iteration_limit;
    used_semi_naive |= other.used_semi_naive;
    used_decomposed |= other.used_decomposed;
    warm_starts += other.warm_starts;
    seed_delta_rows += other.seed_delta_rows;
    iterations_saved += other.iterations_saved;
    if (!other.partition_key.empty()) partition_key = other.partition_key;
  }
};

}  // namespace rasql::fixpoint

#endif  // RASQL_FIXPOINT_FIXPOINT_OPTIONS_H_
