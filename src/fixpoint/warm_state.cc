#include "fixpoint/warm_state.h"

#include <utility>

namespace rasql::fixpoint {

using analysis::RecursiveView;
using common::Result;
using plan::LogicalPlan;
using plan::PlanKind;
using storage::Relation;
using storage::Row;

std::shared_ptr<const CliqueWarmState> WarmStateStore::Lookup(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.state;
}

void WarmStateStore::Put(const std::string& key,
                         std::shared_ptr<const CliqueWarmState> state) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.state = std::move(state);
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return;
  }
  lru_.push_front(key);
  entries_.emplace(key, Slot{std::move(state), lru_.begin()});
  while (entries_.size() > capacity_ && !lru_.empty()) {
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
}

void WarmStateStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
}

size_t WarmStateStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void CollectTableScans(const LogicalPlan& node,
                       std::map<std::string, int>* counts) {
  if (node.kind() == PlanKind::kTableScan) {
    ++(*counts)[static_cast<const plan::TableScanNode&>(node).table_name()];
  }
  for (const plan::PlanPtr& child : node.children()) {
    CollectTableScans(*child, counts);
  }
}

std::map<std::string, int> CollectViewTableScans(const RecursiveView& view) {
  std::map<std::string, int> counts;
  for (const plan::PlanPtr& p : view.base_plans) {
    CollectTableScans(*p, &counts);
  }
  for (const plan::PlanPtr& p : view.recursive_plans) {
    CollectTableScans(*p, &counts);
  }
  return counts;
}

bool WarmSeedCompatible(const RecursiveView& view,
                        const std::set<std::string>& changed) {
  const bool accumulates =
      view.aggregate == expr::AggregateFunction::kSum ||
      view.aggregate == expr::AggregateFunction::kCount;
  if (accumulates && changed.size() > 1) return false;
  auto plan_ok = [&](const LogicalPlan& p) {
    std::map<std::string, int> counts;
    CollectTableScans(p, &counts);
    for (const std::string& t : changed) {
      auto it = counts.find(t);
      if (it != counts.end() && it->second > 1) return false;
    }
    return true;
  };
  for (const plan::PlanPtr& p : view.base_plans) {
    if (!plan_ok(*p)) return false;
  }
  for (const plan::PlanPtr& p : view.recursive_plans) {
    if (!plan_ok(*p)) return false;
  }
  return true;
}

Result<std::vector<Row>> EvaluateWarmSeed(const RecursiveView& view,
                                          const WarmStartInput& warm,
                                          const physical::ExecContext& base_ctx,
                                          FixpointStats* stats) {
  std::vector<Row> seed;
  const Relation* converged = warm.converged;
  auto seed_plan = [&](const LogicalPlan& p) -> common::Status {
    std::map<std::string, int> counts;
    CollectTableScans(p, &counts);
    // `deltas` is an ordered map, so changed tables are visited in a fixed
    // (lexicographic) order regardless of how the engine discovered them.
    for (const auto& [table, delta] : *warm.deltas) {
      if (counts.find(table) == counts.end()) continue;
      if (delta.empty()) continue;
      physical::ExecContext ctx = base_ctx;
      ctx.tables[table] = &delta;
      ctx.recursive_resolver =
          [converged](const plan::RecursiveRefNode&) -> const Relation* {
        return converged;
      };
      RASQL_ASSIGN_OR_RETURN(Relation rel, physical::Execute(p, ctx));
      ++stats->plan_executions;
      for (Row& row : rel.TakeRows()) seed.push_back(std::move(row));
    }
    return common::Status::OK();
  };
  for (const plan::PlanPtr& p : view.base_plans) {
    RASQL_RETURN_IF_ERROR(seed_plan(*p));
  }
  for (const plan::PlanPtr& p : view.recursive_plans) {
    RASQL_RETURN_IF_ERROR(seed_plan(*p));
  }
  return seed;
}

}  // namespace rasql::fixpoint
