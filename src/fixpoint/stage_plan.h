#ifndef RASQL_FIXPOINT_STAGE_PLAN_H_
#define RASQL_FIXPOINT_STAGE_PLAN_H_

#include "analysis/analyzed_query.h"
#include "common/status.h"
#include "fixpoint/distributed_fixpoint.h"
#include "fixpoint/fixpoint_options.h"
#include "verify/stage_graph.h"

namespace rasql::fixpoint {

/// Offline stage planners behind `EXPLAIN STAGES` (DESIGN.md §11): they
/// build the declared verify::StageGraph an evaluation WOULD submit —
/// prologue, seed, and the iteration template unrolled far enough to
/// exercise every channel-lifecycle transition (publish, consume,
/// Reset-then-republish) — without executing anything. Both planners run
/// the same orchestration analysis as the evaluators (AnalyzeOrchestration
/// / ResolveLocalMode), so the rendered template cannot drift from the
/// stages a real run submits.

/// Plans the distributed evaluation of `clique` (must satisfy
/// EligibleForDistributed) on `num_partitions` partitions: co-partitioning
/// prologue, the seed map/merge pair, then the iteration body of whichever
/// mode the orchestration settles on — decomposed local fixpoint, combined
/// reduce+map stages ping-ponging two channels, or plain DSN map/reduce
/// pairs (split into a morsel DAG when `runtime.morsel_rows > 0` and the
/// delta is splittable).
common::Result<verify::StageGraph> PlanDistributedStages(
    const analysis::RecursiveClique& clique,
    const DistFixpointOptions& options,
    const runtime::RuntimeOptions& runtime, int num_partitions);

/// Plans the local evaluation of `clique`: the thread-pool phases of the
/// mode ResolveLocalMode picks (semi-naive seed/map/merge/reduce, naive
/// branch/canonicalize, or the one-shot non-recursive evaluation) as
/// kLocal stages with their concurrency claims. EvaluateCliqueLocal
/// verifies this graph before running when stage verification is enabled.
common::Result<verify::StageGraph> PlanLocalStages(
    const analysis::RecursiveClique& clique, const FixpointOptions& options);

}  // namespace rasql::fixpoint

#endif  // RASQL_FIXPOINT_STAGE_PLAN_H_
