#ifndef RASQL_FIXPOINT_WARM_STATE_H_
#define RASQL_FIXPOINT_WARM_STATE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "analysis/analyzed_query.h"
#include "common/status.h"
#include "fixpoint/fixpoint_options.h"
#include "physical/executor.h"
#include "storage/relation.h"

namespace rasql::fixpoint {

/// Warm-start fixpoint maintenance (DESIGN.md §14): the engine retains each
/// converged recursive clique's state and, when every write since that run
/// was an append (`INSERT`), re-enters the semi-naive loop with the new
/// tuples as the seed delta instead of recomputing from scratch. This
/// header holds the retained-state store plus the helpers shared by the
/// engine's eligibility gate and both evaluators' seed paths.

/// Where one base table stood when a clique's state was captured.
struct TableMark {
  /// TableVersion at capture time — any write bumps it.
  uint64_t version = 0;
  /// Rewrite counter at capture time — bumped only by RegisterTable /
  /// DropTable (CREATE VIEW / CREATE TABLE / DROP), never by INSERT. A
  /// version mismatch with an equal rewrite count means every intervening
  /// write was an append, so rows `[rows, current_size)` are the delta.
  uint64_t rewrites = 0;
  /// Row count at capture time.
  size_t rows = 0;
};

/// One clique's retained converged state.
struct CliqueWarmState {
  /// The converged relation of the clique's single view, in canonical
  /// (sorted) order — the exact bytes a cold run returns.
  storage::Relation converged;
  /// Marks of every base table the clique's plans scan.
  std::map<std::string, TableMark> marks;
  /// Iterations of the original cold run, for the iterations_saved stat.
  int cold_iterations = 0;
};

/// Thread-safe LRU store of retained clique states, keyed on the
/// normalized plan rendering plus a clique ordinal — the same plan identity
/// the server's ResultCache keys on, minus the version vector (versions
/// live in the marks so a lookup can distinguish "fresh", "append-only
/// stale" and "rewritten"). Values are shared_ptr-to-const: a warm run
/// keeps its snapshot alive while concurrent queries replace the entry.
class WarmStateStore {
 public:
  explicit WarmStateStore(size_t capacity = 32) : capacity_(capacity) {}

  std::shared_ptr<const CliqueWarmState> Lookup(const std::string& key);
  void Put(const std::string& key,
           std::shared_ptr<const CliqueWarmState> state);
  void Clear();
  size_t size() const;

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  /// key -> (state, position in lru_), most-recent at the front of lru_.
  struct Slot {
    std::shared_ptr<const CliqueWarmState> state;
    std::list<std::string>::iterator lru_pos;
  };
  std::map<std::string, Slot> entries_;
  std::list<std::string> lru_;
};

/// Counts how many times each table is scanned under `node`. Names are the
/// canonical (lowercase) names the analyzer bound.
void CollectTableScans(const plan::LogicalPlan& node,
                       std::map<std::string, int>* counts);

/// Union of CollectTableScans over every base and recursive plan of `view`.
std::map<std::string, int> CollectViewTableScans(
    const analysis::RecursiveView& view);

/// True when `view`'s plan structure admits an exact warm seed against the
/// given set of changed (append-only) tables:
///   - every plan scans each changed table at most once — the seed binds a
///     changed table to its delta by name, so a plan scanning it twice
///     would only see (new, new) tuple pairs and silently miss (new, old);
///   - for the accumulating aggregates (sum/count) at most one table
///     changed, so no new derivation is seeded twice (for the idempotent
///     min/max/set heads double-seeding is harmless, cross-changed-table
///     derivations are covered by evaluating each changed table against
///     the full contents of the others).
/// The aggregate-class gate itself (PreM min/max / monotone count / plain
/// monotone RA only, no float sums) is the engine's job — this function
/// only checks plan structure.
bool WarmSeedCompatible(const analysis::RecursiveView& view,
                        const std::set<std::string>& changed);

/// Evaluates the warm seed delta on the driver: for every changed table t
/// and every plan (base or recursive) that scans t, runs the plan with t
/// bound to its delta rows, every other table bound to its current (full)
/// contents, and every recursive reference bound to the converged state.
/// The concatenation — plans in declaration order, changed tables in
/// lexicographic order within a plan — is deterministic, so warm results
/// stay bit-identical across thread counts like everything downstream.
common::Result<std::vector<storage::Row>> EvaluateWarmSeed(
    const analysis::RecursiveView& view, const WarmStartInput& warm,
    const physical::ExecContext& base_ctx, FixpointStats* stats);

}  // namespace rasql::fixpoint

#endif  // RASQL_FIXPOINT_WARM_STATE_H_
