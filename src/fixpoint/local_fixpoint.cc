#include "fixpoint/local_fixpoint.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/check.h"
#include "dist/aggregates.h"
#include "dist/partition.h"
#include "dist/set_rdd.h"
#include "fixpoint/stage_plan.h"
#include "fixpoint/warm_state.h"
#include "lint/diagnostic.h"
#include "physical/pipeline.h"
#include "runtime/stage_accumulators.h"
#include "runtime/thread_pool.h"
#include "storage/row_range.h"
#include "verify/verifier.h"

namespace rasql::fixpoint {

using analysis::RecursiveClique;
using analysis::RecursiveView;
using common::Result;
using common::Status;
using dist::AggSpec;
using dist::GatherShuffle;
using dist::Partitioning;
using dist::ShuffleWrite;
using physical::ExecContext;
using plan::LogicalPlan;
using plan::PlanKind;
using plan::RecursiveRefNode;
using runtime::StageStatus;
using runtime::ThreadPool;
using storage::Relation;
using storage::Row;

std::vector<const RecursiveRefNode*> CollectRecursiveRefs(
    const LogicalPlan& node) {
  std::vector<const RecursiveRefNode*> out;
  if (node.kind() == PlanKind::kRecursiveRef) {
    out.push_back(static_cast<const RecursiveRefNode*>(&node));
  }
  for (const plan::PlanPtr& child : node.children()) {
    std::vector<const RecursiveRefNode*> sub = CollectRecursiveRefs(*child);
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

namespace {

AggSpec SpecFor(const RecursiveView& view) {
  return AggSpec::For(view.schema.num_columns(), view.agg_column,
                      view.aggregate);
}

/// Canonical aggregated + sorted form for state comparison.
Relation Canonicalize(const Relation& rel, const AggSpec& spec) {
  Relation out(rel.schema(), dist::PartialAggregate(rel, spec));
  out.SortRows();
  return out;
}

/// State partition key: the group-by columns under an aggregate (so every
/// contribution to a key meets its accumulator in one partition), every
/// column under set semantics.
std::vector<int> StateKey(const RecursiveView& view, const AggSpec& spec) {
  if (spec.has_aggregate()) return spec.key_columns;
  std::vector<int> key(view.schema.num_columns());
  for (size_t i = 0; i < key.size(); ++i) key[i] = static_cast<int>(i);
  return key;
}

ExecContext BaseContext(const std::map<std::string, const Relation*>& tables,
                        const FixpointOptions& options) {
  ExecContext ctx;
  ctx.tables = tables;
  ctx.use_codegen = options.use_codegen;
  ctx.batch_rows = options.runtime.batch_rows;
  ctx.join_algorithm = options.join_algorithm;
  return ctx;
}

/// One plan evaluation, morsel-splittable when it compiles to a fused
/// pipeline (DESIGN.md §10). `make_context` binds the unit's recursive
/// references; it is invoked at bind time (pipeline) or run time
/// (interpreted fallback), so the relations it resolves must outlive the
/// phase. After RunMorselUnits, `slots[m]` holds morsel m's output rows;
/// concatenating the slots in order reproduces the whole-plan evaluation.
struct MorselUnit {
  const LogicalPlan* plan = nullptr;
  std::function<ExecContext()> make_context;
  std::optional<physical::BoundPipeline> pipeline;
  std::vector<storage::RowRange> morsels;
  std::vector<std::vector<Row>> slots;
};

/// Evaluates a batch of units on the pool in two flat phases (ParallelFor
/// must not nest, so morsels are flattened into one task list rather than
/// scheduled from inside a per-unit task):
///   A. bind — compile + bind each unit's fused pipeline and split its
///      driver into `options.runtime.morsel_rows`-sized RowRanges;
///   B. run — every (unit, morsel) task evaluates independently into its
///      own slot.
/// Units that don't compile (pipeline breakers, probe steps under
/// sort-merge) run as a single interpreted whole-plan task — their output
/// is identical, just unsplit. The morsel decomposition depends only on
/// driver sizes, so slots (and any ordered merge of them) are bit-identical
/// for every thread count and morsel size.
Status RunMorselUnits(std::vector<MorselUnit>* units,
                      const FixpointOptions& options, ThreadPool* pool) {
  const size_t morsel_rows = options.runtime.morsel_rows;
  const int num_units = static_cast<int>(units->size());

  // Phase A: bind. Pipelines are used regardless of use_codegen — the
  // bound evaluators honor the flag, so rows and order match the
  // interpreted oracle either way (executor_test pins this).
  StageStatus bind_failure(std::max(num_units, 1));
  pool->ParallelFor(num_units, [&](int u) {
    MorselUnit& unit = (*units)[u];
    std::optional<physical::PipelineProgram> program =
        physical::PipelineProgram::Compile(*unit.plan);
    if (program.has_value() &&
        (!program->has_probe_steps() ||
         options.join_algorithm == physical::JoinAlgorithm::kHash)) {
      common::Result<physical::BoundPipeline> bound =
          program->Bind(unit.make_context());
      if (!bound.ok()) {
        bind_failure.Fail(u, bound.status());
        return;
      }
      unit.pipeline = std::move(*bound);
      unit.morsels = storage::SplitIntoMorsels(unit.pipeline->driver_rows(),
                                               morsel_rows);
    } else {
      unit.morsels = {storage::RowRange{}};  // one interpreted task
    }
  });
  RASQL_RETURN_IF_ERROR(bind_failure.First());

  // Phase B: flattened (unit, morsel) tasks.
  size_t total = 0;
  for (MorselUnit& unit : *units) {
    unit.slots.resize(unit.morsels.size());
    total += unit.morsels.size();
  }
  std::vector<std::pair<int, int>> task_of;
  task_of.reserve(total);
  for (int u = 0; u < num_units; ++u) {
    for (size_t m = 0; m < (*units)[u].morsels.size(); ++m) {
      task_of.emplace_back(u, static_cast<int>(m));
    }
  }
  StageStatus failure(std::max<int>(static_cast<int>(total), 1));
  pool->ParallelFor(static_cast<int>(total), [&](int i) {
    if (failure.aborted()) return;
    const auto [u, m] = task_of[i];
    MorselUnit& unit = (*units)[u];
    if (unit.pipeline.has_value()) {
      Status s = unit.pipeline->Run(unit.morsels[m], &unit.slots[m]);
      if (!s.ok()) failure.Fail(i, std::move(s));
      return;
    }
    common::Result<Relation> rel =
        physical::Execute(*unit.plan, unit.make_context());
    if (!rel.ok()) {
      failure.Fail(i, rel.status());
      return;
    }
    unit.slots[m] = rel->TakeRows();
  });
  return failure.First();
}

/// Semi-naive evaluation of a single-view clique (paper Alg. 3 extended
/// with the Alg. 5 aggregate delta rules), hash-partitioned into
/// `options.local_partitions` SetRdd slices and evaluated per partition on
/// the thread pool. The partition count is fixed independently of the
/// thread count and every cross-partition merge happens in ascending
/// partition order, so results and stats are bit-identical at any
/// --threads (DESIGN.md §9).
Result<std::map<std::string, Relation>> EvaluateSemiNaive(
    const RecursiveView& view,
    const std::map<std::string, const Relation*>& tables,
    const FixpointOptions& options, FixpointStats* stats, ThreadPool* pool) {
  const AggSpec spec = SpecFor(view);
  const int P = std::max(1, options.local_partitions);
  const Partitioning partitioning{StateKey(view, spec), P};
  stats->partition_key = partitioning.key_columns;
  dist::SetRdd state(view.schema, spec, partitioning);

  const ExecContext base_ctx = BaseContext(tables, options);

  // Base case: evaluate on the driver, pre-aggregate, scatter each row to
  // its state partition, merge per partition to form the initial delta. A
  // warm start (DESIGN.md §14) instead absorbs the prior converged state
  // into the partitions without emitting a delta, and seeds the loop with
  // the plans' output over the appended base rows — MergeDelta against the
  // absorbed state then keeps exactly the rows that are new or improving.
  const WarmStartInput* warm = options.warm_start;
  std::vector<Row> base_rows;
  if (warm == nullptr) {
    for (const plan::PlanPtr& base : view.base_plans) {
      RASQL_ASSIGN_OR_RETURN(Relation rel,
                             physical::Execute(*base, base_ctx));
      ++stats->plan_executions;
      for (Row& row : rel.TakeRows()) base_rows.push_back(std::move(row));
    }
  } else {
    {
      ShuffleWrite absorb(P);
      warm->converged->ForEachRow(
          [&](const Row& row) { absorb.Add(row, partitioning); });
      pool->ParallelFor(P, [&](int p) {
        state.partition(p)->Absorb(absorb.slice_per_dest[p]);
      });
    }
    RASQL_ASSIGN_OR_RETURN(
        base_rows, EvaluateWarmSeed(view, *warm, base_ctx, stats));
    stats->warm_starts = 1;
  }
  base_rows = dist::PartialAggregate(std::move(base_rows), spec);

  std::vector<std::vector<Row>> delta(P);
  {
    ShuffleWrite scatter(P);
    for (Row& row : base_rows) scatter.Add(std::move(row), partitioning);
    pool->ParallelFor(P, [&](int p) {
      state.partition(p)->MergeDelta(scatter.slice_per_dest[p], &delta[p]);
    });
  }
  for (const auto& d : delta) stats->total_delta_rows += d.size();
  if (warm != nullptr) {
    for (const auto& d : delta) stats->seed_delta_rows += d.size();
  }

  // Does any recursive plan reference the view more than once? If so the
  // non-delta occurrences must see the `all` state, which we materialize
  // per iteration.
  bool needs_all = false;
  std::vector<int> refs_per_plan;
  for (const plan::PlanPtr& p : view.recursive_plans) {
    const int n = static_cast<int>(CollectRecursiveRefs(*p).size());
    refs_per_plan.push_back(n);
    if (n > 1) needs_all = true;
  }

  // One semi-naive term per (plan, recursive-ref ordinal): that reference
  // is bound to the delta, the others to the current `all`. Binding the
  // delta ref to one partition's slice at a time is an exact split of the
  // term — the term is linear in that reference.
  struct Term {
    const LogicalPlan* plan;
    int ordinal;
  };
  std::vector<Term> terms;
  for (size_t pi = 0; pi < view.recursive_plans.size(); ++pi) {
    for (int t = 0; t < refs_per_plan[pi]; ++t) {
      terms.push_back({view.recursive_plans[pi].get(), t});
    }
  }

  auto deltas_empty = [&]() {
    for (const auto& d : delta) {
      if (!d.empty()) return false;
    }
    return true;
  };

  while (!deltas_empty()) {
    if (stats->iterations >= options.max_iterations) {
      stats->hit_iteration_limit = true;
      break;
    }
    ++stats->iterations;

    // Freeze the iteration's inputs: the per-partition delta slices and
    // (for multi-ref plans) the materialized `all` state. Collect() walks
    // partitions in ascending order, so the materialization is
    // deterministic; like the seed path it already includes this
    // iteration's delta, which is what makes the δ×δ pairs of non-linear
    // plans visited exactly once across the two terms — safe only for
    // idempotent aggregates, which is what semi_naive_safe guarantees.
    std::vector<Relation> delta_rel(P);
    for (int p = 0; p < P; ++p) {
      delta_rel[p] = Relation(view.schema, std::move(delta[p]));
      delta[p] = std::vector<Row>();
    }
    Relation all_rel;
    if (needs_all) all_rel = state.Collect();

    // Map phase: one morsel unit per (non-empty partition, semi-naive
    // term), with read-only sharing of `all_rel` and the base tables.
    // RunMorselUnits binds each unit's fused pipeline and evaluates its
    // driver morsels as independent tasks, so a skewed partition's work
    // spreads across threads instead of serializing the iteration.
    std::vector<ShuffleWrite> writes(P, ShuffleWrite(P));
    std::vector<MorselUnit> units;
    std::vector<size_t> unit_begin(P + 1, 0);
    for (int p = 0; p < P; ++p) {
      unit_begin[p] = units.size();
      if (delta_rel[p].empty()) continue;
      for (const Term& term : terms) {
        MorselUnit unit;
        unit.plan = term.plan;
        unit.make_context = [&base_ctx, &delta_rel_p = delta_rel[p],
                             &all_rel, ordinal = term.ordinal]() {
          ExecContext ctx = base_ctx;
          ctx.recursive_resolver =
              [&delta_rel_p, &all_rel,
               ordinal](const RecursiveRefNode& ref) -> const Relation* {
            return ref.ordinal() == ordinal ? &delta_rel_p : &all_rel;
          };
          return ctx;
        };
        units.push_back(std::move(unit));
      }
    }
    unit_begin[P] = units.size();
    RASQL_RETURN_IF_ERROR(RunMorselUnits(&units, options, pool));
    stats->plan_executions += units.size();

    // Merge phase: partition p routes its units' slots in (term, morsel)
    // order — exactly the order the unsplit evaluation produced rows, so
    // ShuffleWrite contents (and everything downstream) are bit-identical
    // at any morsel size.
    pool->ParallelFor(P, [&](int p) {
      for (size_t u = unit_begin[p]; u < unit_begin[p + 1]; ++u) {
        for (std::vector<Row>& slot : units[u].slots) {
          for (Row& row : slot) {
            writes[p].Add(std::move(row), partitioning);
          }
        }
      }
    });

    // Reduce phase: partition p gathers the slices addressed to it in
    // ascending producer order, pre-aggregates (one candidate per key, so
    // delta row counts and float accumulation order don't depend on how
    // work was split), and merges into its own state slice.
    pool->ParallelFor(P, [&](int p) {
      std::vector<Row> candidates = GatherShuffle(writes, p);
      candidates = dist::PartialAggregate(std::move(candidates), spec);
      state.partition(p)->MergeDelta(candidates, &delta[p]);
    });
    for (const auto& d : delta) stats->total_delta_rows += d.size();
  }

  if (warm != nullptr) {
    stats->iterations_saved =
        std::max(0, warm->prior_iterations - stats->iterations);
  }

  // Canonical (sorted) output: hash-state iteration order depends on
  // insertion history, which a warm start legitimately changes; sorting
  // here is what makes warm results bit-identical to cold ones.
  Relation result = state.Collect();
  result.SortRows();
  std::map<std::string, Relation> out;
  out.emplace(view.name, std::move(result));
  stats->used_semi_naive = true;
  return out;
}

/// Naive evaluation of a (possibly mutual-recursive) clique:
/// X_{n+1}[v] = γ_v(base_v ∪ T_branch(X_n)) until X stabilizes. The base
/// branches contain no recursive reference, so their result is
/// loop-invariant: it is evaluated once up front and the materialized rows
/// are reused every round (re-executing them per iteration was a silent
/// asymptotic regression vs. paper Alg. 2, which only recomputes T(X_n)).
/// Each iteration evaluates all recursive branches in parallel against the
/// frozen X_n, then canonicalizes per view; candidate slots are assembled
/// in fixed branch order so the result is thread-count-independent.
Result<std::map<std::string, Relation>> EvaluateNaive(
    const RecursiveClique& clique,
    const std::map<std::string, const Relation*>& tables,
    const FixpointOptions& options, FixpointStats* stats, ThreadPool* pool) {
  std::map<std::string, Relation> state;
  std::map<std::string, AggSpec> specs;
  for (const RecursiveView& view : clique.views) {
    state.emplace(view.name, Relation(view.schema));
    specs.emplace(view.name, SpecFor(view));
  }

  const ExecContext base_ctx = BaseContext(tables, options);

  // Loop-invariant base case, evaluated once.
  std::vector<std::vector<Row>> base_rows(clique.views.size());
  for (size_t vi = 0; vi < clique.views.size(); ++vi) {
    for (const plan::PlanPtr& p : clique.views[vi].base_plans) {
      RASQL_ASSIGN_OR_RETURN(Relation rel, physical::Execute(*p, base_ctx));
      ++stats->plan_executions;
      for (Row& row : rel.TakeRows()) {
        base_rows[vi].push_back(std::move(row));
      }
    }
  }

  // One task per recursive branch, across all views in the clique.
  struct Task {
    size_t view_index;
    const LogicalPlan* plan;
  };
  std::vector<Task> tasks;
  for (size_t vi = 0; vi < clique.views.size(); ++vi) {
    for (const plan::PlanPtr& p : clique.views[vi].recursive_plans) {
      tasks.push_back({vi, p.get()});
    }
  }
  const int T = static_cast<int>(tasks.size());

  while (true) {
    if (stats->iterations >= options.max_iterations) {
      stats->hit_iteration_limit = true;
      break;
    }
    ++stats->iterations;

    // All branches read the same frozen X_n; each unit writes only its
    // slots. Branches whose driver is large split into morsels, so one
    // heavy branch no longer pins the iteration to a single thread.
    auto make_naive_context = [&base_ctx, &state]() {
      ExecContext ctx = base_ctx;
      ctx.recursive_resolver =
          [&state](const RecursiveRefNode& ref) -> const Relation* {
        auto it = state.find(ref.view_name());
        return it == state.end() ? nullptr : &it->second;
      };
      return ctx;
    };
    std::vector<MorselUnit> units(tasks.size());
    for (int t = 0; t < T; ++t) {
      units[t].plan = tasks[t].plan;
      units[t].make_context = make_naive_context;
    }
    RASQL_RETURN_IF_ERROR(RunMorselUnits(&units, options, pool));
    stats->plan_executions += tasks.size();

    // Per view: base rows + branch slots in declaration order (morsels in
    // order within a branch), then the canonical aggregated+sorted form —
    // independent views in parallel.
    std::vector<Relation> next(clique.views.size());
    pool->ParallelFor(static_cast<int>(clique.views.size()), [&](int vi) {
      std::vector<Row> candidates = base_rows[vi];
      for (size_t t = 0; t < tasks.size(); ++t) {
        if (tasks[t].view_index != static_cast<size_t>(vi)) continue;
        for (std::vector<Row>& slot : units[t].slots) {
          for (Row& row : slot) candidates.push_back(std::move(row));
        }
      }
      Relation rel(clique.views[vi].schema, candidates);
      next[vi] = Canonicalize(rel, specs.at(clique.views[vi].name));
    });

    bool changed = false;
    for (size_t vi = 0; vi < clique.views.size(); ++vi) {
      const std::string& name = clique.views[vi].name;
      if (!storage::SameBag(next[vi], state.at(name))) changed = true;
      stats->total_delta_rows += next[vi].size();
      state.at(name) = std::move(next[vi]);
    }
    if (!changed) break;
  }
  return state;
}

}  // namespace

Result<FixpointMode> ResolveLocalMode(const RecursiveClique& clique,
                                      const FixpointOptions& options) {
  const bool semi_naive_eligible =
      clique.views.size() == 1 && clique.views[0].semi_naive_safe;
  switch (options.mode) {
    case FixpointMode::kAuto:
      return semi_naive_eligible ? FixpointMode::kSemiNaive
                                 : FixpointMode::kNaive;
    case FixpointMode::kSemiNaive:
      if (!semi_naive_eligible) {
        return Status::ExecutionError(
            "semi-naive evaluation requested but the clique containing '" +
            clique.views[0].name +
            "' requires naive evaluation (mutual recursion or non-linear "
            "aggregate use)");
      }
      return FixpointMode::kSemiNaive;
    case FixpointMode::kNaive:
      return FixpointMode::kNaive;
  }
  return Status::Internal("unknown fixpoint mode");
}

Result<std::map<std::string, Relation>> EvaluateCliqueLocal(
    const RecursiveClique& clique,
    const std::map<std::string, const Relation*>& tables,
    const FixpointOptions& options, FixpointStats* stats) {
  FixpointStats local_stats;
  if (stats == nullptr) stats = &local_stats;

  // Contract check first (DESIGN.md §11): build the declared stage graph
  // of the phases this run will submit and verify it before any task runs
  // — the local counterpart of the Cluster's live submission hook.
  if (options.runtime.VerifyStagesEnabled()) {
    RASQL_ASSIGN_OR_RETURN(verify::StageGraph graph,
                           PlanLocalStages(clique, options));
    lint::DiagnosticEngine diag;
    verify::VerifyStageGraph(graph, &diag);
    if (diag.HasErrors()) {
      return Status::ExecutionError(
          "local stage-graph verification failed:\n" + diag.ToString());
    }
  }

  // Run on the externally-owned shared pool when one is configured (the
  // query server's partitioned compute slots, DESIGN.md §12); otherwise
  // own a per-evaluation pool as before.
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* pool_ptr = options.runtime.shared_pool;
  if (pool_ptr == nullptr) {
    owned_pool =
        std::make_unique<ThreadPool>(options.runtime.ResolvedThreads());
    pool_ptr = owned_pool.get();
  }
  ThreadPool& pool = *pool_ptr;

  // Non-recursive clique: single evaluation of the base plans, views in
  // parallel (they are independent — each task owns its slot).
  if (!clique.IsRecursive()) {
    const ExecContext ctx = BaseContext(tables, options);
    const int V = static_cast<int>(clique.views.size());
    std::vector<Relation> results(V);
    StageStatus failure(std::max(V, 1));
    pool.ParallelFor(V, [&](int vi) {
      const RecursiveView& view = clique.views[vi];
      std::vector<Row> rows;
      for (const plan::PlanPtr& p : view.base_plans) {
        Result<Relation> rel = physical::Execute(*p, ctx);
        if (!rel.ok()) {
          failure.Fail(vi, rel.status());
          return;
        }
        for (Row& row : rel->TakeRows()) rows.push_back(std::move(row));
      }
      Relation rel(view.schema, rows);
      // Multi-branch non-recursive views still union with set/aggregate
      // semantics per the head declaration.
      results[vi] = Canonicalize(rel, SpecFor(view));
    });
    RASQL_RETURN_IF_ERROR(failure.First());
    std::map<std::string, Relation> out;
    for (int vi = 0; vi < V; ++vi) {
      stats->plan_executions += clique.views[vi].base_plans.size();
      stats->total_delta_rows += results[vi].size();
      out.emplace(clique.views[vi].name, std::move(results[vi]));
    }
    stats->iterations = 1;
    return out;
  }

  RASQL_ASSIGN_OR_RETURN(const FixpointMode mode,
                         ResolveLocalMode(clique, options));

  if (mode == FixpointMode::kSemiNaive) {
    return EvaluateSemiNaive(clique.views[0], tables, options, stats, &pool);
  }
  return EvaluateNaive(clique, tables, options, stats, &pool);
}

}  // namespace rasql::fixpoint
