#include "fixpoint/local_fixpoint.h"

#include "common/check.h"
#include "dist/aggregates.h"
#include "dist/set_rdd.h"

namespace rasql::fixpoint {

using analysis::RecursiveClique;
using analysis::RecursiveView;
using common::Result;
using common::Status;
using dist::AggSpec;
using physical::ExecContext;
using plan::LogicalPlan;
using plan::PlanKind;
using plan::RecursiveRefNode;
using storage::Relation;
using storage::Row;

std::vector<const RecursiveRefNode*> CollectRecursiveRefs(
    const LogicalPlan& node) {
  std::vector<const RecursiveRefNode*> out;
  if (node.kind() == PlanKind::kRecursiveRef) {
    out.push_back(static_cast<const RecursiveRefNode*>(&node));
  }
  for (const plan::PlanPtr& child : node.children()) {
    std::vector<const RecursiveRefNode*> sub = CollectRecursiveRefs(*child);
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

namespace {

AggSpec SpecFor(const RecursiveView& view) {
  return AggSpec::For(view.schema.num_columns(), view.agg_column,
                      view.aggregate);
}

/// Canonical aggregated + sorted form for state comparison.
Relation Canonicalize(Relation rel, const AggSpec& spec) {
  std::vector<Row> rows =
      dist::PartialAggregate(std::move(rel.mutable_rows()), spec);
  Relation out(rel.schema(), std::move(rows));
  out.SortRows();
  return out;
}

/// Semi-naive evaluation of a single-view clique (paper Alg. 3 extended
/// with the Alg. 5 aggregate delta rules).
Result<std::map<std::string, Relation>> EvaluateSemiNaive(
    const RecursiveView& view,
    const std::map<std::string, const Relation*>& tables,
    const FixpointOptions& options, FixpointStats* stats) {
  const AggSpec spec = SpecFor(view);
  dist::SetRddPartition state(view.schema, spec);

  ExecContext base_ctx;
  base_ctx.tables = tables;
  base_ctx.use_codegen = options.use_codegen;
  base_ctx.join_algorithm = options.join_algorithm;

  // Base case: evaluate, pre-aggregate, merge to form the initial delta.
  std::vector<Row> candidates;
  for (const plan::PlanPtr& base : view.base_plans) {
    RASQL_ASSIGN_OR_RETURN(Relation rel, physical::Execute(*base, base_ctx));
    for (Row& row : rel.mutable_rows()) candidates.push_back(std::move(row));
  }
  candidates = dist::PartialAggregate(std::move(candidates), spec);
  std::vector<Row> delta;
  state.MergeDelta(candidates, &delta);
  stats->total_delta_rows += delta.size();

  // Does any recursive plan reference the view more than once? If so the
  // non-delta occurrences must see the `all` state, which we materialize
  // per iteration.
  bool needs_all = false;
  std::vector<int> refs_per_plan;
  for (const plan::PlanPtr& p : view.recursive_plans) {
    const int n = static_cast<int>(CollectRecursiveRefs(*p).size());
    refs_per_plan.push_back(n);
    if (n > 1) needs_all = true;
  }

  while (!delta.empty()) {
    if (stats->iterations >= options.max_iterations) {
      stats->hit_iteration_limit = true;
      break;
    }
    ++stats->iterations;

    Relation delta_rel(view.schema, std::move(delta));
    delta.clear();
    Relation all_rel;
    if (needs_all) all_rel = state.ToRelation();

    candidates.clear();
    for (size_t pi = 0; pi < view.recursive_plans.size(); ++pi) {
      const LogicalPlan& p = *view.recursive_plans[pi];
      // One semi-naive term per recursive reference: that reference is
      // bound to the delta, the others to the current `all`.
      for (int term = 0; term < refs_per_plan[pi]; ++term) {
        ExecContext ctx = base_ctx;
        ctx.recursive_resolver =
            [&](const RecursiveRefNode& ref) -> const Relation* {
          return ref.ordinal() == term ? &delta_rel : &all_rel;
        };
        RASQL_ASSIGN_OR_RETURN(Relation rel, physical::Execute(p, ctx));
        for (Row& row : rel.mutable_rows()) {
          candidates.push_back(std::move(row));
        }
      }
    }
    candidates = dist::PartialAggregate(std::move(candidates), spec);
    state.MergeDelta(candidates, &delta);
    stats->total_delta_rows += delta.size();
  }

  std::map<std::string, Relation> out;
  out.emplace(view.name, state.ToRelation());
  stats->used_semi_naive = true;
  return out;
}

/// Naive evaluation of a (possibly mutual-recursive) clique:
/// X_{n+1}[v] = γ_v(∪_branches T_branch(X_n)) until X stabilizes.
Result<std::map<std::string, Relation>> EvaluateNaive(
    const RecursiveClique& clique,
    const std::map<std::string, const Relation*>& tables,
    const FixpointOptions& options, FixpointStats* stats) {
  std::map<std::string, Relation> state;
  std::map<std::string, AggSpec> specs;
  for (const RecursiveView& view : clique.views) {
    state.emplace(view.name, Relation(view.schema));
    specs.emplace(view.name, SpecFor(view));
  }

  while (true) {
    if (stats->iterations >= options.max_iterations) {
      stats->hit_iteration_limit = true;
      break;
    }
    ++stats->iterations;

    std::map<std::string, Relation> next;
    for (const RecursiveView& view : clique.views) {
      ExecContext ctx;
      ctx.tables = tables;
      ctx.use_codegen = options.use_codegen;
      ctx.join_algorithm = options.join_algorithm;
      ctx.recursive_resolver =
          [&](const RecursiveRefNode& ref) -> const Relation* {
        auto it = state.find(ref.view_name());
        return it == state.end() ? nullptr : &it->second;
      };

      std::vector<Row> candidates;
      for (const plan::PlanPtr& p : view.base_plans) {
        RASQL_ASSIGN_OR_RETURN(Relation rel, physical::Execute(*p, ctx));
        for (Row& row : rel.mutable_rows()) {
          candidates.push_back(std::move(row));
        }
      }
      for (const plan::PlanPtr& p : view.recursive_plans) {
        RASQL_ASSIGN_OR_RETURN(Relation rel, physical::Execute(*p, ctx));
        for (Row& row : rel.mutable_rows()) {
          candidates.push_back(std::move(row));
        }
      }
      Relation rel(view.schema, std::move(candidates));
      next.emplace(view.name,
                   Canonicalize(std::move(rel), specs.at(view.name)));
    }

    bool changed = false;
    for (const RecursiveView& view : clique.views) {
      if (!storage::SameBag(next.at(view.name), state.at(view.name))) {
        changed = true;
      }
      stats->total_delta_rows += next.at(view.name).size();
    }
    state = std::move(next);
    if (!changed) break;
  }
  return state;
}

}  // namespace

Result<std::map<std::string, Relation>> EvaluateCliqueLocal(
    const RecursiveClique& clique,
    const std::map<std::string, const Relation*>& tables,
    const FixpointOptions& options, FixpointStats* stats) {
  FixpointStats local_stats;
  if (stats == nullptr) stats = &local_stats;

  // Non-recursive clique: single evaluation of the base plans.
  if (!clique.IsRecursive()) {
    std::map<std::string, Relation> out;
    for (const RecursiveView& view : clique.views) {
      ExecContext ctx;
      ctx.tables = tables;
      ctx.use_codegen = options.use_codegen;
      ctx.join_algorithm = options.join_algorithm;
      std::vector<Row> rows;
      for (const plan::PlanPtr& p : view.base_plans) {
        RASQL_ASSIGN_OR_RETURN(Relation rel, physical::Execute(*p, ctx));
        for (Row& row : rel.mutable_rows()) rows.push_back(std::move(row));
      }
      Relation rel(view.schema, std::move(rows));
      // Multi-branch non-recursive views still union with set/aggregate
      // semantics per the head declaration.
      out.emplace(view.name, Canonicalize(std::move(rel), SpecFor(view)));
    }
    stats->iterations = 1;
    return out;
  }

  const bool semi_naive_eligible =
      clique.views.size() == 1 && clique.views[0].semi_naive_safe;
  // Initialized despite the exhaustive switch: an out-of-range enum value
  // would otherwise read uninitialized (and trips -Wmaybe-uninitialized).
  bool use_semi_naive = false;
  switch (options.mode) {
    case FixpointMode::kAuto:
      use_semi_naive = semi_naive_eligible;
      break;
    case FixpointMode::kSemiNaive:
      if (!semi_naive_eligible) {
        return Status::ExecutionError(
            "semi-naive evaluation requested but the clique containing '" +
            clique.views[0].name +
            "' requires naive evaluation (mutual recursion or non-linear "
            "aggregate use)");
      }
      use_semi_naive = true;
      break;
    case FixpointMode::kNaive:
      use_semi_naive = false;
      break;
  }

  if (use_semi_naive) {
    return EvaluateSemiNaive(clique.views[0], tables, options, stats);
  }
  return EvaluateNaive(clique, tables, options, stats);
}

}  // namespace rasql::fixpoint
