#ifndef RASQL_FIXPOINT_LOCAL_FIXPOINT_H_
#define RASQL_FIXPOINT_LOCAL_FIXPOINT_H_

#include <map>
#include <string>
#include <vector>

#include "analysis/analyzed_query.h"
#include "common/status.h"
#include "fixpoint/fixpoint_options.h"
#include "storage/relation.h"

namespace rasql::fixpoint {

/// Collects the RecursiveRefNodes of a plan in ordinal order.
std::vector<const plan::RecursiveRefNode*> CollectRecursiveRefs(
    const plan::LogicalPlan& plan);

/// Resolves `options.mode` against the clique: returns kSemiNaive or
/// kNaive (never kAuto), or an error when semi-naive is forced on a clique
/// that requires naive evaluation. Shared by EvaluateCliqueLocal and the
/// offline stage planner (fixpoint/stage_plan.h) so the two agree on which
/// phases a run submits. The clique must be recursive.
common::Result<FixpointMode> ResolveLocalMode(
    const analysis::RecursiveClique& clique, const FixpointOptions& options);

/// Evaluates one recursive clique to fixpoint on a single node, returning
/// the materialized relation of every view in the clique. Non-recursive
/// cliques evaluate in one shot. `tables` binds base tables and earlier
/// materialized views by canonical name.
common::Result<std::map<std::string, storage::Relation>> EvaluateCliqueLocal(
    const analysis::RecursiveClique& clique,
    const std::map<std::string, const storage::Relation*>& tables,
    const FixpointOptions& options, FixpointStats* stats);

}  // namespace rasql::fixpoint

#endif  // RASQL_FIXPOINT_LOCAL_FIXPOINT_H_
