#ifndef RASQL_FIXPOINT_LOCAL_FIXPOINT_H_
#define RASQL_FIXPOINT_LOCAL_FIXPOINT_H_

#include <map>
#include <string>
#include <vector>

#include "analysis/analyzed_query.h"
#include "common/status.h"
#include "physical/executor.h"
#include "storage/relation.h"

namespace rasql::fixpoint {

/// Fixpoint evaluation strategy.
enum class FixpointMode {
  /// Semi-naive when safe, naive otherwise (mutual recursion, non-linear
  /// sum/count use — see DESIGN.md §4).
  kAuto,
  /// Naive evaluation (paper Alg. 2): X_{n+1} = γ(base ∪ T(X_n)), state
  /// recomputed and re-aggregated each round. Always correct; slow.
  kNaive,
  /// Semi-naive delta evaluation (paper Alg. 3/5 specialized to one node).
  kSemiNaive,
};

struct FixpointOptions {
  FixpointMode mode = FixpointMode::kAuto;
  /// Safety valve for non-terminating recursions (the paper's
  /// stratified-SSSP on cyclic graphs, Fig. 1 footnote).
  int64_t max_iterations = 1'000'000;
  bool use_codegen = true;
  physical::JoinAlgorithm join_algorithm = physical::JoinAlgorithm::kHash;
};

struct FixpointStats {
  int iterations = 0;
  /// Total rows that entered a delta across all iterations.
  size_t total_delta_rows = 0;
  bool hit_iteration_limit = false;
  bool used_semi_naive = false;
};

/// Collects the RecursiveRefNodes of a plan in ordinal order.
std::vector<const plan::RecursiveRefNode*> CollectRecursiveRefs(
    const plan::LogicalPlan& plan);

/// Evaluates one recursive clique to fixpoint on a single node, returning
/// the materialized relation of every view in the clique. Non-recursive
/// cliques evaluate in one shot. `tables` binds base tables and earlier
/// materialized views by canonical name.
common::Result<std::map<std::string, storage::Relation>> EvaluateCliqueLocal(
    const analysis::RecursiveClique& clique,
    const std::map<std::string, const storage::Relation*>& tables,
    const FixpointOptions& options, FixpointStats* stats);

}  // namespace rasql::fixpoint

#endif  // RASQL_FIXPOINT_LOCAL_FIXPOINT_H_
