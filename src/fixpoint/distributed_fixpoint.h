#ifndef RASQL_FIXPOINT_DISTRIBUTED_FIXPOINT_H_
#define RASQL_FIXPOINT_DISTRIBUTED_FIXPOINT_H_

#include <map>
#include <string>

#include "analysis/analyzed_query.h"
#include "common/status.h"
#include "dist/cluster.h"
#include "fixpoint/local_fixpoint.h"
#include "physical/executor.h"
#include "storage/relation.h"

namespace rasql::fixpoint {

/// Options of the distributed semi-naive evaluator (paper Sec. 6 & 7).
struct DistFixpointOptions {
  /// Fuse Reduce(i) + Map(i+1) into one ShuffleMap stage per iteration
  /// (paper Alg. 6 / Sec. 7.1). Off = the plain two-stage Alg. 4/5 loop.
  bool combine_stages = true;
  /// Decomposed-plan evaluation (paper Sec. 7.2): partitions iterate
  /// independently with the base relation broadcast; applies only to plans
  /// whose output preserves the delta partitioning (e.g. linear TC).
  enum class Decomposed { kAuto, kOn, kOff };
  Decomposed decomposed = Decomposed::kAuto;
  /// Broadcast the compact encoded relation and build hash tables on the
  /// workers, instead of shipping a master-built hash table (Sec. 7.2).
  bool compress_broadcast = true;
  bool use_codegen = true;
  physical::JoinAlgorithm join_algorithm = physical::JoinAlgorithm::kHash;
  int64_t max_iterations = 1'000'000;
};

/// Per-run statistics beyond the cluster's JobMetrics.
struct DistFixpointStats {
  int iterations = 0;
  size_t total_delta_rows = 0;
  bool hit_iteration_limit = false;
  bool used_decomposed = false;
  /// Partition key positions (view schema) the run settled on.
  std::vector<int> partition_key;
};

/// True when the clique can run on the distributed evaluator: one view,
/// semi-naive-safe, every recursive plan referencing the view exactly once.
bool EligibleForDistributed(const analysis::RecursiveClique& clique);

/// Evaluates an eligible clique to fixpoint on the simulated cluster.
/// Cluster metrics accumulate into `cluster->metrics()`.
common::Result<std::map<std::string, storage::Relation>>
EvaluateCliqueDistributed(
    const analysis::RecursiveClique& clique,
    const std::map<std::string, const storage::Relation*>& tables,
    dist::Cluster* cluster, const DistFixpointOptions& options,
    DistFixpointStats* stats);

}  // namespace rasql::fixpoint

#endif  // RASQL_FIXPOINT_DISTRIBUTED_FIXPOINT_H_
