#ifndef RASQL_FIXPOINT_DISTRIBUTED_FIXPOINT_H_
#define RASQL_FIXPOINT_DISTRIBUTED_FIXPOINT_H_

#include <map>
#include <string>

#include "analysis/analyzed_query.h"
#include "common/status.h"
#include "dist/cluster.h"
#include "fixpoint/local_fixpoint.h"
#include "physical/executor.h"
#include "storage/relation.h"

namespace rasql::fixpoint {

/// Options of the distributed semi-naive evaluator (paper Sec. 6 & 7).
/// The shared knobs (iteration cap, codegen, join algorithm) live in
/// CommonFixpointOptions; RaSqlContext copies that slice from the local
/// FixpointOptions so the two paths cannot drift.
struct DistFixpointOptions : CommonFixpointOptions {
  /// Fuse Reduce(i) + Map(i+1) into one ShuffleMap stage per iteration
  /// (paper Alg. 6 / Sec. 7.1). Off = the plain two-stage Alg. 4/5 loop.
  bool combine_stages = true;
  /// Decomposed-plan evaluation (paper Sec. 7.2): partitions iterate
  /// independently with the base relation broadcast; applies only to plans
  /// whose output preserves the delta partitioning (e.g. linear TC).
  enum class Decomposed { kAuto, kOn, kOff };
  Decomposed decomposed = Decomposed::kAuto;
  /// Broadcast the compact encoded relation and build hash tables on the
  /// workers, instead of shipping a master-built hash table (Sec. 7.2).
  bool compress_broadcast = true;
};

/// True when the clique can run on the distributed evaluator: one view,
/// semi-naive-safe, every recursive plan referencing the view exactly once.
bool EligibleForDistributed(const analysis::RecursiveClique& clique);

/// Driver-side orchestration decisions for one eligible clique: which
/// evaluation mode the run will use and how base relations are
/// distributed. Computed by the same analysis the evaluator runs before
/// submitting any stage, and consumed by the offline EXPLAIN STAGES
/// planner (fixpoint/stage_plan.h) so the rendered template cannot drift
/// from the real orchestration.
struct DistOrchestration {
  /// Decomposed-plan evaluation (Sec. 7.2): partitions iterate
  /// independently, no per-iteration shuffles.
  bool decomposed = false;
  /// Combined reduce+map stages (Alg. 6) — mutually exclusive with
  /// `decomposed`; false for both = plain DSN map/reduce pairs (Alg. 4/5).
  bool combine_stages = false;
  /// The partition key the run settles on (column positions).
  std::vector<int> partition_key;
  /// Base tables shuffled into co-partitioned slices up front.
  std::vector<std::string> copartitioned;
  /// Base tables broadcast whole to every worker.
  std::vector<std::string> broadcast;
  /// True when at least one recursive branch is morsel-decomposable, so
  /// `runtime.morsel_rows > 0` turns the plain map stage into a split DAG.
  bool delta_splittable = false;
};

/// Analyzes `clique` (must be eligible) and returns the orchestration the
/// distributed evaluator would use under `options`.
common::Result<DistOrchestration> AnalyzeOrchestration(
    const analysis::RecursiveClique& clique,
    const DistFixpointOptions& options);

/// Evaluates an eligible clique to fixpoint on the simulated cluster.
/// Cluster metrics accumulate into `cluster->metrics()`; `stats` (shared
/// with the local path) reports used_semi_naive, used_decomposed and the
/// partition key the run settled on.
common::Result<std::map<std::string, storage::Relation>>
EvaluateCliqueDistributed(
    const analysis::RecursiveClique& clique,
    const std::map<std::string, const storage::Relation*>& tables,
    dist::Cluster* cluster, const DistFixpointOptions& options,
    FixpointStats* stats);

}  // namespace rasql::fixpoint

#endif  // RASQL_FIXPOINT_DISTRIBUTED_FIXPOINT_H_
