#include "datagen/graph_gen.h"

#include <cmath>
#include <deque>

#include "common/check.h"
#include "common/rng.h"

namespace rasql::datagen {

using common::Rng;
using storage::Relation;
using storage::Row;
using storage::Value;

namespace {

void AssignWeights(Graph* graph, Rng* rng, double min_w, double max_w) {
  graph->weights.reserve(graph->edges.size());
  for (size_t i = 0; i < graph->edges.size(); ++i) {
    // Uniform integer weights as in the paper ("uniform integer weights
    // ranging from [0, 100)"), stored as double costs.
    graph->weights.push_back(
        std::floor(min_w + rng->NextDouble() * (max_w - min_w)));
  }
}

}  // namespace

Graph GenerateRmat(const RmatOptions& options) {
  RASQL_CHECK(options.num_vertices > 1);
  RASQL_CHECK(options.a + options.b + options.c < 1.0);
  Rng rng(options.seed);
  Graph graph;
  graph.num_vertices = options.num_vertices;
  const int64_t num_edges = options.num_vertices * options.edges_per_vertex;
  graph.edges.reserve(num_edges);

  // Number of recursion levels = ceil(log2(n)).
  int levels = 0;
  while ((int64_t{1} << levels) < options.num_vertices) ++levels;

  const double ab = options.a + options.b;
  const double abc = ab + options.c;
  for (int64_t e = 0; e < num_edges; ++e) {
    int64_t src = 0;
    int64_t dst = 0;
    for (int l = 0; l < levels; ++l) {
      const double r = rng.NextDouble();
      if (r < options.a) {
        // top-left: nothing to add
      } else if (r < ab) {
        dst |= int64_t{1} << l;
      } else if (r < abc) {
        src |= int64_t{1} << l;
      } else {
        src |= int64_t{1} << l;
        dst |= int64_t{1} << l;
      }
    }
    if (src >= options.num_vertices || dst >= options.num_vertices) {
      --e;  // Rejected (non-power-of-two vertex counts); retry.
      continue;
    }
    graph.edges.emplace_back(src, dst);
  }
  if (options.weighted) {
    AssignWeights(&graph, &rng, options.min_weight, options.max_weight);
  }
  return graph;
}

Graph GenerateErdosRenyi(const ErdosRenyiOptions& options) {
  RASQL_CHECK(options.num_vertices > 1);
  RASQL_CHECK(options.edge_probability > 0.0 &&
              options.edge_probability <= 1.0);
  Rng rng(options.seed);
  Graph graph;
  graph.num_vertices = options.num_vertices;

  // Geometric skipping: instead of testing all n^2 pairs, jump directly to
  // the next edge. Pair index k maps to (k / n, k % n).
  const double log1mp = std::log1p(-options.edge_probability);
  const unsigned __int128 total =
      static_cast<unsigned __int128>(options.num_vertices) *
      static_cast<unsigned __int128>(options.num_vertices);
  unsigned __int128 k = 0;
  while (true) {
    const double u = rng.NextDouble();
    const int64_t skip =
        options.edge_probability >= 1.0
            ? 1
            : 1 + static_cast<int64_t>(std::log(1.0 - u) / log1mp);
    k += skip;
    if (k > total) break;
    const int64_t idx = static_cast<int64_t>(k - 1);
    const int64_t src = idx / options.num_vertices;
    const int64_t dst = idx % options.num_vertices;
    if (src == dst) continue;  // no self loops
    graph.edges.emplace_back(src, dst);
  }
  if (options.weighted) {
    AssignWeights(&graph, &rng, options.min_weight, options.max_weight);
  }
  return graph;
}

Graph GenerateGrid(const GridOptions& options) {
  RASQL_CHECK(options.side >= 1);
  Rng rng(options.seed);
  Graph graph;
  const int64_t n = options.side + 1;  // Grid150 is a 151x151 grid.
  graph.num_vertices = n * n;
  graph.edges.reserve(2 * n * (n - 1));
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t c = 0; c < n; ++c) {
      const int64_t v = r * n + c;
      if (c + 1 < n) graph.edges.emplace_back(v, v + 1);  // right
      if (r + 1 < n) graph.edges.emplace_back(v, v + n);  // down
    }
  }
  if (options.weighted) {
    AssignWeights(&graph, &rng, options.min_weight, options.max_weight);
  }
  return graph;
}

Graph GenerateTree(const TreeOptions& options) {
  RASQL_CHECK(options.height >= 1);
  RASQL_CHECK(options.min_children >= 1);
  RASQL_CHECK(options.min_children <= options.max_children);
  Rng rng(options.seed);
  Graph graph;

  // BFS expansion: node 0 is the root. `frontier` holds internal nodes of
  // the current level.
  std::deque<int64_t> frontier = {0};
  int64_t next_id = 1;
  for (int64_t level = 0; level < options.height && !frontier.empty();
       ++level) {
    std::deque<int64_t> next_frontier;
    for (int64_t parent : frontier) {
      const int64_t num_children =
          rng.NextInRange(options.min_children, options.max_children);
      for (int64_t c = 0; c < num_children; ++c) {
        if (next_id >= options.max_nodes) break;
        const int64_t child = next_id++;
        graph.edges.emplace_back(parent, child);
        const bool leaf = level + 1 >= options.height ||
                          rng.NextDouble() < options.leaf_probability;
        if (!leaf) next_frontier.push_back(child);
      }
      if (next_id >= options.max_nodes) break;
    }
    frontier = std::move(next_frontier);
  }
  graph.num_vertices = next_id;
  return graph;
}

Relation ToEdgeRelation(const Graph& graph) {
  std::vector<storage::Column> cols = {
      {"Src", storage::ValueType::kInt64},
      {"Dst", storage::ValueType::kInt64},
  };
  if (graph.weighted()) {
    cols.push_back({"Cost", storage::ValueType::kDouble});
  }
  Relation rel{storage::Schema(cols)};
  rel.Reserve(graph.edges.size());
  for (size_t i = 0; i < graph.edges.size(); ++i) {
    Row row;
    row.reserve(cols.size());
    row.push_back(Value::Int(graph.edges[i].first));
    row.push_back(Value::Int(graph.edges[i].second));
    if (graph.weighted()) row.push_back(Value::Double(graph.weights[i]));
    rel.Add(std::move(row));
  }
  return rel;
}

Relation ToReportRelation(const Graph& tree) {
  Relation rel{storage::Schema::Of({{"Emp", storage::ValueType::kInt64},
                                    {"Mgr", storage::ValueType::kInt64}})};
  rel.Reserve(tree.edges.size());
  for (const auto& [parent, child] : tree.edges) {
    rel.Add({Value::Int(child), Value::Int(parent)});
  }
  return rel;
}

void ToBomRelations(const Graph& tree, uint64_t seed, Relation* assbl,
                    Relation* basic) {
  Rng rng(seed);
  *assbl = Relation{storage::Schema::Of(
      {{"Part", storage::ValueType::kInt64},
       {"SPart", storage::ValueType::kInt64}})};
  *basic = Relation{storage::Schema::Of(
      {{"Part", storage::ValueType::kInt64},
       {"Days", storage::ValueType::kInt64}})};

  std::vector<bool> has_children(tree.num_vertices, false);
  for (const auto& [parent, child] : tree.edges) has_children[parent] = true;

  assbl->Reserve(tree.edges.size());
  for (const auto& [parent, child] : tree.edges) {
    assbl->Add({Value::Int(parent), Value::Int(child)});
  }
  for (int64_t v = 0; v < tree.num_vertices; ++v) {
    if (!has_children[v]) {
      basic->Add({Value::Int(v), Value::Int(rng.NextInRange(1, 30))});
    }
  }
}

void ToMlmRelations(const Graph& tree, uint64_t seed, Relation* sponsor,
                    Relation* sales) {
  Rng rng(seed);
  *sponsor = Relation{storage::Schema::Of(
      {{"M1", storage::ValueType::kInt64},
       {"M2", storage::ValueType::kInt64}})};
  *sales = Relation{storage::Schema::Of(
      {{"M", storage::ValueType::kInt64},
       {"P", storage::ValueType::kDouble}})};

  sponsor->Reserve(tree.edges.size());
  for (const auto& [parent, child] : tree.edges) {
    sponsor->Add({Value::Int(parent), Value::Int(child)});
  }
  sales->Reserve(tree.num_vertices);
  for (int64_t v = 0; v < tree.num_vertices; ++v) {
    sales->Add({Value::Int(v),
                Value::Double(std::floor(rng.NextDouble() * 1000.0))});
  }
}

}  // namespace rasql::datagen
