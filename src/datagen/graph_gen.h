#ifndef RASQL_DATAGEN_GRAPH_GEN_H_
#define RASQL_DATAGEN_GRAPH_GEN_H_

#include <cstdint>
#include <vector>

#include "storage/relation.h"

namespace rasql::datagen {

/// An edge list with optional weights. Vertex ids are dense in [0, n).
struct Graph {
  int64_t num_vertices = 0;
  std::vector<std::pair<int64_t, int64_t>> edges;
  std::vector<double> weights;  // empty = unweighted

  bool weighted() const { return !weights.empty(); }
  size_t num_edges() const { return edges.size(); }
};

/// RMAT generator following GTgraph [paper ref 4] with quadrant
/// probabilities (a, b, c, 1-a-b-c). The paper's experiments use
/// (a,b,c) = (0.45, 0.25, 0.15) and 10 directed edges per vertex with
/// uniform integer weights in [0, 100).
struct RmatOptions {
  int64_t num_vertices = 1 << 14;
  int64_t edges_per_vertex = 10;
  double a = 0.45;
  double b = 0.25;
  double c = 0.15;
  bool weighted = false;
  double min_weight = 0.0;
  double max_weight = 100.0;
  uint64_t seed = 42;
};
Graph GenerateRmat(const RmatOptions& options);

/// Erdos-Renyi G(n, p): each directed pair (u, v), u != v, is an edge with
/// probability p. The paper's Gn-e graphs use p = 10^-e.
struct ErdosRenyiOptions {
  int64_t num_vertices = 10000;
  double edge_probability = 1e-3;
  bool weighted = false;
  double min_weight = 0.0;
  double max_weight = 100.0;
  uint64_t seed = 42;
};
Graph GenerateErdosRenyi(const ErdosRenyiOptions& options);

/// (n+1) x (n+1) grid as in the paper's Grid150/Grid250: edges go right and
/// down, so the TC from corner to corner is large relative to input size.
struct GridOptions {
  int64_t side = 150;  // Grid150 = 151x151 vertices
  bool weighted = false;
  double min_weight = 0.0;
  double max_weight = 100.0;
  uint64_t seed = 42;
};
Graph GenerateGrid(const GridOptions& options);

/// Random tree in the shape of the paper's complex-analytics datasets
/// (Sec. 8.2): every internal node has `min_children..max_children`
/// children, each child becomes a leaf with `leaf_probability`, and the tree
/// is truncated at `height`. Edges point parent -> child.
struct TreeOptions {
  int64_t height = 10;
  int64_t min_children = 5;
  int64_t max_children = 10;
  double leaf_probability = 0.4;
  int64_t max_nodes = 2'000'000;  // hard cap so generation stays bounded
  uint64_t seed = 42;
};
Graph GenerateTree(const TreeOptions& options);

/// Converts a graph into the paper's base relation
/// edge(Src:int, Dst:int[, Cost:double]).
storage::Relation ToEdgeRelation(const Graph& graph);

/// report(Emp, Mgr) relation for the Management query: child reports to
/// parent in the tree.
storage::Relation ToReportRelation(const Graph& tree);

/// assbl(Part, SPart) + basic(Part, Days) for the Delivery/BOM query:
/// assembly edges parent->child; leaves become basic parts with random
/// delivery days in [1, 30].
void ToBomRelations(const Graph& tree, uint64_t seed,
                    storage::Relation* assbl, storage::Relation* basic);

/// sponsor(M1, M2) + sales(M, P) for the MLM query: sponsor edges
/// parent->child; every member has gross profit in [0, 1000).
void ToMlmRelations(const Graph& tree, uint64_t seed,
                    storage::Relation* sponsor, storage::Relation* sales);

}  // namespace rasql::datagen

#endif  // RASQL_DATAGEN_GRAPH_GEN_H_
