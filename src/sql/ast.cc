#include "sql/ast.h"

#include <set>

#include "storage/schema.h"

namespace rasql::sql {

std::string AstExpr::ToString() const {
  switch (kind) {
    case Kind::kColumn:
      return qualifier.empty() ? name : qualifier + "." + name;
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kBinary:
      return "(" + lhs->ToString() + " " + expr::BinaryOpName(op) + " " +
             rhs->ToString() + ")";
    case Kind::kNot:
      return "NOT (" + lhs->ToString() + ")";
    case Kind::kNegate:
      return "-(" + lhs->ToString() + ")";
    case Kind::kAggCall: {
      std::string out = expr::AggregateFunctionName(agg_fn);
      out += "(";
      if (distinct) out += "DISTINCT ";
      if (lhs) out += lhs->ToString();
      out += ")";
      return out;
    }
    case Kind::kStar:
      return "*";
  }
  return "?";
}

AstExprPtr MakeAstColumn(std::string qualifier, std::string name) {
  auto e = std::make_unique<AstExpr>();
  e->kind = AstExpr::Kind::kColumn;
  e->qualifier = std::move(qualifier);
  e->name = std::move(name);
  return e;
}

AstExprPtr MakeAstLiteral(storage::Value value) {
  auto e = std::make_unique<AstExpr>();
  e->kind = AstExpr::Kind::kLiteral;
  e->literal = std::move(value);
  return e;
}

AstExprPtr MakeAstBinary(expr::BinaryOp op, AstExprPtr lhs, AstExprPtr rhs) {
  auto e = std::make_unique<AstExpr>();
  e->kind = AstExpr::Kind::kBinary;
  e->op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

std::string SelectStmt::ToString() const {
  std::string out = "SELECT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += items[i].expr->ToString();
    if (!items[i].alias.empty()) out += " AS " + items[i].alias;
  }
  if (!from.empty()) {
    out += " FROM ";
    for (size_t i = 0; i < from.size(); ++i) {
      if (i > 0) out += ", ";
      out += from[i].table_name;
      if (!from[i].alias.empty()) out += " " + from[i].alias;
    }
  }
  if (where) out += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToString();
    }
  }
  if (having) out += " HAVING " + having->ToString();
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += order_by[i].expr->ToString();
      if (!order_by[i].ascending) out += " DESC";
    }
  }
  if (limit >= 0) out += " LIMIT " + std::to_string(limit);
  return out;
}

std::string Query::ToString() const {
  std::string out;
  if (!ctes.empty()) {
    out += "WITH ";
    for (size_t i = 0; i < ctes.size(); ++i) {
      if (i > 0) out += ", ";
      const CteDef& cte = ctes[i];
      if (cte.recursive) out += "recursive ";
      out += cte.name + "(";
      for (size_t c = 0; c < cte.columns.size(); ++c) {
        if (c > 0) out += ", ";
        if (cte.columns[c].aggregate != expr::AggregateFunction::kNone) {
          out += std::string(
                     expr::AggregateFunctionName(cte.columns[c].aggregate)) +
                 "() AS ";
        }
        out += cte.columns[c].name;
      }
      out += ") AS ";
      for (size_t b = 0; b < cte.branches.size(); ++b) {
        if (b > 0) out += " UNION ";
        out += "(" + cte.branches[b]->ToString() + ")";
      }
    }
    out += " ";
  }
  out += body->ToString();
  return out;
}

std::vector<std::string> ReferencedTables(const Query& query) {
  std::set<std::string> ctes;
  for (const CteDef& cte : query.ctes) ctes.insert(storage::ToLower(cte.name));
  std::set<std::string> tables;
  auto collect = [&](const SelectStmt& select) {
    for (const TableRef& ref : select.from) {
      std::string name = storage::ToLower(ref.table_name);
      if (ctes.count(name) == 0) tables.insert(std::move(name));
    }
  };
  for (const CteDef& cte : query.ctes) {
    for (const SelectStmtPtr& branch : cte.branches) collect(*branch);
  }
  if (query.body != nullptr) collect(*query.body);
  return {tables.begin(), tables.end()};
}

}  // namespace rasql::sql
