#ifndef RASQL_SQL_AST_H_
#define RASQL_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "storage/row.h"
#include "storage/value.h"

namespace rasql::sql {

/// Unresolved scalar expression produced by the parser. Name resolution and
/// typing happen in the analyzer.
struct AstExpr {
  enum class Kind {
    kColumn,     ///< [qualifier.]name
    kLiteral,    ///< number or 'string'
    kBinary,     ///< lhs op rhs
    kNot,        ///< NOT lhs
    kNegate,     ///< -lhs
    kAggCall,    ///< fn([DISTINCT] lhs) or fn(*) or fn()
    kStar,       ///< * (only inside count(*))
  };

  Kind kind = Kind::kLiteral;
  std::string qualifier;  // kColumn
  std::string name;       // kColumn
  storage::Value literal;
  expr::BinaryOp op = expr::BinaryOp::kAdd;  // kBinary
  std::unique_ptr<AstExpr> lhs;
  std::unique_ptr<AstExpr> rhs;
  expr::AggregateFunction agg_fn = expr::AggregateFunction::kNone;
  bool distinct = false;  // kAggCall with DISTINCT

  std::string ToString() const;
};

using AstExprPtr = std::unique_ptr<AstExpr>;

AstExprPtr MakeAstColumn(std::string qualifier, std::string name);
AstExprPtr MakeAstLiteral(storage::Value value);
AstExprPtr MakeAstBinary(expr::BinaryOp op, AstExprPtr lhs, AstExprPtr rhs);

/// FROM-clause table reference: `name [alias]`, e.g. `rel a`.
struct TableRef {
  std::string table_name;
  std::string alias;  // empty = table name itself

  const std::string& BindingName() const {
    return alias.empty() ? table_name : alias;
  }
};

/// One SELECT-list item: expression plus optional alias.
struct SelectItem {
  AstExprPtr expr;
  std::string alias;
};

/// ORDER BY item.
struct OrderItem {
  AstExprPtr expr;
  bool ascending = true;
};

/// A single SELECT ... FROM ... WHERE ... GROUP BY ... HAVING ...
/// [ORDER BY ... LIMIT n] block.
struct SelectStmt {
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  AstExprPtr where;  // nullable
  std::vector<AstExprPtr> group_by;
  AstExprPtr having;  // nullable
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  // -1 = none

  std::string ToString() const;
};

using SelectStmtPtr = std::unique_ptr<SelectStmt>;

/// One declared column of a CTE head: either a plain column `Name` or the
/// paper's aggregate head `min() AS Name` / `sum() AS Name` etc.
struct ViewColumn {
  std::string name;
  expr::AggregateFunction aggregate = expr::AggregateFunction::kNone;
};

/// One [recursive] view of a WITH clause: a union of SELECT branches.
struct CteDef {
  bool recursive = false;
  std::string name;
  std::vector<ViewColumn> columns;
  std::vector<SelectStmtPtr> branches;
};

/// A full RaSQL query: optional WITH views followed by the final SELECT.
struct Query {
  std::vector<CteDef> ctes;
  SelectStmtPtr body;

  std::string ToString() const;
};

/// CREATE VIEW name(cols) AS (select) — non-recursive named view, used by
/// e.g. the Interval Coalesce example.
struct CreateViewStmt {
  std::string name;
  std::vector<std::string> columns;
  SelectStmtPtr definition;
};

/// INSERT INTO name VALUES (lit, ...), (...) — literal rows appended to a
/// registered base relation. This is the engine's only base-data write
/// statement; the server's result-cache invalidation hangs off it
/// (DESIGN.md §12).
struct InsertStmt {
  std::string table;
  std::vector<storage::Row> rows;
};

/// A parsed script statement.
struct Statement {
  enum class Kind { kQuery, kCreateView, kInsert };
  Kind kind = Kind::kQuery;
  std::unique_ptr<Query> query;
  std::unique_ptr<CreateViewStmt> create_view;
  std::unique_ptr<InsertStmt> insert;
};

/// Lowercased names of every table a query's FROM clauses reference,
/// excluding the query's own CTE views — i.e. the base relations (or
/// externally-created views) whose contents determine the query's result.
/// Sorted and deduplicated. The server's result cache keys on these
/// tables' versions (DESIGN.md §12).
std::vector<std::string> ReferencedTables(const Query& query);

}  // namespace rasql::sql

#endif  // RASQL_SQL_AST_H_
