#ifndef RASQL_SQL_PARSER_H_
#define RASQL_SQL_PARSER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/lexer.h"

namespace rasql::sql {

/// Recursive-descent parser for the RaSQL dialect (paper Sec. 2):
///
///   WITH [recursive] view(col | agg() AS col, ...) AS
///     (select) UNION (select) ... [, more views]
///   SELECT ... FROM ... WHERE ... GROUP BY ... HAVING ...
///     [ORDER BY ...] [LIMIT n]
///
/// plus `CREATE VIEW name(cols) AS (select)` for non-recursive helper views
/// and `;`-separated scripts.
class Parser {
 public:
  /// Parses a single query (optionally WITH-prefixed).
  static common::Result<Query> ParseQuery(const std::string& sql);

  /// Parses a `;`-separated script of CREATE VIEW / query statements.
  static common::Result<std::vector<Statement>> ParseScript(
      const std::string& sql);

 private:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek(int ahead = 0) const;
  const Token& Advance();
  bool Match(TokenType type);
  bool MatchKeyword(const char* kw);
  common::Status Expect(TokenType type, const char* what);
  common::Status ExpectKeyword(const char* kw);
  common::Status ExpectContextualBy();
  common::Status ErrorHere(const std::string& message) const;

  common::Result<Statement> ParseStatement();
  common::Result<std::unique_ptr<CreateViewStmt>> ParseCreateView();
  common::Result<std::unique_ptr<InsertStmt>> ParseInsert();
  common::Result<storage::Value> ParseInsertLiteral();
  common::Result<std::unique_ptr<Query>> ParseQueryInternal();
  common::Result<CteDef> ParseCte();
  common::Result<ViewColumn> ParseViewColumn();
  common::Result<SelectStmtPtr> ParseParenthesizedSelect();
  common::Result<SelectStmtPtr> ParseSelect();
  common::Result<AstExprPtr> ParseExpr();
  common::Result<AstExprPtr> ParseOr();
  common::Result<AstExprPtr> ParseAnd();
  common::Result<AstExprPtr> ParseNot();
  common::Result<AstExprPtr> ParseComparison();
  common::Result<AstExprPtr> ParseAdditive();
  common::Result<AstExprPtr> ParseMultiplicative();
  common::Result<AstExprPtr> ParseUnary();
  common::Result<AstExprPtr> ParsePrimary();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

/// Maps "min"/"max"/"sum"/"count" (case-insensitive) to the aggregate enum;
/// kNone when the name is not an aggregate.
expr::AggregateFunction AggregateFromName(const std::string& name);

}  // namespace rasql::sql

#endif  // RASQL_SQL_PARSER_H_
