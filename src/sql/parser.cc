#include "sql/parser.h"

#include "storage/schema.h"

namespace rasql::sql {

using common::Result;
using common::Status;
using expr::AggregateFunction;
using expr::BinaryOp;

expr::AggregateFunction AggregateFromName(const std::string& name) {
  const std::string lower = storage::ToLower(name);
  if (lower == "min") return AggregateFunction::kMin;
  if (lower == "max") return AggregateFunction::kMax;
  if (lower == "sum") return AggregateFunction::kSum;
  if (lower == "count") return AggregateFunction::kCount;
  return AggregateFunction::kNone;
}

const Token& Parser::Peek(int ahead) const {
  const size_t i = pos_ + ahead;
  return i < tokens_.size() ? tokens_[i] : tokens_.back();
}

const Token& Parser::Advance() {
  const Token& t = Peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::Match(TokenType type) {
  if (Peek().type != type) return false;
  Advance();
  return true;
}

bool Parser::MatchKeyword(const char* kw) {
  if (!Peek().IsKeyword(kw)) return false;
  Advance();
  return true;
}

Status Parser::ErrorHere(const std::string& message) const {
  const Token& t = Peek();
  std::string near =
      t.type == TokenType::kEnd ? "end of input" : "'" + t.text + "'";
  return Status::ParseError("line " + std::to_string(t.line) + ":" +
                            std::to_string(t.column) + ": " + message +
                            " near " + near);
}

Status Parser::Expect(TokenType type, const char* what) {
  if (Peek().type != type) {
    return ErrorHere(std::string("expected ") + what);
  }
  Advance();
  return Status::OK();
}

// `by` is an identifier at the lexer level (it can name a column); after
// GROUP/ORDER it must appear literally.
Status Parser::ExpectContextualBy() {
  if (Peek().type != TokenType::kIdentifier ||
      !storage::EqualsIgnoreCase(Peek().text, "by")) {
    return ErrorHere("expected 'by'");
  }
  Advance();
  return Status::OK();
}

Status Parser::ExpectKeyword(const char* kw) {
  if (!Peek().IsKeyword(kw)) {
    return ErrorHere(std::string("expected '") + kw + "'");
  }
  Advance();
  return Status::OK();
}

Result<Query> Parser::ParseQuery(const std::string& sql) {
  RASQL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  Parser parser(std::move(tokens));
  RASQL_ASSIGN_OR_RETURN(std::unique_ptr<Query> query,
                         parser.ParseQueryInternal());
  parser.Match(TokenType::kSemicolon);
  if (parser.Peek().type != TokenType::kEnd) {
    return parser.ErrorHere("unexpected trailing input");
  }
  return std::move(*query);
}

Result<std::vector<Statement>> Parser::ParseScript(const std::string& sql) {
  RASQL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  Parser parser(std::move(tokens));
  std::vector<Statement> statements;
  while (parser.Peek().type != TokenType::kEnd) {
    RASQL_ASSIGN_OR_RETURN(Statement stmt, parser.ParseStatement());
    statements.push_back(std::move(stmt));
    // Statements are separated by semicolons; trailing semicolon optional.
    if (!parser.Match(TokenType::kSemicolon)) break;
  }
  if (parser.Peek().type != TokenType::kEnd) {
    return parser.ErrorHere("unexpected trailing input");
  }
  return statements;
}

Result<Statement> Parser::ParseStatement() {
  Statement stmt;
  if (Peek().IsKeyword("create")) {
    stmt.kind = Statement::Kind::kCreateView;
    RASQL_ASSIGN_OR_RETURN(stmt.create_view, ParseCreateView());
    return stmt;
  }
  if (Peek().IsKeyword("insert")) {
    stmt.kind = Statement::Kind::kInsert;
    RASQL_ASSIGN_OR_RETURN(stmt.insert, ParseInsert());
    return stmt;
  }
  stmt.kind = Statement::Kind::kQuery;
  RASQL_ASSIGN_OR_RETURN(stmt.query, ParseQueryInternal());
  return stmt;
}

Result<std::unique_ptr<InsertStmt>> Parser::ParseInsert() {
  RASQL_RETURN_IF_ERROR(ExpectKeyword("insert"));
  RASQL_RETURN_IF_ERROR(ExpectKeyword("into"));
  auto insert = std::make_unique<InsertStmt>();
  if (Peek().type != TokenType::kIdentifier) {
    return ErrorHere("expected table name");
  }
  insert->table = Advance().text;
  RASQL_RETURN_IF_ERROR(ExpectKeyword("values"));
  do {
    RASQL_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    storage::Row row;
    do {
      RASQL_ASSIGN_OR_RETURN(storage::Value value, ParseInsertLiteral());
      row.push_back(std::move(value));
    } while (Match(TokenType::kComma));
    RASQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    insert->rows.push_back(std::move(row));
  } while (Match(TokenType::kComma));
  return insert;
}

/// INSERT rows are literal constants only — a signed number, a string, or
/// NULL (`null` is not a lexer keyword; it is recognized contextually here,
/// like `UNION ALL`'s `all`).
Result<storage::Value> Parser::ParseInsertLiteral() {
  const bool negate = Match(TokenType::kMinus);
  const Token& t = Peek();
  switch (t.type) {
    case TokenType::kIntLiteral: {
      const int64_t v = Advance().int_value;
      return storage::Value::Int(negate ? -v : v);
    }
    case TokenType::kDoubleLiteral: {
      const double v = Advance().double_value;
      return storage::Value::Double(negate ? -v : v);
    }
    case TokenType::kStringLiteral: {
      if (negate) return ErrorHere("cannot negate a string literal");
      return storage::Value::String(Advance().text);
    }
    case TokenType::kIdentifier: {
      if (!negate && storage::EqualsIgnoreCase(t.text, "null")) {
        Advance();
        return storage::Value::Null();
      }
      return ErrorHere("expected literal value");
    }
    default:
      return ErrorHere("expected literal value");
  }
}

Result<std::unique_ptr<CreateViewStmt>> Parser::ParseCreateView() {
  RASQL_RETURN_IF_ERROR(ExpectKeyword("create"));
  RASQL_RETURN_IF_ERROR(ExpectKeyword("view"));
  auto view = std::make_unique<CreateViewStmt>();
  if (Peek().type != TokenType::kIdentifier) {
    return ErrorHere("expected view name");
  }
  view->name = Advance().text;
  RASQL_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
  do {
    if (Peek().type != TokenType::kIdentifier) {
      return ErrorHere("expected column name");
    }
    view->columns.push_back(Advance().text);
  } while (Match(TokenType::kComma));
  RASQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
  RASQL_RETURN_IF_ERROR(ExpectKeyword("as"));
  RASQL_ASSIGN_OR_RETURN(view->definition, ParseParenthesizedSelect());
  return view;
}

Result<std::unique_ptr<Query>> Parser::ParseQueryInternal() {
  auto query = std::make_unique<Query>();
  if (MatchKeyword("with")) {
    do {
      RASQL_ASSIGN_OR_RETURN(CteDef cte, ParseCte());
      query->ctes.push_back(std::move(cte));
    } while (Match(TokenType::kComma));
  }
  RASQL_ASSIGN_OR_RETURN(query->body, ParseSelect());
  return query;
}

Result<CteDef> Parser::ParseCte() {
  CteDef cte;
  cte.recursive = MatchKeyword("recursive");
  if (Peek().type != TokenType::kIdentifier) {
    return ErrorHere("expected view name");
  }
  cte.name = Advance().text;
  RASQL_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
  do {
    RASQL_ASSIGN_OR_RETURN(ViewColumn col, ParseViewColumn());
    cte.columns.push_back(std::move(col));
  } while (Match(TokenType::kComma));
  RASQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
  RASQL_RETURN_IF_ERROR(ExpectKeyword("as"));
  do {
    RASQL_ASSIGN_OR_RETURN(SelectStmtPtr branch, ParseParenthesizedSelect());
    cte.branches.push_back(std::move(branch));
    if (!MatchKeyword("union")) break;
    // Optional ALL quantifier. `all` is not a lexer keyword (it can name a
    // view, see Appendix G), so match it contextually: after UNION, a bare
    // `all` identifier can only be the quantifier.
    if (Peek().type == TokenType::kIdentifier &&
        storage::EqualsIgnoreCase(Peek().text, "all") &&
        Peek(1).type == TokenType::kLParen) {
      Advance();
    }
  } while (true);
  return cte;
}

Result<ViewColumn> Parser::ParseViewColumn() {
  ViewColumn col;
  // Aggregate head: `min() AS Name` (paper Q2 syntax).
  if (Peek().type == TokenType::kIdentifier &&
      AggregateFromName(Peek().text) != AggregateFunction::kNone &&
      Peek(1).type == TokenType::kLParen) {
    col.aggregate = AggregateFromName(Advance().text);
    RASQL_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    RASQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    RASQL_RETURN_IF_ERROR(ExpectKeyword("as"));
    if (Peek().type != TokenType::kIdentifier) {
      return ErrorHere("expected column name after AS");
    }
    col.name = Advance().text;
    return col;
  }
  if (Peek().type != TokenType::kIdentifier) {
    return ErrorHere("expected column name or aggregate");
  }
  col.name = Advance().text;
  return col;
}

Result<SelectStmtPtr> Parser::ParseParenthesizedSelect() {
  // Branches are normally parenthesized as in the paper; a bare SELECT is
  // also accepted for convenience.
  if (Match(TokenType::kLParen)) {
    RASQL_ASSIGN_OR_RETURN(SelectStmtPtr select, ParseSelect());
    RASQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    return select;
  }
  return ParseSelect();
}

Result<SelectStmtPtr> Parser::ParseSelect() {
  RASQL_RETURN_IF_ERROR(ExpectKeyword("select"));
  auto select = std::make_unique<SelectStmt>();

  do {
    SelectItem item;
    RASQL_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    if (MatchKeyword("as")) {
      if (Peek().type != TokenType::kIdentifier) {
        return ErrorHere("expected alias after AS");
      }
      item.alias = Advance().text;
    } else if (Peek().type == TokenType::kIdentifier) {
      item.alias = Advance().text;  // bare alias
    }
    select->items.push_back(std::move(item));
  } while (Match(TokenType::kComma));

  if (MatchKeyword("from")) {
    do {
      TableRef ref;
      if (Peek().type != TokenType::kIdentifier) {
        return ErrorHere("expected table name");
      }
      ref.table_name = Advance().text;
      if (MatchKeyword("as")) {
        if (Peek().type != TokenType::kIdentifier) {
          return ErrorHere("expected alias after AS");
        }
        ref.alias = Advance().text;
      } else if (Peek().type == TokenType::kIdentifier) {
        ref.alias = Advance().text;
      }
      select->from.push_back(std::move(ref));
    } while (Match(TokenType::kComma));
  }

  if (MatchKeyword("where")) {
    RASQL_ASSIGN_OR_RETURN(select->where, ParseExpr());
  }
  if (Peek().IsKeyword("group")) {
    Advance();
    RASQL_RETURN_IF_ERROR(ExpectContextualBy());
    do {
      RASQL_ASSIGN_OR_RETURN(AstExprPtr e, ParseExpr());
      select->group_by.push_back(std::move(e));
    } while (Match(TokenType::kComma));
  }
  if (MatchKeyword("having")) {
    RASQL_ASSIGN_OR_RETURN(select->having, ParseExpr());
  }
  if (Peek().IsKeyword("order")) {
    Advance();
    RASQL_RETURN_IF_ERROR(ExpectContextualBy());
    do {
      OrderItem item;
      RASQL_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("desc")) {
        item.ascending = false;
      } else {
        MatchKeyword("asc");
      }
      select->order_by.push_back(std::move(item));
    } while (Match(TokenType::kComma));
  }
  if (MatchKeyword("limit")) {
    if (Peek().type != TokenType::kIntLiteral) {
      return ErrorHere("expected integer after LIMIT");
    }
    select->limit = Advance().int_value;
  }
  return select;
}

Result<AstExprPtr> Parser::ParseExpr() { return ParseOr(); }

Result<AstExprPtr> Parser::ParseOr() {
  RASQL_ASSIGN_OR_RETURN(AstExprPtr lhs, ParseAnd());
  while (MatchKeyword("or")) {
    RASQL_ASSIGN_OR_RETURN(AstExprPtr rhs, ParseAnd());
    lhs = MakeAstBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<AstExprPtr> Parser::ParseAnd() {
  RASQL_ASSIGN_OR_RETURN(AstExprPtr lhs, ParseNot());
  while (MatchKeyword("and")) {
    RASQL_ASSIGN_OR_RETURN(AstExprPtr rhs, ParseNot());
    lhs = MakeAstBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<AstExprPtr> Parser::ParseNot() {
  if (MatchKeyword("not")) {
    RASQL_ASSIGN_OR_RETURN(AstExprPtr input, ParseNot());
    auto e = std::make_unique<AstExpr>();
    e->kind = AstExpr::Kind::kNot;
    e->lhs = std::move(input);
    return AstExprPtr(std::move(e));
  }
  return ParseComparison();
}

Result<AstExprPtr> Parser::ParseComparison() {
  RASQL_ASSIGN_OR_RETURN(AstExprPtr lhs, ParseAdditive());
  BinaryOp op;
  switch (Peek().type) {
    case TokenType::kEq:
      op = BinaryOp::kEq;
      break;
    case TokenType::kNe:
      op = BinaryOp::kNe;
      break;
    case TokenType::kLt:
      op = BinaryOp::kLt;
      break;
    case TokenType::kLe:
      op = BinaryOp::kLe;
      break;
    case TokenType::kGt:
      op = BinaryOp::kGt;
      break;
    case TokenType::kGe:
      op = BinaryOp::kGe;
      break;
    default:
      return lhs;
  }
  Advance();
  RASQL_ASSIGN_OR_RETURN(AstExprPtr rhs, ParseAdditive());
  return MakeAstBinary(op, std::move(lhs), std::move(rhs));
}

Result<AstExprPtr> Parser::ParseAdditive() {
  RASQL_ASSIGN_OR_RETURN(AstExprPtr lhs, ParseMultiplicative());
  while (true) {
    BinaryOp op;
    if (Peek().type == TokenType::kPlus) {
      op = BinaryOp::kAdd;
    } else if (Peek().type == TokenType::kMinus) {
      op = BinaryOp::kSub;
    } else {
      return lhs;
    }
    Advance();
    RASQL_ASSIGN_OR_RETURN(AstExprPtr rhs, ParseMultiplicative());
    lhs = MakeAstBinary(op, std::move(lhs), std::move(rhs));
  }
}

Result<AstExprPtr> Parser::ParseMultiplicative() {
  RASQL_ASSIGN_OR_RETURN(AstExprPtr lhs, ParseUnary());
  while (true) {
    BinaryOp op;
    if (Peek().type == TokenType::kStar) {
      op = BinaryOp::kMul;
    } else if (Peek().type == TokenType::kSlash) {
      op = BinaryOp::kDiv;
    } else {
      return lhs;
    }
    Advance();
    RASQL_ASSIGN_OR_RETURN(AstExprPtr rhs, ParseUnary());
    lhs = MakeAstBinary(op, std::move(lhs), std::move(rhs));
  }
}

Result<AstExprPtr> Parser::ParseUnary() {
  if (Match(TokenType::kMinus)) {
    RASQL_ASSIGN_OR_RETURN(AstExprPtr input, ParseUnary());
    // Fold literal negation so `-3` is a literal, not an expression.
    if (input->kind == AstExpr::Kind::kLiteral) {
      if (input->literal.type() == storage::ValueType::kInt64) {
        return MakeAstLiteral(storage::Value::Int(-input->literal.AsInt()));
      }
      if (input->literal.type() == storage::ValueType::kDouble) {
        return MakeAstLiteral(
            storage::Value::Double(-input->literal.AsDouble()));
      }
    }
    auto e = std::make_unique<AstExpr>();
    e->kind = AstExpr::Kind::kNegate;
    e->lhs = std::move(input);
    return AstExprPtr(std::move(e));
  }
  return ParsePrimary();
}

Result<AstExprPtr> Parser::ParsePrimary() {
  const Token& t = Peek();
  switch (t.type) {
    case TokenType::kIntLiteral: {
      const int64_t v = Advance().int_value;
      return MakeAstLiteral(storage::Value::Int(v));
    }
    case TokenType::kDoubleLiteral: {
      const double v = Advance().double_value;
      return MakeAstLiteral(storage::Value::Double(v));
    }
    case TokenType::kStringLiteral: {
      std::string s = Advance().text;
      return MakeAstLiteral(storage::Value::String(std::move(s)));
    }
    case TokenType::kLParen: {
      Advance();
      RASQL_ASSIGN_OR_RETURN(AstExprPtr e, ParseExpr());
      RASQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      return e;
    }
    case TokenType::kIdentifier: {
      // Aggregate call?
      if (AggregateFromName(t.text) != AggregateFunction::kNone &&
          Peek(1).type == TokenType::kLParen) {
        auto e = std::make_unique<AstExpr>();
        e->kind = AstExpr::Kind::kAggCall;
        e->agg_fn = AggregateFromName(Advance().text);
        Advance();  // '('
        if (MatchKeyword("distinct")) e->distinct = true;
        if (Match(TokenType::kStar)) {
          auto star = std::make_unique<AstExpr>();
          star->kind = AstExpr::Kind::kStar;
          e->lhs = std::move(star);
        } else if (Peek().type != TokenType::kRParen) {
          RASQL_ASSIGN_OR_RETURN(e->lhs, ParseExpr());
        }
        RASQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        return AstExprPtr(std::move(e));
      }
      // Column reference, possibly qualified.
      std::string first = Advance().text;
      if (Match(TokenType::kDot)) {
        if (Peek().type != TokenType::kIdentifier) {
          return ErrorHere("expected column name after '.'");
        }
        std::string second = Advance().text;
        return MakeAstColumn(std::move(first), std::move(second));
      }
      return MakeAstColumn("", std::move(first));
    }
    default:
      return ErrorHere("expected expression");
  }
}

}  // namespace rasql::sql
