#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_set>

#include "storage/schema.h"

namespace rasql::sql {

using common::Result;
using common::Status;

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = new std::unordered_set<std::string>{
      "with",   "recursive", "as",     "select", "from",  "where",
      "group",  "having", "union",  "order", "limit",
      "and",    "or",        "not",    "distinct", "asc", "desc",
      "create", "view",   "insert", "into",  "values",
      // NOTE: "all" and "by" are deliberately NOT keywords — the paper's
      // PreM-checking rewrite (Appendix G) names a recursive view `all`.
      // `UNION ALL` is recognized contextually by the parser.
  };
  return *kKeywords;
}

Status LexError(int line, int column, const std::string& message) {
  return Status::ParseError("line " + std::to_string(line) + ":" +
                            std::to_string(column) + ": " + message);
}

}  // namespace

bool Token::IsKeyword(const char* kw) const {
  return type == TokenType::kKeyword && storage::EqualsIgnoreCase(text, kw);
}

Result<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  int line = 1;
  int col = 1;

  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n && i < input.size(); ++k, ++i) {
      if (input[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
  };
  auto push = [&](TokenType type, std::string text) {
    Token t;
    t.type = type;
    t.text = std::move(text);
    t.line = line;
    t.column = col;
    tokens.push_back(std::move(t));
  };

  while (i < input.size()) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // -- line comment
    if (c == '-' && i + 1 < input.size() && input[i + 1] == '-') {
      while (i < input.size() && input[i] != '\n') advance(1);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < input.size() &&
             (std::isalnum(static_cast<unsigned char>(input[j])) ||
              input[j] == '_')) {
        ++j;
      }
      std::string word = input.substr(i, j - i);
      const bool is_kw = Keywords().count(storage::ToLower(word)) > 0;
      push(is_kw ? TokenType::kKeyword : TokenType::kIdentifier, word);
      advance(j - i);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool is_double = false;
      while (j < input.size() &&
             std::isdigit(static_cast<unsigned char>(input[j]))) {
        ++j;
      }
      if (j < input.size() && input[j] == '.' && j + 1 < input.size() &&
          std::isdigit(static_cast<unsigned char>(input[j + 1]))) {
        is_double = true;
        ++j;
        while (j < input.size() &&
               std::isdigit(static_cast<unsigned char>(input[j]))) {
          ++j;
        }
      }
      // Exponent suffix (1e6, 2.5E-3).
      if (j < input.size() && (input[j] == 'e' || input[j] == 'E')) {
        size_t k = j + 1;
        if (k < input.size() && (input[k] == '+' || input[k] == '-')) ++k;
        if (k < input.size() &&
            std::isdigit(static_cast<unsigned char>(input[k]))) {
          is_double = true;
          j = k;
          while (j < input.size() &&
                 std::isdigit(static_cast<unsigned char>(input[j]))) {
            ++j;
          }
        }
      }
      const std::string num = input.substr(i, j - i);
      Token t;
      t.line = line;
      t.column = col;
      t.text = num;
      if (is_double) {
        t.type = TokenType::kDoubleLiteral;
        t.double_value = std::strtod(num.c_str(), nullptr);
      } else {
        t.type = TokenType::kIntLiteral;
        t.int_value = std::strtoll(num.c_str(), nullptr, 10);
      }
      tokens.push_back(std::move(t));
      advance(j - i);
      continue;
    }
    if (c == '\'') {
      size_t j = i + 1;
      std::string s;
      bool closed = false;
      while (j < input.size()) {
        if (input[j] == '\'') {
          if (j + 1 < input.size() && input[j + 1] == '\'') {
            s += '\'';  // escaped quote
            j += 2;
            continue;
          }
          closed = true;
          break;
        }
        s += input[j++];
      }
      if (!closed) return LexError(line, col, "unterminated string literal");
      Token t;
      t.type = TokenType::kStringLiteral;
      t.text = s;
      t.line = line;
      t.column = col;
      tokens.push_back(std::move(t));
      advance(j + 1 - i);
      continue;
    }
    switch (c) {
      case '(':
        push(TokenType::kLParen, "(");
        advance(1);
        break;
      case ')':
        push(TokenType::kRParen, ")");
        advance(1);
        break;
      case ',':
        push(TokenType::kComma, ",");
        advance(1);
        break;
      case '.':
        push(TokenType::kDot, ".");
        advance(1);
        break;
      case ';':
        push(TokenType::kSemicolon, ";");
        advance(1);
        break;
      case '*':
        push(TokenType::kStar, "*");
        advance(1);
        break;
      case '+':
        push(TokenType::kPlus, "+");
        advance(1);
        break;
      case '-':
        push(TokenType::kMinus, "-");
        advance(1);
        break;
      case '/':
        push(TokenType::kSlash, "/");
        advance(1);
        break;
      case '=':
        push(TokenType::kEq, "=");
        advance(1);
        break;
      case '!':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          push(TokenType::kNe, "!=");
          advance(2);
        } else {
          return LexError(line, col, "unexpected character '!'");
        }
        break;
      case '<':
        if (i + 1 < input.size() && input[i + 1] == '>') {
          push(TokenType::kNe, "<>");
          advance(2);
        } else if (i + 1 < input.size() && input[i + 1] == '=') {
          push(TokenType::kLe, "<=");
          advance(2);
        } else {
          push(TokenType::kLt, "<");
          advance(1);
        }
        break;
      case '>':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          push(TokenType::kGe, ">=");
          advance(2);
        } else {
          push(TokenType::kGt, ">");
          advance(1);
        }
        break;
      default:
        return LexError(line, col, std::string("unexpected character '") +
                                       c + "'");
    }
  }

  Token end;
  end.type = TokenType::kEnd;
  end.line = line;
  end.column = col;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace rasql::sql
