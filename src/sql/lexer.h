#ifndef RASQL_SQL_LEXER_H_
#define RASQL_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace rasql::sql {

/// Token kinds produced by the lexer. Keywords are recognized
/// case-insensitively and keep their original text in `text`.
enum class TokenType {
  kIdentifier,
  kKeyword,
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,
  // punctuation / operators
  kLParen,
  kRParen,
  kComma,
  kDot,
  kSemicolon,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kEq,
  kNe,       // <> or !=
  kLt,
  kLe,
  kGt,
  kGe,
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;        // raw text (identifier/keyword spelling)
  int64_t int_value = 0;   // kIntLiteral
  double double_value = 0; // kDoubleLiteral
  int line = 1;
  int column = 1;

  /// Case-insensitive keyword test.
  bool IsKeyword(const char* kw) const;
};

/// Tokenizes RaSQL text. Comments (`-- ...`) are skipped. Errors carry
/// line/column context.
common::Result<std::vector<Token>> Lex(const std::string& input);

}  // namespace rasql::sql

#endif  // RASQL_SQL_LEXER_H_
