#ifndef RASQL_PLAN_LOGICAL_PLAN_H_
#define RASQL_PLAN_LOGICAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "storage/relation.h"
#include "storage/schema.h"

namespace rasql::plan {

/// Logical operator kinds. The analyzer produces trees of these; the
/// optimizer rewrites them; the physical layer executes them.
enum class PlanKind {
  kTableScan,     ///< base relation or materialized view
  kRecursiveRef,  ///< reference to a recursive relation in the same clique
                  ///< (the paper's "mark point", Sec. 5)
  kValues,        ///< literal rows (FROM-less SELECT)
  kFilter,
  kProject,
  kJoin,          ///< inner equi-join (empty keys = cross product)
  kAggregate,     ///< hash aggregate with group-by
  kSort,
  kLimit,
};

class LogicalPlan;
using PlanPtr = std::unique_ptr<LogicalPlan>;

/// Base class for logical plan nodes. Every node knows its output schema;
/// expressions inside nodes are bound to the child's output positions.
class LogicalPlan {
 public:
  virtual ~LogicalPlan() = default;

  PlanKind kind() const { return kind_; }
  const storage::Schema& schema() const { return schema_; }

  const std::vector<PlanPtr>& children() const { return children_; }
  std::vector<PlanPtr>& mutable_children() { return children_; }
  const LogicalPlan& child(int i = 0) const { return *children_[i]; }

  /// Multi-line indented EXPLAIN rendering.
  std::string ToString(int indent = 0) const;

  /// One-line description of this node (without children).
  virtual std::string Describe() const = 0;

  virtual PlanPtr Clone() const = 0;

 protected:
  LogicalPlan(PlanKind kind, storage::Schema schema)
      : kind_(kind), schema_(std::move(schema)) {}

  std::vector<PlanPtr> CloneChildren() const;

  PlanKind kind_;
  storage::Schema schema_;
  std::vector<PlanPtr> children_;
};

/// Scan of a named base relation or materialized view.
class TableScanNode final : public LogicalPlan {
 public:
  TableScanNode(std::string table_name, storage::Schema schema)
      : LogicalPlan(PlanKind::kTableScan, std::move(schema)),
        table_name_(std::move(table_name)) {}

  const std::string& table_name() const { return table_name_; }

  std::string Describe() const override;
  PlanPtr Clone() const override {
    return std::make_unique<TableScanNode>(table_name_, schema_);
  }

 private:
  std::string table_name_;
};

/// Scan of a recursive relation belonging to the enclosing clique. During
/// semi-naive evaluation this binds to the delta (or, for secondary refs,
/// the all relation).
class RecursiveRefNode final : public LogicalPlan {
 public:
  RecursiveRefNode(std::string view_name, storage::Schema schema,
                   int ordinal = 0)
      : LogicalPlan(PlanKind::kRecursiveRef, std::move(schema)),
        view_name_(std::move(view_name)),
        ordinal_(ordinal) {}

  const std::string& view_name() const { return view_name_; }
  /// Position of this reference among the recursive references of its
  /// branch (0-based). Semi-naive evaluation produces one term per
  /// ordinal, binding that reference to the delta and the others to `all`.
  int ordinal() const { return ordinal_; }

  std::string Describe() const override;
  PlanPtr Clone() const override {
    return std::make_unique<RecursiveRefNode>(view_name_, schema_, ordinal_);
  }

 private:
  std::string view_name_;
  int ordinal_;
};

/// Literal rows (the base case `SELECT 1, 0` compiles to a Project over a
/// single empty row; Values holds that row set).
class ValuesNode final : public LogicalPlan {
 public:
  ValuesNode(storage::Schema schema, std::vector<storage::Row> rows)
      : LogicalPlan(PlanKind::kValues, std::move(schema)),
        rows_(std::move(rows)) {}

  const std::vector<storage::Row>& rows() const { return rows_; }

  std::string Describe() const override;
  PlanPtr Clone() const override {
    return std::make_unique<ValuesNode>(schema_, rows_);
  }

 private:
  std::vector<storage::Row> rows_;
};

/// Filter by a boolean expression over the child's output.
class FilterNode final : public LogicalPlan {
 public:
  FilterNode(PlanPtr child, expr::ExprPtr predicate)
      : LogicalPlan(PlanKind::kFilter, child->schema()),
        predicate_(std::move(predicate)) {
    children_.push_back(std::move(child));
  }

  const expr::Expr& predicate() const { return *predicate_; }
  expr::ExprPtr TakePredicate() { return std::move(predicate_); }

  std::string Describe() const override;
  PlanPtr Clone() const override {
    return std::make_unique<FilterNode>(children_[0]->Clone(),
                                        predicate_->Clone());
  }

 private:
  expr::ExprPtr predicate_;
};

/// Projection: one expression per output column.
class ProjectNode final : public LogicalPlan {
 public:
  ProjectNode(PlanPtr child, std::vector<expr::ExprPtr> exprs,
              storage::Schema schema)
      : LogicalPlan(PlanKind::kProject, std::move(schema)),
        exprs_(std::move(exprs)) {
    children_.push_back(std::move(child));
  }

  const std::vector<expr::ExprPtr>& exprs() const { return exprs_; }

  std::string Describe() const override;
  PlanPtr Clone() const override;

 private:
  std::vector<expr::ExprPtr> exprs_;
};

/// Inner equi-join: output = left columns ++ right columns. `left_keys` /
/// `right_keys` are positions into the respective inputs; empty keys mean a
/// cross product (the analyzer starts with cross products, the optimizer
/// extracts keys from filters).
class JoinNode final : public LogicalPlan {
 public:
  JoinNode(PlanPtr left, PlanPtr right, std::vector<int> left_keys,
           std::vector<int> right_keys);

  const std::vector<int>& left_keys() const { return left_keys_; }
  const std::vector<int>& right_keys() const { return right_keys_; }
  void SetKeys(std::vector<int> left_keys, std::vector<int> right_keys) {
    left_keys_ = std::move(left_keys);
    right_keys_ = std::move(right_keys);
  }
  bool is_cross() const { return left_keys_.empty(); }

  std::string Describe() const override;
  PlanPtr Clone() const override {
    return std::make_unique<JoinNode>(children_[0]->Clone(),
                                      children_[1]->Clone(), left_keys_,
                                      right_keys_);
  }

 private:
  std::vector<int> left_keys_;
  std::vector<int> right_keys_;
};

/// One aggregate computation within an AggregateNode.
struct AggregateItem {
  expr::AggregateFunction function = expr::AggregateFunction::kCount;
  expr::ExprPtr argument;  ///< null = count(*)
  bool distinct = false;
  std::string output_name;
};

/// Hash aggregate: group by `group_exprs`, compute `items`. Output schema =
/// group columns then aggregate columns.
class AggregateNode final : public LogicalPlan {
 public:
  AggregateNode(PlanPtr child, std::vector<expr::ExprPtr> group_exprs,
                std::vector<AggregateItem> items, storage::Schema schema)
      : LogicalPlan(PlanKind::kAggregate, std::move(schema)),
        group_exprs_(std::move(group_exprs)),
        items_(std::move(items)) {
    children_.push_back(std::move(child));
  }

  const std::vector<expr::ExprPtr>& group_exprs() const {
    return group_exprs_;
  }
  const std::vector<AggregateItem>& items() const { return items_; }

  std::string Describe() const override;
  PlanPtr Clone() const override;

 private:
  std::vector<expr::ExprPtr> group_exprs_;
  std::vector<AggregateItem> items_;
};

/// Sort by expressions with per-key direction.
class SortNode final : public LogicalPlan {
 public:
  struct SortKey {
    expr::ExprPtr expr;
    bool ascending = true;
  };

  SortNode(PlanPtr child, std::vector<SortKey> keys)
      : LogicalPlan(PlanKind::kSort, child->schema()),
        keys_(std::move(keys)) {
    children_.push_back(std::move(child));
  }

  const std::vector<SortKey>& keys() const { return keys_; }

  std::string Describe() const override;
  PlanPtr Clone() const override;

 private:
  std::vector<SortKey> keys_;
};

/// LIMIT n.
class LimitNode final : public LogicalPlan {
 public:
  LimitNode(PlanPtr child, int64_t limit)
      : LogicalPlan(PlanKind::kLimit, child->schema()), limit_(limit) {
    children_.push_back(std::move(child));
  }

  int64_t limit() const { return limit_; }

  std::string Describe() const override;
  PlanPtr Clone() const override {
    return std::make_unique<LimitNode>(children_[0]->Clone(), limit_);
  }

 private:
  int64_t limit_;
};

}  // namespace rasql::plan

#endif  // RASQL_PLAN_LOGICAL_PLAN_H_
