#include "plan/logical_plan.h"

#include "common/check.h"

namespace rasql::plan {

std::string LogicalPlan::ToString(int indent) const {
  std::string out(indent * 2, ' ');
  out += Describe();
  out += "\n";
  for (const PlanPtr& child : children_) {
    out += child->ToString(indent + 1);
  }
  return out;
}

std::vector<PlanPtr> LogicalPlan::CloneChildren() const {
  std::vector<PlanPtr> out;
  out.reserve(children_.size());
  for (const PlanPtr& c : children_) out.push_back(c->Clone());
  return out;
}

std::string TableScanNode::Describe() const {
  return "TableScan [" + table_name_ + ": " + schema_.ToString() + "]";
}

std::string RecursiveRefNode::Describe() const {
  return "RecursiveRef [" + view_name_ + ": " + schema_.ToString() + "]";
}

std::string ValuesNode::Describe() const {
  return "Values [" + std::to_string(rows_.size()) + " rows: " +
         schema_.ToString() + "]";
}

std::string FilterNode::Describe() const {
  return "Filter [" + predicate_->ToString() + "]";
}

std::string ProjectNode::Describe() const {
  std::string out = "Project [";
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += exprs_[i]->ToString() + " AS " + schema_.column(i).name;
  }
  return out + "]";
}

PlanPtr ProjectNode::Clone() const {
  std::vector<expr::ExprPtr> exprs;
  exprs.reserve(exprs_.size());
  for (const expr::ExprPtr& e : exprs_) exprs.push_back(e->Clone());
  return std::make_unique<ProjectNode>(children_[0]->Clone(),
                                       std::move(exprs), schema_);
}

JoinNode::JoinNode(PlanPtr left, PlanPtr right, std::vector<int> left_keys,
                   std::vector<int> right_keys)
    : LogicalPlan(PlanKind::kJoin, storage::Schema()),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)) {
  RASQL_CHECK(left_keys_.size() == right_keys_.size());
  std::vector<storage::Column> cols = left->schema().columns();
  for (const storage::Column& c : right->schema().columns()) {
    cols.push_back(c);
  }
  schema_ = storage::Schema(std::move(cols));
  children_.push_back(std::move(left));
  children_.push_back(std::move(right));
}

std::string JoinNode::Describe() const {
  if (is_cross()) return "CrossJoin";
  std::string out = "Join [";
  for (size_t i = 0; i < left_keys_.size(); ++i) {
    if (i > 0) out += " AND ";
    out += "left#" + std::to_string(left_keys_[i]) + " = right#" +
           std::to_string(right_keys_[i]);
  }
  return out + "]";
}

std::string AggregateNode::Describe() const {
  std::string out = "Aggregate [group=";
  for (size_t i = 0; i < group_exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += group_exprs_[i]->ToString();
  }
  out += " aggs=";
  for (size_t i = 0; i < items_.size(); ++i) {
    if (i > 0) out += ", ";
    out += expr::AggregateFunctionName(items_[i].function);
    out += "(";
    if (items_[i].distinct) out += "DISTINCT ";
    out += items_[i].argument ? items_[i].argument->ToString() : "*";
    out += ")";
  }
  return out + "]";
}

PlanPtr AggregateNode::Clone() const {
  std::vector<expr::ExprPtr> groups;
  groups.reserve(group_exprs_.size());
  for (const expr::ExprPtr& e : group_exprs_) groups.push_back(e->Clone());
  std::vector<AggregateItem> items;
  items.reserve(items_.size());
  for (const AggregateItem& item : items_) {
    AggregateItem copy;
    copy.function = item.function;
    copy.argument = item.argument ? item.argument->Clone() : nullptr;
    copy.distinct = item.distinct;
    copy.output_name = item.output_name;
    items.push_back(std::move(copy));
  }
  return std::make_unique<AggregateNode>(children_[0]->Clone(),
                                         std::move(groups), std::move(items),
                                         schema_);
}

std::string SortNode::Describe() const {
  std::string out = "Sort [";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) out += ", ";
    out += keys_[i].expr->ToString();
    if (!keys_[i].ascending) out += " DESC";
  }
  return out + "]";
}

PlanPtr SortNode::Clone() const {
  std::vector<SortKey> keys;
  keys.reserve(keys_.size());
  for (const SortKey& k : keys_) {
    keys.push_back(SortKey{k.expr->Clone(), k.ascending});
  }
  return std::make_unique<SortNode>(children_[0]->Clone(), std::move(keys));
}

std::string LimitNode::Describe() const {
  return "Limit [" + std::to_string(limit_) + "]";
}

}  // namespace rasql::plan
