#ifndef RASQL_PLAN_OPTIMIZER_H_
#define RASQL_PLAN_OPTIMIZER_H_

#include <vector>

#include "plan/logical_plan.h"

namespace rasql::plan {

/// Rule toggles — exposed so ablation benches and tests can isolate rules.
struct OptimizerOptions {
  bool constant_folding = true;
  bool filter_combination = true;
  /// Splits WHERE conjuncts, turns `a.x = b.y` pairs into equi-join keys on
  /// the lowest join where both sides are bound, and pushes single-side
  /// conjuncts below the join (predicate pushdown; paper Sec. 5).
  bool predicate_pushdown = true;
};

/// Applies the rule pipeline to a plan tree, returning the rewritten plan.
PlanPtr Optimize(PlanPtr plan, const OptimizerOptions& options = {});

/// --- helpers shared with the fixpoint compiler and tests ---

/// Splits a predicate into AND-ed conjuncts (ownership transferred).
std::vector<expr::ExprPtr> SplitConjuncts(expr::ExprPtr predicate);

/// AND-combines conjuncts; nullptr when the list is empty.
expr::ExprPtr CombineConjuncts(std::vector<expr::ExprPtr> conjuncts);

/// Collects all column indices referenced by an expression.
void CollectColumnRefs(const expr::Expr& e, std::vector<int>* out);

/// Rewrites column references by adding `delta` to every index (used when
/// pushing predicates into the right side of a join).
expr::ExprPtr ShiftColumnRefs(const expr::Expr& e, int delta);

/// Bottom-up constant folding of an expression.
expr::ExprPtr FoldConstants(expr::ExprPtr e);

}  // namespace rasql::plan

#endif  // RASQL_PLAN_OPTIMIZER_H_
