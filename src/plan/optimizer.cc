#include "plan/optimizer.h"

#include <algorithm>

#include "common/check.h"

namespace rasql::plan {

using expr::BinaryExpr;
using expr::BinaryOp;
using expr::ColumnRefExpr;
using expr::Expr;
using expr::ExprPtr;

namespace {

PlanPtr OptimizeNode(PlanPtr node, const OptimizerOptions& options);

bool IsLiteral(const Expr& e) { return e.kind() == Expr::Kind::kLiteral; }

/// True boolean literal test after folding, used to drop trivial filters.
bool IsTrueLiteral(const Expr& e) {
  if (!IsLiteral(e)) return false;
  const auto& lit = static_cast<const expr::LiteralExpr&>(e);
  return expr::IsTruthy(lit.value());
}

}  // namespace

ExprPtr FoldConstants(ExprPtr e) {
  switch (e->kind()) {
    case Expr::Kind::kBinary: {
      auto* bin = static_cast<BinaryExpr*>(e.get());
      ExprPtr lhs = FoldConstants(bin->lhs().Clone());
      ExprPtr rhs = FoldConstants(bin->rhs().Clone());
      if (IsLiteral(*lhs) && IsLiteral(*rhs)) {
        ExprPtr combined = std::make_unique<BinaryExpr>(
            bin->op(), std::move(lhs), std::move(rhs), e->output_type());
        storage::Row empty;
        return expr::MakeLiteral(combined->Eval(empty));
      }
      return std::make_unique<BinaryExpr>(bin->op(), std::move(lhs),
                                          std::move(rhs), e->output_type());
    }
    case Expr::Kind::kNot: {
      auto* not_expr = static_cast<expr::NotExpr*>(e.get());
      ExprPtr input = FoldConstants(not_expr->input().Clone());
      if (IsLiteral(*input)) {
        ExprPtr combined =
            std::make_unique<expr::NotExpr>(std::move(input));
        storage::Row empty;
        return expr::MakeLiteral(combined->Eval(empty));
      }
      return std::make_unique<expr::NotExpr>(std::move(input));
    }
    case Expr::Kind::kNegate: {
      auto* neg = static_cast<expr::NegateExpr*>(e.get());
      ExprPtr input = FoldConstants(neg->input().Clone());
      if (IsLiteral(*input)) {
        ExprPtr combined =
            std::make_unique<expr::NegateExpr>(std::move(input));
        storage::Row empty;
        return expr::MakeLiteral(combined->Eval(empty));
      }
      return std::make_unique<expr::NegateExpr>(std::move(input));
    }
    default:
      return e;
  }
}

std::vector<ExprPtr> SplitConjuncts(ExprPtr predicate) {
  std::vector<ExprPtr> out;
  if (predicate->kind() == Expr::Kind::kBinary) {
    auto* bin = static_cast<BinaryExpr*>(predicate.get());
    if (bin->op() == BinaryOp::kAnd) {
      std::vector<ExprPtr> lhs = SplitConjuncts(bin->lhs().Clone());
      std::vector<ExprPtr> rhs = SplitConjuncts(bin->rhs().Clone());
      for (ExprPtr& e : lhs) out.push_back(std::move(e));
      for (ExprPtr& e : rhs) out.push_back(std::move(e));
      return out;
    }
  }
  out.push_back(std::move(predicate));
  return out;
}

ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts) {
  if (conjuncts.empty()) return nullptr;
  ExprPtr acc = std::move(conjuncts[0]);
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    acc = expr::MakeBinary(BinaryOp::kAnd, std::move(acc),
                           std::move(conjuncts[i]));
  }
  return acc;
}

void CollectColumnRefs(const Expr& e, std::vector<int>* out) {
  switch (e.kind()) {
    case Expr::Kind::kColumnRef:
      out->push_back(static_cast<const ColumnRefExpr&>(e).index());
      break;
    case Expr::Kind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(e);
      CollectColumnRefs(bin.lhs(), out);
      CollectColumnRefs(bin.rhs(), out);
      break;
    }
    case Expr::Kind::kNot:
      CollectColumnRefs(static_cast<const expr::NotExpr&>(e).input(), out);
      break;
    case Expr::Kind::kNegate:
      CollectColumnRefs(static_cast<const expr::NegateExpr&>(e).input(),
                        out);
      break;
    default:
      break;
  }
}

ExprPtr ShiftColumnRefs(const Expr& e, int delta) {
  switch (e.kind()) {
    case Expr::Kind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(e);
      return expr::MakeColumnRef(ref.index() + delta, ref.output_type(),
                                 ref.name());
    }
    case Expr::Kind::kLiteral:
      return e.Clone();
    case Expr::Kind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(e);
      return std::make_unique<BinaryExpr>(
          bin.op(), ShiftColumnRefs(bin.lhs(), delta),
          ShiftColumnRefs(bin.rhs(), delta), e.output_type());
    }
    case Expr::Kind::kNot:
      return std::make_unique<expr::NotExpr>(ShiftColumnRefs(
          static_cast<const expr::NotExpr&>(e).input(), delta));
    case Expr::Kind::kNegate:
      return std::make_unique<expr::NegateExpr>(ShiftColumnRefs(
          static_cast<const expr::NegateExpr&>(e).input(), delta));
  }
  RASQL_CHECK(false);
}

namespace {

/// Flattens a tree of cross joins (as built by the analyzer) into its
/// ordered leaves. Keyed joins and non-join nodes count as leaves.
void FlattenCrossJoins(PlanPtr node, std::vector<PlanPtr>* leaves) {
  if (node->kind() == PlanKind::kJoin &&
      static_cast<JoinNode*>(node.get())->is_cross()) {
    auto& children = node->mutable_children();
    FlattenCrossJoins(std::move(children[0]), leaves);
    FlattenCrossJoins(std::move(children[1]), leaves);
    return;
  }
  leaves->push_back(std::move(node));
}

/// Predicate pushdown + equi-join key extraction over a flattened cross
/// product. Column indices are global over the concatenated leaf schemas
/// and stay global throughout (the rebuilt tree is left-deep in the same
/// leaf order), so only leaf-local pushes need shifting.
PlanPtr PushDownFilters(std::vector<ExprPtr> conjuncts,
                        std::vector<PlanPtr> leaves,
                        const OptimizerOptions& options) {
  const int num_leaves = static_cast<int>(leaves.size());
  std::vector<int> offset(num_leaves + 1, 0);
  for (int i = 0; i < num_leaves; ++i) {
    offset[i + 1] = offset[i] + leaves[i]->schema().num_columns();
  }
  auto leaf_of = [&](int column) {
    for (int i = 0; i < num_leaves; ++i) {
      if (column < offset[i + 1]) return i;
    }
    RASQL_CHECK(false);
  };

  // Classify conjuncts.
  struct JoinKey {
    int left_col;   // global index, in leaves [0, leaf)
    int right_col;  // global index, in leaf `leaf`
    int leaf;
  };
  std::vector<JoinKey> join_keys;
  std::vector<std::vector<ExprPtr>> leaf_filters(num_leaves);
  std::vector<std::vector<ExprPtr>> residual_at(num_leaves);

  for (ExprPtr& conjunct : conjuncts) {
    std::vector<int> cols;
    CollectColumnRefs(*conjunct, &cols);
    if (cols.empty()) {
      residual_at[0].push_back(std::move(conjunct));
      continue;
    }
    const int min_leaf = leaf_of(*std::min_element(cols.begin(), cols.end()));
    const int max_leaf = leaf_of(*std::max_element(cols.begin(), cols.end()));
    if (min_leaf == max_leaf) {
      leaf_filters[min_leaf].push_back(
          ShiftColumnRefs(*conjunct, -offset[min_leaf]));
      continue;
    }
    // Equi-join key candidate: col = col across exactly two leaves, where
    // the later leaf contributes one whole side.
    if (conjunct->kind() == Expr::Kind::kBinary) {
      auto* bin = static_cast<BinaryExpr*>(conjunct.get());
      if (bin->op() == BinaryOp::kEq &&
          bin->lhs().kind() == Expr::Kind::kColumnRef &&
          bin->rhs().kind() == Expr::Kind::kColumnRef) {
        int a = static_cast<const ColumnRefExpr&>(bin->lhs()).index();
        int b = static_cast<const ColumnRefExpr&>(bin->rhs()).index();
        if (a > b) std::swap(a, b);
        join_keys.push_back(JoinKey{a, b, leaf_of(b)});
        continue;
      }
    }
    residual_at[max_leaf].push_back(std::move(conjunct));
  }

  // Rebuild left-deep, attaching keys/filters at the right level.
  auto attach_filters = [&](PlanPtr node,
                            std::vector<ExprPtr> filters) -> PlanPtr {
    ExprPtr predicate = CombineConjuncts(std::move(filters));
    if (!predicate) return node;
    if (options.constant_folding) predicate = FoldConstants(std::move(predicate));
    if (IsTrueLiteral(*predicate)) return node;
    return std::make_unique<FilterNode>(std::move(node),
                                        std::move(predicate));
  };

  PlanPtr acc = attach_filters(OptimizeNode(std::move(leaves[0]), options),
                               std::move(leaf_filters[0]));
  acc = attach_filters(std::move(acc), std::move(residual_at[0]));
  for (int i = 1; i < num_leaves; ++i) {
    PlanPtr leaf = attach_filters(OptimizeNode(std::move(leaves[i]), options),
                                  std::move(leaf_filters[i]));
    std::vector<int> left_keys;
    std::vector<int> right_keys;
    for (JoinKey& key : join_keys) {
      if (key.leaf != i) continue;
      if (leaf_of(key.left_col) < i) {
        left_keys.push_back(key.left_col);
        right_keys.push_back(key.right_col - offset[i]);
      }
    }
    acc = std::make_unique<JoinNode>(std::move(acc), std::move(leaf),
                                     std::move(left_keys),
                                     std::move(right_keys));
    acc = attach_filters(std::move(acc), std::move(residual_at[i]));
  }
  return acc;
}

PlanPtr OptimizeNode(PlanPtr node, const OptimizerOptions& options) {
  switch (node->kind()) {
    case PlanKind::kFilter: {
      auto* filter = static_cast<FilterNode*>(node.get());
      ExprPtr predicate = filter->TakePredicate();
      PlanPtr child = std::move(node->mutable_children()[0]);
      // Filter combination: collapse chains of filters into one predicate.
      while (options.filter_combination &&
             child->kind() == PlanKind::kFilter) {
        auto* inner = static_cast<FilterNode*>(child.get());
        predicate = expr::MakeBinary(BinaryOp::kAnd, inner->TakePredicate(),
                                     std::move(predicate));
        child = std::move(child->mutable_children()[0]);
      }
      if (options.constant_folding) {
        predicate = FoldConstants(std::move(predicate));
      }
      if (options.predicate_pushdown && child->kind() == PlanKind::kJoin &&
          static_cast<JoinNode*>(child.get())->is_cross()) {
        std::vector<PlanPtr> leaves;
        FlattenCrossJoins(std::move(child), &leaves);
        if (leaves.size() > 1) {
          return PushDownFilters(SplitConjuncts(std::move(predicate)),
                                 std::move(leaves), options);
        }
        // Single leaf: the "join" vanished; keep filtering the leaf.
        child = std::move(leaves[0]);
      }
      child = OptimizeNode(std::move(child), options);
      if (IsTrueLiteral(*predicate)) return child;
      return std::make_unique<FilterNode>(std::move(child),
                                          std::move(predicate));
    }
    case PlanKind::kProject: {
      auto* project = static_cast<ProjectNode*>(node.get());
      std::vector<ExprPtr> exprs;
      exprs.reserve(project->exprs().size());
      for (const ExprPtr& e : project->exprs()) {
        exprs.push_back(options.constant_folding ? FoldConstants(e->Clone())
                                                 : e->Clone());
      }
      PlanPtr child =
          OptimizeNode(std::move(node->mutable_children()[0]), options);
      return std::make_unique<ProjectNode>(std::move(child),
                                           std::move(exprs),
                                           project->schema());
    }
    default: {
      for (PlanPtr& child : node->mutable_children()) {
        child = OptimizeNode(std::move(child), options);
      }
      return node;
    }
  }
}

}  // namespace

PlanPtr Optimize(PlanPtr plan, const OptimizerOptions& options) {
  return OptimizeNode(std::move(plan), options);
}

}  // namespace rasql::plan
