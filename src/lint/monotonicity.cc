#include "lint/monotonicity.h"

#include <optional>

#include "storage/schema.h"

namespace rasql::lint {

using expr::AggregateFunction;
using expr::BinaryOp;
using sql::AstExpr;
using storage::EqualsIgnoreCase;
using storage::ValueType;

namespace {

/// Numeric value of a constant AST expression (literals, negation and
/// arithmetic over literals are folded), or nullopt when the node is not
/// a numeric constant.
std::optional<double> LiteralValue(const AstExpr& ast) {
  if (ast.kind == AstExpr::Kind::kLiteral) {
    if (ast.literal.type() == ValueType::kInt64 ||
        ast.literal.type() == ValueType::kDouble) {
      return ast.literal.AsNumeric();
    }
    return std::nullopt;
  }
  if (ast.kind == AstExpr::Kind::kNegate) {
    std::optional<double> inner = LiteralValue(*ast.lhs);
    if (inner.has_value()) return -*inner;
    return std::nullopt;
  }
  if (ast.kind == AstExpr::Kind::kBinary) {
    std::optional<double> lhs = LiteralValue(*ast.lhs);
    std::optional<double> rhs = LiteralValue(*ast.rhs);
    if (!lhs.has_value() || !rhs.has_value()) return std::nullopt;
    switch (ast.op) {
      case BinaryOp::kAdd:
        return *lhs + *rhs;
      case BinaryOp::kSub:
        return *lhs - *rhs;
      case BinaryOp::kMul:
        return *lhs * *rhs;
      case BinaryOp::kDiv:
        if (*rhs == 0) return std::nullopt;
        return *lhs / *rhs;
      default:
        return std::nullopt;
    }
  }
  return std::nullopt;
}

Monotonicity Flip(Monotonicity m) {
  switch (m) {
    case Monotonicity::kMonotone:
      return Monotonicity::kAntitone;
    case Monotonicity::kAntitone:
      return Monotonicity::kMonotone;
    default:
      return m;
  }
}

/// Combines the monotonicity of two addends: x + y is monotone when each
/// addend is monotone-or-constant, and symmetrically for antitone.
Monotonicity CombineAdditive(Monotonicity a, Monotonicity b) {
  if (a == Monotonicity::kUnknown || b == Monotonicity::kUnknown) {
    return Monotonicity::kUnknown;
  }
  if (a == Monotonicity::kConstant) return b;
  if (b == Monotonicity::kConstant) return a;
  return a == b ? a : Monotonicity::kUnknown;
}

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

}  // namespace

bool ReferencesColumn(const AstExpr& ast, const std::string& binding_name,
                      const std::string& column_name) {
  if (ast.kind == AstExpr::Kind::kColumn) {
    if (!EqualsIgnoreCase(ast.name, column_name)) return false;
    return ast.qualifier.empty() ||
           EqualsIgnoreCase(ast.qualifier, binding_name);
  }
  if (ast.lhs && ReferencesColumn(*ast.lhs, binding_name, column_name)) {
    return true;
  }
  if (ast.rhs && ReferencesColumn(*ast.rhs, binding_name, column_name)) {
    return true;
  }
  return false;
}

bool IsLinearInAggColumn(const AstExpr& ast, const std::string& binding_name,
                         const std::string& column_name) {
  if (ast.kind == AstExpr::Kind::kColumn) {
    return ReferencesColumn(ast, binding_name, column_name);
  }
  if (ast.kind == AstExpr::Kind::kBinary && ast.op == BinaryOp::kMul) {
    const bool lhs_is_col =
        ast.lhs->kind == AstExpr::Kind::kColumn &&
        ReferencesColumn(*ast.lhs, binding_name, column_name);
    const bool rhs_is_col =
        ast.rhs->kind == AstExpr::Kind::kColumn &&
        ReferencesColumn(*ast.rhs, binding_name, column_name);
    const bool lhs_is_lit = ast.lhs->kind == AstExpr::Kind::kLiteral;
    const bool rhs_is_lit = ast.rhs->kind == AstExpr::Kind::kLiteral;
    return (lhs_is_col && rhs_is_lit) || (lhs_is_lit && rhs_is_col);
  }
  return false;
}

Monotonicity ClassifyMonotonicity(const AstExpr& ast,
                                  const std::string& binding_name,
                                  const std::string& agg_column_name) {
  if (!ReferencesColumn(ast, binding_name, agg_column_name)) {
    return Monotonicity::kConstant;
  }
  switch (ast.kind) {
    case AstExpr::Kind::kColumn:
      // ReferencesColumn above established this IS the aggregate column.
      return Monotonicity::kMonotone;
    case AstExpr::Kind::kLiteral:
    case AstExpr::Kind::kStar:
      return Monotonicity::kConstant;
    case AstExpr::Kind::kNegate:
      return Flip(
          ClassifyMonotonicity(*ast.lhs, binding_name, agg_column_name));
    case AstExpr::Kind::kNot:
    case AstExpr::Kind::kAggCall:
      return Monotonicity::kUnknown;
    case AstExpr::Kind::kBinary:
      break;
  }
  const Monotonicity lhs =
      ClassifyMonotonicity(*ast.lhs, binding_name, agg_column_name);
  const Monotonicity rhs =
      ClassifyMonotonicity(*ast.rhs, binding_name, agg_column_name);
  switch (ast.op) {
    case BinaryOp::kAdd:
      return CombineAdditive(lhs, rhs);
    case BinaryOp::kSub:
      return CombineAdditive(lhs, Flip(rhs));
    case BinaryOp::kMul: {
      // Scaling by a constant keeps (k > 0) or reverses (k < 0) the order;
      // a non-literal factor has statically unknown sign.
      if (lhs == Monotonicity::kConstant) {
        std::optional<double> k = LiteralValue(*ast.lhs);
        if (!k.has_value()) return Monotonicity::kUnknown;
        return *k >= 0 ? rhs : Flip(rhs);
      }
      if (rhs == Monotonicity::kConstant) {
        std::optional<double> k = LiteralValue(*ast.rhs);
        if (!k.has_value()) return Monotonicity::kUnknown;
        return *k >= 0 ? lhs : Flip(lhs);
      }
      return Monotonicity::kUnknown;
    }
    case BinaryOp::kDiv: {
      // x / k behaves like x * (1/k) for a constant literal divisor.
      if (rhs == Monotonicity::kConstant) {
        std::optional<double> k = LiteralValue(*ast.rhs);
        if (!k.has_value() || *k == 0) return Monotonicity::kUnknown;
        return *k > 0 ? lhs : Flip(lhs);
      }
      return Monotonicity::kUnknown;
    }
    default:
      // Comparisons/boolean ops over the aggregate value are step
      // functions — outside the order-preserving catalog.
      return Monotonicity::kUnknown;
  }
}

Sign ClassifySign(const AstExpr& ast, const std::string& binding_name,
                  const std::string& agg_column_name) {
  // Constant expressions fold to their exact value.
  if (std::optional<double> v = LiteralValue(ast); v.has_value()) {
    return *v >= 0 ? Sign::kNonNegative : Sign::kNegative;
  }
  switch (ast.kind) {
    case AstExpr::Kind::kLiteral:
      return Sign::kUnknown;  // non-numeric literal
    case AstExpr::Kind::kColumn:
      // The aggregate column is non-negative by induction (all checked
      // contributions are); any other column's sign is data-dependent.
      return ReferencesColumn(ast, binding_name, agg_column_name)
                 ? Sign::kNonNegative
                 : Sign::kUnknown;
    case AstExpr::Kind::kNegate: {
      std::optional<double> v = LiteralValue(ast);
      if (v.has_value()) {
        return *v >= 0 ? Sign::kNonNegative : Sign::kNegative;
      }
      const Sign inner =
          ClassifySign(*ast.lhs, binding_name, agg_column_name);
      return inner == Sign::kNegative ? Sign::kNonNegative : Sign::kUnknown;
    }
    case AstExpr::Kind::kNot:
      return Sign::kNonNegative;  // boolean 0/1
    case AstExpr::Kind::kStar:
    case AstExpr::Kind::kAggCall:
      return Sign::kUnknown;
    case AstExpr::Kind::kBinary:
      break;
  }
  const Sign lhs = ClassifySign(*ast.lhs, binding_name, agg_column_name);
  const Sign rhs = ClassifySign(*ast.rhs, binding_name, agg_column_name);
  switch (ast.op) {
    case BinaryOp::kAdd:
      if (lhs == rhs &&
          (lhs == Sign::kNonNegative || lhs == Sign::kNegative)) {
        return lhs;
      }
      return Sign::kUnknown;
    case BinaryOp::kSub:
      if (lhs == Sign::kNonNegative && rhs == Sign::kNegative) {
        return Sign::kNonNegative;
      }
      if (lhs == Sign::kNegative && rhs == Sign::kNonNegative) {
        return Sign::kNegative;
      }
      return Sign::kUnknown;
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
      if ((lhs == Sign::kNonNegative && rhs == Sign::kNonNegative) ||
          (lhs == Sign::kNegative && rhs == Sign::kNegative)) {
        return Sign::kNonNegative;
      }
      return Sign::kUnknown;
    default:
      if (IsComparison(ast.op) || ast.op == BinaryOp::kAnd ||
          ast.op == BinaryOp::kOr) {
        return Sign::kNonNegative;  // boolean 0/1
      }
      return Sign::kUnknown;
  }
}

namespace {

/// Checks one (possibly negated) predicate node. Conjunctions and
/// disjunctions recurse; a comparison touching the aggregate column must
/// bound it from the direction the head aggregate prunes towards.
bool PredicateCompatibleImpl(const AstExpr& pred,
                             const std::string& binding_name,
                             const std::string& agg_column_name,
                             AggregateFunction aggregate, bool negated,
                             std::string* offending) {
  if (!ReferencesColumn(pred, binding_name, agg_column_name)) return true;
  if (pred.kind == AstExpr::Kind::kNot) {
    return PredicateCompatibleImpl(*pred.lhs, binding_name, agg_column_name,
                                   aggregate, !negated, offending);
  }
  if (pred.kind == AstExpr::Kind::kBinary &&
      (pred.op == BinaryOp::kAnd || pred.op == BinaryOp::kOr)) {
    // Under negation De Morgan swaps AND/OR but both operands still must
    // be individually compatible, so the recursion is symmetric.
    return PredicateCompatibleImpl(*pred.lhs, binding_name, agg_column_name,
                                   aggregate, negated, offending) &&
           PredicateCompatibleImpl(*pred.rhs, binding_name, agg_column_name,
                                   aggregate, negated, offending);
  }
  if (pred.kind == AstExpr::Kind::kBinary && IsComparison(pred.op)) {
    // Normalize to `agg OP constant-side`.
    const bool agg_left =
        ReferencesColumn(*pred.lhs, binding_name, agg_column_name);
    const bool agg_right =
        ReferencesColumn(*pred.rhs, binding_name, agg_column_name);
    if (agg_left != agg_right) {
      const AstExpr& agg_side = agg_left ? *pred.lhs : *pred.rhs;
      // The aggregate side must itself be order-preserving in the
      // aggregate (e.g. `path.Cost + edge.Cost <= 100` is fine).
      if (ClassifyMonotonicity(agg_side, binding_name, agg_column_name) ==
          Monotonicity::kMonotone) {
        BinaryOp op = pred.op;
        if (agg_right) {  // mirror `k OP agg` to `agg OP' k`
          switch (op) {
            case BinaryOp::kLt: op = BinaryOp::kGt; break;
            case BinaryOp::kLe: op = BinaryOp::kGe; break;
            case BinaryOp::kGt: op = BinaryOp::kLt; break;
            case BinaryOp::kGe: op = BinaryOp::kLe; break;
            default: break;
          }
        }
        if (negated) {  // NOT (agg < k) == agg >= k
          switch (op) {
            case BinaryOp::kLt: op = BinaryOp::kGe; break;
            case BinaryOp::kLe: op = BinaryOp::kGt; break;
            case BinaryOp::kGt: op = BinaryOp::kLe; break;
            case BinaryOp::kGe: op = BinaryOp::kLt; break;
            case BinaryOp::kEq: op = BinaryOp::kNe; break;
            case BinaryOp::kNe: op = BinaryOp::kEq; break;
            default: break;
          }
        }
        // min() prunes upwards: keeping small values (downward-closed
        // filters) commutes with taking the minimum. Dually for max().
        const bool downward = op == BinaryOp::kLt || op == BinaryOp::kLe;
        const bool upward = op == BinaryOp::kGt || op == BinaryOp::kGe;
        if (aggregate == AggregateFunction::kMin && downward) return true;
        if (aggregate == AggregateFunction::kMax && upward) return true;
      }
    }
  }
  if (offending != nullptr && offending->empty()) {
    *offending = pred.ToString();
  }
  return false;
}

}  // namespace

bool PredicateCompatibleWithAggregate(const AstExpr& predicate,
                                      const std::string& binding_name,
                                      const std::string& agg_column_name,
                                      AggregateFunction aggregate,
                                      std::string* offending) {
  return PredicateCompatibleImpl(predicate, binding_name, agg_column_name,
                                 aggregate, /*negated=*/false, offending);
}

SemiNaiveSafety AnalyzeSemiNaiveSafety(const sql::CteDef& cte,
                                       const std::string& view_name,
                                       int agg_column,
                                       const std::string& agg_column_name,
                                       AggregateFunction aggregate,
                                       size_t clique_size) {
  SemiNaiveSafety verdict;
  if (clique_size > 1) {
    verdict.kind = SemiNaiveSafety::Kind::kMutualRecursion;
    verdict.reason =
        "view is part of a mutually recursive clique; delta-based "
        "(semi-naive) evaluation is not exact, the naive fixpoint is used";
    return verdict;
  }
  if (aggregate != AggregateFunction::kSum &&
      aggregate != AggregateFunction::kCount) {
    return verdict;  // min/max and aggregate-free views are delta-exact
  }
  for (const sql::SelectStmtPtr& branch : cte.branches) {
    std::vector<std::string> self_bindings;
    for (const sql::TableRef& ref : branch->from) {
      if (EqualsIgnoreCase(ref.table_name, view_name)) {
        self_bindings.push_back(ref.BindingName());
      }
    }
    if (self_bindings.empty()) continue;  // base branch
    if (self_bindings.size() > 1) {
      verdict.kind = SemiNaiveSafety::Kind::kMultipleRefs;
      verdict.reason =
          "a recursive branch references the view more than once; "
          "sum/count deltas would double-count, the naive fixpoint is used";
      return verdict;
    }
    const std::string& binding = self_bindings[0];
    if (branch->where &&
        ReferencesColumn(*branch->where, binding, agg_column_name)) {
      verdict.kind = SemiNaiveSafety::Kind::kNonLinearAgg;
      verdict.reason =
          "the running " +
          std::string(expr::AggregateFunctionName(aggregate)) +
          " column '" + agg_column_name +
          "' is filtered in a recursive branch; partial counts would be "
          "compared, the naive fixpoint is used";
      verdict.snippet = branch->where->ToString();
      return verdict;
    }
    for (size_t c = 0; c < branch->items.size(); ++c) {
      const AstExpr& item = *branch->items[c].expr;
      if (static_cast<int>(c) == agg_column) {
        if (!IsLinearInAggColumn(item, binding, agg_column_name)) {
          verdict.kind = SemiNaiveSafety::Kind::kNonLinearAgg;
          verdict.reason =
              "the " + std::string(expr::AggregateFunctionName(aggregate)) +
              " contribution is not linear in the aggregate column '" +
              agg_column_name +
              "' (allowed: the column itself or column * literal); "
              "delta propagation would be inexact, the naive fixpoint "
              "is used";
          verdict.snippet = item.ToString();
          return verdict;
        }
      } else if (ReferencesColumn(item, binding, agg_column_name)) {
        const std::string key_name = c < cte.columns.size()
                                         ? cte.columns[c].name
                                         : "#" + std::to_string(c);
        verdict.kind = SemiNaiveSafety::Kind::kNonLinearAgg;
        verdict.reason =
            "the running aggregate column '" + agg_column_name +
            "' leaks into group-key column '" + key_name +
            "'; keys would depend on partial counts, the naive fixpoint "
            "is used";
        verdict.snippet = item.ToString();
        return verdict;
      }
    }
  }
  return verdict;
}

}  // namespace rasql::lint
