#ifndef RASQL_LINT_DIAGNOSTIC_H_
#define RASQL_LINT_DIAGNOSTIC_H_

#include <string>
#include <vector>

namespace rasql::lint {

/// Severity of a lint diagnostic, ordered so that higher = worse.
enum class Severity {
  kNote = 0,   ///< informational (e.g. "statically proven PreM-safe")
  kWarning,    ///< query runs, but a fallback or runtime check is advised
  kError,      ///< query is provably wrong or rejected by analysis
};

/// "note", "warning", "error".
const char* SeverityName(Severity severity);

/// One structured finding of the static analyzer. `code` is a stable
/// identifier from the rule catalog (DESIGN.md §6), e.g. "RASQL-M001".
/// The parser does not track byte offsets, so `snippet` carries the
/// rendering of the offending AST fragment as the source span surrogate.
struct Diagnostic {
  Severity severity = Severity::kNote;
  std::string code;     ///< rule id, e.g. "RASQL-M001"
  std::string message;  ///< human-readable explanation + suggested action
  std::string view;     ///< recursive view the finding is about ("" = query)
  std::string snippet;  ///< offending expression/branch rendering ("" = none)

  /// "error [RASQL-M001] view 'p': message (at: snippet)".
  std::string ToString() const;
};

/// Collects diagnostics across analysis passes. Reusable: the analyzer,
/// the lint rules and (later) the optimizer can all report through one
/// engine, and callers decide what severity gates execution.
class DiagnosticEngine {
 public:
  void Report(Diagnostic diagnostic);

  /// Convenience: build-and-report.
  void Report(Severity severity, std::string code, std::string message,
              std::string view = "", std::string snippet = "");

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

  int CountAtLeast(Severity severity) const;
  bool HasErrors() const { return CountAtLeast(Severity::kError) > 0; }
  bool HasWarnings() const { return CountAtLeast(Severity::kWarning) > 0; }

  /// True when `view` has at least one diagnostic at `severity` or worse.
  bool ViewHasAtLeast(const std::string& view, Severity severity) const;

  /// Multi-line report, worst findings first (stable within a severity).
  std::string ToString() const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace rasql::lint

#endif  // RASQL_LINT_DIAGNOSTIC_H_
