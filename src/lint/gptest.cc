#include "lint/gptest.h"

#include <unordered_set>

#include "analysis/analyzer.h"
#include "dist/aggregates.h"
#include "dist/set_rdd.h"
#include "physical/executor.h"
#include "sql/parser.h"

namespace rasql::lint {

using analysis::RecursiveView;
using common::Result;
using common::Status;
using dist::AggSpec;
using storage::Relation;
using storage::Row;

namespace {

/// One naive step T over the given state: evaluates all recursive plans
/// with every reference bound to `state`.
Result<std::vector<Row>> Step(
    const RecursiveView& view,
    const std::map<std::string, const Relation*>& tables,
    const Relation& state) {
  physical::ExecContext ctx;
  ctx.tables = tables;
  ctx.recursive_resolver =
      [&](const plan::RecursiveRefNode&) -> const Relation* {
    return &state;
  };
  std::vector<Row> out;
  for (const plan::PlanPtr& p : view.recursive_plans) {
    RASQL_ASSIGN_OR_RETURN(Relation rel, physical::Execute(*p, ctx));
    for (Row& row : rel.TakeRows()) out.push_back(std::move(row));
  }
  return out;
}

}  // namespace

Result<PremCheckResult> ValidatePrem(
    const std::string& sql,
    const std::map<std::string, const Relation*>& tables,
    int max_iterations) {
  // Parse and analyze against a catalog synthesized from the bindings.
  RASQL_ASSIGN_OR_RETURN(sql::Query query, sql::Parser::ParseQuery(sql));
  analysis::Catalog catalog;
  for (const auto& [name, rel] : tables) {
    catalog.PutTable(name, rel->schema());
  }
  analysis::Analyzer analyzer(&catalog);
  RASQL_ASSIGN_OR_RETURN(analysis::AnalyzedQuery analyzed,
                         analyzer.Analyze(query));

  const RecursiveView* view = nullptr;
  for (const analysis::RecursiveClique& clique : analyzed.cliques) {
    if (!clique.IsRecursive()) continue;
    if (view != nullptr || clique.views.size() != 1) {
      return Status::InvalidArgument(
          "PreM validation expects exactly one recursive view");
    }
    view = &clique.views[0];
  }
  if (view == nullptr) {
    return Status::InvalidArgument("query has no recursive view");
  }
  if (view->aggregate != expr::AggregateFunction::kMin &&
      view->aggregate != expr::AggregateFunction::kMax) {
    return Status::InvalidArgument(
        "PreM validation applies to min()/max() heads; sum/count rest on "
        "the monotonic-count argument (paper Sec. 3)");
  }

  const AggSpec spec = AggSpec::For(view->schema.num_columns(),
                                    view->agg_column, view->aggregate);

  // Base case feeds both fixpoints.
  physical::ExecContext base_ctx;
  base_ctx.tables = tables;
  std::vector<Row> base_rows;
  for (const plan::PlanPtr& p : view->base_plans) {
    RASQL_ASSIGN_OR_RETURN(Relation rel, physical::Execute(*p, base_ctx));
    for (Row& row : rel.TakeRows()) base_rows.push_back(std::move(row));
  }

  // X: the aggregated fixpoint (the original query). Merge semantics via
  // the same state structure the engine uses.
  dist::SetRddPartition x_state(view->schema, spec);
  std::vector<Row> x_delta;
  x_state.MergeDelta(dist::PartialAggregate(base_rows, spec), &x_delta);

  // Y: the unaggregated fixpoint (the Appendix-G `all` view): plain set
  // accumulation of every derived tuple.
  dist::SetRddPartition y_state(
      view->schema,
      AggSpec::For(view->schema.num_columns(), -1,
                   expr::AggregateFunction::kNone));
  std::vector<Row> y_delta;
  y_state.MergeDelta(base_rows, &y_delta);

  PremCheckResult result;
  while (true) {
    // Invariant under PreM: γ(Y_n) == X_n.
    Relation gamma_y(view->schema,
                     dist::PartialAggregate(y_state.ToRelation(), spec));
    Relation x = x_state.ToRelation();
    if (!storage::SameBag(gamma_y, x)) {
      result.holds = false;
      result.message = "PreM violated at iteration " +
                       std::to_string(result.iterations_checked) +
                       ": gamma(T(X)) != gamma(T(gamma(X))) — " +
                       std::to_string(gamma_y.size()) + " vs " +
                       std::to_string(x.size()) + " aggregated groups";
      return result;
    }

    if (y_delta.empty() && x_delta.empty()) break;
    if (result.iterations_checked >= max_iterations) {
      result.exhausted_limit = true;
      break;
    }
    ++result.iterations_checked;

    // Advance X by one aggregated step.
    if (!x_delta.empty()) {
      Relation x_rel = x_state.ToRelation();
      RASQL_ASSIGN_OR_RETURN(std::vector<Row> x_candidates,
                             Step(*view, tables, x_rel));
      x_delta.clear();
      x_state.MergeDelta(dist::PartialAggregate(std::move(x_candidates),
                                                spec),
                         &x_delta);
    }
    // Advance Y by one unaggregated step.
    if (!y_delta.empty()) {
      Relation y_rel = y_state.ToRelation();
      RASQL_ASSIGN_OR_RETURN(std::vector<Row> y_candidates,
                             Step(*view, tables, y_rel));
      y_delta.clear();
      y_state.MergeDelta(y_candidates, &y_delta);
    }
  }

  result.holds = true;
  result.message =
      result.exhausted_limit
          ? "PreM held for all " + std::to_string(result.iterations_checked) +
                " checked iterations (unaggregated recursion still active "
                "at the cap)"
          : "PreM held through fixpoint (" +
                std::to_string(result.iterations_checked) + " iterations)";
  return result;
}

}  // namespace rasql::lint
