#ifndef RASQL_LINT_LINTER_H_
#define RASQL_LINT_LINTER_H_

#include <string>
#include <vector>

#include "analysis/catalog.h"
#include "common/status.h"
#include "lint/diagnostic.h"
#include "sql/ast.h"

namespace rasql::lint {

/// Execution-gating policy for lint findings.
struct LintOptions {
  /// Treat warnings as execution blockers (`--werror-lint`).
  bool werror = false;
};

/// Outcome of statically analyzing one query (or script): the structured
/// diagnostics plus the PreM provability summary. The static pass is the
/// compile-time complement of the runtime GPtest (lint::ValidatePrem,
/// Appendix G): views it *proves* need no runtime check, views it cannot
/// prove are listed in `gptest_recommended`.
struct LintReport {
  DiagnosticEngine engine;
  /// Recursive views whose head was statically proven safe (PreM for
  /// min/max, monotonic-count for sum/count, monotone RA when
  /// aggregate-free).
  std::vector<std::string> proven_views;
  /// Views whose safety is unproven but not refuted; run the dynamic
  /// GPtest (lint::ValidatePrem) on representative data for these.
  std::vector<std::string> gptest_recommended;

  bool HasErrors() const { return engine.HasErrors(); }

  /// True when the findings should refuse execution under `options`.
  bool BlocksExecution(const LintOptions& options) const {
    return engine.HasErrors() || (options.werror && engine.HasWarnings());
  }

  /// Summary line + sorted diagnostics + provability lists.
  std::string ToString() const;
};

/// Rule-driven static analyzer over analyzed RaSQL queries. The rule
/// catalog (codes RASQL-*) is documented in DESIGN.md §6. The linter
/// copies the catalog so CREATE VIEW statements in a script can register
/// their schemas without mutating engine state.
class Linter {
 public:
  explicit Linter(const analysis::Catalog* catalog) : catalog_(*catalog) {}

  /// Lints one parsed query: AST pre-checks, full semantic analysis (its
  /// diagnostics and failures are captured in the report, never thrown),
  /// and the per-view PreM/monotonicity rules.
  LintReport LintQuery(const sql::Query& query);

  /// Parses and lints a `;`-separated script; reports of all query
  /// statements are merged. Returns a Status only for parse failures.
  common::Result<LintReport> LintSql(const std::string& sql);

 private:
  analysis::Catalog catalog_;
};

}  // namespace rasql::lint

#endif  // RASQL_LINT_LINTER_H_
