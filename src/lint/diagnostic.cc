#include "lint/diagnostic.h"

#include <algorithm>

namespace rasql::lint {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string Diagnostic::ToString() const {
  std::string out = SeverityName(severity);
  out += " [";
  out += code;
  out += "]";
  if (!view.empty()) {
    out += " view '";
    out += view;
    out += "'";
  }
  out += ": ";
  out += message;
  if (!snippet.empty()) {
    out += " (at: ";
    out += snippet;
    out += ")";
  }
  return out;
}

void DiagnosticEngine::Report(Diagnostic diagnostic) {
  diagnostics_.push_back(std::move(diagnostic));
}

void DiagnosticEngine::Report(Severity severity, std::string code,
                              std::string message, std::string view,
                              std::string snippet) {
  Report(Diagnostic{severity, std::move(code), std::move(message),
                    std::move(view), std::move(snippet)});
}

int DiagnosticEngine::CountAtLeast(Severity severity) const {
  int count = 0;
  for (const Diagnostic& d : diagnostics_) {
    count += d.severity >= severity;
  }
  return count;
}

bool DiagnosticEngine::ViewHasAtLeast(const std::string& view,
                                      Severity severity) const {
  for (const Diagnostic& d : diagnostics_) {
    if (d.view == view && d.severity >= severity) return true;
  }
  return false;
}

std::string DiagnosticEngine::ToString() const {
  std::vector<const Diagnostic*> sorted;
  sorted.reserve(diagnostics_.size());
  for (const Diagnostic& d : diagnostics_) sorted.push_back(&d);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Diagnostic* a, const Diagnostic* b) {
                     return a->severity > b->severity;
                   });
  std::string out;
  for (const Diagnostic* d : sorted) {
    out += d->ToString();
    out += "\n";
  }
  return out;
}

}  // namespace rasql::lint
