#ifndef RASQL_LINT_GPTEST_H_
#define RASQL_LINT_GPTEST_H_

#include <map>
#include <string>

#include "common/status.h"
#include "storage/relation.h"

namespace rasql::lint {

/// Outcome of a PreM auto-validation run (the paper's GPtest, Appendix G).
struct PremCheckResult {
  /// True when γ(T(γ(X))) = γ(T(X)) held at every checked step.
  bool holds = false;
  int iterations_checked = 0;
  /// True when the unaggregated recursion was still producing new tuples
  /// at the iteration cap (e.g. cyclic SSSP): PreM held as far as testing
  /// could see, which is the best a test (vs a proof) gives.
  bool exhausted_limit = false;
  /// Human-readable explanation, including the first violating iteration.
  std::string message;
};

/// Validates the PreM property for a RaSQL query with a min()/max() head
/// by co-evaluating the original query and its PreM-checking rewrite
/// (Appendix G): the aggregated fixpoint X_n and the unaggregated fixpoint
/// Y_n advance in lockstep, and γ(Y_n) must equal X_n at every step.
///
/// This is the *runtime* oracle in the two-tier PreM story (DESIGN.md §6),
/// living beside the compile-time tier so the two cannot drift apart:
/// the linter (linter.h) proves the common shapes outright;
/// for views it reports as unproven (RASQL-M002/M003/A002, listed in
/// LintReport::gptest_recommended) this per-dataset test is the
/// recommended fallback.
///
/// `sql` must be a single-query statement with exactly one recursive view
/// whose head aggregate is min or max (the aggregates PreM testing is
/// defined for — sum/count rest on the monotonic-count argument instead,
/// paper Sec. 3). `tables` binds the base relations.
common::Result<PremCheckResult> ValidatePrem(
    const std::string& sql,
    const std::map<std::string, const storage::Relation*>& tables,
    int max_iterations = 25);

}  // namespace rasql::lint

#endif  // RASQL_LINT_GPTEST_H_
