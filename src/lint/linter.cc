#include "lint/linter.h"

#include <map>
#include <set>

#include "analysis/analyzer.h"
#include "lint/monotonicity.h"
#include "sql/parser.h"
#include "storage/schema.h"

namespace rasql::lint {

using analysis::AnalyzedQuery;
using analysis::RecursiveClique;
using analysis::RecursiveView;
using expr::AggregateFunction;
using sql::AstExpr;
using storage::EqualsIgnoreCase;
using storage::ToLower;

namespace {

/// Diagnostic codes that bear on head-safety provability. Strategy-only
/// findings (the semi-naive fallbacks) do not refute the head: RASQL-N001
/// never does, and RASQL-N002 (mutual recursion) only matters when an
/// aggregate head exists whose value could flow through sibling views.
bool CodeAffectsProvability(const std::string& code,
                            expr::AggregateFunction aggregate) {
  if (code == "RASQL-N001") return false;
  if (code == "RASQL-N002") {
    return aggregate != expr::AggregateFunction::kNone;
  }
  return true;
}

/// True when `ast` references the binding: a column qualified with the
/// binding name, or an unqualified column named like one of the binding's
/// schema columns.
bool ReferencesBinding(const AstExpr& ast, const std::string& binding_name,
                       const storage::Schema& schema) {
  if (ast.kind == AstExpr::Kind::kColumn) {
    if (!ast.qualifier.empty()) {
      return EqualsIgnoreCase(ast.qualifier, binding_name);
    }
    return schema.FindColumn(ast.name) >= 0;
  }
  if (ast.lhs && ReferencesBinding(*ast.lhs, binding_name, schema)) {
    return true;
  }
  if (ast.rhs && ReferencesBinding(*ast.rhs, binding_name, schema)) {
    return true;
  }
  return false;
}

/// True when a NOT node in `ast` encloses a reference to the aggregate
/// column (negation over the running aggregate).
bool HasNegationOverColumn(const AstExpr& ast, const std::string& binding,
                           const std::string& column) {
  if (ast.kind == AstExpr::Kind::kNot &&
      ReferencesColumn(*ast.lhs, binding, column)) {
    return true;
  }
  if (ast.lhs && HasNegationOverColumn(*ast.lhs, binding, column)) {
    return true;
  }
  if (ast.rhs && HasNegationOverColumn(*ast.rhs, binding, column)) {
    return true;
  }
  return false;
}

/// AST pre-pass for RASQL-A001: explicit aggregates / GROUP BY inside a
/// branch that references a view of the query. Runs before semantic
/// analysis so the finding is reported with its rule code even though the
/// analyzer would also reject the query.
void CheckExplicitAggregatesInRecursion(const sql::Query& query,
                                        DiagnosticEngine* engine) {
  std::set<std::string> view_names;
  for (const sql::CteDef& cte : query.ctes) {
    view_names.insert(ToLower(cte.name));
  }
  for (const sql::CteDef& cte : query.ctes) {
    for (const sql::SelectStmtPtr& branch : cte.branches) {
      bool references_view = false;
      for (const sql::TableRef& ref : branch->from) {
        references_view |= view_names.count(ToLower(ref.table_name)) > 0;
      }
      if (!references_view) continue;
      bool has_agg = !branch->group_by.empty();
      std::string snippet;
      for (const sql::SelectItem& item : branch->items) {
        if (analysis::ContainsAggCall(*item.expr)) {
          has_agg = true;
          if (snippet.empty()) snippet = item.expr->ToString();
        }
      }
      if (has_agg) {
        engine->Report(
            Severity::kError, "RASQL-A001",
            "explicit aggregate/GROUP BY inside a recursive branch cannot "
            "be pushed into the fixpoint; evaluation falls back to the "
            "stratified form — declare the aggregate in the view head "
            "(e.g. `min() AS Col`) or move it to the final SELECT",
            ToLower(cte.name), snippet);
      }
    }
  }
}

/// The min()/max() PreM rules (RASQL-M001/M002/M003, A002, K001) for one
/// recursive branch of `view`, with `binding` one of the branch's
/// references to the view itself.
void CheckMinMaxBranch(const RecursiveView& view, const sql::CteDef& cte,
                       const sql::SelectStmt& branch,
                       const std::string& binding,
                       DiagnosticEngine* engine) {
  const std::string& agg_name = view.schema.column(view.agg_column).name;
  const char* fn_name = expr::AggregateFunctionName(view.aggregate);
  for (size_t c = 0; c < branch.items.size(); ++c) {
    const AstExpr& item = *branch.items[c].expr;
    if (static_cast<int>(c) == view.agg_column) {
      switch (ClassifyMonotonicity(item, binding, agg_name)) {
        case Monotonicity::kConstant:
        case Monotonicity::kMonotone:
          break;
        case Monotonicity::kAntitone:
          engine->Report(
              Severity::kError, "RASQL-M001",
              "the " + std::string(fn_name) + "() column '" + agg_name +
                  "' flows through an order-reversing operation in a "
                  "recursive branch; PreM provably fails — the early "
                  "aggregate discards the tuple that optimizes the head "
                  "after the reversal",
              view.name, item.ToString());
          break;
        case Monotonicity::kUnknown:
          engine->Report(
              Severity::kWarning, "RASQL-M002",
              "the " + std::string(fn_name) + "() column '" + agg_name +
                  "' flows through operations outside the monotone "
                  "catalog (+/- constant, * positive constant); PreM is "
                  "unproven — validate on representative data with the "
                  "runtime GPtest (lint::ValidatePrem) before trusting "
                  "results",
              view.name, item.ToString());
          break;
      }
    } else if (ReferencesColumn(item, binding, agg_name)) {
      const std::string key_name = c < cte.columns.size()
                                       ? cte.columns[c].name
                                       : "#" + std::to_string(c);
      engine->Report(
          Severity::kError, "RASQL-K001",
          "implicit group-by key '" + key_name +
              "' is computed from the running aggregate column '" +
              agg_name +
              "'; group keys would shift between fixpoint iterations, "
              "which breaks the implicit group-by semantics",
          view.name, item.ToString());
    }
  }
  if (branch.where != nullptr) {
    if (HasNegationOverColumn(*branch.where, binding, agg_name)) {
      engine->Report(
          Severity::kWarning, "RASQL-A002",
          "negation over the running aggregate column '" + agg_name +
              "' inside recursion is not order-compatible with the " +
              std::string(fn_name) +
              "() head; PreM is unproven — run the GPtest "
              "(lint::ValidatePrem) or stratify the query",
          view.name, branch.where->ToString());
    } else {
      std::string offending;
      if (!PredicateCompatibleWithAggregate(*branch.where, binding, agg_name,
                                            view.aggregate, &offending)) {
        engine->Report(
            Severity::kWarning, "RASQL-M003",
            "a recursive branch filters the aggregate column '" + agg_name +
                "' in a direction the " + std::string(fn_name) +
                "() head does not preserve; PreM is unproven — run the "
                "GPtest (lint::ValidatePrem) on representative data",
            view.name, offending);
      }
    }
  }
}

/// The sum()/count() monotonic-count rules (RASQL-S001/S002, K001) for one
/// branch. `binding` is empty for base branches: contributions must then
/// be non-negative on their own (no inductive aggregate-column case).
void CheckSumCountBranch(const RecursiveView& view, const sql::CteDef& cte,
                         const sql::SelectStmt& branch,
                         const std::string& binding,
                         DiagnosticEngine* engine) {
  const std::string& agg_name = view.schema.column(view.agg_column).name;
  const std::string agg_for_sign = binding.empty() ? "" : agg_name;
  const char* fn_name = expr::AggregateFunctionName(view.aggregate);
  for (size_t c = 0; c < branch.items.size(); ++c) {
    const AstExpr& item = *branch.items[c].expr;
    if (static_cast<int>(c) == view.agg_column) {
      switch (ClassifySign(item, binding, agg_for_sign)) {
        case Sign::kNonNegative:
          break;
        case Sign::kNegative:
          engine->Report(
              Severity::kError, "RASQL-S001",
              "a " + std::string(fn_name) + "() contribution to '" +
                  agg_name +
                  "' is provably negative; the monotonic-count argument "
                  "(paper Sec. 3) requires non-negative contributions, so "
                  "the recursion is provably non-monotone",
              view.name, item.ToString());
          break;
        case Sign::kUnknown:
          engine->Report(
              Severity::kWarning, "RASQL-S002",
              "a " + std::string(fn_name) + "() contribution to '" +
                  agg_name +
                  "' is not provably non-negative; the monotonic-count "
                  "argument needs non-negative contributions — verify the "
                  "data or filter out negative values",
              view.name, item.ToString());
          break;
      }
    } else if (!binding.empty() &&
               ReferencesColumn(item, binding, agg_name)) {
      const std::string key_name = c < cte.columns.size()
                                       ? cte.columns[c].name
                                       : "#" + std::to_string(c);
      engine->Report(
          Severity::kError, "RASQL-K001",
          "implicit group-by key '" + key_name +
              "' is computed from the running aggregate column '" +
              agg_name +
              "'; group keys would shift between fixpoint iterations, "
              "which breaks the implicit group-by semantics",
          view.name, item.ToString());
    }
  }
}

/// RASQL-U001: a recursive branch that joins the recursive reference with
/// no predicate touching it evaluates a cross product each iteration.
void CheckUnconstrainedRecursion(const RecursiveView& view,
                                 const sql::SelectStmt& branch,
                                 const std::vector<std::string>& bindings,
                                 DiagnosticEngine* engine) {
  if (branch.from.size() <= 1) return;
  for (const std::string& binding : bindings) {
    if (branch.where != nullptr &&
        ReferencesBinding(*branch.where, binding, view.schema)) {
      continue;
    }
    engine->Report(
        Severity::kWarning, "RASQL-U001",
        "recursive reference '" + binding +
            "' is joined without any predicate referencing it (cross "
            "product); every iteration recombines all tuples, which "
            "rarely terminates — add a join condition",
        view.name, branch.ToString());
  }
}

}  // namespace

std::string LintReport::ToString() const {
  const int errors = engine.CountAtLeast(Severity::kError);
  const int warnings =
      engine.CountAtLeast(Severity::kWarning) - errors;
  const int notes =
      static_cast<int>(engine.diagnostics().size()) -
      engine.CountAtLeast(Severity::kWarning);
  std::string out = "lint: " + std::to_string(errors) + " error(s), " +
                    std::to_string(warnings) + " warning(s), " +
                    std::to_string(notes) + " note(s)\n";
  out += engine.ToString();
  if (!proven_views.empty()) {
    out += "statically proven safe:";
    for (const std::string& v : proven_views) out += " " + v;
    out += "\n";
  }
  if (!gptest_recommended.empty()) {
    out += "runtime GPtest (lint::ValidatePrem) recommended:";
    for (const std::string& v : gptest_recommended) out += " " + v;
    out += "\n";
  }
  return out;
}

LintReport Linter::LintQuery(const sql::Query& query) {
  LintReport report;
  CheckExplicitAggregatesInRecursion(query, &report.engine);

  analysis::Analyzer analyzer(&catalog_);
  analyzer.set_diagnostics(&report.engine);
  common::Result<AnalyzedQuery> analyzed = analyzer.Analyze(query);
  if (!analyzed.ok()) {
    // The AST pre-pass may already explain the failure with a specific
    // rule; only add the generic analysis error when it does not.
    if (!report.engine.HasErrors()) {
      report.engine.Report(Severity::kError, "RASQL-E000",
                           analyzed.status().ToString());
    }
    return report;
  }

  // Index the AST views by canonical name for branch-level rules.
  std::map<std::string, const sql::CteDef*> ctes;
  for (const sql::CteDef& cte : query.ctes) {
    ctes[ToLower(cte.name)] = &cte;
  }

  for (const RecursiveClique& clique : analyzed->cliques) {
    if (!clique.IsRecursive()) continue;
    for (const RecursiveView& view : clique.views) {
      const sql::CteDef* cte = ctes[view.name];
      if (cte == nullptr) continue;  // defensive; analyzer built the view
      const bool min_max = view.aggregate == AggregateFunction::kMin ||
                           view.aggregate == AggregateFunction::kMax;
      const bool sum_count = view.aggregate == AggregateFunction::kSum ||
                             view.aggregate == AggregateFunction::kCount;
      for (const sql::SelectStmtPtr& branch : cte->branches) {
        std::vector<std::string> self_bindings;
        for (const sql::TableRef& ref : branch->from) {
          if (EqualsIgnoreCase(ref.table_name, view.name)) {
            self_bindings.push_back(ref.BindingName());
          }
        }
        if (self_bindings.empty()) {
          // Base branch: sum/count contributions must stand on their own.
          if (sum_count) {
            CheckSumCountBranch(view, *cte, *branch, "", &report.engine);
          }
          continue;
        }
        CheckUnconstrainedRecursion(view, *branch, self_bindings,
                                    &report.engine);
        for (const std::string& binding : self_bindings) {
          if (min_max) {
            CheckMinMaxBranch(view, *cte, *branch, binding, &report.engine);
          } else if (sum_count) {
            CheckSumCountBranch(view, *cte, *branch, binding,
                                &report.engine);
          }
        }
      }

      // Provability verdict for the view: safe unless some rule at
      // warning level or above refutes or fails to prove the head.
      bool proven = true;
      for (const Diagnostic& d : report.engine.diagnostics()) {
        if (d.view == view.name && d.severity >= Severity::kWarning &&
            CodeAffectsProvability(d.code, view.aggregate)) {
          proven = false;
          break;
        }
      }
      if (proven) {
        report.proven_views.push_back(view.name);
        if (min_max) {
          report.engine.Report(
              Severity::kNote, "RASQL-P000",
              "statically proven PreM-safe: the " +
                  std::string(expr::AggregateFunctionName(view.aggregate)) +
                  "() value flows only through order-preserving "
                  "operations; no runtime GPtest needed",
              view.name);
        } else if (sum_count) {
          report.engine.Report(
              Severity::kNote, "RASQL-P001",
              "statically proven monotone: every " +
                  std::string(expr::AggregateFunctionName(view.aggregate)) +
                  "() contribution is provably non-negative "
                  "(monotonic-count argument)",
              view.name);
        } else {
          report.engine.Report(
              Severity::kNote, "RASQL-P002",
              "aggregate-free recursion over monotone relational algebra; "
              "the fixpoint is exact by Knaster-Tarski",
              view.name);
        }
      } else if (min_max &&
                 !report.engine.ViewHasAtLeast(view.name,
                                               Severity::kError)) {
        // Unproven but not refuted: the dynamic oracle can still certify.
        report.gptest_recommended.push_back(view.name);
      }
    }
  }
  return report;
}

common::Result<LintReport> Linter::LintSql(const std::string& sql) {
  RASQL_ASSIGN_OR_RETURN(std::vector<sql::Statement> statements,
                         sql::Parser::ParseScript(sql));
  LintReport merged;
  for (const sql::Statement& stmt : statements) {
    if (stmt.kind == sql::Statement::Kind::kCreateView) {
      // Register the view schema (named columns) so later statements in
      // the script resolve; analysis failures become diagnostics.
      analysis::Analyzer analyzer(&catalog_);
      common::Result<plan::PlanPtr> view_plan =
          analyzer.AnalyzeSelect(*stmt.create_view->definition);
      if (!view_plan.ok()) {
        merged.engine.Report(Severity::kError, "RASQL-E000",
                             view_plan.status().ToString(),
                             ToLower(stmt.create_view->name));
        continue;
      }
      std::vector<storage::Column> cols = (*view_plan)->schema().columns();
      for (size_t i = 0;
           i < cols.size() && i < stmt.create_view->columns.size(); ++i) {
        cols[i].name = stmt.create_view->columns[i];
      }
      catalog_.PutTable(stmt.create_view->name,
                        storage::Schema(std::move(cols)));
      continue;
    }
    LintReport report = LintQuery(*stmt.query);
    for (const Diagnostic& d : report.engine.diagnostics()) {
      merged.engine.Report(d);
    }
    for (std::string& v : report.proven_views) {
      merged.proven_views.push_back(std::move(v));
    }
    for (std::string& v : report.gptest_recommended) {
      merged.gptest_recommended.push_back(std::move(v));
    }
  }
  return merged;
}

}  // namespace rasql::lint
