#ifndef RASQL_LINT_MONOTONICITY_H_
#define RASQL_LINT_MONOTONICITY_H_

#include <string>

#include "expr/expr.h"
#include "sql/ast.h"

namespace rasql::lint {

/// How an expression varies with the aggregate column of a recursive
/// binding, under the aggregate's natural order. The classification is the
/// syntactic core of the static PreM check (companion papers
/// arXiv:1910.08888, arXiv:1707.05681): min()/max() heads are PreM-provable
/// when the aggregate value flows through the recursive branch only via
/// order-preserving operations.
enum class Monotonicity {
  kConstant,  ///< does not depend on the aggregate column
  kMonotone,  ///< order-preserving in the aggregate column (+c, *k with k>0)
  kAntitone,  ///< provably order-reversing (negation, *k with k<0)
  kUnknown,   ///< not in the monotone catalog; needs the runtime GPtest
};

/// Sign of an expression's value, for the monotonic-count argument
/// (paper Sec. 3): sum()/count() heads stay monotone when every
/// contribution is non-negative. The aggregate column itself classifies as
/// non-negative inductively (base contributions are checked separately).
enum class Sign {
  kNonNegative,  ///< provably >= 0
  kNegative,     ///< provably < 0
  kUnknown,      ///< sign not statically decidable
};

/// True when `ast` references column `column_name` of binding
/// `binding_name` (qualified with the binding name, or unqualified).
bool ReferencesColumn(const sql::AstExpr& ast, const std::string& binding_name,
                      const std::string& column_name);

/// True when `ast` is `ref.agg_col` or `ref.agg_col * literal` /
/// `literal * ref.agg_col` — the homogeneous-linear shapes under which
/// propagating sum/count *increments* is exact (DESIGN.md §4).
bool IsLinearInAggColumn(const sql::AstExpr& ast,
                         const std::string& binding_name,
                         const std::string& column_name);

/// Classifies how `ast` varies with `binding_name.agg_column_name`.
Monotonicity ClassifyMonotonicity(const sql::AstExpr& ast,
                                  const std::string& binding_name,
                                  const std::string& agg_column_name);

/// Classifies the sign of a sum()/count() contribution expression.
/// References to `binding_name.agg_column_name` count as non-negative
/// (the inductive case of the monotonic-count argument).
Sign ClassifySign(const sql::AstExpr& ast, const std::string& binding_name,
                  const std::string& agg_column_name);

/// Checks that a recursive-branch WHERE predicate constrains the aggregate
/// column only in directions compatible with the head aggregate: for min(),
/// downward-closed comparisons (`agg < k`, `agg <= k`); for max(), upward-
/// closed ones. Predicates not referencing the aggregate column are always
/// compatible. Returns false and fills `offending` with the first
/// incompatible sub-predicate's rendering otherwise.
bool PredicateCompatibleWithAggregate(const sql::AstExpr& predicate,
                                      const std::string& binding_name,
                                      const std::string& agg_column_name,
                                      expr::AggregateFunction aggregate,
                                      std::string* offending);

/// Verdict of the semi-naive safety analysis (DESIGN.md §4): whether
/// delta-based evaluation is exact for a view, and why not when it isn't.
struct SemiNaiveSafety {
  enum class Kind {
    kSafe = 0,
    kMutualRecursion,  ///< multi-view clique: naive fixpoint required
    kMultipleRefs,     ///< >1 self-reference in one branch
    kNonLinearAgg,     ///< sum/count column used outside the linear shapes
  };
  Kind kind = Kind::kSafe;
  bool safe() const { return kind == Kind::kSafe; }
  std::string reason;   ///< human-readable explanation; empty when safe
  std::string snippet;  ///< offending expression rendering; may be empty
};

/// Decides semi-naive safety for one view from its AST definition — the
/// single source of truth shared by analysis::Analyzer (which threads the
/// verdict into RecursiveView::semi_naive_safe) and the lint rule that
/// reports it (RASQL-N001/N002).
SemiNaiveSafety AnalyzeSemiNaiveSafety(const sql::CteDef& cte,
                                       const std::string& view_name,
                                       int agg_column,
                                       const std::string& agg_column_name,
                                       expr::AggregateFunction aggregate,
                                       size_t clique_size);

}  // namespace rasql::lint

#endif  // RASQL_LINT_MONOTONICITY_H_
