#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "analysis/catalog.h"
#include "physical/executor.h"
#include "plan/logical_plan.h"
#include "plan/optimizer.h"
#include "sql/parser.h"

namespace rasql::plan {
namespace {

using expr::BinaryOp;
using storage::MakeIntRelation;
using storage::Relation;
using storage::Schema;
using storage::Value;
using storage::ValueType;

expr::ExprPtr Col(int i, ValueType t = ValueType::kInt64) {
  return expr::MakeColumnRef(i, t);
}
expr::ExprPtr Lit(int64_t v) { return expr::MakeLiteral(Value::Int(v)); }

TEST(OptimizerExprTest, ConstantFolding) {
  auto e = expr::MakeBinary(BinaryOp::kAdd,
                            expr::MakeBinary(BinaryOp::kMul, Lit(3), Lit(4)),
                            Lit(5));
  auto folded = FoldConstants(std::move(e));
  ASSERT_EQ(folded->kind(), expr::Expr::Kind::kLiteral);
  EXPECT_EQ(static_cast<expr::LiteralExpr*>(folded.get())->value().AsInt(),
            17);
}

TEST(OptimizerExprTest, FoldingStopsAtColumns) {
  auto e = expr::MakeBinary(BinaryOp::kAdd, Col(0),
                            expr::MakeBinary(BinaryOp::kSub, Lit(8), Lit(3)));
  auto folded = FoldConstants(std::move(e));
  EXPECT_EQ(folded->ToString(), "(col#0 + 5)");
}

TEST(OptimizerExprTest, SplitAndCombineConjuncts) {
  auto e = expr::MakeBinary(
      BinaryOp::kAnd,
      expr::MakeBinary(BinaryOp::kAnd,
                       expr::MakeBinary(BinaryOp::kEq, Col(0), Lit(1)),
                       expr::MakeBinary(BinaryOp::kLt, Col(1), Lit(2))),
      expr::MakeBinary(BinaryOp::kGt, Col(2), Lit(3)));
  auto conjuncts = SplitConjuncts(std::move(e));
  EXPECT_EQ(conjuncts.size(), 3u);
  auto combined = CombineConjuncts(std::move(conjuncts));
  auto re_split = SplitConjuncts(std::move(combined));
  EXPECT_EQ(re_split.size(), 3u);
  EXPECT_EQ(CombineConjuncts({}), nullptr);
}

TEST(OptimizerExprTest, ShiftColumnRefs) {
  auto e = expr::MakeBinary(BinaryOp::kAdd, Col(2), Col(5));
  auto shifted = ShiftColumnRefs(*e, -2);
  std::vector<int> cols;
  CollectColumnRefs(*shifted, &cols);
  EXPECT_EQ(cols, (std::vector<int>{0, 3}));
}

class OptimizerPlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_
                    .RegisterTable("edge",
                                   Schema::Of({{"Src", ValueType::kInt64},
                                               {"Dst",
                                                ValueType::kInt64}}))
                    .ok());
    ASSERT_TRUE(catalog_
                    .RegisterTable("weight",
                                   Schema::Of({{"V", ValueType::kInt64},
                                               {"W",
                                                ValueType::kDouble}}))
                    .ok());
  }

  PlanPtr Plan(const std::string& sql,
               const OptimizerOptions& options = {}) {
    auto query = sql::Parser::ParseQuery(sql);
    EXPECT_TRUE(query.ok()) << query.status();
    analysis::Analyzer analyzer(&catalog_);
    auto analyzed = analyzer.Analyze(*query);
    EXPECT_TRUE(analyzed.ok()) << analyzed.status();
    return Optimize(std::move(analyzed->body), options);
  }

  analysis::Catalog catalog_;
};

TEST_F(OptimizerPlanTest, ExtractsEquiJoinKeys) {
  PlanPtr plan = Plan(
      "SELECT a.Src FROM edge a, edge b WHERE a.Dst = b.Src");
  // Project(Join(scan, scan)) with keys, no residual filter.
  ASSERT_EQ(plan->kind(), PlanKind::kProject);
  ASSERT_EQ(plan->child(0).kind(), PlanKind::kJoin);
  const auto& join = static_cast<const JoinNode&>(plan->child(0));
  EXPECT_FALSE(join.is_cross());
  EXPECT_EQ(join.left_keys(), (std::vector<int>{1}));
  EXPECT_EQ(join.right_keys(), (std::vector<int>{0}));
}

TEST_F(OptimizerPlanTest, PushesSingleSideFiltersToLeaves) {
  PlanPtr plan = Plan(
      "SELECT a.Src FROM edge a, edge b "
      "WHERE a.Dst = b.Src AND a.Src < 10 AND b.Dst > 5");
  const auto& join = static_cast<const JoinNode&>(plan->child(0));
  // Both single-table conjuncts sit below the join, on their own leaves.
  EXPECT_EQ(join.child(0).kind(), PlanKind::kFilter);
  EXPECT_EQ(join.child(1).kind(), PlanKind::kFilter);
  // Pushed predicates are rebased to leaf-local column indices.
  const auto& left_filter = static_cast<const FilterNode&>(join.child(0));
  std::vector<int> cols;
  CollectColumnRefs(left_filter.predicate(), &cols);
  EXPECT_EQ(cols, (std::vector<int>{0}));
}

TEST_F(OptimizerPlanTest, NonEquiConjunctStaysAboveJoin) {
  PlanPtr plan = Plan(
      "SELECT a.Src FROM edge a, edge b "
      "WHERE a.Dst = b.Src AND a.Src < b.Dst");
  ASSERT_EQ(plan->child(0).kind(), PlanKind::kFilter);
  EXPECT_EQ(plan->child(0).child(0).kind(), PlanKind::kJoin);
}

TEST_F(OptimizerPlanTest, ThreeWayJoinLeftDeep) {
  PlanPtr plan = Plan(
      "SELECT a.Src FROM edge a, edge b, edge c "
      "WHERE a.Dst = b.Src AND b.Dst = c.Src");
  const auto& top = static_cast<const JoinNode&>(plan->child(0));
  EXPECT_FALSE(top.is_cross());
  EXPECT_EQ(top.left_keys(), (std::vector<int>{3}));  // b.Dst
  const auto& inner = static_cast<const JoinNode&>(top.child(0));
  EXPECT_FALSE(inner.is_cross());
}

TEST_F(OptimizerPlanTest, RulesCanBeDisabled) {
  OptimizerOptions off;
  off.predicate_pushdown = false;
  PlanPtr plan = Plan(
      "SELECT a.Src FROM edge a, edge b WHERE a.Dst = b.Src", off);
  // Without pushdown the cross join + filter shape is preserved.
  ASSERT_EQ(plan->child(0).kind(), PlanKind::kFilter);
  EXPECT_EQ(plan->child(0).child(0).kind(), PlanKind::kJoin);
  EXPECT_TRUE(static_cast<const JoinNode&>(plan->child(0).child(0))
                  .is_cross());
}

TEST_F(OptimizerPlanTest, OptimizedAndUnoptimizedAgree) {
  Relation edges = MakeIntRelation(
      {"Src", "Dst"}, {{1, 2}, {2, 3}, {3, 4}, {2, 4}, {4, 1}});
  const char* sql =
      "SELECT a.Src, c.Dst FROM edge a, edge b, edge c "
      "WHERE a.Dst = b.Src AND b.Dst = c.Src AND a.Src < 4";
  physical::ExecContext ctx;
  ctx.tables["edge"] = &edges;

  PlanPtr optimized = Plan(sql);
  OptimizerOptions off;
  off.predicate_pushdown = false;
  off.constant_folding = false;
  off.filter_combination = false;
  PlanPtr unoptimized = Plan(sql, off);

  auto a = physical::Execute(*optimized, ctx);
  auto b = physical::Execute(*unoptimized, ctx);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(storage::SameBag(*a, *b));
  EXPECT_GT(a->size(), 0u);
}

TEST_F(OptimizerPlanTest, PlanCloneIsDeep) {
  PlanPtr plan = Plan(
      "SELECT a.Src, min(b.Dst) FROM edge a, edge b "
      "WHERE a.Dst = b.Src GROUP BY a.Src HAVING min(b.Dst) > 0 "
      "ORDER BY a.Src LIMIT 5");
  PlanPtr clone = plan->Clone();
  EXPECT_EQ(plan->ToString(), clone->ToString());
}

TEST_F(OptimizerPlanTest, ExplainRendering) {
  PlanPtr plan = Plan(
      "SELECT Src, count(*) FROM edge GROUP BY Src");
  const std::string rendered = plan->ToString();
  EXPECT_NE(rendered.find("Aggregate"), std::string::npos);
  EXPECT_NE(rendered.find("TableScan"), std::string::npos);
  EXPECT_NE(rendered.find("count"), std::string::npos);
}

}  // namespace
}  // namespace rasql::plan
