// Concurrency contract tests for RaSqlContext (DESIGN.md §12): multiple
// session threads interleaving queries over one shared catalog must
// produce bit-identical results and fixpoint statistics to a serial run,
// for engine thread counts {1, 2, 8}; writes serialize atomically against
// concurrent readers. ci.sh also builds this binary under TSan — the
// shared/exclusive locking in RaSqlContext is exactly what it probes.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/rasql_context.h"
#include "storage/relation.h"
#include "storage/result_format.h"

namespace rasql::engine {
namespace {

using storage::Relation;
using storage::ResultFormat;
using storage::Schema;
using storage::Value;
using storage::ValueType;

constexpr char kTc[] = R"(
    WITH recursive tc (Src, Dst) AS
      (SELECT Src, Dst FROM edge) UNION
      (SELECT tc.Src, edge.Dst FROM tc, edge WHERE tc.Dst = edge.Src)
    SELECT Src, Dst FROM tc)";

constexpr char kSssp[] = R"(
    WITH recursive path (Dst, min() AS Cost) AS
      (SELECT 1, 0.0) UNION
      (SELECT edge.Dst, path.Cost + edge.Cost
       FROM path, edge WHERE path.Dst = edge.Src)
    SELECT Dst, Cost FROM path)";

constexpr char kCount[] = "SELECT count(*) FROM edge";

Relation WeightedEdges() {
  Relation rel{Schema::Of({{"Src", ValueType::kInt64},
                           {"Dst", ValueType::kInt64},
                           {"Cost", ValueType::kDouble}})};
  const std::vector<std::tuple<int64_t, int64_t, double>> edges = {
      {1, 2, 1.0}, {2, 3, 2.0}, {3, 4, 1.0}, {1, 3, 5.0}, {4, 5, 1.0},
      {2, 5, 9.0}, {5, 6, 2.0}, {3, 6, 8.0}, {6, 7, 1.5}, {7, 1, 0.5}};
  for (const auto& [s, d, c] : edges) {
    rel.Add({Value::Int(s), Value::Int(d), Value::Double(c)});
  }
  return rel;
}

std::unique_ptr<RaSqlContext> MakeContext(int num_threads) {
  EngineConfig config;
  config.runtime.num_threads = num_threads;
  auto ctx = std::make_unique<RaSqlContext>(std::move(config));
  EXPECT_TRUE(ctx->RegisterTable("edge", WeightedEdges()).ok());
  return ctx;
}

/// Everything a session observes from one execution, rendered to bytes so
/// "bit-identical" is literal.
std::string Fingerprint(const ExecutionResult& result) {
  std::string out = storage::FormatRelation(result.relation,
                                            ResultFormat::kCsv);
  out += '|';
  out += std::to_string(result.fixpoint_stats.iterations);
  out += '|';
  out += std::to_string(result.fixpoint_stats.total_delta_rows);
  out += '|';
  out += std::to_string(result.fixpoint_stats.plan_executions);
  out += '|';
  out += result.fixpoint_stats.used_semi_naive ? '1' : '0';
  return out;
}

class SharedContextTest : public ::testing::TestWithParam<int> {};

TEST_P(SharedContextTest, InterleavedSessionsMatchSerialExecution) {
  const int engine_threads = GetParam();
  const std::vector<std::string> queries = {kTc, kSssp, kCount};

  // Serial baseline on an identically seeded context.
  std::vector<std::string> baseline;
  {
    auto serial_ctx = MakeContext(engine_threads);
    for (const std::string& sql : queries) {
      auto result = serial_ctx->Execute(sql);
      ASSERT_TRUE(result.ok()) << result.status();
      baseline.push_back(Fingerprint(*result));
    }
  }

  auto shared_ctx = MakeContext(engine_threads);
  constexpr int kSessions = 2;
  constexpr int kRounds = 4;
  std::vector<std::thread> sessions;
  std::atomic<int> failures{0};
  sessions.reserve(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    sessions.emplace_back([&, s] {
      // Offset starts so the two sessions interleave different queries.
      for (int r = 0; r < kRounds; ++r) {
        const size_t q = (s + r) % queries.size();
        auto result = shared_ctx->Execute(queries[q]);
        if (!result.ok() || Fingerprint(*result) != baseline[q]) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& t : sessions) t.join();
  EXPECT_EQ(failures.load(), 0)
      << "shared-context execution diverged from serial baseline with "
      << engine_threads << " engine threads";
}

TEST_P(SharedContextTest, WriterSerializesAtomicallyAgainstReaders) {
  const int engine_threads = GetParam();
  auto ctx = MakeContext(engine_threads);

  // Baselines for both catalog states the readers may observe.
  const std::string pre = [&] {
    auto r = ctx->Execute(kCount);
    EXPECT_TRUE(r.ok());
    return Fingerprint(*r);
  }();
  const std::string post = [&] {
    auto probe = MakeContext(engine_threads);
    EXPECT_TRUE(
        probe->Execute("INSERT INTO edge VALUES (8, 9, 1.0), (9, 8, 1.0)")
            .ok());
    auto r = probe->Execute(kCount);
    EXPECT_TRUE(r.ok());
    return Fingerprint(*r);
  }();

  std::atomic<int> torn_reads{0};
  std::thread reader([&] {
    for (int i = 0; i < 50; ++i) {
      auto result = ctx->Execute(kCount);
      if (!result.ok()) {
        ++torn_reads;
        continue;
      }
      const std::string got = Fingerprint(*result);
      // INSERT validates-then-appends under the exclusive lock, so a
      // reader sees all of the write or none of it — never a prefix.
      if (got != pre && got != post) ++torn_reads;
    }
  });
  std::thread writer([&] {
    auto result =
        ctx->Execute("INSERT INTO edge VALUES (8, 9, 1.0), (9, 8, 1.0)");
    EXPECT_TRUE(result.ok()) << result.status();
  });
  reader.join();
  writer.join();
  EXPECT_EQ(torn_reads.load(), 0);

  const uint64_t version = ctx->TableVersion("edge");
  EXPECT_GE(version, 2u);  // register + insert
  auto final_count = ctx->Execute(kCount);
  ASSERT_TRUE(final_count.ok());
  EXPECT_EQ(Fingerprint(*final_count), post);
}

INSTANTIATE_TEST_SUITE_P(EngineThreads, SharedContextTest,
                         ::testing::Values(1, 2, 8));

TEST(SharedPoolTest, SharedRuntimePoolMatchesOwnedPools) {
  // The server wires one shared compute pool into every execution; results
  // must match per-query owned pools exactly.
  std::string owned;
  {
    auto ctx = MakeContext(/*num_threads=*/4);
    auto result = ctx->Execute(kSssp);
    ASSERT_TRUE(result.ok()) << result.status();
    owned = Fingerprint(*result);
  }
  runtime::ThreadPool pool(4);
  auto ctx = MakeContext(/*num_threads=*/4);
  ctx->mutable_config()->runtime.shared_pool = &pool;
  std::vector<std::thread> sessions;
  std::atomic<int> failures{0};
  for (int s = 0; s < 2; ++s) {
    sessions.emplace_back([&] {
      for (int i = 0; i < 3; ++i) {
        auto result = ctx->Execute(kSssp);
        if (!result.ok() || Fingerprint(*result) != owned) ++failures;
      }
    });
  }
  for (std::thread& t : sessions) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ContextVersionTest, VersionsTrackWritesOnly) {
  auto ctx = MakeContext(1);
  const uint64_t v0 = ctx->TableVersion("edge");
  const uint64_t c0 = ctx->CatalogVersion();
  ASSERT_TRUE(ctx->Execute(kCount).ok());
  EXPECT_EQ(ctx->TableVersion("edge"), v0);  // reads don't bump
  EXPECT_EQ(ctx->CatalogVersion(), c0);
  ASSERT_TRUE(ctx->Execute("INSERT INTO edge VALUES (1, 9, 2.0)").ok());
  EXPECT_GT(ctx->TableVersion("edge"), v0);
  EXPECT_GT(ctx->CatalogVersion(), c0);
  EXPECT_EQ(ctx->TableVersion("no_such_table"), 0u);
}

TEST(ContextVersionTest, NormalizedPlanKeyIgnoresWhitespaceAndCase) {
  auto ctx = MakeContext(1);
  auto k1 = ctx->NormalizedPlanKey("SELECT Src FROM edge WHERE Dst = 2");
  auto k2 = ctx->NormalizedPlanKey("select   Src\nfrom EDGE where Dst = 2");
  ASSERT_TRUE(k1.ok()) << k1.status();
  ASSERT_TRUE(k2.ok()) << k2.status();
  EXPECT_EQ(*k1, *k2);
  auto k3 = ctx->NormalizedPlanKey("SELECT Src FROM edge WHERE Dst = 3");
  ASSERT_TRUE(k3.ok());
  EXPECT_NE(*k1, *k3);
  // Scripts and writes have no normalized plan key.
  EXPECT_FALSE(ctx->NormalizedPlanKey("INSERT INTO edge VALUES (1, 2, 3.0)")
                   .ok());
  EXPECT_FALSE(
      ctx->NormalizedPlanKey("SELECT Src FROM edge; SELECT Dst FROM edge")
          .ok());
}

}  // namespace
}  // namespace rasql::engine
