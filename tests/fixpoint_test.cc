#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "datagen/graph_gen.h"
#include "fixpoint/distributed_fixpoint.h"
#include "fixpoint/local_fixpoint.h"
#include "sql/parser.h"

namespace rasql::fixpoint {
namespace {

using storage::MakeIntRelation;
using storage::Relation;

common::Result<analysis::AnalyzedQuery> Compile(
    const std::string& sql,
    const std::map<std::string, const Relation*>& tables) {
  RASQL_ASSIGN_OR_RETURN(sql::Query query, sql::Parser::ParseQuery(sql));
  analysis::Catalog catalog;
  for (const auto& [name, rel] : tables) {
    catalog.PutTable(name, rel->schema());
  }
  analysis::Analyzer analyzer(&catalog);
  RASQL_ASSIGN_OR_RETURN(analysis::AnalyzedQuery analyzed,
                         analyzer.Analyze(query));
  analyzed.Optimize({});
  return analyzed;
}

constexpr char kTc[] = R"(
    WITH recursive tc (Src, Dst) AS
      (SELECT Src, Dst FROM edge) UNION
      (SELECT tc.Src, edge.Dst FROM tc, edge WHERE tc.Dst = edge.Src)
    SELECT Src, Dst FROM tc)";

TEST(LocalFixpointTest, NaiveAndSemiNaiveAgreeOnTc) {
  Relation edge = MakeIntRelation({"Src", "Dst"},
                                  {{1, 2}, {2, 3}, {3, 4}, {4, 2}});
  std::map<std::string, const Relation*> tables = {{"edge", &edge}};
  auto analyzed = Compile(kTc, tables);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status();

  FixpointOptions sn;
  sn.mode = FixpointMode::kSemiNaive;
  FixpointStats sn_stats;
  auto sn_result =
      EvaluateCliqueLocal(analyzed->cliques[0], tables, sn, &sn_stats);
  ASSERT_TRUE(sn_result.ok()) << sn_result.status();
  EXPECT_TRUE(sn_stats.used_semi_naive);

  FixpointOptions naive;
  naive.mode = FixpointMode::kNaive;
  FixpointStats naive_stats;
  auto naive_result =
      EvaluateCliqueLocal(analyzed->cliques[0], tables, naive, &naive_stats);
  ASSERT_TRUE(naive_result.ok()) << naive_result.status();
  EXPECT_FALSE(naive_stats.used_semi_naive);

  EXPECT_TRUE(storage::SameBag(sn_result->at("tc"), naive_result->at("tc")));
  // Semi-naive touches far fewer tuples than naive's full recomputation.
  EXPECT_LT(sn_stats.total_delta_rows, naive_stats.total_delta_rows);
}

TEST(LocalFixpointTest, NonLinearTcMatchesLinear) {
  // tc a, tc b — two recursive references in one branch; semi-naive must
  // produce one term per reference and still reach the same closure.
  Relation edge = MakeIntRelation({"Src", "Dst"},
                                  {{1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 1}});
  std::map<std::string, const Relation*> tables = {{"edge", &edge}};
  const char* nonlinear = R"(
      WITH recursive tc (Src, Dst) AS
        (SELECT Src, Dst FROM edge) UNION
        (SELECT a.Src, b.Dst FROM tc a, tc b WHERE a.Dst = b.Src)
      SELECT Src, Dst FROM tc)";
  auto lin = Compile(kTc, tables);
  auto non = Compile(nonlinear, tables);
  ASSERT_TRUE(lin.ok() && non.ok());

  FixpointOptions options;
  FixpointStats s1, s2;
  auto linear_result =
      EvaluateCliqueLocal(lin->cliques[0], tables, options, &s1);
  auto nonlinear_result =
      EvaluateCliqueLocal(non->cliques[0], tables, options, &s2);
  ASSERT_TRUE(linear_result.ok() && nonlinear_result.ok());
  EXPECT_TRUE(storage::SameBag(linear_result->at("tc"),
                               nonlinear_result->at("tc")));
  // Non-linear doubling reaches the fixpoint in ~log(diameter) rounds.
  EXPECT_LT(s2.iterations, s1.iterations);
}

TEST(LocalFixpointTest, SemiNaiveRequestRejectedWhenUnsafe) {
  Relation edge = MakeIntRelation({"Src", "Dst"}, {{1, 2}});
  std::map<std::string, const Relation*> tables = {{"edge", &edge}};
  // sum view with a filter on the aggregate column: naive-only.
  auto analyzed = Compile(R"(
      WITH recursive v(X, sum() AS S) AS
        (SELECT Src, 1 FROM edge) UNION
        (SELECT edge.Dst, v.S FROM v, edge
         WHERE v.X = edge.Src AND v.S < 10)
      SELECT X, S FROM v)",
                          tables);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status();
  FixpointOptions options;
  options.mode = FixpointMode::kSemiNaive;
  auto result =
      EvaluateCliqueLocal(analyzed->cliques[0], tables, options, nullptr);
  EXPECT_FALSE(result.ok());
  // kAuto silently falls back to naive and succeeds.
  options.mode = FixpointMode::kAuto;
  FixpointStats stats;
  auto auto_result =
      EvaluateCliqueLocal(analyzed->cliques[0], tables, options, &stats);
  ASSERT_TRUE(auto_result.ok()) << auto_result.status();
  EXPECT_FALSE(stats.used_semi_naive);
}

TEST(DistributedFixpointTest, EligibilityRules) {
  Relation edge = MakeIntRelation({"Src", "Dst"}, {{1, 2}});
  std::map<std::string, const Relation*> tables = {{"edge", &edge}};
  auto tc = Compile(kTc, tables);
  ASSERT_TRUE(tc.ok());
  EXPECT_TRUE(EligibleForDistributed(tc->cliques[0]));

  // Mutual recursion: not eligible.
  auto mutual = Compile(R"(
      WITH recursive a(X) AS
        (SELECT Src FROM edge) UNION (SELECT b.Y FROM b),
      recursive b(Y) AS (SELECT a.X FROM a WHERE a.X > 1)
      SELECT X FROM a)",
                        tables);
  ASSERT_TRUE(mutual.ok()) << mutual.status();
  EXPECT_FALSE(EligibleForDistributed(mutual->cliques[0]));

  // Non-linear recursion (two refs in one branch): not eligible.
  auto nonlinear = Compile(R"(
      WITH recursive tc (Src, Dst) AS
        (SELECT Src, Dst FROM edge) UNION
        (SELECT a.Src, b.Dst FROM tc a, tc b WHERE a.Dst = b.Src)
      SELECT Src, Dst FROM tc)",
                           tables);
  ASSERT_TRUE(nonlinear.ok());
  EXPECT_FALSE(EligibleForDistributed(nonlinear->cliques[0]));
}

TEST(DistributedFixpointTest, DecomposedDetectionAndKey) {
  datagen::GridOptions opt;
  opt.side = 6;
  Relation edge = datagen::ToEdgeRelation(datagen::GenerateGrid(opt));
  std::map<std::string, const Relation*> tables = {{"edge", &edge}};
  auto analyzed = Compile(kTc, tables);
  ASSERT_TRUE(analyzed.ok());

  dist::Cluster cluster(dist::ClusterConfig{});
  DistFixpointOptions options;
  options.decomposed = DistFixpointOptions::Decomposed::kAuto;
  DistFixpointStats stats;
  auto result = EvaluateCliqueDistributed(analyzed->cliques[0], tables,
                                          &cluster, options, &stats);
  ASSERT_TRUE(result.ok()) << result.status();
  // TC preserves the delta's Src column: decomposed kicks in, partitioning
  // on column 0.
  EXPECT_TRUE(stats.used_decomposed);
  EXPECT_EQ(stats.partition_key, (std::vector<int>{0}));

  // SSSP's projection rebuilds the key column: not decomposable.
  Relation wedge{storage::Schema::Of({{"Src", storage::ValueType::kInt64},
                                      {"Dst", storage::ValueType::kInt64},
                                      {"Cost",
                                       storage::ValueType::kDouble}})};
  wedge.Add({storage::Value::Int(0), storage::Value::Int(1),
             storage::Value::Double(1)});
  std::map<std::string, const Relation*> wtables = {{"edge", &wedge}};
  auto sssp = Compile(R"(
      WITH recursive path (Dst, min() AS Cost) AS
        (SELECT 0, 0.0) UNION
        (SELECT edge.Dst, path.Cost + edge.Cost
         FROM path, edge WHERE path.Dst = edge.Src)
      SELECT Dst, Cost FROM path)",
                      wtables);
  ASSERT_TRUE(sssp.ok());
  dist::Cluster cluster2(dist::ClusterConfig{});
  DistFixpointStats sssp_stats;
  auto sssp_result = EvaluateCliqueDistributed(
      sssp->cliques[0], wtables, &cluster2, DistFixpointOptions{},
      &sssp_stats);
  ASSERT_TRUE(sssp_result.ok()) << sssp_result.status();
  EXPECT_FALSE(sssp_stats.used_decomposed);
  EXPECT_EQ(sssp_stats.partition_key, (std::vector<int>{0}));  // join key
}

TEST(DistributedFixpointTest, ForcingDecomposedOnIneligiblePlanFails) {
  Relation wedge{storage::Schema::Of({{"Src", storage::ValueType::kInt64},
                                      {"Dst", storage::ValueType::kInt64},
                                      {"Cost",
                                       storage::ValueType::kDouble}})};
  wedge.Add({storage::Value::Int(0), storage::Value::Int(1),
             storage::Value::Double(1)});
  std::map<std::string, const Relation*> tables = {{"edge", &wedge}};
  auto sssp = Compile(R"(
      WITH recursive path (Dst, min() AS Cost) AS
        (SELECT 0, 0.0) UNION
        (SELECT edge.Dst, path.Cost + edge.Cost
         FROM path, edge WHERE path.Dst = edge.Src)
      SELECT Dst, Cost FROM path)",
                      tables);
  ASSERT_TRUE(sssp.ok());
  dist::Cluster cluster(dist::ClusterConfig{});
  DistFixpointOptions options;
  options.decomposed = DistFixpointOptions::Decomposed::kOn;
  auto result = EvaluateCliqueDistributed(sssp->cliques[0], tables, &cluster,
                                          options, nullptr);
  EXPECT_FALSE(result.ok());
}

TEST(DistributedFixpointTest, StageCountsPerIteration) {
  Relation edge = MakeIntRelation(
      {"Src", "Dst"}, {{1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}});
  std::map<std::string, const Relation*> tables = {{"edge", &edge}};
  // REACH: chain of 6, so 6 iterations (last one empty-delta).
  auto analyzed = Compile(R"(
      WITH recursive reach (Dst) AS
        (SELECT 1) UNION
        (SELECT edge.Dst FROM reach, edge WHERE reach.Dst = edge.Src)
      SELECT Dst FROM reach)",
                          tables);
  ASSERT_TRUE(analyzed.ok());

  // Combined: ~1 stage per iteration; plain: 2 per iteration.
  DistFixpointOptions combined;
  combined.decomposed = DistFixpointOptions::Decomposed::kOff;
  dist::Cluster c1(dist::ClusterConfig{});
  DistFixpointStats s1;
  ASSERT_TRUE(EvaluateCliqueDistributed(analyzed->cliques[0], tables, &c1,
                                        combined, &s1)
                  .ok());

  DistFixpointOptions plain = combined;
  plain.combine_stages = false;
  dist::Cluster c2(dist::ClusterConfig{});
  DistFixpointStats s2;
  ASSERT_TRUE(EvaluateCliqueDistributed(analyzed->cliques[0], tables, &c2,
                                        plain, &s2)
                  .ok());
  EXPECT_EQ(s1.iterations, s2.iterations);
  EXPECT_LT(c1.metrics().num_stages(), c2.metrics().num_stages());
}

TEST(CollectRecursiveRefsTest, FindsAllRefs) {
  Relation edge = MakeIntRelation({"Src", "Dst"}, {{1, 2}});
  std::map<std::string, const Relation*> tables = {{"edge", &edge}};
  auto analyzed = Compile(kTc, tables);
  ASSERT_TRUE(analyzed.ok());
  const auto& view = analyzed->cliques[0].views[0];
  EXPECT_EQ(CollectRecursiveRefs(*view.recursive_plans[0]).size(), 1u);
  EXPECT_EQ(CollectRecursiveRefs(*view.base_plans[0]).size(), 0u);
}

}  // namespace
}  // namespace rasql::fixpoint
