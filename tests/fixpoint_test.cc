#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "datagen/graph_gen.h"
#include "fixpoint/distributed_fixpoint.h"
#include "fixpoint/local_fixpoint.h"
#include "sql/parser.h"

namespace rasql::fixpoint {
namespace {

using storage::MakeIntRelation;
using storage::Relation;

common::Result<analysis::AnalyzedQuery> Compile(
    const std::string& sql,
    const std::map<std::string, const Relation*>& tables) {
  RASQL_ASSIGN_OR_RETURN(sql::Query query, sql::Parser::ParseQuery(sql));
  analysis::Catalog catalog;
  for (const auto& [name, rel] : tables) {
    catalog.PutTable(name, rel->schema());
  }
  analysis::Analyzer analyzer(&catalog);
  RASQL_ASSIGN_OR_RETURN(analysis::AnalyzedQuery analyzed,
                         analyzer.Analyze(query));
  analyzed.Optimize({});
  return analyzed;
}

constexpr char kTc[] = R"(
    WITH recursive tc (Src, Dst) AS
      (SELECT Src, Dst FROM edge) UNION
      (SELECT tc.Src, edge.Dst FROM tc, edge WHERE tc.Dst = edge.Src)
    SELECT Src, Dst FROM tc)";

TEST(LocalFixpointTest, NaiveAndSemiNaiveAgreeOnTc) {
  Relation edge = MakeIntRelation({"Src", "Dst"},
                                  {{1, 2}, {2, 3}, {3, 4}, {4, 2}});
  std::map<std::string, const Relation*> tables = {{"edge", &edge}};
  auto analyzed = Compile(kTc, tables);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status();

  FixpointOptions sn;
  sn.mode = FixpointMode::kSemiNaive;
  FixpointStats sn_stats;
  auto sn_result =
      EvaluateCliqueLocal(analyzed->cliques[0], tables, sn, &sn_stats);
  ASSERT_TRUE(sn_result.ok()) << sn_result.status();
  EXPECT_TRUE(sn_stats.used_semi_naive);

  FixpointOptions naive;
  naive.mode = FixpointMode::kNaive;
  FixpointStats naive_stats;
  auto naive_result =
      EvaluateCliqueLocal(analyzed->cliques[0], tables, naive, &naive_stats);
  ASSERT_TRUE(naive_result.ok()) << naive_result.status();
  EXPECT_FALSE(naive_stats.used_semi_naive);

  EXPECT_TRUE(storage::SameBag(sn_result->at("tc"), naive_result->at("tc")));
  // Semi-naive touches far fewer tuples than naive's full recomputation.
  EXPECT_LT(sn_stats.total_delta_rows, naive_stats.total_delta_rows);
}

TEST(LocalFixpointTest, NonLinearTcMatchesLinear) {
  // tc a, tc b — two recursive references in one branch; semi-naive must
  // produce one term per reference and still reach the same closure.
  Relation edge = MakeIntRelation({"Src", "Dst"},
                                  {{1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 1}});
  std::map<std::string, const Relation*> tables = {{"edge", &edge}};
  const char* nonlinear = R"(
      WITH recursive tc (Src, Dst) AS
        (SELECT Src, Dst FROM edge) UNION
        (SELECT a.Src, b.Dst FROM tc a, tc b WHERE a.Dst = b.Src)
      SELECT Src, Dst FROM tc)";
  auto lin = Compile(kTc, tables);
  auto non = Compile(nonlinear, tables);
  ASSERT_TRUE(lin.ok() && non.ok());

  FixpointOptions options;
  FixpointStats s1, s2;
  auto linear_result =
      EvaluateCliqueLocal(lin->cliques[0], tables, options, &s1);
  auto nonlinear_result =
      EvaluateCliqueLocal(non->cliques[0], tables, options, &s2);
  ASSERT_TRUE(linear_result.ok() && nonlinear_result.ok());
  EXPECT_TRUE(storage::SameBag(linear_result->at("tc"),
                               nonlinear_result->at("tc")));
  // Non-linear doubling reaches the fixpoint in ~log(diameter) rounds.
  EXPECT_LT(s2.iterations, s1.iterations);
}

TEST(LocalFixpointTest, SemiNaiveRequestRejectedWhenUnsafe) {
  Relation edge = MakeIntRelation({"Src", "Dst"}, {{1, 2}});
  std::map<std::string, const Relation*> tables = {{"edge", &edge}};
  // sum view with a filter on the aggregate column: naive-only.
  auto analyzed = Compile(R"(
      WITH recursive v(X, sum() AS S) AS
        (SELECT Src, 1 FROM edge) UNION
        (SELECT edge.Dst, v.S FROM v, edge
         WHERE v.X = edge.Src AND v.S < 10)
      SELECT X, S FROM v)",
                          tables);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status();
  FixpointOptions options;
  options.mode = FixpointMode::kSemiNaive;
  auto result =
      EvaluateCliqueLocal(analyzed->cliques[0], tables, options, nullptr);
  EXPECT_FALSE(result.ok());
  // kAuto silently falls back to naive and succeeds.
  options.mode = FixpointMode::kAuto;
  FixpointStats stats;
  auto auto_result =
      EvaluateCliqueLocal(analyzed->cliques[0], tables, options, &stats);
  ASSERT_TRUE(auto_result.ok()) << auto_result.status();
  EXPECT_FALSE(stats.used_semi_naive);
}

TEST(DistributedFixpointTest, EligibilityRules) {
  Relation edge = MakeIntRelation({"Src", "Dst"}, {{1, 2}});
  std::map<std::string, const Relation*> tables = {{"edge", &edge}};
  auto tc = Compile(kTc, tables);
  ASSERT_TRUE(tc.ok());
  EXPECT_TRUE(EligibleForDistributed(tc->cliques[0]));

  // Mutual recursion: not eligible.
  auto mutual = Compile(R"(
      WITH recursive a(X) AS
        (SELECT Src FROM edge) UNION (SELECT b.Y FROM b),
      recursive b(Y) AS (SELECT a.X FROM a WHERE a.X > 1)
      SELECT X FROM a)",
                        tables);
  ASSERT_TRUE(mutual.ok()) << mutual.status();
  EXPECT_FALSE(EligibleForDistributed(mutual->cliques[0]));

  // Non-linear recursion (two refs in one branch): not eligible.
  auto nonlinear = Compile(R"(
      WITH recursive tc (Src, Dst) AS
        (SELECT Src, Dst FROM edge) UNION
        (SELECT a.Src, b.Dst FROM tc a, tc b WHERE a.Dst = b.Src)
      SELECT Src, Dst FROM tc)",
                           tables);
  ASSERT_TRUE(nonlinear.ok());
  EXPECT_FALSE(EligibleForDistributed(nonlinear->cliques[0]));
}

TEST(DistributedFixpointTest, DecomposedDetectionAndKey) {
  datagen::GridOptions opt;
  opt.side = 6;
  Relation edge = datagen::ToEdgeRelation(datagen::GenerateGrid(opt));
  std::map<std::string, const Relation*> tables = {{"edge", &edge}};
  auto analyzed = Compile(kTc, tables);
  ASSERT_TRUE(analyzed.ok());

  dist::Cluster cluster(dist::ClusterConfig{});
  DistFixpointOptions options;
  options.decomposed = DistFixpointOptions::Decomposed::kAuto;
  FixpointStats stats;
  auto result = EvaluateCliqueDistributed(analyzed->cliques[0], tables,
                                          &cluster, options, &stats);
  ASSERT_TRUE(result.ok()) << result.status();
  // TC preserves the delta's Src column: decomposed kicks in, partitioning
  // on column 0.
  EXPECT_TRUE(stats.used_decomposed);
  EXPECT_EQ(stats.partition_key, (std::vector<int>{0}));

  // SSSP's projection rebuilds the key column: not decomposable.
  Relation wedge{storage::Schema::Of({{"Src", storage::ValueType::kInt64},
                                      {"Dst", storage::ValueType::kInt64},
                                      {"Cost",
                                       storage::ValueType::kDouble}})};
  wedge.Add({storage::Value::Int(0), storage::Value::Int(1),
             storage::Value::Double(1)});
  std::map<std::string, const Relation*> wtables = {{"edge", &wedge}};
  auto sssp = Compile(R"(
      WITH recursive path (Dst, min() AS Cost) AS
        (SELECT 0, 0.0) UNION
        (SELECT edge.Dst, path.Cost + edge.Cost
         FROM path, edge WHERE path.Dst = edge.Src)
      SELECT Dst, Cost FROM path)",
                      wtables);
  ASSERT_TRUE(sssp.ok());
  dist::Cluster cluster2(dist::ClusterConfig{});
  FixpointStats sssp_stats;
  auto sssp_result = EvaluateCliqueDistributed(
      sssp->cliques[0], wtables, &cluster2, DistFixpointOptions{},
      &sssp_stats);
  ASSERT_TRUE(sssp_result.ok()) << sssp_result.status();
  EXPECT_FALSE(sssp_stats.used_decomposed);
  EXPECT_EQ(sssp_stats.partition_key, (std::vector<int>{0}));  // join key
}

TEST(DistributedFixpointTest, ForcingDecomposedOnIneligiblePlanFails) {
  Relation wedge{storage::Schema::Of({{"Src", storage::ValueType::kInt64},
                                      {"Dst", storage::ValueType::kInt64},
                                      {"Cost",
                                       storage::ValueType::kDouble}})};
  wedge.Add({storage::Value::Int(0), storage::Value::Int(1),
             storage::Value::Double(1)});
  std::map<std::string, const Relation*> tables = {{"edge", &wedge}};
  auto sssp = Compile(R"(
      WITH recursive path (Dst, min() AS Cost) AS
        (SELECT 0, 0.0) UNION
        (SELECT edge.Dst, path.Cost + edge.Cost
         FROM path, edge WHERE path.Dst = edge.Src)
      SELECT Dst, Cost FROM path)",
                      tables);
  ASSERT_TRUE(sssp.ok());
  dist::Cluster cluster(dist::ClusterConfig{});
  DistFixpointOptions options;
  options.decomposed = DistFixpointOptions::Decomposed::kOn;
  auto result = EvaluateCliqueDistributed(sssp->cliques[0], tables, &cluster,
                                          options, nullptr);
  EXPECT_FALSE(result.ok());
}

TEST(DistributedFixpointTest, StageCountsPerIteration) {
  Relation edge = MakeIntRelation(
      {"Src", "Dst"}, {{1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}});
  std::map<std::string, const Relation*> tables = {{"edge", &edge}};
  // REACH: chain of 6, so 6 iterations (last one empty-delta).
  auto analyzed = Compile(R"(
      WITH recursive reach (Dst) AS
        (SELECT 1) UNION
        (SELECT edge.Dst FROM reach, edge WHERE reach.Dst = edge.Src)
      SELECT Dst FROM reach)",
                          tables);
  ASSERT_TRUE(analyzed.ok());

  // Combined: ~1 stage per iteration; plain: 2 per iteration.
  DistFixpointOptions combined;
  combined.decomposed = DistFixpointOptions::Decomposed::kOff;
  dist::Cluster c1(dist::ClusterConfig{});
  FixpointStats s1;
  ASSERT_TRUE(EvaluateCliqueDistributed(analyzed->cliques[0], tables, &c1,
                                        combined, &s1)
                  .ok());

  DistFixpointOptions plain = combined;
  plain.combine_stages = false;
  dist::Cluster c2(dist::ClusterConfig{});
  FixpointStats s2;
  ASSERT_TRUE(EvaluateCliqueDistributed(analyzed->cliques[0], tables, &c2,
                                        plain, &s2)
                  .ok());
  EXPECT_EQ(s1.iterations, s2.iterations);
  EXPECT_LT(c1.metrics().num_stages(), c2.metrics().num_stages());
}

// ---- Local parallel path: results and stats must be bit-identical at
// every thread count, in both modes (DESIGN.md §9). ----

struct LocalRun {
  std::vector<storage::Row> rows;
  FixpointStats stats;
};

LocalRun RunLocal(const analysis::AnalyzedQuery& analyzed,
                  const std::map<std::string, const Relation*>& tables,
                  FixpointMode mode, int threads) {
  FixpointOptions options;
  options.mode = mode;
  options.runtime.num_threads = threads;
  LocalRun run;
  auto views =
      EvaluateCliqueLocal(analyzed.cliques[0], tables, options, &run.stats);
  EXPECT_TRUE(views.ok()) << views.status();
  if (views.ok()) run.rows = views->begin()->second.MaterializeRows();
  return run;
}

void ExpectIdentical(const LocalRun& a, const LocalRun& b,
                     const std::string& label) {
  ASSERT_EQ(a.rows.size(), b.rows.size()) << label;
  for (size_t i = 0; i < a.rows.size(); ++i) {
    ASSERT_EQ(a.rows[i].size(), b.rows[i].size()) << label << " row " << i;
    for (size_t c = 0; c < a.rows[i].size(); ++c) {
      EXPECT_TRUE(a.rows[i][c] == b.rows[i][c])
          << label << " row " << i << " col " << c;
    }
  }
  EXPECT_EQ(a.stats.iterations, b.stats.iterations) << label;
  EXPECT_EQ(a.stats.total_delta_rows, b.stats.total_delta_rows) << label;
  EXPECT_EQ(a.stats.plan_executions, b.stats.plan_executions) << label;
  EXPECT_EQ(a.stats.hit_iteration_limit, b.stats.hit_iteration_limit)
      << label;
  EXPECT_EQ(a.stats.used_semi_naive, b.stats.used_semi_naive) << label;
  EXPECT_EQ(a.stats.partition_key, b.stats.partition_key) << label;
}

TEST(LocalFixpointParallelTest, TcBitIdenticalAcrossThreads) {
  datagen::GridOptions opt;
  opt.side = 8;
  Relation edge = datagen::ToEdgeRelation(datagen::GenerateGrid(opt));
  std::map<std::string, const Relation*> tables = {{"edge", &edge}};
  auto analyzed = Compile(kTc, tables);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status();
  for (FixpointMode mode : {FixpointMode::kNaive, FixpointMode::kSemiNaive}) {
    const std::string label =
        mode == FixpointMode::kNaive ? "tc/naive" : "tc/semi-naive";
    LocalRun reference = RunLocal(*analyzed, tables, mode, 1);
    EXPECT_GT(reference.stats.iterations, 2) << label;
    EXPECT_FALSE(reference.rows.empty()) << label;
    for (int threads : {2, 8}) {
      LocalRun run = RunLocal(*analyzed, tables, mode, threads);
      ExpectIdentical(reference, run,
                      label + "/threads=" + std::to_string(threads));
    }
  }
}

constexpr char kSssp[] = R"(
    WITH recursive path (Dst, min() AS Cost) AS
      (SELECT 0, 0.0) UNION
      (SELECT edge.Dst, path.Cost + edge.Cost
       FROM path, edge WHERE path.Dst = edge.Src)
    SELECT Dst, Cost FROM path)";

Relation WeightedRingGraph() {
  Relation edge{storage::Schema::Of({{"Src", storage::ValueType::kInt64},
                                     {"Dst", storage::ValueType::kInt64},
                                     {"Cost",
                                      storage::ValueType::kDouble}})};
  // Cyclic, with chords: many alternative paths per vertex, so the min
  // aggregate does real tie-breaking over double-valued costs.
  for (int v = 0; v < 24; ++v) {
    edge.Add({storage::Value::Int(v), storage::Value::Int((v + 1) % 24),
              storage::Value::Double(1.0 + 0.1 * v)});
    edge.Add({storage::Value::Int(v), storage::Value::Int((v + 7) % 24),
              storage::Value::Double(2.5 + 0.01 * v)});
  }
  return edge;
}

TEST(LocalFixpointParallelTest, SsspBitIdenticalAcrossThreads) {
  Relation edge = WeightedRingGraph();
  std::map<std::string, const Relation*> tables = {{"edge", &edge}};
  auto analyzed = Compile(kSssp, tables);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status();
  for (FixpointMode mode : {FixpointMode::kNaive, FixpointMode::kSemiNaive}) {
    const std::string label =
        mode == FixpointMode::kNaive ? "sssp/naive" : "sssp/semi-naive";
    LocalRun reference = RunLocal(*analyzed, tables, mode, 1);
    EXPECT_GT(reference.stats.iterations, 2) << label;
    EXPECT_EQ(reference.rows.size(), 24u) << label;
    for (int threads : {2, 8}) {
      LocalRun run = RunLocal(*analyzed, tables, mode, threads);
      ExpectIdentical(reference, run,
                      label + "/threads=" + std::to_string(threads));
    }
  }
}

TEST(LocalFixpointTest, NaiveBasePlansExecuteOnce) {
  Relation edge = MakeIntRelation({"Src", "Dst"},
                                  {{1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}});
  std::map<std::string, const Relation*> tables = {{"edge", &edge}};
  auto analyzed = Compile(kTc, tables);
  ASSERT_TRUE(analyzed.ok());
  FixpointOptions options;
  options.mode = FixpointMode::kNaive;
  FixpointStats stats;
  auto result =
      EvaluateCliqueLocal(analyzed->cliques[0], tables, options, &stats);
  ASSERT_TRUE(result.ok()) << result.status();
  // The one base branch is loop-invariant and runs exactly once; the one
  // recursive branch runs every iteration. Before the hoist the base
  // branch re-executed per iteration (2 * iterations total).
  EXPECT_GT(stats.iterations, 3);
  EXPECT_EQ(stats.plan_executions,
            1 + static_cast<size_t>(stats.iterations));
}

TEST(LocalFixpointTest, NonRecursiveCliqueReportsStats) {
  Relation edge = MakeIntRelation({"Src", "Dst"}, {{1, 2}, {1, 2}, {2, 3}});
  std::map<std::string, const Relation*> tables = {{"edge", &edge}};
  auto analyzed = Compile(R"(
      WITH recursive v (X) AS (SELECT Src FROM edge)
      SELECT X FROM v)",
                          tables);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status();
  ASSERT_FALSE(analyzed->cliques[0].IsRecursive());
  FixpointStats stats;
  auto result = EvaluateCliqueLocal(analyzed->cliques[0], tables,
                                    FixpointOptions{}, &stats);
  ASSERT_TRUE(result.ok()) << result.status();
  // Set semantics dedup the duplicate (1,2) source: {1, 2}.
  EXPECT_EQ(result->at("v").size(), 2u);
  EXPECT_EQ(stats.iterations, 1);
  EXPECT_EQ(stats.plan_executions, 1u);
  EXPECT_EQ(stats.total_delta_rows, result->at("v").size());
}

TEST(CollectRecursiveRefsTest, FindsAllRefs) {
  Relation edge = MakeIntRelation({"Src", "Dst"}, {{1, 2}});
  std::map<std::string, const Relation*> tables = {{"edge", &edge}};
  auto analyzed = Compile(kTc, tables);
  ASSERT_TRUE(analyzed.ok());
  const auto& view = analyzed->cliques[0].views[0];
  EXPECT_EQ(CollectRecursiveRefs(*view.recursive_plans[0]).size(), 1u);
  EXPECT_EQ(CollectRecursiveRefs(*view.base_plans[0]).size(), 0u);
}

}  // namespace
}  // namespace rasql::fixpoint
