// Warm-vs-cold identity matrix for warm-start fixpoint maintenance
// (DESIGN.md §14): after every INSERT in a sequence, an `--incremental`
// context's re-run must produce byte-identical rows to a cold context
// that saw the same writes — across TC and SSSP, the local and
// distributed engines, several thread counts and both batch modes — while
// honestly reporting its warm-start counters. Ineligible queries must
// fall back to a cold recompute (warm_starts == 0) and still be correct.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "datagen/graph_gen.h"
#include "engine/rasql_context.h"
#include "storage/result_format.h"

namespace rasql {
namespace {

using storage::Relation;
using storage::ResultFormat;

constexpr char kTc[] = R"(
    WITH recursive tc (Src, Dst) AS
      (SELECT Src, Dst FROM edge) UNION
      (SELECT tc.Src, edge.Dst FROM tc, edge WHERE tc.Dst = edge.Src)
    SELECT Src, Dst FROM tc)";

constexpr char kSssp[] = R"(
    WITH recursive path (Dst, min() AS Cost) AS
      (SELECT 1, 0.0) UNION
      (SELECT edge.Dst, path.Cost + edge.Cost
       FROM path, edge WHERE path.Dst = edge.Src)
    SELECT Dst, Cost FROM path)";

/// The INSERT sequence the matrix replays: multi-row, cycle-closing
/// appends that each reach a vertex outside the seed graph (IDs >= 1000),
/// so every write provably adds new TC tuples and new SSSP destinations
/// from source 1 — i.e. the warm seed delta is never empty.
const std::vector<std::string>& InsertSequence() {
  static const std::vector<std::string> inserts = {
      "INSERT INTO edge VALUES (1, 1000, 1.5)",
      "INSERT INTO edge VALUES (1000, 1001, 0.25), (1001, 1002, 2.0)",
      "INSERT INTO edge VALUES (1002, 1000, 1.0), (1002, 1003, 0.5)",
  };
  return inserts;
}

Relation SeedEdges() {
  datagen::RmatOptions opt;
  opt.num_vertices = 128;
  opt.edges_per_vertex = 3;
  opt.weighted = true;
  opt.min_weight = 0.5;
  opt.seed = 42;
  return datagen::ToEdgeRelation(datagen::GenerateRmat(opt));
}

struct MatrixCase {
  bool distributed;
  int threads;
  size_t batch_rows;
};

std::string CaseName(const ::testing::TestParamInfo<MatrixCase>& info) {
  return std::string(info.param.distributed ? "dist" : "local") + "_t" +
         std::to_string(info.param.threads) + "_b" +
         std::to_string(info.param.batch_rows);
}

class WarmColdIdentity : public ::testing::TestWithParam<MatrixCase> {
 protected:
  engine::EngineConfig Config(bool incremental) const {
    engine::EngineConfig config;
    config.incremental = incremental;
    config.distributed = GetParam().distributed;
    config.cluster.num_workers = 4;
    config.cluster.num_partitions = 8;
    config.runtime.num_threads = GetParam().threads;
    config.runtime.batch_rows = GetParam().batch_rows;
    return config;
  }

  /// Runs `query` over the same seed + INSERT sequence on a warm and a
  /// cold context; after every write the two must serve byte-identical
  /// CSV and the warm context must actually have warm-started.
  void ExpectWarmMatchesCold(const std::string& query) {
    engine::RaSqlContext warm(Config(/*incremental=*/true));
    engine::RaSqlContext cold(Config(/*incremental=*/false));
    ASSERT_TRUE(warm.RegisterTable("edge", SeedEdges()).ok());
    ASSERT_TRUE(cold.RegisterTable("edge", SeedEdges()).ok());

    auto w0 = warm.Execute(query);
    auto c0 = cold.Execute(query);
    ASSERT_TRUE(w0.ok()) << w0.status();
    ASSERT_TRUE(c0.ok()) << c0.status();
    EXPECT_EQ(storage::FormatRelation(w0->relation, ResultFormat::kCsv),
              storage::FormatRelation(c0->relation, ResultFormat::kCsv));
    EXPECT_EQ(w0->fixpoint_stats.warm_starts, 0);  // first run is cold
    EXPECT_GE(warm.WarmStateEntries(), 1u);        // ...and was captured

    for (const std::string& insert : InsertSequence()) {
      ASSERT_TRUE(warm.Execute(insert).ok());
      ASSERT_TRUE(cold.Execute(insert).ok());
      auto w = warm.Execute(query);
      auto c = cold.Execute(query);
      ASSERT_TRUE(w.ok()) << w.status();
      ASSERT_TRUE(c.ok()) << c.status();

      // Bit-identical result bytes (rows and order).
      EXPECT_EQ(storage::FormatRelation(w->relation, ResultFormat::kCsv),
                storage::FormatRelation(c->relation, ResultFormat::kCsv))
          << insert;

      // Honest warm counters: the warm run resumed, seeded from the
      // appended rows, and reports the iterations it skipped.
      EXPECT_EQ(w->fixpoint_stats.warm_starts, 1) << insert;
      EXPECT_GT(w->fixpoint_stats.seed_delta_rows, 0u) << insert;
      EXPECT_GE(w->fixpoint_stats.iterations_saved, 0) << insert;
      EXPECT_EQ(c->fixpoint_stats.warm_starts, 0) << insert;
      EXPECT_EQ(w->fixpoint_stats.used_semi_naive,
                c->fixpoint_stats.used_semi_naive);

      // Same engine shape: a distributed cold run and a distributed warm
      // run both ran cluster stages (or neither did, locally).
      EXPECT_EQ(w->job_metrics.num_stages() > 0,
                c->job_metrics.num_stages() > 0);
    }

    // Dropping the retained state forces the next run cold again — and it
    // must agree with the warm results it replaces.
    auto final_warm = warm.Execute(query);
    ASSERT_TRUE(final_warm.ok());
    warm.ClearWarmState();
    EXPECT_EQ(warm.WarmStateEntries(), 0u);
    auto recold = warm.Execute(query);
    ASSERT_TRUE(recold.ok());
    EXPECT_EQ(recold->fixpoint_stats.warm_starts, 0);
    EXPECT_EQ(storage::FormatRelation(recold->relation, ResultFormat::kCsv),
              storage::FormatRelation(final_warm->relation,
                                      ResultFormat::kCsv));
  }
};

TEST_P(WarmColdIdentity, TransitiveClosure) { ExpectWarmMatchesCold(kTc); }

TEST_P(WarmColdIdentity, SsspMinPaths) { ExpectWarmMatchesCold(kSssp); }

INSTANTIATE_TEST_SUITE_P(
    EnginesThreadsBatches, WarmColdIdentity,
    ::testing::Values(MatrixCase{false, 1, 0}, MatrixCase{false, 2, 0},
                      MatrixCase{false, 8, 0}, MatrixCase{false, 1, 64},
                      MatrixCase{false, 8, 64}, MatrixCase{true, 1, 0},
                      MatrixCase{true, 2, 0}, MatrixCase{true, 8, 0},
                      MatrixCase{true, 1, 64}, MatrixCase{true, 8, 64}),
    CaseName);

// ---- Ineligible queries fall back cold --------------------------------

TEST(WarmStartFallback, NaiveModeNeverWarmStarts) {
  engine::EngineConfig config;
  config.incremental = true;
  config.fixpoint.mode = fixpoint::FixpointMode::kNaive;
  engine::RaSqlContext ctx(config);
  ASSERT_TRUE(ctx.RegisterTable("edge", SeedEdges()).ok());
  ASSERT_TRUE(ctx.Execute(kTc).ok());
  // Naive evaluation cannot resume from a converged state; nothing is
  // retained and the post-insert run recomputes cold.
  EXPECT_EQ(ctx.WarmStateEntries(), 0u);
  ASSERT_TRUE(ctx.Execute("INSERT INTO edge VALUES (0, 64, 1.5)").ok());
  auto rerun = ctx.Execute(kTc);
  ASSERT_TRUE(rerun.ok()) << rerun.status();
  EXPECT_EQ(rerun->fixpoint_stats.warm_starts, 0);

  engine::EngineConfig cold_config;
  cold_config.fixpoint.mode = fixpoint::FixpointMode::kNaive;
  engine::RaSqlContext cold(cold_config);
  ASSERT_TRUE(cold.RegisterTable("edge", SeedEdges()).ok());
  ASSERT_TRUE(cold.Execute("INSERT INTO edge VALUES (0, 64, 1.5)").ok());
  auto reference = cold.Execute(kTc);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(storage::FormatRelation(rerun->relation, ResultFormat::kCsv),
            storage::FormatRelation(reference->relation, ResultFormat::kCsv));
}

TEST(WarmStartFallback, SumAggregateNeverWarmStarts) {
  // Float sums are excluded from warm eligibility: their accumulation
  // order is not replayable, so bit-identity could not be promised. The
  // query still runs (cold) and matches a never-incremental context.
  constexpr char kPathCost[] = R"(
      WITH recursive paths (Dst, sum() AS Cost) AS
        (SELECT 1, 0.0) UNION
        (SELECT edge.Dst, paths.Cost + edge.Cost
         FROM paths, edge WHERE paths.Dst = edge.Src)
      SELECT Dst, Cost FROM paths)";
  // A small DAG so the accumulating fixpoint terminates.
  Relation dag{storage::Schema::Of({{"Src", storage::ValueType::kInt64},
                                    {"Dst", storage::ValueType::kInt64},
                                    {"Cost", storage::ValueType::kDouble}})};
  const int64_t edges[][2] = {{1, 2}, {1, 3}, {2, 4}, {3, 4}, {4, 5}};
  for (const auto& e : edges) {
    dag.Add({storage::Value::Int(e[0]), storage::Value::Int(e[1]),
             storage::Value::Double(1.0)});
  }
  engine::EngineConfig config;
  config.incremental = true;
  engine::RaSqlContext ctx(config);
  ASSERT_TRUE(ctx.RegisterTable("edge", dag).ok());
  auto first = ctx.Execute(kPathCost);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(ctx.WarmStateEntries(), 0u);  // sum head: never retained

  ASSERT_TRUE(ctx.Execute("INSERT INTO edge VALUES (5, 6, 2.0)").ok());
  auto rerun = ctx.Execute(kPathCost);
  ASSERT_TRUE(rerun.ok()) << rerun.status();
  EXPECT_EQ(rerun->fixpoint_stats.warm_starts, 0);

  engine::RaSqlContext cold;
  ASSERT_TRUE(cold.RegisterTable("edge", dag).ok());
  ASSERT_TRUE(cold.Execute("INSERT INTO edge VALUES (5, 6, 2.0)").ok());
  auto reference = cold.Execute(kPathCost);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(storage::FormatRelation(rerun->relation, ResultFormat::kCsv),
            storage::FormatRelation(reference->relation, ResultFormat::kCsv));
}

}  // namespace
}  // namespace rasql
