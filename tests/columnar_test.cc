// Chunk-layout property suite (DESIGN.md §13): the columnar Relation must
// round-trip every Value exactly through the row-view compatibility layer,
// locate rows correctly across chunk boundaries (uniform and width-sealed
// layouts), and the vectorized batch pipelines must reproduce the
// row-at-a-time interpreter bit for bit — same rows, same order — for
// every fused step kind and for morsel RowRanges that straddle chunks.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "physical/executor.h"
#include "physical/pipeline.h"
#include "plan/logical_plan.h"
#include "storage/relation.h"
#include "storage/row_range.h"

namespace rasql {
namespace {

using expr::BinaryOp;
using physical::ExecContext;
using physical::Execute;
using physical::PipelineProgram;
using plan::FilterNode;
using plan::JoinNode;
using plan::PlanPtr;
using plan::ProjectNode;
using plan::TableScanNode;
using storage::ColumnChunk;
using storage::kChunkRows;
using storage::MakeIntRelation;
using storage::Relation;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

// ---- Row-view round-trip over mixed null/typed data --------------------

Relation MixedRelation() {
  Schema schema = Schema::Of({{"I", ValueType::kInt64},
                              {"D", ValueType::kDouble},
                              {"S", ValueType::kString},
                              {"M", ValueType::kInt64}});
  Relation rel(schema);
  // Column M mixes int64 and string -> boxed fallback; every column sees
  // nulls; S repeats values to exercise the dictionary.
  std::vector<Row> rows = {
      {Value::Int(1), Value::Double(1.5), Value::String("a"), Value::Int(7)},
      {Value::Null(), Value::Double(-0.0), Value::String(""), Value::Null()},
      {Value::Int(-3), Value::Null(), Value::Null(), Value::String("mix")},
      {Value::Int(1) /* dup */, Value::Double(2.0), Value::String("a"),
       Value::Double(2.5)},
      {Value::Null(), Value::Null(), Value::Null(), Value::Null()},
  };
  for (const Row& row : rows) rel.AppendRow(row);
  return rel;
}

TEST(ColumnChunkTest, RowViewRoundTripsMixedNullTypedData) {
  Relation rel = MixedRelation();
  std::vector<Row> expected = {
      {Value::Int(1), Value::Double(1.5), Value::String("a"), Value::Int(7)},
      {Value::Null(), Value::Double(-0.0), Value::String(""), Value::Null()},
      {Value::Int(-3), Value::Null(), Value::Null(), Value::String("mix")},
      {Value::Int(1), Value::Double(2.0), Value::String("a"),
       Value::Double(2.5)},
      {Value::Null(), Value::Null(), Value::Null(), Value::Null()},
  };
  ASSERT_EQ(rel.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    // Materialized copy and cell-wise accessor agree with the original.
    EXPECT_EQ(rel.GetRow(i), expected[i]) << "row " << i;
    storage::RowAccessor view = rel.row(i);
    ASSERT_EQ(view.width(), expected[i].size());
    for (int c = 0; c < static_cast<int>(expected[i].size()); ++c) {
      EXPECT_EQ(view[c], expected[i][c]) << "row " << i << " col " << c;
      EXPECT_EQ(view.is_null(c), expected[i][c].is_null());
      EXPECT_EQ(rel.ValueAt(i, c), expected[i][c]);
    }
    EXPECT_EQ(view.ToRow(), expected[i]);
  }
  // An int stored in a mixed column must not have been widened to double.
  EXPECT_EQ(rel.ValueAt(0, 3).type(), ValueType::kInt64);
  // ForEachRow yields the same rows in the same order.
  size_t i = 0;
  rel.ForEachRow([&](const Row& row) { EXPECT_EQ(row, expected[i++]); });
  EXPECT_EQ(i, expected.size());
}

TEST(ColumnChunkTest, CellHashingAndEqualityMatchValueSemantics) {
  Relation rel = MixedRelation();
  for (size_t i = 0; i < rel.size(); ++i) {
    Row row = rel.GetRow(i);
    EXPECT_EQ(rel.HashKeyAt(i, {0, 1, 2, 3}),
              storage::HashRowKey(row, {0, 1, 2, 3}))
        << "row " << i;
    for (int c = 0; c < 4; ++c) {
      EXPECT_TRUE(rel.CellEquals(i, c, row[c]));
      EXPECT_FALSE(rel.CellEquals(i, c, Value::Int(424242)));
    }
  }
  // Stored-vs-stored equality across chunks of different layouts.
  const ColumnChunk& chunk = rel.chunk(0);
  EXPECT_TRUE(ColumnChunk::CellsEqual(chunk, 0, 2, chunk, 3, 2));  // "a"=="a"
  EXPECT_FALSE(ColumnChunk::CellsEqual(chunk, 0, 2, chunk, 1, 2));
  EXPECT_TRUE(ColumnChunk::CellsEqual(chunk, 4, 0, chunk, 1, 3));  // null==null
}

// ---- Chunk boundaries and RowRange splits ------------------------------

TEST(ColumnChunkTest, LocateAndViewsAcrossChunkBoundaries) {
  const size_t n = 2 * kChunkRows + kChunkRows / 2;
  Relation rel(Schema::Of({{"X", ValueType::kInt64}}));
  for (size_t i = 0; i < n; ++i) rel.AppendRow({Value::Int(int64_t(i))});
  ASSERT_EQ(rel.num_chunks(), 3u);
  EXPECT_EQ(rel.chunk_begin(1), kChunkRows);
  EXPECT_EQ(rel.chunk_begin(2), 2 * kChunkRows);
  for (size_t i : {size_t{0}, kChunkRows - 1, kChunkRows, kChunkRows + 1,
                   2 * kChunkRows - 1, 2 * kChunkRows, n - 1}) {
    size_t c;
    size_t r;
    rel.Locate(i, &c, &r);
    EXPECT_EQ(rel.chunk_begin(c) + r, i);
    EXPECT_EQ(rel.row(i)[0].AsInt(), int64_t(i)) << "row " << i;
  }
  // A RowRange straddling both boundaries visits exactly [begin, end).
  const storage::RowRange range{kChunkRows - 3, 2 * kChunkRows + 3};
  size_t next = range.begin;
  rel.ForEachRow(range, [&](const Row& row) {
    EXPECT_EQ(row[0].AsInt(), int64_t(next++));
  });
  EXPECT_EQ(next, range.end);
  // Splitting into morsels reproduces the whole-relation visit order.
  std::vector<int64_t> merged;
  for (size_t begin = 0; begin < n; begin += 700) {
    rel.ForEachRow(storage::RowRange{begin, begin + 700},
                   [&](const Row& row) { merged.push_back(row[0].AsInt()); });
  }
  ASSERT_EQ(merged.size(), n);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(merged[i], int64_t(i));
}

TEST(ColumnChunkTest, WidthChangeSealsChunkAndLocateStaysCorrect) {
  Relation rel;
  rel.AppendRow({Value::Int(1), Value::Int(2)});
  rel.AppendRow({Value::Int(3), Value::Int(4)});
  rel.AppendRow({Value::Int(5)});  // new width -> sealed short chunk
  rel.AppendRow({Value::Int(6)});
  ASSERT_EQ(rel.num_chunks(), 2u);
  EXPECT_EQ(rel.chunk_begin(1), 2u);
  EXPECT_EQ(rel.GetRow(1), (Row{Value::Int(3), Value::Int(4)}));
  EXPECT_EQ(rel.GetRow(2), (Row{Value::Int(5)}));
  EXPECT_EQ(rel.row(3).width(), 1u);
  EXPECT_EQ(rel.row(3)[0].AsInt(), 6);
}

TEST(ColumnChunkTest, ByteSizeReportsColumnarFootprint) {
  // 100 int64 rows of 2 columns: 1600 payload bytes, no null bitmaps.
  Relation ints(Schema::Of({{"A", ValueType::kInt64},
                            {"B", ValueType::kInt64}}));
  for (int64_t i = 0; i < 100; ++i) {
    ints.AppendRow({Value::Int(i), Value::Int(i)});
  }
  EXPECT_EQ(ints.ByteSize(), 1600u);
  // Dictionary strings: repeated values are stored once.
  Relation rep(Schema::Of({{"S", ValueType::kString}}));
  Relation uniq(Schema::Of({{"S", ValueType::kString}}));
  for (int i = 0; i < 64; ++i) {
    rep.AppendRow({Value::String("constant-string")});
    uniq.AppendRow({Value::String("unique-string-" + std::to_string(i))});
  }
  EXPECT_LT(rep.ByteSize(), uniq.ByteSize());
  // Nulls cost a bitmap, not a full payload slot beyond the placeholder.
  Relation nulls(Schema::Of({{"A", ValueType::kInt64}}));
  nulls.AppendRow({Value::Null()});
  EXPECT_GT(nulls.ByteSize(), 0u);
}

// ---- Batch vs interpreted: row-for-row for every step kind -------------

Schema EdgeSchema() {
  return Schema::Of({{"Src", ValueType::kInt64}, {"Dst", ValueType::kInt64}});
}

PlanPtr ScanEdge() {
  return std::make_unique<TableScanNode>("edge", EdgeSchema());
}

// A driver big enough to cross a chunk boundary, with keys that join.
Relation BigEdges() {
  Relation rel(EdgeSchema());
  const size_t n = kChunkRows + 257;
  for (size_t i = 0; i < n; ++i) {
    rel.AppendRow({Value::Int(int64_t(i % 97)), Value::Int(int64_t(i % 53))});
  }
  return rel;
}

PlanPtr FilterPlan() {
  // col < literal — the selection-vector kernel shape.
  return std::make_unique<FilterNode>(
      ScanEdge(), expr::MakeBinary(BinaryOp::kLt,
                                   expr::MakeColumnRef(0, ValueType::kInt64),
                                   expr::MakeLiteral(Value::Int(40))));
}

PlanPtr ProjectPlan() {
  std::vector<expr::ExprPtr> exprs;
  exprs.push_back(expr::MakeColumnRef(1, ValueType::kInt64));
  exprs.push_back(expr::MakeBinary(BinaryOp::kAdd,
                                   expr::MakeColumnRef(0, ValueType::kInt64),
                                   expr::MakeLiteral(Value::Int(1))));
  return std::make_unique<ProjectNode>(
      ScanEdge(), std::move(exprs),
      Schema::Of({{"Dst", ValueType::kInt64}, {"S1", ValueType::kInt64}}));
}

PlanPtr JoinPlan() {
  return std::make_unique<JoinNode>(ScanEdge(), ScanEdge(),
                                    std::vector<int>{1}, std::vector<int>{0});
}

PlanPtr FilterJoinProjectPlan() {
  auto filter = std::make_unique<FilterNode>(
      JoinPlan(), expr::MakeBinary(BinaryOp::kNe,
                                   expr::MakeColumnRef(0, ValueType::kInt64),
                                   expr::MakeColumnRef(3, ValueType::kInt64)));
  std::vector<expr::ExprPtr> exprs;
  exprs.push_back(expr::MakeColumnRef(0, ValueType::kInt64));
  exprs.push_back(expr::MakeColumnRef(3, ValueType::kInt64));
  return std::make_unique<ProjectNode>(
      std::move(filter), std::move(exprs),
      Schema::Of({{"A", ValueType::kInt64}, {"C", ValueType::kInt64}}));
}

// Leading vectorized filter in front of the probe: Filter(Scan) under Join.
PlanPtr FilteredJoinPlan() {
  auto filtered_scan = std::make_unique<FilterNode>(
      ScanEdge(), expr::MakeBinary(BinaryOp::kGe,
                                   expr::MakeColumnRef(0, ValueType::kInt64),
                                   expr::MakeLiteral(Value::Int(10))));
  return std::make_unique<JoinNode>(std::move(filtered_scan), ScanEdge(),
                                    std::vector<int>{1}, std::vector<int>{0});
}

void ExpectBatchMatchesRowMode(const PlanPtr& plan, const Relation& edges,
                               bool use_codegen, const char* label) {
  ExecContext ctx;
  ctx.tables["edge"] = &edges;
  ctx.use_codegen = use_codegen;
  ctx.batch_rows = 0;
  auto row_mode = Execute(*plan, ctx);
  ASSERT_TRUE(row_mode.ok()) << label << ": " << row_mode.status();
  for (size_t batch : {size_t{1}, size_t{7}, size_t{256}, size_t{4096}}) {
    ctx.batch_rows = batch;
    auto batch_mode = Execute(*plan, ctx);
    ASSERT_TRUE(batch_mode.ok()) << label << ": " << batch_mode.status();
    ASSERT_EQ(batch_mode->size(), row_mode->size())
        << label << " batch=" << batch << " codegen=" << use_codegen;
    for (size_t i = 0; i < row_mode->size(); ++i) {
      ASSERT_EQ(batch_mode->GetRow(i), row_mode->GetRow(i))
          << label << " batch=" << batch << " codegen=" << use_codegen
          << " row " << i;
    }
  }
}

TEST(BatchPipelineTest, EveryStepKindMatchesInterpreterRowForRow) {
  Relation edges = BigEdges();
  struct Case {
    const char* label;
    PlanPtr plan;
  };
  std::vector<Case> cases;
  cases.push_back({"filter", FilterPlan()});
  cases.push_back({"project", ProjectPlan()});
  cases.push_back({"hash-probe", JoinPlan()});
  cases.push_back({"filter+probe+project", FilterJoinProjectPlan()});
  cases.push_back({"vec-filter-under-probe", FilteredJoinPlan()});
  for (const Case& c : cases) {
    // codegen on: leading simple filters run as selection-vector kernels;
    // codegen off: batch mode must fall back to the exact interpreter.
    ExpectBatchMatchesRowMode(c.plan, edges, /*use_codegen=*/true, c.label);
    ExpectBatchMatchesRowMode(c.plan, edges, /*use_codegen=*/false, c.label);
  }
}

TEST(BatchPipelineTest, NullsAndMixedTypesForceExactFallback) {
  // A driver whose filter column contains nulls (and a mixed column): the
  // per-chunk kernel gate must reject vectorization and fall back to the
  // interpreter without changing results.
  Relation rel(EdgeSchema());
  for (int64_t i = 0; i < 300; ++i) {
    if (i % 7 == 0) {
      rel.AppendRow({Value::Null(), Value::Int(i)});
    } else {
      rel.AppendRow({Value::Int(i % 11), Value::Int(i)});
    }
  }
  PlanPtr plan = FilterPlan();
  ExpectBatchMatchesRowMode(plan, rel, /*use_codegen=*/true, "null-filter");
  ExpectBatchMatchesRowMode(plan, rel, /*use_codegen=*/false, "null-filter");
}

TEST(BatchPipelineTest, DoubleColumnsVectorizeIdentically) {
  Relation rel(Schema::Of({{"Src", ValueType::kInt64},
                           {"Cost", ValueType::kDouble}}));
  for (int64_t i = 0; i < 2000; ++i) {
    rel.AppendRow({Value::Int(i % 64), Value::Double(0.25 * double(i % 31))});
  }
  auto plan = std::make_unique<FilterNode>(
      std::make_unique<TableScanNode>("edge", rel.schema()),
      expr::MakeBinary(BinaryOp::kGt, expr::MakeLiteral(Value::Double(3.5)),
                       expr::MakeColumnRef(1, ValueType::kDouble)));
  PlanPtr p = std::move(plan);
  ExpectBatchMatchesRowMode(p, rel, /*use_codegen=*/true, "double-filter");
}

TEST(BatchPipelineTest, MorselRangesStraddlingChunksConcatenate) {
  Relation edges = BigEdges();
  PlanPtr plan = FilterJoinProjectPlan();
  auto program = PipelineProgram::Compile(*plan);
  ASSERT_TRUE(program.has_value());
  ExecContext ctx;
  ctx.tables["edge"] = &edges;
  ctx.batch_rows = 100;
  auto bound = program->Bind(ctx);
  ASSERT_TRUE(bound.ok()) << bound.status();
  std::vector<Row> whole;
  ASSERT_TRUE(bound->RunAll(&whole).ok());
  // Morsel cuts not aligned to chunk or batch boundaries.
  std::vector<Row> merged;
  const size_t n = bound->driver_rows();
  for (size_t begin = 0; begin < n; begin += 333) {
    std::vector<Row> part;
    ASSERT_TRUE(
        bound->Run(storage::RowRange{begin, begin + 333}, &part).ok());
    for (Row& row : part) merged.push_back(std::move(row));
  }
  ASSERT_EQ(merged.size(), whole.size());
  for (size_t i = 0; i < whole.size(); ++i) {
    EXPECT_EQ(merged[i], whole[i]) << "row " << i;
  }
}

TEST(BatchPipelineTest, AggregateLoopMatchesRowMode) {
  // GROUP BY with min/max/sum/count over typed columns — the executor's
  // vectorized aggregate loop vs the row-at-a-time path.
  Relation rel(Schema::Of({{"G", ValueType::kInt64},
                           {"V", ValueType::kInt64},
                           {"D", ValueType::kDouble}}));
  for (int64_t i = 0; i < 3000; ++i) {
    rel.AppendRow({Value::Int(i % 13), Value::Int((i * 7) % 101),
                   Value::Double(0.5 * double(i % 17))});
  }
  auto item = [](expr::AggregateFunction fn, int col, const char* name) {
    plan::AggregateItem it;
    it.function = fn;
    if (col >= 0) it.argument = expr::MakeColumnRef(col, ValueType::kInt64);
    it.output_name = name;
    return it;
  };
  std::vector<plan::AggregateItem> items;
  items.push_back(item(expr::AggregateFunction::kMin, 1, "Mn"));
  items.push_back(item(expr::AggregateFunction::kMax, 1, "Mx"));
  items.push_back(item(expr::AggregateFunction::kSum, 2, "Sm"));
  items.push_back(item(expr::AggregateFunction::kCount, -1, "Ct"));
  std::vector<expr::ExprPtr> groups;
  groups.push_back(expr::MakeColumnRef(0, ValueType::kInt64));
  auto agg = std::make_unique<plan::AggregateNode>(
      std::make_unique<TableScanNode>("t", rel.schema()), std::move(groups),
      std::move(items),
      Schema::Of({{"G", ValueType::kInt64},
                  {"Mn", ValueType::kInt64},
                  {"Mx", ValueType::kInt64},
                  {"Sm", ValueType::kDouble},
                  {"Ct", ValueType::kInt64}}));
  ExecContext ctx;
  ctx.tables["t"] = &rel;
  ctx.batch_rows = 0;
  auto row_mode = Execute(*agg, ctx);
  ASSERT_TRUE(row_mode.ok()) << row_mode.status();
  ctx.batch_rows = 128;
  auto batch_mode = Execute(*agg, ctx);
  ASSERT_TRUE(batch_mode.ok()) << batch_mode.status();
  ASSERT_EQ(batch_mode->size(), row_mode->size());
  for (size_t i = 0; i < row_mode->size(); ++i) {
    EXPECT_EQ(batch_mode->GetRow(i), row_mode->GetRow(i)) << "row " << i;
  }
}

// ---- Adversarial batch-vs-interpreter inputs ---------------------------

/// Runs `agg` over `rel` (registered as "t") in row mode and several batch
/// sizes and asserts identical rows in identical order.
void ExpectAggMatchesRowMode(const plan::AggregateNode& agg,
                             const Relation& rel, const char* label) {
  ExecContext ctx;
  ctx.tables["t"] = &rel;
  ctx.batch_rows = 0;
  auto row_mode = Execute(agg, ctx);
  ASSERT_TRUE(row_mode.ok()) << label << ": " << row_mode.status();
  for (size_t batch : {size_t{1}, size_t{64}, size_t{1024}}) {
    ctx.batch_rows = batch;
    auto batch_mode = Execute(agg, ctx);
    ASSERT_TRUE(batch_mode.ok()) << label << ": " << batch_mode.status();
    ASSERT_EQ(batch_mode->size(), row_mode->size())
        << label << " batch=" << batch;
    for (size_t i = 0; i < row_mode->size(); ++i) {
      ASSERT_EQ(batch_mode->GetRow(i), row_mode->GetRow(i))
          << label << " batch=" << batch << " row " << i;
    }
  }
}

std::unique_ptr<plan::AggregateNode> MinMaxSumCountOver(
    const Relation& rel, int group_col, int value_col) {
  auto item = [&](expr::AggregateFunction fn, int col, const char* name) {
    plan::AggregateItem it;
    it.function = fn;
    if (col >= 0) {
      it.argument =
          expr::MakeColumnRef(col, rel.schema().column(col).type);
    }
    it.output_name = name;
    return it;
  };
  std::vector<plan::AggregateItem> items;
  items.push_back(item(expr::AggregateFunction::kMin, value_col, "Mn"));
  items.push_back(item(expr::AggregateFunction::kMax, value_col, "Mx"));
  items.push_back(item(expr::AggregateFunction::kSum, value_col, "Sm"));
  items.push_back(item(expr::AggregateFunction::kCount, -1, "Ct"));
  std::vector<expr::ExprPtr> groups;
  groups.push_back(
      expr::MakeColumnRef(group_col, rel.schema().column(group_col).type));
  return std::make_unique<plan::AggregateNode>(
      std::make_unique<TableScanNode>("t", rel.schema()), std::move(groups),
      std::move(items),
      Schema::Of({{"G", rel.schema().column(group_col).type},
                  {"Mn", ValueType::kNull},
                  {"Mx", ValueType::kNull},
                  {"Sm", ValueType::kNull},
                  {"Ct", ValueType::kInt64}}));
}

TEST(BatchPipelineTest, AggregateAcrossTypeFlippingChunks) {
  // The value column's tag flips at the chunk boundary: a full chunk of
  // clean int64s, then doubles. Per-chunk typed modes see a clean column
  // either way, but the accumulator crosses the flip carrying the earlier
  // chunks' type — the typed arms must hand exactly those rows back to
  // the row-at-a-time oracle.
  Relation rel(Schema::Of({{"G", ValueType::kInt64},
                           {"V", ValueType::kInt64}}));
  for (size_t i = 0; i < kChunkRows; ++i) {
    rel.AppendRow({Value::Int(int64_t(i % 5)), Value::Int(int64_t(i % 91))});
  }
  for (size_t i = 0; i < 700; ++i) {
    rel.AppendRow({Value::Int(int64_t(i % 5)),
                   Value::Double(0.25 * double(i % 37) - 3.0)});
  }
  ExpectAggMatchesRowMode(*MinMaxSumCountOver(rel, 0, 1), rel,
                          "type-flipping-chunks");
}

TEST(BatchPipelineTest, DenseInt64KeysNegativeAndExtreme) {
  // Negative keys, INT64_MIN/INT64_MAX: the dense single-int64-group-key
  // path hashes raw integers; sign handling and insertion order must
  // still match the row path exactly.
  Relation rel(Schema::Of({{"G", ValueType::kInt64},
                           {"V", ValueType::kInt64}}));
  const int64_t keys[] = {-1, INT64_MIN, 0, INT64_MAX, -4096, 7,
                          INT64_MIN + 1, -1};
  for (int64_t i = 0; i < 2000; ++i) {
    rel.AppendRow({Value::Int(keys[i % 8]), Value::Int(i - 1000)});
  }
  ExpectAggMatchesRowMode(*MinMaxSumCountOver(rel, 0, 1), rel,
                          "extreme-int64-keys");
}

TEST(BatchPipelineTest, AllNullValueChunksAggregate) {
  // A value column that is entirely null for a whole chunk (and a group
  // with ONLY nulls): SQL ignores nulls, count(*) still counts the rows,
  // and min/max/sum of nothing stay NULL. Batch and row must agree.
  Relation rel(Schema::Of({{"G", ValueType::kInt64},
                           {"V", ValueType::kInt64}}));
  for (size_t i = 0; i < kChunkRows; ++i) {
    rel.AppendRow({Value::Int(int64_t(i % 3)), Value::Null()});
  }
  for (size_t i = 0; i < 500; ++i) {
    // Group 3 appears only in the all-null prefix's successor with values;
    // group 2 never sees a non-null value.
    const int64_t g = (i % 2 == 0) ? 3 : int64_t(i % 2);
    rel.AppendRow({Value::Int(g), Value::Int(int64_t(i))});
  }
  ExpectAggMatchesRowMode(*MinMaxSumCountOver(rel, 0, 1), rel, "all-null");
}

TEST(BatchPipelineTest, DictStringFiltersMatchInterpreter) {
  // String =/!= filters run on dictionary codes: one code lookup per chunk,
  // integer compares per row. The relation mixes clean dictionary chunks, a
  // chunk whose string column contains nulls, and a boxed chunk (a stray
  // int64 in the string column) — every shape must match the interpreter
  // row for row, vectorized or falling back.
  Relation rel(Schema::Of({{"Name", ValueType::kString},
                           {"V", ValueType::kInt64}}));
  const char* pool[] = {"alpha", "beta", "gamma", "delta"};
  for (size_t i = 0; i < kChunkRows + 100; ++i) {
    rel.AppendRow({Value::String(pool[i % 4]), Value::Int(int64_t(i))});
  }
  for (size_t i = 0; i < 200; ++i) {
    rel.AppendRow({i % 9 == 0 ? Value::Null() : Value::String(pool[i % 3]),
                   Value::Int(int64_t(i))});
  }
  // A stray int64 boxes the open chunk's string column: those rows must
  // fall back to the interpreter while the clean dictionary chunks above
  // keep their code-compare kernel.
  for (size_t i = 0; i < 100; ++i) {
    rel.AppendRow({i == 50 ? Value::Int(-1) : Value::String(pool[i % 4]),
                   Value::Int(int64_t(i))});
  }
  for (BinaryOp op : {BinaryOp::kEq, BinaryOp::kNe}) {
    for (const char* needle : {"beta", "not-in-dictionary", ""}) {
      PlanPtr plan = std::make_unique<FilterNode>(
          std::make_unique<TableScanNode>("edge", rel.schema()),
          expr::MakeBinary(op,
                           expr::MakeColumnRef(0, ValueType::kString),
                           expr::MakeLiteral(Value::String(needle))));
      ExpectBatchMatchesRowMode(plan, rel, /*use_codegen=*/true,
                                "dict-filter");
      ExpectBatchMatchesRowMode(plan, rel, /*use_codegen=*/false,
                                "dict-filter");
    }
  }
  // Column-vs-column equality within one dictionary-coded relation.
  Relation pairs(Schema::Of({{"A", ValueType::kString},
                             {"B", ValueType::kString}}));
  for (size_t i = 0; i < 3000; ++i) {
    pairs.AppendRow({Value::String(pool[i % 4]),
                     Value::String(pool[(i / 2) % 4])});
  }
  PlanPtr colcol = std::make_unique<FilterNode>(
      std::make_unique<TableScanNode>("edge", pairs.schema()),
      expr::MakeBinary(BinaryOp::kEq,
                       expr::MakeColumnRef(0, ValueType::kString),
                       expr::MakeColumnRef(1, ValueType::kString)));
  ExpectBatchMatchesRowMode(colcol, pairs, /*use_codegen=*/true,
                            "dict-col-col");
}

TEST(BatchPipelineTest, TwoKeyDenseAggregateMatchesRowOrder) {
  // Two int64 group columns take the packed-128-bit dense path; the output
  // must keep the row path's first-seen insertion order even with negative
  // and extreme keys, and agree on every accumulator.
  Relation rel(Schema::Of({{"G1", ValueType::kInt64},
                           {"G2", ValueType::kInt64},
                           {"V", ValueType::kInt64}}));
  const int64_t k1[] = {-1, INT64_MIN, 0, INT64_MAX, 7};
  const int64_t k2[] = {INT64_MAX, -1, 3, INT64_MIN, -4096, 11, 0};
  for (int64_t i = 0; i < 4000; ++i) {
    rel.AppendRow({Value::Int(k1[i % 5]), Value::Int(k2[i % 7]),
                   Value::Int((i * 13) % 201 - 100)});
  }
  auto item = [](expr::AggregateFunction fn, int col, const char* name) {
    plan::AggregateItem it;
    it.function = fn;
    if (col >= 0) it.argument = expr::MakeColumnRef(col, ValueType::kInt64);
    it.output_name = name;
    return it;
  };
  std::vector<plan::AggregateItem> items;
  items.push_back(item(expr::AggregateFunction::kMin, 2, "Mn"));
  items.push_back(item(expr::AggregateFunction::kSum, 2, "Sm"));
  items.push_back(item(expr::AggregateFunction::kCount, -1, "Ct"));
  std::vector<expr::ExprPtr> groups;
  groups.push_back(expr::MakeColumnRef(0, ValueType::kInt64));
  groups.push_back(expr::MakeColumnRef(1, ValueType::kInt64));
  auto agg = std::make_unique<plan::AggregateNode>(
      std::make_unique<TableScanNode>("t", rel.schema()), std::move(groups),
      std::move(items),
      Schema::Of({{"G1", ValueType::kInt64},
                  {"G2", ValueType::kInt64},
                  {"Mn", ValueType::kInt64},
                  {"Sm", ValueType::kInt64},
                  {"Ct", ValueType::kInt64}}));
  ExpectAggMatchesRowMode(*agg, rel, "two-key-dense");
}

TEST(BatchPipelineTest, ComputedAggregateInputsVectorize) {
  // GROUP BY g%4 over sum(v*2 + 1): both the group key and the aggregate
  // argument are computed expressions, evaluated through the vectorized
  // layer in batch mode, and must match the row interpreter exactly.
  Relation rel(Schema::Of({{"G", ValueType::kInt64},
                           {"V", ValueType::kInt64},
                           {"D", ValueType::kDouble}}));
  for (int64_t i = 0; i < 3000; ++i) {
    rel.AppendRow({Value::Int(i % 29), Value::Int(i % 83 - 41),
                   Value::Double(0.5 * double(i % 19))});
  }
  auto computed = [](BinaryOp op, int col, ValueType t, Value lit) {
    return expr::MakeBinary(op, expr::MakeColumnRef(col, t),
                            expr::MakeLiteral(std::move(lit)));
  };
  std::vector<plan::AggregateItem> items;
  plan::AggregateItem sum;
  sum.function = expr::AggregateFunction::kSum;
  sum.argument = expr::MakeBinary(
      BinaryOp::kAdd,
      computed(BinaryOp::kMul, 1, ValueType::kInt64, Value::Int(2)),
      expr::MakeLiteral(Value::Int(1)));
  sum.output_name = "Sm";
  items.push_back(std::move(sum));
  plan::AggregateItem mx;
  mx.function = expr::AggregateFunction::kMax;
  mx.argument =
      computed(BinaryOp::kMul, 2, ValueType::kDouble, Value::Double(-1.5));
  mx.output_name = "Mx";
  items.push_back(std::move(mx));
  std::vector<expr::ExprPtr> groups;
  groups.push_back(
      computed(BinaryOp::kDiv, 0, ValueType::kInt64, Value::Int(4)));
  auto agg = std::make_unique<plan::AggregateNode>(
      std::make_unique<TableScanNode>("t", rel.schema()), std::move(groups),
      std::move(items),
      Schema::Of({{"G4", ValueType::kInt64},
                  {"Sm", ValueType::kInt64},
                  {"Mx", ValueType::kDouble}}));
  ExpectAggMatchesRowMode(*agg, rel, "computed-agg-inputs");
}

TEST(BatchPipelineTest, NaNFilterKernelsMatchInterpreter) {
  // NaN in `col CMP literal` filters: every comparison except != is false
  // for NaN, and the vectorized kernel must agree with the interpreter on
  // each operator.
  Relation rel(Schema::Of({{"Src", ValueType::kInt64},
                           {"Cost", ValueType::kDouble}}));
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (int64_t i = 0; i < 1500; ++i) {
    const double v = (i % 5 == 0) ? nan : 0.5 * double(i % 23) - 2.0;
    rel.AppendRow({Value::Int(i), Value::Double(v)});
  }
  const BinaryOp ops[] = {BinaryOp::kLt, BinaryOp::kLe, BinaryOp::kGt,
                          BinaryOp::kGe, BinaryOp::kEq, BinaryOp::kNe};
  for (BinaryOp op : ops) {
    PlanPtr plan = std::make_unique<FilterNode>(
        std::make_unique<TableScanNode>("edge", rel.schema()),
        expr::MakeBinary(op, expr::MakeColumnRef(1, ValueType::kDouble),
                         expr::MakeLiteral(Value::Double(1.25))));
    ExpectBatchMatchesRowMode(plan, rel, /*use_codegen=*/true, "nan-filter");
    ExpectBatchMatchesRowMode(plan, rel, /*use_codegen=*/false,
                              "nan-filter");
  }
}

}  // namespace
}  // namespace rasql
