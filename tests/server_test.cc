// Tests for the query server stack (DESIGN.md §12): wire framing, the
// prepared-plan and result caches, and end-to-end serving over real
// sockets — including the cache-correctness crossval that re-validates
// every cache hit against a cold RaSqlContext::Execute.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/rasql_context.h"
#include "server/client.h"
#include "server/frame.h"
#include "server/plan_cache.h"
#include "server/result_cache.h"
#include "server/server.h"
#include "storage/relation.h"
#include "storage/result_format.h"

namespace rasql::server {
namespace {

using storage::MakeIntRelation;
using storage::Relation;
using storage::ResultFormat;
using storage::Schema;
using storage::Value;
using storage::ValueType;

constexpr char kTc[] = R"(
    WITH recursive tc (Src, Dst) AS
      (SELECT Src, Dst FROM edge) UNION
      (SELECT tc.Src, edge.Dst FROM tc, edge WHERE tc.Dst = edge.Src)
    SELECT Src, Dst FROM tc)";

constexpr char kSssp[] = R"(
    WITH recursive path (Dst, min() AS Cost) AS
      (SELECT 1, 0.0) UNION
      (SELECT edge.Dst, path.Cost + edge.Cost
       FROM path, edge WHERE path.Dst = edge.Src)
    SELECT Dst, Cost FROM path)";

Relation WeightedEdges() {
  Relation rel{Schema::Of({{"Src", ValueType::kInt64},
                           {"Dst", ValueType::kInt64},
                           {"Cost", ValueType::kDouble}})};
  const std::vector<std::tuple<int64_t, int64_t, double>> edges = {
      {1, 2, 1.0}, {2, 3, 2.0}, {3, 4, 1.0}, {1, 3, 5.0},
      {4, 5, 1.0}, {2, 5, 9.0}, {5, 6, 2.0}, {3, 6, 8.0}};
  for (const auto& [s, d, c] : edges) {
    rel.Add({Value::Int(s), Value::Int(d), Value::Double(c)});
  }
  return rel;
}

std::unique_ptr<engine::RaSqlContext> MakeSeededContext(
    engine::EngineConfig config = {}) {
  auto ctx = std::make_unique<engine::RaSqlContext>(std::move(config));
  EXPECT_TRUE(ctx->RegisterTable("edge", WeightedEdges()).ok());
  return ctx;
}

/// A server on an ephemeral port over its own context, torn down on
/// destruction.
struct TestServer {
  explicit TestServer(ServerOptions options = {},
                      engine::EngineConfig config = {}) {
    ctx = MakeSeededContext(std::move(config));
    options.port = 0;
    server = std::make_unique<Server>(ctx.get(), options);
    auto status = server->Start();
    EXPECT_TRUE(status.ok()) << status;
  }
  ~TestServer() { server->Stop(); }

  Client Connect() {
    Client client;
    EXPECT_TRUE(client.Connect(server->port()).ok());
    return client;
  }

  std::unique_ptr<engine::RaSqlContext> ctx;
  std::unique_ptr<Server> server;
};

/// The crossval at the heart of the cache-correctness satellite: the
/// served result (cached or not) must match a cold Execute on a freshly
/// seeded context — identical serialized rows AND identical fixpoint
/// statistics.
void ExpectMatchesColdExecution(const ClientResult& served,
                                const std::string& sql) {
  auto cold_ctx = MakeSeededContext();
  auto cold = cold_ctx->Execute(sql);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_EQ(served.body,
            storage::FormatRelation(cold->relation, served.format));
  EXPECT_EQ(served.iterations, cold->fixpoint_stats.iterations);
  EXPECT_EQ(served.total_delta_rows, cold->fixpoint_stats.total_delta_rows);
  EXPECT_EQ(served.plan_executions, cold->fixpoint_stats.plan_executions);
  EXPECT_EQ(served.used_semi_naive, cold->fixpoint_stats.used_semi_naive);
}

// ---- Framing ----

TEST(FrameTest, RoundTripsThroughBuffer) {
  Frame in;
  in.type = FrameType::kQuery;
  in.payload = std::string("\x01", 1) + "SELECT 1";
  std::string buffer = EncodeFrame(in);
  buffer += EncodeFrame(Frame{FrameType::kExplain, "SELECT 2"});

  Frame out;
  ASSERT_EQ(TryDecodeFrame(&buffer, &out), 1);
  EXPECT_EQ(out.type, FrameType::kQuery);
  EXPECT_EQ(out.payload, in.payload);
  ASSERT_EQ(TryDecodeFrame(&buffer, &out), 1);
  EXPECT_EQ(out.type, FrameType::kExplain);
  EXPECT_EQ(out.payload, "SELECT 2");
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(TryDecodeFrame(&buffer, &out), 0);
}

TEST(FrameTest, PartialFrameNeedsMoreBytes) {
  const std::string whole = EncodeFrame(Frame{FrameType::kPrepare, "abcdef"});
  Frame out;
  for (size_t cut = 0; cut < whole.size(); ++cut) {
    std::string buffer = whole.substr(0, cut);
    EXPECT_EQ(TryDecodeFrame(&buffer, &out), 0) << "cut=" << cut;
  }
}

TEST(FrameTest, OversizedLengthIsMalformed) {
  std::string buffer;
  AppendU32(&buffer, kMaxFrameBytes + 1);
  buffer += std::string(8, 'x');
  Frame out;
  EXPECT_EQ(TryDecodeFrame(&buffer, &out), -1);
}

TEST(FrameTest, ResultPayloadRoundTrip) {
  ResultPayload in;
  in.format = ResultFormat::kJson;
  in.cache_hit = true;
  in.iterations = 7;
  in.total_delta_rows = 1234567;
  in.plan_executions = 42;
  in.used_semi_naive = true;
  in.body = "[{\"a\": 1}]";
  auto out = DecodeResultPayload(EncodeResultPayload(in));
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->format, in.format);
  EXPECT_EQ(out->cache_hit, in.cache_hit);
  EXPECT_EQ(out->iterations, in.iterations);
  EXPECT_EQ(out->total_delta_rows, in.total_delta_rows);
  EXPECT_EQ(out->plan_executions, in.plan_executions);
  EXPECT_EQ(out->used_semi_naive, in.used_semi_naive);
  EXPECT_EQ(out->body, in.body);
}

TEST(FrameTest, ErrorPayloadRoundTrip) {
  auto out = DecodeErrorPayload(
      EncodeErrorPayload(ErrorCode::kAdmissionRejected, "full"));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->first, ErrorCode::kAdmissionRejected);
  EXPECT_EQ(out->second, "full");
}

// ---- Caches ----

TEST(PlanCacheTest, InternsBySqlAndKey) {
  PlanCache cache(4);
  EXPECT_EQ(cache.LookupSql("q1"), nullptr);
  bool existed = true;
  auto entry = cache.Intern({"q1", "planA", {"edge"}}, &existed);
  EXPECT_FALSE(existed);
  EXPECT_EQ(cache.LookupSql("q1"), entry);
  // A textually different query compiling to the same plan key interns to
  // the same entry.
  auto other = cache.Intern({"q2", "planA", {"edge"}}, &existed);
  EXPECT_TRUE(existed);
  EXPECT_EQ(other, entry);
  EXPECT_EQ(cache.LookupSql("q2"), entry);
}

TEST(PlanCacheTest, EvictsLeastRecentlyUsed) {
  PlanCache cache(2);
  cache.Intern({"a", "ka", {}});
  cache.Intern({"b", "kb", {}});
  ASSERT_NE(cache.LookupSql("a"), nullptr);  // touches "a"; "b" is now LRU
  cache.Intern({"c", "kc", {}});
  EXPECT_EQ(cache.LookupSql("b"), nullptr);
  EXPECT_NE(cache.LookupSql("a"), nullptr);
  EXPECT_NE(cache.LookupSql("c"), nullptr);
}

TEST(ResultCacheTest, KeyChangesWithVersions) {
  const std::string k1 = ResultCache::MakeKey("plan", {{"edge", 1}});
  const std::string k2 = ResultCache::MakeKey("plan", {{"edge", 2}});
  EXPECT_NE(k1, k2);
}

TEST(ResultCacheTest, InvalidateTablePurgesDependents) {
  ResultCache cache(8);
  CachedResult r1;
  cache.Insert(ResultCache::MakeKey("p1", {{"edge", 1}}), "p1", std::move(r1),
               {"edge"});
  CachedResult r2;
  cache.Insert(ResultCache::MakeKey("p2", {{"other", 1}}), "p2",
               std::move(r2), {"other"});
  EXPECT_EQ(cache.InvalidateTable("edge"), 1u);
  EXPECT_EQ(cache.Lookup(ResultCache::MakeKey("p1", {{"edge", 1}})), nullptr);
  EXPECT_NE(cache.Lookup(ResultCache::MakeKey("p2", {{"other", 1}})),
            nullptr);
}

TEST(ResultCacheTest, RefreshOutcomeOnStaleSamePlanEntry) {
  ResultCache cache(8);
  CachedResult r1;
  cache.Insert(ResultCache::MakeKey("plan", {{"edge", 1}}), "plan",
               std::move(r1), {"edge"});

  // Exact key → hit.
  ResultCache::Outcome outcome = ResultCache::Outcome::kMiss;
  EXPECT_NE(cache.Lookup(ResultCache::MakeKey("plan", {{"edge", 1}}), "plan",
                         &outcome),
            nullptr);
  EXPECT_EQ(outcome, ResultCache::Outcome::kHit);

  // Same plan, bumped version (an INSERT landed) → refresh, no rows served.
  EXPECT_EQ(cache.Lookup(ResultCache::MakeKey("plan", {{"edge", 2}}), "plan",
                         &outcome),
            nullptr);
  EXPECT_EQ(outcome, ResultCache::Outcome::kRefresh);

  // Unrelated plan → plain miss.
  EXPECT_EQ(cache.Lookup(ResultCache::MakeKey("other", {{"edge", 2}}),
                         "other", &outcome),
            nullptr);
  EXPECT_EQ(outcome, ResultCache::Outcome::kMiss);

  // Re-memoizing under the new version vector purges the stale
  // predecessor: entry count stays 1 and the old key is gone for good.
  CachedResult r2;
  cache.Insert(ResultCache::MakeKey("plan", {{"edge", 2}}), "plan",
               std::move(r2), {"edge"});
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.Lookup(ResultCache::MakeKey("plan", {{"edge", 1}})),
            nullptr);
  EXPECT_EQ(cache.stats().refreshes, 1u);
}

// ---- End-to-end serving ----

TEST(ServerTest, QueryTwiceHitsSharedCacheAndMatchesColdExecution) {
  TestServer ts;
  Client c1 = ts.Connect();
  auto cold = c1.Query(kTc);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_FALSE(cold->cache_hit);
  ExpectMatchesColdExecution(*cold, kTc);

  // A different session hits the shared cache and gets bit-identical
  // bytes plus the memoized run's exact fixpoint statistics.
  Client c2 = ts.Connect();
  auto hit = c2.Query(kTc);
  ASSERT_TRUE(hit.ok()) << hit.status();
  EXPECT_TRUE(hit->cache_hit);
  EXPECT_EQ(hit->body, cold->body);
  ExpectMatchesColdExecution(*hit, kTc);

  const ServerStats stats = ts.server->stats();
  EXPECT_EQ(stats.result_cache.hits, 1u);
  EXPECT_EQ(stats.result_cache.misses, 1u);
}

TEST(ServerTest, ResultCacheDisabledNeverHits) {
  ServerOptions options;
  options.enable_result_cache = false;
  TestServer ts(options);
  Client client = ts.Connect();
  for (int i = 0; i < 2; ++i) {
    auto result = client.Query(kTc);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_FALSE(result->cache_hit);
    ExpectMatchesColdExecution(*result, kTc);
  }
}

TEST(ServerTest, PrepareExecuteSharesNormalizedPlans) {
  TestServer ts;
  Client c1 = ts.Connect();
  bool plan_hit = true;
  auto stmt = c1.Prepare(kSssp, &plan_hit);
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_FALSE(plan_hit);

  auto first = c1.Execute(*stmt);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first->cache_hit);
  ExpectMatchesColdExecution(*first, kSssp);

  auto second = c1.Execute(*stmt);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(second->cache_hit);
  EXPECT_EQ(second->body, first->body);
  ExpectMatchesColdExecution(*second, kSssp);

  // Another session preparing the same statement finds the interned plan.
  Client c2 = ts.Connect();
  auto stmt2 = c2.Prepare(kSssp, &plan_hit);
  ASSERT_TRUE(stmt2.ok()) << stmt2.status();
  EXPECT_TRUE(plan_hit);
  auto third = c2.Execute(*stmt2);
  ASSERT_TRUE(third.ok()) << third.status();
  EXPECT_TRUE(third->cache_hit);
  EXPECT_EQ(third->body, first->body);
}

TEST(ServerTest, InsertInvalidatesCacheAndHitsMatchColdAgain) {
  TestServer ts;
  Client client = ts.Connect();
  auto before = client.Query(kTc);
  ASSERT_TRUE(before.ok()) << before.status();
  auto warmed = client.Query(kTc);
  ASSERT_TRUE(warmed.ok());
  EXPECT_TRUE(warmed->cache_hit);

  // The write bumps edge's version: the next query must re-execute, and
  // its rows must match a cold context that saw the same insert.
  auto insert =
      client.Query("INSERT INTO edge VALUES (6, 1, 1.0), (6, 7, 0.5)");
  ASSERT_TRUE(insert.ok()) << insert.status();
  EXPECT_FALSE(insert->cache_hit);

  auto after = client.Query(kTc);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_FALSE(after->cache_hit);
  EXPECT_NE(after->body, before->body);
  {
    auto cold_ctx = MakeSeededContext();
    auto inserted =
        cold_ctx->Execute("INSERT INTO edge VALUES (6, 1, 1.0), (6, 7, 0.5)");
    ASSERT_TRUE(inserted.ok()) << inserted.status();
    auto cold = cold_ctx->Execute(kTc);
    ASSERT_TRUE(cold.ok()) << cold.status();
    EXPECT_EQ(after->body,
              storage::FormatRelation(cold->relation, after->format));
    EXPECT_EQ(after->iterations, cold->fixpoint_stats.iterations);
    EXPECT_EQ(after->total_delta_rows, cold->fixpoint_stats.total_delta_rows);
  }

  // And the re-warmed entry serves the post-insert rows, not the stale ones.
  auto rewarmed = client.Query(kTc);
  ASSERT_TRUE(rewarmed.ok());
  EXPECT_TRUE(rewarmed->cache_hit);
  EXPECT_EQ(rewarmed->body, after->body);
  EXPECT_GE(ts.server->stats().result_cache.invalidations, 1u);
}

TEST(ServerTest, MixedCaseWritesInvalidateNormalizedEntries) {
  // Regression for the table-name normalization chain: plan keys, the
  // result cache's dependency lists (sql::ReferencedTables), the version
  // counters, and both InvalidateTable call sites must all agree on
  // lowercase, so a write spelled in a different case still purges (and
  // never resurrects) entries cached under another spelling.
  TestServer ts;
  Client client = ts.Connect();
  auto before = client.Query(kTc);
  ASSERT_TRUE(before.ok()) << before.status();

  // A textually different spelling of the same table reuses the entry —
  // the key is the normalized plan, never the raw SQL.
  const std::string upper_tc = R"(
    WITH recursive tc (Src, Dst) AS
      (SELECT Src, Dst FROM EDGE) UNION
      (SELECT tc.Src, EDGE.Dst FROM tc, EDGE WHERE tc.Dst = EDGE.Src)
    SELECT Src, Dst FROM tc)";
  auto aliased = client.Query(upper_tc);
  ASSERT_TRUE(aliased.ok()) << aliased.status();
  EXPECT_TRUE(aliased->cache_hit);
  EXPECT_EQ(aliased->body, before->body);

  // The write names the table in yet another case; the cached entry
  // (keyed and dep-listed lowercase) must still be purged.
  auto insert = client.Query("INSERT INTO Edge VALUES (6, 1, 1.0)");
  ASSERT_TRUE(insert.ok()) << insert.status();
  EXPECT_GE(ts.server->stats().result_cache.invalidations, 1u);

  auto after = client.Query(kTc);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_FALSE(after->cache_hit);
  EXPECT_NE(after->body, before->body);
}

TEST(ServerTest, IncrementalServerRefreshesInsteadOfInvalidating) {
  // Under --incremental the INSERT purge is skipped: the next same-plan
  // query classifies the stale entry as a *refresh*, recomputes (the
  // engine warm-starts internally) and re-memoizes under the new version
  // vector — and the served bytes are bit-identical to a cold context
  // that saw the same insert.
  engine::EngineConfig config;
  config.incremental = true;
  TestServer ts(ServerOptions{}, config);
  Client client = ts.Connect();
  auto before = client.Query(kTc);
  ASSERT_TRUE(before.ok()) << before.status();
  EXPECT_GE(ts.ctx->WarmStateEntries(), 1u);

  auto insert = client.Query("INSERT INTO edge VALUES (6, 1, 1.0)");
  ASSERT_TRUE(insert.ok()) << insert.status();
  EXPECT_EQ(ts.server->stats().result_cache.invalidations, 0u);

  auto refreshed = client.Query(kTc);
  ASSERT_TRUE(refreshed.ok()) << refreshed.status();
  EXPECT_FALSE(refreshed->cache_hit);
  EXPECT_EQ(ts.server->stats().result_cache.refreshes, 1u);
  {
    auto cold_ctx = MakeSeededContext();
    auto inserted = cold_ctx->Execute("INSERT INTO edge VALUES (6, 1, 1.0)");
    ASSERT_TRUE(inserted.ok()) << inserted.status();
    auto cold = cold_ctx->Execute(kTc);
    ASSERT_TRUE(cold.ok()) << cold.status();
    // Row bytes are bit-identical; iteration counts legitimately differ
    // (the warm run resumes from the converged state — that is the
    // speedup being measured, not a divergence).
    EXPECT_EQ(refreshed->body,
              storage::FormatRelation(cold->relation, refreshed->format));
  }

  // The refreshed entry replaced the stale one: next lookup is a hit and
  // the cache holds one entry for this plan.
  auto hit = client.Query(kTc);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->cache_hit);
  EXPECT_EQ(hit->body, refreshed->body);
  EXPECT_EQ(ts.server->stats().result_cache.entries, 1u);
}

TEST(ServerTest, JsonFormatMatchesShellWriter) {
  TestServer ts;
  Client client = ts.Connect();
  auto result = client.Query("SELECT Src, Cost FROM edge WHERE Dst = 2",
                             ResultFormat::kJson);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->format, ResultFormat::kJson);
  auto cold_ctx = MakeSeededContext();
  auto cold = cold_ctx->Execute("SELECT Src, Cost FROM edge WHERE Dst = 2");
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(result->body,
            storage::FormatRelation(cold->relation, ResultFormat::kJson));
  EXPECT_NE(result->body.find("\"Src\": 1"), std::string::npos)
      << result->body;
}

TEST(ServerTest, TypedErrorsForBadSqlAndUnknownStatement) {
  TestServer ts;
  Client client = ts.Connect();
  auto bad = client.Query("SELEKT 1");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(client.last_error_code(), ErrorCode::kParse);

  auto missing = client.Query("SELECT A FROM no_such_table");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(client.last_error_code(), ErrorCode::kAnalysis);

  auto unknown = client.Execute(999);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(client.last_error_code(), ErrorCode::kUnknownStatement);

  // The session survives typed errors.
  auto ok = client.Query("SELECT Src FROM edge WHERE Dst = 2");
  EXPECT_TRUE(ok.ok()) << ok.status();
}

TEST(ServerTest, AdmissionControlRejectsWithTypedError) {
  // max_queue_depth=0 makes every request overflow the queue — the
  // deterministic version of "exec slots saturated, queue full".
  ServerOptions options;
  options.max_queue_depth = 0;
  TestServer ts(options);
  Client client = ts.Connect();
  auto rejected = client.Query("SELECT Src FROM edge");
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(client.last_error_code(), ErrorCode::kAdmissionRejected);
  EXPECT_GE(ts.server->stats().admission_rejects, 1u);
}

TEST(ServerTest, ConcurrentSessionsSeeIdenticalResults) {
  ServerOptions options;
  options.io_slots = 2;
  options.exec_slots = 4;
  TestServer ts(options);

  constexpr int kSessions = 8;
  constexpr int kQueriesEach = 4;
  std::vector<std::string> bodies(kSessions);
  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back([&ts, &bodies, i] {
      Client client;
      ASSERT_TRUE(client.Connect(ts.server->port()).ok());
      for (int q = 0; q < kQueriesEach; ++q) {
        const char* sql = (i + q) % 2 == 0 ? kTc : kSssp;
        auto result = client.Query(sql);
        ASSERT_TRUE(result.ok()) << result.status();
        if (q == 0 && i % 2 == 0) bodies[i] = result->body;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Every even session ran kTc first; all must have produced identical
  // bytes regardless of which session warmed the cache.
  for (int i = 2; i < kSessions; i += 2) EXPECT_EQ(bodies[i], bodies[0]);
  const ServerStats stats = ts.server->stats();
  EXPECT_EQ(stats.queries, static_cast<uint64_t>(kSessions * kQueriesEach));
  EXPECT_GE(stats.result_cache.hits, 1u);
}

TEST(ServerTest, ExplainRoundTrip) {
  TestServer ts;
  Client client = ts.Connect();
  auto rendering = client.Explain(kTc);
  ASSERT_TRUE(rendering.ok()) << rendering.status();
  EXPECT_NE(rendering->find("TableScan"), std::string::npos) << *rendering;
}

TEST(ServerTest, StopWithConnectedSessionsReturns) {
  auto ts = std::make_unique<TestServer>();
  Client client = ts->Connect();
  auto result = client.Query("SELECT Src FROM edge WHERE Dst = 2");
  ASSERT_TRUE(result.ok());
  ts->server->Stop();
  ts.reset();  // double-stop via destructor must also be safe
}

}  // namespace
}  // namespace rasql::server
