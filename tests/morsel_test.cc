// Morsel-determinism matrix (DESIGN.md §10/§13): query results,
// FixpointStats and the modeled JobMetrics must be bit-identical for every
// combination of thread count, morsel size and vectorized batch size, on
// both the local and the distributed path. Morsel splitting and batch
// execution change only HOW the work is cut and evaluated, never WHAT is
// computed or what the cost model sees.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "datagen/graph_gen.h"
#include "engine/rasql_context.h"

namespace rasql {
namespace {

using storage::Relation;

constexpr const char* kTc = R"(
    WITH recursive tc (Src, Dst) AS
      (SELECT Src, Dst FROM edge) UNION
      (SELECT tc.Src, edge.Dst FROM tc, edge WHERE tc.Dst = edge.Src)
    SELECT Src, Dst FROM tc)";

constexpr const char* kSssp = R"(
    WITH recursive path (Dst, min() AS Cost) AS
      (SELECT 1, 0.0) UNION
      (SELECT edge.Dst, path.Cost + edge.Cost
       FROM path, edge WHERE path.Dst = edge.Src)
    SELECT Dst, Cost FROM path)";

datagen::Graph TestGraph(bool weighted) {
  datagen::RmatOptions opt;
  opt.num_vertices = 128;
  opt.edges_per_vertex = 4;
  opt.weighted = weighted;
  opt.min_weight = 1.0;
  opt.seed = 7;
  return datagen::GenerateRmat(opt);
}

engine::EngineConfig MakeConfig(bool distributed, int threads,
                                size_t morsel_rows, size_t batch_rows = 0) {
  engine::EngineConfig config;
  config.distributed = distributed;
  config.cluster.num_workers = 5;
  config.cluster.num_partitions = 10;
  config.runtime.num_threads = threads;
  config.runtime.morsel_rows = morsel_rows;
  config.runtime.batch_rows = batch_rows;
  if (distributed) {
    // Exercise the plain-DSN map/reduce path — the stage the morsel
    // split applies to (combined and decomposed stages stay unsplit).
    config.dist_fixpoint.combine_stages = false;
    config.dist_fixpoint.decomposed =
        fixpoint::DistFixpointOptions::Decomposed::kOff;
  }
  return config;
}

engine::ExecutionResult RunQuery(const engine::EngineConfig& config,
                                 const char* sql, bool weighted) {
  engine::RaSqlContext ctx(config);
  EXPECT_TRUE(
      ctx.RegisterTable("edge", datagen::ToEdgeRelation(TestGraph(weighted)))
          .ok());
  auto result = ctx.Execute(sql);
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result.value());
}

void ExpectIdentical(const engine::ExecutionResult& ref,
                     const engine::ExecutionResult& got,
                     const std::string& label) {
  // Exact rows in exact order — morsel merge order reproduces the
  // unsplit row order, not merely the same bag.
  ASSERT_EQ(ref.relation.size(), got.relation.size()) << label;
  for (size_t i = 0; i < ref.relation.size(); ++i) {
    ASSERT_EQ(ref.relation.GetRow(i), got.relation.GetRow(i))
        << label << " row " << i;
  }

  EXPECT_EQ(ref.fixpoint_stats.iterations, got.fixpoint_stats.iterations)
      << label;
  EXPECT_EQ(ref.fixpoint_stats.total_delta_rows,
            got.fixpoint_stats.total_delta_rows)
      << label;
  EXPECT_EQ(ref.fixpoint_stats.plan_executions,
            got.fixpoint_stats.plan_executions)
      << label;
  EXPECT_EQ(ref.fixpoint_stats.used_semi_naive,
            got.fixpoint_stats.used_semi_naive)
      << label;
  EXPECT_EQ(ref.fixpoint_stats.partition_key,
            got.fixpoint_stats.partition_key)
      << label;

  // Modeled-metric identity set: stage names, task counts and byte
  // counts. Measured seconds and the execution-observability fields
  // (num_exec_tasks, max_partition_splits) are excluded by design.
  ASSERT_EQ(ref.job_metrics.num_stages(), got.job_metrics.num_stages())
      << label;
  EXPECT_EQ(ref.job_metrics.broadcast_bytes, got.job_metrics.broadcast_bytes)
      << label;
  for (int s = 0; s < ref.job_metrics.num_stages(); ++s) {
    const dist::StageMetrics& a = ref.job_metrics.stages[s];
    const dist::StageMetrics& b = got.job_metrics.stages[s];
    EXPECT_EQ(a.name, b.name) << label << " stage " << s;
    EXPECT_EQ(a.num_tasks, b.num_tasks) << label << " stage " << s;
    EXPECT_EQ(a.shuffle_bytes, b.shuffle_bytes) << label << " stage " << s;
    EXPECT_EQ(a.remote_bytes, b.remote_bytes) << label << " stage " << s;
  }
}

class MorselMatrix : public ::testing::TestWithParam<bool> {};

TEST_P(MorselMatrix, ResultsStatsAndMetricsAreInvariant) {
  const bool distributed = GetParam();
  for (const char* sql : {kTc, kSssp}) {
    const bool weighted = sql == kSssp;
    engine::ExecutionResult ref =
        RunQuery(MakeConfig(distributed, 1, 0), sql, weighted);
    for (int threads : {1, 2, 8}) {
      for (size_t morsel_rows : {size_t{0}, size_t{7}}) {
        for (size_t batch_rows : {size_t{0}, size_t{64}}) {
          if (threads == 1 && morsel_rows == 0 && batch_rows == 0) continue;
          engine::ExecutionResult got =
              RunQuery(MakeConfig(distributed, threads, morsel_rows,
                                  batch_rows),
                       sql, weighted);
          ExpectIdentical(ref, got,
                          std::string(distributed ? "dist" : "local") +
                              " threads=" + std::to_string(threads) +
                              " morsel=" + std::to_string(morsel_rows) +
                              " batch=" + std::to_string(batch_rows) +
                              (weighted ? " sssp" : " tc"));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(LocalAndDistributed, MorselMatrix,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& pinfo) {
                           return pinfo.param ? "Distributed" : "Local";
                         });

TEST(MorselSplit, DistributedMapStagesRunExtraTasks) {
  engine::ExecutionResult split =
      RunQuery(MakeConfig(true, 8, 7), kTc, /*weighted=*/false);
  bool saw_split_map = false;
  bool saw_multi_morsel_partition = false;
  for (const dist::StageMetrics& s : split.job_metrics.stages) {
    if (s.name.rfind("map-", 0) != 0) continue;
    EXPECT_GE(s.num_exec_tasks, s.num_tasks) << s.name;
    saw_split_map |= s.num_exec_tasks > s.num_tasks;
    // Late iterations may have deltas under one morsel everywhere; the
    // early big-delta iterations must show a partition cut into several.
    saw_multi_morsel_partition |= s.max_partition_splits > 1;
  }
  EXPECT_TRUE(saw_split_map)
      << "no map stage ran split sub-tasks despite morsel_rows=7";
  EXPECT_TRUE(saw_multi_morsel_partition)
      << "no partition was ever cut into more than one morsel";

  // Whole-partition morsels: every stage reports one closure per task.
  engine::ExecutionResult unsplit =
      RunQuery(MakeConfig(true, 8, 0), kTc, /*weighted=*/false);
  for (const dist::StageMetrics& s : unsplit.job_metrics.stages) {
    EXPECT_EQ(s.num_exec_tasks, s.num_tasks) << s.name;
    EXPECT_EQ(s.max_partition_splits, 1) << s.name;
  }
}

TEST(MorselSplit, NaiveModeIsMorselInvariant) {
  engine::EngineConfig ref_config = MakeConfig(false, 1, 0);
  ref_config.fixpoint.mode = fixpoint::FixpointMode::kNaive;
  engine::ExecutionResult ref = RunQuery(ref_config, kTc, /*weighted=*/false);

  engine::EngineConfig split_config = MakeConfig(false, 8, 5, 64);
  split_config.fixpoint.mode = fixpoint::FixpointMode::kNaive;
  engine::ExecutionResult got =
      RunQuery(split_config, kTc, /*weighted=*/false);
  ExpectIdentical(ref, got, "naive threads=8 morsel=5 batch=64");
}

}  // namespace
}  // namespace rasql
