#include <gtest/gtest.h>

#include "expr/compiled_expr.h"
#include "expr/expr.h"

namespace rasql::expr {
namespace {

using storage::Row;
using storage::Value;
using storage::ValueType;

Row TestRow() {
  return {Value::Int(10), Value::Double(2.5), Value::String("abc"),
          Value::Int(-3)};
}

TEST(ExprTest, ColumnRefEval) {
  auto e = MakeColumnRef(0, ValueType::kInt64, "x");
  EXPECT_EQ(e->Eval(TestRow()).AsInt(), 10);
}

TEST(ExprTest, LiteralEval) {
  auto e = MakeLiteral(Value::Double(1.5));
  EXPECT_DOUBLE_EQ(e->Eval(TestRow()).AsDouble(), 1.5);
}

TEST(ExprTest, IntArithmetic) {
  auto plus = MakeBinary(BinaryOp::kAdd,
                         MakeColumnRef(0, ValueType::kInt64),
                         MakeColumnRef(3, ValueType::kInt64));
  EXPECT_EQ(plus->output_type(), ValueType::kInt64);
  EXPECT_EQ(plus->Eval(TestRow()).AsInt(), 7);
}

TEST(ExprTest, MixedArithmeticWidensToDouble) {
  auto times = MakeBinary(BinaryOp::kMul,
                          MakeColumnRef(0, ValueType::kInt64),
                          MakeColumnRef(1, ValueType::kDouble));
  EXPECT_EQ(times->output_type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(times->Eval(TestRow()).AsDouble(), 25.0);
}

TEST(ExprTest, Comparisons) {
  auto lt = MakeBinary(BinaryOp::kLt, MakeColumnRef(3, ValueType::kInt64),
                       MakeLiteral(Value::Int(0)));
  EXPECT_EQ(lt->Eval(TestRow()).AsInt(), 1);
  auto ge = MakeBinary(BinaryOp::kGe, MakeColumnRef(3, ValueType::kInt64),
                       MakeLiteral(Value::Int(0)));
  EXPECT_EQ(ge->Eval(TestRow()).AsInt(), 0);
}

TEST(ExprTest, StringEquality) {
  auto eq = MakeBinary(BinaryOp::kEq, MakeColumnRef(2, ValueType::kString),
                       MakeLiteral(Value::String("abc")));
  EXPECT_EQ(eq->Eval(TestRow()).AsInt(), 1);
}

TEST(ExprTest, BooleanShortCircuit) {
  // rhs would divide by zero; AND must not evaluate it when lhs is false.
  auto division = MakeBinary(BinaryOp::kDiv, MakeLiteral(Value::Int(1)),
                             MakeLiteral(Value::Int(0)));
  auto guarded =
      MakeBinary(BinaryOp::kAnd, MakeLiteral(Value::Int(0)),
                 std::move(division));
  EXPECT_EQ(guarded->Eval(TestRow()).AsInt(), 0);
}

TEST(ExprTest, NotAndNegate) {
  NotExpr not_true{MakeLiteral(Value::Int(1))};
  EXPECT_EQ(not_true.Eval(TestRow()).AsInt(), 0);
  NegateExpr neg{MakeColumnRef(0, ValueType::kInt64)};
  EXPECT_EQ(neg.Eval(TestRow()).AsInt(), -10);
}

TEST(ExprTest, NullPropagates) {
  auto add = MakeBinary(BinaryOp::kAdd, MakeLiteral(Value::Null()),
                        MakeLiteral(Value::Int(1)));
  EXPECT_TRUE(add->Eval(TestRow()).is_null());
}

TEST(ExprTest, CloneIsDeep) {
  auto e = MakeBinary(BinaryOp::kAdd, MakeColumnRef(0, ValueType::kInt64),
                      MakeLiteral(Value::Int(5)));
  auto c = e->Clone();
  EXPECT_EQ(c->Eval(TestRow()).AsInt(), 15);
  EXPECT_EQ(e->ToString(), c->ToString());
}

TEST(ExprTest, BinaryResultTypeRejectsMismatches) {
  EXPECT_EQ(BinaryResultType(BinaryOp::kAdd, ValueType::kString,
                             ValueType::kInt64),
            ValueType::kNull);
  EXPECT_EQ(BinaryResultType(BinaryOp::kEq, ValueType::kString,
                             ValueType::kInt64),
            ValueType::kNull);
  EXPECT_EQ(BinaryResultType(BinaryOp::kEq, ValueType::kString,
                             ValueType::kString),
            ValueType::kInt64);
}

TEST(CompiledExprTest, MatchesInterpreterOnArithmetic) {
  auto e = MakeBinary(
      BinaryOp::kAdd,
      MakeBinary(BinaryOp::kMul, MakeColumnRef(0, ValueType::kInt64),
                 MakeColumnRef(1, ValueType::kDouble)),
      MakeLiteral(Value::Int(3)));
  auto compiled = CompiledExpr::Compile(*e);
  ASSERT_TRUE(compiled.has_value());
  const Row row = TestRow();
  EXPECT_DOUBLE_EQ(compiled->EvalNumeric(row),
                   e->Eval(row).AsNumeric());
}

TEST(CompiledExprTest, MatchesInterpreterOnPredicates) {
  auto e = MakeBinary(
      BinaryOp::kAnd,
      MakeBinary(BinaryOp::kLt, MakeColumnRef(3, ValueType::kInt64),
                 MakeLiteral(Value::Int(0))),
      MakeBinary(BinaryOp::kGe, MakeColumnRef(0, ValueType::kInt64),
                 MakeLiteral(Value::Int(10))));
  auto compiled = CompiledExpr::Compile(*e);
  ASSERT_TRUE(compiled.has_value());
  EXPECT_TRUE(compiled->EvalBool(TestRow()));
}

TEST(CompiledExprTest, RejectsStringExpressions) {
  auto e = MakeBinary(BinaryOp::kEq, MakeColumnRef(2, ValueType::kString),
                      MakeLiteral(Value::String("abc")));
  EXPECT_FALSE(CompiledExpr::Compile(*e).has_value());
}

TEST(CompiledExprTest, OutputTypePreserved) {
  auto e = MakeBinary(BinaryOp::kAdd, MakeColumnRef(0, ValueType::kInt64),
                      MakeLiteral(Value::Int(1)));
  auto compiled = CompiledExpr::Compile(*e);
  ASSERT_TRUE(compiled.has_value());
  const Value v = compiled->EvalValue(TestRow());
  EXPECT_EQ(v.type(), ValueType::kInt64);
  EXPECT_EQ(v.AsInt(), 11);
}

// Property sweep: interpreted and compiled evaluation agree on a family of
// random-ish expressions over varying row contents.
class CompiledVsInterpreted : public ::testing::TestWithParam<int> {};

TEST_P(CompiledVsInterpreted, Agree) {
  const int64_t x = GetParam();
  Row row = {Value::Int(x), Value::Double(x * 0.5), Value::Int(x - 7)};
  auto e = MakeBinary(
      BinaryOp::kOr,
      MakeBinary(BinaryOp::kGt,
                 MakeBinary(BinaryOp::kAdd,
                            MakeColumnRef(0, ValueType::kInt64),
                            MakeColumnRef(2, ValueType::kInt64)),
                 MakeLiteral(Value::Int(0))),
      MakeBinary(BinaryOp::kLe, MakeColumnRef(1, ValueType::kDouble),
                 MakeLiteral(Value::Double(-2.0))));
  auto compiled = CompiledExpr::Compile(*e);
  ASSERT_TRUE(compiled.has_value());
  EXPECT_EQ(compiled->EvalBool(row), IsTruthy(e->Eval(row)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, CompiledVsInterpreted,
                         ::testing::Values(-100, -7, -1, 0, 1, 3, 7, 50,
                                           1000));

}  // namespace
}  // namespace rasql::expr
