#include <gtest/gtest.h>

#include <set>

#include "dist/aggregates.h"
#include "dist/broadcast.h"
#include "dist/cluster.h"
#include "dist/partition.h"
#include "dist/set_rdd.h"
#include "dist/shuffle.h"
#include "runtime/runtime_options.h"

namespace rasql::dist {
namespace {

using expr::AggregateFunction;
using storage::MakeIntRelation;
using storage::Relation;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

TEST(PartitionTest, RowsLandInOwnPartition) {
  Relation r = MakeIntRelation({"K", "V"},
                               {{1, 10}, {2, 20}, {3, 30}, {1, 11}, {2, 21}});
  PartitionedRelation pr = Partition(r, {0}, 4);
  EXPECT_EQ(pr.TotalRows(), 5u);
  for (int p = 0; p < 4; ++p) {
    pr.partition(p).ForEachRow([&](const Row& row) {
      EXPECT_EQ(pr.partitioning().PartitionOf(row), p);
    });
  }
}

TEST(PartitionTest, SameKeySamePartition) {
  Relation r = MakeIntRelation({"K", "V"}, {{7, 1}, {7, 2}, {7, 3}});
  PartitionedRelation pr = Partition(r, {0}, 8);
  int non_empty = 0;
  for (int p = 0; p < 8; ++p) non_empty += !pr.partition(p).empty();
  EXPECT_EQ(non_empty, 1);
}

TEST(PartitionTest, CollectRoundTrips) {
  Relation r = MakeIntRelation({"K", "V"}, {{1, 2}, {3, 4}, {5, 6}});
  PartitionedRelation pr = Partition(r, {0}, 3);
  EXPECT_TRUE(SameBag(r, pr.Collect()));
}

TEST(ShuffleWriteTest, RoutesByPartitioning) {
  Partitioning spec{{0}, 4};
  ShuffleWrite w(4);
  for (int64_t k = 0; k < 100; ++k) {
    w.Add({Value::Int(k), Value::Int(k * 2)}, spec);
  }
  size_t total_rows = 0;
  size_t total_bytes = 0;
  for (int p = 0; p < 4; ++p) {
    total_rows += w.slice_per_dest[p].size();
    total_bytes += w.bytes_per_dest[p];
    w.slice_per_dest[p].ForEachRow([&](const Row& row) {
      EXPECT_EQ(spec.PartitionOf(row), p);
    });
  }
  EXPECT_EQ(total_rows, 100u);
  EXPECT_EQ(total_bytes, 1600u);
}

TEST(ShuffleWriteTest, GatherCollectsFromAllWriters) {
  Partitioning spec{{0}, 2};
  std::vector<ShuffleWrite> writes(3, ShuffleWrite(2));
  for (int src = 0; src < 3; ++src) {
    writes[src].Add({Value::Int(src)}, spec);
  }
  size_t total = GatherShuffle(writes, 0).size() +
                 GatherShuffle(writes, 1).size();
  EXPECT_EQ(total, 3u);
}

StageSpec LocalStage(const std::string& name) {
  StageSpec spec;
  spec.name = name;
  return spec;
}

TEST(ClusterTest, StageAccounting) {
  ClusterConfig config;
  config.num_workers = 2;
  config.num_partitions = 4;
  config.per_stage_overhead_sec = 0.5;
  config.per_task_overhead_sec = 0.0;
  Cluster cluster(config);
  cluster.RunStage(LocalStage("s1"), [](TaskContext&) {});
  EXPECT_EQ(cluster.metrics().num_stages(), 1);
  EXPECT_GE(cluster.metrics().TotalSimTime(), 0.5);
}

TEST(ClusterTest, PartitionAwareAvoidsStateFetch) {
  // With partition-aware scheduling the cached state is always local; with
  // the hybrid policy tasks move around and fetch it remotely.
  for (bool aware : {true, false}) {
    ClusterConfig config;
    config.num_workers = 4;
    config.num_partitions = 8;
    config.partition_aware_scheduling = aware;
    Cluster cluster(config);
    for (int stage = 0; stage < 3; ++stage) {
      cluster.RunStage(LocalStage("iter"), [](TaskContext& ctx) {
        ctx.ReportCachedState(1000);
      });
    }
    if (aware) {
      EXPECT_EQ(cluster.metrics().TotalRemoteBytes(), 0u);
    } else {
      EXPECT_GT(cluster.metrics().TotalRemoteBytes(), 0u);
    }
  }
}

TEST(ClusterTest, ShuffleBytesCrossWorkersOnly) {
  ClusterConfig config;
  config.num_workers = 2;
  config.num_partitions = 2;
  Cluster cluster(config);
  // Map stage: partition 0 (worker 0) sends 100B to partition 1 and 50B to
  // itself; partition 1 (worker 1) sends nothing.
  StageSpec map_spec;
  map_spec.name = "map";
  map_spec.kind = StageSpec::Kind::kShuffleMap;
  cluster.RunStage(map_spec, [](TaskContext& ctx) {
    ctx.ReportShuffleBytes(ctx.partition() == 0
                               ? std::vector<size_t>{50, 100}
                               : std::vector<size_t>{0, 0});
  });
  // Reduce stage: each partition consumes its shuffle slice.
  StageSpec reduce_spec;
  reduce_spec.name = "reduce";
  reduce_spec.kind = StageSpec::Kind::kShuffleReduce;
  cluster.RunStage(reduce_spec, [](TaskContext&) {});
  // Only the 100B slice 0 -> 1 crosses workers.
  EXPECT_EQ(cluster.metrics().TotalRemoteBytes(), 100u);
  EXPECT_EQ(cluster.metrics().TotalShuffleBytes(), 150u);
}

TEST(ClusterTest, ResetMetricsRestartsStagePlacement) {
  // Regression: ResetMetrics used to leave stage_counter_ stale, so the
  // hybrid policy's (partition + stage) % workers rotation resumed mid-cycle
  // on a reused cluster and placed tasks differently from a fresh one.
  // Per-stage remote bytes expose this: at stage index 0 the rotation puts
  // every task on its owner worker (p % 3 == (p + 0) % 3), so cached-state
  // fetches are free; at a stale index 2 every fetch would cross the network.
  ClusterConfig config;
  config.num_workers = 3;
  config.num_partitions = 6;
  config.partition_aware_scheduling = false;  // hybrid rotation
  auto state_task = [](TaskContext& ctx) { ctx.ReportCachedState(1000); };
  Cluster cluster(config);
  cluster.RunStage(LocalStage("s"), state_task);
  cluster.RunStage(LocalStage("s"), state_task);
  const size_t fresh_stage0_remote = cluster.metrics().stages[0].remote_bytes;
  EXPECT_EQ(fresh_stage0_remote, 0u);

  cluster.ResetMetrics();
  cluster.RunStage(LocalStage("s"), state_task);
  EXPECT_EQ(cluster.metrics().num_stages(), 1);
  EXPECT_EQ(cluster.metrics().stages[0].remote_bytes, fresh_stage0_remote);
}

TEST(ClusterTest, ResetMetricsDropsPendingShuffle) {
  // A reset must also forget the previous job's map output: a consuming
  // stage on the reused cluster would otherwise pull stale shuffle slices
  // and charge phantom network traffic.
  ClusterConfig config;
  config.num_workers = 2;
  config.num_partitions = 2;
  Cluster cluster(config);
  StageSpec map_spec;
  map_spec.name = "map";
  map_spec.kind = StageSpec::Kind::kShuffleMap;
  cluster.RunStage(map_spec, [](TaskContext& ctx) {
    ctx.ReportShuffleBytes({50, 100});
  });
  cluster.ResetMetrics();
  StageSpec reduce_spec;
  reduce_spec.name = "reduce";
  reduce_spec.kind = StageSpec::Kind::kShuffleReduce;
  cluster.RunStage(reduce_spec, [](TaskContext&) {});
  EXPECT_EQ(cluster.metrics().TotalRemoteBytes(), 0u);
}

TEST(ClusterTest, BroadcastChargesAllWorkers) {
  ClusterConfig config;
  config.num_workers = 4;
  config.network_bytes_per_sec = 1000.0;
  Cluster cluster(config);
  cluster.Broadcast(500);
  EXPECT_EQ(cluster.metrics().broadcast_bytes, 500u);
  EXPECT_DOUBLE_EQ(cluster.metrics().broadcast_time_sec, 2.0);
}

TEST(ClusterTest, MoreWorkersShrinkMakespan) {
  // Same measured work split over more workers => smaller simulated stage
  // time (this drives the Fig. 12 scaling bench).
  auto run = [](int workers) {
    ClusterConfig config;
    config.num_workers = workers;
    config.num_partitions = 16;
    config.per_stage_overhead_sec = 0.0;
    config.per_task_overhead_sec = 0.010;
    Cluster cluster(config);
    cluster.RunStage(LocalStage("s"), [](TaskContext&) {});
    return cluster.metrics().TotalSimTime();
  };
  EXPECT_GT(run(1), run(4));
  EXPECT_GT(run(4), run(16));
}

// ---- Slice readiness and the shuffle channel ----

TEST(SliceReadinessTest, PublishConsumeLifecycle) {
  SliceReadiness readiness(3);
  EXPECT_EQ(readiness.num_partitions(), 3);
  EXPECT_EQ(readiness.NumPublished(), 0);
  EXPECT_FALSE(readiness.AllPublished());

  readiness.Publish(1);
  EXPECT_TRUE(readiness.Published(1));
  EXPECT_FALSE(readiness.Published(0));
  EXPECT_EQ(readiness.NumPublished(), 1);

  readiness.Publish(0);
  readiness.Publish(2);
  EXPECT_TRUE(readiness.AllPublished());

  EXPECT_FALSE(readiness.Consumed(2));
  readiness.MarkConsumed(2);
  EXPECT_TRUE(readiness.Consumed(2));

  readiness.Reset(3);
  EXPECT_EQ(readiness.NumPublished(), 0);
  EXPECT_FALSE(readiness.Consumed(2));
}

TEST(ShuffleChannelTest, GatherSeesOnlyPublishedSlices) {
  // Producers 0 and 2 publish; producer 1 has deposited but not published.
  // A consumer must observe exactly the published rows — never a slice
  // whose producing task has not completed.
  const Partitioning spec{{0}, 2};
  ShuffleChannel channel(3);
  for (int src = 0; src < 3; ++src) {
    ShuffleWrite write(2);
    write.Add({Value::Int(src * 2)}, spec);      // even -> partition of 0
    write.Add({Value::Int(src * 2 + 1)}, spec);  // odd
    channel.Put(src, std::move(write));
  }
  channel.Publish(0);
  channel.Publish(2);

  std::set<int64_t> seen;
  for (const Row& row : channel.Gather(0)) seen.insert(row[0].AsInt());
  for (const Row& row : channel.Gather(1)) seen.insert(row[0].AsInt());
  EXPECT_TRUE(channel.readiness().Consumed(0));
  EXPECT_TRUE(channel.readiness().Consumed(1));
  // Producer 1's rows {2, 3} stay invisible.
  EXPECT_EQ(seen, (std::set<int64_t>{0, 1, 4, 5}));

  channel.Publish(1);
  EXPECT_EQ(channel.TotalRows(), 6u);

  channel.Reset();
  EXPECT_EQ(channel.TotalRows(), 0u);
  EXPECT_EQ(channel.readiness().NumPublished(), 0);
}

TEST(ShuffleChannelTest, RowsRouteThroughChannel) {
  // End-to-end through RunStagePair: map tasks route real rows, reduce
  // tasks gather exactly the rows addressed to their partition.
  for (bool async : {false, true}) {
    runtime::RuntimeOptions opts;
    opts.num_threads = async ? 4 : 1;
    opts.async_shuffle = async;
    ClusterConfig config;
    config.num_workers = 2;
    config.num_partitions = 4;
    Cluster cluster(config, opts);
    const Partitioning spec{{0}, 4};

    ShuffleChannel channel(4);
    StageSpec map_spec;
    map_spec.name = "map";
    map_spec.kind = StageSpec::Kind::kShuffleMap;
    map_spec.output_slices = &channel;
    StageSpec reduce_spec;
    reduce_spec.name = "reduce";
    reduce_spec.kind = StageSpec::Kind::kShuffleReduce;
    reduce_spec.input_slices = &channel;

    std::vector<std::vector<int64_t>> received(4);
    cluster.RunStagePair(
        map_spec,
        [&](TaskContext& ctx) {
          // Task p emits the keys p*10 .. p*10+9.
          ShuffleWrite write(4);
          for (int64_t k = 0; k < 10; ++k) {
            write.Add({Value::Int(ctx.partition() * 10 + k)}, spec);
          }
          ctx.WriteShuffle(std::move(write));
        },
        reduce_spec,
        [&](TaskContext& ctx) {
          for (const Row& row : ctx.ReadShuffle()) {
            received[ctx.partition()].push_back(row[0].AsInt());
          }
        });

    size_t total = 0;
    for (int p = 0; p < 4; ++p) {
      for (int64_t k : received[p]) {
        EXPECT_EQ(spec.PartitionOf({Value::Int(k)}), p) << "async=" << async;
      }
      total += received[p].size();
    }
    EXPECT_EQ(total, 40u) << "async=" << async;
    EXPECT_EQ(cluster.metrics().num_stages(), 2);
  }
}

TEST(ClusterTest, PipelinedPairMetricsMatchBarriered) {
  // The same RunStagePair, barriered vs pipelined: simulated metrics must
  // be bit-identical — names, task counts, shuffle and remote bytes.
  auto run = [](bool async, int threads) {
    runtime::RuntimeOptions opts;
    opts.num_threads = threads;
    opts.async_shuffle = async;
    ClusterConfig config;
    config.num_workers = 3;
    config.num_partitions = 6;
    Cluster cluster(config, opts);
    const Partitioning spec{{0}, 6};
    for (int iter = 0; iter < 3; ++iter) {
      ShuffleChannel channel(6);
      StageSpec map_spec;
      map_spec.name = "map-" + std::to_string(iter);
      map_spec.kind = StageSpec::Kind::kShuffleMap;
      map_spec.output_slices = &channel;
      StageSpec reduce_spec;
      reduce_spec.name = "reduce-" + std::to_string(iter);
      reduce_spec.kind = StageSpec::Kind::kShuffleReduce;
      reduce_spec.input_slices = &channel;
      cluster.RunStagePair(
          map_spec,
          [&](TaskContext& ctx) {
            ctx.ReportCachedState(100 * (ctx.partition() + 1));
            ShuffleWrite write(6);
            for (int64_t k = 0; k < 6; ++k) {
              write.Add({Value::Int(ctx.partition() * 6 + k)}, spec);
            }
            ctx.WriteShuffle(std::move(write));
          },
          reduce_spec,
          [&](TaskContext& ctx) { (void)ctx.ReadShuffle(); });
    }
    return cluster.metrics();
  };

  const JobMetrics base = run(false, 1);
  for (int threads : {1, 2, 8}) {
    const JobMetrics got = run(true, threads);
    ASSERT_EQ(got.num_stages(), base.num_stages()) << "threads=" << threads;
    for (int s = 0; s < base.num_stages(); ++s) {
      EXPECT_EQ(got.stages[s].name, base.stages[s].name);
      EXPECT_EQ(got.stages[s].num_tasks, base.stages[s].num_tasks);
      EXPECT_EQ(got.stages[s].shuffle_bytes, base.stages[s].shuffle_bytes)
          << "stage " << s << " threads=" << threads;
      EXPECT_EQ(got.stages[s].remote_bytes, base.stages[s].remote_bytes)
          << "stage " << s << " threads=" << threads;
    }
  }
}

TEST(BroadcastTest, EncodeDecodeRoundTrip) {
  Relation r = MakeIntRelation({"Src", "Dst"},
                               {{1, 2}, {2, 3}, {100000, 5}, {-7, 8}});
  auto decoded = DecodeRelation(EncodeRelation(r));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(SameBag(r, *decoded));
  EXPECT_TRUE(r.schema() == decoded->schema());
}

TEST(BroadcastTest, RoundTripMixedTypes) {
  Relation r{Schema::Of({{"Name", ValueType::kString},
                         {"Score", ValueType::kDouble}})};
  r.Add({Value::String("alpha"), Value::Double(1.5)});
  r.Add({Value::String(""), Value::Double(-2.25)});
  auto decoded = DecodeRelation(EncodeRelation(r));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(SameBag(r, *decoded));
}

TEST(BroadcastTest, CompressionShrinksIntRelations) {
  // Sequential-ish ids delta-encode to ~1-2 bytes instead of 8.
  Relation r{Schema::Of({{"Src", ValueType::kInt64},
                         {"Dst", ValueType::kInt64}})};
  for (int64_t i = 0; i < 10000; ++i) {
    r.Add({Value::Int(i), Value::Int(i + 3)});
  }
  const size_t compressed = EncodeRelation(r).size();
  const size_t raw = UncompressedWireSize(r);
  EXPECT_LT(compressed * 3, raw);  // at least 3x smaller
}

TEST(BroadcastTest, CorruptPayloadFailsGracefully) {
  Relation r = MakeIntRelation({"A"}, {{1}, {2}});
  std::vector<uint8_t> bytes = EncodeRelation(r);
  bytes.resize(bytes.size() / 2);  // truncate
  EXPECT_FALSE(DecodeRelation(bytes).ok());
  EXPECT_FALSE(DecodeRelation({0xff, 0xff, 0xff}).ok());
}

TEST(BroadcastTest, HashedRelationLargerThanRaw) {
  Relation r = MakeIntRelation({"A", "B"}, {{1, 2}, {3, 4}});
  EXPECT_GT(HashedRelationSize(r), UncompressedWireSize(r));
}

TEST(AggregatesTest, CombineSemantics) {
  EXPECT_EQ(CombineAgg(AggregateFunction::kMin, Value::Int(3), Value::Int(5))
                .AsInt(),
            3);
  EXPECT_EQ(CombineAgg(AggregateFunction::kMax, Value::Int(3), Value::Int(5))
                .AsInt(),
            5);
  EXPECT_EQ(CombineAgg(AggregateFunction::kSum, Value::Int(3), Value::Int(5))
                .AsInt(),
            8);
  EXPECT_DOUBLE_EQ(CombineAgg(AggregateFunction::kSum, Value::Double(1.5),
                              Value::Int(2))
                       .AsNumeric(),
                   3.5);
}

TEST(AggregatesTest, ImprovesOnlyStrictly) {
  EXPECT_TRUE(ImprovesAgg(AggregateFunction::kMin, Value::Int(5),
                          Value::Int(4)));
  EXPECT_FALSE(ImprovesAgg(AggregateFunction::kMin, Value::Int(5),
                           Value::Int(5)));
  EXPECT_FALSE(ImprovesAgg(AggregateFunction::kMin, Value::Int(5),
                           Value::Int(6)));
  EXPECT_TRUE(ImprovesAgg(AggregateFunction::kMax, Value::Int(5),
                          Value::Int(6)));
}

TEST(AggregatesTest, PartialAggregateGroups) {
  AggSpec spec = AggSpec::For(2, 1, AggregateFunction::kMin);
  std::vector<Row> rows = {{Value::Int(1), Value::Int(9)},
                           {Value::Int(1), Value::Int(4)},
                           {Value::Int(2), Value::Int(7)}};
  std::vector<Row> out = PartialAggregate(rows, spec);
  ASSERT_EQ(out.size(), 2u);
  std::set<std::pair<int64_t, int64_t>> got;
  for (const Row& r : out) got.insert({r[0].AsInt(), r[1].AsInt()});
  EXPECT_TRUE(got.count({1, 4}));
  EXPECT_TRUE(got.count({2, 7}));
}

TEST(AggregatesTest, PartialAggregateSetDedups) {
  AggSpec spec = AggSpec::For(1, -1, AggregateFunction::kNone);
  std::vector<Row> rows = {{Value::Int(1)}, {Value::Int(1)}, {Value::Int(2)}};
  EXPECT_EQ(PartialAggregate(rows, spec).size(), 2u);
}

TEST(SetRddTest, SetSemanticsDelta) {
  Schema schema = Schema::Of({{"X", ValueType::kInt64}});
  SetRddPartition part(schema, AggSpec::For(1, -1, AggregateFunction::kNone));
  std::vector<Row> delta;
  part.MergeDelta({{Value::Int(1)}, {Value::Int(2)}}, &delta);
  EXPECT_EQ(delta.size(), 2u);
  delta.clear();
  part.MergeDelta({{Value::Int(2)}, {Value::Int(3)}}, &delta);
  EXPECT_EQ(delta.size(), 1u);  // only the new 3
  EXPECT_EQ(part.size(), 3u);
}

TEST(SetRddTest, MinAggregateDelta) {
  Schema schema = Schema::Of({{"Dst", ValueType::kInt64},
                              {"Cost", ValueType::kInt64}});
  SetRddPartition part(schema, AggSpec::For(2, 1, AggregateFunction::kMin));
  std::vector<Row> delta;
  part.MergeDelta({{Value::Int(7), Value::Int(10)}}, &delta);
  ASSERT_EQ(delta.size(), 1u);
  delta.clear();
  // Worse value: discarded.
  part.MergeDelta({{Value::Int(7), Value::Int(12)}}, &delta);
  EXPECT_TRUE(delta.empty());
  // Better value: becomes the new state and enters the delta.
  part.MergeDelta({{Value::Int(7), Value::Int(5)}}, &delta);
  ASSERT_EQ(delta.size(), 1u);
  EXPECT_EQ(delta[0][1].AsInt(), 5);
  Relation state = part.ToRelation();
  ASSERT_EQ(state.size(), 1u);
  EXPECT_EQ(state.row(0)[1].AsInt(), 5);
}

TEST(SetRddTest, SumAggregateAccumulatesIncrements) {
  Schema schema = Schema::Of({{"Dst", ValueType::kInt64},
                              {"Cnt", ValueType::kInt64}});
  SetRddPartition part(schema, AggSpec::For(2, 1, AggregateFunction::kSum));
  std::vector<Row> delta;
  part.MergeDelta({{Value::Int(1), Value::Int(2)}}, &delta);
  part.MergeDelta({{Value::Int(1), Value::Int(3)}}, &delta);
  // State accumulates 2+3; deltas carry the increments 2 then 3.
  ASSERT_EQ(delta.size(), 2u);
  EXPECT_EQ(delta[0][1].AsInt(), 2);
  EXPECT_EQ(delta[1][1].AsInt(), 3);
  Relation state = part.ToRelation();
  ASSERT_EQ(state.size(), 1u);
  EXPECT_EQ(state.row(0)[1].AsInt(), 5);
}

TEST(SetRddTest, ByteSizeGrowsWithState) {
  Schema schema = Schema::Of({{"X", ValueType::kInt64}});
  SetRddPartition part(schema, AggSpec::For(1, -1, AggregateFunction::kNone));
  std::vector<Row> delta;
  EXPECT_EQ(part.byte_size(), 0u);
  part.MergeDelta({{Value::Int(1)}}, &delta);
  EXPECT_GT(part.byte_size(), 0u);
}

TEST(SetRddTest, CollectAcrossPartitions) {
  Schema schema = Schema::Of({{"X", ValueType::kInt64}});
  SetRdd rdd(schema, AggSpec::For(1, -1, AggregateFunction::kNone),
             Partitioning{{0}, 4});
  std::vector<Row> delta;
  for (int64_t x = 0; x < 20; ++x) {
    Row row = {Value::Int(x)};
    const int p = rdd.partitioning().PartitionOf(row);
    rdd.partition(p)->MergeDelta({row}, &delta);
  }
  EXPECT_EQ(rdd.TotalRows(), 20u);
  EXPECT_EQ(rdd.Collect().size(), 20u);
}

}  // namespace
}  // namespace rasql::dist
