#include <gtest/gtest.h>

#include <set>

#include "datagen/graph_gen.h"
#include "engine/rasql_context.h"
#include "storage/relation.h"

namespace rasql::engine {
namespace {

using storage::MakeIntRelation;
using storage::Relation;
using storage::Row;
using storage::SameBag;
using storage::Schema;
using storage::Value;
using storage::ValueType;

Relation WeightedEdges(
    const std::vector<std::tuple<int64_t, int64_t, double>>& edges) {
  Relation rel{Schema::Of({{"Src", ValueType::kInt64},
                           {"Dst", ValueType::kInt64},
                           {"Cost", ValueType::kDouble}})};
  for (const auto& [s, d, c] : edges) {
    rel.Add({Value::Int(s), Value::Int(d), Value::Double(c)});
  }
  return rel;
}

/// Sorted (col0 -> col1-as-int) pairs for easy assertions.
std::set<std::pair<int64_t, int64_t>> IntPairs(const Relation& rel) {
  std::set<std::pair<int64_t, int64_t>> out;
  rel.ForEachRow([&](const Row& row) {
    out.insert({row[0].AsInt(),
                static_cast<int64_t>(row[1].AsNumeric())});
  });
  return out;
}

TEST(EngineTest, PlainSelectFilter) {
  RaSqlContext ctx;
  ASSERT_TRUE(ctx.RegisterTable("t", MakeIntRelation({"A", "B"},
                                                     {{1, 10}, {2, 20}}))
                  .ok());
  auto result = ctx.Execute("SELECT B FROM t WHERE A = 2");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->relation.size(), 1u);
  EXPECT_EQ(result->relation.row(0)[0].AsInt(), 20);
}

TEST(EngineTest, GroupByHavingOrderBy) {
  RaSqlContext ctx;
  ASSERT_TRUE(ctx.RegisterTable(
                     "sales", MakeIntRelation({"Store", "Amount"},
                                              {{1, 10},
                                               {1, 20},
                                               {2, 2},
                                               {2, 3},
                                               {3, 100}}))
                  .ok());
  auto result = ctx.Execute(
      "SELECT Store, sum(Amount) AS Total FROM sales "
      "GROUP BY Store HAVING sum(Amount) > 10 ORDER BY Total DESC");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->relation.size(), 2u);
  EXPECT_EQ(result->relation.row(0)[0].AsInt(), 3);
  EXPECT_EQ(result->relation.row(0)[1].AsInt(), 100);
  EXPECT_EQ(result->relation.row(1)[1].AsInt(), 30);
}

TEST(EngineTest, TransitiveClosure) {
  RaSqlContext ctx;
  ASSERT_TRUE(ctx.RegisterTable(
                     "edge", MakeIntRelation({"Src", "Dst"},
                                             {{1, 2}, {2, 3}, {3, 4}}))
                  .ok());
  auto result = ctx.Execute(R"(
      WITH recursive tc (Src, Dst) AS
        (SELECT Src, Dst FROM edge) UNION
        (SELECT tc.Src, edge.Dst FROM tc, edge WHERE tc.Dst = edge.Src)
      SELECT Src, Dst FROM tc)");
  ASSERT_TRUE(result.ok()) << result.status();
  std::set<std::pair<int64_t, int64_t>> expected = {
      {1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 4}};
  EXPECT_EQ(IntPairs(result->relation), expected);
  EXPECT_TRUE(result->fixpoint_stats.used_semi_naive);
}

TEST(EngineTest, SsspWithCycle) {
  // The min() head makes the cyclic recursion converge (paper Sec. 3).
  RaSqlContext ctx;
  ASSERT_TRUE(ctx.RegisterTable("edge",
                                WeightedEdges({{1, 2, 1.0},
                                               {2, 3, 2.0},
                                               {1, 3, 10.0},
                                               {3, 1, 1.0}}))
                  .ok());
  auto result = ctx.Execute(R"(
      WITH recursive path (Dst, min() AS Cost) AS
        (SELECT 1, 0) UNION
        (SELECT edge.Dst, path.Cost + edge.Cost
         FROM path, edge WHERE path.Dst = edge.Src)
      SELECT Dst, Cost FROM path)");
  ASSERT_TRUE(result.ok()) << result.status();
  std::set<std::pair<int64_t, int64_t>> expected = {{1, 0}, {2, 1}, {3, 3}};
  EXPECT_EQ(IntPairs(result->relation), expected);
}

TEST(EngineTest, ConnectedComponents) {
  RaSqlContext ctx;
  ASSERT_TRUE(ctx.RegisterTable(
                     "edge", MakeIntRelation({"Src", "Dst"},
                                             {{1, 2},
                                              {2, 1},
                                              {3, 4},
                                              {4, 3},
                                              {2, 5},
                                              {5, 2}}))
                  .ok());
  auto result = ctx.Execute(R"(
      WITH recursive cc (Src, min() AS CmpId) AS
        (SELECT Src, Src FROM edge) UNION
        (SELECT edge.Dst, cc.CmpId FROM cc, edge WHERE cc.Src = edge.Src)
      SELECT count(distinct cc.CmpId) FROM cc)");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->relation.size(), 1u);
  EXPECT_EQ(result->relation.row(0)[0].AsInt(), 2);
}

TEST(EngineTest, CountPaths) {
  RaSqlContext ctx;
  ASSERT_TRUE(ctx.RegisterTable(
                     "edge", MakeIntRelation({"Src", "Dst"},
                                             {{1, 2}, {1, 3}, {2, 4}, {3, 4}}))
                  .ok());
  auto result = ctx.Execute(R"(
      WITH recursive cpaths (Dst, sum() AS Cnt) AS
        (SELECT 1, 1) UNION
        (SELECT edge.Dst, cpaths.Cnt FROM cpaths, edge
         WHERE cpaths.Dst = edge.Src)
      SELECT Dst, Cnt FROM cpaths)");
  ASSERT_TRUE(result.ok()) << result.status();
  std::set<std::pair<int64_t, int64_t>> expected = {
      {1, 1}, {2, 1}, {3, 1}, {4, 2}};
  EXPECT_EQ(IntPairs(result->relation), expected);
}

TEST(EngineTest, Management) {
  RaSqlContext ctx;
  ASSERT_TRUE(ctx.RegisterTable(
                     "report", MakeIntRelation({"Emp", "Mgr"},
                                               {{2, 1}, {3, 1}, {4, 2},
                                                {5, 2}}))
                  .ok());
  auto result = ctx.Execute(R"(
      WITH recursive empCount (Mgr, count() AS Cnt) AS
        (SELECT report.Emp, 1 FROM report) UNION
        (SELECT report.Mgr, empCount.Cnt FROM empCount, report
         WHERE empCount.Mgr = report.Emp)
      SELECT Mgr, Cnt FROM empCount)");
  ASSERT_TRUE(result.ok()) << result.status();
  std::set<std::pair<int64_t, int64_t>> expected = {
      {1, 4}, {2, 3}, {3, 1}, {4, 1}, {5, 1}};
  EXPECT_EQ(IntPairs(result->relation), expected);
}

TEST(EngineTest, MlmBonus) {
  RaSqlContext ctx;
  Relation sales{Schema::Of({{"M", ValueType::kInt64},
                             {"P", ValueType::kDouble}})};
  sales.Add({Value::Int(1), Value::Double(100)});
  sales.Add({Value::Int(2), Value::Double(200)});
  sales.Add({Value::Int(3), Value::Double(300)});
  sales.Add({Value::Int(4), Value::Double(400)});
  ASSERT_TRUE(ctx.RegisterTable("sales", std::move(sales)).ok());
  ASSERT_TRUE(ctx.RegisterTable(
                     "sponsor", MakeIntRelation({"M1", "M2"},
                                                {{1, 2}, {1, 3}, {2, 4}}))
                  .ok());
  auto result = ctx.Execute(R"(
      WITH recursive bonus(M, sum() as B) AS
        (SELECT M, P*0.1 FROM sales) UNION
        (SELECT sponsor.M1, bonus.B*0.5 FROM bonus, sponsor
         WHERE bonus.M = sponsor.M2)
      SELECT M, B FROM bonus)");
  ASSERT_TRUE(result.ok()) << result.status();
  std::map<int64_t, double> bonuses;
  result->relation.ForEachRow([&](const Row& row) {
    bonuses[row[0].AsInt()] = row[1].AsNumeric();
  });
  EXPECT_DOUBLE_EQ(bonuses[4], 40.0);
  EXPECT_DOUBLE_EQ(bonuses[3], 30.0);
  EXPECT_DOUBLE_EQ(bonuses[2], 40.0);   // 20 + 0.5*40
  EXPECT_DOUBLE_EQ(bonuses[1], 45.0);   // 10 + 0.5*40 + 0.5*30
}

// The paper's Q1 (stratified) and Q2 (endo-max) BOM queries must agree
// (PreM, Sec. 2-3).
constexpr char kBomStratified[] = R"(
    WITH recursive waitfor(Part, Days) AS
      (SELECT Part, Days FROM basic) UNION
      (SELECT assbl.Part, waitfor.Days FROM assbl, waitfor
       WHERE assbl.Spart = waitfor.Part)
    SELECT Part, max(Days) FROM waitfor GROUP BY Part)";
constexpr char kBomEndoMax[] = R"(
    WITH recursive waitfor(Part, max() as Days) AS
      (SELECT Part, Days FROM basic) UNION
      (SELECT assbl.Part, waitfor.Days FROM assbl, waitfor
       WHERE assbl.Spart = waitfor.Part)
    SELECT Part, Days FROM waitfor)";

TEST(EngineTest, BomStratifiedAndEndoMaxAgree) {
  RaSqlContext ctx;
  ASSERT_TRUE(ctx.RegisterTable(
                     "assbl", MakeIntRelation({"Part", "SPart"},
                                              {{1, 2}, {1, 3}, {2, 4},
                                               {2, 5}}))
                  .ok());
  ASSERT_TRUE(ctx.RegisterTable(
                     "basic", MakeIntRelation({"Part", "Days"},
                                              {{4, 3}, {5, 7}, {3, 2}}))
                  .ok());
  auto q1 = ctx.Execute(kBomStratified);
  ASSERT_TRUE(q1.ok()) << q1.status();
  auto q2 = ctx.Execute(kBomEndoMax);
  ASSERT_TRUE(q2.ok()) << q2.status();
  EXPECT_TRUE(SameBag(q1->relation, q2->relation)) << q1->relation.ToString() << q2->relation.ToString();
  std::set<std::pair<int64_t, int64_t>> expected = {
      {1, 7}, {2, 7}, {3, 2}, {4, 3}, {5, 7}};
  EXPECT_EQ(IntPairs(q2->relation), expected);
}

TEST(EngineTest, IntervalCoalesce) {
  RaSqlContext ctx;
  ASSERT_TRUE(ctx.RegisterTable(
                     "inter", MakeIntRelation({"S", "E"},
                                              {{1, 3},
                                               {2, 4},
                                               {6, 8},
                                               {7, 9},
                                               {10, 11}}))
                  .ok());
  auto result = ctx.Execute(R"(
      CREATE VIEW lstart(T) AS
        (SELECT a.S FROM inter a, inter b WHERE a.S <= b.E
         GROUP BY a.S HAVING a.S = min(b.S));
      WITH recursive coal (S, max() AS E) AS
        (SELECT lstart.T, inter.E FROM lstart, inter
         WHERE lstart.T = inter.S) UNION
        (SELECT coal.S, inter.E FROM coal, inter
         WHERE coal.S <= inter.S AND inter.S <= coal.E)
      SELECT S, E FROM coal)");
  ASSERT_TRUE(result.ok()) << result.status();
  std::set<std::pair<int64_t, int64_t>> expected = {{1, 4}, {6, 9}, {10, 11}};
  EXPECT_EQ(IntPairs(result->relation), expected);
}

TEST(EngineTest, PartyAttendanceMutualRecursion) {
  RaSqlContext ctx;
  Relation organizer{Schema::Of({{"OrgName", ValueType::kInt64}})};
  for (int64_t o : {1, 2, 3}) organizer.Add({Value::Int(o)});
  ASSERT_TRUE(ctx.RegisterTable("organizer", std::move(organizer)).ok());
  ASSERT_TRUE(ctx.RegisterTable(
                     "friend", MakeIntRelation({"Pname", "Fname"},
                                               {{1, 10},
                                                {2, 10},
                                                {3, 10},
                                                {1, 11},
                                                {2, 11},
                                                {10, 12},
                                                {1, 12},
                                                {2, 12}}))
                  .ok());
  // Adapted from paper Example 7 (whose recursive branch as printed has an
  // arity typo): count 1 per attending friend.
  auto result = ctx.Execute(R"(
      WITH recursive attend(Person) AS
        (SELECT OrgName FROM organizer) UNION
        (SELECT Name FROM cntfriends WHERE Ncount >= 3),
      recursive cntfriends(Name, count() AS Ncount) AS
        (SELECT friend.FName, 1 FROM attend, friend
         WHERE attend.Person = friend.Pname)
      SELECT Person FROM attend)");
  ASSERT_TRUE(result.ok()) << result.status();
  std::set<int64_t> people;
  result->relation.ForEachRow(
      [&](const Row& row) { people.insert(row[0].AsInt()); });
  EXPECT_EQ(people, (std::set<int64_t>{1, 2, 3, 10, 12}));
  EXPECT_FALSE(result->fixpoint_stats.used_semi_naive);
}

TEST(EngineTest, CompanyControlMutualRecursion) {
  RaSqlContext ctx;
  Relation shares{Schema::Of({{"By", ValueType::kString},
                              {"Of", ValueType::kString},
                              {"Percent", ValueType::kInt64}})};
  shares.Add({Value::String("A"), Value::String("B"), Value::Int(60)});
  shares.Add({Value::String("A"), Value::String("C"), Value::Int(20)});
  shares.Add({Value::String("B"), Value::String("C"), Value::Int(40)});
  ASSERT_TRUE(ctx.RegisterTable("shares", std::move(shares)).ok());
  auto result = ctx.Execute(R"(
      WITH recursive cshares(ByCom, OfCom, sum() AS Tot) AS
        (SELECT By, Of, Percent FROM shares) UNION
        (SELECT control.Com1, cshares.OfCom, cshares.Tot
         FROM control, cshares WHERE control.Com2 = cshares.ByCom),
      recursive control(Com1, Com2) AS
        (SELECT ByCom, OfCom FROM cshares WHERE Tot > 50)
      SELECT ByCom, OfCom, Tot FROM cshares)");
  ASSERT_TRUE(result.ok()) << result.status();
  std::map<std::pair<std::string, std::string>, int64_t> totals;
  result->relation.ForEachRow([&](const Row& row) {
    totals[{row[0].AsString(), row[1].AsString()}] =
        static_cast<int64_t>(row[2].AsNumeric());
  });
  ASSERT_EQ(totals.size(), 3u);
  EXPECT_EQ((totals[{"A", "B"}]), 60);
  EXPECT_EQ((totals[{"A", "C"}]), 60);  // 20 direct + 40 via control of B
  EXPECT_EQ((totals[{"B", "C"}]), 40);
}

TEST(EngineTest, SameGeneration) {
  RaSqlContext ctx;
  ASSERT_TRUE(ctx.RegisterTable(
                     "rel", MakeIntRelation({"Parent", "Child"},
                                            {{0, 1}, {0, 2}, {1, 3}, {2, 4}}))
                  .ok());
  auto result = ctx.Execute(R"(
      WITH recursive sg (X, Y) AS
        (SELECT a.Child, b.Child FROM rel a, rel b
         WHERE a.Parent = b.Parent AND a.Child <> b.Child) UNION
        (SELECT a.Child, b.Child FROM rel a, sg, rel b
         WHERE a.Parent = sg.X AND b.Parent = sg.Y)
      SELECT X, Y FROM sg)");
  ASSERT_TRUE(result.ok()) << result.status();
  std::set<std::pair<int64_t, int64_t>> expected = {
      {1, 2}, {2, 1}, {3, 4}, {4, 3}};
  EXPECT_EQ(IntPairs(result->relation), expected);
}

TEST(EngineTest, Reachability) {
  RaSqlContext ctx;
  ASSERT_TRUE(ctx.RegisterTable(
                     "edge", MakeIntRelation({"Src", "Dst"},
                                             {{1, 2}, {2, 3}, {4, 5}}))
                  .ok());
  auto result = ctx.Execute(R"(
      WITH recursive reach (Dst) AS
        (SELECT 1) UNION
        (SELECT edge.Dst FROM reach, edge WHERE reach.Dst = edge.Src)
      SELECT Dst FROM reach)");
  ASSERT_TRUE(result.ok()) << result.status();
  std::set<int64_t> reached;
  result->relation.ForEachRow(
      [&](const Row& row) { reached.insert(row[0].AsInt()); });
  EXPECT_EQ(reached, (std::set<int64_t>{1, 2, 3}));
}

TEST(EngineTest, AllPairsShortestPath) {
  RaSqlContext ctx;
  ASSERT_TRUE(ctx.RegisterTable("edge",
                                WeightedEdges({{1, 2, 1.0},
                                               {2, 3, 1.0},
                                               {1, 3, 5.0},
                                               {3, 1, 2.0}}))
                  .ok());
  auto result = ctx.Execute(R"(
      WITH recursive path (Src, Dst, min() AS Cost) AS
        (SELECT Src, Dst, Cost FROM edge) UNION
        (SELECT path.Src, edge.Dst, path.Cost + edge.Cost
         FROM path, edge WHERE path.Dst = edge.Src)
      SELECT Src, Dst, Cost FROM path)");
  ASSERT_TRUE(result.ok()) << result.status();
  std::map<std::pair<int64_t, int64_t>, double> dist;
  result->relation.ForEachRow([&](const Row& row) {
    dist[{row[0].AsInt(), row[1].AsInt()}] = row[2].AsNumeric();
  });
  EXPECT_DOUBLE_EQ((dist[{1, 3}]), 2.0);
  EXPECT_DOUBLE_EQ((dist[{3, 2}]), 3.0);
  EXPECT_DOUBLE_EQ((dist[{1, 1}]), 4.0);  // 1->2->3->1
}

TEST(EngineTest, StratifiedSsspHitsIterationLimitOnCycle) {
  // Without min() in the head, cyclic SSSP never reaches a fixpoint — the
  // paper's Fig. 1 footnote. The engine must stop at the iteration cap and
  // report it.
  RaSqlContext ctx;
  ctx.mutable_config()->fixpoint.max_iterations = 20;
  ASSERT_TRUE(ctx.RegisterTable("edge",
                                WeightedEdges({{1, 2, 1.0}, {2, 1, 1.0}}))
                  .ok());
  auto result = ctx.Execute(R"(
      WITH recursive path (Dst, Cost) AS
        (SELECT 1, 0) UNION
        (SELECT edge.Dst, path.Cost + edge.Cost
         FROM path, edge WHERE path.Dst = edge.Src)
      SELECT Dst, min(Cost) FROM path GROUP BY Dst)");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->fixpoint_stats.hit_iteration_limit);
}

TEST(EngineTest, ExplainShowsCliqueAndFixpoint) {
  RaSqlContext ctx;
  ASSERT_TRUE(ctx.RegisterTable(
                     "edge", MakeIntRelation({"Src", "Dst"}, {{1, 2}}))
                  .ok());
  auto explain = ctx.Explain(R"(
      WITH recursive tc (Src, Dst) AS
        (SELECT Src, Dst FROM edge) UNION
        (SELECT tc.Src, edge.Dst FROM tc, edge WHERE tc.Dst = edge.Src)
      SELECT Src, Dst FROM tc)");
  ASSERT_TRUE(explain.ok()) << explain.status();
  EXPECT_NE(explain->find("Clique 0 (recursive)"), std::string::npos);
  EXPECT_NE(explain->find("RecursiveRef"), std::string::npos);
  EXPECT_NE(explain->find("Join"), std::string::npos);
}

TEST(EngineTest, ErrorPaths) {
  RaSqlContext ctx;
  ASSERT_TRUE(ctx.RegisterTable(
                     "edge", MakeIntRelation({"Src", "Dst"}, {{1, 2}}))
                  .ok());
  // Unknown table.
  EXPECT_FALSE(ctx.Execute("SELECT X FROM missing").ok());
  // Unknown column.
  EXPECT_FALSE(ctx.Execute("SELECT Nope FROM edge").ok());
  // Duplicate registration.
  EXPECT_FALSE(
      ctx.RegisterTable("edge", MakeIntRelation({"A"}, {{1}})).ok());
  // Arity mismatch in view head.
  EXPECT_FALSE(ctx.Execute(R"(
      WITH recursive v (A, B) AS (SELECT Src FROM edge)
      SELECT A FROM v)").ok());
  // Recursive clique without a base case.
  EXPECT_FALSE(ctx.Execute(R"(
      WITH recursive v (A) AS (SELECT v.A FROM v)
      SELECT A FROM v)").ok());
  // Aggregate call inside a recursive branch body.
  EXPECT_FALSE(ctx.Execute(R"(
      WITH recursive v (A) AS
        (SELECT Src FROM edge) UNION
        (SELECT max(v.A) FROM v)
      SELECT A FROM v)").ok());
  // Two aggregate head columns.
  EXPECT_FALSE(ctx.Execute(R"(
      WITH recursive v (A, min() AS B, max() AS C) AS
        (SELECT Src, Dst, Dst FROM edge)
      SELECT A FROM v)").ok());
}

// ---------------------------------------------------------------------
// Consistency sweep: every execution configuration (local/distributed,
// stage combination, decomposed, join algorithm, codegen) must produce
// identical results for the paper's core queries.
// ---------------------------------------------------------------------

struct ConfigVariant {
  const char* name;
  bool distributed;
  bool combine_stages;
  fixpoint::DistFixpointOptions::Decomposed decomposed;
  bool use_codegen;
  physical::JoinAlgorithm join_algorithm;
};

class ConsistencySweep : public ::testing::TestWithParam<ConfigVariant> {};

EngineConfig MakeConfig(const ConfigVariant& variant) {
  EngineConfig config;
  config.distributed = variant.distributed;
  config.cluster.num_workers = 3;
  config.cluster.num_partitions = 5;
  config.dist_fixpoint.combine_stages = variant.combine_stages;
  config.dist_fixpoint.decomposed = variant.decomposed;
  config.fixpoint.use_codegen = variant.use_codegen;
  config.fixpoint.join_algorithm = variant.join_algorithm;
  return config;
}

TEST_P(ConsistencySweep, GraphQueriesMatchReference) {
  // Reference: default local configuration.
  datagen::RmatOptions opt;
  opt.num_vertices = 256;
  opt.edges_per_vertex = 4;
  opt.weighted = true;
  opt.seed = 11;
  Relation edges = datagen::ToEdgeRelation(datagen::GenerateRmat(opt));

  const char* queries[] = {
      // SSSP from vertex 0.
      R"(WITH recursive path (Dst, min() AS Cost) AS
           (SELECT 0, 0.0) UNION
           (SELECT edge.Dst, path.Cost + edge.Cost
            FROM path, edge WHERE path.Dst = edge.Src)
         SELECT Dst, Cost FROM path)",
      // REACH from vertex 0.
      R"(WITH recursive reach (Dst) AS
           (SELECT 0) UNION
           (SELECT edge.Dst FROM reach, edge WHERE reach.Dst = edge.Src)
         SELECT Dst FROM reach)",
      // CC.
      R"(WITH recursive cc (Src, min() AS CmpId) AS
           (SELECT Src, Src FROM edge) UNION
           (SELECT edge.Dst, cc.CmpId FROM cc, edge WHERE cc.Src = edge.Src)
         SELECT Src, CmpId FROM cc)",
  };

  RaSqlContext reference;
  ASSERT_TRUE(reference.RegisterTable("edge", edges).ok());
  RaSqlContext variant(MakeConfig(GetParam()));
  ASSERT_TRUE(variant.RegisterTable("edge", edges).ok());

  for (const char* query : queries) {
    auto expected = reference.Execute(query);
    ASSERT_TRUE(expected.ok()) << expected.status();
    auto got = variant.Execute(query);
    ASSERT_TRUE(got.ok()) << GetParam().name << ": " << got.status();
    EXPECT_TRUE(SameBag(expected->relation, got->relation))
        << GetParam().name << " diverged on query:\n"
        << query << "\nexpected " << expected->relation.size() << " rows, got "
        << got->relation.size();
  }
}

TEST_P(ConsistencySweep, TransitiveClosureMatchesReference) {
  datagen::GridOptions opt;
  opt.side = 7;
  Relation edges = datagen::ToEdgeRelation(datagen::GenerateGrid(opt));
  const char* query = R"(
      WITH recursive tc (Src, Dst) AS
        (SELECT Src, Dst FROM edge) UNION
        (SELECT tc.Src, edge.Dst FROM tc, edge WHERE tc.Dst = edge.Src)
      SELECT count(*) FROM tc)";

  RaSqlContext reference;
  ASSERT_TRUE(reference.RegisterTable("edge", edges).ok());
  RaSqlContext variant(MakeConfig(GetParam()));
  ASSERT_TRUE(variant.RegisterTable("edge", edges).ok());

  auto expected = reference.Execute(query);
  ASSERT_TRUE(expected.ok()) << expected.status();
  auto got = variant.Execute(query);
  ASSERT_TRUE(got.ok()) << GetParam().name << ": " << got.status();
  EXPECT_EQ(expected->relation.row(0)[0].AsInt(), got->relation.row(0)[0].AsInt())
      << GetParam().name;
}

TEST_P(ConsistencySweep, SameGenerationMatchesReference) {
  // SG scans `rel` twice in one branch — a regression test for the
  // multi-role scan vs co-partitioning interaction.
  datagen::TreeOptions opt;
  opt.height = 4;
  opt.max_nodes = 300;
  opt.leaf_probability = 0.0;
  datagen::Graph tree = datagen::GenerateTree(opt);
  Relation rel{Schema::Of({{"Parent", ValueType::kInt64},
                           {"Child", ValueType::kInt64}})};
  for (const auto& [p, c] : tree.edges) {
    rel.Add({Value::Int(p), Value::Int(c)});
  }
  const char* query = R"(
      WITH recursive sg (X, Y) AS
        (SELECT a.Child, b.Child FROM rel a, rel b
         WHERE a.Parent = b.Parent AND a.Child <> b.Child) UNION
        (SELECT a.Child, b.Child FROM rel a, sg, rel b
         WHERE a.Parent = sg.X AND b.Parent = sg.Y)
      SELECT count(*) FROM sg)";

  RaSqlContext reference;
  ASSERT_TRUE(reference.RegisterTable("rel", rel).ok());
  RaSqlContext variant(MakeConfig(GetParam()));
  ASSERT_TRUE(variant.RegisterTable("rel", rel).ok());
  auto expected = reference.Execute(query);
  ASSERT_TRUE(expected.ok()) << expected.status();
  auto got = variant.Execute(query);
  ASSERT_TRUE(got.ok()) << GetParam().name << ": " << got.status();
  EXPECT_EQ(expected->relation.row(0)[0].AsInt(), got->relation.row(0)[0].AsInt())
      << GetParam().name;
}

constexpr ConfigVariant kVariants[] = {
    {"local_naive_equivalent", false, true,
     fixpoint::DistFixpointOptions::Decomposed::kAuto, true,
     physical::JoinAlgorithm::kHash},
    {"local_no_codegen", false, true,
     fixpoint::DistFixpointOptions::Decomposed::kAuto, false,
     physical::JoinAlgorithm::kHash},
    {"local_sort_merge", false, true,
     fixpoint::DistFixpointOptions::Decomposed::kAuto, true,
     physical::JoinAlgorithm::kSortMerge},
    {"dist_combined", true, true,
     fixpoint::DistFixpointOptions::Decomposed::kAuto, true,
     physical::JoinAlgorithm::kHash},
    {"dist_uncombined", true, false,
     fixpoint::DistFixpointOptions::Decomposed::kAuto, true,
     physical::JoinAlgorithm::kHash},
    {"dist_no_decomposed", true, true,
     fixpoint::DistFixpointOptions::Decomposed::kOff, true,
     physical::JoinAlgorithm::kHash},
    {"dist_sort_merge", true, true,
     fixpoint::DistFixpointOptions::Decomposed::kAuto, true,
     physical::JoinAlgorithm::kSortMerge},
    {"dist_no_codegen", true, false,
     fixpoint::DistFixpointOptions::Decomposed::kOff, false,
     physical::JoinAlgorithm::kSortMerge},
};

INSTANTIATE_TEST_SUITE_P(Configs, ConsistencySweep,
                         ::testing::ValuesIn(kVariants),
                         [](const auto& pinfo) { return pinfo.param.name; });

TEST(EngineDistributedTest, TcUsesDecomposedPlan) {
  EngineConfig config;
  config.distributed = true;
  config.cluster.num_partitions = 4;
  RaSqlContext ctx(config);
  ASSERT_TRUE(ctx.RegisterTable(
                     "edge", MakeIntRelation({"Src", "Dst"},
                                             {{1, 2}, {2, 3}, {3, 4}}))
                  .ok());
  auto result = ctx.Execute(R"(
      WITH recursive tc (Src, Dst) AS
        (SELECT Src, Dst FROM edge) UNION
        (SELECT tc.Src, edge.Dst FROM tc, edge WHERE tc.Dst = edge.Src)
      SELECT Src, Dst FROM tc)");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->relation.size(), 6u);
  // Decomposed evaluation runs everything in very few stages and
  // broadcasts the base relation.
  EXPECT_GT(result->job_metrics.broadcast_bytes, 0u);
}

TEST(EngineDistributedTest, CombinedStagesReduceStageCount) {
  datagen::RmatOptions opt;
  opt.num_vertices = 128;
  opt.edges_per_vertex = 4;
  Relation edges = datagen::ToEdgeRelation(datagen::GenerateRmat(opt));
  const char* query = R"(
      WITH recursive cc (Src, min() AS CmpId) AS
        (SELECT Src, Src FROM edge) UNION
        (SELECT edge.Dst, cc.CmpId FROM cc, edge WHERE cc.Src = edge.Src)
      SELECT count(distinct CmpId) FROM cc)";

  EngineConfig combined;
  combined.distributed = true;
  combined.dist_fixpoint.combine_stages = true;
  RaSqlContext ctx_combined(combined);
  ASSERT_TRUE(ctx_combined.RegisterTable("edge", edges).ok());
  auto combined_run = ctx_combined.Execute(query);
  ASSERT_TRUE(combined_run.ok());

  EngineConfig plain = combined;
  plain.dist_fixpoint.combine_stages = false;
  RaSqlContext ctx_plain(plain);
  ASSERT_TRUE(ctx_plain.RegisterTable("edge", edges).ok());
  auto plain_run = ctx_plain.Execute(query);
  ASSERT_TRUE(plain_run.ok());

  EXPECT_LT(combined_run->job_metrics.num_stages(),
            plain_run->job_metrics.num_stages());
}

// ---- INSERT semantics: the engine's only base-data write, and the hook
// the server's result-cache invalidation hangs off (DESIGN.md §12). ----

TEST(EngineInsertTest, AppendsRowsAndReportsCount) {
  RaSqlContext ctx;
  ASSERT_TRUE(
      ctx.RegisterTable("edge", WeightedEdges({{1, 2, 1.0}, {2, 3, 2.0}}))
          .ok());
  auto result =
      ctx.Execute("INSERT INTO edge VALUES (3, 4, 0.5), (4, 1, 1.5)");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->relation.size(), 1u);
  EXPECT_EQ(result->relation.schema().column(0).name, "rows_inserted");
  EXPECT_EQ(result->relation.row(0)[0].AsInt(), 2);
  auto count = ctx.Execute("SELECT count(*) FROM edge");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->relation.row(0)[0].AsInt(), 4);
}

TEST(EngineInsertTest, PromotesIntToDoubleColumn) {
  RaSqlContext ctx;
  ASSERT_TRUE(ctx.RegisterTable("edge", WeightedEdges({{1, 2, 1.0}})).ok());
  ASSERT_TRUE(ctx.Execute("INSERT INTO edge VALUES (2, 3, 7)").ok());
  auto result = ctx.Execute("SELECT Cost FROM edge WHERE Src = 2");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->relation.size(), 1u);
  EXPECT_EQ(result->relation.row(0)[0], Value::Double(7.0));
}

TEST(EngineInsertTest, RejectsAtomicallyOnBadRow) {
  RaSqlContext ctx;
  ASSERT_TRUE(ctx.RegisterTable("edge", WeightedEdges({{1, 2, 1.0}})).ok());
  const uint64_t version = ctx.TableVersion("edge");
  // Second row has a string where an int column is expected: the whole
  // statement must reject, including the valid first row.
  auto bad =
      ctx.Execute("INSERT INTO edge VALUES (2, 3, 0.5), ('x', 4, 0.5)");
  EXPECT_FALSE(bad.ok());
  auto arity = ctx.Execute("INSERT INTO edge VALUES (2, 3)");
  EXPECT_FALSE(arity.ok());
  auto missing = ctx.Execute("INSERT INTO no_such VALUES (1, 2, 3.0)");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(ctx.TableVersion("edge"), version);
  auto count = ctx.Execute("SELECT count(*) FROM edge");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->relation.row(0)[0].AsInt(), 1);
}

TEST(EngineInsertTest, InsertedRowsFeedRecursionAndBumpVersion) {
  RaSqlContext ctx;
  ASSERT_TRUE(
      ctx.RegisterTable("edge", WeightedEdges({{1, 2, 1.0}, {2, 3, 1.0}}))
          .ok());
  const uint64_t version = ctx.TableVersion("edge");
  const char* tc = R"(
      WITH recursive tc (Src, Dst) AS
        (SELECT Src, Dst FROM edge) UNION
        (SELECT tc.Src, edge.Dst FROM tc, edge WHERE tc.Dst = edge.Src)
      SELECT count(*) FROM tc)";
  auto before = ctx.Execute(tc);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->relation.row(0)[0].AsInt(), 3);  // 12 23 13
  ASSERT_TRUE(ctx.Execute("INSERT INTO edge VALUES (3, 4, 1.0)").ok());
  EXPECT_GT(ctx.TableVersion("edge"), version);
  auto after = ctx.Execute(tc);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->relation.row(0)[0].AsInt(), 6);  // + 34 24 14
}

TEST(EngineInsertTest, NullLiteralLandsAsNull) {
  RaSqlContext ctx;
  ASSERT_TRUE(ctx.RegisterTable("edge", WeightedEdges({{1, 2, 1.0}})).ok());
  ASSERT_TRUE(ctx.Execute("INSERT INTO edge VALUES (2, 3, NULL)").ok());
  auto result = ctx.Execute("SELECT Cost FROM edge WHERE Src = 2");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->relation.size(), 1u);
  EXPECT_TRUE(result->relation.row(0)[0].is_null());
}

}  // namespace
}  // namespace rasql::engine
